// Urban VANET: a signalized 3x3 Manhattan grid (built from the paper's
// lane transforms + crosspoint bottlenecks) carrying a CBR flow under
// each routing protocol — the "city" counterpart of routing_comparison.
#include <iostream>

#include "core/grid_road.h"
#include "scenario/table1.h"
#include "trace/trace_generator.h"
#include "util/table_writer.h"

int main() {
  using namespace cavenet;
  using namespace cavenet::scenario;

  ca::GridRoadConfig grid_config;
  grid_config.horizontal_lanes = 3;
  grid_config.vertical_lanes = 3;
  grid_config.block_cells = 60;
  grid_config.vehicles_per_lane = 10;
  grid_config.seed = 7;
  ca::GridRoad grid(grid_config);

  std::cout << "Urban grid: " << grid.vehicle_count() << " vehicles on a "
            << grid.width_m() / 1000.0 << " km x " << grid.height_m() / 1000.0
            << " km signalized Manhattan grid\n\n";

  trace::TraceGeneratorOptions trace_options;
  trace_options.steps = 100;
  trace_options.pre_step = [&grid](ca::Road& road) {
    grid.apply_signals(road);
  };
  const auto mobility = trace::generate_trace(grid.road(), trace_options);

  // Two concurrent uplinks to vehicle 0: one from its own avenue (node 4)
  // and one from the first cross street (a vehicle on vertical lane 0,
  // which intersects the receiver's avenue at the origin corner).
  TableWriter table({"protocol", "flow", "PDR", "mean delay [s]",
                     "ctrl bytes"});
  for (const Protocol protocol :
       {Protocol::kAodv, Protocol::kOlsr, Protocol::kDymo}) {
    TableIConfig config;
    config.protocol = protocol;
    config.seed = 7;
    config.receiver = 0;
    const auto results = run_with_trace(mobility, config, {4, 32});
    const char* labels[] = {"same avenue (4->0)", "cross street (32->0)"};
    for (std::size_t i = 0; i < results.size(); ++i) {
      table.add_row({std::string(to_string(protocol)),
                     std::string(labels[i]), results[i].pdr,
                     results[i].mean_delay_s,
                     static_cast<std::int64_t>(results[i].control_bytes)});
    }
  }
  table.print(std::cout);
  std::cout << "\nUrban delivery is far below the highway circuit: lanes "
               "teleport at the map edge (vehicles leave and re-enter) and "
               "red lights cluster relays away from mid-block senders. The "
               "cross-street flow can fail outright — sender and receiver "
               "only approach each other near one corner, and 48 vehicles "
               "on 8.1 km of road leave the corner unrelayed for most of "
               "the run. That sparse-coupling cliff is exactly why the "
               "paper's Fig. 1 argues for counting relay lanes.\n";
  return 0;
}
