// Full-stack VANET routing comparison (the paper's Section IV-C headline):
// runs the Table-I scenario for AODV, OLSR and DYMO with one sender and
// prints PDR, delay and goodput.
#include <iostream>

#include "scenario/table1.h"
#include "util/table_writer.h"

int main(int argc, char** argv) {
  using namespace cavenet;
  using scenario::Protocol;

  const netsim::NodeId sender =
      argc > 1 ? static_cast<netsim::NodeId>(std::atoi(argv[1])) : 4;

  std::cout << "Table-I scenario: 30 nodes, 3000 m circuit, CBR node "
            << sender << " -> node 0, 5 pkt/s x 512 B, t = 10..90 s\n\n";

  TableWriter table({"protocol", "PDR", "rx/tx", "mean delay [s]",
                     "first-route delay [s]", "ctrl pkts", "ctrl bytes"});
  for (const Protocol protocol :
       {Protocol::kAodv, Protocol::kOlsr, Protocol::kDymo}) {
    scenario::TableIConfig config;
    config.protocol = protocol;
    config.sender = sender;
    config.seed = 3;
    const scenario::SenderRunResult r = scenario::run_table1(config);
    table.add_row({std::string(to_string(protocol)), r.pdr,
                   std::to_string(r.rx_packets) + "/" +
                       std::to_string(r.tx_packets),
                   r.mean_delay_s, r.first_delivery_delay_s,
                   static_cast<std::int64_t>(r.control_packets),
                   static_cast<std::int64_t>(r.control_bytes)});
  }
  table.print(std::cout);
  return 0;
}
