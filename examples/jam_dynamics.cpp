// Space-time jam dynamics (the phenomenon behind paper Fig. 5): renders
// ASCII space-time plots for the laminar and jammed regimes and shows the
// backward-travelling jam waves of the stochastic NaS model.
#include <iostream>

#include "core/nas_lane.h"
#include "core/space_time.h"

namespace {

void show(const char* title, double density, double p, std::int64_t lane_cells,
          std::int64_t steps) {
  using namespace cavenet;
  ca::NasParams params;
  params.lane_length = lane_cells;
  params.slowdown_p = p;
  ca::NasLane lane(params,
                   static_cast<std::int64_t>(density * static_cast<double>(lane_cells)),
                   ca::InitialPlacement::kRandom, Rng(7));
  lane.run(50);  // skip the initial transient
  const ca::SpaceTimeRaster raster = ca::record_space_time(lane, steps);

  std::cout << "\n=== " << title << " (rho=" << density << ", p=" << p
            << ") ===\n"
            << "('.' empty, digit = vehicle velocity; time flows down)\n";
  raster.render_ascii(std::cout, 100);
  std::cout << "jammed fraction at end: "
            << raster.jammed_fraction(raster.rows() - 1) << "\n";
}

}  // namespace

int main() {
  show("Laminar free flow", 0.0625, 0.3, 200, 24);
  show("Congested with jam waves", 0.5, 0.3, 200, 24);
  show("Deterministic platooning", 0.1, 0.0, 200, 24);
  return 0;
}
