// Quickstart: simulate NaS traffic on a circular lane, look at the flow,
// and generate an ns-2 mobility trace — the CAVENET workflow in ~60 lines.
#include <iostream>
#include <sstream>

#include "core/fundamental_diagram.h"
#include "core/geometry.h"
#include "core/nas_lane.h"
#include "core/road.h"
#include "trace/ns2_format.h"
#include "trace/trace_generator.h"

int main() {
  using namespace cavenet;

  // 1. A 3000 m circular lane (400 cells x 7.5 m) with 30 vehicles and
  //    NaS random slowdowns with p = 0.3.
  ca::NasParams params;
  params.lane_length = 400;
  params.slowdown_p = 0.3;
  params.boundary = ca::Boundary::kClosed;
  ca::NasLane lane(params, 30, ca::InitialPlacement::kRandom, Rng(42));

  // 2. Let the transient die out, then measure.
  lane.run(200);
  double velocity_sum = 0.0;
  for (int step = 0; step < 500; ++step) {
    lane.step();
    velocity_sum += lane.average_velocity();
  }
  const double v_bar = velocity_sum / 500.0;
  std::cout << "density rho     = " << lane.density() << " veh/cell\n"
            << "mean velocity   = " << v_bar << " cells/step ("
            << v_bar * params.cell_length_m * 3.6 << " km/h)\n"
            << "flow J = rho*v  = " << lane.density() * v_bar
            << " veh/(cell*step)\n";

  // 3. Map the lane onto a circle in the plane and emit an ns-2 trace.
  ca::NasLane fresh(params, 30, ca::InitialPlacement::kRandom, Rng(42));
  ca::Road road;
  road.add_lane(std::move(fresh), ca::make_circuit(params.lane_length_m()));

  trace::TraceGeneratorOptions trace_options;
  trace_options.steps = 10;
  const trace::MobilityTrace trace = trace::generate_trace(road, trace_options);

  std::ostringstream ns2;
  trace::write_ns2(trace, ns2);
  const std::string text = ns2.str();
  std::cout << "\nFirst lines of the generated ns-2 trace ("
            << trace.events.size() << " movement events):\n"
            << text.substr(0, 400) << "...\n";
  return 0;
}
