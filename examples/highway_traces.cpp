// Multi-lane highway trace generation (paper Section III-D, Fig. 3):
// three lanes placed in the plane with affine lane transformations —
// two parallel opposite-direction lanes and one perpendicular lane —
// exported as an ns-2 mobility trace file.
#include <fstream>
#include <iostream>

#include "core/geometry.h"
#include "core/nas_lane.h"
#include "core/road.h"
#include "trace/ns2_format.h"
#include "trace/trace_generator.h"

int main(int argc, char** argv) {
  using namespace cavenet;

  const std::string out_path = argc > 1 ? argv[1] : "highway.ns2";

  ca::NasParams params;
  params.lane_length = 200;  // 1500 m per lane
  params.slowdown_p = 0.25;
  const double length_m = params.lane_length_m();

  ca::Road road;

  // Lane 1: west->east at y = 0.
  road.add_lane(ca::NasLane(params, 12, ca::InitialPlacement::kRandom, Rng(1)),
                ca::make_line(length_m));

  // Lane 2: the opposite direction, 7.5 m to the north. The transform
  // mirrors the driving direction (x -> length - x) and offsets y.
  const ca::LaneTransform opposite =
      ca::LaneTransform::translation(length_m, 7.5) *
      ca::LaneTransform::scaling(-1.0, 1.0);
  road.add_lane(ca::NasLane(params, 12, ca::InitialPlacement::kRandom, Rng(2)),
                ca::make_line(length_m, opposite));

  // Lane 3: the paper's example — axes swapped, a vertical lane crossing
  // at x = XS/2 (we use XS = lane length).
  const ca::LaneTransform vertical =
      ca::LaneTransform::translation(length_m / 2.0, 0.0) *
      ca::LaneTransform::swap_axes();
  road.add_lane(ca::NasLane(params, 8, ca::InitialPlacement::kRandom, Rng(3)),
                ca::make_line(length_m, vertical));

  std::cout << "Simulating " << road.vehicle_count()
            << " vehicles on 3 lanes for 60 s...\n";

  trace::TraceGeneratorOptions options;
  options.steps = 60;
  options.delta_offset = 1.0;  // the paper's Delta, dodging ns-2's (0,0) bug
  const trace::MobilityTrace mobility = trace::generate_trace(road, options);

  if (!trace::write_ns2_file(mobility, out_path)) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "Wrote " << mobility.events.size() << " movement events for "
            << mobility.node_count() << " nodes to " << out_path << "\n";

  // Round-trip check: parse the file back and compare.
  const trace::MobilityTrace parsed = trace::read_ns2_file(out_path);
  std::cout << "Round-trip parse: " << parsed.node_count() << " nodes, "
            << parsed.events.size() << " events — "
            << (parsed.events.size() == mobility.events.size() ? "OK" : "MISMATCH")
            << "\n";
  return 0;
}
