// Behavioural-Analyzer tour: everything CAVENET's mobility block can tell
// you about a traffic configuration before any packet is simulated —
// fundamental quantities, headway/velocity distributions, jam structure,
// transient length, spectral character (SRD/LRD), and the connectivity
// the radio layer will see.
#include <cstdio>
#include <iostream>

#include "analysis/autocorrelation.h"
#include "analysis/stats.h"
#include "analysis/spectrum.h"
#include "analysis/transient.h"
#include "core/geometry.h"
#include "core/lane_statistics.h"
#include "core/nas_lane.h"
#include "core/road.h"
#include "core/velocity_series.h"
#include "trace/connectivity.h"
#include "trace/trace_generator.h"
#include "util/table_writer.h"

int main(int argc, char** argv) {
  using namespace cavenet;

  const double p = argc > 1 ? std::atof(argv[1]) : 0.5;
  const double rho = argc > 2 ? std::atof(argv[2]) : 0.075;

  ca::NasParams params;
  params.lane_length = 400;
  params.slowdown_p = p;
  const auto n = static_cast<std::int64_t>(rho * 400.0);
  std::printf("Analyzing NaS traffic: rho = %.3f (%lld vehicles), p = %.2f, "
              "3000 m circuit\n\n", rho, static_cast<long long>(n), p);

  // 1. Time-domain: transient, stationary level.
  ca::NasLane lane(params, n, ca::InitialPlacement::kRandom, Rng(1));
  const auto v_series = ca::velocity_series(lane, 4096);
  const auto tau = analysis::transient_end(v_series);
  const std::span<const double> vs(v_series);
  std::printf("mean velocity (2nd half): %.2f cells/step (%.0f km/h)\n",
              analysis::mean(vs.subspan(2048)),
              analysis::mean(vs.subspan(2048)) * 7.5 * 3.6);
  std::printf("transient length tau    : %s\n",
              tau ? (std::to_string(*tau) + " steps").c_str()
                  : "not settled in window (LRD regime)");

  // 2. Spectral character.
  const auto spectrum = analysis::periodogram(v_series);
  const double slope = analysis::low_frequency_slope(spectrum, 0.005);
  const double hurst = analysis::hurst_rs(v_series);
  std::printf("low-f spectral slope    : %.3f (%s)\n", slope,
              slope < -0.15 ? "LRD: 1/f-like divergence" : "SRD: flat origin");
  std::printf("Hurst exponent (R/S)    : %.3f\n\n", hurst);

  // 3. Microscopic structure: headways, jams, partition risk.
  ca::NasLane fresh(params, n, ca::InitialPlacement::kRandom, Rng(1));
  fresh.run(300);
  ca::LaneStatistics stats(params);
  for (int i = 0; i < 500; ++i) {
    fresh.step();
    stats.record(fresh);
  }
  TableWriter micro({"metric", "value"});
  micro.add_row({std::string("mean jam clusters"), stats.mean_jam_clusters()});
  micro.add_row({std::string("P(gap >= 250 m)"), stats.gap_exceedance(34)});
  micro.add_row({std::string("P(ring partitioned)"),
                 stats.multi_gap_fraction(34, 2)});
  for (int v = 0; v <= 5; ++v) {
    micro.add_row({std::string("P(v = ") + std::to_string(v) + ")",
                   stats.velocity_probability(v)});
  }
  micro.print(std::cout);

  // 4. What the radio layer will see: connectivity over 100 s.
  ca::Road road;
  road.add_lane(ca::NasLane(params, n, ca::InitialPlacement::kRandom, Rng(1)),
                ca::make_circuit(3000.0));
  trace::TraceGeneratorOptions trace_options;
  trace_options.steps = 100;
  const auto mobility = trace::generate_trace(road, trace_options);
  const auto paths = trace::compile_paths(mobility);
  trace::ConnectivitySweepOptions sweep;
  sweep.t_end_s = 100.0;
  const auto samples = trace::connectivity_over_time(paths, sweep);
  double mean_components = 0.0, mean_pc = 0.0;
  for (const auto& s : samples) {
    mean_components += static_cast<double>(s.components);
    mean_pc += s.pair_connectivity;
  }
  mean_components /= static_cast<double>(samples.size());
  mean_pc /= static_cast<double>(samples.size());
  const double churn = trace::link_change_rate(paths, sweep);
  std::printf("\nradio-layer view (250 m range):\n");
  std::printf("  mean components       : %.2f\n", mean_components);
  std::printf("  mean pair connectivity: %.3f\n", mean_pc);
  std::printf("  topology change rate  : %.2f link events/s\n", churn);
  std::printf("\n(try: %s 0.3 0.075  vs  %s 0.7 0.075)\n", argv[0], argv[0]);
  return 0;
}
