// MANET-Internet gateway scenario (paper Related Work: "a car taking part
// in a MANET scenario could establish connections using the public
// hotspots while driving... the deployment of access points along
// highways in the near future seems feasible"; Section III-B1: OLSR HNA).
//
// Two static roadside units (RSUs) sit by a 3000 m circuit and advertise
// an Internet uplink via OLSR HNA messages. A vehicle streams CBR traffic
// to the Internet pseudo-address; packets hop through the VANET to
// whichever gateway is currently nearest.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "app/cbr.h"
#include "core/geometry.h"
#include "core/nas_lane.h"
#include "core/road.h"
#include "mac/wifi_mac.h"
#include "netsim/mobility.h"
#include "phy/channel.h"
#include "routing/olsr.h"
#include "trace/trace_generator.h"

int main() {
  using namespace cavenet;
  using namespace cavenet::literals;
  constexpr netsim::NodeId kInternet = 9999;
  constexpr int kVehicles = 20;

  // Behavioural Analyzer: 20 vehicles on a 3000 m circuit.
  ca::NasParams params;
  params.lane_length = 400;
  params.slowdown_p = 0.3;
  ca::Road road;
  road.add_lane(ca::NasLane(params, kVehicles, ca::InitialPlacement::kRandom,
                            Rng(11)),
                ca::make_circuit(3000.0));
  trace::TraceGeneratorOptions trace_options;
  trace_options.steps = 120;
  const auto mobility_trace = trace::generate_trace(road, trace_options);
  const auto paths = trace::compile_paths(mobility_trace);

  // Communication Protocol Simulator: vehicles + 2 RSUs, all OLSR.
  netsim::Simulator sim(11);
  phy::Channel channel(sim, std::make_unique<phy::TwoRayGroundModel>());

  struct Node {
    std::unique_ptr<netsim::MobilityModel> mobility;
    std::unique_ptr<phy::WifiPhy> phy;
    phy::Channel::Attachment link;  // after phy: detaches before phy dies
    std::unique_ptr<mac::WifiMac> mac;
    std::unique_ptr<routing::olsr::OlsrProtocol> olsr;
  };
  std::vector<Node> nodes;
  auto add_node = [&](std::unique_ptr<netsim::MobilityModel> mobility) {
    const auto id = static_cast<netsim::NodeId>(nodes.size());
    Node node;
    node.mobility = std::move(mobility);
    node.phy = std::make_unique<phy::WifiPhy>(sim, id, node.mobility.get());
    node.link = channel.attach(node.phy.get());
    node.mac = std::make_unique<mac::WifiMac>(sim, *node.phy,
                                              mac::MacParams{}, id);
    node.olsr =
        std::make_unique<routing::olsr::OlsrProtocol>(sim, *node.mac);
    nodes.push_back(std::move(node));
    return id;
  };

  for (int i = 0; i < kVehicles; ++i) {
    const trace::NodePath* path = &paths[static_cast<std::size_t>(i)];
    add_node(std::make_unique<netsim::FunctionMobility>(
        [path](double t) { return path->position(t); },
        [path](double t) { return path->velocity(t); }));
  }
  // RSUs on opposite sides of the ring (radius ~477.5 m), just off-road.
  const double r = 3000.0 / (2.0 * 3.14159265358979) + 20.0;
  const auto rsu_east = add_node(std::make_unique<netsim::StaticMobility>(
      Vec2{r, 0.0}));
  const auto rsu_west = add_node(std::make_unique<netsim::StaticMobility>(
      Vec2{-r, 0.0}));
  nodes[rsu_east].olsr->add_local_network(kInternet);
  nodes[rsu_west].olsr->add_local_network(kInternet);

  for (auto& node : nodes) node.olsr->start();

  // Vehicle 0 uploads to the Internet between t = 15 s and t = 110 s.
  app::FlowMetrics uplink_east, uplink_west;
  std::uint64_t delivered_east = 0, delivered_west = 0;
  nodes[rsu_east].olsr->set_deliver_callback(
      [&](netsim::Packet, netsim::NodeId) { ++delivered_east; });
  nodes[rsu_west].olsr->set_deliver_callback(
      [&](netsim::Packet, netsim::NodeId) { ++delivered_west; });

  app::CbrParams cbr;
  cbr.destination = kInternet;
  cbr.packets_per_second = 5.0;
  cbr.payload_bytes = 512;
  cbr.start = 15_s;
  cbr.stop = 110_s;
  app::FlowMetrics metrics;
  app::CbrSource source(sim, *nodes[0].olsr, cbr, &metrics);
  source.start();

  sim.run_until(120_s);

  const std::uint64_t delivered = delivered_east + delivered_west;
  std::printf("Internet uplink over VANET (OLSR + HNA):\n");
  std::printf("  packets sent          : %llu\n",
              static_cast<unsigned long long>(metrics.tx_packets()));
  std::printf("  delivered via east RSU: %llu\n",
              static_cast<unsigned long long>(delivered_east));
  std::printf("  delivered via west RSU: %llu\n",
              static_cast<unsigned long long>(delivered_west));
  std::printf("  uplink delivery ratio : %.3f\n",
              metrics.tx_packets() > 0
                  ? static_cast<double>(delivered) /
                        static_cast<double>(metrics.tx_packets())
                  : 0.0);
  const bool used_both = delivered_east > 0 && delivered_west > 0;
  std::printf("  gateway handover      : %s\n",
              used_both ? "yes (both RSUs used as the vehicle drove the ring)"
                        : "no");
  return 0;
}
