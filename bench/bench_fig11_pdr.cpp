// Reproduces paper Fig. 11: packet delivery ratio per sender id (1..8)
// for AODV, OLSR and DYMO over the Table-I scenario.
//
// Expected shape: reactive protocols (AODV, DYMO) above OLSR for most
// senders; PDR tends to drop as the sender's initial distance from the
// receiver grows.
//
// --jobs N fans the per-sender runs and the seed sweep across N ensemble
// workers; fig11_pdr.csv and fig11_pdr.manifest.json are byte-identical
// for every N. (The final instrumented point is single-writer — packet
// log, trace, profiler — and always runs serially.)
#include <chrono>
#include <cstdio>
#include <iostream>

#include "netsim/packet_log.h"
#include "obs/kernel_profiler.h"
#include "obs/run_manifest.h"
#include "obs/stats_registry.h"
#include "obs/trace_sink.h"
#include "runner/ensemble.h"
#include "scenario/experiment.h"
#include "scenario/run_record.h"
#include "scenario/table1.h"
#include "util/table_writer.h"

namespace {

/// One fully-instrumented point (AODV, sender 5) demonstrating the
/// observability layer: RunManifest + Chrome trace + kernel profile, with
/// the stats registry reconciled against the ns-2 packet log.
int run_instrumented_point(cavenet::scenario::TableIConfig config) {
  using namespace cavenet;
  using namespace cavenet::scenario;

  config.protocol = Protocol::kAodv;
  config.sender = 5;

  netsim::PacketLog log;
  obs::StatsRegistry stats;
  obs::ChromeTraceWriter trace;
  obs::KernelProfiler profiler;
  config.obs.packet_log = &log;
  config.obs.stats = &stats;
  config.obs.trace_sink = &trace;
  config.obs.profiler = &profiler;
  config.heartbeat_s = 10.0;

  const auto wall_start = std::chrono::steady_clock::now();
  const SenderRunResult result = run_table1(config);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  obs::RunManifest manifest =
      make_run_manifest("fig11_pdr", config, {result}, wall_s);
  // Keep the manifest a determinism artifact: wall timing varies run to
  // run and stays in the profiler table on stdout.
  manifest.strip_volatile();
  manifest.write_file("fig11_pdr.manifest.json");
  trace.write_file("fig11_pdr.trace.json");

  std::printf("manifest: fig11_pdr.manifest.json (build %.*s)\n",
              static_cast<int>(obs::build_version().size()),
              obs::build_version().data());
  std::printf("trace:    fig11_pdr.trace.json (%zu events)\n", trace.size());

  std::cout << "\nStats registry snapshot:\n";
  stats.write_table(std::cout);
  std::cout << "\nKernel profile:\n";
  profiler.write_table(std::cout);

  // The registry must agree exactly with the packet log: both are fed at
  // the same call sites.
  using Ev = netsim::PacketLog::Event;
  using Ly = netsim::PacketLog::Layer;
  const struct {
    const char* label;
    std::uint64_t counter;
    std::size_t log_count;
  } checks[] = {
      {"mac.tx.data == log s/MAC", stats.counter("mac.tx.data").value(),
       log.count(Ev::kSend, Ly::kMac)},
      {"mac.rx.up == log r/MAC", stats.counter("mac.rx.up").value(),
       log.count(Ev::kReceive, Ly::kMac)},
      {"mac.drop.* == log D/MAC",
       stats.counter("mac.drop.ifq_full").value() +
           stats.counter("mac.drop.retry_limit").value(),
       log.count(Ev::kDrop, Ly::kMac)},
      {"rtr.tx.control == log s/RTR", stats.counter("rtr.tx.control").value(),
       log.count(Ev::kSend, Ly::kRouter)},
      {"rtr.fwd.data == log f/RTR", stats.counter("rtr.fwd.data").value(),
       log.count(Ev::kForward, Ly::kRouter)},
      {"agt.rx.delivered == log r/AGT",
       stats.counter("agt.rx.delivered").value(),
       log.count(Ev::kReceive, Ly::kAgent)},
  };
  std::cout << "\nRegistry vs packet-log reconciliation:\n";
  int failures = 0;
  for (const auto& c : checks) {
    const bool ok = c.counter == static_cast<std::uint64_t>(c.log_count);
    if (!ok) ++failures;
    std::printf("  %-30s %8llu vs %8zu  %s\n", c.label,
                static_cast<unsigned long long>(c.counter), c.log_count,
                ok ? "OK" : "MISMATCH");
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cavenet;
  using namespace cavenet::scenario;

  const int jobs = cavenet::runner::parse_jobs_flag(argc, argv);
  std::cout << "Fig. 11: PDR vs sender id, Table-I scenario\n\n";

  TableIConfig config;
  config.seed = 3;

  TableWriter table({"sender", "AODV", "OLSR", "DYMO"});
  TableWriter delays({"sender", "AODV delay [s]", "OLSR delay [s]",
                      "DYMO delay [s]", "AODV 1st-route [s]",
                      "DYMO 1st-route [s]"});
  std::vector<std::vector<SenderRunResult>> all;
  for (const Protocol protocol :
       {Protocol::kAodv, Protocol::kOlsr, Protocol::kDymo}) {
    config.protocol = protocol;
    all.push_back(run_all_senders(config, 1, 8, jobs));
  }
  double sums[3] = {0, 0, 0};
  for (std::size_t s = 0; s < 8; ++s) {
    table.add_row({static_cast<std::int64_t>(s + 1), all[0][s].pdr,
                   all[1][s].pdr, all[2][s].pdr});
    delays.add_row({static_cast<std::int64_t>(s + 1), all[0][s].mean_delay_s,
                    all[1][s].mean_delay_s, all[2][s].mean_delay_s,
                    all[0][s].first_delivery_delay_s,
                    all[2][s].first_delivery_delay_s});
    for (int p = 0; p < 3; ++p) sums[p] += all[static_cast<std::size_t>(p)][s].pdr;
  }
  table.print(std::cout);
  table.write_csv_file("fig11_pdr.csv");

  std::printf("\nmean PDR: AODV %.3f | OLSR %.3f | DYMO %.3f\n", sums[0] / 8,
              sums[1] / 8, sums[2] / 8);

  std::cout << "\nDelay detail (paper Sec. IV-C: AODV needs more time to "
               "find a route than DYMO):\n";
  delays.print(std::cout);

  std::cout << "\nRouting overhead (paper future-work metric):\n";
  TableWriter overhead({"protocol", "ctrl packets (all runs)",
                        "ctrl bytes", "route discoveries"});
  const char* names[3] = {"AODV", "OLSR", "DYMO"};
  for (std::size_t p = 0; p < 3; ++p) {
    std::uint64_t packets = 0, bytes = 0, discoveries = 0;
    for (const auto& r : all[p]) {
      packets += r.control_packets;
      bytes += r.control_bytes;
      discoveries += r.route_discoveries;
    }
    overhead.add_row({std::string(names[p]),
                      static_cast<std::int64_t>(packets),
                      static_cast<std::int64_t>(bytes),
                      static_cast<std::int64_t>(discoveries)});
  }
  overhead.print(std::cout);

  // Seed-sweep confidence intervals (sender 5, 5 independent seeds) — the
  // single-seed tables above are point estimates; this quantifies spread.
  std::cout << "\nSeed sweep (sender 5, seeds 1..5, mean +/- 95% CI):\n";
  TableWriter ci({"protocol", "PDR", "+/-", "ctrl bytes", "+/-"});
  const auto seeds = default_seeds(5);
  for (const Protocol protocol :
       {Protocol::kAodv, Protocol::kOlsr, Protocol::kDymo}) {
    TableIConfig sweep_config;
    sweep_config.protocol = protocol;
    sweep_config.sender = 5;
    const auto sweep = run_seed_sweep(sweep_config, seeds, jobs);
    ci.add_row({std::string(to_string(protocol)), sweep.pdr.mean,
                sweep.pdr.ci95, sweep.control_bytes.mean,
                sweep.control_bytes.ci95});
  }
  ci.print(std::cout);

  std::cout << "\nInstrumented point (AODV, sender 5, full observability):\n";
  return run_instrumented_point(config);
}
