// Reproduces paper Fig. 11: packet delivery ratio per sender id (1..8)
// for AODV, OLSR and DYMO over the Table-I scenario.
//
// Expected shape: reactive protocols (AODV, DYMO) above OLSR for most
// senders; PDR tends to drop as the sender's initial distance from the
// receiver grows.
#include <cstdio>
#include <iostream>

#include "scenario/experiment.h"
#include "scenario/table1.h"
#include "util/table_writer.h"

int main() {
  using namespace cavenet;
  using namespace cavenet::scenario;

  std::cout << "Fig. 11: PDR vs sender id, Table-I scenario\n\n";

  TableIConfig config;
  config.seed = 3;

  TableWriter table({"sender", "AODV", "OLSR", "DYMO"});
  TableWriter delays({"sender", "AODV delay [s]", "OLSR delay [s]",
                      "DYMO delay [s]", "AODV 1st-route [s]",
                      "DYMO 1st-route [s]"});
  std::vector<std::vector<SenderRunResult>> all;
  for (const Protocol protocol :
       {Protocol::kAodv, Protocol::kOlsr, Protocol::kDymo}) {
    config.protocol = protocol;
    all.push_back(run_all_senders(config, 1, 8));
  }
  double sums[3] = {0, 0, 0};
  for (std::size_t s = 0; s < 8; ++s) {
    table.add_row({static_cast<std::int64_t>(s + 1), all[0][s].pdr,
                   all[1][s].pdr, all[2][s].pdr});
    delays.add_row({static_cast<std::int64_t>(s + 1), all[0][s].mean_delay_s,
                    all[1][s].mean_delay_s, all[2][s].mean_delay_s,
                    all[0][s].first_delivery_delay_s,
                    all[2][s].first_delivery_delay_s});
    for (int p = 0; p < 3; ++p) sums[p] += all[static_cast<std::size_t>(p)][s].pdr;
  }
  table.print(std::cout);
  table.write_csv_file("fig11_pdr.csv");

  std::printf("\nmean PDR: AODV %.3f | OLSR %.3f | DYMO %.3f\n", sums[0] / 8,
              sums[1] / 8, sums[2] / 8);

  std::cout << "\nDelay detail (paper Sec. IV-C: AODV needs more time to "
               "find a route than DYMO):\n";
  delays.print(std::cout);

  std::cout << "\nRouting overhead (paper future-work metric):\n";
  TableWriter overhead({"protocol", "ctrl packets (all runs)",
                        "ctrl bytes", "route discoveries"});
  const char* names[3] = {"AODV", "OLSR", "DYMO"};
  for (std::size_t p = 0; p < 3; ++p) {
    std::uint64_t packets = 0, bytes = 0, discoveries = 0;
    for (const auto& r : all[p]) {
      packets += r.control_packets;
      bytes += r.control_bytes;
      discoveries += r.route_discoveries;
    }
    overhead.add_row({std::string(names[p]),
                      static_cast<std::int64_t>(packets),
                      static_cast<std::int64_t>(bytes),
                      static_cast<std::int64_t>(discoveries)});
  }
  overhead.print(std::cout);

  // Seed-sweep confidence intervals (sender 5, 5 independent seeds) — the
  // single-seed tables above are point estimates; this quantifies spread.
  std::cout << "\nSeed sweep (sender 5, seeds 1..5, mean +/- 95% CI):\n";
  TableWriter ci({"protocol", "PDR", "+/-", "ctrl bytes", "+/-"});
  const auto seeds = default_seeds(5);
  for (const Protocol protocol :
       {Protocol::kAodv, Protocol::kOlsr, Protocol::kDymo}) {
    TableIConfig sweep_config;
    sweep_config.protocol = protocol;
    sweep_config.sender = 5;
    const auto sweep = run_seed_sweep(sweep_config, seeds);
    ci.add_row({std::string(to_string(protocol)), sweep.pdr.mean,
                sweep.pdr.ci95, sweep.control_bytes.mean,
                sweep.control_bytes.ci95});
  }
  ci.print(std::cout);
  return 0;
}
