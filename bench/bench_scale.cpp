// Scaling sweep: what does one transmission cost as the fleet grows?
//
// Runs the Table-I protocol stack at constant vehicle density (10 veh/km,
// the paper's 30 vehicles / 3000 m) on proportionally longer circuits for
// N = 30 / 100 / 300 / 1000 vehicles under AODV and OLSR, and reports per
// point: events dispatched, channel transmissions, receive-power
// evaluations performed vs culled by the spatial index (chan.* counters),
// the cull factor (evaluations a full O(N) fan-out would have cost per
// one performed), kernel handler wall time, and whole-run wall clock.
//
// --jobs N     fan the sweep points across N ensemble workers (results
//              are bitwise-identical for every N; wall-clock columns
//              vary).
// --smoke      tiny fleets + short runs; the `bench-smoke` ctest label
//              runs this mode so the bench itself stays green under the
//              sanitizer presets. Smoke runs also record kernel-ms and
//              events/s per sweep point into BENCH_scale.json (keyed by
//              --json-label, default "current"), extending the
//              checked-in perf trajectory.
// --linear     use the brute-force channel (kLinear) instead of the
//              grid, for A/B-ing the index's win.
// --shards K   run every point unsharded AND with K spatial shards
//              (docs/SCALING.md "Sharding"), verify the runs
//              byte-identical on every deterministic field, and report
//              the speedup. The shard-smoke ctest label runs
//              `--smoke --shards 4`.
// --threads T  add a (shards, T-lane) variant of every point on top of
//              the --shards pairing (docs/SCALING.md "Threading"); the
//              equivalence gate byte-compares it against the serial
//              baseline, and BENCH_scale.json points record `threads`
//              plus the machine's `hw` lane count so the efficiency
//              gate (tools/bench_check.py --efficiency) can skip
//              underprovisioned hosts.
// --vehicles   comma-separated fleet-size override (e.g.
//              --vehicles 10000).
// --duration S sim-seconds override per point.
// --json       write BENCH_scale.json even outside --smoke.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "scenario/scale.h"
#include "util/cli_args.h"
#include "util/executor.h"
#include "util/table_writer.h"

namespace {

/// Rewrites BENCH_scale.json with this run's kernel-ms / events-per-s
/// per sweep point under `label`, keeping entries with other labels.
/// Shape: {"entries": [{"label": "...", "points": [{...}, ...]}, ...]}
void write_scale_json(
    const std::string& path, const std::string& label,
    const std::vector<cavenet::scenario::ScaleRunResult>& results) {
  using cavenet::obs::JsonValue;
  std::vector<std::string> kept;  // raw pre-serialized entries
  if (std::ifstream in(path); in.is_open()) {
    std::stringstream buf;
    buf << in.rdbuf();
    const JsonValue doc = cavenet::obs::parse_json(buf.str());
    if (const JsonValue* entries = doc.find("entries");
        entries != nullptr && entries->is_array()) {
      for (const JsonValue& entry : entries->array) {
        const JsonValue* entry_label = entry.find("label");
        const JsonValue* points = entry.find("points");
        if (entry_label == nullptr || !entry_label->is_string() ||
            entry_label->string == label || points == nullptr ||
            !points->is_array()) {
          continue;
        }
        cavenet::obs::JsonWriter raw;
        raw.begin_object();
        raw.key("label");
        raw.value(entry_label->string);
        raw.key("points");
        raw.begin_array();
        for (const JsonValue& point : points->array) {
          raw.begin_object();
          for (const auto& [name, value] : point.object) {
            raw.key(name);
            if (value.is_string()) {
              raw.value(value.string);
            } else {
              raw.value(value.number);
            }
          }
          raw.end_object();
        }
        raw.end_array();
        raw.end_object();
        kept.push_back(raw.str());
      }
    }
  }

  cavenet::obs::JsonWriter w;
  w.begin_object();
  w.key("entries");
  w.begin_array();
  for (const std::string& entry : kept) w.raw(entry);
  w.begin_object();
  w.key("label");
  w.value(label);
  w.key("points");
  w.begin_array();
  for (const cavenet::scenario::ScaleRunResult& r : results) {
    w.begin_object();
    w.key("protocol");
    w.value(to_string(r.protocol));
    w.key("vehicles");
    w.value(static_cast<std::int64_t>(r.vehicles));
    w.key("shards");
    w.value(static_cast<std::int64_t>(r.shards));
    w.key("threads");
    w.value(static_cast<std::int64_t>(r.threads));
    // Lanes this host can actually provide: the scaling-efficiency gate
    // skips points whose requested threads exceed it.
    w.key("hw");
    w.value(static_cast<std::int64_t>(cavenet::exec::resolve_workers(0)));
    w.key("events");
    w.value(static_cast<std::uint64_t>(r.flow.events_dispatched));
    w.key("kernel_ms");
    w.value(r.kernel_wall_ms);
    w.key("wall_ms");
    w.value(r.wall_s * 1e3);
    w.key("events_per_s");
    w.value(r.wall_s > 0.0
                ? static_cast<double>(r.flow.events_dispatched) / r.wall_s
                : 0.0);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_array();
  w.end_object();

  std::ofstream out(path, std::ios::trunc);
  out << w.str() << '\n';
  std::cout << "json: " << path << " (label \"" << label << "\")\n";
}

/// Every deterministic field of a scale point, rendered exactly
/// (hexfloat doubles). Two runs of the same point at different shard
/// counts must produce identical text — the bench's own equivalence
/// gate, independent of the test suite's.
std::string deterministic_dump(const cavenet::scenario::ScaleRunResult& r) {
  const auto hex = [](double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", v);
    return std::string(buf);
  };
  std::ostringstream out;
  const cavenet::scenario::SenderRunResult& f = r.flow;
  out << to_string(r.protocol) << ' ' << r.vehicles << '\n'
      << f.tx_packets << ' ' << f.rx_packets << ' ' << hex(f.pdr) << ' '
      << hex(f.mean_delay_s) << ' ' << hex(f.max_delay_s) << ' '
      << hex(f.first_delivery_delay_s) << ' ' << hex(f.mean_hop_count)
      << '\n'
      << f.control_packets << ' ' << f.control_bytes << ' '
      << f.route_discoveries << ' ' << f.mac_collisions << ' '
      << f.mac_retries << ' ' << f.mac_tx_failed << ' '
      << f.events_dispatched << ' ' << hex(f.channel_utilization) << '\n'
      << r.transmissions << ' ' << r.rx_power_evaluated << ' '
      << r.rx_power_culled << '\n';
  for (const double g : f.goodput_bps) out << hex(g) << ' ';
  out << '\n';
  return out.str();
}

std::vector<std::int32_t> parse_fleets(const std::string& csv) {
  std::vector<std::int32_t> fleets;
  std::stringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    const int n = std::atoi(item.c_str());
    if (n < 2) {
      throw std::invalid_argument("--vehicles: bad fleet size '" + item +
                                  "'");
    }
    fleets.push_back(n);
  }
  if (fleets.empty()) throw std::invalid_argument("--vehicles: empty list");
  return fleets;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cavenet;
  using namespace cavenet::scenario;

  CliArgs args(argc, argv);
  const int jobs = static_cast<int>(args.get_int("jobs", 1));
  const bool smoke = args.get_bool("smoke", false);
  const bool linear = args.get_bool("linear", false);
  const int shards = static_cast<int>(args.get_int("shards", 1));
  const int threads = static_cast<int>(args.get_int("threads", 1));
  const std::string vehicles_csv = args.get_string("vehicles", "");
  const double duration_override = args.get_double("duration", 0.0);
  const bool write_json = args.get_bool("json", false);
  const std::string json_label = args.get_string("json-label", "current");
  for (const std::string& flag : args.unknown_flags()) {
    std::cerr << args.describe_unknown(flag) << "\n";
    return 2;
  }
  if (shards < 1) {
    std::cerr << "--shards must be >= 1\n";
    return 2;
  }
  if (threads < 1) {
    std::cerr << "--threads must be >= 1\n";
    return 2;
  }

  std::vector<std::int32_t> fleets;
  try {
    fleets = !vehicles_csv.empty()
                 ? parse_fleets(vehicles_csv)
                 : smoke ? std::vector<std::int32_t>{10, 20}
                         : std::vector<std::int32_t>{30, 100, 300, 1000};
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  const double duration_s =
      duration_override > 0.0 ? duration_override : (smoke ? 6.0 : 30.0);
  const double traffic_start_s = smoke ? 1.0 : 5.0;

  // Parallel variants of every point, serial baseline first. Each extra
  // variant feeds the equivalence gate (byte-identical against the
  // baseline) and gets a speedup column.
  std::vector<std::pair<int, int>> variants{{1, 1}};  // (shards, threads)
  if (shards > 1) variants.emplace_back(shards, 1);
  if (threads > 1) variants.emplace_back(shards, threads);

  std::vector<ScaleConfig> sweep;
  for (const Protocol protocol : {Protocol::kAodv, Protocol::kOlsr}) {
    for (const std::int32_t n : fleets) {
      ScaleConfig config;
      config.protocol = protocol;
      config.vehicles = n;
      config.duration_s = duration_s;
      config.traffic_start_s = traffic_start_s;
      config.channel_index =
          linear ? phy::ChannelIndex::kLinear : phy::ChannelIndex::kGrid;
      for (const auto& [variant_shards, variant_threads] : variants) {
        config.parallel.shards = variant_shards;
        config.parallel.threads = variant_threads;
        sweep.push_back(config);
      }
    }
  }

  std::cout << "Scaling sweep: Table-I stack at 10 veh/km, N = ";
  for (std::size_t i = 0; i < fleets.size(); ++i) {
    std::cout << (i ? "/" : "") << fleets[i];
  }
  std::cout << " vehicles, AODV + OLSR, channel index "
            << (linear ? "linear (brute force)" : "grid");
  if (shards > 1) std::cout << ", shards 1 vs " << shards;
  if (threads > 1) std::cout << ", threads 1 vs " << threads;
  std::cout << "\n\n";

  const std::vector<ScaleRunResult> results = run_scale_sweep(sweep, jobs);

  TableWriter table({"protocol", "N", "shards", "threads", "PDR", "events",
                     "chan tx", "rx-pow eval", "rx-pow culled", "cull x",
                     "kernel [ms]", "wall [s]", "ev/s"});
  for (const ScaleRunResult& r : results) {
    table.add_row({std::string(to_string(r.protocol)),
                   static_cast<std::int64_t>(r.vehicles),
                   static_cast<std::int64_t>(r.shards),
                   static_cast<std::int64_t>(r.threads), r.flow.pdr,
                   static_cast<std::int64_t>(r.flow.events_dispatched),
                   static_cast<std::int64_t>(r.transmissions),
                   static_cast<std::int64_t>(r.rx_power_evaluated),
                   static_cast<std::int64_t>(r.rx_power_culled),
                   r.cull_factor, r.kernel_wall_ms, r.wall_s,
                   r.wall_s > 0.0
                       ? static_cast<double>(r.flow.events_dispatched) /
                             r.wall_s
                       : 0.0});
  }
  table.print(std::cout);
  table.write_csv_file("scale.csv");
  std::cout << "\ncsv: scale.csv\n";
  if (smoke || write_json) {
    write_scale_json("BENCH_scale.json", json_label, results);
  }

  // Parallel equivalence gate: the sweep interleaves every point's
  // variants with its serial baseline first; anything non-identical in
  // the deterministic fields is a kernel bug, not a perf regression.
  int failures = 0;
  if (variants.size() > 1) {
    for (std::size_t i = 0; i + variants.size() <= results.size();
         i += variants.size()) {
      const ScaleRunResult& base = results[i];
      const std::string base_dump = deterministic_dump(base);
      for (std::size_t v = 1; v < variants.size(); ++v) {
        const ScaleRunResult& par = results[i + v];
        const std::string par_dump = deterministic_dump(par);
        if (base_dump != par_dump) {
          std::printf(
              "FAIL %s N=%d: shards=%d threads=%d run diverges from the "
              "serial baseline\n"
              "--- shards=1 threads=1 ---\n%s--- shards=%d threads=%d ---\n%s",
              std::string(to_string(base.protocol)).c_str(), base.vehicles,
              par.shards, par.threads, base_dump.c_str(), par.shards,
              par.threads, par_dump.c_str());
          ++failures;
          continue;
        }
        const double speedup =
            par.wall_s > 0.0 ? base.wall_s / par.wall_s : 0.0;
        std::printf(
            "equiv %s N=%d: byte-identical, shards=%d threads=%d "
            "speedup %.2fx\n",
            std::string(to_string(base.protocol)).c_str(), base.vehicles,
            par.shards, par.threads, speedup);
      }
    }
  }

  // Sanity gates so the smoke run fails loudly if the index regresses:
  // every pair (transmission, other radio) is either evaluated or culled,
  // and at the largest fleet the index must pay for itself.
  for (const ScaleRunResult& r : results) {
    const auto expected =
        r.transmissions * static_cast<std::uint64_t>(r.vehicles - 1);
    if (r.rx_power_evaluated + r.rx_power_culled != expected) {
      std::printf("FAIL %s N=%d: eval %llu + culled %llu != tx*(N-1) %llu\n",
                  std::string(to_string(r.protocol)).c_str(), r.vehicles,
                  static_cast<unsigned long long>(r.rx_power_evaluated),
                  static_cast<unsigned long long>(r.rx_power_culled),
                  static_cast<unsigned long long>(expected));
      ++failures;
    }
  }
  if (!smoke && !linear) {
    for (const ScaleRunResult& r : results) {
      if (r.vehicles >= 1000 && r.cull_factor < 5.0) {
        std::printf("FAIL %s N=%d: cull factor %.2f < 5\n",
                    std::string(to_string(r.protocol)).c_str(), r.vehicles,
                    r.cull_factor);
        ++failures;
      }
    }
  }
  return failures;
}
