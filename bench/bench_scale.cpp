// Scaling sweep: what does one transmission cost as the fleet grows?
//
// Runs the Table-I protocol stack at constant vehicle density (10 veh/km,
// the paper's 30 vehicles / 3000 m) on proportionally longer circuits for
// N = 30 / 100 / 300 / 1000 vehicles under AODV and OLSR, and reports per
// point: events dispatched, channel transmissions, receive-power
// evaluations performed vs culled by the spatial index (chan.* counters),
// the cull factor (evaluations a full O(N) fan-out would have cost per
// one performed), kernel handler wall time, and whole-run wall clock.
//
// --jobs N   fan the sweep points across N ensemble workers (results are
//            bitwise-identical for every N; wall-clock columns vary).
// --smoke    tiny fleets + short runs; the `bench-smoke` ctest label runs
//            this mode so the bench itself stays green under the
//            sanitizer presets. Smoke runs also record kernel-ms and
//            events/s per sweep point into BENCH_scale.json (keyed by
//            --json-label, default "current"), extending the checked-in
//            perf trajectory.
// --linear   use the brute-force channel (kLinear) instead of the grid,
//            for A/B-ing the index's win.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "scenario/scale.h"
#include "util/cli_args.h"
#include "util/table_writer.h"

namespace {

/// Rewrites BENCH_scale.json with this run's kernel-ms / events-per-s
/// per sweep point under `label`, keeping entries with other labels.
/// Shape: {"entries": [{"label": "...", "points": [{...}, ...]}, ...]}
void write_scale_json(
    const std::string& path, const std::string& label,
    const std::vector<cavenet::scenario::ScaleRunResult>& results) {
  using cavenet::obs::JsonValue;
  std::vector<std::string> kept;  // raw pre-serialized entries
  if (std::ifstream in(path); in.is_open()) {
    std::stringstream buf;
    buf << in.rdbuf();
    const JsonValue doc = cavenet::obs::parse_json(buf.str());
    if (const JsonValue* entries = doc.find("entries");
        entries != nullptr && entries->is_array()) {
      for (const JsonValue& entry : entries->array) {
        const JsonValue* entry_label = entry.find("label");
        const JsonValue* points = entry.find("points");
        if (entry_label == nullptr || !entry_label->is_string() ||
            entry_label->string == label || points == nullptr ||
            !points->is_array()) {
          continue;
        }
        cavenet::obs::JsonWriter raw;
        raw.begin_object();
        raw.key("label");
        raw.value(entry_label->string);
        raw.key("points");
        raw.begin_array();
        for (const JsonValue& point : points->array) {
          raw.begin_object();
          for (const auto& [name, value] : point.object) {
            raw.key(name);
            if (value.is_string()) {
              raw.value(value.string);
            } else {
              raw.value(value.number);
            }
          }
          raw.end_object();
        }
        raw.end_array();
        raw.end_object();
        kept.push_back(raw.str());
      }
    }
  }

  cavenet::obs::JsonWriter w;
  w.begin_object();
  w.key("entries");
  w.begin_array();
  for (const std::string& entry : kept) w.raw(entry);
  w.begin_object();
  w.key("label");
  w.value(label);
  w.key("points");
  w.begin_array();
  for (const cavenet::scenario::ScaleRunResult& r : results) {
    w.begin_object();
    w.key("protocol");
    w.value(to_string(r.protocol));
    w.key("vehicles");
    w.value(static_cast<std::int64_t>(r.vehicles));
    w.key("events");
    w.value(static_cast<std::uint64_t>(r.flow.events_dispatched));
    w.key("kernel_ms");
    w.value(r.kernel_wall_ms);
    w.key("events_per_s");
    w.value(r.wall_s > 0.0
                ? static_cast<double>(r.flow.events_dispatched) / r.wall_s
                : 0.0);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_array();
  w.end_object();

  std::ofstream out(path, std::ios::trunc);
  out << w.str() << '\n';
  std::cout << "json: " << path << " (label \"" << label << "\")\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cavenet;
  using namespace cavenet::scenario;

  CliArgs args(argc, argv);
  const int jobs = static_cast<int>(args.get_int("jobs", 1));
  const bool smoke = args.get_bool("smoke", false);
  const bool linear = args.get_bool("linear", false);
  const std::string json_label = args.get_string("json-label", "current");
  for (const std::string& flag : args.unknown_flags()) {
    std::cerr << args.describe_unknown(flag) << "\n";
    return 2;
  }

  const std::vector<std::int32_t> fleets =
      smoke ? std::vector<std::int32_t>{10, 20}
            : std::vector<std::int32_t>{30, 100, 300, 1000};
  const double duration_s = smoke ? 6.0 : 30.0;
  const double traffic_start_s = smoke ? 1.0 : 5.0;

  std::vector<ScaleConfig> sweep;
  for (const Protocol protocol : {Protocol::kAodv, Protocol::kOlsr}) {
    for (const std::int32_t n : fleets) {
      ScaleConfig config;
      config.protocol = protocol;
      config.vehicles = n;
      config.duration_s = duration_s;
      config.traffic_start_s = traffic_start_s;
      config.channel_index =
          linear ? phy::ChannelIndex::kLinear : phy::ChannelIndex::kGrid;
      sweep.push_back(config);
    }
  }

  std::cout << "Scaling sweep: Table-I stack at 10 veh/km, N = ";
  for (std::size_t i = 0; i < fleets.size(); ++i) {
    std::cout << (i ? "/" : "") << fleets[i];
  }
  std::cout << " vehicles, AODV + OLSR, channel index "
            << (linear ? "linear (brute force)" : "grid") << "\n\n";

  const std::vector<ScaleRunResult> results = run_scale_sweep(sweep, jobs);

  TableWriter table({"protocol", "N", "PDR", "events", "chan tx",
                     "rx-pow eval", "rx-pow culled", "cull x",
                     "kernel [ms]", "wall [s]", "ev/s"});
  for (const ScaleRunResult& r : results) {
    table.add_row({std::string(to_string(r.protocol)),
                   static_cast<std::int64_t>(r.vehicles), r.flow.pdr,
                   static_cast<std::int64_t>(r.flow.events_dispatched),
                   static_cast<std::int64_t>(r.transmissions),
                   static_cast<std::int64_t>(r.rx_power_evaluated),
                   static_cast<std::int64_t>(r.rx_power_culled),
                   r.cull_factor, r.kernel_wall_ms, r.wall_s,
                   r.wall_s > 0.0
                       ? static_cast<double>(r.flow.events_dispatched) /
                             r.wall_s
                       : 0.0});
  }
  table.print(std::cout);
  table.write_csv_file("scale.csv");
  std::cout << "\ncsv: scale.csv\n";
  if (smoke) write_scale_json("BENCH_scale.json", json_label, results);

  // Sanity gates so the smoke run fails loudly if the index regresses:
  // every pair (transmission, other radio) is either evaluated or culled,
  // and at the largest fleet the index must pay for itself.
  int failures = 0;
  for (const ScaleRunResult& r : results) {
    const auto expected =
        r.transmissions * static_cast<std::uint64_t>(r.vehicles - 1);
    if (r.rx_power_evaluated + r.rx_power_culled != expected) {
      std::printf("FAIL %s N=%d: eval %llu + culled %llu != tx*(N-1) %llu\n",
                  std::string(to_string(r.protocol)).c_str(), r.vehicles,
                  static_cast<unsigned long long>(r.rx_power_evaluated),
                  static_cast<unsigned long long>(r.rx_power_culled),
                  static_cast<unsigned long long>(expected));
      ++failures;
    }
  }
  if (!smoke && !linear) {
    for (const ScaleRunResult& r : results) {
      if (r.vehicles >= 1000 && r.cull_factor < 5.0) {
        std::printf("FAIL %s N=%d: cull factor %.2f < 5\n",
                    std::string(to_string(r.protocol)).c_str(), r.vehicles,
                    r.cull_factor);
        ++failures;
      }
    }
  }
  return failures;
}
