// Microbenchmarks (google-benchmark): throughput of the hot paths — CA
// stepping, FFT/periodogram, event scheduling, packet copies, and the
// full MAC frame exchange.
#include <benchmark/benchmark.h>

#include "analysis/fft.h"
#include "analysis/spectrum.h"
#include "core/nas_lane.h"
#include "mac/wifi_mac.h"
#include "netsim/packet_log.h"
#include "netsim/scheduler.h"
#include "obs/stats_registry.h"
#include "phy/channel.h"
#include "scenario/table1.h"

namespace {

using namespace cavenet;

void BM_NasLaneStep(benchmark::State& state) {
  ca::NasParams params;
  params.lane_length = state.range(0);
  params.slowdown_p = 0.3;
  ca::NasLane lane(params, params.lane_length / 4,
                   ca::InitialPlacement::kRandom, Rng(1));
  for (auto _ : state) {
    lane.step();
    benchmark::DoNotOptimize(lane.average_velocity());
  }
  state.SetItemsProcessed(state.iterations() * lane.vehicle_count());
}
BENCHMARK(BM_NasLaneStep)->Arg(400)->Arg(4000)->Arg(40000);

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::complex<double>> data(n);
  Rng rng(2);
  for (auto& x : data) x = rng.normal();
  for (auto _ : state) {
    auto copy = data;
    analysis::fft_in_place(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fft)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_Periodogram(benchmark::State& state) {
  std::vector<double> signal(8192);
  Rng rng(3);
  for (auto& x : signal) x = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::periodogram(signal));
  }
}
BENCHMARK(BM_Periodogram);

void BM_SchedulerChurn(benchmark::State& state) {
  netsim::Scheduler scheduler;
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      scheduler.schedule_at(SimTime::nanoseconds(t + (i * 37) % 1000),
                            [] {});
    }
    while (scheduler.run_one()) {
    }
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SchedulerChurn);

void BM_PacketLogRecord(benchmark::State& state) {
  // Per-event logging cost. Type names are interned, so the steady state
  // is an O(log n) set lookup plus a push_back — no heap allocation per
  // record (before interning, every record built a std::string).
  netsim::PacketLog log;
  log.set_max_entries(1u << 16);
  std::int64_t t = 0;
  for (auto _ : state) {
    if (log.size() + 64 >= log.max_entries()) {
      state.PauseTiming();
      log.clear();
      state.ResumeTiming();
    }
    for (int i = 0; i < 64; ++i) {
      log.record(SimTime::nanoseconds(t + i), netsim::PacketLog::Event::kSend,
                 netsim::PacketLog::Layer::kMac, 4,
                 static_cast<std::uint64_t>(i), i % 2 ? "cbr" : "aodv-rreq",
                 512);
    }
    t += 64;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PacketLogRecord);

void BM_StatsCounterInc(benchmark::State& state) {
  // The hot-path stats increment: a single add through a pointer, both
  // bound and unbound (discard-cell) handles.
  obs::StatsRegistry registry;
  obs::Counter bound = registry.counter("bench.counter");
  obs::Counter unbound;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      bound.inc();
      unbound.inc();
    }
  }
  benchmark::DoNotOptimize(bound.value());
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_StatsCounterInc);

void BM_PacketCopy(benchmark::State& state) {
  netsim::Packet packet(512);
  mac::MacHeader mac_header;
  routing::DataHeader data_header;
  packet.push(data_header);
  packet.push(mac_header);
  for (auto _ : state) {
    netsim::Packet copy = packet;
    benchmark::DoNotOptimize(copy.size_bytes());
  }
}
BENCHMARK(BM_PacketCopy);

void BM_MacUnicastExchange(benchmark::State& state) {
  // Full DATA + ACK exchange between two stations per iteration.
  netsim::Simulator sim(4);
  phy::Channel channel(sim, std::make_unique<phy::TwoRayGroundModel>());
  netsim::StaticMobility ma({0, 0});
  netsim::StaticMobility mb({150, 0});
  phy::WifiPhy pa(sim, 0, &ma);
  phy::WifiPhy pb(sim, 1, &mb);
  phy::Channel::Attachment la = channel.attach(&pa);
  phy::Channel::Attachment lb = channel.attach(&pb);
  mac::WifiMac a(sim, pa, {}, 0);
  mac::WifiMac b(sim, pb, {}, 1);
  b.set_receive_callback([](netsim::Packet, netsim::NodeId) {});
  for (auto _ : state) {
    a.send(netsim::Packet(512), 1);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MacUnicastExchange);

void BM_Table1SecondOfSimulation(benchmark::State& state) {
  // Cost of one simulated second of the full 30-node Table-I scenario.
  for (auto _ : state) {
    state.PauseTiming();
    scenario::TableIConfig config;
    config.protocol = scenario::Protocol::kDymo;
    config.duration_s = 5.0;
    config.traffic_start_s = 1.0;
    config.traffic_stop_s = 4.0;
    state.ResumeTiming();
    benchmark::DoNotOptimize(scenario::run_table1(config));
  }
}
BENCHMARK(BM_Table1SecondOfSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
