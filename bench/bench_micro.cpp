// Microbenchmarks (google-benchmark): throughput of the hot paths — CA
// stepping, FFT/periodogram, event scheduling, packet copies, and the
// full MAC frame exchange.
//
// --json[=path] additionally records name -> ns/op into BENCH_micro.json
// (default path), keyed by --json-label=<label>. Entries accumulate in
// the file, so the checked-in copy carries the perf trajectory across
// PRs and a regression shows up as a diff.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/fft.h"
#include "analysis/spectrum.h"
#include "core/nas_lane.h"
#include "mac/wifi_mac.h"
#include "netsim/packet_log.h"
#include "netsim/scheduler.h"
#include "obs/json.h"
#include "obs/stats_registry.h"
#include "phy/channel.h"
#include "scenario/table1.h"

namespace {

using namespace cavenet;

void BM_NasLaneStep(benchmark::State& state) {
  ca::NasParams params;
  params.lane_length = state.range(0);
  params.slowdown_p = 0.3;
  ca::NasLane lane(params, params.lane_length / 4,
                   ca::InitialPlacement::kRandom, Rng(1));
  for (auto _ : state) {
    lane.step();
    benchmark::DoNotOptimize(lane.average_velocity());
  }
  state.SetItemsProcessed(state.iterations() * lane.vehicle_count());
}
BENCHMARK(BM_NasLaneStep)->Arg(400)->Arg(4000)->Arg(40000)->Arg(400000);

void BM_NasLaneStepDensity(benchmark::State& state) {
  // Density sweep at fixed lane length: the gap/velocity passes touch
  // every vehicle, so ns/op scales with rho while ns/vehicle should
  // stay flat. Arg is density in percent of lane_length.
  ca::NasParams params;
  params.lane_length = 40000;
  params.slowdown_p = 0.3;
  const auto vehicles = params.lane_length * state.range(0) / 100;
  ca::NasLane lane(params, vehicles, ca::InitialPlacement::kRandom, Rng(1));
  for (auto _ : state) {
    lane.step();
    benchmark::DoNotOptimize(lane.average_velocity());
  }
  state.SetItemsProcessed(state.iterations() * lane.vehicle_count());
}
BENCHMARK(BM_NasLaneStepDensity)->Arg(5)->Arg(15)->Arg(50);

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::complex<double>> data(n);
  Rng rng(2);
  for (auto& x : data) x = rng.normal();
  for (auto _ : state) {
    auto copy = data;
    analysis::fft_in_place(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fft)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_Periodogram(benchmark::State& state) {
  std::vector<double> signal(8192);
  Rng rng(3);
  for (auto& x : signal) x = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::periodogram(signal));
  }
}
BENCHMARK(BM_Periodogram);

void BM_SchedulerChurn(benchmark::State& state) {
  netsim::Scheduler scheduler;
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      scheduler.schedule_at(SimTime::nanoseconds(t + (i * 37) % 1000),
                            [] {});
    }
    while (scheduler.run_one()) {
    }
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SchedulerChurn);

void BM_PacketLogRecord(benchmark::State& state) {
  // Per-event logging cost. Type names are interned, so the steady state
  // is an O(log n) set lookup plus a push_back — no heap allocation per
  // record (before interning, every record built a std::string).
  netsim::PacketLog log;
  log.set_max_entries(1u << 16);
  std::int64_t t = 0;
  for (auto _ : state) {
    if (log.size() + 64 >= log.max_entries()) {
      state.PauseTiming();
      log.clear();
      state.ResumeTiming();
    }
    for (int i = 0; i < 64; ++i) {
      log.record(SimTime::nanoseconds(t + i), netsim::PacketLog::Event::kSend,
                 netsim::PacketLog::Layer::kMac, 4,
                 static_cast<std::uint64_t>(i), i % 2 ? "cbr" : "aodv-rreq",
                 512);
    }
    t += 64;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PacketLogRecord);

void BM_StatsCounterInc(benchmark::State& state) {
  // The hot-path stats increment: a single add through a pointer, both
  // bound and unbound (discard-cell) handles.
  obs::StatsRegistry registry;
  obs::Counter bound = registry.counter("bench.counter");
  obs::Counter unbound;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      bound.inc();
      unbound.inc();
    }
  }
  benchmark::DoNotOptimize(bound.value());
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_StatsCounterInc);

void BM_PacketCopy(benchmark::State& state) {
  netsim::Packet packet(512);
  mac::MacHeader mac_header;
  routing::DataHeader data_header;
  packet.push(data_header);
  packet.push(mac_header);
  for (auto _ : state) {
    netsim::Packet copy = packet;
    benchmark::DoNotOptimize(copy.size_bytes());
  }
}
BENCHMARK(BM_PacketCopy);

void BM_MacUnicastExchange(benchmark::State& state) {
  // Full DATA + ACK exchange between two stations per iteration.
  netsim::Simulator sim(4);
  phy::Channel channel(sim, std::make_unique<phy::TwoRayGroundModel>());
  netsim::StaticMobility ma({0, 0});
  netsim::StaticMobility mb({150, 0});
  phy::WifiPhy pa(sim, 0, &ma);
  phy::WifiPhy pb(sim, 1, &mb);
  phy::Channel::Attachment la = channel.attach(&pa);
  phy::Channel::Attachment lb = channel.attach(&pb);
  mac::WifiMac a(sim, pa, {}, 0);
  mac::WifiMac b(sim, pb, {}, 1);
  b.set_receive_callback([](netsim::Packet, netsim::NodeId) {});
  for (auto _ : state) {
    a.send(netsim::Packet(512), 1);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MacUnicastExchange);

void BM_Table1SecondOfSimulation(benchmark::State& state) {
  // Cost of one simulated second of the full 30-node Table-I scenario.
  for (auto _ : state) {
    state.PauseTiming();
    scenario::TableIConfig config;
    config.protocol = scenario::Protocol::kDymo;
    config.duration_s = 5.0;
    config.traffic_start_s = 1.0;
    config.traffic_stop_s = 4.0;
    state.ResumeTiming();
    benchmark::DoNotOptimize(scenario::run_table1(config));
  }
}
BENCHMARK(BM_Table1SecondOfSimulation)->Unit(benchmark::kMillisecond);

/// Collects per-benchmark ns/op alongside the normal console output.
class NsPerOpCollector : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      if (run.iterations == 0) continue;
      results_[run.benchmark_name()] =
          run.real_accumulated_time / static_cast<double>(run.iterations) *
          1e9;
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::map<std::string, double>& results() const { return results_; }

 private:
  std::map<std::string, double> results_;
};

/// Rewrites `path` with the collected results under `label`, preserving
/// every other entry already in the file (same-label entries are
/// replaced). File shape:
///   {"entries": [{"label": "...", "results": {"BM_x": 123.4, ...}}, ...]}
void write_bench_json(const std::string& path, const std::string& label,
                      const std::map<std::string, double>& results) {
  std::vector<std::pair<std::string, std::string>> kept;  // label -> raw
  if (std::ifstream in(path); in.is_open()) {
    std::stringstream buf;
    buf << in.rdbuf();
    const obs::JsonValue doc = obs::parse_json(buf.str());
    if (const obs::JsonValue* entries = doc.find("entries");
        entries != nullptr && entries->is_array()) {
      for (const obs::JsonValue& entry : entries->array) {
        const obs::JsonValue* entry_label = entry.find("label");
        const obs::JsonValue* entry_results = entry.find("results");
        if (entry_label == nullptr || !entry_label->is_string() ||
            entry_label->string == label || entry_results == nullptr) {
          continue;
        }
        obs::JsonWriter raw;
        raw.begin_object();
        for (const auto& [name, value] : entry_results->object) {
          raw.key(name);
          raw.value(value.number);
        }
        raw.end_object();
        kept.emplace_back(entry_label->string, raw.str());
      }
    }
  }

  obs::JsonWriter w;
  w.begin_object();
  w.key("entries");
  w.begin_array();
  for (const auto& [kept_label, kept_results] : kept) {
    w.begin_object();
    w.key("label");
    w.value(kept_label);
    w.key("results");
    w.raw(kept_results);
    w.end_object();
  }
  w.begin_object();
  w.key("label");
  w.value(label);
  w.key("results");
  w.begin_object();
  for (const auto& [name, ns_per_op] : results) {
    w.key(name);
    w.value(ns_per_op);
  }
  w.end_object();
  w.end_object();
  w.end_array();
  w.end_object();

  std::ofstream out(path, std::ios::trunc);
  out << w.str() << '\n';
  std::fprintf(stderr, "wrote %zu results under label \"%s\" to %s\n",
               results.size(), label.c_str(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string json_label = "current";
  bool json_requested = false;
  // Strip our flags before google-benchmark sees the command line.
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json_requested = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_requested = true;
      json_path = arg.substr(7);
    } else if (arg.rfind("--json-label=", 0) == 0) {
      json_label = arg.substr(13);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (json_path.empty()) json_path = "BENCH_micro.json";

  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  NsPerOpCollector reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (json_requested) {
    write_bench_json(json_path, json_label, reporter.results());
  }
  return 0;
}
