// Ablation: MAC data rate (Table I fixes 2 Mbps). Higher rates shrink
// frame airtime, cutting collision probability and serialization delay;
// 1 Mbps doubles airtime and stresses the DCF under the same load.
//
// --jobs N fans the (rate, protocol) replications across N ensemble
// workers; the table is byte-identical for every N.
#include <cstdio>
#include <iostream>

#include "runner/ensemble.h"
#include "scenario/table1.h"
#include "util/table_writer.h"

int main(int argc, char** argv) {
  using namespace cavenet;
  using namespace cavenet::scenario;

  std::cout << "Ablation: MAC rate sweep (Table I: 2 Mbps), AODV and DYMO, "
               "sender 5\n\n";

  const double rates_mbps[] = {1.0, 2.0, 11.0};
  const Protocol protocols[] = {Protocol::kAodv, Protocol::kDymo};
  runner::EnsembleOptions options;
  options.jobs = runner::parse_jobs_flag(argc, argv);
  runner::EnsembleRunner pool(options);
  const auto results = pool.map<SenderRunResult>(
      std::size(rates_mbps) * std::size(protocols),
      [&rates_mbps, &protocols](runner::ReplicationContext& ctx) {
        TableIConfig config;
        config.protocol = protocols[ctx.index % std::size(protocols)];
        config.sender = 5;
        config.seed = 3;
        config.mac_rate_bps = rates_mbps[ctx.index / std::size(protocols)] * 1e6;
        return run_table1(config);
      });

  TableWriter table({"rate [Mbps]", "protocol", "PDR", "mean delay [s]",
                     "channel util", "collisions"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SenderRunResult& r = results[i];
    table.add_row({rates_mbps[i / std::size(protocols)],
                   std::string(to_string(protocols[i % std::size(protocols)])),
                   r.pdr, r.mean_delay_s, r.channel_utilization,
                   static_cast<std::int64_t>(r.mac_collisions)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: at Table-I load the channel is far from "
               "saturation, so PDR barely moves with rate, but delay and "
               "airtime scale with frame serialization time.\n";
  return 0;
}
