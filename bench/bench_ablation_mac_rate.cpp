// Ablation: MAC data rate (Table I fixes 2 Mbps). Higher rates shrink
// frame airtime, cutting collision probability and serialization delay;
// 1 Mbps doubles airtime and stresses the DCF under the same load.
#include <cstdio>
#include <iostream>

#include "scenario/table1.h"
#include "util/table_writer.h"

int main() {
  using namespace cavenet;
  using namespace cavenet::scenario;

  std::cout << "Ablation: MAC rate sweep (Table I: 2 Mbps), AODV and DYMO, "
               "sender 5\n\n";
  TableWriter table({"rate [Mbps]", "protocol", "PDR", "mean delay [s]",
                     "channel util", "collisions"});
  for (const double rate_mbps : {1.0, 2.0, 11.0}) {
    for (const Protocol protocol : {Protocol::kAodv, Protocol::kDymo}) {
      TableIConfig config;
      config.protocol = protocol;
      config.sender = 5;
      config.seed = 3;
      config.mac_rate_bps = rate_mbps * 1e6;
      const auto r = run_table1(config);
      table.add_row({rate_mbps, std::string(to_string(protocol)), r.pdr,
                     r.mean_delay_s, r.channel_utilization,
                     static_cast<std::int64_t>(r.mac_collisions)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: at Table-I load the channel is far from "
               "saturation, so PDR barely moves with rate, but delay and "
               "airtime scale with frame serialization time.\n";
  return 0;
}
