// Paper future work ("environments"): the three protocols on an urban
// Manhattan grid with signalized intersections, versus the Table-I
// highway circuit. Urban mobility concentrates vehicles at red lights and
// disperses them mid-block; the straight-line lanes also teleport at the
// area edge (open system), so routes break harder than on the ring.
#include <cstdio>
#include <iostream>

#include "core/grid_road.h"
#include "scenario/table1.h"
#include "trace/trace_generator.h"
#include "util/table_writer.h"

namespace {

using namespace cavenet;
using namespace cavenet::scenario;

trace::MobilityTrace urban_trace(std::uint64_t seed) {
  ca::GridRoadConfig grid_config;
  grid_config.horizontal_lanes = 3;
  grid_config.vertical_lanes = 3;
  grid_config.block_cells = 60;  // 450 m blocks: 1350 m x 1350 m downtown
  grid_config.vehicles_per_lane = 8;
  grid_config.slowdown_p = 0.3;
  grid_config.green_period_steps = 20;
  grid_config.seed = seed;
  ca::GridRoad grid(grid_config);

  trace::TraceGeneratorOptions options;
  options.steps = 100;
  options.pre_step = [&grid](ca::Road& road) { grid.apply_signals(road); };
  return trace::generate_trace(grid.road(), options);
}

}  // namespace

int main() {
  std::cout << "Urban grid (3x3 signalized Manhattan, 48 vehicles) vs the "
               "Table-I highway circuit\n\n";

  TableWriter table({"protocol", "highway PDR", "urban PDR",
                     "highway delay [s]", "urban delay [s]",
                     "urban ctrl bytes"});
  for (const Protocol protocol :
       {Protocol::kAodv, Protocol::kOlsr, Protocol::kDymo}) {
    TableIConfig config;
    config.protocol = protocol;
    config.sender = 4;
    config.seed = 3;

    const auto highway = run_table1(config);
    const auto urban =
        run_with_trace(urban_trace(config.seed), config, {4}).front();
    table.add_row({std::string(to_string(protocol)), highway.pdr, urban.pdr,
                   highway.mean_delay_s, urban.mean_delay_s,
                   static_cast<std::int64_t>(urban.control_bytes)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: the urban grid's edge teleports and signal-"
               "induced clustering reshuffle topology abruptly; relative "
               "protocol ordering (reactive over proactive) persists across "
               "environments.\n";
  return 0;
}
