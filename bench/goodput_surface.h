// Shared driver for the paper's goodput surfaces (Figs. 8, 9, 10): one
// Table-I run per sender id 1..8, reporting the per-second goodput series
// that the paper plots as a 3-D surface (sender id x time x bps).
#ifndef CAVENET_BENCH_GOODPUT_SURFACE_H
#define CAVENET_BENCH_GOODPUT_SURFACE_H

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>

#include "obs/run_manifest.h"
#include "obs/stats_registry.h"
#include "scenario/run_record.h"
#include "scenario/table1.h"
#include "util/table_writer.h"

namespace cavenet::bench {

// GCC 12 reports a -Wmaybe-uninitialized false positive inside
// std::variant<std::string,...> when the row vectors below are built at
// -O2 (the std::string alternative is never the active member at the
// flagged sites). Suppress it for this translation-unit-local helper.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

/// Runs the full Table-I sweep for `protocol` and prints the surface,
/// fanning the 8 per-sender runs across `jobs` ensemble workers (the CSV,
/// manifest and stats are bitwise-identical for every jobs value).
/// Returns 0 (so mains can `return run_goodput_surface(...)`).
inline int run_goodput_surface(scenario::Protocol protocol,
                               const char* figure_name, int jobs = 1) {
  using namespace cavenet::scenario;

  std::cout << figure_name << ": " << to_string(protocol)
            << " goodput, Table-I scenario\n"
            << "(30 nodes, 3000 m circuit, CBR 5 pkt/s x 512 B from sender "
               "-> node 0, t = 10..90 s)\n\n";

  TableIConfig config;
  config.protocol = protocol;
  config.seed = 3;
  obs::StatsRegistry stats;  // accumulates across the 8 sender runs
  config.obs.stats = &stats;
  const auto wall_start = std::chrono::steady_clock::now();
  const auto results = run_all_senders(config, 1, 8, jobs);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // 10-second aggregate columns keep the printed table readable; the CSV
  // below carries the full per-second series.
  TableWriter table({"sender", "t10-20", "t20-30", "t30-40", "t40-50",
                     "t50-60", "t60-70", "t70-80", "t80-90", "peak [bps]",
                     "PDR"});
  TableWriter csv({"sender", "second", "goodput_bps"});
  for (const auto& r : results) {
    std::vector<TableCell> row;
    row.reserve(11);  // also avoids a GCC 12 -Wmaybe-uninitialized false
                      // positive in std::variant during reallocation
    row.push_back(static_cast<std::int64_t>(r.sender));
    double peak = 0.0;
    for (int window = 1; window < 9; ++window) {
      double sum = 0.0;
      for (int s = window * 10; s < (window + 1) * 10; ++s) {
        const double v = r.goodput_bps[static_cast<std::size_t>(s)];
        sum += v;
        peak = std::max(peak, v);
      }
      row.push_back(sum / 10.0);
    }
    row.push_back(peak);
    row.push_back(r.pdr);
    table.add_row(std::move(row));
    for (std::size_t s = 0; s < r.goodput_bps.size(); ++s) {
      csv.add_row({static_cast<std::int64_t>(r.sender),
                   static_cast<std::int64_t>(s), r.goodput_bps[s]});
    }
  }
  table.print(std::cout);

  const std::string csv_path =
      std::string("goodput_") + to_string(protocol) + ".csv";
  if (csv.write_csv_file(csv_path)) {
    std::cout << "\nFull per-second surface written to " << csv_path << "\n";
  }

  // Aggregate statistics the paper narrates.
  double total_rx = 0, total_tx = 0, max_goodput = 0;
  for (const auto& r : results) {
    total_rx += static_cast<double>(r.rx_packets);
    total_tx += static_cast<double>(r.tx_packets);
    for (const double v : r.goodput_bps) max_goodput = std::max(max_goodput, v);
  }
  const double cbr_bps = 5.0 * 512.0 * 8.0;
  std::printf(
      "\noverall PDR %.3f | peak goodput %.0f bps = %.1fx the CBR rate "
      "(%.0f bps)\n",
      total_rx / total_tx, max_goodput, max_goodput / cbr_bps, cbr_bps);

  std::printf("wall clock: %.2f s for 8 runs at --jobs %d\n", wall_s, jobs);

  const std::string base = std::string("goodput_") + to_string(protocol);
  obs::RunManifest manifest =
      make_run_manifest(base, config, results, wall_s);
  manifest.set_param("senders", "1..8");
  manifest.set_metric("peak_goodput_bps", max_goodput);
  // Manifests are determinism artifacts: the same build + seed must
  // serialize byte-identically at any --jobs, so wall timing stays on
  // stdout only.
  manifest.strip_volatile();
  if (manifest.write_file(base + ".manifest.json")) {
    std::cout << "Run manifest written to " << base << ".manifest.json\n";
  }
  return 0;
}

#pragma GCC diagnostic pop

}  // namespace cavenet::bench

#endif  // CAVENET_BENCH_GOODPUT_SURFACE_H
