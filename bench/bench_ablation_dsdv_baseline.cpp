// Extension bench: DSDV as a fourth protocol in the Table-I comparison.
// AODV is "an improvement of DSDV to on-demand scheme" (paper III-B2);
// this quantifies what the on-demand change buys under VANET mobility.
//
// --jobs N fans the per-sender runs across N ensemble workers; the table
// is byte-identical for every N.
#include <cstdio>
#include <iostream>

#include "runner/ensemble.h"
#include "scenario/table1.h"
#include "util/table_writer.h"

int main(int argc, char** argv) {
  using namespace cavenet;
  using namespace cavenet::scenario;

  const int jobs = cavenet::runner::parse_jobs_flag(argc, argv);

  std::cout << "Extension: DSDV baseline vs the paper's three protocols, "
               "Table-I scenario, senders 1..8\n\n";

  TableIConfig config;
  config.seed = 3;

  TableWriter table({"protocol", "mean PDR", "mean delay [s]", "ctrl bytes",
                     "ctrl pkts"});
  for (const Protocol protocol : {Protocol::kAodv, Protocol::kOlsr,
                                  Protocol::kDymo, Protocol::kDsdv}) {
    config.protocol = protocol;
    const auto results = run_all_senders(config, 1, 8, jobs);
    double pdr = 0.0, delay = 0.0;
    std::uint64_t bytes = 0, packets = 0;
    for (const auto& r : results) {
      pdr += r.pdr / 8.0;
      delay += r.mean_delay_s / 8.0;
      bytes += r.control_bytes;
      packets += r.control_packets;
    }
    table.add_row({std::string(to_string(protocol)), pdr, delay,
                   static_cast<std::int64_t>(bytes),
                   static_cast<std::int64_t>(packets)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: DSDV behaves like OLSR (proactive: drops during "
               "convergence/partition, steady overhead) and both trail the "
               "reactive AODV/DYMO in PDR — consistent with the paper's "
               "conclusion about reactive protocols in VANETs.\n";
  return 0;
}
