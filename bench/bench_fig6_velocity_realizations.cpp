// Reproduces paper Fig. 6: sample realizations of the average velocity
// v(t) for rho = 0.1 and rho = 0.5 over 5000 steps (stochastic NaS).
//
// Expected shape: the low-density lane settles near free-flow velocity
// (v ~ 4-5 cells/step, transient jam waves dying out quickly); the
// high-density lane stays jammed around v ~ 0.5-1.
//
// --jobs N fans the two 5000-step realizations across N ensemble
// workers; the CSV and stdout are byte-identical for every N.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/stats.h"
#include "analysis/transient.h"
#include "core/velocity_series.h"
#include "runner/ensemble.h"
#include "util/table_writer.h"

int main(int argc, char** argv) {
  using namespace cavenet;
  using namespace cavenet::ca;

  std::cout << "Fig. 6: sample realizations of v(t), 5000 steps, p = 0.3, "
               "L = 400\n\n";

  NasParams params;
  params.lane_length = 400;
  params.slowdown_p = 0.3;

  TableWriter csv({"step", "v_rho_0.1", "v_rho_0.5"});
  TableWriter table({"rho", "mean v (tail)", "min v", "max v",
                     "transient tau [steps]", "MSER-5 cut"});
  const double densities[] = {0.1, 0.5};
  runner::EnsembleOptions pool_options;
  pool_options.jobs = runner::parse_jobs_flag(argc, argv);
  runner::EnsembleRunner pool(pool_options);
  const auto series_by_density = pool.map<std::vector<double>>(
      2, [&params, &densities](runner::ReplicationContext& ctx) {
        // Seed 6 for both densities, exactly as the serial version ran.
        return velocity_series(params, densities[ctx.index], 5000, 6);
      });
  const auto& low = series_by_density[0];
  const auto& high = series_by_density[1];
  for (std::size_t i = 0; i < low.size(); ++i) {
    csv.add_row({static_cast<std::int64_t>(i), low[i], high[i]});
  }
  csv.write_csv_file("fig6_velocity_realizations.csv");

  for (const auto& [rho, series] :
       {std::pair{0.1, &low}, std::pair{0.5, &high}}) {
    const std::span<const double> s(*series);
    const auto tail = s.subspan(s.size() / 2);
    const auto tau = analysis::transient_end(s);
    table.add_row({rho, analysis::mean(tail),
                   *std::min_element(s.begin(), s.end()),
                   *std::max_element(s.begin(), s.end()),
                   tau ? static_cast<std::int64_t>(*tau) : std::int64_t{-1},
                   static_cast<std::int64_t>(analysis::mser_truncation(s))});
  }
  table.print(std::cout);
  std::cout << "\n(full series in fig6_velocity_realizations.csv; tau = -1 "
               "means the window never satisfied the stationarity test — "
               "the paper's LRD caveat)\n";

  // Coarse ASCII sketch of both realizations (every 50th step).
  std::cout << "\nv(t) sketch (x = rho 0.1, o = rho 0.5; rows = v in "
               "cells/step)\n";
  for (int level = 5; level >= 0; --level) {
    std::printf("%d |", level);
    for (std::size_t i = 0; i < low.size(); i += 50) {
      const bool lo = static_cast<int>(low[i] + 0.5) == level;
      const bool hi = static_cast<int>(high[i] + 0.5) == level;
      std::putchar(lo && hi ? '*' : lo ? 'x' : hi ? 'o' : ' ');
    }
    std::putchar('\n');
  }
  return 0;
}
