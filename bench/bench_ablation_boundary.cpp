// Ablation 1 (DESIGN.md): the paper's CAVENET "improvement" — circular
// vs straight-line lane layout. Same CA dynamics, same traffic; only the
// geometry mapping changes. On the line, the wrap-around teleports nodes
// 3000 m, breaking head/tail connectivity and any route crossing the seam.
//
// --jobs N fans the per-sender runs across N ensemble workers; the table
// is byte-identical for every N.
#include <cstdio>
#include <iostream>

#include "runner/ensemble.h"
#include "scenario/table1.h"
#include "util/table_writer.h"

int main(int argc, char** argv) {
  using namespace cavenet;
  using namespace cavenet::scenario;

  const int jobs = cavenet::runner::parse_jobs_flag(argc, argv);

  std::cout << "Ablation: circular (improved CAVENET) vs straight-line "
               "(first version) layout, AODV, senders 1..8\n\n";

  TableIConfig config;
  config.protocol = Protocol::kAodv;
  config.seed = 3;

  config.circular_layout = true;
  const auto circle = run_all_senders(config, 1, 8, jobs);
  config.circular_layout = false;
  const auto line = run_all_senders(config, 1, 8, jobs);

  TableWriter table({"sender", "PDR circle", "PDR line", "delta"});
  double circle_mean = 0.0, line_mean = 0.0;
  for (std::size_t s = 0; s < 8; ++s) {
    table.add_row({static_cast<std::int64_t>(s + 1), circle[s].pdr,
                   line[s].pdr, circle[s].pdr - line[s].pdr});
    circle_mean += circle[s].pdr / 8;
    line_mean += line[s].pdr / 8;
  }
  table.print(std::cout);
  std::printf(
      "\nmean PDR: circle %.3f vs line %.3f — the circular layout removes "
      "the wrap-around communication gap the paper's improvement targets\n",
      circle_mean, line_mean);
  return 0;
}
