// Ablation 4 (DESIGN.md): hello-interval sensitivity. Table I fixes all
// hello intervals at 1 s; this sweep shows the freshness/overhead
// trade-off for the reactive protocols.
//
// --jobs N fans the (hello interval, protocol) replications across N
// ensemble workers; the table is byte-identical for every N.
#include <cstdio>
#include <iostream>

#include "runner/ensemble.h"
#include "scenario/table1.h"
#include "util/table_writer.h"

int main(int argc, char** argv) {
  using namespace cavenet;
  using namespace cavenet::scenario;

  std::cout << "Ablation: hello interval sweep (Table I: 1 s), sender 5\n\n";

  const std::int64_t hellos_s[] = {1, 2, 4};
  const Protocol protocols[] = {Protocol::kAodv, Protocol::kDymo};
  runner::EnsembleOptions options;
  options.jobs = runner::parse_jobs_flag(argc, argv);
  runner::EnsembleRunner pool(options);
  const auto results = pool.map<SenderRunResult>(
      std::size(hellos_s) * std::size(protocols),
      [&hellos_s, &protocols](runner::ReplicationContext& ctx) {
        TableIConfig config;
        config.protocol = protocols[ctx.index % std::size(protocols)];
        config.sender = 5;
        config.seed = 3;
        const std::int64_t hello_s = hellos_s[ctx.index / std::size(protocols)];
        config.protocol_options.aodv.hello_interval = SimTime::seconds(hello_s);
        config.protocol_options.dymo.hello_interval = SimTime::seconds(hello_s);
        return run_table1(config);
      });

  TableWriter table({"protocol", "hello [s]", "PDR", "mean delay [s]",
                     "ctrl bytes", "route discoveries"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SenderRunResult& r = results[i];
    table.add_row({std::string(to_string(protocols[i % std::size(protocols)])),
                   hellos_s[i / std::size(protocols)], r.pdr, r.mean_delay_s,
                   static_cast<std::int64_t>(r.control_bytes),
                   static_cast<std::int64_t>(r.route_discoveries)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: longer hello intervals cut control bytes but slow "
               "link-failure detection, costing PDR under vehicular "
               "mobility.\n";
  return 0;
}
