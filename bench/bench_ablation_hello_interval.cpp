// Ablation 4 (DESIGN.md): hello-interval sensitivity. Table I fixes all
// hello intervals at 1 s; this sweep shows the freshness/overhead
// trade-off for the reactive protocols.
#include <cstdio>
#include <iostream>

#include "scenario/table1.h"
#include "util/table_writer.h"

int main() {
  using namespace cavenet;
  using namespace cavenet::scenario;

  std::cout << "Ablation: hello interval sweep (Table I: 1 s), sender 5\n\n";

  TableWriter table({"protocol", "hello [s]", "PDR", "mean delay [s]",
                     "ctrl bytes", "route discoveries"});
  for (const std::int64_t hello_s : {1, 2, 4}) {
    for (const Protocol protocol : {Protocol::kAodv, Protocol::kDymo}) {
      TableIConfig config;
      config.protocol = protocol;
      config.sender = 5;
      config.seed = 3;
      config.protocol_options.aodv.hello_interval = SimTime::seconds(hello_s);
      config.protocol_options.dymo.hello_interval = SimTime::seconds(hello_s);
      const auto r = run_table1(config);
      table.add_row({std::string(to_string(protocol)), hello_s, r.pdr,
                     r.mean_delay_s, static_cast<std::int64_t>(r.control_bytes),
                     static_cast<std::int64_t>(r.route_discoveries)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: longer hello intervals cut control bytes but slow "
               "link-failure detection, costing PDR under vehicular "
               "mobility.\n";
  return 0;
}
