// Paper Sections I and IV-B: the Random Waypoint velocity-decay problem
// that motivates CAVENET's CA mobility. RW with v_min ~ 0 never reaches a
// usable stationary regime within typical simulation times; the NaS CA,
// a finite-state system, settles quickly.
#include <cstdio>
#include <iostream>

#include "analysis/stats.h"
#include "analysis/transient.h"
#include "core/velocity_series.h"
#include "trace/random_waypoint.h"
#include "util/table_writer.h"

int main() {
  using namespace cavenet;

  std::cout << "RW velocity decay vs CA stationarity (paper's motivation)\n\n";

  // Random Waypoint, v_min almost zero: the pathological configuration.
  trace::RandomWaypointOptions rw;
  rw.nodes = 60;
  rw.v_min_ms = 0.05;
  rw.v_max_ms = 37.5;
  rw.duration_s = 3000.0;
  rw.seed = 2;
  const auto rw_trace = trace::generate_random_waypoint(rw);
  const auto rw_paths = trace::compile_paths(rw_trace);
  const auto rw_speed = trace::mean_speed_series(rw_paths, 0.0, 3000.0, 10.0);

  // Same but with a healthy v_min (the standard fix).
  trace::RandomWaypointOptions rw_fixed = rw;
  rw_fixed.v_min_ms = 10.0;
  const auto fixed_paths =
      trace::compile_paths(trace::generate_random_waypoint(rw_fixed));
  const auto fixed_speed =
      trace::mean_speed_series(fixed_paths, 0.0, 3000.0, 10.0);

  // CA average velocity (cells/step scaled to m/s), same duration.
  ca::NasParams params;
  params.lane_length = 400;
  params.slowdown_p = 0.3;
  auto ca_series = ca::velocity_series(params, 0.075, 300, 2);
  for (double& v : ca_series) v *= 7.5;  // cells/step -> m/s

  TableWriter table(
      {"window [s]", "RW vmin=0.05 [m/s]", "RW vmin=10 [m/s]", "CA [m/s]"});
  auto window_mean = [](const std::vector<double>& xs, std::size_t lo,
                        std::size_t hi) {
    const std::span<const double> s(xs);
    return analysis::mean(s.subspan(lo, std::min(hi, xs.size()) - lo));
  };
  const char* labels[] = {"0-500", "500-1000", "1000-2000", "2000-3000"};
  const std::size_t edges[][2] = {{0, 50}, {50, 100}, {100, 200}, {200, 300}};
  for (int w = 0; w < 4; ++w) {
    table.add_row({std::string(labels[w]),
                   window_mean(rw_speed, edges[w][0], edges[w][1]),
                   window_mean(fixed_speed, edges[w][0], edges[w][1]),
                   window_mean(ca_series, edges[w][0] % 300,
                               std::min<std::size_t>(edges[w][1], 300))});
  }
  table.print(std::cout);

  const auto ca_tau = analysis::transient_end(ca_series);
  std::printf(
      "\nCA transient ends at step %lld of 300; RW (vmin=0.05) mean speed "
      "fell %.0f%% from the first to the last window — the decay problem "
      "the paper cites Le Boudec/Noble for.\n",
      ca_tau ? static_cast<long long>(*ca_tau) : -1,
      100.0 * (1.0 - window_mean(rw_speed, 200, 300) /
                         window_mean(rw_speed, 0, 50)));
  return 0;
}
