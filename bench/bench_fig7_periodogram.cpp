// Reproduces paper Fig. 7: periodograms of v(t) for (a) the deterministic
// model (rho = 0.1, p = 0) and (b) the stochastic model (rho = 0.05,
// p = 0.5).
//
// Expected shape: the deterministic spectrum stays bounded (flat) at
// f -> 0 (SRD); the stochastic spectrum rises toward the origin (the
// paper's 1/f-like LRD divergence). We quantify "diverges" as the
// log-log slope over the lowest 0.5% of frequencies; a third row at the
// near-critical density rho = 0.09 shows the divergence at its strongest.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/autocorrelation.h"
#include "analysis/spectrum.h"
#include "core/velocity_series.h"
#include "util/table_writer.h"

int main() {
  using namespace cavenet;
  using namespace cavenet::ca;

  constexpr std::int64_t kSteps = 65536;
  constexpr double kSlopeFraction = 0.005;
  constexpr double kLrdThreshold = -0.15;
  std::cout << "Fig. 7: periodogram of v(t), " << kSteps << " samples\n\n";

  NasParams params;
  params.lane_length = 400;

  struct Case {
    const char* label;
    double rho;
    double p;
  };
  const Case cases[] = {
      {"(a) rho=0.1,  p=0   (paper)", 0.1, 0.0},
      {"(b) rho=0.05, p=0.5 (paper)", 0.05, 0.5},
      {"(+) rho=0.09, p=0.5 (near-critical)", 0.09, 0.5},
  };

  TableWriter table({"case", "low-f slope", "Hurst (R/S)", "diagnosis"});
  TableWriter csv({"case", "frequency", "power"});
  for (const Case& c : cases) {
    params.slowdown_p = c.p;
    const auto series = velocity_series(params, c.rho, kSteps, 7);
    const auto spectrum = analysis::periodogram(series);
    const double slope =
        analysis::low_frequency_slope(spectrum, kSlopeFraction);
    const double hurst = analysis::hurst_rs(series);
    table.add_row({std::string(c.label), slope, hurst,
                   std::string(slope < kLrdThreshold
                                   ? "LRD (diverges at origin)"
                                   : "SRD (bounded at origin)")});
    for (std::size_t k = 0; k < spectrum.frequency.size(); k += 16) {
      csv.add_row({std::string(c.label), spectrum.frequency[k],
                   spectrum.power[k]});
    }
  }
  table.print(std::cout);
  csv.write_csv_file("fig7_periodograms.csv");

  std::cout << "\nlow-frequency power (stochastic paper case), log10 axes:\n";
  params.slowdown_p = 0.5;
  const auto sto = velocity_series(params, 0.05, kSteps, 7);
  const auto spec = analysis::periodogram(sto);
  TableWriter decades({"log10(f)", "log10 P"});
  for (std::size_t k = 1; k < spec.frequency.size(); k *= 4) {
    if (spec.power[k] > 0.0) {
      decades.add_row({std::log10(spec.frequency[k]),
                       std::log10(spec.power[k])});
    }
  }
  decades.print(std::cout);
  std::cout << "\n(decimated spectra in fig7_periodograms.csv)\n";
  return 0;
}
