// Reproduces paper Fig. 7: periodograms of v(t) for (a) the deterministic
// model (rho = 0.1, p = 0) and (b) the stochastic model (rho = 0.05,
// p = 0.5).
//
// Expected shape: the deterministic spectrum stays bounded (flat) at
// f -> 0 (SRD); the stochastic spectrum rises toward the origin (the
// paper's 1/f-like LRD divergence). We quantify "diverges" as the
// log-log slope over the lowest 0.5% of frequencies; a third row at the
// near-critical density rho = 0.09 shows the divergence at its strongest.
//
// --jobs N fans the three 65536-step cases across N ensemble workers;
// the CSV and stdout are byte-identical for every N.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/autocorrelation.h"
#include "analysis/spectrum.h"
#include "core/velocity_series.h"
#include "runner/ensemble.h"
#include "util/table_writer.h"

int main(int argc, char** argv) {
  using namespace cavenet;
  using namespace cavenet::ca;

  constexpr std::int64_t kSteps = 65536;
  constexpr double kSlopeFraction = 0.005;
  constexpr double kLrdThreshold = -0.15;
  std::cout << "Fig. 7: periodogram of v(t), " << kSteps << " samples\n\n";

  NasParams params;
  params.lane_length = 400;

  struct Case {
    const char* label;
    double rho;
    double p;
  };
  const Case cases[] = {
      {"(a) rho=0.1,  p=0   (paper)", 0.1, 0.0},
      {"(b) rho=0.05, p=0.5 (paper)", 0.05, 0.5},
      {"(+) rho=0.09, p=0.5 (near-critical)", 0.09, 0.5},
  };

  struct CaseResult {
    analysis::Spectrum spectrum;
    double slope = 0.0;
    double hurst = 0.0;
  };
  runner::EnsembleOptions pool_options;
  pool_options.jobs = runner::parse_jobs_flag(argc, argv);
  runner::EnsembleRunner pool(pool_options);
  const auto results = pool.map<CaseResult>(
      std::size(cases),
      [&cases, params](runner::ReplicationContext& ctx) {
        // Seed 7 for every case, exactly as the serial version ran.
        NasParams case_params = params;
        case_params.slowdown_p = cases[ctx.index].p;
        const auto series =
            velocity_series(case_params, cases[ctx.index].rho, kSteps, 7);
        CaseResult r;
        r.spectrum = analysis::periodogram(series);
        r.slope = analysis::low_frequency_slope(r.spectrum, kSlopeFraction);
        r.hurst = analysis::hurst_rs(series);
        return r;
      });

  TableWriter table({"case", "low-f slope", "Hurst (R/S)", "diagnosis"});
  TableWriter csv({"case", "frequency", "power"});
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const CaseResult& r = results[i];
    table.add_row({std::string(cases[i].label), r.slope, r.hurst,
                   std::string(r.slope < kLrdThreshold
                                   ? "LRD (diverges at origin)"
                                   : "SRD (bounded at origin)")});
    for (std::size_t k = 0; k < r.spectrum.frequency.size(); k += 16) {
      csv.add_row({std::string(cases[i].label), r.spectrum.frequency[k],
                   r.spectrum.power[k]});
    }
  }
  table.print(std::cout);
  csv.write_csv_file("fig7_periodograms.csv");

  std::cout << "\nlow-frequency power (stochastic paper case), log10 axes:\n";
  // Case (b) above is exactly this spectrum; reuse it.
  const auto& spec = results[1].spectrum;
  TableWriter decades({"log10(f)", "log10 P"});
  for (std::size_t k = 1; k < spec.frequency.size(); k *= 4) {
    if (spec.power[k] > 0.0) {
      decades.add_row({std::log10(spec.frequency[k]),
                       std::log10(spec.power[k])});
    }
  }
  decades.print(std::cout);
  std::cout << "\n(decimated spectra in fig7_periodograms.csv)\n";
  return 0;
}
