// Supporting analysis: headway (gap) distribution vs slowdown probability.
// Explains DESIGN.md's Table-I parameter choice: at p = 0.7 the NaS model
// clusters vehicles into jams, so two 250 m gaps regularly coexist on the
// 3000 m ring — the partition condition behind the paper's goodput
// dropouts. At p = 0.3 the gap dynamics keep the ring connected.
#include <cstdio>
#include <iostream>

#include "analysis/stats.h"
#include "core/lane_statistics.h"
#include "util/table_writer.h"

int main() {
  using namespace cavenet;
  using namespace cavenet::ca;

  std::cout << "Gap distribution on the Table-I ring (30 vehicles, 400 "
               "cells, 250 m radio range = 34 cells)\n\n";

  TableWriter table({"p", "mean jam clusters", "P(gap >= 34 cells)",
                     "P(>=1 radio gap)", "P(ring partitioned)",
                     "mean v [cells/step]"});
  for (const double p : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9}) {
    NasParams params;
    params.lane_length = 400;
    params.slowdown_p = p;
    NasLane lane(params, 30, InitialPlacement::kRandom, Rng(3));
    lane.run(200);  // discard the transient
    LaneStatistics stats(params);
    analysis::RunningStats velocity;
    for (int step = 0; step < 800; ++step) {
      lane.step();
      stats.record(lane);
      velocity.add(lane.average_velocity());
    }
    table.add_row({p, stats.mean_jam_clusters(), stats.gap_exceedance(34),
                   stats.multi_gap_fraction(34, 1),
                   stats.multi_gap_fraction(34, 2), velocity.mean()});
  }
  table.print(std::cout);
  std::cout << "\n'P(ring partitioned)' is the fraction of time two or more "
               "gaps exceed the radio range simultaneously — on a ring, the "
               "condition for the sender/receiver pair to lose every "
               "multi-hop path.\n";
  return 0;
}
