// Paper Fig. 1-b: interference from the opposite lane. A saturated
// unicast flow runs between two vehicles on lane 1; an equally saturated
// interfering flow runs on the opposite lane (7.5 m lateral offset) at a
// varying longitudinal separation. We measure the victim flow's MAC-level
// delivery and collision counts as the interferers approach.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "mac/wifi_mac.h"
#include "phy/channel.h"
#include "util/table_writer.h"

namespace {

using namespace cavenet;
using namespace cavenet::literals;

struct Result {
  std::uint64_t victim_delivered = 0;
  std::uint64_t victim_sent = 0;
  std::uint64_t collisions = 0;
  std::uint64_t retries = 0;
};

Result run(double interferer_offset_m, bool with_interferer) {
  netsim::Simulator sim(9);
  phy::Channel channel(sim, std::make_unique<phy::TwoRayGroundModel>());

  std::vector<std::unique_ptr<netsim::StaticMobility>> mobility;
  std::vector<std::unique_ptr<phy::WifiPhy>> phys;
  std::vector<phy::Channel::Attachment> links;
  std::vector<std::unique_ptr<mac::WifiMac>> macs;
  auto add = [&](Vec2 position) {
    const auto id = static_cast<netsim::NodeId>(macs.size());
    mobility.push_back(std::make_unique<netsim::StaticMobility>(position));
    phys.push_back(std::make_unique<phy::WifiPhy>(sim, id, mobility.back().get()));
    links.push_back(channel.attach(phys.back().get()));
    macs.push_back(std::make_unique<mac::WifiMac>(sim, *phys.back(),
                                                  mac::MacParams{}, id));
    return id;
  };

  // Victim flow on lane 1 (y = 0): 0 -> 1 over 150 m.
  add({0.0, 0.0});
  add({150.0, 0.0});
  // Interferer flow on the opposite lane (y = 7.5): 2 -> 3.
  if (with_interferer) {
    add({interferer_offset_m, 7.5});
    add({interferer_offset_m + 150.0, 7.5});
  }

  Result result;
  macs[1]->set_receive_callback(
      [&](netsim::Packet, netsim::NodeId) { ++result.victim_delivered; });

  // Saturated victim: a new frame every 5 ms for 5 s (1000 frames).
  for (int i = 0; i < 1000; ++i) {
    sim.schedule(SimTime::microseconds(5000 * i), [&] {
      macs[0]->send(netsim::Packet(512), 1);
      ++result.victim_sent;
    });
    if (with_interferer) {
      // Interferer offset by half a period: maximal overlap pressure.
      sim.schedule(SimTime::microseconds(5000 * i + 2500),
                   [&] { macs[2]->send(netsim::Packet(512), 3); });
    }
  }
  sim.run_until(8_s);
  result.collisions = phys[1]->stats().collisions;
  result.retries = macs[0]->stats().retries;
  return result;
}

}  // namespace

int main() {
  std::cout << "Fig. 1-b: interference from the opposite lane (victim flow "
               "0->1 over 150 m; interferer pair at varying separation)\n\n";
  const Result baseline = run(0.0, false);
  TableWriter table({"interferer offset [m]", "victim delivery", "collisions",
                     "victim retries"});
  table.add_row({std::string("(none)"),
                 static_cast<double>(baseline.victim_delivered) /
                     static_cast<double>(baseline.victim_sent),
                 static_cast<std::int64_t>(baseline.collisions),
                 static_cast<std::int64_t>(baseline.retries)});
  for (const double offset : {0.0, 200.0, 400.0, 600.0, 900.0}) {
    const Result r = run(offset, true);
    table.add_row({offset,
                   static_cast<double>(r.victim_delivered) /
                       static_cast<double>(r.victim_sent),
                   static_cast<std::int64_t>(r.collisions),
                   static_cast<std::int64_t>(r.retries)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: co-located interferers share the medium cleanly "
               "via carrier sense (delivery stays high, throughput halves); "
               "at 400-550 m the interferer is a *hidden* node — collisions "
               "and retries spike; beyond carrier-sense range the victim "
               "flow is clean again.\n";
  return 0;
}
