// The paper's thesis, taken to the protocol level: the mobility model
// changes the protocol evaluation. Identical radio stack, traffic plan
// and node count under (a) the CA circuit (Table I), (b) Random Waypoint
// with the pathological v_min ~ 0, and (c) RW with a sane v_min.
#include <cstdio>
#include <iostream>

#include "scenario/table1.h"
#include "trace/random_waypoint.h"
#include "util/table_writer.h"

namespace {

using namespace cavenet;
using namespace cavenet::scenario;

trace::MobilityTrace rw_trace(double v_min, std::uint64_t seed) {
  trace::RandomWaypointOptions options;
  options.nodes = 30;
  // Same area scale as the Table-I circuit's bounding box (~955 m).
  options.area_x_m = 955.0;
  options.area_y_m = 955.0;
  options.v_min_ms = v_min;
  options.v_max_ms = 37.5;
  options.duration_s = 100.0;
  options.seed = seed;
  return trace::generate_random_waypoint(options);
}

}  // namespace

int main() {
  std::cout << "Protocol evaluation under different mobility models "
               "(30 nodes, same stack/traffic, sender 4 -> node 0)\n\n";

  TableWriter table({"mobility", "protocol", "PDR", "mean delay [s]",
                     "mean hops", "route discoveries"});
  for (const Protocol protocol :
       {Protocol::kAodv, Protocol::kOlsr, Protocol::kDymo}) {
    TableIConfig config;
    config.protocol = protocol;
    config.sender = 4;
    config.seed = 3;

    const auto ca_run = run_table1(config);
    const auto rw_slow =
        run_with_trace(rw_trace(0.1, config.seed), config, {4}).front();
    const auto rw_fast =
        run_with_trace(rw_trace(10.0, config.seed), config, {4}).front();

    auto row = [&](const char* label, const SenderRunResult& r) {
      table.add_row({std::string(label), std::string(to_string(protocol)),
                     r.pdr, r.mean_delay_s, r.mean_hop_count,
                     static_cast<std::int64_t>(r.route_discoveries)});
    };
    row("CA circuit (Table I)", ca_run);
    row("RW vmin=0.1", rw_slow);
    row("RW vmin=10", rw_fast);
  }
  table.print(std::cout);
  std::cout << "\nExpected: the ranking and even the absolute level of every "
               "protocol shifts with the mobility model — the paper's core "
               "argument for evaluating VANET protocols under vehicular (CA) "
               "rather than random-waypoint mobility.\n";
  return 0;
}
