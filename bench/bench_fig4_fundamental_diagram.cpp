// Reproduces paper Fig. 4: the fundamental diagram (flow J = rho * v vs
// density rho) for the deterministic (p = 0) and stochastic (p = 0.5) NaS
// model, L = 400, each point the ensemble average over 20 trials of 500
// iterations.
//
// Expected shape: both curves rise linearly in the free-flow regime, peak
// near the critical density (rho* = 1/6 for p = 0), then decay as jams
// dominate; the stochastic curve lies strictly below the deterministic one.
//
// --jobs N fans the 21 x 20 (density, trial) replications across N
// ensemble workers; the CSV is byte-identical for every N.
#include <cstdio>
#include <iostream>

#include "core/fundamental_diagram.h"
#include "runner/ensemble.h"
#include "util/table_writer.h"

int main(int argc, char** argv) {
  using namespace cavenet;
  using namespace cavenet::ca;

  std::cout << "Fig. 4: fundamental diagram, L = 400, 20 trials x 500 "
               "iterations per point\n\n";

  FundamentalDiagramOptions options;
  options.params.lane_length = 400;
  options.densities = density_ladder(400, 0.5, 21);
  options.iterations = 500;
  options.trials = 20;
  options.warmup = 200;
  options.seed = 4;
  options.jobs = cavenet::runner::parse_jobs_flag(argc, argv);

  options.params.slowdown_p = 0.0;
  const auto deterministic = fundamental_diagram(options);
  options.params.slowdown_p = 0.5;
  const auto stochastic = fundamental_diagram(options);

  TableWriter table({"rho", "J (p=0)", "sd", "J (p=0.5)", "sd",
                     "J theory (p=0)"});
  for (std::size_t i = 0; i < deterministic.size(); ++i) {
    table.add_row({deterministic[i].density, deterministic[i].flow,
                   deterministic[i].flow_stddev, stochastic[i].flow,
                   stochastic[i].flow_stddev,
                   deterministic_flow(deterministic[i].density, 5)});
  }
  table.print(std::cout);
  table.write_csv_file("fig4_fundamental_diagram.csv");

  // Shape checks the paper narrates.
  double det_peak = 0.0, sto_peak = 0.0;
  double det_peak_rho = 0.0;
  int stochastic_below = 0;
  for (std::size_t i = 0; i < deterministic.size(); ++i) {
    if (deterministic[i].flow > det_peak) {
      det_peak = deterministic[i].flow;
      det_peak_rho = deterministic[i].density;
    }
    sto_peak = std::max(sto_peak, stochastic[i].flow);
    if (stochastic[i].flow <= deterministic[i].flow + 1e-9) ++stochastic_below;
  }
  std::printf(
      "\npeak J(p=0) = %.3f at rho = %.3f (theory: 0.833 at 0.167) | "
      "peak J(p=0.5) = %.3f | stochastic <= deterministic at %d/%zu points\n",
      det_peak, det_peak_rho, sto_peak, stochastic_below,
      deterministic.size());
  return 0;
}
