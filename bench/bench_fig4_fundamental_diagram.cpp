// Reproduces paper Fig. 4: the fundamental diagram (flow J = rho * v vs
// density rho) for the deterministic (p = 0) and stochastic (p = 0.5) NaS
// model, L = 400, each point the ensemble average over 20 trials of 500
// iterations.
//
// Expected shape: both curves rise linearly in the free-flow regime, peak
// near the critical density (rho* = 1/6 for p = 0), then decay as jams
// dominate; the stochastic curve lies strictly below the deterministic one.
//
// Thin wrapper over the spec engine: the sweep is declared in
// examples/specs/fig4_fundamental_diagram.json, and the golden-equivalence
// tests pin the spec path to the historical hardcoded CSV byte-for-byte.
//
// --jobs N fans the 21 x 20 (density, trial) replications across N
// ensemble workers; the CSV is byte-identical for every N.
#include "spec/engine.h"

int main(int argc, char** argv) {
  return cavenet::spec::bench_spec_main(
      CAVENET_SPEC_DIR "/fig4_fundamental_diagram.json", argc, argv);
}
