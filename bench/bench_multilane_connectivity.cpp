// Paper Fig. 1-a: impact of multiple lanes on connectivity — gaps on one
// lane are bridged by relay vehicles on a parallel lane. We sweep vehicle
// density on a sparse two-lane highway and compare single-lane vs
// two-lane multi-hop pair connectivity under the Table-I radio range.
#include <cstdio>
#include <iostream>

#include "core/geometry.h"
#include "core/nas_lane.h"
#include "core/road.h"
#include "trace/connectivity.h"
#include "trace/trace_generator.h"
#include "util/table_writer.h"

namespace {

using namespace cavenet;

double mean_pair_connectivity(bool two_lanes, std::int64_t vehicles_per_lane,
                              std::uint64_t seed) {
  ca::NasParams params;
  params.lane_length = 800;  // 6 km of highway
  params.slowdown_p = 0.5;   // jam clusters create the gaps of Fig. 1
  ca::Road road;
  road.add_lane(ca::NasLane(params, vehicles_per_lane,
                            ca::InitialPlacement::kRandom, Rng(seed, 1)),
                ca::make_line(params.lane_length_m()));
  if (two_lanes) {
    // Opposite direction, 7.5 m to the side (paper Fig. 1 setting).
    const ca::LaneTransform opposite =
        ca::LaneTransform::translation(params.lane_length_m(), 7.5) *
        ca::LaneTransform::scaling(-1.0, 1.0);
    road.add_lane(ca::NasLane(params, vehicles_per_lane,
                              ca::InitialPlacement::kRandom, Rng(seed, 2)),
                  ca::make_line(params.lane_length_m(), opposite));
  }
  trace::TraceGeneratorOptions options;
  options.steps = 100;
  const auto trace = trace::generate_trace(road, options);
  const auto paths = trace::compile_paths(trace);

  // Connectivity among lane-1 vehicles only, with lane-2 vehicles acting
  // purely as relays — exactly the paper's Fig. 1-a argument.
  trace::ConnectivitySweepOptions sweep;
  sweep.range_m = 250.0;
  sweep.t_end_s = 100.0;
  double acc = 0.0;
  std::size_t samples = 0;
  for (double t = 0.0; t <= 100.0; t += 5.0) {
    std::vector<Vec2> positions;
    for (const auto& path : paths) positions.push_back(path.position(t));
    const trace::ConnectivityGraph graph(positions, sweep.range_m);
    // Pair connectivity restricted to lane-1 nodes (ids 0..n-1).
    std::size_t connected = 0, pairs = 0;
    for (std::int64_t a = 0; a < vehicles_per_lane; ++a) {
      for (std::int64_t b = a + 1; b < vehicles_per_lane; ++b) {
        ++pairs;
        if (graph.connected(static_cast<std::uint32_t>(a),
                            static_cast<std::uint32_t>(b))) {
          ++connected;
        }
      }
    }
    acc += pairs > 0 ? static_cast<double>(connected) / static_cast<double>(pairs)
                     : 0.0;
    ++samples;
  }
  return acc / static_cast<double>(samples);
}

}  // namespace

int main() {
  std::cout << "Fig. 1-a: relay vehicles on a parallel lane bridge "
               "connectivity gaps (6 km two-lane highway, 250 m range, "
               "p = 0.5 jams)\n\n";
  TableWriter table({"vehicles/lane", "lane-1 pair connectivity (1 lane)",
                     "with relay lane", "gain"});
  for (const std::int64_t n : {15, 20, 30, 45, 60}) {
    double one = 0.0, two = 0.0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      one += mean_pair_connectivity(false, n, seed) / 3.0;
      two += mean_pair_connectivity(true, n, seed) / 3.0;
    }
    table.add_row({n, one, two, two - one});
  }
  table.print(std::cout);
  std::cout << "\nExpected: at sparse densities the relay lane lifts pair "
               "connectivity substantially; the gain vanishes once a single "
               "lane is dense enough to be connected on its own.\n";
  return 0;
}
