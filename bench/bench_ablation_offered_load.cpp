// Paper Section V future work: "traffic quantity". Sweeps the CBR offered
// load (Table I fixes 5 pkt/s) and reports PDR/delay per protocol; also
// reports the topology-change rate of the underlying mobility (the other
// future-work metric), computed from the Table-I trace.
//
// --jobs N fans the (protocol, rate) replications across N ensemble
// workers; the table is byte-identical for every N.
#include <cstdio>
#include <iostream>

#include "runner/ensemble.h"
#include "scenario/table1.h"
#include "trace/connectivity.h"
#include "util/table_writer.h"

int main(int argc, char** argv) {
  using namespace cavenet;
  using namespace cavenet::scenario;

  std::cout << "Future-work metrics: offered-load sweep + topology-change "
               "rate (sender 4)\n\n";

  const Protocol protocols[] = {Protocol::kAodv, Protocol::kOlsr,
                                Protocol::kDymo};
  const double rates[] = {1.0, 5.0, 15.0, 40.0};
  runner::EnsembleOptions options;
  options.jobs = runner::parse_jobs_flag(argc, argv);
  runner::EnsembleRunner pool(options);
  const auto results = pool.map<SenderRunResult>(
      std::size(protocols) * std::size(rates),
      [&protocols, &rates](runner::ReplicationContext& ctx) {
        TableIConfig config;
        config.protocol = protocols[ctx.index / std::size(rates)];
        config.sender = 4;
        config.seed = 3;
        config.packets_per_second = rates[ctx.index % std::size(rates)];
        return run_table1(config);
      });

  TableWriter table({"protocol", "pkt/s", "offered [kbps]", "PDR",
                     "mean delay [s]", "rx [kbps]"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SenderRunResult& r = results[i];
    const double rate = rates[i % std::size(rates)];
    const double offered_kbps = rate * 512.0 * 8.0 / 1000.0;
    table.add_row({std::string(to_string(protocols[i / std::size(rates)])),
                   rate, offered_kbps, r.pdr, r.mean_delay_s,
                   offered_kbps * r.pdr});
  }
  table.print(std::cout);

  // Topology churn of the mobility pattern itself.
  TableIConfig config;
  const auto mobility = make_table1_trace(config);
  const auto paths = trace::compile_paths(mobility);
  trace::ConnectivitySweepOptions sweep;
  sweep.t_end_s = config.duration_s;
  const double churn = trace::link_change_rate(paths, sweep);
  std::printf(
      "\ntopology-change rate of the Table-I mobility (p=%.1f): %.2f link "
      "up/down events per second across 30 nodes\n",
      config.slowdown_p, churn);
  std::cout << "\nExpected: PDR holds up to moderate load, then the 2 Mbps "
               "DCF channel saturates — reactive protocols degrade "
               "gracefully, OLSR's fixed-rate control traffic competes "
               "with data hardest at high load.\n";
  return 0;
}
