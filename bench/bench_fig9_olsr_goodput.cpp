// Reproduces paper Fig. 9: OLSR goodput surface over the Table-I scenario.
//
// Expected shape: roughly an order of magnitude below the reactive
// protocols (paper: "reactive protocols (AODV and DYMO) have better
// goodput than OLSR"), with gaps where the proactive tables lag behind
// the topology.
//
// --jobs N fans the 8 per-sender runs across N ensemble workers; the CSV
// and manifest are byte-identical for every N.
#include "goodput_surface.h"
#include "runner/ensemble.h"

int main(int argc, char** argv) {
  return cavenet::bench::run_goodput_surface(
      cavenet::scenario::Protocol::kOlsr, "Fig. 9",
      cavenet::runner::parse_jobs_flag(argc, argv));
}
