// Reproduces paper Fig. 9: OLSR goodput surface over the Table-I scenario.
//
// Expected shape: roughly an order of magnitude below the reactive
// protocols (paper: "reactive protocols (AODV and DYMO) have better
// goodput than OLSR"), with gaps where the proactive tables lag behind
// the topology.
#include "goodput_surface.h"

int main() {
  return cavenet::bench::run_goodput_surface(
      cavenet::scenario::Protocol::kOlsr, "Fig. 9");
}
