// Reproduces paper Fig. 9: OLSR goodput surface over the Table-I scenario.
//
// Expected shape: roughly an order of magnitude below the reactive
// protocols (paper: "reactive protocols (AODV and DYMO) have better
// goodput than OLSR"), with gaps where the proactive tables lag behind
// the topology.
//
// Thin wrapper over the spec engine (examples/specs/fig9_olsr.json).
//
// --jobs N fans the 8 per-sender runs across N ensemble workers; the CSV
// and manifest are byte-identical for every N.
#include "spec/engine.h"

int main(int argc, char** argv) {
  return cavenet::spec::bench_spec_main(CAVENET_SPEC_DIR "/fig9_olsr.json",
                                        argc, argv);
}
