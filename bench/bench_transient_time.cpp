// Paper Section IV-B: transient time tau of v(t) for the deterministic
// model (p = 0) as a function of density, plus the SRD/LRD contrast that
// decides how many warm-up samples a protocol simulation must discard.
#include <cstdio>
#include <iostream>

#include "analysis/autocorrelation.h"
#include "analysis/stats.h"
#include "analysis/transient.h"
#include "core/velocity_series.h"
#include "util/table_writer.h"

int main() {
  using namespace cavenet;
  using namespace cavenet::ca;

  std::cout << "Sec. IV-B: transient time of v(t), deterministic NaS "
               "(p = 0), L = 400, 4096 steps\n\n";

  NasParams params;
  params.lane_length = 400;
  params.slowdown_p = 0.0;

  TableWriter table({"rho", "tau (settle) [steps]", "MSER-5 cut",
                     "tail mean v", "ACF partial sum (lag 200)"});
  for (const double rho : {0.05, 0.1, 0.15, 1.0 / 6.0, 0.2, 0.3, 0.4, 0.5}) {
    const auto series = velocity_series(params, rho, 4096, 8);
    const std::span<const double> s(series);
    const auto tau = analysis::transient_end(s);
    const auto sums = analysis::autocorrelation_partial_sums(s, 200);
    table.add_row({rho,
                   tau ? static_cast<std::int64_t>(*tau) : std::int64_t{-1},
                   static_cast<std::int64_t>(analysis::mser_truncation(s)),
                   analysis::mean(s.subspan(s.size() / 2)),
                   sums.empty() ? 0.0 : sums.back()});
  }
  table.print(std::cout);

  std::cout << "\nExpected: tau grows as rho approaches the critical density "
               "(1/6) where jam clusters interlock, and falls again deep in "
               "the jammed phase; the deterministic ACF partial sums stay "
               "bounded (SRD).\n";
  return 0;
}
