// Reproduces paper Fig. 5: space-time plots of the NaS model in four
// settings — (a) rho=0.0625 p=0.3 (laminar), (b) rho=0.5 p=0.3 (jammed),
// (c) rho=0.1 p=0 (deterministic platoons), (d) rho=0.5 p=0
// (deterministic jam waves). 100 steps each, as in the paper.
//
// Expected shape: backward-travelling jam waves at high density, clean
// laminar stripes at low density.
//
// --jobs N fans the four panels across N ensemble workers; each panel
// renders into its own buffer and writes its own CSV, so stdout and the
// CSVs are byte-identical for every N.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/space_time.h"
#include "runner/ensemble.h"

namespace {

using namespace cavenet;
using namespace cavenet::ca;

struct Panel {
  const char* label;
  double rho;
  double p;
  std::int64_t lane_cells;
  const char* csv_path;
};

std::string render_panel(const Panel& panel) {
  NasParams params;
  params.lane_length = panel.lane_cells;
  params.slowdown_p = panel.p;
  const auto n = static_cast<std::int64_t>(
      panel.rho * static_cast<double>(panel.lane_cells));
  NasLane lane(params, n, InitialPlacement::kRandom, Rng(5));
  const SpaceTimeRaster raster = record_space_time(lane, 100);

  double jammed = 0.0;
  for (std::int64_t row = 0; row < raster.rows(); ++row) {
    jammed += raster.jammed_fraction(row);
  }
  jammed /= static_cast<double>(raster.rows());

  std::ostringstream out;
  char header[160];
  std::snprintf(header, sizeof(header),
                "--- Fig. 5-%s: rho=%.4f, p=%.1f, L=%lld ---\n"
                "mean jammed fraction over 100 steps: %.3f\n",
                panel.label, panel.rho, panel.p,
                static_cast<long long>(panel.lane_cells), jammed);
  out << header;
  raster.render_ascii(out, 110);
  std::ofstream csv(panel.csv_path);
  raster.write_csv(csv);
  out << "(full raster in " << panel.csv_path << ")\n\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "Fig. 5: space-time plots (time downwards, '.' empty, digit = "
               "velocity)\n\n";
  const Panel panels[] = {
      {"a", 0.0625, 0.3, 800, "fig5a_space_time.csv"},
      {"b", 0.5, 0.3, 400, "fig5b_space_time.csv"},
      {"c", 0.1, 0.0, 400, "fig5c_space_time.csv"},
      {"d", 0.5, 0.0, 400, "fig5d_space_time.csv"},
  };

  runner::EnsembleOptions options;
  options.jobs = runner::parse_jobs_flag(argc, argv);
  runner::EnsembleRunner pool(options);
  const auto rendered = pool.map<std::string>(
      std::size(panels),
      [&panels](runner::ReplicationContext& ctx) {
        return render_panel(panels[ctx.index]);
      });
  for (const std::string& text : rendered) std::cout << text;
  return 0;
}
