// Reproduces paper Fig. 5: space-time plots of the NaS model in four
// settings — (a) rho=0.0625 p=0.3 (laminar), (b) rho=0.5 p=0.3 (jammed),
// (c) rho=0.1 p=0 (deterministic platoons), (d) rho=0.5 p=0
// (deterministic jam waves). 100 steps each, as in the paper.
//
// Expected shape: backward-travelling jam waves at high density, clean
// laminar stripes at low density.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/space_time.h"

namespace {

using namespace cavenet;
using namespace cavenet::ca;

void panel(const char* label, double rho, double p, std::int64_t lane_cells,
           const char* csv_path) {
  NasParams params;
  params.lane_length = lane_cells;
  params.slowdown_p = p;
  const auto n = static_cast<std::int64_t>(rho * static_cast<double>(lane_cells));
  NasLane lane(params, n, InitialPlacement::kRandom, Rng(5));
  const SpaceTimeRaster raster = record_space_time(lane, 100);

  double jammed = 0.0;
  for (std::int64_t row = 0; row < raster.rows(); ++row) {
    jammed += raster.jammed_fraction(row);
  }
  jammed /= static_cast<double>(raster.rows());

  std::printf("--- Fig. 5-%s: rho=%.4f, p=%.1f, L=%lld ---\n", label, rho, p,
              static_cast<long long>(lane_cells));
  std::printf("mean jammed fraction over 100 steps: %.3f\n", jammed);
  raster.render_ascii(std::cout, 110);
  std::ofstream csv(csv_path);
  raster.write_csv(csv);
  std::printf("(full raster in %s)\n\n", csv_path);
}

}  // namespace

int main() {
  std::cout << "Fig. 5: space-time plots (time downwards, '.' empty, digit = "
               "velocity)\n\n";
  panel("a", 0.0625, 0.3, 800, "fig5a_space_time.csv");
  panel("b", 0.5, 0.3, 400, "fig5b_space_time.csv");
  panel("c", 0.1, 0.0, 400, "fig5c_space_time.csv");
  panel("d", 0.5, 0.0, 400, "fig5d_space_time.csv");
  return 0;
}
