// Ablation 2 (DESIGN.md): parallel vs sequential CA update. The paper's
// footnote 1 mandates parallel update; sequential (leaders-first) update
// lets followers react within the step, inflating flow and erasing the
// jam branch of the fundamental diagram.
//
// --jobs N fans the (density, update-rule) replications across N
// ensemble workers; the table is byte-identical for every N.
#include <cstdio>
#include <iostream>

#include "analysis/stats.h"
#include "core/fundamental_diagram.h"
#include "core/nas_lane.h"
#include "runner/ensemble.h"
#include "util/table_writer.h"

namespace {

using namespace cavenet;
using namespace cavenet::ca;

double mean_flow(bool sequential, double rho, double p) {
  NasParams params;
  params.lane_length = 400;
  params.slowdown_p = p;
  const auto n = static_cast<std::int64_t>(rho * 400.0);
  NasLane lane(params, n, InitialPlacement::kRandom, Rng(12));
  for (int i = 0; i < 300; ++i) {
    sequential ? lane.step_sequential() : lane.step();
  }
  analysis::RunningStats flow;
  for (int i = 0; i < 300; ++i) {
    sequential ? lane.step_sequential() : lane.step();
    flow.add(lane.flow());
  }
  return flow.mean();
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "Ablation: parallel (paper footnote 1) vs sequential NaS "
               "update, L = 400, p = 0\n\n";
  TableWriter table({"rho", "J parallel", "J sequential", "J theory",
                     "seq inflation"});
  const double rhos[] = {0.1, 0.2, 0.3, 0.5, 0.7, 0.9};
  // One replication per (density, update rule); mean_flow seeds its own
  // Rng(12) exactly as the serial loop did, so the table is unchanged.
  cavenet::runner::EnsembleOptions options;
  options.jobs = cavenet::runner::parse_jobs_flag(argc, argv);
  cavenet::runner::EnsembleRunner pool(options);
  const auto flows = pool.map<double>(
      std::size(rhos) * 2, [&rhos](cavenet::runner::ReplicationContext& ctx) {
        return mean_flow(/*sequential=*/ctx.index % 2 == 1,
                         rhos[ctx.index / 2], 0.0);
      });
  for (std::size_t d = 0; d < std::size(rhos); ++d) {
    const double par = flows[d * 2];
    const double seq = flows[d * 2 + 1];
    table.add_row({rhos[d], par, seq, deterministic_flow(rhos[d], 5),
                   par > 0 ? seq / par : 0.0});
  }
  table.print(std::cout);
  std::cout << "\nExpected: the parallel update tracks the min(5 rho, 1-rho) "
               "theory; the sequential update inflates flow in the jammed "
               "branch (followers close gaps within a step), distorting the "
               "fundamental diagram the mobility model is validated by.\n";
  return 0;
}
