// Reproduces paper Fig. 8: AODV goodput surface over the Table-I scenario.
//
// Expected shape (paper Section IV-C): bursty goodput spikes reaching ~10x
// the CBR rate — packets accumulate during route discovery back-off and
// are flushed together when the route appears.
//
// Thin wrapper over the spec engine: the whole workload is declared in
// examples/specs/fig8_aodv.json, and the golden-equivalence tests pin the
// spec path to the historical hardcoded output byte-for-byte.
//
// --jobs N fans the 8 per-sender runs across N ensemble workers; the CSV
// and manifest are byte-identical for every N.
#include "spec/engine.h"

int main(int argc, char** argv) {
  return cavenet::spec::bench_spec_main(CAVENET_SPEC_DIR "/fig8_aodv.json",
                                        argc, argv);
}
