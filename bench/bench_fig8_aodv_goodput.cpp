// Reproduces paper Fig. 8: AODV goodput surface over the Table-I scenario.
//
// Expected shape (paper Section IV-C): bursty goodput spikes reaching ~10x
// the CBR rate — packets accumulate during route discovery back-off and
// are flushed together when the route appears.
//
// --jobs N fans the 8 per-sender runs across N ensemble workers; the CSV
// and manifest are byte-identical for every N.
#include "goodput_surface.h"
#include "runner/ensemble.h"

int main(int argc, char** argv) {
  return cavenet::bench::run_goodput_surface(
      cavenet::scenario::Protocol::kAodv, "Fig. 8",
      cavenet::runner::parse_jobs_flag(argc, argv));
}
