// Reproduces paper Fig. 8: AODV goodput surface over the Table-I scenario.
//
// Expected shape (paper Section IV-C): bursty goodput spikes reaching ~10x
// the CBR rate — packets accumulate during route discovery back-off and
// are flushed together when the route appears.
#include "goodput_surface.h"

int main() {
  return cavenet::bench::run_goodput_surface(
      cavenet::scenario::Protocol::kAodv, "Fig. 8");
}
