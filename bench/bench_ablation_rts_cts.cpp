// Ablation 3 (DESIGN.md): RTS/CTS off (Table I) vs on. With 512-byte CBR
// payloads and a ring topology, the paper disables RTS/CTS; this bench
// quantifies what that costs/saves under hidden terminals.
#include <cstdio>
#include <iostream>

#include "scenario/table1.h"
#include "util/table_writer.h"

int main() {
  using namespace cavenet;
  using namespace cavenet::scenario;

  std::cout << "Ablation: RTS/CTS off (Table I) vs on, AODV, senders 2, 4, "
               "6, 8\n\n";

  TableIConfig config;
  config.protocol = Protocol::kAodv;
  config.seed = 3;

  TableWriter table({"sender", "PDR off", "PDR on", "collisions off",
                     "collisions on", "retries off", "retries on"});
  for (const netsim::NodeId sender : {2u, 4u, 6u, 8u}) {
    config.sender = sender;
    config.use_rts_cts = false;
    const auto off = run_table1(config);
    config.use_rts_cts = true;
    const auto on = run_table1(config);
    table.add_row({static_cast<std::int64_t>(sender), off.pdr, on.pdr,
                   static_cast<std::int64_t>(off.mac_collisions),
                   static_cast<std::int64_t>(on.mac_collisions),
                   static_cast<std::int64_t>(off.mac_retries),
                   static_cast<std::int64_t>(on.mac_retries)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: RTS/CTS trades extra control airtime for fewer "
               "data-frame collisions; at Table-I load the paper's choice "
               "(off) is justified when PDR is comparable.\n";
  return 0;
}
