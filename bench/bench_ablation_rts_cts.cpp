// Ablation 3 (DESIGN.md): RTS/CTS off (Table I) vs on. With 512-byte CBR
// payloads and a ring topology, the paper disables RTS/CTS; this bench
// quantifies what that costs/saves under hidden terminals.
//
// --jobs N fans the (sender, RTS/CTS) replications across N ensemble
// workers; the table is byte-identical for every N.
#include <cstdio>
#include <iostream>

#include "runner/ensemble.h"
#include "scenario/table1.h"
#include "util/table_writer.h"

int main(int argc, char** argv) {
  using namespace cavenet;
  using namespace cavenet::scenario;

  std::cout << "Ablation: RTS/CTS off (Table I) vs on, AODV, senders 2, 4, "
               "6, 8\n\n";

  const netsim::NodeId senders[] = {2u, 4u, 6u, 8u};
  // One replication per (sender, rts_cts); run_table1 derives its streams
  // from config.seed exactly as the serial loop did.
  runner::EnsembleOptions options;
  options.jobs = runner::parse_jobs_flag(argc, argv);
  runner::EnsembleRunner pool(options);
  const auto results = pool.map<SenderRunResult>(
      std::size(senders) * 2, [&senders](runner::ReplicationContext& ctx) {
        TableIConfig config;
        config.protocol = Protocol::kAodv;
        config.seed = 3;
        config.sender = senders[ctx.index / 2];
        config.use_rts_cts = ctx.index % 2 == 1;
        return run_table1(config);
      });

  TableWriter table({"sender", "PDR off", "PDR on", "collisions off",
                     "collisions on", "retries off", "retries on"});
  for (std::size_t i = 0; i < std::size(senders); ++i) {
    const SenderRunResult& off = results[i * 2];
    const SenderRunResult& on = results[i * 2 + 1];
    table.add_row({static_cast<std::int64_t>(senders[i]), off.pdr, on.pdr,
                   static_cast<std::int64_t>(off.mac_collisions),
                   static_cast<std::int64_t>(on.mac_collisions),
                   static_cast<std::int64_t>(off.mac_retries),
                   static_cast<std::int64_t>(on.mac_retries)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: RTS/CTS trades extra control airtime for fewer "
               "data-frame collisions; at Table-I load the paper's choice "
               "(off) is justified when PDR is comparable.\n";
  return 0;
}
