// Paper Section IV-C: "If we increase the background traffic, the number
// of transmitted packets will again increase and the network may be
// congested." The paper runs one flow per scenario; this bench runs all 8
// senders concurrently in one simulation and compares per-sender PDR
// against the isolated (paper) setup.
#include <cstdio>
#include <iostream>

#include "scenario/experiment.h"
#include "scenario/table1.h"
#include "util/table_writer.h"

int main() {
  using namespace cavenet;
  using namespace cavenet::scenario;

  std::cout << "Background-traffic congestion: 8 isolated scenarios (paper) "
               "vs 8 concurrent flows (one run)\n\n";

  const std::vector<netsim::NodeId> senders = {1, 2, 3, 4, 5, 6, 7, 8};
  TableWriter table({"protocol", "mean PDR isolated", "mean PDR concurrent",
                     "delay isolated [s]", "delay concurrent [s]",
                     "Jain fairness", "collisions concurrent"});
  for (const Protocol protocol :
       {Protocol::kAodv, Protocol::kOlsr, Protocol::kDymo}) {
    TableIConfig config;
    config.protocol = protocol;
    config.seed = 3;

    const auto isolated = run_all_senders(config, 1, 8);
    const auto concurrent = run_table1_concurrent(config, senders);

    double iso_pdr = 0, con_pdr = 0, iso_delay = 0, con_delay = 0;
    std::vector<double> per_flow_rx;
    for (std::size_t i = 0; i < 8; ++i) {
      iso_pdr += isolated[i].pdr / 8;
      con_pdr += concurrent[i].pdr / 8;
      iso_delay += isolated[i].mean_delay_s / 8;
      con_delay += concurrent[i].mean_delay_s / 8;
      per_flow_rx.push_back(static_cast<double>(concurrent[i].rx_packets));
    }
    table.add_row({std::string(to_string(protocol)), iso_pdr, con_pdr,
                   iso_delay, con_delay, jain_fairness(per_flow_rx),
                   static_cast<std::int64_t>(concurrent[0].mac_collisions)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: with 8 flows converging on node 0, contention "
               "around the receiver raises delay and collision counts and "
               "depresses PDR relative to the isolated runs — most sharply "
               "for the protocols that add flooding control traffic on "
               "top.\n";
  return 0;
}
