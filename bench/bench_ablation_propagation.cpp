// Ablation 5 (DESIGN.md) / paper future work [18, 19]: radio propagation
// model sensitivity — two-ray ground (Table I) vs free space vs log-normal
// shadowing.
//
// --jobs N fans the (model, protocol) replications across N ensemble
// workers; the table is byte-identical for every N.
#include <cstdio>
#include <iostream>

#include "runner/ensemble.h"
#include "scenario/table1.h"
#include "util/table_writer.h"

int main(int argc, char** argv) {
  using namespace cavenet;
  using namespace cavenet::scenario;

  std::cout << "Ablation: propagation models (paper future work), AODV and "
               "DYMO, sender 4\n\n";

  struct Case {
    const char* name;
    Propagation propagation;
  };
  const Case cases[] = {
      {"two-ray ground (Table I)", Propagation::kTwoRayGround},
      {"free space", Propagation::kFreeSpace},
      {"shadowing (beta=2.8, sigma=4dB)", Propagation::kShadowing},
      {"two-ray + Rayleigh fading", Propagation::kRayleigh},
  };
  const Protocol protocols[] = {Protocol::kAodv, Protocol::kDymo};

  runner::EnsembleOptions options;
  options.jobs = runner::parse_jobs_flag(argc, argv);
  runner::EnsembleRunner pool(options);
  const auto results = pool.map<SenderRunResult>(
      std::size(cases) * std::size(protocols),
      [&cases, &protocols](runner::ReplicationContext& ctx) {
        TableIConfig config;
        config.protocol = protocols[ctx.index % std::size(protocols)];
        config.sender = 4;
        config.seed = 3;
        config.propagation = cases[ctx.index / std::size(protocols)].propagation;
        return run_table1(config);
      });

  TableWriter table({"model", "protocol", "PDR", "mean delay [s]",
                     "MAC retries"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SenderRunResult& r = results[i];
    table.add_row({std::string(cases[i / std::size(protocols)].name),
                   std::string(to_string(protocols[i % std::size(protocols)])),
                   r.pdr, r.mean_delay_s,
                   static_cast<std::int64_t>(r.mac_retries)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: free space extends range (gentler d^-2 decay "
               "above the crossover), raising connectivity; shadowing adds "
               "random link asymmetry and loss, lowering PDR — the paper's "
               "stated reason to study propagation models next.\n";
  return 0;
}
