// Ablation 5 (DESIGN.md) / paper future work [18, 19]: radio propagation
// model sensitivity — two-ray ground (Table I) vs free space vs log-normal
// shadowing.
#include <cstdio>
#include <iostream>

#include "scenario/table1.h"
#include "util/table_writer.h"

int main() {
  using namespace cavenet;
  using namespace cavenet::scenario;

  std::cout << "Ablation: propagation models (paper future work), AODV and "
               "DYMO, sender 4\n\n";

  struct Case {
    const char* name;
    Propagation propagation;
  };
  const Case cases[] = {
      {"two-ray ground (Table I)", Propagation::kTwoRayGround},
      {"free space", Propagation::kFreeSpace},
      {"shadowing (beta=2.8, sigma=4dB)", Propagation::kShadowing},
      {"two-ray + Rayleigh fading", Propagation::kRayleigh},
  };

  TableWriter table({"model", "protocol", "PDR", "mean delay [s]",
                     "MAC retries"});
  for (const Case& c : cases) {
    for (const Protocol protocol : {Protocol::kAodv, Protocol::kDymo}) {
      TableIConfig config;
      config.protocol = protocol;
      config.sender = 4;
      config.seed = 3;
      config.propagation = c.propagation;
      const auto r = run_table1(config);
      table.add_row({std::string(c.name), std::string(to_string(protocol)),
                     r.pdr, r.mean_delay_s,
                     static_cast<std::int64_t>(r.mac_retries)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: free space extends range (gentler d^-2 decay "
               "above the crossover), raising connectivity; shadowing adds "
               "random link asymmetry and loss, lowering PDR — the paper's "
               "stated reason to study propagation models next.\n";
  return 0;
}
