// Extension bench (paper Section III, explicitly out of the paper's
// scope): "The intersection of lanes ... affects the traffic behaviour on
// the whole lane, because the crosspoint is the bottleneck for the lane."
// We quantify the bottleneck: lane-B flow vs density, free-running vs
// yielding at a priority crossing vs under a traffic light.
#include <cstdio>
#include <iostream>

#include "core/intersection.h"
#include "util/table_writer.h"

namespace {

using namespace cavenet;
using namespace cavenet::ca;

double lane_b_flow(double density, IntersectionPolicy policy,
                   bool with_intersection) {
  NasParams params;
  params.lane_length = 200;
  params.slowdown_p = 0.1;
  const auto n = static_cast<std::int64_t>(density * 200.0);
  NasLane a(params, n, InitialPlacement::kRandom, Rng(7, 1));
  NasLane b(params, n, InitialPlacement::kRandom, Rng(7, 2));
  IntersectionConfig config;
  config.cell_a = 100;
  config.cell_b = 100;
  config.policy = policy;
  Intersection intersection(a, b, config);
  double flow = 0.0;
  int counted = 0;
  for (int step = 0; step < 600; ++step) {
    if (with_intersection) {
      intersection.step();
    } else {
      a.step();
      b.step();
    }
    if (step >= 300) {
      flow += b.flow();
      ++counted;
    }
  }
  return flow / counted;
}

}  // namespace

int main() {
  std::cout << "Intersection bottleneck: lane-B flow J vs density (L = 200, "
               "p = 0.1, crossing at mid-lane)\n\n";
  TableWriter table({"rho", "J free", "J stop-sign (yield)",
                     "J traffic light", "yield loss", "light loss"});
  for (const double rho : {0.05, 0.1, 0.2, 0.3, 0.4}) {
    const double free_flow =
        lane_b_flow(rho, IntersectionPolicy::kPriorityToFirst, false);
    const double yielding =
        lane_b_flow(rho, IntersectionPolicy::kPriorityToFirst, true);
    const double light =
        lane_b_flow(rho, IntersectionPolicy::kTrafficLight, true);
    table.add_row({rho, free_flow, yielding, light,
                   1.0 - (free_flow > 0 ? yielding / free_flow : 0.0),
                   1.0 - (free_flow > 0 ? light / free_flow : 0.0)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: the crosspoint caps lane-B flow well below the "
               "free-running fundamental diagram, increasingly so with "
               "density; the stop-sign policy starves lane B harder than "
               "the alternating light at high load.\n";
  return 0;
}
