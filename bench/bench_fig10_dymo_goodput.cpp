// Reproduces paper Fig. 10: DYMO goodput surface over the Table-I scenario.
//
// Expected shape: sustained goodput near the CBR rate with quick route
// acquisition (paper: DYMO's route searching time is almost as low as
// OLSR's, while its goodput matches AODV's).
#include "goodput_surface.h"

int main() {
  return cavenet::bench::run_goodput_surface(
      cavenet::scenario::Protocol::kDymo, "Fig. 10");
}
