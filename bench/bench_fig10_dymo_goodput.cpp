// Reproduces paper Fig. 10: DYMO goodput surface over the Table-I scenario.
//
// Expected shape: sustained goodput near the CBR rate with quick route
// acquisition (paper: DYMO's route searching time is almost as low as
// OLSR's, while its goodput matches AODV's).
//
// --jobs N fans the 8 per-sender runs across N ensemble workers; the CSV
// and manifest are byte-identical for every N.
#include "goodput_surface.h"
#include "runner/ensemble.h"

int main(int argc, char** argv) {
  return cavenet::bench::run_goodput_surface(
      cavenet::scenario::Protocol::kDymo, "Fig. 10",
      cavenet::runner::parse_jobs_flag(argc, argv));
}
