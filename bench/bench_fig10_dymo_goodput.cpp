// Reproduces paper Fig. 10: DYMO goodput surface over the Table-I scenario.
//
// Expected shape: sustained goodput near the CBR rate with quick route
// acquisition (paper: DYMO's route searching time is almost as low as
// OLSR's, while its goodput matches AODV's).
//
// Thin wrapper over the spec engine (examples/specs/fig10_dymo.json).
//
// --jobs N fans the 8 per-sender runs across N ensemble workers; the CSV
// and manifest are byte-identical for every N.
#include "spec/engine.h"

int main(int argc, char** argv) {
  return cavenet::spec::bench_spec_main(CAVENET_SPEC_DIR "/fig10_dymo.json",
                                        argc, argv);
}
