#!/usr/bin/env python3
"""Diff two CAVENET RunManifest JSON files and flag counter regressions.

Usage:
    stats_diff.py BASELINE.manifest.json CANDIDATE.manifest.json
        [--threshold PCT] [--watch PREFIX ...] [--all]
    stats_diff.py BASELINE.telemetry.jsonl CANDIDATE.telemetry.jsonl

Manifest mode prints parameter changes, metric deltas, and counter/gauge/
histogram/quantile deltas between the two runs. Exits 1 when a *watched*
counter regresses by more than --threshold percent (default 5%), so the
script can gate CI.

"Regression" direction is counter-specific: drop/retry/failure counters
regress by going *up*, delivery/success counters by going *down*. Anything
not matched by the heuristics below only changes the report, never the
exit code, unless listed via --watch. Histogram and quantile entries are
informational: their summary fields (count, p50/p90/p95/p99, ...) are
printed when they change but never flip the exit code on their own.

Telemetry mode (both paths ending in .jsonl) compares two snapshot
sequences line by line and reports the FIRST diverging snapshot index plus
which stats entries differ inside it. Exits 1 on any divergence — the
streams are supposed to be byte-identical across --jobs values.
"""

import argparse
import json
import sys

# Counters where an increase is bad (losses, failures, queue overflow).
BAD_UP_MARKERS = (".drop.", ".dropped", ".retries", ".rerr.", ".dup")
# Counters where a decrease is bad (useful work delivered).
BAD_DOWN_MARKERS = (".rx.delivered", ".rx.sink", ".tx.success")


def load_manifest(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"stats_diff: cannot read {path}: {err}")
    for key in ("name", "stats"):
        if key not in doc:
            sys.exit(f"stats_diff: {path} is not a RunManifest (missing '{key}')")
    return doc


def pct_change(old, new):
    if old == 0:
        return float("inf") if new != 0 else 0.0
    return 100.0 * (new - old) / old


def fmt_pct(p):
    if p == float("inf"):
        return "new"
    return f"{p:+.1f}%"


def diff_maps(old, new):
    """Yields (key, old_value, new_value) over the union of keys, sorted."""
    for key in sorted(set(old) | set(new)):
        yield key, old.get(key, 0), new.get(key, 0)


def regression_direction(name):
    """Returns +1 if an increase regresses, -1 if a decrease does, 0 if
    the counter carries no quality signal by itself."""
    if any(m in name for m in BAD_UP_MARKERS):
        return +1
    if any(m in name for m in BAD_DOWN_MARKERS):
        return -1
    return 0


# Distribution summary fields worth printing when they move. The cdf is
# compared for equality but not printed field-by-field (too wide).
SUMMARY_FIELDS = ("count", "sum", "min", "max", "p50", "p90", "p95", "p99")


def flatten_summaries(section_map):
    """{"mac.delay.access": {"count": 3, "p50": ...}} ->
    {"mac.delay.access.count": 3, "mac.delay.access.p50": ...}."""
    flat = {}
    for name, summary in section_map.items():
        if not isinstance(summary, dict):
            continue
        for field in SUMMARY_FIELDS:
            if field in summary:
                flat[f"{name}.{field}"] = summary[field]
    return flat


def diff_stats_entries(old_stats, new_stats):
    """Yields (label, key, old, new) for every differing entry across all
    four stats sections (summaries flattened to per-field keys)."""
    for section in ("counters", "gauges"):
        for key, old, new in diff_maps(old_stats.get(section, {}),
                                       new_stats.get(section, {})):
            if old != new:
                yield section, key, old, new
    for section in ("histograms", "quantiles"):
        old_flat = flatten_summaries(old_stats.get(section, {}))
        new_flat = flatten_summaries(new_stats.get(section, {}))
        for key, old, new in diff_maps(old_flat, new_flat):
            if old != new:
                yield section, key, old, new
        # CDFs compare as whole vectors; report presence of a difference.
        old_map, new_map = old_stats.get(section, {}), new_stats.get(section, {})
        for name in sorted(set(old_map) | set(new_map)):
            old_cdf = old_map.get(name, {}).get("cdf")
            new_cdf = new_map.get(name, {}).get("cdf")
            if old_cdf != new_cdf:
                yield section, f"{name}.cdf", "(differs)", "(differs)"


def load_jsonl(path):
    snapshots = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    snapshots.append((line, json.loads(line)))
                except json.JSONDecodeError as err:
                    sys.exit(f"stats_diff: {path}:{lineno}: {err}")
    except OSError as err:
        sys.exit(f"stats_diff: cannot read {path}: {err}")
    return snapshots


def diff_telemetry(baseline_path, candidate_path):
    """Compares two telemetry JSONL snapshot sequences; returns the exit
    code (0 identical, 1 diverged)."""
    base = load_jsonl(baseline_path)
    cand = load_jsonl(candidate_path)
    print(f"baseline : {baseline_path}  ({len(base)} snapshots)")
    print(f"candidate: {candidate_path}  ({len(cand)} snapshots)")

    for index, ((base_line, base_doc), (cand_line, cand_doc)) in enumerate(
            zip(base, cand)):
        if base_line == cand_line:
            continue
        print(f"\nsnapshot {index} diverged "
              f"(seq={base_doc.get('seq')} t_s={base_doc.get('t_s')}):")
        if base_doc.get("t_s") != cand_doc.get("t_s"):
            print(f"  t_s: {base_doc.get('t_s')} -> {cand_doc.get('t_s')}")
        rows = list(diff_stats_entries(base_doc.get("stats", {}),
                                       cand_doc.get("stats", {})))
        for section, key, old, new in rows[:50]:
            print(f"  [{section}] {key:40s} {old!r} -> {new!r}")
        if len(rows) > 50:
            print(f"  ... and {len(rows) - 50} more differing entries")
        if not rows:
            print("  (stats identical; lines differ in serialization "
                  "or other fields)")
        return 1

    if len(base) != len(cand):
        print(f"\nsequences diverge at snapshot {min(len(base), len(cand))}: "
              f"baseline has {len(base)} snapshots, candidate {len(cand)}")
        return 1
    print(f"\nidentical: {len(base)} snapshots match byte-for-byte.")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="regression tolerance in percent (default 5)")
    parser.add_argument("--watch", action="append", default=[],
                        metavar="PREFIX",
                        help="treat any change to counters with this prefix "
                             "as watched (repeatable)")
    parser.add_argument("--all", action="store_true",
                        help="print unchanged entries too")
    args = parser.parse_args()

    if args.baseline.endswith(".jsonl") and args.candidate.endswith(".jsonl"):
        return diff_telemetry(args.baseline, args.candidate)

    base = load_manifest(args.baseline)
    cand = load_manifest(args.candidate)

    print(f"baseline : {base['name']}  seed={base.get('seed')}  "
          f"build={base.get('git_describe', '?')}  {base.get('created_at', '')}")
    print(f"candidate: {cand['name']}  seed={cand.get('seed')}  "
          f"build={cand.get('git_describe', '?')}  {cand.get('created_at', '')}")

    changed_params = [(k, o, n)
                      for k, o, n in diff_maps(base.get("params", {}),
                                               cand.get("params", {}))
                      if o != n]
    if changed_params:
        print("\nparameter changes (runs are NOT like-for-like):")
        for key, old, new in changed_params:
            print(f"  {key:32s} {old!r} -> {new!r}")

    print("\nmetrics:")
    for key, old, new in diff_maps(base.get("metrics", {}),
                                   cand.get("metrics", {})):
        if old == new and not args.all:
            continue
        print(f"  {key:32s} {old:>14g} -> {new:<14g} ({fmt_pct(pct_change(old, new))})")

    regressions = []
    for section in ("counters", "gauges"):
        old_map = base["stats"].get(section, {})
        new_map = cand["stats"].get(section, {})
        rows = [(k, o, n) for k, o, n in diff_maps(old_map, new_map)
                if args.all or o != n]
        if rows:
            print(f"\n{section}:")
        for key, old, new in rows:
            change = pct_change(old, new)
            direction = regression_direction(key)
            watched = any(key.startswith(p) for p in args.watch)
            regressed = False
            if section == "counters":
                if watched and old != new and abs(change) > args.threshold:
                    regressed = True
                elif direction > 0 and change > args.threshold:
                    regressed = True
                elif direction < 0 and change < -args.threshold:
                    regressed = True
            flag = "  REGRESSION" if regressed else ""
            print(f"  {key:32s} {old:>14g} -> {new:<14g} "
                  f"({fmt_pct(change)}){flag}")
            if regressed:
                regressions.append((key, old, new, change))

    # Distribution sections are informational only: summary-field moves are
    # printed but never flip the exit code (regression_direction has no
    # meaningful sign for a percentile).
    for section in ("histograms", "quantiles"):
        old_flat = flatten_summaries(base["stats"].get(section, {}))
        new_flat = flatten_summaries(cand["stats"].get(section, {}))
        rows = [(k, o, n) for k, o, n in diff_maps(old_flat, new_flat)
                if args.all or o != n]
        if rows:
            print(f"\n{section}:")
        for key, old, new in rows:
            print(f"  {key:32s} {old:>14g} -> {new:<14g} "
                  f"({fmt_pct(pct_change(old, new))})")

    if regressions:
        print(f"\n{len(regressions)} counter regression(s) beyond "
              f"{args.threshold}%:")
        for key, old, new, change in regressions:
            print(f"  {key}: {old:g} -> {new:g} ({fmt_pct(change)})")
        return 1
    print("\nno counter regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
