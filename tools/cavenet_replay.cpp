// cavenet-replay — inspects an ns-2 mobility trace file (ours or anyone
// else's): per-node summary, ASCII snapshots of the node layout over
// time, and connectivity statistics under a chosen radio range.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/connectivity.h"
#include "trace/ns2_format.h"
#include "util/cli_args.h"

namespace {

using namespace cavenet;

void render_snapshot(const std::vector<trace::NodePath>& paths, double t,
                     double min_x, double min_y, double max_x, double max_y) {
  constexpr int kCols = 72;
  constexpr int kRows = 24;
  std::vector<std::string> canvas(kRows, std::string(kCols, '.'));
  const double span_x = std::max(max_x - min_x, 1.0);
  const double span_y = std::max(max_y - min_y, 1.0);
  for (std::size_t node = 0; node < paths.size(); ++node) {
    const Vec2 p = paths[node].position(t);
    const int col = std::clamp(
        static_cast<int>((p.x - min_x) / span_x * (kCols - 1)), 0, kCols - 1);
    const int row = std::clamp(
        static_cast<int>((p.y - min_y) / span_y * (kRows - 1)), 0, kRows - 1);
    canvas[static_cast<std::size_t>(kRows - 1 - row)]
          [static_cast<std::size_t>(col)] =
        static_cast<char>('0' + node % 10);
  }
  std::printf("t = %.0f s\n", t);
  for (const std::string& line : canvas) std::printf("  %s\n", line.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: cavenet-replay <trace.ns2> [--range M] "
                 "[--duration S] [--snapshots N]\n");
    return 2;
  }
  const double range = args.get_double("range", 250.0);
  const int snapshots = static_cast<int>(args.get_int("snapshots", 3));

  trace::MobilityTrace mobility;
  try {
    mobility = trace::read_ns2_file(args.positional().front());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const auto paths = trace::compile_paths(mobility);

  double end_time = 0.0;
  for (const auto& path : paths) end_time = std::max(end_time, path.end_time());
  const double duration = args.get_double("duration", end_time);

  std::printf("%u nodes, %zu movement events, motion ends at %.1f s\n",
              mobility.node_count(), mobility.events.size(), end_time);

  // Bounding box over sampled positions.
  double min_x = 1e300, min_y = 1e300, max_x = -1e300, max_y = -1e300;
  for (double t = 0.0; t <= duration + 1e-9; t += std::max(duration / 50.0, 1.0)) {
    for (const auto& path : paths) {
      const Vec2 p = path.position(t);
      min_x = std::min(min_x, p.x);
      min_y = std::min(min_y, p.y);
      max_x = std::max(max_x, p.x);
      max_y = std::max(max_y, p.y);
    }
  }
  std::printf("bounding box: [%.0f, %.0f] x [%.0f, %.0f] m\n\n", min_x, max_x,
              min_y, max_y);

  for (int i = 0; i < snapshots; ++i) {
    const double t =
        snapshots > 1 ? duration * i / (snapshots - 1) : 0.0;
    render_snapshot(paths, t, min_x, min_y, max_x, max_y);
  }

  trace::ConnectivitySweepOptions sweep;
  sweep.range_m = range;
  sweep.t_end_s = duration;
  sweep.dt_s = std::max(duration / 100.0, 1.0);
  const auto samples = trace::connectivity_over_time(paths, sweep);
  double components = 0.0, pair_connectivity = 0.0;
  for (const auto& s : samples) {
    components += static_cast<double>(s.components);
    pair_connectivity += s.pair_connectivity;
  }
  const auto n = static_cast<double>(samples.size());
  std::printf("\nconnectivity @ %.0f m range: %.2f components, %.3f pair "
              "connectivity, %.2f link events/s\n",
              range, components / n, pair_connectivity / n,
              trace::link_change_rate(paths, sweep));
  return 0;
}
