#!/usr/bin/env python3
"""End-to-end smoke gate for cavenet-serve (docs/SERVING.md).

Boots the daemon on an ephemeral port with a fresh state dir, submits
examples/specs/fig8_aodv.json twice, and checks the whole serving story:

  1. the first submission simulates (cold cache) and completes;
  2. the second submission is a 100% cache hit (zero units executed);
  3. both jobs' artifacts are byte-identical to a direct
     `cavenet-run --output-dir` of the same spec;
  4. the daemon restarts on the same state dir and replays both jobs
     as done without re-running anything.

Usage: serve_smoke.py <cavenet-serve> <cavenet-run> <fig8_spec.json>

Exit code 0 on success; any failure prints the offending check and
exits 1. Stdlib only (urllib, subprocess, tempfile).
"""

import json
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def http(port, method, target, body=None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{target}", data=body, method=method)
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, response.read()


class Daemon:
    """cavenet-serve child process; scrapes the bound port from stdout."""

    def __init__(self, binary, state_dir):
        self.process = subprocess.Popen(
            [binary, "--state-dir", str(state_dir), "--workers", "2",
             "--heartbeat", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        self.port = None
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if not line:
                break
            if "listening on 127.0.0.1:" in line:
                self.port = int(line.rsplit(":", 1)[1])
                return
        fail("daemon did not report a listening port")

    def stop(self):
        self.process.terminate()
        try:
            self.process.wait(timeout=20)
        except subprocess.TimeoutExpired:
            self.process.kill()
            fail("daemon did not stop on SIGTERM")


def wait_done(port, job_id):
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        _, body = http(port, "GET", f"/v1/jobs/{job_id}")
        status = json.loads(body)
        if status["state"] == "done":
            return status
        if status["state"] in ("failed", "cancelled"):
            fail(f"job {job_id} reached state {status['state']}: "
                 f"{status.get('error', '')}")
        time.sleep(0.1)
    fail(f"job {job_id} did not finish in time")


def check_artifacts(port, job_id, status, direct_dir):
    if not status["files"]:
        fail(f"job {job_id} reported no artifacts")
    for name in status["files"]:
        code, served = http(port, "GET", f"/v1/jobs/{job_id}/results/{name}")
        if code != 200:
            fail(f"GET results/{name} for {job_id} returned {code}")
        direct = (direct_dir / name).read_bytes()
        if served != direct:
            fail(f"job {job_id} artifact {name} differs from direct "
                 f"cavenet-run bytes ({len(served)} vs {len(direct)})")


def main():
    if len(sys.argv) != 4:
        fail(f"usage: {sys.argv[0]} <cavenet-serve> <cavenet-run> <spec.json>")
    serve_bin, run_bin, spec_path = sys.argv[1:]
    spec_bytes = Path(spec_path).read_bytes()

    with tempfile.TemporaryDirectory(prefix="cavenet-serve-smoke-") as tmp:
        tmp = Path(tmp)
        # The ground truth: a direct run of the same spec.
        direct_dir = tmp / "direct"
        direct_dir.mkdir()
        result = subprocess.run(
            [run_bin, spec_path, "--output-dir", str(direct_dir)],
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
        if result.returncode != 0:
            fail(f"direct cavenet-run failed: {result.stderr}")

        daemon = Daemon(serve_bin, tmp / "state")

        # Cold submission: simulates, then serves bytes == direct run.
        code, body = http(daemon.port, "POST", "/v1/jobs", spec_bytes)
        if code != 201:
            fail(f"first submit returned {code}")
        first = json.loads(body)["job"]
        first_status = wait_done(daemon.port, first)
        if first_status["cache_hits"] != 0:
            fail("first submission hit the cache in a fresh state dir")
        check_artifacts(daemon.port, first, first_status, direct_dir)

        # Warm submission: must be a 100% cache hit, still byte-identical.
        _, before = http(daemon.port, "GET", "/v1/stats")
        executed_before = json.loads(before)["counters"].get(
            "serve.units.executed", 0)
        code, body = http(daemon.port, "POST", "/v1/jobs", spec_bytes)
        if code != 201:
            fail(f"second submit returned {code}")
        second = json.loads(body)["job"]
        second_status = wait_done(daemon.port, second)
        if second_status["cache_hits"] != second_status["units"]:
            fail(f"second submission was not a full cache hit: "
                 f"{second_status['cache_hits']}/{second_status['units']}")
        check_artifacts(daemon.port, second, second_status, direct_dir)
        _, after = http(daemon.port, "GET", "/v1/stats")
        executed_after = json.loads(after)["counters"].get(
            "serve.units.executed", 0)
        if executed_after != executed_before:
            fail("second submission executed units despite a warm cache")

        daemon.stop()

        # Restart on the same state dir: the journal replays both jobs as
        # done, artifacts still served, nothing re-simulated.
        daemon = Daemon(serve_bin, tmp / "state")
        _, body = http(daemon.port, "GET", "/v1/jobs")
        replayed = json.loads(body)["jobs"]
        if [job["job"] for job in replayed] != [first, second]:
            fail(f"replay lost jobs: {[job['job'] for job in replayed]}")
        if any(job["state"] != "done" for job in replayed):
            fail("replay did not restore jobs as done")
        check_artifacts(daemon.port, first, replayed[0], direct_dir)
        daemon.stop()

    print("serve_smoke: OK")


if __name__ == "__main__":
    main()
