// cavenet-serve — the multi-tenant campaign job service daemon
// (docs/SERVING.md).
//
//   cavenet-serve --state-dir DIR            durable root (required):
//                                            journal, cache, job outputs
//   cavenet-serve ... --port N               HTTP port on 127.0.0.1
//                                            (default 0 = ephemeral; the
//                                            bound port is printed)
//   cavenet-serve ... --workers N            worker lanes (default 2,
//                                            <= 0 = hardware threads)
//   cavenet-serve ... --max-body-bytes N     submission size cap
//   cavenet-serve ... --max-json-depth N     spec JSON nesting cap
//   cavenet-serve ... --heartbeat SECS       per-job progress heartbeat
//                                            (default 5; <= 0 disables)
//
// On start the daemon replays <state-dir>/journal.jsonl and re-enqueues
// every unfinished unit of every interrupted job — kill -9 loses at most
// the units that were mid-flight, and nothing completed is ever
// simulated twice. SIGINT/SIGTERM stop cleanly (identical on-disk state
// to a crash: the journal is the recovery story either way).
//
// Exit codes: 0 clean stop, 2 bad usage / startup failure.
#include <csignal>
#include <cstdio>
#include <exception>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "serve/service.h"
#include "util/cli_args.h"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

int usage() {
  std::fprintf(stderr,
               "usage: cavenet-serve --state-dir DIR [--port N]\n"
               "                     [--workers N] [--max-body-bytes N]\n"
               "                     [--max-json-depth N] [--heartbeat SECS]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cavenet;

  const CliArgs args(argc, argv, {});
  serve::ServiceOptions options;
  options.state_dir = args.get_string("state-dir", "");
  options.http_port = static_cast<int>(args.get_int("port", 0));
  options.workers = static_cast<int>(args.get_int("workers", 2));
  options.max_body_bytes =
      static_cast<std::size_t>(args.get_int("max-body-bytes", 8 * 1024 * 1024));
  options.max_json_depth =
      static_cast<std::size_t>(args.get_int("max-json-depth", 64));
  options.heartbeat_period_s = args.get_double("heartbeat", 5.0);

  for (const std::string& flag : args.unknown_flags()) {
    std::fprintf(stderr, "%s\n", args.describe_unknown(flag).c_str());
    return 2;
  }
  if (options.state_dir.empty() || !args.positional().empty()) return usage();

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  try {
    serve::JobService service(options);
    if (service.replayed_pending_units() > 0) {
      std::printf("replayed %zu pending units from the journal\n",
                  service.replayed_pending_units());
    }
    // The smoke gate (tools/serve_smoke.py) scrapes this line for the
    // ephemeral port; keep the format stable.
    std::printf("cavenet-serve listening on 127.0.0.1:%d\n", service.port());
    std::fflush(stdout);
    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::printf("cavenet-serve stopping\n");
    service.stop();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "cavenet-serve: %s\n", error.what());
    return 2;
  }
  return 0;
}
