// cavenet — command-line front end to the CAVENET++ library.
//
// Subcommands (mirroring the original CAVENET's MATLAB workflows):
//   trace        generate an ns-2 mobility trace from the CA (or RW) model
//   fd           fundamental diagram sweep (CSV to stdout)
//   spacetime    ASCII space-time plot
//   run          one Table-I protocol run, metrics to stdout
//   connectivity connectivity time series of a CA trace
//
// Run `cavenet <subcommand> --help` equivalent: any unknown flag aborts
// with the list of valid flags for that subcommand.
#include <cstdio>
#include <iostream>
#include <string>

#include "core/fundamental_diagram.h"
#include "core/geometry.h"
#include "core/nas_lane.h"
#include "core/road.h"
#include "core/lane_statistics.h"
#include "core/space_time.h"
#include "scenario/table1.h"
#include "trace/connectivity.h"
#include "trace/csv_format.h"
#include "trace/ns2_format.h"
#include "trace/random_waypoint.h"
#include "trace/trace_generator.h"
#include "util/cli_args.h"
#include "util/table_writer.h"

namespace {

using namespace cavenet;

int usage() {
  std::fprintf(stderr,
               "usage: cavenet <subcommand> [flags]\n"
               "  trace        --nodes N --steps S --cells L --p P --seed K\n"
               "               [--line] [--rw] [--format ns2|csv] [--out FILE]\n"
               "  fd           --cells L --p P --points N --trials T\n"
               "  spacetime    --rho R --p P --cells L --steps S\n"
               "  run          --protocol aodv|olsr|dymo|dsdv --sender N\n"
               "               [--seed K] [--p P] [--rts]\n"
               "  stats        --rho R --p P [--cells L] [--steps S]\n"
               "  connectivity --nodes N --steps S --p P [--range M]\n");
  return 2;
}

int reject_unknown(const CliArgs& args) {
  const auto unknown = args.unknown_flags();
  if (unknown.empty()) return 0;
  for (const auto& flag : unknown) {
    std::fprintf(stderr, "%s\n", args.describe_unknown(flag).c_str());
  }
  return 2;
}

ca::Road make_ca_road(std::int64_t cells, std::int64_t nodes, double p,
                      std::uint64_t seed, bool line) {
  ca::NasParams params;
  params.lane_length = cells;
  params.slowdown_p = p;
  ca::Road road;
  ca::NasLane lane(params, nodes, ca::InitialPlacement::kRandom, Rng(seed));
  if (line) {
    road.add_lane(std::move(lane), ca::make_line(params.lane_length_m()));
  } else {
    road.add_lane(std::move(lane), ca::make_circuit(params.lane_length_m()));
  }
  return road;
}

int cmd_trace(const CliArgs& args) {
  const auto nodes = args.get_int("nodes", 30);
  const auto steps = args.get_int("steps", 100);
  const auto cells = args.get_int("cells", 400);
  const double p = args.get_double("p", 0.3);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const bool line = args.get_bool("line", false);
  const bool rw = args.get_bool("rw", false);
  const std::string format = args.get_string("format", "ns2");
  const std::string out = args.get_string("out", "");
  if (const int rc = reject_unknown(args)) return rc;
  if (format != "ns2" && format != "csv") {
    std::fprintf(stderr, "unknown format: %s\n", format.c_str());
    return 2;
  }

  trace::MobilityTrace mobility;
  if (rw) {
    trace::RandomWaypointOptions options;
    options.nodes = static_cast<std::uint32_t>(nodes);
    options.duration_s = static_cast<double>(steps);
    options.seed = seed;
    mobility = trace::generate_random_waypoint(options);
  } else {
    ca::Road road = make_ca_road(cells, nodes, p, seed, line);
    trace::TraceGeneratorOptions options;
    options.steps = steps;
    mobility = trace::generate_trace(road, options);
  }
  if (format == "csv") {
    trace::CsvExportOptions csv;
    csv.t_end_s = static_cast<double>(steps);
    if (out.empty()) {
      trace::write_positions_csv(mobility, std::cout, csv);
    } else if (!trace::write_positions_csv_file(mobility, out, csv)) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    return 0;
  }
  if (out.empty()) {
    trace::write_ns2(mobility, std::cout);
  } else if (!trace::write_ns2_file(mobility, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  } else {
    std::fprintf(stderr, "wrote %zu events for %u nodes to %s\n",
                 mobility.events.size(), mobility.node_count(), out.c_str());
  }
  return 0;
}

int cmd_stats(const CliArgs& args) {
  const double rho = args.get_double("rho", 0.075);
  const double p = args.get_double("p", 0.5);
  const auto cells = args.get_int("cells", 400);
  const auto steps = args.get_int("steps", 500);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (const int rc = reject_unknown(args)) return rc;

  ca::NasParams params;
  params.lane_length = cells;
  params.slowdown_p = p;
  ca::NasLane lane(params,
                   static_cast<std::int64_t>(rho * static_cast<double>(cells)),
                   ca::InitialPlacement::kRandom, Rng(seed));
  lane.run(200);
  ca::LaneStatistics stats(params);
  for (std::int64_t i = 0; i < steps; ++i) {
    lane.step();
    stats.record(lane);
  }
  TableWriter table({"metric", "value"});
  table.add_row({std::string("samples"),
                 static_cast<std::int64_t>(stats.samples())});
  table.add_row({std::string("mean jam clusters"), stats.mean_jam_clusters()});
  table.add_row({std::string("P(gap >= 250 m)"), stats.gap_exceedance(34)});
  table.add_row({std::string("P(ring partitioned)"),
                 stats.multi_gap_fraction(34, 2)});
  for (int v = 0; v <= 5; ++v) {
    table.add_row({std::string("P(v=") + std::to_string(v) + ")",
                   stats.velocity_probability(v)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_fd(const CliArgs& args) {
  ca::FundamentalDiagramOptions options;
  options.params.lane_length = args.get_int("cells", 400);
  options.params.slowdown_p = args.get_double("p", 0.0);
  options.densities = ca::density_ladder(
      options.params.lane_length, args.get_double("max-density", 0.5),
      static_cast<std::size_t>(args.get_int("points", 21)));
  options.trials = args.get_int("trials", 20);
  options.iterations = args.get_int("iterations", 500);
  options.warmup = args.get_int("warmup", 200);
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (const int rc = reject_unknown(args)) return rc;

  TableWriter csv({"rho", "J", "J_stddev", "mean_velocity"});
  for (const auto& point : ca::fundamental_diagram(options)) {
    csv.add_row({point.density, point.flow, point.flow_stddev,
                 point.mean_velocity});
  }
  csv.write_csv(std::cout);
  return 0;
}

int cmd_spacetime(const CliArgs& args) {
  const double rho = args.get_double("rho", 0.1);
  const double p = args.get_double("p", 0.3);
  const auto cells = args.get_int("cells", 200);
  const auto steps = args.get_int("steps", 40);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (const int rc = reject_unknown(args)) return rc;

  ca::NasParams params;
  params.lane_length = cells;
  params.slowdown_p = p;
  ca::NasLane lane(params,
                   static_cast<std::int64_t>(rho * static_cast<double>(cells)),
                   ca::InitialPlacement::kRandom, Rng(seed));
  const auto raster = ca::record_space_time(lane, steps);
  raster.render_ascii(std::cout, 120);
  return 0;
}

int cmd_run(const CliArgs& args) {
  const std::string protocol = args.get_string("protocol", "aodv");
  scenario::TableIConfig config;
  if (protocol == "aodv") config.protocol = scenario::Protocol::kAodv;
  else if (protocol == "olsr") config.protocol = scenario::Protocol::kOlsr;
  else if (protocol == "dymo") config.protocol = scenario::Protocol::kDymo;
  else if (protocol == "dsdv") config.protocol = scenario::Protocol::kDsdv;
  else {
    std::fprintf(stderr, "unknown protocol: %s\n", protocol.c_str());
    return 2;
  }
  config.sender = static_cast<netsim::NodeId>(args.get_int("sender", 4));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.slowdown_p = args.get_double("p", config.slowdown_p);
  config.use_rts_cts = args.get_bool("rts", false);
  if (const int rc = reject_unknown(args)) return rc;

  const auto result = scenario::run_table1(config);
  std::printf("protocol=%s sender=%u seed=%llu\n",
              to_string(config.protocol), config.sender,
              static_cast<unsigned long long>(config.seed));
  std::printf("tx=%llu rx=%llu pdr=%.4f\n",
              static_cast<unsigned long long>(result.tx_packets),
              static_cast<unsigned long long>(result.rx_packets), result.pdr);
  std::printf("mean_delay_s=%.4f max_delay_s=%.4f first_route_s=%.4f\n",
              result.mean_delay_s, result.max_delay_s,
              result.first_delivery_delay_s);
  std::printf("ctrl_packets=%llu ctrl_bytes=%llu mac_retries=%llu\n",
              static_cast<unsigned long long>(result.control_packets),
              static_cast<unsigned long long>(result.control_bytes),
              static_cast<unsigned long long>(result.mac_retries));
  return 0;
}

int cmd_connectivity(const CliArgs& args) {
  const auto nodes = args.get_int("nodes", 30);
  const auto steps = args.get_int("steps", 100);
  const double p = args.get_double("p", 0.5);
  const double range = args.get_double("range", 250.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (const int rc = reject_unknown(args)) return rc;

  ca::Road road = make_ca_road(400, nodes, p, seed, false);
  trace::TraceGeneratorOptions trace_options;
  trace_options.steps = steps;
  const auto mobility = trace::generate_trace(road, trace_options);
  const auto paths = trace::compile_paths(mobility);

  trace::ConnectivitySweepOptions sweep;
  sweep.range_m = range;
  sweep.t_end_s = static_cast<double>(steps);
  TableWriter csv({"t", "components", "largest", "pair_connectivity"});
  for (const auto& sample : trace::connectivity_over_time(paths, sweep)) {
    csv.add_row({sample.time_s, static_cast<std::int64_t>(sample.components),
                 static_cast<std::int64_t>(sample.largest_component),
                 sample.pair_connectivity});
  }
  csv.write_csv(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string subcommand = argv[1];
  const CliArgs args(argc - 1, argv + 1);
  try {
    if (subcommand == "trace") return cmd_trace(args);
    if (subcommand == "fd") return cmd_fd(args);
    if (subcommand == "spacetime") return cmd_spacetime(args);
    if (subcommand == "run") return cmd_run(args);
    if (subcommand == "connectivity") return cmd_connectivity(args);
    if (subcommand == "stats") return cmd_stats(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return usage();
}
