#!/usr/bin/env python3
"""Bench-regression gate: run bench_micro and compare against the
checked-in BENCH_micro.json baseline.

Usage:
    bench_check.py --bench-binary build/bench/bench_micro
        [--baseline BENCH_micro.json] [--label LABEL]
        [--tolerance FACTOR] [--filter REGEX] [--min-time SECS]

Runs the microbenchmark binary with --json into a temporary file, then
compares each fresh ns/op figure against the baseline entry (the LAST
entry in the file unless --label picks one). A benchmark regresses when

    fresh_ns > baseline_ns * tolerance

The default tolerance is deliberately wide (5x): this is a smoke gate
against order-of-magnitude regressions (an accidental O(n^2), a lost
pool, a debug build sneaking into CI), not a statistical benchmark —
shared CI machines are far too noisy for tight bands. Speedups and
benchmarks missing from either side never fail the gate (new benchmarks
have no baseline yet; retired ones no longer matter).

Exit codes: 0 ok, 1 regression(s), 2 usage/environment error.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def load_baseline(path, label):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_check: cannot read baseline {path}: {err}")
    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        sys.exit(f"bench_check: {path} has no entries")
    if label:
        for entry in entries:
            if entry.get("label") == label:
                return entry["label"], entry.get("results", {})
        sys.exit(f"bench_check: no baseline entry labelled {label!r} in {path}")
    entry = entries[-1]  # newest entry: labels accumulate in PR order
    return entry.get("label", "?"), entry.get("results", {})


def run_bench(binary, filter_regex, min_time):
    fd, fresh_path = tempfile.mkstemp(suffix=".json", prefix="bench_check_")
    os.close(fd)
    os.unlink(fresh_path)  # bench_micro accumulates; start clean
    cmd = [
        binary,
        f"--json={fresh_path}",
        "--json-label=bench_check",
        # Bare seconds: the "0.01s" suffix form only parses on
        # google-benchmark >= 1.8.
        f"--benchmark_min_time={min_time}",
    ]
    if filter_regex:
        cmd.append(f"--benchmark_filter={filter_regex}")
    try:
        proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, text=True)
    except OSError as err:
        sys.exit(f"bench_check: cannot run {binary}: {err}")
    if proc.returncode != 0:
        print(proc.stdout)
        sys.exit(f"bench_check: {binary} exited {proc.returncode}")
    try:
        with open(fresh_path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(proc.stdout)
        sys.exit(f"bench_check: bench run produced no readable json: {err}")
    finally:
        try:
            os.unlink(fresh_path)
        except OSError:
            pass
    for entry in doc.get("entries", []):
        if entry.get("label") == "bench_check":
            return entry.get("results", {})
    sys.exit("bench_check: bench json missing the bench_check entry")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench-binary", required=True,
                        help="path to the bench_micro executable")
    parser.add_argument("--baseline", default="BENCH_micro.json",
                        help="checked-in baseline file (default "
                             "BENCH_micro.json)")
    parser.add_argument("--label", default="",
                        help="baseline entry label (default: last entry)")
    parser.add_argument("--tolerance", type=float, default=5.0,
                        help="regression factor vs baseline (default 5.0)")
    parser.add_argument("--filter", default="",
                        help="--benchmark_filter regex passed through")
    parser.add_argument("--min-time", default="0.01",
                        help="--benchmark_min_time seconds (default 0.01)")
    args = parser.parse_args()

    if args.tolerance <= 0:
        sys.exit("bench_check: --tolerance must be > 0")

    label, baseline = load_baseline(args.baseline, args.label)
    fresh = run_bench(args.bench_binary, args.filter, args.min_time)
    if not fresh:
        sys.exit("bench_check: bench run produced no results "
                 "(bad --filter regex?)")

    print(f"baseline: {args.baseline} [{label}]  tolerance x{args.tolerance}")
    regressions = []
    for name in sorted(fresh):
        fresh_ns = fresh[name]
        base_ns = baseline.get(name)
        if base_ns is None:
            print(f"  {name:36s} {fresh_ns:>14.1f} ns/op  (no baseline)")
            continue
        ratio = fresh_ns / base_ns if base_ns > 0 else float("inf")
        flag = "  REGRESSION" if ratio > args.tolerance else ""
        print(f"  {name:36s} {base_ns:>14.1f} -> {fresh_ns:<14.1f} ns/op "
              f"(x{ratio:.2f}){flag}")
        if flag:
            regressions.append((name, base_ns, fresh_ns, ratio))

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) beyond x{args.tolerance} "
              f"of [{label}]:")
        for name, base_ns, fresh_ns, ratio in regressions:
            print(f"  {name}: {base_ns:.1f} -> {fresh_ns:.1f} ns/op "
                  f"(x{ratio:.2f})")
        return 1
    print("\nno bench regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
