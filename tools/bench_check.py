#!/usr/bin/env python3
"""Bench-regression gate: run bench_micro (or, with --scale, bench_scale)
and compare against the checked-in baseline json.

Usage:
    bench_check.py --bench-binary build/bench/bench_micro
        [--baseline BENCH_micro.json] [--label LABEL]
        [--tolerance FACTOR] [--filter REGEX] [--min-time SECS]
    bench_check.py --scale --bench-binary build/bench/bench_scale
        [--baseline BENCH_scale.json] [--label LABEL]
        [--tolerance FACTOR] [--shards N] [--threads T]
    bench_check.py --efficiency [--baseline BENCH_scale.json]
        [--label LABEL] [--threads T] [--min-speedup FACTOR]
    bench_check.py --nas --bench-binary build/bench/bench_micro
        [--baseline BENCH_micro.json] [--label pr3-seed]
        [--min-speedup FACTOR] [--min-time SECS]

Default mode runs the microbenchmark binary with --json into a temporary
file, then compares each fresh ns/op figure against the baseline entry
(the LAST entry in the file unless --label picks one). A benchmark
regresses when

    fresh_ns > baseline_ns * tolerance

--scale mode instead runs `bench_scale --smoke --shards N [--threads T]`
in a scratch directory (the bench's own parallel-equivalence gate runs
as part of this) and compares the throughput of each sweep point, keyed
by (protocol, vehicles, shards, threads), against the baseline's points.
Throughput is better-is-bigger, so a point regresses when

    fresh_events_per_s < baseline_events_per_s / tolerance

--efficiency mode runs no benchmark at all: it audits the checked-in
BENCH_scale.json for scaling efficiency. For every recorded point with
threads >= T it finds the same point's serial (shards=1, threads=1)
baseline and fails when

    threaded_events_per_s / serial_events_per_s < min_speedup

Points whose recorded `hw` (the lane count of the machine that produced
the baseline) is below the requested thread count are SKIPPED, not
failed — a single-core CI box cannot demonstrate a 4-thread speedup and
must not fail the gate for it (docs/SCALING.md "Threading").

The default tolerance is deliberately wide (5x): this is a smoke gate
against order-of-magnitude regressions (an accidental O(n^2), a lost
pool, a debug build sneaking into CI), not a statistical benchmark —
shared CI machines are far too noisy for tight bands. Speedups and
benchmarks missing from either side never fail the gate (new benchmarks
have no baseline yet; retired ones no longer matter).

--nas mode is the SoA mobility-kernel speedup floor rather than a
regression band: it runs BM_NasLaneStep/40000 fresh and compares it
against the *scalar seed* baseline entry (--label defaults to pr3-seed
here), failing when

    baseline_ns / fresh_ns < min_speedup

i.e. the vectorized kernel must hold at least the claimed multiple over
the pre-SoA scalar kernel on the machine running the gate. The default
floor (3x) sits below the PR's measured margin so machine-to-machine
variance does not flake the gate.

Exit codes: 0 ok, 1 regression(s), 2 usage/environment error.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def load_baseline(path, label):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_check: cannot read baseline {path}: {err}")
    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        sys.exit(f"bench_check: {path} has no entries")
    if label:
        for entry in entries:
            if entry.get("label") == label:
                return entry["label"], entry.get("results", {})
        sys.exit(f"bench_check: no baseline entry labelled {label!r} in {path}")
    entry = entries[-1]  # newest entry: labels accumulate in PR order
    return entry.get("label", "?"), entry.get("results", {})


def run_bench(binary, filter_regex, min_time):
    fd, fresh_path = tempfile.mkstemp(suffix=".json", prefix="bench_check_")
    os.close(fd)
    os.unlink(fresh_path)  # bench_micro accumulates; start clean
    cmd = [
        binary,
        f"--json={fresh_path}",
        "--json-label=bench_check",
        # Bare seconds: the "0.01s" suffix form only parses on
        # google-benchmark >= 1.8.
        f"--benchmark_min_time={min_time}",
    ]
    if filter_regex:
        cmd.append(f"--benchmark_filter={filter_regex}")
    try:
        proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, text=True)
    except OSError as err:
        sys.exit(f"bench_check: cannot run {binary}: {err}")
    if proc.returncode != 0:
        print(proc.stdout)
        sys.exit(f"bench_check: {binary} exited {proc.returncode}")
    try:
        with open(fresh_path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(proc.stdout)
        sys.exit(f"bench_check: bench run produced no readable json: {err}")
    finally:
        try:
            os.unlink(fresh_path)
        except OSError:
            pass
    for entry in doc.get("entries", []):
        if entry.get("label") == "bench_check":
            return entry.get("results", {})
    sys.exit("bench_check: bench json missing the bench_check entry")


def point_key(point):
    """(protocol, vehicles, shards, threads) identity of a scale sweep
    point, or None when the point predates a required key (old baselines
    lack `shards`; such points are skipped, never failed). Baselines
    older than the threaded dispatcher lack `threads` and were serial by
    construction, so it defaults to 1."""
    protocol = point.get("protocol")
    vehicles = point.get("vehicles")
    shards = point.get("shards")
    threads = point.get("threads", 1)
    if not isinstance(protocol, str):
        return None
    if not isinstance(vehicles, (int, float)):
        return None
    if not isinstance(shards, (int, float)):
        return None
    if not isinstance(threads, (int, float)):
        return None
    return (protocol, int(vehicles), int(shards), int(threads))


def load_scale_baseline(path, label):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_check: cannot read baseline {path}: {err}")
    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        sys.exit(f"bench_check: {path} has no entries")
    entry = None
    if label:
        for candidate in entries:
            if candidate.get("label") == label:
                entry = candidate
                break
        if entry is None:
            sys.exit(
                f"bench_check: no baseline entry labelled {label!r} in {path}")
    else:
        entry = entries[-1]  # newest entry: labels accumulate in PR order
    points = {}
    for point in entry.get("points", []):
        key = point_key(point)
        rate = point.get("events_per_s")
        hw = point.get("hw")
        if key is not None and isinstance(rate, (int, float)):
            points[key] = {
                "rate": float(rate),
                "hw": int(hw) if isinstance(hw, (int, float)) else None,
            }
    return entry.get("label", "?"), points


def run_scale_bench(binary, shards, threads):
    """Runs bench_scale --smoke (optionally sharded/threaded) in a
    scratch directory and returns its fresh points keyed like the
    baseline."""
    binary = os.path.abspath(binary)
    with tempfile.TemporaryDirectory(prefix="bench_check_scale_") as cwd:
        cmd = [binary, "--smoke"]
        if shards > 1:
            cmd.append(f"--shards={shards}")
        if threads > 1:
            cmd.append(f"--threads={threads}")
        try:
            proc = subprocess.run(cmd, cwd=cwd, stdout=subprocess.PIPE,
                                  stderr=subprocess.STDOUT, text=True)
        except OSError as err:
            sys.exit(f"bench_check: cannot run {binary}: {err}")
        if proc.returncode != 0:
            print(proc.stdout)
            sys.exit(f"bench_check: {binary} exited {proc.returncode}")
        fresh_path = os.path.join(cwd, "BENCH_scale.json")
        try:
            with open(fresh_path, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(proc.stdout)
            sys.exit(f"bench_check: scale run produced no readable json: "
                     f"{err}")
    points = {}
    for entry in doc.get("entries", []):
        for point in entry.get("points", []):
            key = point_key(point)
            rate = point.get("events_per_s")
            if key is not None and isinstance(rate, (int, float)):
                points[key] = float(rate)
    if not points:
        sys.exit("bench_check: scale run produced no gateable points")
    return points


def check_scale(args):
    label, baseline = load_scale_baseline(args.baseline, args.label)
    fresh = run_scale_bench(args.bench_binary, args.shards, args.threads)

    print(f"baseline: {args.baseline} [{label}]  tolerance x{args.tolerance}")
    regressions = []
    for key in sorted(fresh):
        protocol, vehicles, shards, threads = key
        name = f"{protocol} N={vehicles} shards={shards} threads={threads}"
        fresh_rate = fresh[key]
        base = baseline.get(key)
        base_rate = base["rate"] if base is not None else None
        if base_rate is None:
            print(f"  {name:32s} {fresh_rate:>14.0f} ev/s  (no baseline)")
            continue
        ratio = base_rate / fresh_rate if fresh_rate > 0 else float("inf")
        flag = "  REGRESSION" if ratio > args.tolerance else ""
        print(f"  {name:32s} {base_rate:>14.0f} -> {fresh_rate:<14.0f} ev/s "
              f"(x{ratio:.2f} slower){flag}")
        if flag:
            regressions.append((name, base_rate, fresh_rate, ratio))

    if regressions:
        print(f"\n{len(regressions)} scale point(s) beyond x{args.tolerance} "
              f"of [{label}]:")
        for name, base_rate, fresh_rate, ratio in regressions:
            print(f"  {name}: {base_rate:.0f} -> {fresh_rate:.0f} ev/s "
                  f"(x{ratio:.2f} slower)")
        return 1
    print("\nno scale regressions.")
    return 0


def check_efficiency(args):
    """Audits the checked-in BENCH_scale.json: every threaded point must
    beat its serial sibling by --min-speedup, unless the recording
    machine lacked the lanes (hw < threads) — then it is skipped."""
    label, points = load_scale_baseline(args.baseline, args.label)
    print(f"baseline: {args.baseline} [{label}]  "
          f"min {args.threads}-thread speedup x{args.min_speedup}")
    checked = 0
    skipped = 0
    failures = []
    for key in sorted(points):
        protocol, vehicles, shards, threads = key
        if threads < args.threads:
            continue
        name = f"{protocol} N={vehicles} shards={shards} threads={threads}"
        info = points[key]
        serial = points.get((protocol, vehicles, 1, 1))
        if serial is None:
            print(f"  {name:36s} SKIP (no serial shards=1 threads=1 sibling)")
            skipped += 1
            continue
        hw = info["hw"]
        if hw is None or hw < threads:
            lanes = "unrecorded" if hw is None else str(hw)
            print(f"  {name:36s} SKIP (recorded on {lanes} hw lane(s) "
                  f"< {threads} threads)")
            skipped += 1
            continue
        serial_rate = serial["rate"]
        speedup = (info["rate"] / serial_rate if serial_rate > 0
                   else float("inf"))
        flag = "  FAIL" if speedup < args.min_speedup else ""
        print(f"  {name:36s} {serial_rate:>12.0f} -> {info['rate']:<12.0f} "
              f"ev/s (x{speedup:.2f}){flag}")
        checked += 1
        if flag:
            failures.append((name, speedup))

    if failures:
        print(f"\n{len(failures)} point(s) below the x{args.min_speedup} "
              f"{args.threads}-thread scaling floor:")
        for name, speedup in failures:
            print(f"  {name}: x{speedup:.2f}")
        return 1
    if checked == 0:
        print(f"\nno gateable threaded points ({skipped} skipped) — "
              f"efficiency gate is a no-op on this baseline.")
        return 0
    print(f"\nscaling efficiency ok ({checked} checked, {skipped} skipped).")
    return 0


def check_nas(args):
    """SoA mobility-kernel floor: fresh BM_NasLaneStep/40000 must beat
    the scalar seed baseline entry by at least --min-speedup."""
    name = "BM_NasLaneStep/40000"
    label, baseline = load_baseline(args.baseline, args.label)
    base_ns = baseline.get(name)
    if not isinstance(base_ns, (int, float)) or base_ns <= 0:
        sys.exit(f"bench_check: baseline [{label}] has no usable {name}")
    fresh = run_bench(args.bench_binary, name + "$", args.min_time)
    fresh_ns = fresh.get(name)
    if not isinstance(fresh_ns, (int, float)) or fresh_ns <= 0:
        sys.exit(f"bench_check: bench run produced no {name}")
    speedup = base_ns / fresh_ns
    print(f"baseline: {args.baseline} [{label}]  "
          f"min speedup x{args.min_speedup}")
    flag = "  FAIL" if speedup < args.min_speedup else ""
    print(f"  {name:36s} {base_ns:>14.1f} -> {fresh_ns:<14.1f} ns/op "
          f"(x{speedup:.2f} faster){flag}")
    if flag:
        print(f"\nSoA kernel below the x{args.min_speedup} floor "
              f"vs [{label}].")
        return 1
    print("\nSoA speedup floor met.")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench-binary", default="",
                        help="path to the bench executable (required except "
                             "in --efficiency mode)")
    parser.add_argument("--baseline", default="BENCH_micro.json",
                        help="checked-in baseline file (default "
                             "BENCH_micro.json)")
    parser.add_argument("--label", default="",
                        help="baseline entry label (default: last entry)")
    parser.add_argument("--tolerance", type=float, default=5.0,
                        help="regression factor vs baseline (default 5.0)")
    parser.add_argument("--filter", default="",
                        help="--benchmark_filter regex passed through")
    parser.add_argument("--min-time", default="0.01",
                        help="--benchmark_min_time seconds (default 0.01)")
    parser.add_argument("--scale", action="store_true",
                        help="gate bench_scale throughput per (protocol, "
                             "vehicles, shards) instead of bench_micro "
                             "ns/op")
    parser.add_argument("--shards", type=int, default=4,
                        help="--scale mode: shard count for the sharded "
                             "variant of each sweep point (default 4)")
    parser.add_argument("--threads", type=int, default=1,
                        help="--scale mode: executor lanes for the threaded "
                             "variant of each sweep point; --efficiency "
                             "mode: thread count the gate audits "
                             "(default 1 / 4)")
    parser.add_argument("--efficiency", action="store_true",
                        help="audit the checked-in scale baseline for "
                             "threaded scaling efficiency; runs no "
                             "benchmark")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="--efficiency mode: minimum threaded/serial "
                             "events_per_s ratio (default 2.0); --nas "
                             "mode: minimum SoA-vs-seed ns/op ratio "
                             "(default 3.0)")
    parser.add_argument("--nas", action="store_true",
                        help="gate the SoA mobility kernel's speedup over "
                             "the scalar seed baseline entry")
    args = parser.parse_args()

    if args.tolerance <= 0:
        sys.exit("bench_check: --tolerance must be > 0")
    if args.nas:
        if not args.bench_binary:
            sys.exit("bench_check: --nas needs --bench-binary")
        if not args.label:
            args.label = "pr3-seed"
        if args.min_speedup is None:
            args.min_speedup = 3.0
        if args.min_speedup <= 0:
            sys.exit("bench_check: --min-speedup must be > 0")
        return check_nas(args)
    if args.efficiency:
        if args.baseline == "BENCH_micro.json":
            args.baseline = "BENCH_scale.json"
        if args.threads == 1:
            args.threads = 4
        if args.min_speedup is None:
            args.min_speedup = 2.0
        if args.min_speedup <= 0:
            sys.exit("bench_check: --min-speedup must be > 0")
        return check_efficiency(args)
    if not args.bench_binary:
        sys.exit("bench_check: --bench-binary is required outside "
                 "--efficiency mode")
    if args.scale:
        if args.baseline == "BENCH_micro.json":
            args.baseline = "BENCH_scale.json"
        return check_scale(args)

    label, baseline = load_baseline(args.baseline, args.label)
    fresh = run_bench(args.bench_binary, args.filter, args.min_time)
    if not fresh:
        sys.exit("bench_check: bench run produced no results "
                 "(bad --filter regex?)")

    print(f"baseline: {args.baseline} [{label}]  tolerance x{args.tolerance}")
    regressions = []
    for name in sorted(fresh):
        fresh_ns = fresh[name]
        base_ns = baseline.get(name)
        if base_ns is None:
            print(f"  {name:36s} {fresh_ns:>14.1f} ns/op  (no baseline)")
            continue
        ratio = fresh_ns / base_ns if base_ns > 0 else float("inf")
        flag = "  REGRESSION" if ratio > args.tolerance else ""
        print(f"  {name:36s} {base_ns:>14.1f} -> {fresh_ns:<14.1f} ns/op "
              f"(x{ratio:.2f}){flag}")
        if flag:
            regressions.append((name, base_ns, fresh_ns, ratio))

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) beyond x{args.tolerance} "
              f"of [{label}]:")
        for name, base_ns, fresh_ns, ratio in regressions:
            print(f"  {name}: {base_ns:.1f} -> {fresh_ns:.1f} ns/op "
                  f"(x{ratio:.2f})")
        return 1
    print("\nno bench regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
