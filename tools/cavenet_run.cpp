// cavenet-run — execute declarative scenario/campaign specs
// (docs/SCENARIOS.md).
//
//   cavenet-run spec.json...                 run each spec in order
//   cavenet-run --validate spec.json...      parse + validate only
//   cavenet-run --list-points spec.json      print a campaign's expansion
//   cavenet-run spec.json --jobs N           ensemble workers per spec
//   cavenet-run spec.json --threads N        kernel executor lanes per run
//                                            (overrides engine.parallel
//                                            .threads; byte-identical)
//   cavenet-run spec.json --resume           trust matching checkpoints
//   cavenet-run spec.json --output-dir DIR   artifact prefix
//   cavenet-run spec.json --progress         live per-point events +
//                                            <name>.progress.jsonl
//   cavenet-run ... --progress-period SECS   heartbeat period (default 5)
//
// Exit codes: 0 success, 2 bad usage / invalid spec / failed run.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "spec/campaign.h"
#include "spec/engine.h"
#include "spec/spec.h"
#include "util/cli_args.h"

namespace {

using namespace cavenet;

int usage() {
  std::fprintf(stderr,
               "usage: cavenet-run <spec.json>... [--jobs N] [--threads N]\n"
               "                   [--resume] [--output-dir DIR]\n"
               "                   [--validate] [--list-points]\n"
               "                   [--progress] [--progress-period SECS]\n");
  return 2;
}

int validate(const std::vector<std::string>& paths) {
  int failures = 0;
  for (const std::string& path : paths) {
    try {
      const spec::CampaignSpec loaded = spec::load_campaign_file(path);
      std::size_t points = 0;
      if (loaded.kind == spec::SpecKind::kCampaign) {
        points = spec::expand_points(loaded).size();
      }
      std::printf("ok %s: kind %s, fingerprint %s", path.c_str(),
                  std::string(to_string(loaded.kind)).c_str(),
                  loaded.fingerprint.c_str());
      if (loaded.kind == spec::SpecKind::kCampaign) {
        std::printf(", %zu points", points);
      }
      std::printf("\n");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "invalid %s: %s\n", path.c_str(), e.what());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 2;
}

int list_points(const std::string& path) {
  const spec::CampaignSpec loaded = spec::load_campaign_file(path);
  if (loaded.kind != spec::SpecKind::kCampaign) {
    std::printf("%s: kind %s has no point expansion\n", path.c_str(),
                std::string(to_string(loaded.kind)).c_str());
    return 0;
  }
  const auto points = spec::expand_points(loaded);
  std::printf("%s: %zu points (fingerprint %s)\n", path.c_str(), points.size(),
              loaded.fingerprint.c_str());
  for (const spec::CampaignPoint& point : points) {
    std::printf("  point %zu: cell %zu rep %zu seed %llu", point.index,
                point.cell, point.replication,
                static_cast<unsigned long long>(point.scenario.config.seed));
    for (const auto& [param, value] : point.axis_values) {
      std::printf(" %s=%s", param.c_str(), value.c_str());
    }
    std::printf(" -> %s\n",
                spec::point_manifest_path(loaded, point.index).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Boolean switches must not bind the following spec path as a value.
  const CliArgs args(argc, argv,
                     {"resume", "validate", "list-points", "progress"});
  spec::RunOptions options;
  options.jobs = static_cast<int>(args.get_int("jobs", 1));
  options.threads = static_cast<int>(args.get_int("threads", 0));
  options.resume = args.get_bool("resume", false);
  options.output_dir = args.get_string("output-dir", "");
  options.progress = args.get_bool("progress", false);
  options.progress_period_s = args.get_double("progress-period", 5.0);
  const bool validate_only = args.get_bool("validate", false);
  const bool list_only = args.get_bool("list-points", false);
  const std::vector<std::string>& specs = args.positional();

  for (const std::string& flag : args.unknown_flags()) {
    std::fprintf(stderr, "%s\n", args.describe_unknown(flag).c_str());
    return 2;
  }
  if (specs.empty()) return usage();

  try {
    if (validate_only) return validate(specs);
    if (list_only) {
      for (const std::string& path : specs) {
        if (const int rc = list_points(path)) return rc;
      }
      return 0;
    }
    for (const std::string& path : specs) {
      if (const int rc = spec::run_spec_file(path, options)) return rc;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
