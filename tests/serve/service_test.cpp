// JobService end-to-end, against real (small) simulations:
//
//  * a served campaign's artifacts are byte-identical to a direct
//    run_campaign, at 1 worker and at several workers;
//  * a resubmitted spec is a 100% cache hit that still serves
//    byte-identical artifacts;
//  * crash recovery: killing the service mid-campaign (stop() writes no
//    terminal records — on-disk state identical to SIGKILL) and
//    restarting re-runs ONLY the unfinished units: nothing is simulated
//    twice, no result is lost, and the final outputs byte-match;
//  * the HTTP surface (submit / status / results / events / cancel)
//    over real sockets.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "serve/service.h"
#include "spec/campaign.h"
#include "spec/spec.h"

#include <gtest/gtest.h>

namespace cavenet::serve {
namespace {

namespace fs = std::filesystem;

// The cheap 3x2 campaign the resume/failure tests also use (6 points).
const char kCampaignJson[] = R"({
  "name": "serve_probe", "kind": "campaign",
  "scenario": {
    "seed": 11, "duration_s": 20,
    "mobility": {"lane_cells": 150, "vehicles": 12},
    "traffic": {"start_s": 5, "stop_s": 15, "sender": 3}
  },
  "sweep": {
    "replications": 2,
    "axes": [{"param": "mobility.slowdown_p", "values": [0.3, 0.5, 0.7]}]
  }
})";

// A second tenant's distinct (also cheap) campaign: 2 points.
const char kOtherJson[] = R"({
  "name": "other_tenant", "kind": "campaign",
  "scenario": {
    "seed": 7, "duration_s": 20,
    "mobility": {"lane_cells": 150, "vehicles": 12},
    "traffic": {"start_s": 5, "stop_s": 15, "sender": 3}
  },
  "sweep": {
    "replications": 2,
    "axes": [{"param": "mobility.slowdown_p", "values": [0.5]}]
  }
})";

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing artifact " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

ServiceOptions base_options(const fs::path& state_dir, int workers) {
  ServiceOptions options;
  options.state_dir = state_dir.string();
  options.workers = workers;
  options.heartbeat_period_s = 0;  // no watchdog noise in tests
  return options;
}

/// Runs the reference campaign directly (jobs=1) into `dir`.
void run_direct(const char* json, const fs::path& dir) {
  const spec::CampaignSpec spec = spec::parse_campaign(json, "direct.json");
  spec::CampaignOptions options;
  options.jobs = 1;
  options.output_dir = dir.string();
  spec::run_campaign(spec, options);
}

void expect_job_matches_direct(JobService& service, const std::string& job_id,
                               const char* json, const fs::path& direct_dir) {
  const spec::CampaignSpec spec = spec::parse_campaign(json, "direct.json");
  const std::size_t total = spec::expand_points(spec).size();
  const fs::path job_dir = service.job_dir(job_id);
  for (std::size_t i = 0; i < total; ++i) {
    const std::string name = spec::point_manifest_path(spec, i);
    EXPECT_EQ(slurp(job_dir / name), slurp(direct_dir / name)) << name;
  }
  EXPECT_EQ(slurp(job_dir / spec.outputs.csv),
            slurp(direct_dir / spec.outputs.csv));
  EXPECT_EQ(slurp(job_dir / spec.outputs.manifest),
            slurp(direct_dir / spec.outputs.manifest));
}

TEST(JobServiceTest, ServedCampaignMatchesDirectRunByteForByte) {
  const fs::path direct_dir = fresh_dir("serve_direct");
  run_direct(kCampaignJson, direct_dir);

  // workers=1 and workers=3 must both serve bytes identical to jobs=1.
  for (const int workers : {1, 3}) {
    const fs::path state =
        fresh_dir("serve_equiv_w" + std::to_string(workers));
    JobService service(base_options(state, workers));
    const std::string job = service.submit(kCampaignJson);
    ASSERT_TRUE(service.wait(job, 120.0)) << "workers=" << workers;

    const obs::JsonValue status = service.job_status(job);
    EXPECT_EQ(status.find("state")->string, "done");
    EXPECT_EQ(status.find("units_done")->number, 6.0);
    EXPECT_EQ(status.find("cache_hits")->number, 0.0);
    expect_job_matches_direct(service, job, kCampaignJson, direct_dir);
    service.stop();
  }
}

TEST(JobServiceTest, ResubmissionIsAFullCacheHitWithIdenticalBytes) {
  const fs::path direct_dir = fresh_dir("serve_warm_direct");
  run_direct(kCampaignJson, direct_dir);

  const fs::path state = fresh_dir("serve_warm");
  JobService service(base_options(state, 2));
  const std::string cold = service.submit(kCampaignJson);
  ASSERT_TRUE(service.wait(cold, 120.0));
  const std::uint64_t executed_cold =
      service.stats().counter("serve.units.executed");
  EXPECT_EQ(executed_cold, 6u);

  // Same document, different formatting: same canonical fingerprint,
  // so every unit must come from the cache.
  std::string spaced(kCampaignJson);
  spaced += "\n\n";
  const std::string warm = service.submit(spaced);
  ASSERT_TRUE(service.wait(warm, 120.0));

  const obs::JsonValue status = service.job_status(warm);
  EXPECT_EQ(status.find("state")->string, "done");
  EXPECT_EQ(status.find("cache_hits")->number, 6.0);
  EXPECT_EQ(service.stats().counter("serve.units.executed"), executed_cold)
      << "warm submission must not simulate";
  EXPECT_GE(service.stats().counter("serve.cache.hits"), 6u);
  expect_job_matches_direct(service, warm, kCampaignJson, direct_dir);
  service.stop();
}

TEST(JobServiceTest, CrashMidCampaignRecoversWithoutDoubleSimulation) {
  const fs::path direct_dir = fresh_dir("serve_crash_direct");
  run_direct(kCampaignJson, direct_dir);

  const fs::path state = fresh_dir("serve_crash");
  std::string job;
  std::uint64_t executed_before = 0;
  {
    JobService service(base_options(state, 1));
    job = service.submit(kCampaignJson);
    // Interrupt after at least one unit completed. stop() writes no
    // terminal journal records — on-disk state is exactly what SIGKILL
    // would leave (modulo the torn tail, covered by the journal tests).
    while (true) {
      const obs::JsonValue status = service.job_status(job);
      if (status.find("units_done")->number >= 2.0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    service.stop();
    executed_before = service.stats().counter("serve.units.executed");
    ASSERT_GE(executed_before, 2u);
    ASSERT_LT(executed_before, 6u) << "interrupt happened too late to test";
  }

  // Restart on the same state dir: only the unfinished units run.
  JobService service(base_options(state, 1));
  EXPECT_GT(service.replayed_pending_units(), 0u);
  ASSERT_TRUE(service.wait(job, 120.0));
  const obs::JsonValue status = service.job_status(job);
  EXPECT_EQ(status.find("state")->string, "done");
  EXPECT_EQ(status.find("units_done")->number, 6.0);

  // No double simulation: units executed across both lives, plus any
  // replay cache hits (a unit cached before the stop but after its
  // journal record was lost), must cover each point exactly once.
  const std::uint64_t executed_after =
      service.stats().counter("serve.units.executed");
  const std::uint64_t replay_hits = service.stats().counter("serve.cache.hits");
  EXPECT_EQ(executed_before + executed_after + replay_hits, 6u)
      << "first life " << executed_before << ", second life "
      << executed_after << ", cache hits " << replay_hits;

  // No result lost: the finished artifacts byte-match a direct run.
  expect_job_matches_direct(service, job, kCampaignJson, direct_dir);
  service.stop();
}

TEST(JobServiceTest, TwoTenantsBothCompleteAndInterleave) {
  const fs::path direct_a = fresh_dir("serve_mt_direct_a");
  run_direct(kCampaignJson, direct_a);
  const fs::path direct_b = fresh_dir("serve_mt_direct_b");
  run_direct(kOtherJson, direct_b);

  const fs::path state = fresh_dir("serve_mt");
  JobService service(base_options(state, 2));
  const std::string big = service.submit(kCampaignJson);
  const std::string small = service.submit(kOtherJson);
  ASSERT_TRUE(service.wait(big, 120.0));
  ASSERT_TRUE(service.wait(small, 120.0));
  EXPECT_EQ(service.job_status(big).find("state")->string, "done");
  EXPECT_EQ(service.job_status(small).find("state")->string, "done");
  expect_job_matches_direct(service, big, kCampaignJson, direct_a);
  expect_job_matches_direct(service, small, kOtherJson, direct_b);
  service.stop();
}

TEST(JobServiceTest, InvalidSubmissionsAreRejectedUpFront) {
  const fs::path state = fresh_dir("serve_invalid");
  ServiceOptions options = base_options(state, 1);
  options.max_json_depth = 8;
  JobService service(options);
  EXPECT_THROW(service.submit("{not json"), obs::JsonParseError);
  EXPECT_THROW(service.submit(R"({"name": "x", "kind": "nope"})"),
               spec::SpecError);
  // Depth bomb bounces off the configured parse limit.
  std::string bomb = R"({"name": "x", "kind": "campaign", "scenario": )";
  bomb += std::string(32, '[') + "1" + std::string(32, ']') + "}";
  EXPECT_THROW(service.submit(bomb), obs::JsonParseError);
  EXPECT_TRUE(service.job_ids().empty()) << "rejected submissions journaled";
  service.stop();
}

TEST(JobServiceTest, CancelDropsPendingUnits) {
  const fs::path state = fresh_dir("serve_cancel");
  JobService service(base_options(state, 1));
  const std::string job = service.submit(kCampaignJson);
  ASSERT_TRUE(service.cancel(job));
  ASSERT_TRUE(service.wait(job, 30.0));
  const obs::JsonValue status = service.job_status(job);
  EXPECT_EQ(status.find("state")->string, "cancelled");
  EXPECT_LT(status.find("units_done")->number, 6.0);
  EXPECT_FALSE(service.cancel("j999"));
  service.stop();

  // Cancellation is durable: a restart replays the job as cancelled and
  // re-enqueues nothing for it.
  JobService restarted(base_options(state, 1));
  EXPECT_EQ(restarted.job_status(job).find("state")->string, "cancelled");
  EXPECT_EQ(restarted.replayed_pending_units(), 0u);
  restarted.stop();
}

TEST(JobServiceTest, HttpSurfaceEndToEnd) {
  const fs::path direct_dir = fresh_dir("serve_http_direct");
  run_direct(kOtherJson, direct_dir);

  const fs::path state = fresh_dir("serve_http");
  JobService service(base_options(state, 2));
  ASSERT_GT(service.port(), 0);

  // Submit over the wire.
  const HttpClientResponse submitted =
      http_request(service.port(), "POST", "/v1/jobs", kOtherJson);
  ASSERT_EQ(submitted.status, 201) << submitted.body;
  const obs::JsonValue accepted = obs::parse_json(submitted.body);
  const std::string job = accepted.find("job")->string;
  ASSERT_TRUE(service.wait(job, 120.0));

  // Status + listing.
  const HttpClientResponse status =
      http_request(service.port(), "GET", "/v1/jobs/" + job);
  EXPECT_EQ(status.status, 200);
  EXPECT_EQ(obs::parse_json(status.body).find("state")->string, "done");
  const HttpClientResponse listing =
      http_request(service.port(), "GET", "/v1/jobs");
  EXPECT_EQ(obs::parse_json(listing.body).find("jobs")->array.size(), 1u);

  // Results listing, then artifact bytes == direct run bytes.
  const HttpClientResponse results =
      http_request(service.port(), "GET", "/v1/jobs/" + job + "/results");
  ASSERT_EQ(results.status, 200);
  const obs::JsonValue files = *obs::parse_json(results.body).find("files");
  ASSERT_GT(files.array.size(), 0u);
  for (const obs::JsonValue& file : files.array) {
    const std::string name = file.find("name")->string;
    const HttpClientResponse artifact = http_request(
        service.port(), "GET", "/v1/jobs/" + job + "/results/" + name);
    ASSERT_EQ(artifact.status, 200) << name;
    EXPECT_EQ(artifact.body, slurp(direct_dir / name)) << name;
  }

  // Whitelist: traversal names and unknown artifacts are 404.
  EXPECT_EQ(http_request(service.port(), "GET",
                         "/v1/jobs/" + job + "/results/no_such_file.csv")
                .status,
            404);
  EXPECT_EQ(http_request(service.port(), "GET",
                         "/v1/jobs/" + job + "/results/../../journal.jsonl")
                .status,
            404);

  // Events: the completed job's progress JSONL streams back chunked.
  const HttpClientResponse events =
      http_request(service.port(), "GET", "/v1/jobs/" + job + "/events");
  EXPECT_EQ(events.status, 200);
  EXPECT_NE(events.body.find("\"event\":\"campaign_started\""),
            std::string::npos);
  EXPECT_NE(events.body.find("\"event\":\"campaign_finished\""),
            std::string::npos);

  // Unknown routes and invalid submissions map to 4xx.
  EXPECT_EQ(http_request(service.port(), "GET", "/v1/nope").status, 404);
  EXPECT_EQ(http_request(service.port(), "GET", "/v1/jobs/j999").status, 404);
  EXPECT_EQ(
      http_request(service.port(), "POST", "/v1/jobs", "{broken").status, 422);

  // Stats expose the serve.* vocabulary.
  const HttpClientResponse stats =
      http_request(service.port(), "GET", "/v1/stats");
  const obs::StatsSnapshot snapshot =
      obs::StatsSnapshot::from_json(stats.body);
  EXPECT_EQ(snapshot.counter("serve.jobs.done"), 1u);
  EXPECT_EQ(snapshot.counter("serve.cache.misses"), 2u);
  service.stop();
}

}  // namespace
}  // namespace cavenet::serve
