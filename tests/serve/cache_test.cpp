// Result cache: content-addressed keys, byte-exact materialization, and
// the engine-version staleness story (a version bump changes the spec
// fingerprint, so every old entry simply stops being addressable).
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "serve/cache.h"
#include "spec/fingerprint.h"

#include <gtest/gtest.h>

namespace cavenet::serve {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void spill(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out << bytes;
  ASSERT_TRUE(out.flush()) << path;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(UnitCacheKeyTest, WholeSpecAndPointKeys) {
  EXPECT_EQ(unit_cache_key("5c3b2be6b64bfbe9", true, 0),
            "5c3b2be6b64bfbe9-all");
  EXPECT_EQ(unit_cache_key("5c3b2be6b64bfbe9", false, 7),
            "5c3b2be6b64bfbe9-p7");
  EXPECT_NE(unit_cache_key("f", false, 1), unit_cache_key("f", false, 2));
}

TEST(ResultCacheTest, StoreThenMaterializeIsByteExact) {
  const fs::path root = fresh_dir("cache_roundtrip");
  const fs::path src = fresh_dir("cache_roundtrip_src");
  const fs::path dst = fresh_dir("cache_roundtrip_dst");
  spill(src / "a.manifest.json", "{\"pdr\": 0.75}\n");
  spill(src / "a.telemetry.jsonl", "{\"t\": 1}\n{\"t\": 2}\n");

  ResultCache cache(root.string());
  EXPECT_FALSE(cache.contains("fp-p0"));
  const std::uint64_t stored = cache.store(
      "fp-p0", src.string(), {"a.manifest.json", "a.telemetry.jsonl"});
  EXPECT_EQ(stored, slurp(src / "a.manifest.json").size() +
                        slurp(src / "a.telemetry.jsonl").size());
  EXPECT_TRUE(cache.contains("fp-p0"));

  ResultCache::Materialized out;
  ASSERT_TRUE(cache.materialize("fp-p0", dst.string(), &out));
  ASSERT_EQ(out.files.size(), 2u);
  EXPECT_EQ(out.bytes, stored);
  EXPECT_EQ(slurp(dst / "a.manifest.json"), slurp(src / "a.manifest.json"));
  EXPECT_EQ(slurp(dst / "a.telemetry.jsonl"),
            slurp(src / "a.telemetry.jsonl"));
}

TEST(ResultCacheTest, AbsentKeyIsAMiss) {
  const fs::path root = fresh_dir("cache_miss");
  ResultCache cache(root.string());
  EXPECT_FALSE(cache.materialize("nope", root.string(), nullptr));
}

TEST(ResultCacheTest, DoubleStoreKeepsOneEntry) {
  // Two workers racing the same key: the loser's stage is dropped and
  // the entry stays intact (the bytes are identical by construction).
  const fs::path root = fresh_dir("cache_race");
  const fs::path src = fresh_dir("cache_race_src");
  spill(src / "r.json", "{\"seed\": 42}\n");
  ResultCache cache(root.string());
  cache.store("fp-p1", src.string(), {"r.json"});
  cache.store("fp-p1", src.string(), {"r.json"});
  EXPECT_EQ(cache.totals().entries, 1u);
  const fs::path dst = fresh_dir("cache_race_dst");
  ASSERT_TRUE(cache.materialize("fp-p1", dst.string(), nullptr));
  EXPECT_EQ(slurp(dst / "r.json"), slurp(src / "r.json"));
  // No leftover staging directories.
  EXPECT_TRUE(fs::is_empty(root / "tmp"));
}

TEST(ResultCacheTest, EvictAndTotals) {
  const fs::path root = fresh_dir("cache_evict");
  const fs::path src = fresh_dir("cache_evict_src");
  spill(src / "one.json", "11\n");
  spill(src / "two.json", "2222\n");
  ResultCache cache(root.string());
  cache.store("k1", src.string(), {"one.json"});
  cache.store("k2", src.string(), {"two.json"});
  EXPECT_EQ(cache.totals().entries, 2u);
  EXPECT_EQ(cache.totals().bytes, 8u);
  cache.evict("k1");
  EXPECT_FALSE(cache.contains("k1"));
  EXPECT_TRUE(cache.contains("k2"));
  EXPECT_EQ(cache.totals().entries, 1u);
}

TEST(ResultCacheTest, EngineVersionBumpInvalidatesCachedPoints) {
  // The serve cache keys on the engine-version-mixed spec fingerprint:
  // results cached by engine version N are unreachable under version
  // N+1 even for a byte-identical spec document.
  const obs::JsonValue doc = obs::parse_json(R"({"name": "t", "seed": 1})");
  const std::string fp_now =
      spec::fingerprint_hex(doc, spec::kEngineSchemaVersion);
  const std::string fp_next =
      spec::fingerprint_hex(doc, spec::kEngineSchemaVersion + 1);
  ASSERT_NE(fp_now, fp_next);

  const fs::path root = fresh_dir("cache_version");
  const fs::path src = fresh_dir("cache_version_src");
  spill(src / "p.json", "{\"stale\": true}\n");
  ResultCache cache(root.string());
  cache.store(unit_cache_key(fp_now, false, 0), src.string(), {"p.json"});

  EXPECT_TRUE(cache.contains(unit_cache_key(fp_now, false, 0)));
  EXPECT_FALSE(cache.contains(unit_cache_key(fp_next, false, 0)));
  EXPECT_FALSE(cache.materialize(unit_cache_key(fp_next, false, 0),
                                 root.string(), nullptr));
}

}  // namespace
}  // namespace cavenet::serve
