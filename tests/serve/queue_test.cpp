// FairQueue: per-job FIFO, round-robin across jobs (no starvation),
// cancellation drops pending work, shutdown wins immediately.
#include <string>
#include <thread>
#include <vector>

#include "serve/queue.h"

#include <gtest/gtest.h>

namespace cavenet::serve {
namespace {

TEST(FairQueueTest, SingleJobIsFifo) {
  FairQueue queue;
  queue.push("j1", {3, 1, 4});
  WorkItem item;
  ASSERT_TRUE(queue.pop(&item));
  EXPECT_EQ(item.unit, 3u);
  ASSERT_TRUE(queue.pop(&item));
  EXPECT_EQ(item.unit, 1u);
  ASSERT_TRUE(queue.pop(&item));
  EXPECT_EQ(item.unit, 4u);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(FairQueueTest, RoundRobinAcrossJobs) {
  // A big job must not starve a small one: pops alternate between jobs
  // with pending work.
  FairQueue queue;
  queue.push("big", {0, 1, 2, 3});
  queue.push("small", {0});
  std::vector<std::string> order;
  WorkItem item;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.pop(&item));
    order.push_back(item.job_id + ":" + std::to_string(item.unit));
  }
  EXPECT_EQ(order, (std::vector<std::string>{"big:0", "small:0", "big:1",
                                             "big:2", "big:3"}));
}

TEST(FairQueueTest, PushingAgainExtendsTheJobsLane) {
  FairQueue queue;
  queue.push("j1", {0});
  queue.push("j1", {1});
  EXPECT_EQ(queue.depth(), 2u);
  WorkItem item;
  ASSERT_TRUE(queue.pop(&item));
  EXPECT_EQ(item.unit, 0u);
  ASSERT_TRUE(queue.pop(&item));
  EXPECT_EQ(item.unit, 1u);
}

TEST(FairQueueTest, CancelDropsOnlyThatJob) {
  FairQueue queue;
  queue.push("keep", {0, 1});
  queue.push("drop", {0, 1, 2});
  EXPECT_EQ(queue.cancel("drop"), 3u);
  EXPECT_EQ(queue.cancel("drop"), 0u);  // idempotent
  EXPECT_EQ(queue.depth(), 2u);
  WorkItem item;
  ASSERT_TRUE(queue.pop(&item));
  EXPECT_EQ(item.job_id, "keep");
}

TEST(FairQueueTest, ShutdownWinsOverPendingWork) {
  // Workers must stop claiming immediately on shutdown; whatever is
  // still pending is the journal's to re-enqueue on the next start.
  FairQueue queue;
  queue.push("j1", {0, 1});
  queue.shutdown();
  WorkItem item;
  EXPECT_FALSE(queue.pop(&item));
  EXPECT_EQ(queue.depth(), 2u);  // pending units were not drained
}

TEST(FairQueueTest, ShutdownWakesABlockedPop) {
  FairQueue queue;
  std::thread popper([&queue] {
    WorkItem item;
    EXPECT_FALSE(queue.pop(&item));
  });
  // Give the popper a moment to block, then release it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.shutdown();
  popper.join();
}

TEST(FairQueueTest, ConcurrentConsumersDrainEverythingOnce) {
  FairQueue queue;
  const std::size_t kUnits = 200;
  std::vector<std::size_t> units(kUnits);
  for (std::size_t i = 0; i < kUnits; ++i) units[i] = i;
  queue.push("a", units);
  queue.push("b", units);

  std::vector<std::size_t> seen_a(kUnits, 0), seen_b(kUnits, 0);
  std::mutex seen_mutex;
  auto consume = [&] {
    WorkItem item;
    while (queue.pop(&item)) {
      std::lock_guard<std::mutex> lock(seen_mutex);
      (item.job_id == "a" ? seen_a : seen_b)[item.unit] += 1;
      if (queue.depth() == 0) queue.shutdown();
    }
  };
  std::thread t1(consume), t2(consume), t3(consume);
  t1.join();
  t2.join();
  t3.join();
  for (std::size_t i = 0; i < kUnits; ++i) {
    EXPECT_EQ(seen_a[i], 1u) << i;
    EXPECT_EQ(seen_b[i], 1u) << i;
  }
}

}  // namespace
}  // namespace cavenet::serve
