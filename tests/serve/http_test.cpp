// Embedded HTTP server: request parsing, routing helpers, size limits,
// and chunked streaming — over real loopback sockets.
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/http.h"

#include <gtest/gtest.h>

namespace cavenet::serve {
namespace {

TEST(HttpRequestTest, HelpersParseTargetAndHeaders) {
  HttpRequest request;
  request.path = "/v1/jobs/j1/results";
  request.query = "follow=1&pretty";
  request.headers = {{"content-type", "application/json"}};
  EXPECT_EQ(request.segments(),
            (std::vector<std::string>{"v1", "jobs", "j1", "results"}));
  EXPECT_EQ(request.query_param("follow", "0"), "1");
  EXPECT_EQ(request.query_param("pretty", "missing"), "");
  EXPECT_EQ(request.query_param("absent", "fallback"), "fallback");
  EXPECT_EQ(request.header("content-type"), "application/json");
  EXPECT_EQ(request.header("x-none"), "");
}

TEST(HttpServerTest, EchoRoundTrip) {
  HttpServer server(
      [](const HttpRequest& request) {
        HttpResponse response;
        response.body = request.method + " " + request.path + " q=" +
                        request.query + " body=" + request.body;
        return response;
      },
      HttpServerOptions{});
  ASSERT_GT(server.port(), 0);

  const HttpClientResponse response = http_request(
      server.port(), "POST", "/v1/jobs?x=2", "{\"name\":\"t\"}");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "POST /v1/jobs q=x=2 body={\"name\":\"t\"}");
}

TEST(HttpServerTest, ConcurrentRequestsAllComplete) {
  HttpServer server(
      [](const HttpRequest& request) {
        HttpResponse response;
        response.body = request.body;
        return response;
      },
      HttpServerOptions{});
  for (int i = 0; i < 8; ++i) {
    const std::string body = "payload-" + std::to_string(i);
    const HttpClientResponse response =
        http_request(server.port(), "POST", "/echo", body);
    EXPECT_EQ(response.body, body);
  }
}

TEST(HttpServerTest, OversizedBodyIs413) {
  HttpServerOptions options;
  options.max_body_bytes = 64;
  HttpServer server(
      [](const HttpRequest&) { return HttpResponse{}; }, options);
  const HttpClientResponse response = http_request(
      server.port(), "POST", "/v1/jobs", std::string(65, 'x'));
  EXPECT_EQ(response.status, 413);
  EXPECT_NE(response.body.find("exceeds the maximum of 64 bytes"),
            std::string::npos)
      << response.body;
}

TEST(HttpServerTest, HandlerExceptionIs500) {
  HttpServer server(
      [](const HttpRequest&) -> HttpResponse {
        throw std::runtime_error("boom");
      },
      HttpServerOptions{});
  const HttpClientResponse response =
      http_request(server.port(), "GET", "/explode");
  EXPECT_EQ(response.status, 500);
  EXPECT_NE(response.body.find("boom"), std::string::npos);
}

TEST(HttpServerTest, ChunkedStreamIsReassembled) {
  HttpServer server(
      [](const HttpRequest&) {
        HttpResponse response;
        response.body = "first\n";
        auto remaining = std::make_shared<int>(3);
        response.chunks = [remaining](std::string* chunk) {
          if (*remaining == 0) return false;
          *chunk = "line-" + std::to_string(*remaining) + "\n";
          --*remaining;
          return true;
        };
        return response;
      },
      HttpServerOptions{});
  const HttpClientResponse response =
      http_request(server.port(), "GET", "/stream");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "first\nline-3\nline-2\nline-1\n");
}

TEST(HttpServerTest, StopJoinsCleanly) {
  auto server = std::make_unique<HttpServer>(
      [](const HttpRequest&) { return HttpResponse{}; }, HttpServerOptions{});
  const int port = server->port();
  EXPECT_EQ(http_request(port, "GET", "/ok").status, 200);
  server->stop();
  EXPECT_THROW(http_request(port, "GET", "/gone"), std::runtime_error);
}

}  // namespace
}  // namespace cavenet::serve
