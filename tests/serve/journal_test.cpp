// Journal crash-safety: replay keeps every complete record, tolerates a
// torn tail at ANY byte boundary, and recovery truncates before
// appending so a torn tail can never corrupt later records.
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "serve/journal.h"

#include <gtest/gtest.h>

namespace cavenet::serve {
namespace {

namespace fs = std::filesystem;

obs::JsonValue record(const std::string& kind, double unit) {
  obs::JsonWriter writer;
  writer.begin_object();
  writer.key("record");
  writer.value(kind);
  writer.key("unit");
  writer.value(unit);
  writer.end_object();
  return obs::parse_json(writer.str());
}

fs::path fresh_path(const std::string& name) {
  const fs::path path = fs::path(::testing::TempDir()) / name;
  fs::remove_all(path);
  return path;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(JournalReplayTest, MissingFileReplaysEmpty) {
  const JournalReplay replay =
      replay_journal_file((fresh_path("journal_missing") / "x.jsonl").string());
  EXPECT_TRUE(replay.records.empty());
  EXPECT_EQ(replay.valid_bytes, 0u);
  EXPECT_FALSE(replay.truncated_tail);
}

TEST(JournalReplayTest, CleanJournalKeepsEveryRecord) {
  const std::string text =
      "{\"record\":\"a\"}\n{\"record\":\"b\"}\n{\"record\":\"c\"}\n";
  const JournalReplay replay = replay_journal_text(text);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[1].find("record")->string, "b");
  EXPECT_EQ(replay.valid_bytes, text.size());
  EXPECT_FALSE(replay.truncated_tail);
}

TEST(JournalReplayTest, EveryByteBoundaryTruncationIsRecoverable) {
  // The crash model: appends are sequential and flushed per line, so a
  // kill can tear only the tail. Replay of EVERY prefix must keep
  // exactly the complete lines, never throw, and report a valid_bytes
  // that lands on a line boundary.
  const std::string lines[] = {
      "{\"record\":\"job_submitted\",\"job\":\"j1\",\"units\":3}\n",
      "{\"record\":\"point_done\",\"job\":\"j1\",\"unit\":0}\n",
      "{\"record\":\"point_done\",\"job\":\"j1\",\"unit\":2}\n",
      "{\"record\":\"job_done\",\"job\":\"j1\"}\n",
  };
  std::string text;
  for (const std::string& line : lines) text += line;

  for (std::size_t cut = 0; cut <= text.size(); ++cut) {
    const std::string prefix = text.substr(0, cut);
    const JournalReplay replay = replay_journal_text(prefix);

    // Expected: all lines wholly inside the prefix.
    std::size_t expected_records = 0;
    std::size_t expected_bytes = 0;
    for (const std::string& line : lines) {
      if (expected_bytes + line.size() > cut) break;
      ++expected_records;
      expected_bytes += line.size();
    }
    EXPECT_EQ(replay.records.size(), expected_records) << "cut=" << cut;
    EXPECT_EQ(replay.valid_bytes, expected_bytes) << "cut=" << cut;
    EXPECT_EQ(replay.truncated_tail, cut > expected_bytes) << "cut=" << cut;
    // No half-parsed garbage: every kept record is a complete object.
    for (const obs::JsonValue& kept : replay.records) {
      EXPECT_TRUE(kept.is_object());
      EXPECT_NE(kept.find("record"), nullptr);
    }
  }
}

TEST(JournalReplayTest, CorruptionMidFileStopsTrustThere) {
  const std::string text =
      "{\"record\":\"a\"}\nnot json at all\n{\"record\":\"c\"}\n";
  const JournalReplay replay = replay_journal_text(text);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].find("record")->string, "a");
  EXPECT_TRUE(replay.truncated_tail);
  EXPECT_EQ(replay.valid_bytes, std::string("{\"record\":\"a\"}\n").size());
}

TEST(JournalTest, AppendThenReopenRoundTrips) {
  const fs::path dir = fresh_path("journal_roundtrip");
  fs::create_directories(dir);
  const std::string path = (dir / "journal.jsonl").string();
  {
    Journal journal(path);
    EXPECT_TRUE(journal.replayed().empty());
    journal.append(record("job_submitted", 0));
    journal.append(record("point_done", 1));
  }
  Journal reopened(path);
  ASSERT_EQ(reopened.replayed().size(), 2u);
  EXPECT_EQ(reopened.replayed()[1].find("record")->string, "point_done");
  EXPECT_FALSE(reopened.truncated_tail());
}

TEST(JournalTest, TornTailIsTruncatedBeforeAppending) {
  const fs::path dir = fresh_path("journal_torn");
  fs::create_directories(dir);
  const std::string path = (dir / "journal.jsonl").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"record\":\"a\"}\n{\"record\":\"b\"}\n{\"record\":\"to";  // torn
  }
  {
    Journal journal(path);
    ASSERT_EQ(journal.replayed().size(), 2u);
    EXPECT_TRUE(journal.truncated_tail());
    journal.append(record("point_done", 7));
  }
  // The torn bytes are gone; the appended record follows the valid
  // prefix exactly, and a second replay is clean.
  const std::string bytes = slurp(path);
  EXPECT_EQ(bytes.find("\"to"), std::string::npos);
  const JournalReplay replay = replay_journal_text(bytes);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_FALSE(replay.truncated_tail);
  EXPECT_EQ(replay.records[2].find("unit")->number, 7.0);
}

}  // namespace
}  // namespace cavenet::serve
