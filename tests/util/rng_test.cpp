#include "util/rng.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <iterator>
#include <numeric>
#include <set>
#include <type_traits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace cavenet {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsProduceDifferentSequences) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, StreamsAreIndependentAndDeterministic) {
  Rng a(7, 0);
  Rng b(7, 1);
  Rng a2(7, 0);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, a2.next_u64());
    if (va == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(5);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(7)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 7.0, 5.0 * std::sqrt(n / 7.0));
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t x = rng.uniform_int(std::int64_t{-2}, std::int64_t{2});
    ASSERT_GE(x, -2);
    ASSERT_LE(x, 2);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(1), 0u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(std::int64_t{5}, std::int64_t{5}), 5);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(9);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialHasCorrectMean) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(13);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v.begin(), v.end());
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(RngTest, ShuffleActuallyShuffles) {
  Rng rng(14);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  const std::vector<int> original = v;
  rng.shuffle(v.begin(), v.end());
  EXPECT_NE(v, original);
}

TEST(RngTest, JumpDecorrelatesStream) {
  Rng a(15);
  Rng b(15);
  b.jump();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

// A copied Rng would silently replay its source's stream — the classic
// correlated-replication bug. Copying is deleted; ownership moves.
TEST(RngTest, CopyIsDeletedMoveIsAllowed) {
  static_assert(!std::is_copy_constructible_v<Rng>);
  static_assert(!std::is_copy_assignable_v<Rng>);
  static_assert(std::is_nothrow_move_constructible_v<Rng>);
  static_assert(std::is_nothrow_move_assignable_v<Rng>);
  SUCCEED();
}

TEST(RngTest, MovePreservesTheStream) {
  Rng a(21);
  Rng reference(21);
  a.next_u64();
  reference.next_u64();
  Rng b(std::move(a));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(b.next_u64(), reference.next_u64());
}

TEST(RngTest, SubstreamIsDeterministic) {
  const Rng parent(42, 7);
  Rng a = parent.substream(3);
  Rng b = parent.substream(3);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

// Substreams are keyed on the parent's construction-time identity, not
// its current state: drawing from the parent first must not change what
// substream(i) yields. This is what makes parallel replication order
// irrelevant.
TEST(RngTest, SubstreamIgnoresParentState) {
  Rng drained(42, 7);
  for (int i = 0; i < 1000; ++i) drained.next_u64();
  const Rng fresh(42, 7);
  Rng a = drained.substream(5);
  Rng b = fresh.substream(5);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, SubstreamsOfNestedSubstreamsDiffer) {
  const Rng parent(1);
  Rng a = parent.substream(0).substream(1);
  Rng b = parent.substream(1).substream(0);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

// The determinism guarantee of the ensemble runner rests on substreams
// being non-overlapping in practice: 10^6 draws from each of several
// sibling substreams (and the parent itself) share no values at all.
// For full-period xoshiro256** the birthday bound puts the chance of any
// collision among these 4 x 10^6 64-bit draws below 1e-6, so a single
// shared value would flag a stream-splitting defect, not bad luck.
TEST(RngTest, SubstreamsDoNotOverlapInFirstMillionDraws) {
  constexpr std::size_t kDraws = 1'000'000;
  const Rng parent(123, 9);

  const auto draw_sorted = [](Rng rng) {
    std::vector<std::uint64_t> values(kDraws);
    for (auto& v : values) v = rng.next_u64();
    std::sort(values.begin(), values.end());
    return values;
  };

  std::vector<std::vector<std::uint64_t>> streams;
  streams.push_back(draw_sorted(Rng(123, 9)));  // the parent's own stream
  streams.push_back(draw_sorted(parent.substream(0)));
  streams.push_back(draw_sorted(parent.substream(1)));
  streams.push_back(draw_sorted(parent.substream(2)));

  for (std::size_t i = 0; i < streams.size(); ++i) {
    for (std::size_t j = i + 1; j < streams.size(); ++j) {
      std::vector<std::uint64_t> common;
      std::set_intersection(streams[i].begin(), streams[i].end(),
                            streams[j].begin(), streams[j].end(),
                            std::back_inserter(common));
      EXPECT_TRUE(common.empty())
          << "streams " << i << " and " << j << " share " << common.size()
          << " values in their first " << kDraws << " draws";
    }
  }
}

}  // namespace
}  // namespace cavenet
