#include "util/table_writer.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

namespace cavenet {
namespace {

TEST(TableWriterTest, RequiresColumns) {
  EXPECT_THROW(TableWriter({}), std::invalid_argument);
}

TEST(TableWriterTest, RejectsMismatchedRowWidth) {
  TableWriter t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only one")}), std::invalid_argument);
}

TEST(TableWriterTest, PrintsAlignedColumns) {
  TableWriter t({"name", "value"});
  t.add_row({std::string("x"), std::int64_t{10}});
  t.add_row({std::string("longer"), 3.5});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("3.5"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TableWriterTest, CsvOutput) {
  TableWriter t({"a", "b"});
  t.add_row({std::string("hello"), std::int64_t{1}});
  std::ostringstream out;
  t.write_csv(out);
  EXPECT_EQ(out.str(), "a,b\nhello,1\n");
}

TEST(TableWriterTest, CsvEscapesSpecialCharacters) {
  TableWriter t({"a"});
  t.add_row({std::string("with,comma")});
  t.add_row({std::string("with\"quote")});
  std::ostringstream out;
  t.write_csv(out);
  EXPECT_EQ(out.str(), "a\n\"with,comma\"\n\"with\"\"quote\"\n");
}

TEST(TableWriterTest, FormatCellRendersTypes) {
  EXPECT_EQ(format_cell(TableCell{std::string("s")}), "s");
  EXPECT_EQ(format_cell(TableCell{std::int64_t{-4}}), "-4");
  EXPECT_EQ(format_cell(TableCell{0.25}), "0.25");
}

TEST(TableWriterTest, RowCount) {
  TableWriter t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({1.0});
  t.add_row({2.0});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableWriterTest, WritesCsvFile) {
  TableWriter t({"x"});
  t.add_row({std::int64_t{7}});
  const std::string path = ::testing::TempDir() + "/table_writer_test.csv";
  ASSERT_TRUE(t.write_csv_file(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
  std::getline(in, line);
  EXPECT_EQ(line, "7");
}

}  // namespace
}  // namespace cavenet
