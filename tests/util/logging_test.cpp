#include "util/logging.h"

#include <gtest/gtest.h>

namespace cavenet {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, DefaultLevelSuppressesDebug) {
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
}

TEST_F(LoggingTest, TraceLevelEnablesEverything) {
  set_log_level(LogLevel::kTrace);
  EXPECT_TRUE(log_enabled(LogLevel::kTrace));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
}

TEST_F(LoggingTest, OffLevelDisablesEverythingIncludingOff) {
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
  EXPECT_FALSE(log_enabled(LogLevel::kOff));
}

TEST_F(LoggingTest, MacroDoesNotEvaluateDisabledMessages) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "x";
  };
  CAVENET_LOG(kDebug, "test") << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, SetLevelRoundTrips) {
  set_log_level(LogLevel::kInfo);
  EXPECT_EQ(log_level(), LogLevel::kInfo);
}

}  // namespace
}  // namespace cavenet
