#include "util/cli_args.h"

#include <stdexcept>

#include "util/suggest.h"

#include <gtest/gtest.h>

namespace cavenet {
namespace {

TEST(CliArgsTest, ParsesSpaceSeparatedValues) {
  const CliArgs args({"--nodes", "30", "--p", "0.5"});
  EXPECT_EQ(args.get_int("nodes"), 30);
  EXPECT_DOUBLE_EQ(args.get_double("p"), 0.5);
}

TEST(CliArgsTest, ParsesEqualsSyntax) {
  const CliArgs args({"--nodes=42", "--name=test"});
  EXPECT_EQ(args.get_int("nodes"), 42);
  EXPECT_EQ(args.get_string("name"), "test");
}

TEST(CliArgsTest, BareFlagIsBooleanTrue) {
  const CliArgs args({"--verbose", "--out", "file.txt"});
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_EQ(args.get_string("out"), "file.txt");
}

TEST(CliArgsTest, BooleanValueForms) {
  EXPECT_TRUE(CliArgs({"--x", "true"}).get_bool("x"));
  EXPECT_TRUE(CliArgs({"--x", "1"}).get_bool("x"));
  EXPECT_TRUE(CliArgs({"--x", "yes"}).get_bool("x"));
  EXPECT_FALSE(CliArgs({"--x", "false"}).get_bool("x"));
  EXPECT_FALSE(CliArgs({"--x", "0"}).get_bool("x"));
  EXPECT_FALSE(CliArgs({"--x", "no"}).get_bool("x"));
  EXPECT_THROW(CliArgs({"--x", "maybe"}).get_bool("x"), std::invalid_argument);
}

TEST(CliArgsTest, DefaultsWhenAbsent) {
  const CliArgs args({});
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(args.get_string("missing", "d"), "d");
  EXPECT_FALSE(args.get_bool("missing"));
  EXPECT_FALSE(args.has("missing"));
}

TEST(CliArgsTest, PositionalArguments) {
  const CliArgs args({"subcommand", "--flag", "v", "extra"});
  // "v" binds to --flag; "subcommand" and "extra" are positional.
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"subcommand", "extra"}));
}

TEST(CliArgsTest, ConsecutiveFlagsAreBooleans) {
  const CliArgs args({"--a", "--b", "5"});
  EXPECT_TRUE(args.get_bool("a"));
  EXPECT_EQ(args.get_int("b"), 5);
}

TEST(CliArgsTest, TypeErrorsThrow) {
  const CliArgs args({"--n", "abc"});
  EXPECT_THROW(args.get_int("n"), std::invalid_argument);
  EXPECT_THROW(args.get_double("n"), std::invalid_argument);
}

TEST(CliArgsTest, MalformedTripleDashThrows) {
  EXPECT_THROW(CliArgs({"---bad"}), std::invalid_argument);
}

TEST(CliArgsTest, UnknownFlagsTracksUnqueried) {
  const CliArgs args({"--known", "1", "--typo", "2"});
  EXPECT_EQ(args.get_int("known"), 1);
  EXPECT_EQ(args.unknown_flags(), (std::vector<std::string>{"typo"}));
}

TEST(CliArgsTest, ArgcArgvConstructorSkipsProgramName) {
  const char* argv[] = {"prog", "--x", "3"};
  const CliArgs args(3, argv);
  EXPECT_EQ(args.get_int("x"), 3);
}

TEST(CliArgsTest, NegativeNumbersAsValues) {
  const CliArgs args({"--offset", "-5"});
  EXPECT_EQ(args.get_int("offset"), -5);
}

TEST(CliArgsTest, RejectUnknownSuggestsClosestQueriedFlag) {
  const CliArgs args({"--jbos", "4"});
  args.get_int("jobs", 1);
  args.get_bool("smoke", false);
  try {
    args.reject_unknown_flags();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown flag --jbos"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean \"--jobs\"?"), std::string::npos)
        << what;
  }
}

TEST(CliArgsTest, RejectUnknownWithoutPlausibleMatchGivesNoSuggestion) {
  const CliArgs args({"--frobnicate"});
  args.get_int("jobs", 1);
  try {
    args.reject_unknown_flags();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown flag --frobnicate"), std::string::npos);
    EXPECT_EQ(what.find("did you mean"), std::string::npos) << what;
  }
}

TEST(CliArgsTest, RejectUnknownPassesWhenAllFlagsQueried) {
  const CliArgs args({"--jobs", "2"});
  args.get_int("jobs", 1);
  EXPECT_NO_THROW(args.reject_unknown_flags());
}

TEST(CliArgsTest, DeclaredSwitchesDoNotBindTheNextToken) {
  const CliArgs args({"--validate", "spec.json", "--jobs", "4", "more.json"},
                     {"validate", "resume"});
  EXPECT_TRUE(args.get_bool("validate", false));
  EXPECT_FALSE(args.get_bool("resume", false));
  EXPECT_EQ(args.get_int("jobs", 1), 4);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "spec.json");
  EXPECT_EQ(args.positional()[1], "more.json");
}

TEST(CliArgsTest, SwitchStillAcceptsExplicitEqualsValue) {
  const CliArgs args({"--resume=false", "spec.json"}, {"resume"});
  EXPECT_FALSE(args.get_bool("resume", true));
  ASSERT_EQ(args.positional().size(), 1u);
}

TEST(SuggestTest, EditDistanceBasics) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("jbos", "jobs"), 2u);  // transposition = 2 edits
}

TEST(SuggestTest, ClosestMatchRespectsDistanceBudget) {
  const std::vector<std::string> candidates{"jobs", "smoke", "linear"};
  EXPECT_EQ(closest_match("jbos", candidates), "jobs");
  EXPECT_EQ(closest_match("smok", candidates), "smoke");
  EXPECT_EQ(closest_match("zzzzzz", candidates), "");
}

}  // namespace
}  // namespace cavenet
