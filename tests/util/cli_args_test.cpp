#include "util/cli_args.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace cavenet {
namespace {

TEST(CliArgsTest, ParsesSpaceSeparatedValues) {
  const CliArgs args({"--nodes", "30", "--p", "0.5"});
  EXPECT_EQ(args.get_int("nodes"), 30);
  EXPECT_DOUBLE_EQ(args.get_double("p"), 0.5);
}

TEST(CliArgsTest, ParsesEqualsSyntax) {
  const CliArgs args({"--nodes=42", "--name=test"});
  EXPECT_EQ(args.get_int("nodes"), 42);
  EXPECT_EQ(args.get_string("name"), "test");
}

TEST(CliArgsTest, BareFlagIsBooleanTrue) {
  const CliArgs args({"--verbose", "--out", "file.txt"});
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_EQ(args.get_string("out"), "file.txt");
}

TEST(CliArgsTest, BooleanValueForms) {
  EXPECT_TRUE(CliArgs({"--x", "true"}).get_bool("x"));
  EXPECT_TRUE(CliArgs({"--x", "1"}).get_bool("x"));
  EXPECT_TRUE(CliArgs({"--x", "yes"}).get_bool("x"));
  EXPECT_FALSE(CliArgs({"--x", "false"}).get_bool("x"));
  EXPECT_FALSE(CliArgs({"--x", "0"}).get_bool("x"));
  EXPECT_FALSE(CliArgs({"--x", "no"}).get_bool("x"));
  EXPECT_THROW(CliArgs({"--x", "maybe"}).get_bool("x"), std::invalid_argument);
}

TEST(CliArgsTest, DefaultsWhenAbsent) {
  const CliArgs args({});
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(args.get_string("missing", "d"), "d");
  EXPECT_FALSE(args.get_bool("missing"));
  EXPECT_FALSE(args.has("missing"));
}

TEST(CliArgsTest, PositionalArguments) {
  const CliArgs args({"subcommand", "--flag", "v", "extra"});
  // "v" binds to --flag; "subcommand" and "extra" are positional.
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"subcommand", "extra"}));
}

TEST(CliArgsTest, ConsecutiveFlagsAreBooleans) {
  const CliArgs args({"--a", "--b", "5"});
  EXPECT_TRUE(args.get_bool("a"));
  EXPECT_EQ(args.get_int("b"), 5);
}

TEST(CliArgsTest, TypeErrorsThrow) {
  const CliArgs args({"--n", "abc"});
  EXPECT_THROW(args.get_int("n"), std::invalid_argument);
  EXPECT_THROW(args.get_double("n"), std::invalid_argument);
}

TEST(CliArgsTest, MalformedTripleDashThrows) {
  EXPECT_THROW(CliArgs({"---bad"}), std::invalid_argument);
}

TEST(CliArgsTest, UnknownFlagsTracksUnqueried) {
  const CliArgs args({"--known", "1", "--typo", "2"});
  EXPECT_EQ(args.get_int("known"), 1);
  EXPECT_EQ(args.unknown_flags(), (std::vector<std::string>{"typo"}));
}

TEST(CliArgsTest, ArgcArgvConstructorSkipsProgramName) {
  const char* argv[] = {"prog", "--x", "3"};
  const CliArgs args(3, argv);
  EXPECT_EQ(args.get_int("x"), 3);
}

TEST(CliArgsTest, NegativeNumbersAsValues) {
  const CliArgs args({"--offset", "-5"});
  EXPECT_EQ(args.get_int("offset"), -5);
}

}  // namespace
}  // namespace cavenet
