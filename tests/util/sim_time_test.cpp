#include "util/sim_time.h"

#include <gtest/gtest.h>

namespace cavenet {
namespace {

using namespace cavenet::literals;

TEST(SimTimeTest, FactoriesAgree) {
  EXPECT_EQ(SimTime::seconds(1), SimTime::milliseconds(1000));
  EXPECT_EQ(SimTime::milliseconds(1), SimTime::microseconds(1000));
  EXPECT_EQ(SimTime::microseconds(1), SimTime::nanoseconds(1000));
}

TEST(SimTimeTest, LiteralsMatchFactories) {
  EXPECT_EQ(5_s, SimTime::seconds(5));
  EXPECT_EQ(20_us, SimTime::microseconds(20));
  EXPECT_EQ(7_ms, SimTime::milliseconds(7));
  EXPECT_EQ(3_ns, SimTime::nanoseconds(3));
}

TEST(SimTimeTest, ConversionsRoundTrip) {
  const SimTime t = SimTime::microseconds(1500);
  EXPECT_DOUBLE_EQ(t.us(), 1500.0);
  EXPECT_DOUBLE_EQ(t.ms(), 1.5);
  EXPECT_DOUBLE_EQ(t.sec(), 0.0015);
  EXPECT_EQ(t.ns(), 1'500'000);
}

TEST(SimTimeTest, FromSecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(SimTime::from_seconds(1.0), SimTime::seconds(1));
  EXPECT_EQ(SimTime::from_seconds(0.2), SimTime::milliseconds(200));
  EXPECT_EQ(SimTime::from_seconds(1e-9), SimTime::nanoseconds(1));
  EXPECT_EQ(SimTime::from_seconds(1.5e-9), SimTime::nanoseconds(2));
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::seconds(2);
  const SimTime b = SimTime::milliseconds(500);
  EXPECT_EQ((a + b).ms(), 2500.0);
  EXPECT_EQ((a - b).ms(), 1500.0);
  EXPECT_EQ((b * 4), a);
  EXPECT_EQ(a / b, 4);

  SimTime c = a;
  c += b;
  EXPECT_EQ(c, SimTime::milliseconds(2500));
  c -= a;
  EXPECT_EQ(c, b);
}

TEST(SimTimeTest, Comparisons) {
  EXPECT_LT(SimTime::zero(), SimTime::nanoseconds(1));
  EXPECT_GT(SimTime::max(), SimTime::seconds(1'000'000));
  EXPECT_LE(SimTime::seconds(1), SimTime::seconds(1));
}

TEST(SimTimeTest, DefaultIsZero) {
  EXPECT_EQ(SimTime{}, SimTime::zero());
  EXPECT_EQ(SimTime{}.ns(), 0);
}

TEST(SimTimeTest, ToStringFormatsSeconds) {
  EXPECT_EQ(SimTime::milliseconds(1500).to_string(), "1.500000000s");
  EXPECT_EQ(SimTime::zero().to_string(), "0.000000000s");
}

TEST(SimTimeTest, NegativeDurationsBehave) {
  const SimTime t = SimTime::zero() - SimTime::seconds(1);
  EXPECT_LT(t, SimTime::zero());
  EXPECT_DOUBLE_EQ(t.sec(), -1.0);
}

}  // namespace
}  // namespace cavenet
