// Executor units (docs/SCALING.md "Threading"): exactly-once index
// coverage, grain-floored chunking, disjoint-slot writes byte-identical
// to the serial reference, deterministic lowest-begin exception
// rethrow, and pool reuse across batches. Rides the tier1-shard label
// so the tsan preset races the pool on every run.
#include "util/executor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace cavenet::exec {
namespace {

TEST(ResolveWorkersTest, PositivePassesThroughNonPositiveMeansHardware) {
  EXPECT_EQ(resolve_workers(1), 1);
  EXPECT_EQ(resolve_workers(5), 5);
  EXPECT_GE(resolve_workers(0), 1);
  EXPECT_GE(resolve_workers(-3), 1);
  EXPECT_EQ(resolve_workers(0), resolve_workers(-7));
}

TEST(InlineExecutorTest, VisitsEveryIndexInAscendingOrder) {
  InlineExecutor ex;
  EXPECT_EQ(ex.workers(), 1);
  std::vector<std::size_t> seen;
  ex.parallel_for(17, 4, [&](std::size_t i) { seen.push_back(i); });
  ASSERT_EQ(seen.size(), 17u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(InlineExecutorTest, EmptyRangeIsANoOp) {
  InlineExecutor ex;
  bool called = false;
  ex.parallel_for(0, 1, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolExecutorTest, CoversEveryIndexExactlyOnce) {
  ThreadPoolExecutor pool(4);
  EXPECT_EQ(pool.workers(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), 8, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1) << "index " << i;
  }
}

TEST(ThreadPoolExecutorTest, SingleLanePoolStillCoversTheRange) {
  // lanes == 1 means no spawned threads at all — the caller is lane 0.
  ThreadPoolExecutor pool(1);
  EXPECT_EQ(pool.workers(), 1);
  std::atomic<std::size_t> count{0};
  pool.parallel_for(100, 1, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPoolExecutorTest, DisjointSlotWritesMatchSerialBytewise) {
  // The determinism contract the kernel leans on: identical per-index
  // arithmetic into disjoint slots yields bitwise-identical doubles at
  // any worker count.
  const std::size_t n = 4096;
  const auto compute = [](std::size_t i) {
    const double x = static_cast<double>(i);
    return std::sin(x) * 1e-3 + std::sqrt(x + 1.0) / (x + 2.0);
  };
  std::vector<double> serial(n), pooled(n);
  InlineExecutor inline_ex;
  inline_ex.parallel_for(n, 64, [&](std::size_t i) { serial[i] = compute(i); });
  ThreadPoolExecutor pool(3);
  pool.parallel_for(n, 64, [&](std::size_t i) { pooled[i] = compute(i); });
  EXPECT_EQ(std::memcmp(serial.data(), pooled.data(), n * sizeof(double)), 0);
}

TEST(ThreadPoolExecutorTest, ChunksAreContiguousDisjointAndGrainFloored) {
  ThreadPoolExecutor pool(4);
  struct Ctx {
    std::mutex mutex;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
  } ctx;
  const std::size_t n = 1003;
  const std::size_t grain = 16;
  pool.run_chunks(
      n, grain,
      [](void* opaque, std::size_t begin, std::size_t end) {
        Ctx& c = *static_cast<Ctx*>(opaque);
        const std::lock_guard<std::mutex> lock(c.mutex);
        c.chunks.emplace_back(begin, end);
      },
      &ctx);
  std::sort(ctx.chunks.begin(), ctx.chunks.end());
  ASSERT_FALSE(ctx.chunks.empty());
  std::size_t expected_begin = 0;
  for (std::size_t i = 0; i < ctx.chunks.size(); ++i) {
    const auto [begin, end] = ctx.chunks[i];
    EXPECT_EQ(begin, expected_begin) << "gap or overlap at chunk " << i;
    EXPECT_GT(end, begin);
    if (i + 1 < ctx.chunks.size()) {
      EXPECT_GE(end - begin, grain) << "undersized non-tail chunk " << i;
    }
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, n);
}

TEST(ThreadPoolExecutorTest, RethrowsTheLowestBeginChunkFailure) {
  ThreadPoolExecutor pool(4);
  // Indices 7 and 100 land in different chunks (256 indices, 4 lanes);
  // the rethrown exception must be the lowest-begin chunk's, making
  // failure reporting deterministic at any interleaving.
  try {
    pool.parallel_for(256, 1, [](std::size_t i) {
      if (i == 7 || i == 100) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 7");
  }
}

TEST(ThreadPoolExecutorTest, SurvivesAFailedBatchAndKeepsWorking) {
  ThreadPoolExecutor pool(2);
  EXPECT_THROW(pool.parallel_for(
                   64, 1,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("fail");
                   }),
               std::runtime_error);
  std::atomic<std::size_t> count{0};
  pool.parallel_for(64, 1, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 64u);
}

TEST(ThreadPoolExecutorTest, DiagnosticsAccumulateAcrossBatches) {
  ThreadPoolExecutor pool(2);
  const ThreadPoolExecutor::Diagnostics before = pool.diagnostics();
  pool.parallel_for(100, 1, [](std::size_t) {});
  pool.parallel_for(50, 1, [](std::size_t) {});
  const ThreadPoolExecutor::Diagnostics after = pool.diagnostics();
  EXPECT_EQ(after.batches, before.batches + 2);
  EXPECT_EQ(after.tasks, before.tasks + 150);
  EXPECT_GE(after.chunks, after.batches);  // >= one chunk per batch
  ASSERT_EQ(after.lane_busy_ms.size(), 2u);
  for (const double busy : after.lane_busy_ms) EXPECT_GE(busy, 0.0);
}

}  // namespace
}  // namespace cavenet::exec
