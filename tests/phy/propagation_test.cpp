#include "phy/propagation.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include <gtest/gtest.h>

#include "analysis/stats.h"
#include "util/units.h"

namespace cavenet::phy {
namespace {

TEST(RadioConstantsTest, WavelengthAt914MHz) {
  RadioConstants c;
  EXPECT_NEAR(c.wavelength_m(), 0.328, 0.001);
}

TEST(FreeSpaceTest, MatchesFriisFormula) {
  RadioConstants c;
  FreeSpaceModel model(c);
  const double pt = 0.28183815;
  const double d = 100.0;
  const double lambda = c.wavelength_m();
  const double expected =
      pt * lambda * lambda / std::pow(4.0 * std::numbers::pi * d, 2.0);
  EXPECT_NEAR(model.rx_power_w(pt, {0, 0}, {d, 0}), expected, expected * 1e-9);
}

TEST(FreeSpaceTest, InverseSquareLaw) {
  FreeSpaceModel model;
  const double p1 = model.rx_power_w(1.0, {0, 0}, {100, 0});
  const double p2 = model.rx_power_w(1.0, {0, 0}, {200, 0});
  EXPECT_NEAR(p1 / p2, 4.0, 1e-9);
}

TEST(FreeSpaceTest, ZeroDistanceReturnsTxPower) {
  FreeSpaceModel model;
  EXPECT_DOUBLE_EQ(model.rx_power_w(0.5, {3, 4}, {3, 4}), 0.5);
}

TEST(TwoRayGroundTest, CrossoverDistance) {
  TwoRayGroundModel model;
  // dc = 4 pi ht hr / lambda with ht = hr = 1.5 m at 914 MHz ~ 86 m.
  EXPECT_NEAR(model.crossover_distance_m(), 86.0, 1.0);
}

TEST(TwoRayGroundTest, FreeSpaceBelowCrossover) {
  RadioConstants c;
  TwoRayGroundModel two_ray(c);
  FreeSpaceModel free_space(c);
  const double d = 50.0;  // below crossover
  EXPECT_NEAR(two_ray.rx_power_w(1.0, {0, 0}, {d, 0}),
              free_space.rx_power_w(1.0, {0, 0}, {d, 0}), 1e-15);
}

TEST(TwoRayGroundTest, FourthPowerLawBeyondCrossover) {
  TwoRayGroundModel model;
  const double p1 = model.rx_power_w(1.0, {0, 0}, {200, 0});
  const double p2 = model.rx_power_w(1.0, {0, 0}, {400, 0});
  EXPECT_NEAR(p1 / p2, 16.0, 1e-9);
}

TEST(TwoRayGroundTest, WaveLanThresholdsGive250mRange) {
  // The ns-2 WaveLAN profile the paper's setup uses: the received power at
  // exactly 250 m equals the receive threshold.
  TwoRayGroundModel model;
  WaveLanProfile profile;
  const double at_250 = model.rx_power_w(profile.tx_power_w, {0, 0}, {250, 0});
  EXPECT_NEAR(at_250 / profile.rx_threshold_w, 1.0, 0.01);
  // And the carrier-sense threshold sits at ~550 m.
  const double at_550 = model.rx_power_w(profile.tx_power_w, {0, 0}, {550, 0});
  EXPECT_NEAR(at_550 / profile.cs_threshold_w, 1.0, 0.02);
  // Strictly beyond range: undecodable.
  const double at_251 = model.rx_power_w(profile.tx_power_w, {0, 0}, {251, 0});
  EXPECT_LT(at_251, profile.rx_threshold_w);
}

TEST(ShadowingTest, RejectsBadParameters) {
  EXPECT_THROW(ShadowingModel(0.0, 4.0, Rng(1)), std::invalid_argument);
  EXPECT_THROW(ShadowingModel(2.0, -1.0, Rng(1)), std::invalid_argument);
  EXPECT_THROW(ShadowingModel(2.0, 4.0, Rng(1), 0.0), std::invalid_argument);
}

TEST(ShadowingTest, ZeroSigmaIsDeterministicPathLoss) {
  ShadowingModel model(2.0, 0.0, Rng(1));
  FreeSpaceModel free_space;
  // With beta = 2 and sigma = 0 the model reduces to free space.
  const double a = model.rx_power_w(1.0, {0, 0}, {100, 0});
  const double b = free_space.rx_power_w(1.0, {0, 0}, {100, 0});
  EXPECT_NEAR(a / b, 1.0, 1e-6);
}

TEST(ShadowingTest, MeanPathLossFollowsExponent) {
  ShadowingModel model(3.0, 0.0, Rng(2));
  const double p1 = model.rx_power_w(1.0, {0, 0}, {100, 0});
  const double p2 = model.rx_power_w(1.0, {0, 0}, {1000, 0});
  // 10x distance at beta = 3 -> 30 dB.
  EXPECT_NEAR(ratio_to_db(p1 / p2), 30.0, 0.01);
}

TEST(ShadowingTest, FluctuationsHaveRequestedSigma) {
  ShadowingModel model(2.8, 6.0, Rng(3));
  analysis::RunningStats db;
  for (int i = 0; i < 5000; ++i) {
    db.add(watt_to_dbm(model.rx_power_w(1.0, {0, 0}, {200, 0})));
  }
  EXPECT_NEAR(db.stddev(), 6.0, 0.3);
}

TEST(RayleighFadingTest, RequiresBaseModel) {
  EXPECT_THROW(RayleighFadingModel(nullptr, Rng(1)), std::invalid_argument);
}

TEST(RayleighFadingTest, UnitMeanPreservesAveragePower) {
  RayleighFadingModel model(std::make_unique<TwoRayGroundModel>(), Rng(4));
  TwoRayGroundModel base;
  const double expected = base.rx_power_w(1.0, {0, 0}, {200, 0});
  analysis::RunningStats power;
  for (int i = 0; i < 20000; ++i) {
    power.add(model.rx_power_w(1.0, {0, 0}, {200, 0}));
  }
  EXPECT_NEAR(power.mean() / expected, 1.0, 0.05);
}

TEST(RayleighFadingTest, DeepFadesOccur) {
  // Rayleigh fading drops below -10 dB of the mean with P = 1-e^-0.1 ~ 9.5%.
  RayleighFadingModel model(std::make_unique<TwoRayGroundModel>(), Rng(5));
  TwoRayGroundModel base;
  const double mean_power = base.rx_power_w(1.0, {0, 0}, {200, 0});
  int deep = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (model.rx_power_w(1.0, {0, 0}, {200, 0}) < 0.1 * mean_power) ++deep;
  }
  EXPECT_NEAR(static_cast<double>(deep) / n, 0.095, 0.01);
}

TEST(MaxRangeTest, TwoRayGroundMatchesWaveLanDesignDistances) {
  TwoRayGroundModel model;
  WaveLanProfile profile;
  // The WaveLAN thresholds are defined as the two-ray power at exactly
  // 250 m (rx) and ~550 m (carrier sense); the inverse must land there,
  // padded upward by a fraction of a percent, never downward.
  const auto rx_range =
      model.max_range_m(profile.tx_power_w, profile.rx_threshold_w);
  const auto cs_range =
      model.max_range_m(profile.tx_power_w, profile.cs_threshold_w);
  ASSERT_TRUE(rx_range.has_value());
  ASSERT_TRUE(cs_range.has_value());
  EXPECT_NEAR(*rx_range, 250.0, 1.0);
  EXPECT_NEAR(*cs_range, 550.0, 2.0);
}

TEST(MaxRangeTest, BoundIsConservative) {
  // Power at the returned range must already be below the threshold, and
  // power anywhere inside must never be culled: sample distances up to
  // the bound and check the model is above-threshold only inside it.
  TwoRayGroundModel two_ray;
  FreeSpaceModel free_space;
  WaveLanProfile profile;
  for (PropagationModel* model :
       {static_cast<PropagationModel*>(&two_ray),
        static_cast<PropagationModel*>(&free_space)}) {
    const auto range =
        model->max_range_m(profile.tx_power_w, profile.cs_threshold_w);
    ASSERT_TRUE(range.has_value());
    for (double d = *range; d < *range * 3.0; d *= 1.1) {
      EXPECT_LT(model->rx_power_w(profile.tx_power_w, {0, 0}, {d, 0}),
                profile.cs_threshold_w)
          << "model still above threshold at " << d << " m (bound " << *range
          << ")";
    }
  }
}

TEST(MaxRangeTest, FreeSpaceBelowCrossoverUsesFriis) {
  // A generous threshold keeps the range below the two-ray crossover
  // (~86 m at WaveLAN constants): the bound must follow the Friis branch
  // there, not the d^-4 branch.
  TwoRayGroundModel model;
  const double d = 50.0;
  ASSERT_LT(d, model.crossover_distance_m());
  const double power_at_d = model.rx_power_w(1.0, {0, 0}, {d, 0});
  const auto range = model.max_range_m(1.0, power_at_d);
  ASSERT_TRUE(range.has_value());
  EXPECT_NEAR(*range, d, d * 0.01);
}

TEST(MaxRangeTest, StochasticModelsCannotBoundRange) {
  ShadowingModel shadowing(2.7, 4.0, Rng(1));
  RayleighFadingModel fading(std::make_unique<TwoRayGroundModel>(), Rng(2));
  WaveLanProfile profile;
  EXPECT_FALSE(shadowing.max_range_m(profile.tx_power_w, profile.cs_threshold_w)
                   .has_value());
  EXPECT_FALSE(
      fading.max_range_m(profile.tx_power_w, profile.cs_threshold_w)
          .has_value());
}

TEST(MaxRangeTest, DegenerateThresholdsUnbounded) {
  TwoRayGroundModel model;
  EXPECT_FALSE(model.max_range_m(1.0, 0.0).has_value());
  EXPECT_FALSE(model.max_range_m(0.0, 1e-10).has_value());
}

TEST(UnitsTest, DbmWattRoundTrip) {
  EXPECT_NEAR(dbm_to_watt(30.0), 1.0, 1e-12);
  EXPECT_NEAR(watt_to_dbm(1.0), 30.0, 1e-12);
  EXPECT_NEAR(dbm_to_watt(watt_to_dbm(0.28183815)), 0.28183815, 1e-9);
  EXPECT_NEAR(db_to_ratio(ratio_to_db(123.0)), 123.0, 1e-9);
  EXPECT_DOUBLE_EQ(kmh_to_ms(135.0), 37.5);
  EXPECT_DOUBLE_EQ(ms_to_kmh(37.5), 135.0);
}

}  // namespace
}  // namespace cavenet::phy
