// Channel sharding units: plan validation, the kLinear/too-small
// dormancy rules, shard diagnostics, the opt-in shard.* counters, and
// cross-strip delivery accounting. Observable behaviour (who receives
// what) must be identical with and without a shard plan.
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "obs/stats_registry.h"
#include "phy/channel.h"
#include "phy/wifi_phy.h"

namespace cavenet::phy {
namespace {

using netsim::Packet;

struct ShardFixture {
  explicit ShardFixture(ChannelIndex index = ChannelIndex::kGrid)
      : channel(sim, std::make_unique<TwoRayGroundModel>(), index) {}

  netsim::Simulator sim{1};
  Channel channel;
  std::vector<std::unique_ptr<netsim::StaticMobility>> mobilities;
  std::vector<std::unique_ptr<WifiPhy>> radios;
  std::vector<Channel::Attachment> links;

  WifiPhy& add_radio(Vec2 position) {
    mobilities.push_back(std::make_unique<netsim::StaticMobility>(position));
    radios.push_back(std::make_unique<WifiPhy>(
        sim, static_cast<netsim::NodeId>(radios.size()),
        mobilities.back().get()));
    links.push_back(channel.attach(radios.back().get()));
    return *radios.back();
  }

  int count_deliveries(WifiPhy& tx) {
    int count = 0;
    for (auto& radio : radios) {
      radio->set_receive_callback([&count](Packet, double) { ++count; });
    }
    tx.transmit(Packet(64));
    sim.run();
    return count;
  }

  static ShardPlan plan(std::uint32_t shards, double x_min,
                                 double x_max) {
    ShardPlan p;
    p.shards = shards;
    p.x_min = x_min;
    p.x_max = x_max;
    p.epoch_s = 1.0;
    p.max_speed_mps = 0.0;  // static radios
    return p;
  }
};

TEST(ChannelShardTest, ConfigureShardsValidatesPlan) {
  ShardFixture f;
  ShardPlan p = ShardFixture::plan(0, 0.0, 100.0);
  EXPECT_THROW(f.channel.configure_shards(p), std::invalid_argument);
  p = ShardFixture::plan(2, 0.0, 100.0);
  p.epoch_s = 0.0;
  EXPECT_THROW(f.channel.configure_shards(p), std::invalid_argument);
  p = ShardFixture::plan(2, 0.0, 100.0);
  p.max_speed_mps = -1.0;
  EXPECT_THROW(f.channel.configure_shards(p), std::invalid_argument);
  p = ShardFixture::plan(2, 100.0, 100.0);  // empty extent
  EXPECT_THROW(f.channel.configure_shards(p), std::invalid_argument);
}

TEST(ChannelShardTest, SingleShardPlanStaysDormant) {
  ShardFixture f;
  f.channel.configure_shards(ShardFixture::plan(1, 0.0, 1000.0));
  WifiPhy& tx = f.add_radio({0, 0});
  f.add_radio({100, 0});
  EXPECT_EQ(f.count_deliveries(tx), 1);
  EXPECT_EQ(f.channel.shard_diagnostics().strips, 0u);
}

TEST(ChannelShardTest, LinearIndexNeverShards) {
  // kLinear is the brute-force reference the sharded path is compared
  // against; a shard plan on it must be ignored, not applied.
  ShardFixture f(ChannelIndex::kLinear);
  f.channel.configure_shards(ShardFixture::plan(4, 0.0, 2000.0));
  WifiPhy& tx = f.add_radio({0, 0});
  f.add_radio({100, 0});
  EXPECT_EQ(f.count_deliveries(tx), 1);
  EXPECT_EQ(f.channel.shard_diagnostics().strips, 0u);
  EXPECT_EQ(f.channel.shard_diagnostics().epochs, 0u);
}

TEST(ChannelShardTest, TooSmallWorldFallsBackToOneStrip) {
  // The extent holds fewer than two interaction-radius-wide strips, so
  // sharding buys nothing and the channel falls back to the plain grid.
  ShardFixture f;
  f.channel.configure_shards(ShardFixture::plan(4, 0.0, 120.0));
  WifiPhy& tx = f.add_radio({0, 0});
  f.add_radio({100, 0});
  EXPECT_EQ(f.count_deliveries(tx), 1);
  EXPECT_LE(f.channel.shard_diagnostics().strips, 1u);
}

TEST(ChannelShardTest, ShardedDeliveriesMatchUnsharded) {
  const auto deliveries = [](bool sharded) {
    ShardFixture f;
    if (sharded) {
      f.channel.configure_shards(ShardFixture::plan(4, 0.0, 2000.0));
    }
    WifiPhy* tx = nullptr;
    for (double x = 0.0; x < 2000.0; x += 80.0) {
      WifiPhy& radio = f.add_radio({x, 0});
      if (x == 560.0) tx = &radio;
    }
    return f.count_deliveries(*tx);
  };
  const int unsharded = deliveries(false);
  EXPECT_GT(unsharded, 0);
  EXPECT_EQ(deliveries(true), unsharded);
}

TEST(ChannelShardTest, DiagnosticsRecordEpochsAndRefreshes) {
  ShardFixture f;
  f.channel.configure_shards(ShardFixture::plan(4, 0.0, 2000.0));
  WifiPhy& tx = f.add_radio({500, 0});
  f.add_radio({600, 0});
  f.add_radio({1900, 0});  // far strip: never refreshed by this transmit
  f.count_deliveries(tx);
  const Channel::ShardDiagnostics diag = f.channel.shard_diagnostics();
  EXPECT_GE(diag.strips, 2u);
  EXPECT_GE(diag.epochs, 1u);
  EXPECT_GT(diag.refreshed, 0u);
}

TEST(ChannelShardTest, CrossStripDeliveryCountsAsShardMessage) {
  ShardFixture f;
  f.channel.configure_shards(ShardFixture::plan(2, 0.0, 2000.0));
  // Both radios within range but on opposite sides of the x = 1000 strip
  // boundary: the delivery is an inter-shard message.
  WifiPhy& tx = f.add_radio({960, 0});
  f.add_radio({1040, 0});
  EXPECT_EQ(f.count_deliveries(tx), 1);
  const Channel::ShardDiagnostics diag = f.channel.shard_diagnostics();
  EXPECT_GE(diag.strips, 2u);
  EXPECT_GE(diag.cross_msgs, 1u);
}

TEST(ChannelShardTest, BindShardStatsPublishesOptInCounters) {
  ShardFixture f;
  f.channel.configure_shards(ShardFixture::plan(2, 0.0, 2000.0));
  WifiPhy& tx = f.add_radio({960, 0});
  f.add_radio({1040, 0});
  f.count_deliveries(tx);

  // Binding after the fact re-publishes the activity so far.
  obs::StatsRegistry registry;
  f.channel.bind_shard_stats(registry);
  const obs::StatsSnapshot snap = registry.snapshot();
  EXPECT_GE(snap.counter("shard.msgs"), 1u);
  EXPECT_GE(snap.counter("shard.lbts_epochs"), 1u);
  EXPECT_GT(snap.counter("shard.refresh.nodes"), 0u);
}

TEST(ChannelShardTest, AttachChurnInvalidatesAndRecovers) {
  ShardFixture f;
  f.channel.configure_shards(ShardFixture::plan(4, 0.0, 2000.0));
  WifiPhy& tx = f.add_radio({500, 0});
  f.add_radio({600, 0});
  EXPECT_EQ(f.count_deliveries(tx), 1);
  // Churn: a new radio appears, another leaves; the next transmit must
  // rebucket (fresh epoch) and keep delivering correctly.
  f.add_radio({650, 0});
  f.links[1].detach();
  const std::uint64_t epochs_before = f.channel.shard_diagnostics().epochs;
  EXPECT_EQ(f.count_deliveries(tx), 1);  // only the new radio remains in range
  EXPECT_GT(f.channel.shard_diagnostics().epochs, epochs_before);
}

}  // namespace
}  // namespace cavenet::phy
