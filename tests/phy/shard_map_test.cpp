// ShardMap units: strip assignment, epoch/rebucket lifecycle, the
// conservative drift margin, and the certified-speed-bound safety net.
#include "phy/shard_map.h"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/sim_time.h"
#include "util/vec2.h"

namespace cavenet::phy {
namespace {

using namespace cavenet::literals;

TEST(ShardMapTest, UnconfiguredIsInert) {
  ShardMap map;
  EXPECT_FALSE(map.configured());
  EXPECT_EQ(map.strips(), 0u);
  EXPECT_EQ(map.strip_of_slot(0), ShardMap::kNoStrip);
  EXPECT_EQ(map.margin_at(5_s), 0.0);
}

TEST(ShardMapTest, StripOfXClampsToPartition) {
  ShardMap map;
  map.configure(4, 0.0, 1000.0, 1.0, 10.0);
  EXPECT_EQ(map.strips(), 4u);
  EXPECT_EQ(map.strip_of_x(-50.0), 0u);    // below x_min
  EXPECT_EQ(map.strip_of_x(0.0), 0u);
  EXPECT_EQ(map.strip_of_x(260.0), 1u);
  EXPECT_EQ(map.strip_of_x(999.0), 3u);
  EXPECT_EQ(map.strip_of_x(5000.0), 3u);   // above x_max
}

TEST(ShardMapTest, RebucketAssignsMembersInAscendingSlotOrder) {
  ShardMap map;
  map.configure(2, 0.0, 1000.0, 1.0, 10.0);
  const std::vector<Vec2> positions{{900, 0}, {100, 0}, {800, 0}, {200, 0}};
  const std::vector<std::uint8_t> live{1, 1, 1, 1};
  EXPECT_TRUE(map.needs_rebucket(SimTime::zero()));
  map.rebucket(SimTime::zero(), positions, live);
  EXPECT_EQ(map.epochs(), 1u);
  EXPECT_FALSE(map.needs_rebucket(SimTime::zero()));
  EXPECT_EQ(map.strip_of_slot(0), 1u);
  EXPECT_EQ(map.strip_of_slot(1), 0u);
  EXPECT_EQ(map.members(0), (std::vector<std::uint32_t>{1, 3}));
  EXPECT_EQ(map.members(1), (std::vector<std::uint32_t>{0, 2}));
}

TEST(ShardMapTest, DeadSlotsGetNoStrip) {
  ShardMap map;
  map.configure(2, 0.0, 100.0, 1.0, 0.0);
  const std::vector<Vec2> positions{{10, 0}, {90, 0}};
  const std::vector<std::uint8_t> live{1, 0};
  map.rebucket(SimTime::zero(), positions, live);
  EXPECT_EQ(map.strip_of_slot(0), 0u);
  EXPECT_EQ(map.strip_of_slot(1), ShardMap::kNoStrip);
  EXPECT_TRUE(map.members(1).empty());
}

TEST(ShardMapTest, EpochElapsingForcesRebucket) {
  ShardMap map;
  map.configure(2, 0.0, 100.0, 0.5, 0.0);
  const std::vector<Vec2> positions{{10, 0}};
  const std::vector<std::uint8_t> live{1};
  map.rebucket(SimTime::zero(), positions, live);
  EXPECT_FALSE(map.needs_rebucket(SimTime::from_seconds(0.4)));
  EXPECT_TRUE(map.needs_rebucket(SimTime::from_seconds(0.5)));
}

TEST(ShardMapTest, MarginGrowsWithElapsedTimeAndSpeed) {
  ShardMap map;
  map.configure(2, 0.0, 1000.0, 1.0, 20.0);
  const std::vector<Vec2> positions{{10, 0}};
  const std::vector<std::uint8_t> live{1};
  map.rebucket(2_s, positions, live);
  EXPECT_DOUBLE_EQ(map.margin_at(2_s), 0.0);
  EXPECT_DOUBLE_EQ(map.margin_at(SimTime::from_seconds(2.5)), 10.0);
}

TEST(ShardMapTest, SpeedBoundViolationThrows) {
  // A slot displacing faster than the certified bound between epochs is a
  // broken certificate (e.g. an unexpected teleport) — fail loudly rather
  // than silently missing deliveries.
  ShardMap map;
  map.configure(2, 0.0, 1000.0, 1.0, 5.0);
  std::vector<Vec2> positions{{10, 0}};
  const std::vector<std::uint8_t> live{1};
  map.rebucket(SimTime::zero(), positions, live);
  positions[0] = {900, 0};  // 890 m in 1 s >> 5 m/s
  EXPECT_THROW(map.rebucket(1_s, positions, live), std::logic_error);
}

TEST(ShardMapTest, BoundedDriftRebucketsCleanly) {
  ShardMap map;
  map.configure(2, 0.0, 1000.0, 1.0, 5.0);
  std::vector<Vec2> positions{{498, 0}};
  const std::vector<std::uint8_t> live{1};
  map.rebucket(SimTime::zero(), positions, live);
  EXPECT_EQ(map.strip_of_slot(0), 0u);
  positions[0] = {502, 0};  // 4 m in 1 s, crosses the strip boundary
  map.rebucket(1_s, positions, live);
  EXPECT_EQ(map.strip_of_slot(0), 1u);
  EXPECT_EQ(map.epochs(), 2u);
}

TEST(ShardMapTest, InvalidateSkipsDriftVerification) {
  // After churn there is no trusted anchor; the next rebucket must accept
  // any placement instead of throwing.
  ShardMap map;
  map.configure(2, 0.0, 1000.0, 1.0, 5.0);
  std::vector<Vec2> positions{{10, 0}};
  const std::vector<std::uint8_t> live{1};
  map.rebucket(SimTime::zero(), positions, live);
  map.invalidate();
  EXPECT_TRUE(map.needs_rebucket(SimTime::zero()));
  positions[0] = {900, 0};
  map.rebucket(1_s, positions, live);
  EXPECT_EQ(map.strip_of_slot(0), 1u);
}

}  // namespace
}  // namespace cavenet::phy
