#include "phy/wifi_phy.h"

#include <optional>

#include <gtest/gtest.h>

#include "phy/channel.h"

namespace cavenet::phy {
namespace {

using namespace cavenet::literals;
using netsim::Packet;

struct RadioFixture {
  netsim::Simulator sim{1};
  Channel channel{sim, std::make_unique<TwoRayGroundModel>()};
  std::vector<std::unique_ptr<netsim::StaticMobility>> mobilities;
  std::vector<std::unique_ptr<WifiPhy>> radios;
  std::vector<Channel::Attachment> links;  // after radios: detaches first

  WifiPhy& add_radio(Vec2 position) {
    mobilities.push_back(std::make_unique<netsim::StaticMobility>(position));
    radios.push_back(std::make_unique<WifiPhy>(
        sim, static_cast<netsim::NodeId>(radios.size()),
        mobilities.back().get()));
    links.push_back(channel.attach(radios.back().get()));
    return *radios.back();
  }
};

TEST(WifiPhyTest, RequiresMobility) {
  netsim::Simulator sim;
  EXPECT_THROW(WifiPhy(sim, 0, nullptr), std::invalid_argument);
}

TEST(WifiPhyTest, FrameDurationMath) {
  RadioFixture f;
  WifiPhy& radio = f.add_radio({0, 0});
  // PLCP 192 us + 1000 bytes * 8 / 2 Mbps = 192 + 4000 us.
  EXPECT_EQ(radio.frame_duration(1000), 4192_us);
  EXPECT_EQ(radio.frame_duration(0), 192_us);
}

TEST(WifiPhyTest, TransmitRequiresChannel) {
  netsim::Simulator sim;
  netsim::StaticMobility mob({0, 0});
  WifiPhy radio(sim, 0, &mob);
  EXPECT_THROW(radio.transmit(Packet(10)), std::logic_error);
}

TEST(WifiPhyTest, DeliversFrameWithinRange) {
  RadioFixture f;
  WifiPhy& tx = f.add_radio({0, 0});
  WifiPhy& rx = f.add_radio({200, 0});
  std::optional<std::uint64_t> received_uid;
  rx.set_receive_callback(
      [&](Packet p, double) { received_uid = p.uid(); });
  Packet p(100);
  const std::uint64_t uid = p.uid();
  tx.transmit(std::move(p));
  f.sim.run();
  ASSERT_TRUE(received_uid.has_value());
  EXPECT_EQ(*received_uid, uid);
  EXPECT_EQ(tx.stats().frames_sent, 1u);
  EXPECT_EQ(rx.stats().frames_received, 1u);
}

TEST(WifiPhyTest, NoDeliveryBeyond250m) {
  RadioFixture f;
  WifiPhy& tx = f.add_radio({0, 0});
  WifiPhy& rx = f.add_radio({260, 0});
  bool received = false;
  rx.set_receive_callback([&](Packet, double) { received = true; });
  tx.transmit(Packet(100));
  f.sim.run();
  EXPECT_FALSE(received);
  EXPECT_EQ(rx.stats().below_rx_threshold, 1u);
}

TEST(WifiPhyTest, CarrierSensedBetween250And550m) {
  RadioFixture f;
  WifiPhy& tx = f.add_radio({0, 0});
  WifiPhy& rx = f.add_radio({400, 0});
  int busy_transitions = 0;
  rx.set_cca_callback([&](bool busy) {
    if (busy) ++busy_transitions;
  });
  tx.transmit(Packet(100));
  f.sim.run_until(1_ms);
  EXPECT_EQ(busy_transitions, 1);
  EXPECT_FALSE(rx.cca_busy());  // signal over
  EXPECT_EQ(rx.stats().frames_received, 0u);
}

TEST(WifiPhyTest, NothingSensedBeyond550m) {
  RadioFixture f;
  WifiPhy& tx = f.add_radio({0, 0});
  WifiPhy& rx = f.add_radio({600, 0});
  int transitions = 0;
  rx.set_cca_callback([&](bool) { ++transitions; });
  tx.transmit(Packet(100));
  f.sim.run();
  EXPECT_EQ(transitions, 0);
}

TEST(WifiPhyTest, SimultaneousFramesCollide) {
  RadioFixture f;
  WifiPhy& tx1 = f.add_radio({-100, 0});
  WifiPhy& tx2 = f.add_radio({100, 0});
  WifiPhy& rx = f.add_radio({0, 0});
  int received = 0;
  rx.set_receive_callback([&](Packet, double) { ++received; });
  tx1.transmit(Packet(100));
  tx2.transmit(Packet(100));
  f.sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(rx.stats().collisions, 1u);
}

TEST(WifiPhyTest, CaptureWhenMuchStronger) {
  RadioFixture f;
  WifiPhy& strong = f.add_radio({10, 0});   // very close
  WifiPhy& weak = f.add_radio({240, 0});    // near edge of range
  WifiPhy& rx = f.add_radio({0, 0});
  int received = 0;
  rx.set_receive_callback([&](Packet, double) { ++received; });
  strong.transmit(Packet(100));
  weak.transmit(Packet(100));
  f.sim.run();
  // The strong frame is locked first and survives the weak overlap.
  EXPECT_EQ(received, 1);
  EXPECT_EQ(rx.stats().captures, 1u);
}

TEST(WifiPhyTest, TransmitAbortsReception) {
  RadioFixture f;
  WifiPhy& tx = f.add_radio({0, 0});
  WifiPhy& rx = f.add_radio({100, 0});
  int received = 0;
  rx.set_receive_callback([&](Packet, double) { ++received; });
  tx.transmit(Packet(1000));
  // Mid-reception, the receiver transmits its own frame.
  f.sim.schedule(1_ms, [&] { rx.transmit(Packet(10)); });
  f.sim.run();
  EXPECT_EQ(received, 0);
}

TEST(WifiPhyTest, TransmitWhileTransmittingThrows) {
  RadioFixture f;
  WifiPhy& tx = f.add_radio({0, 0});
  f.add_radio({100, 0});
  tx.transmit(Packet(1000));
  EXPECT_THROW(tx.transmit(Packet(10)), std::logic_error);
}

TEST(WifiPhyTest, CcaBusyDuringOwnTransmission) {
  RadioFixture f;
  WifiPhy& tx = f.add_radio({0, 0});
  f.add_radio({100, 0});
  EXPECT_FALSE(tx.cca_busy());
  tx.transmit(Packet(100));
  EXPECT_TRUE(tx.cca_busy());
  EXPECT_TRUE(tx.transmitting());
  f.sim.run();
  EXPECT_FALSE(tx.cca_busy());
}

TEST(WifiPhyTest, BroadcastReachesAllInRange) {
  RadioFixture f;
  WifiPhy& tx = f.add_radio({0, 0});
  WifiPhy& near1 = f.add_radio({100, 0});
  WifiPhy& near2 = f.add_radio({-200, 0});
  WifiPhy& far = f.add_radio({300, 0});
  int count = 0;
  for (WifiPhy* r : {&near1, &near2, &far}) {
    r->set_receive_callback([&](Packet, double) { ++count; });
  }
  tx.transmit(Packet(64));
  f.sim.run();
  EXPECT_EQ(count, 2);
}

TEST(WifiPhyTest, RxPowerReportedToCallback) {
  RadioFixture f;
  WifiPhy& tx = f.add_radio({0, 0});
  WifiPhy& rx = f.add_radio({250, 0});
  double power = 0.0;
  rx.set_receive_callback([&](Packet, double p) { power = p; });
  tx.transmit(Packet(10));
  f.sim.run();
  WaveLanProfile profile;
  EXPECT_NEAR(power / profile.rx_threshold_w, 1.0, 0.02);
}

}  // namespace
}  // namespace cavenet::phy
