// Channel lifecycle (RAII Attachment handles) and spatial-index behaviour:
// the kGrid and kLinear candidate-finding modes must be observationally
// identical, and detaching must stop delivery without disturbing the
// remaining radios' slots.
#include "phy/channel.h"

#include <memory>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "obs/stats_registry.h"
#include "phy/wifi_phy.h"

namespace cavenet::phy {
namespace {

using netsim::Packet;

struct Fixture {
  explicit Fixture(ChannelIndex index = ChannelIndex::kGrid)
      : channel(sim, std::make_unique<TwoRayGroundModel>(), index) {}

  netsim::Simulator sim{1};
  Channel channel;
  std::vector<std::unique_ptr<netsim::StaticMobility>> mobilities;
  std::vector<std::unique_ptr<WifiPhy>> radios;
  std::vector<Channel::Attachment> links;  // after radios: detaches first

  WifiPhy& add_radio(Vec2 position) {
    mobilities.push_back(std::make_unique<netsim::StaticMobility>(position));
    radios.push_back(std::make_unique<WifiPhy>(
        sim, static_cast<netsim::NodeId>(radios.size()),
        mobilities.back().get()));
    links.push_back(channel.attach(radios.back().get()));
    return *radios.back();
  }

  int deliveries(WifiPhy& rx) {
    count_ = 0;
    rx.set_receive_callback([this](Packet, double) { ++count_; });
    return count_;
  }

  int count_ = 0;
};

TEST(ChannelAttachmentTest, AttachIncrementsRadioCount) {
  Fixture f;
  EXPECT_EQ(f.channel.radio_count(), 0u);
  f.add_radio({0, 0});
  f.add_radio({100, 0});
  EXPECT_EQ(f.channel.radio_count(), 2u);
}

TEST(ChannelAttachmentTest, DoubleAttachThrows) {
  Fixture f;
  f.add_radio({0, 0});
  EXPECT_THROW(f.channel.attach(f.radios.back().get()), std::logic_error);
}

TEST(ChannelAttachmentTest, DetachStopsDelivery) {
  Fixture f;
  WifiPhy& tx = f.add_radio({0, 0});
  WifiPhy& rx = f.add_radio({100, 0});
  f.deliveries(rx);
  tx.transmit(Packet(64));
  f.sim.run();
  EXPECT_EQ(f.count_, 1);

  f.links[1].detach();
  EXPECT_FALSE(f.links[1].attached());
  EXPECT_EQ(f.channel.radio_count(), 1u);
  f.count_ = 0;
  tx.transmit(Packet(64));
  f.sim.run();
  EXPECT_EQ(f.count_, 0);
  // Idempotent.
  f.links[1].detach();
  EXPECT_EQ(f.channel.radio_count(), 1u);
}

TEST(ChannelAttachmentTest, ScopeExitDetaches) {
  Fixture f;
  WifiPhy& tx = f.add_radio({0, 0});
  netsim::StaticMobility mob({100, 0});
  WifiPhy ephemeral(f.sim, 9, &mob);
  {
    Channel::Attachment link = f.channel.attach(&ephemeral);
    EXPECT_TRUE(link.attached());
    EXPECT_EQ(f.channel.radio_count(), 2u);
  }
  EXPECT_EQ(f.channel.radio_count(), 1u);
  // A transmission after scope exit must not touch the dead registration.
  tx.transmit(Packet(64));
  f.sim.run();
}

TEST(ChannelAttachmentTest, MoveTransfersOwnership) {
  Fixture f;
  f.add_radio({0, 0});
  netsim::StaticMobility mob({100, 0});
  WifiPhy radio(f.sim, 9, &mob);
  Channel::Attachment a = f.channel.attach(&radio);
  Channel::Attachment b = std::move(a);
  EXPECT_FALSE(a.attached());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.attached());
  EXPECT_EQ(f.channel.radio_count(), 2u);
  b.detach();
  EXPECT_EQ(f.channel.radio_count(), 1u);
}

TEST(ChannelAttachmentTest, ReattachAfterDetach) {
  Fixture f;
  WifiPhy& tx = f.add_radio({0, 0});
  WifiPhy& rx = f.add_radio({100, 0});
  f.deliveries(rx);
  f.links[1].detach();
  f.links[1] = f.channel.attach(f.radios[1].get());
  tx.transmit(Packet(64));
  f.sim.run();
  EXPECT_EQ(f.count_, 1);
}

TEST(ChannelAttachmentTest, DetachedRadioCannotTransmit) {
  Fixture f;
  WifiPhy& tx = f.add_radio({0, 0});
  f.links[0].detach();
  EXPECT_THROW(tx.transmit(Packet(64)), std::logic_error);
}

TEST(ChannelIndexTest, GridAndLinearCountersAgree) {
  // chan.evaluated / chan.culled are defined by the exact distance cull,
  // not by how candidates were found — both modes must publish identical
  // numbers for the same topology and traffic.
  std::optional<std::uint64_t> expected_evaluated;
  std::optional<std::uint64_t> expected_culled;
  for (const ChannelIndex index : {ChannelIndex::kGrid, ChannelIndex::kLinear}) {
    Fixture f(index);
    obs::StatsRegistry stats;
    f.channel.bind_stats(stats);
    // A 1500 m line at 100 m spacing: the 550 m interaction radius covers
    // 5 neighbours a side, so roughly 2/3 of the pairs are culled.
    for (int i = 0; i < 16; ++i) {
      f.add_radio({static_cast<double>(i) * 100.0, 0.0});
    }
    f.radios[0]->transmit(Packet(64));
    f.sim.run();
    f.radios[8]->transmit(Packet(64));
    f.sim.run();

    const std::uint64_t tx = stats.counter("chan.tx").value();
    const std::uint64_t evaluated = stats.counter("chan.evaluated").value();
    const std::uint64_t culled = stats.counter("chan.culled").value();
    EXPECT_EQ(tx, 2u);
    // Every (transmission, other radio) pair is either evaluated or culled.
    EXPECT_EQ(evaluated + culled, 2u * 15u);
    EXPECT_GT(culled, 0u);
    if (!expected_evaluated) {
      expected_evaluated = evaluated;
      expected_culled = culled;
    } else {
      EXPECT_EQ(evaluated, *expected_evaluated);
      EXPECT_EQ(culled, *expected_culled);
    }
  }
}

TEST(ChannelIndexTest, GridDeliversSameFramesAsLinear) {
  for (const ChannelIndex index : {ChannelIndex::kGrid, ChannelIndex::kLinear}) {
    Fixture f(index);
    WifiPhy& tx = f.add_radio({0, 0});
    std::vector<int> delivered;
    for (int i = 1; i <= 8; ++i) {
      WifiPhy& rx = f.add_radio({static_cast<double>(i) * 80.0, 0.0});
      rx.set_receive_callback(
          [&delivered, i](Packet, double) { delivered.push_back(i); });
    }
    tx.transmit(Packet(64));
    f.sim.run();
    // Two-ray rx threshold is 250 m: radios at 80/160/240 m decode.
    EXPECT_EQ(delivered, (std::vector<int>{1, 2, 3}));
  }
}

TEST(ChannelIndexTest, InvalidatePositionsPicksUpTeleport) {
  // StaticMobility can't move, so stand in a mutable model and teleport a
  // receiver out of range at an unchanged timestamp: without invalidation
  // the snapshot would still deliver to the old position.
  struct Teleport final : netsim::MobilityModel {
    explicit Teleport(Vec2 p) : pos(p) {}
    Vec2 position(SimTime) const override { return pos; }
    Vec2 velocity(SimTime) const override { return {}; }
    Vec2 pos;
  };

  Fixture f;
  WifiPhy& tx = f.add_radio({0, 0});
  Teleport mob({100, 0});
  WifiPhy rx(f.sim, 9, &mob);
  Channel::Attachment link = f.channel.attach(&rx);
  int count = 0;
  rx.set_receive_callback([&](Packet, double) { ++count; });

  tx.transmit(Packet(64));
  f.sim.run();
  EXPECT_EQ(count, 1);

  // Same timestamp (sim idle at its last event time), move out of range.
  mob.pos = {5000, 0};
  f.channel.invalidate_positions();
  tx.transmit(Packet(64));
  f.sim.run();
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace cavenet::phy
