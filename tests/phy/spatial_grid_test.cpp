#include "phy/spatial_grid.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cavenet::phy {
namespace {

std::vector<std::uint8_t> all_present(std::size_t n) {
  return std::vector<std::uint8_t>(n, 1);
}

TEST(SpatialGridTest, RejectsBadArguments) {
  SpatialGrid grid;
  const std::vector<Vec2> positions = {{0, 0}};
  const std::vector<std::uint8_t> present = {1};
  EXPECT_THROW(grid.rebuild(positions, present, 0.0), std::invalid_argument);
  EXPECT_THROW(grid.rebuild(positions, present, -5.0), std::invalid_argument);
  const std::vector<std::uint8_t> short_mask;
  EXPECT_THROW(grid.rebuild(positions, short_mask, 1.0),
               std::invalid_argument);
}

TEST(SpatialGridTest, QueryReturnsSupersetOfPointsInRadius) {
  // The contract is conservative: every point within `radius` must be
  // returned; extras (same-cell neighbours outside the circle) are fine.
  Rng rng(42);
  std::vector<Vec2> positions;
  for (int i = 0; i < 500; ++i) {
    positions.push_back(
        {rng.uniform(-2000.0, 2000.0), rng.uniform(-50.0, 50.0)});
  }
  SpatialGrid grid;
  grid.rebuild(positions, all_present(positions.size()), 550.0);
  EXPECT_EQ(grid.size(), positions.size());

  std::vector<std::uint32_t> out;
  for (int q = 0; q < 50; ++q) {
    const Vec2 center = positions[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(positions.size()) - 1))];
    const double radius = rng.uniform(10.0, 550.0);
    out.clear();
    grid.query(center, radius, out);
    for (std::uint32_t i = 0; i < positions.size(); ++i) {
      if (distance(positions[i], center) <= radius) {
        EXPECT_TRUE(std::find(out.begin(), out.end(), i) != out.end())
            << "point " << i << " within " << radius << " m missing";
      }
    }
  }
}

TEST(SpatialGridTest, QueryResultsAscendByIndex) {
  // The channel iterates query results as receivers; ascending index ==
  // attach order keeps the event schedule identical to a linear scan.
  Rng rng(7);
  std::vector<Vec2> positions;
  for (int i = 0; i < 200; ++i) {
    positions.push_back({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  }
  SpatialGrid grid;
  grid.rebuild(positions, all_present(positions.size()), 200.0);
  std::vector<std::uint32_t> out;
  grid.query({500.0, 500.0}, 400.0, out);
  EXPECT_FALSE(out.empty());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(std::adjacent_find(out.begin(), out.end()), out.end())
      << "duplicate index returned";
}

TEST(SpatialGridTest, PresentMaskExcludesTombstonedSlots) {
  const std::vector<Vec2> positions = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  const std::vector<std::uint8_t> present = {1, 0, 1, 0};
  SpatialGrid grid;
  grid.rebuild(positions, present, 10.0);
  EXPECT_EQ(grid.size(), 2u);
  std::vector<std::uint32_t> out;
  grid.query({0, 0}, 100.0, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 2}));
}

TEST(SpatialGridTest, NegativeCoordinatesBucketCorrectly) {
  // Cell coords must floor (not truncate toward zero) or points straddling
  // the origin land in the same cell and queries near it miss neighbours.
  const std::vector<Vec2> positions = {{-5.0, -5.0}, {5.0, 5.0}, {-400.0, 0.0}};
  SpatialGrid grid;
  grid.rebuild(positions, all_present(positions.size()), 100.0);
  std::vector<std::uint32_t> out;
  grid.query({0.0, 0.0}, 20.0, out);
  EXPECT_TRUE(std::find(out.begin(), out.end(), 0u) != out.end());
  EXPECT_TRUE(std::find(out.begin(), out.end(), 1u) != out.end());
  EXPECT_TRUE(std::find(out.begin(), out.end(), 2u) == out.end())
      << "point 400 m away returned for a 20 m query with 100 m cells";
}

TEST(SpatialGridTest, RebuildReplacesPreviousContents) {
  std::vector<Vec2> positions = {{0, 0}, {50, 0}};
  SpatialGrid grid;
  grid.rebuild(positions, all_present(2), 100.0);
  positions = {{1000, 1000}};
  grid.rebuild(positions, all_present(1), 100.0);
  EXPECT_EQ(grid.size(), 1u);
  std::vector<std::uint32_t> out;
  grid.query({0, 0}, 200.0, out);
  EXPECT_TRUE(out.empty());
  grid.query({1000, 1000}, 10.0, out);
  EXPECT_EQ(out, std::vector<std::uint32_t>{0});
}

}  // namespace
}  // namespace cavenet::phy
