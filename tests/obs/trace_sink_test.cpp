#include "obs/trace_sink.h"

#include <gtest/gtest.h>

#include "obs/json.h"

namespace cavenet::obs {
namespace {

TraceEvent instant(std::int64_t us, std::string_view name,
                   std::uint32_t tid = 0) {
  TraceEvent e;
  e.ts = SimTime::microseconds(us);
  e.phase = TraceEvent::Phase::kInstant;
  e.name = name;
  e.category = "MAC";
  e.tid = tid;
  return e;
}

TEST(ChromeTraceWriterTest, EmitsValidChromeJson) {
  ChromeTraceWriter writer;
  writer.emit(instant(1500, "cbr", 4));

  TraceEvent counter;
  counter.ts = SimTime::seconds(1);
  counter.phase = TraceEvent::Phase::kCounter;
  counter.name = "sim.queue_depth";
  counter.category = "kernel";
  counter.value = 12.0;
  writer.emit(counter);

  TraceEvent complete;
  complete.ts = SimTime::microseconds(10);
  complete.dur = SimTime::microseconds(250);
  complete.phase = TraceEvent::Phase::kComplete;
  complete.name = "handler";
  complete.category = "kernel";
  writer.emit(complete);

  const JsonValue doc = parse_json(writer.to_json());
  ASSERT_TRUE(doc.is_object());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 3u);

  const JsonValue& e0 = events->array[0];
  EXPECT_EQ(e0.find("name")->string, "cbr");
  EXPECT_EQ(e0.find("ph")->string, "i");
  EXPECT_DOUBLE_EQ(e0.find("ts")->number, 1500.0);
  EXPECT_DOUBLE_EQ(e0.find("tid")->number, 4.0);

  const JsonValue& e1 = events->array[1];
  EXPECT_EQ(e1.find("ph")->string, "C");
  ASSERT_NE(e1.find("args"), nullptr);
  EXPECT_DOUBLE_EQ(e1.find("args")->find("value")->number, 12.0);

  const JsonValue& e2 = events->array[2];
  EXPECT_EQ(e2.find("ph")->string, "X");
  EXPECT_DOUBLE_EQ(e2.find("dur")->number, 250.0);
}

TEST(RingBufferSinkTest, KeepsLastNAndCountsDropped) {
  RingBufferSink ring(3);
  for (int i = 0; i < 5; ++i) {
    ring.emit(instant(i, "e"));
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 2u);
  const auto window = ring.window();
  ASSERT_EQ(window.size(), 3u);
  // Oldest-first: events 2, 3, 4 survive.
  EXPECT_DOUBLE_EQ(window[0].ts.us(), 2.0);
  EXPECT_DOUBLE_EQ(window[1].ts.us(), 3.0);
  EXPECT_DOUBLE_EQ(window[2].ts.us(), 4.0);
}

TEST(RingBufferSinkTest, ReplayFeedsAnotherSink) {
  RingBufferSink ring(8);
  ring.emit(instant(1, "a"));
  ring.emit(instant(2, "b"));
  ChromeTraceWriter writer;
  ring.replay(writer);
  ASSERT_EQ(writer.size(), 2u);
  EXPECT_EQ(writer.events()[0].name, "a");
  EXPECT_EQ(writer.events()[1].name, "b");
}

TEST(RingBufferSinkTest, ClearResets) {
  RingBufferSink ring(2);
  ring.emit(instant(1, "a"));
  ring.emit(instant(2, "b"));
  ring.emit(instant(3, "c"));
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.window().empty());
}

}  // namespace
}  // namespace cavenet::obs
