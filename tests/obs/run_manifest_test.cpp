#include "obs/run_manifest.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/stats_registry.h"

namespace cavenet::obs {
namespace {

RunManifest sample() {
  RunManifest m;
  m.name = "fig11_pdr";
  m.seed = 3;
  m.set_param("protocol", "AODV");
  m.set_param("vehicles", std::int64_t{30});
  m.set_param("slowdown_p", 0.7);
  m.set_param("use_rts_cts", false);
  m.set_metric("pdr", 0.85);
  m.set_metric("mean_delay_s", 0.042);
  m.sim_duration_s = 100.0;
  m.wall_duration_s = 1.5;
  m.events_dispatched = 123456;
  m.events_per_wall_second = 82304.0;

  StatsRegistry registry;
  registry.counter("mac.tx.data").inc(42);
  registry.gauge("chan.utilization").set(0.25);
  m.stats = registry.snapshot();
  return m;
}

TEST(RunManifestTest, JsonRoundTrip) {
  const RunManifest m = sample();
  const RunManifest parsed = RunManifest::from_json(m.to_json());

  EXPECT_EQ(parsed.name, "fig11_pdr");
  EXPECT_EQ(parsed.seed, 3u);
  EXPECT_EQ(parsed.git_describe, m.git_describe);
  EXPECT_EQ(parsed.created_at, m.created_at);
  EXPECT_EQ(parsed.param("protocol"), "AODV");
  EXPECT_EQ(parsed.param("vehicles"), "30");
  EXPECT_EQ(parsed.param("use_rts_cts"), "false");
  EXPECT_DOUBLE_EQ(parsed.metric("pdr"), 0.85);
  EXPECT_DOUBLE_EQ(parsed.sim_duration_s, 100.0);
  EXPECT_EQ(parsed.events_dispatched, 123456u);
  EXPECT_EQ(parsed.stats.counter("mac.tx.data"), 42u);
  EXPECT_DOUBLE_EQ(parsed.stats.gauge("chan.utilization"), 0.25);
}

TEST(RunManifestTest, ParamAndMetricFallbacks) {
  const RunManifest m = sample();
  EXPECT_EQ(m.param("absent", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(m.metric("absent", -1.0), -1.0);
}

TEST(RunManifestTest, SetParamOverwrites) {
  RunManifest m;
  m.set_param("key", "first");
  m.set_param("key", "second");
  EXPECT_EQ(m.param("key"), "second");
  ASSERT_EQ(m.params.size(), 1u);
}

TEST(RunManifestTest, FileRoundTrip) {
  const RunManifest m = sample();
  const std::string path = "run_manifest_test.tmp.json";
  ASSERT_TRUE(m.write_file(path));
  const RunManifest read = RunManifest::read_file(path);
  EXPECT_EQ(read.name, m.name);
  EXPECT_EQ(read.stats.counter("mac.tx.data"), 42u);
  std::remove(path.c_str());
}

TEST(RunManifestTest, StripVolatileDropsWallClockGauges) {
  RunManifest m;
  m.name = "strip_probe";
  StatsRegistry registry;
  registry.counter("kernel.mac.dispatches").inc(9);  // deterministic: stays
  registry.gauge("kernel.mac.wall_ms").set(12.5);
  registry.gauge("exec.worker0.wall_ms").set(7.5);  // pool lane gauge
  registry.gauge("campaign.wall_s").set(3.25);
  registry.gauge("points.per_wall_s").set(88.0);
  registry.gauge("chan.utilization").set(0.25);  // sim-time gauge: stays
  registry.gauge("sim.events.dispatched").set(1000.0);
  m.stats = registry.snapshot();
  m.created_at = "2026-01-01T00:00:00Z";
  m.wall_duration_s = 1.5;
  m.events_per_wall_second = 666.0;

  m.strip_volatile();

  EXPECT_TRUE(m.created_at.empty());
  EXPECT_EQ(m.wall_duration_s, 0.0);
  EXPECT_EQ(m.events_per_wall_second, 0.0);
  EXPECT_EQ(m.stats.counter("kernel.mac.dispatches"), 9u);
  EXPECT_DOUBLE_EQ(m.stats.gauge("chan.utilization"), 0.25);
  EXPECT_DOUBLE_EQ(m.stats.gauge("sim.events.dispatched"), 1000.0);
  // Every wall-clock gauge is gone, whatever the prefix. (The top-level
  // events_per_wall_second key remains, zeroed.)
  const std::string json = m.to_json();
  EXPECT_EQ(json.find("wall_ms"), std::string::npos);
  EXPECT_EQ(json.find("campaign.wall_s"), std::string::npos);
  EXPECT_EQ(json.find("points.per_wall_s"), std::string::npos);
}

TEST(RunManifestTest, StripVolatileDropsTheThreadsParam) {
  // The executor lane count is recorded for live manifests but results
  // are byte-identical at any value, so the determinism artifact strips
  // it; every scenario-identity param stays.
  RunManifest m;
  m.set_param("threads", std::int64_t{4});
  m.set_param("vehicles", std::int64_t{30});

  m.strip_volatile();

  EXPECT_EQ(m.param("threads", "gone"), "gone");
  EXPECT_EQ(m.param("vehicles", ""), "30");
}

TEST(RunManifestTest, StripVolatileKeepsQuantiles) {
  RunManifest m;
  m.name = "quantile_probe";
  StatsRegistry registry;
  registry.quantile("agt.delay.e2e").observe(0.042);
  registry.gauge("kernel.agt.wall_ms").set(1.0);
  m.stats = registry.snapshot();

  m.strip_volatile();

  // Quantile histograms are sim-time data: stripping must not touch them,
  // and the stripped manifest round-trips with them intact.
  const RunManifest parsed = RunManifest::from_json(m.to_json());
  const auto* q = parsed.stats.quantile("agt.delay.e2e");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->count, 1u);
  EXPECT_DOUBLE_EQ(q->min, 0.042);
}

TEST(RunManifestTest, FromJsonRejectsGarbage) {
  EXPECT_THROW(RunManifest::from_json("not json"), std::runtime_error);
  EXPECT_THROW(RunManifest::from_json("[1,2,3]"), std::runtime_error);
}

TEST(RunManifestTest, BuildVersionNonEmpty) {
  EXPECT_FALSE(build_version().empty());
}

TEST(RunManifestTest, Iso8601Shape) {
  const std::string now = iso8601_utc_now();
  // "YYYY-MM-DDThh:mm:ssZ"
  ASSERT_EQ(now.size(), 20u);
  EXPECT_EQ(now[4], '-');
  EXPECT_EQ(now[10], 'T');
  EXPECT_EQ(now.back(), 'Z');
}

}  // namespace
}  // namespace cavenet::obs
