#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "netsim/simulator.h"
#include "obs/stats_registry.h"
#include "util/sim_time.h"

namespace cavenet::obs {
namespace {

std::vector<std::string> lines(const std::string& jsonl) {
  std::vector<std::string> out;
  std::istringstream in(jsonl);
  for (std::string line; std::getline(in, line);) out.push_back(line);
  return out;
}

TEST(TelemetryTest, DisabledByDefault) {
  EXPECT_FALSE(TelemetryOptions{}.enabled());
  EXPECT_TRUE((TelemetryOptions{0.5, false}).enabled());
}

TEST(TelemetryTest, FullModeRepeatsUnchangedEntries) {
  StatsRegistry registry;
  Counter tx = registry.counter("mac.tx.data");
  TelemetryRecorder recorder(registry, {1.0, /*delta=*/false});

  tx.inc(3);
  recorder.sample(1.0);
  recorder.sample(2.0);  // nothing changed; full mode re-emits everything

  const auto ls = lines(recorder.jsonl());
  ASSERT_EQ(ls.size(), 2u);
  EXPECT_EQ(recorder.samples(), 2u);
  EXPECT_NE(ls[0].find("\"seq\":0"), std::string::npos);
  EXPECT_NE(ls[0].find("\"t_s\":1"), std::string::npos);
  EXPECT_NE(ls[1].find("\"seq\":1"), std::string::npos);
  EXPECT_NE(ls[1].find("\"t_s\":2"), std::string::npos);
  EXPECT_NE(ls[0].find("mac.tx.data"), std::string::npos);
  EXPECT_NE(ls[1].find("mac.tx.data"), std::string::npos);
}

TEST(TelemetryTest, DeltaModeEmitsOnlyChangedEntries) {
  StatsRegistry registry;
  Counter tx = registry.counter("mac.tx.data");
  Counter rx = registry.counter("agt.rx.delivered");
  Quantile delay = registry.quantile("agt.delay.e2e");
  TelemetryRecorder recorder(registry, {1.0, /*delta=*/true});

  tx.inc(1);
  rx.inc(1);
  delay.observe(0.01);
  recorder.sample(1.0);  // first sample: always full

  tx.inc(1);  // only the tx counter moves
  recorder.sample(2.0);

  const auto ls = lines(recorder.jsonl());
  ASSERT_EQ(ls.size(), 2u);
  EXPECT_NE(ls[0].find("agt.rx.delivered"), std::string::npos);
  EXPECT_NE(ls[0].find("agt.delay.e2e"), std::string::npos);
  EXPECT_NE(ls[1].find("mac.tx.data"), std::string::npos);
  EXPECT_EQ(ls[1].find("agt.rx.delivered"), std::string::npos);
  EXPECT_EQ(ls[1].find("agt.delay.e2e"), std::string::npos);
}

TEST(TelemetryTest, DeltaValuesStayAbsolute) {
  StatsRegistry registry;
  Counter tx = registry.counter("mac.tx.data");
  TelemetryRecorder recorder(registry, {1.0, /*delta=*/true});

  tx.inc(5);
  recorder.sample(1.0);
  tx.inc(2);
  recorder.sample(2.0);

  const auto ls = lines(recorder.jsonl());
  ASSERT_EQ(ls.size(), 2u);
  // The second line carries the cumulative value 7, not the increment 2.
  EXPECT_NE(ls[1].find("\"mac.tx.data\":7"), std::string::npos) << ls[1];
}

TEST(TelemetryTest, DeltaQuantileChangesOnObservation) {
  StatsRegistry registry;
  Quantile delay = registry.quantile("agt.delay.e2e");
  TelemetryRecorder recorder(registry, {1.0, /*delta=*/true});

  delay.observe(0.01);
  recorder.sample(1.0);
  recorder.sample(2.0);  // no new observation -> quantile omitted
  delay.observe(0.02);
  recorder.sample(3.0);  // count bumped -> full summary re-emitted

  const auto ls = lines(recorder.jsonl());
  ASSERT_EQ(ls.size(), 3u);
  EXPECT_EQ(ls[1].find("agt.delay.e2e"), std::string::npos);
  EXPECT_NE(ls[2].find("agt.delay.e2e"), std::string::npos);
  EXPECT_NE(ls[2].find("\"count\":2"), std::string::npos) << ls[2];
}

TEST(TelemetryTest, AttachSamplesAtPeriodAndStopsWithQueue) {
  netsim::Simulator sim;
  StatsRegistry registry;
  Counter ticks = registry.counter("test.ticks");
  TelemetryRecorder recorder(registry, {1.0, /*delta=*/false});

  // A workload that keeps the queue alive until t=3.5 s.
  for (int i = 1; i <= 7; ++i) {
    sim.schedule(SimTime::from_seconds(0.5 * i), "test", [&] { ticks.inc(); });
  }
  recorder.attach(sim);
  sim.run();

  // Samples at t=1,2,3 while workload events remained; the t=3 firing sees
  // an empty queue beyond the final 3.5 s event... that event is still
  // queued at t=3, so one more sample fires at t=4 on an empty queue and
  // does not reschedule: the recorder never keeps the simulation alive
  // by itself indefinitely.
  EXPECT_GE(recorder.samples(), 3u);
  EXPECT_LE(recorder.samples(), 4u);
  EXPECT_EQ(sim.queue_depth(), 0u);

  const auto ls = lines(recorder.jsonl());
  ASSERT_FALSE(ls.empty());
  EXPECT_NE(ls[0].find("\"t_s\":1"), std::string::npos);
}

TEST(TelemetryTest, AttachDisabledSchedulesNothing) {
  netsim::Simulator sim;
  StatsRegistry registry;
  TelemetryRecorder recorder(registry, {0.0, false});
  recorder.attach(sim);
  EXPECT_EQ(sim.queue_depth(), 0u);
  sim.run();
  EXPECT_EQ(recorder.samples(), 0u);
}

TEST(TelemetryTest, StreamIsDeterministicAcrossRecorders) {
  // Two recorders over identical registry evolution produce byte-identical
  // streams — the property the --jobs determinism gate builds on.
  auto run_once = [] {
    StatsRegistry registry;
    Counter c = registry.counter("mac.tx.data");
    Quantile q = registry.quantile("agt.delay.e2e");
    TelemetryRecorder recorder(registry, {1.0, /*delta=*/true});
    for (int t = 1; t <= 5; ++t) {
      c.inc(static_cast<std::uint64_t>(t));
      q.observe(0.001 * t);
      recorder.sample(static_cast<double>(t));
    }
    return std::string(recorder.jsonl());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(TelemetryTest, WriteFile) {
  StatsRegistry registry;
  registry.counter("mac.tx.data").inc();
  TelemetryRecorder recorder(registry, {1.0, false});
  recorder.sample(1.0);

  const std::string path = "telemetry_test.tmp.jsonl";
  ASSERT_TRUE(recorder.write_file(path));
  std::ifstream in(path, std::ios::binary);
  std::ostringstream read_back;
  read_back << in.rdbuf();
  EXPECT_EQ(read_back.str(), recorder.jsonl());
  std::remove(path.c_str());
}

TEST(TelemetryTest, WriteFileFailsOnBadPath) {
  StatsRegistry registry;
  TelemetryRecorder recorder(registry, {1.0, false});
  EXPECT_FALSE(recorder.write_file("no_such_dir/telemetry.jsonl"));
}

}  // namespace
}  // namespace cavenet::obs
