#include "obs/kernel_profiler.h"

#include <gtest/gtest.h>

#include <sstream>

#include "netsim/simulator.h"
#include "obs/stats_registry.h"
#include "obs/trace_sink.h"

namespace cavenet::obs {
namespace {

TEST(KernelProfilerTest, AttributesDispatches) {
  KernelProfiler profiler;
  profiler.record("mac", 100);
  profiler.record("mac", 50);
  profiler.record("phy", 10);
  profiler.record("", 1);  // unlabeled bucket

  EXPECT_EQ(profiler.total_dispatches(), 4u);
  EXPECT_EQ(profiler.total_wall_ns(), 161u);
  ASSERT_EQ(profiler.components().count("mac"), 1u);
  EXPECT_EQ(profiler.components().at("mac").dispatches, 2u);
  EXPECT_EQ(profiler.components().at("mac").wall_ns, 150u);
  EXPECT_EQ(profiler.components().count("(unlabeled)"), 1u);
}

TEST(KernelProfilerTest, PublishesIntoRegistry) {
  KernelProfiler profiler;
  profiler.record("aodv", 2'000'000);  // 2 ms
  StatsRegistry registry;
  profiler.publish(registry);
  const StatsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("kernel.aodv.dispatches"), 1u);
  EXPECT_DOUBLE_EQ(snap.gauge("kernel.aodv.wall_ms"), 2.0);
}

TEST(KernelProfilerTest, WriteTableListsComponents) {
  KernelProfiler profiler;
  profiler.record("mac", 300);
  profiler.record("phy", 100);
  std::ostringstream out;
  profiler.write_table(out);
  const std::string text = out.str();
  // Sorted by wall time: mac before phy.
  EXPECT_LT(text.find("mac"), text.find("phy"));
}

TEST(KernelProfilerTest, SimulatorAttributesLabeledEvents) {
  netsim::Simulator sim(1);
  KernelProfiler profiler;
  sim.set_profiler(&profiler);
  int fired = 0;
  sim.schedule(SimTime::seconds(1), "mac", [&] { ++fired; });
  sim.schedule(SimTime::seconds(2), "mac", [&] { ++fired; });
  sim.schedule(SimTime::seconds(3), [&] { ++fired; });  // unlabeled
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(profiler.total_dispatches(), 3u);
  EXPECT_EQ(profiler.components().at("mac").dispatches, 2u);
  EXPECT_EQ(profiler.components().at("(unlabeled)").dispatches, 1u);
}

TEST(SimulatorHeartbeatTest, EmitsCounterEventsAndTerminates) {
  netsim::Simulator sim(1);
  ChromeTraceWriter trace;
  sim.set_trace_sink(&trace);
  sim.enable_heartbeat(SimTime::seconds(1));
  // Work spanning 3.5 s keeps the heartbeat alive for 3 beats; the run
  // must then terminate (the heartbeat must not self-sustain).
  for (int i = 1; i <= 7; ++i) {
    sim.schedule(SimTime::milliseconds(i * 500), [] {});
  }
  sim.run();
  EXPECT_LE(sim.now(), SimTime::seconds(5));
  // Each beat emits three counter series.
  std::size_t rate_events = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.name == "sim.events_per_sec") {
      EXPECT_EQ(e.phase, TraceEvent::Phase::kCounter);
      ++rate_events;
    }
  }
  EXPECT_GE(rate_events, 3u);
}

TEST(SimulatorHeartbeatTest, RejectsNonPositiveInterval) {
  netsim::Simulator sim(1);
  EXPECT_THROW(sim.enable_heartbeat(SimTime::zero()), std::invalid_argument);
}

}  // namespace
}  // namespace cavenet::obs
