#include "obs/quantile_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

namespace cavenet::obs {
namespace {

using Data = QuantileHistogramData;

// --- bucket layout -------------------------------------------------------

TEST(QuantileHistogramTest, BucketBoundariesAreExact) {
  // Every power of two in range starts a fresh decade: the value itself
  // must land in the bucket whose inclusive lower bound it is.
  for (int exp = Data::kMinExp; exp < Data::kMaxExp; ++exp) {
    const double v = std::ldexp(1.0, exp);
    const int index = Data::bucket_index(v);
    SCOPED_TRACE(::testing::Message() << "2^" << exp << " = " << v);
    EXPECT_EQ(Data::bucket_lower_bound(index), v);
    EXPECT_LT(v, Data::bucket_upper_bound(index));
  }
}

TEST(QuantileHistogramTest, SubBucketBoundariesAreExact) {
  // Within a decade, sub-bucket edges are exact binary fractions; a value
  // sitting exactly on an edge belongs to the bucket it opens.
  for (int sub = 0; sub < Data::kSubBuckets; ++sub) {
    const double v = 1.0 + static_cast<double>(sub) / Data::kSubBuckets;
    const int index = Data::bucket_index(v);
    SCOPED_TRACE(::testing::Message() << "value " << v);
    EXPECT_EQ(Data::bucket_lower_bound(index), v);
  }
  // Just below an edge stays in the previous bucket.
  const double edge = 1.0 + 1.0 / Data::kSubBuckets;
  EXPECT_EQ(Data::bucket_index(std::nextafter(edge, 0.0)) + 1,
            Data::bucket_index(edge));
}

TEST(QuantileHistogramTest, EveryBucketRoundTrips) {
  // lower_bound(i) must index back to i, and the layout must tile: each
  // bucket's upper bound is the next bucket's lower bound.
  for (int i = 1; i < Data::kBucketCount - 1; ++i) {
    ASSERT_EQ(Data::bucket_index(Data::bucket_lower_bound(i)), i)
        << "bucket " << i;
    if (i + 1 < Data::kBucketCount - 1) {
      ASSERT_EQ(Data::bucket_upper_bound(i), Data::bucket_lower_bound(i + 1))
          << "bucket " << i;
    }
  }
}

TEST(QuantileHistogramTest, UnderflowAndOverflowBuckets) {
  EXPECT_EQ(Data::bucket_index(0.0), 0);
  EXPECT_EQ(Data::bucket_index(-1.0), 0);
  EXPECT_EQ(Data::bucket_index(std::numeric_limits<double>::quiet_NaN()), 0);
  EXPECT_EQ(Data::bucket_index(std::ldexp(1.0, Data::kMinExp) / 2.0), 0);
  EXPECT_EQ(Data::bucket_index(std::ldexp(1.0, Data::kMaxExp)),
            Data::kBucketCount - 1);
  EXPECT_EQ(Data::bucket_index(std::numeric_limits<double>::infinity()),
            Data::kBucketCount - 1);
}

// --- quantile accuracy ---------------------------------------------------

TEST(QuantileHistogramTest, QuantileErrorBoundOnRandomDraws) {
  // 1e5 draws spanning six orders of magnitude (log-uniform, like delay
  // distributions): every reported quantile must sit within the advertised
  // relative error of the exact order statistic.
  constexpr std::size_t kN = 100000;
  constexpr double kRelErr = 1.0 / Data::kSubBuckets;  // 3.125%

  std::mt19937_64 gen(42);
  std::uniform_real_distribution<double> log10_range(-4.0, 2.0);
  Data h;
  std::vector<double> values;
  values.reserve(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const double v = std::pow(10.0, log10_range(gen));
    values.push_back(v);
    h.observe(v);
  }
  std::sort(values.begin(), values.end());

  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    const std::size_t rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(q * kN)));
    const double exact = values[rank - 1];
    const double approx = h.quantile(q);
    SCOPED_TRACE(::testing::Message() << "q=" << q << " exact=" << exact);
    // quantile() reports a bucket upper bound, so it never under-reports
    // by more than the bucket width and never over-reports past the next
    // bucket edge.
    EXPECT_GE(approx, exact * (1.0 - kRelErr));
    EXPECT_LE(approx, exact * (1.0 + kRelErr));
  }
}

TEST(QuantileHistogramTest, QuantileOneIsMaxAndMeanIsExact) {
  Data h;
  double sum = 0.0;
  for (int i = 1; i <= 1000; ++i) {
    h.observe(i * 0.001);
    sum += i * 0.001;
  }
  EXPECT_EQ(h.quantile(1.0), h.max);
  EXPECT_DOUBLE_EQ(h.mean(), sum / 1000.0);  // sum is exact, not bucketed
  EXPECT_EQ(h.count, 1000u);
}

// --- merge determinism ---------------------------------------------------

TEST(QuantileHistogramTest, MergeIsOrderIndependent) {
  // The same observation multiset split across four shards must merge to
  // identical buckets regardless of merge order — the property the
  // parallel ensemble runner relies on for byte-identical quantiles.
  std::mt19937_64 gen(7);
  std::uniform_real_distribution<double> dist(1e-4, 10.0);
  std::vector<Data> shards(4);
  for (int i = 0; i < 10000; ++i) {
    shards[static_cast<std::size_t>(i % 4)].observe(dist(gen));
  }

  Data forward;
  for (const Data& s : shards) forward.merge(s);
  Data backward;
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
    backward.merge(*it);
  }

  EXPECT_EQ(forward.count, backward.count);
  EXPECT_EQ(forward.sum, backward.sum);  // bitwise: merge adds shard sums
  EXPECT_EQ(forward.min, backward.min);
  EXPECT_EQ(forward.max, backward.max);
  EXPECT_EQ(forward.buckets, backward.buckets);
  EXPECT_EQ(forward.quantile(0.99), backward.quantile(0.99));
}

TEST(QuantileHistogramTest, MergeMatchesSingleStreamBuckets) {
  std::mt19937_64 gen(11);
  std::uniform_real_distribution<double> dist(1e-3, 1.0);
  Data whole;
  Data left;
  Data right;
  for (int i = 0; i < 5000; ++i) {
    const double v = dist(gen);
    whole.observe(v);
    (i % 2 == 0 ? left : right).observe(v);
  }
  left.merge(right);
  EXPECT_EQ(whole.buckets, left.buckets);
  EXPECT_EQ(whole.count, left.count);
  EXPECT_EQ(whole.min, left.min);
  EXPECT_EQ(whole.max, left.max);
}

TEST(QuantileHistogramTest, MergeIntoEmpty) {
  Data a;
  Data b;
  b.observe(0.5);
  b.observe(2.0);
  a.merge(b);
  EXPECT_EQ(a.count, 2u);
  EXPECT_EQ(a.min, 0.5);
  EXPECT_EQ(a.max, 2.0);
  a.merge(Data{});  // merging an empty histogram is a no-op
  EXPECT_EQ(a.count, 2u);
  EXPECT_EQ(a.min, 0.5);
  EXPECT_EQ(a.max, 2.0);
}

// --- edge cases -----------------------------------------------------------

TEST(QuantileHistogramTest, EmptyHistogram) {
  const Data h;
  EXPECT_EQ(h.count, 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);
  EXPECT_TRUE(h.cdf().empty());
}

TEST(QuantileHistogramTest, SingleSampleIsExactEverywhere) {
  Data h;
  h.observe(0.0421);
  // The clamp to [min, max] makes every quantile of a single-valued
  // distribution exact, not just bucket-accurate.
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile(q), 0.0421) << "q=" << q;
  }
  EXPECT_EQ(h.min, 0.0421);
  EXPECT_EQ(h.max, 0.0421);
  const auto cdf = h.cdf();
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_EQ(cdf[0].first, 0.0421);
  EXPECT_EQ(cdf[0].second, 1u);
}

TEST(QuantileHistogramTest, CdfIsMonotoneAndEndsAtCount) {
  std::mt19937_64 gen(3);
  std::uniform_real_distribution<double> dist(1e-2, 5.0);
  Data h;
  for (int i = 0; i < 1000; ++i) h.observe(dist(gen));

  const auto cdf = h.cdf();
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_EQ(cdf.back().second, h.count);
  EXPECT_EQ(cdf.back().first, h.max);  // clamped to the observed max
}

TEST(QuantileHistogramTest, UnboundHandleDiscards) {
  Quantile q;
  EXPECT_FALSE(q.bound());
  q.observe(1.0);  // must not crash; lands in the thread-local discard cell
}

}  // namespace
}  // namespace cavenet::obs
