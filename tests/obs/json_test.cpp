#include "obs/json.h"

#include <gtest/gtest.h>

#include <iterator>
#include <string>

#include "obs/intern.h"

namespace cavenet::obs {
namespace {

TEST(JsonWriterTest, ObjectsArraysAndCommas) {
  JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value("x");
  w.key("list");
  w.begin_array();
  w.value(std::uint64_t{1});
  w.value(std::uint64_t{2});
  w.end_array();
  w.key("nested");
  w.begin_object();
  w.key("ok");
  w.value(true);
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"name":"x","list":[1,2],"nested":{"ok":true}})");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.begin_array();
  w.value("a\"b\\c\n\t");
  w.end_array();
  EXPECT_EQ(w.str(), "[\"a\\\"b\\\\c\\n\\t\"]");
}

TEST(JsonWriterTest, RawSplicesSubDocument) {
  JsonWriter w;
  w.begin_object();
  w.key("stats");
  w.raw(R"({"counters":{}})");
  w.key("after");
  w.value(std::int64_t{-1});
  w.end_object();
  EXPECT_EQ(w.str(), R"({"stats":{"counters":{}},"after":-1})");
}

TEST(JsonParseTest, RoundTripsTypes) {
  const JsonValue v = parse_json(
      R"({"s":"hi","n":-2.5,"b":true,"z":null,"a":[1,"x"],"o":{"k":2}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("s")->string, "hi");
  EXPECT_DOUBLE_EQ(v.find("n")->number, -2.5);
  EXPECT_TRUE(v.find("b")->boolean);
  EXPECT_EQ(v.find("z")->kind, JsonValue::Kind::kNull);
  ASSERT_EQ(v.find("a")->array.size(), 2u);
  EXPECT_DOUBLE_EQ(v.find("o")->find("k")->number, 2.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParseTest, UnescapesStrings) {
  const JsonValue v = parse_json(R"(["a\"b\\c\nA"])");
  ASSERT_EQ(v.array.size(), 1u);
  EXPECT_EQ(v.array[0].string, "a\"b\\c\nA");
}

TEST(JsonParseTest, ThrowsOnMalformedInput) {
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(parse_json("{} trailing"), std::runtime_error);
  EXPECT_THROW(parse_json(""), std::runtime_error);
}

TEST(JsonParseTest, ErrorsCarryLineAndColumn) {
  // The stray token sits on line 3, after four leading spaces.
  const std::string text = "{\n  \"a\": 1,\n    oops\n}";
  try {
    parse_json(text, "bad.json");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_EQ(e.column(), 5u);
    EXPECT_NE(std::string(e.what()).find("bad.json:3:5"), std::string::npos)
        << e.what();
  }
}

TEST(JsonParseTest, TrailingGarbageReportsItsPosition) {
  try {
    parse_json("[1, 2]\nxx");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_EQ(e.column(), 1u);
    EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos);
  }
}

TEST(JsonParseTest, UnterminatedStringReportsEndOfInput) {
  try {
    parse_json("{\"key\": \"never closed");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.line(), 1u);
    EXPECT_GT(e.column(), 1u);
  }
}

// Writer -> parser round trips (the spec engine reads documents the obs
// writer produced, so every escape form must survive the cycle).

TEST(JsonRoundTripTest, ControlCharacterEscapes) {
  std::string raw;
  for (int c = 1; c < 0x20; ++c) raw.push_back(static_cast<char>(c));
  JsonWriter w;
  w.begin_array();
  w.value(raw);
  w.end_array();
  const JsonValue v = parse_json(w.str());
  ASSERT_EQ(v.array.size(), 1u);
  EXPECT_EQ(v.array[0].string, raw);
}

TEST(JsonRoundTripTest, Utf8PassesThroughUnchanged) {
  const std::string utf8 = "naïve — 車載ネット ✓";
  JsonWriter w;
  w.begin_object();
  w.key(utf8);
  w.value(utf8);
  w.end_object();
  const JsonValue v = parse_json(w.str());
  ASSERT_EQ(v.object.size(), 1u);
  EXPECT_EQ(v.object[0].first, utf8);
  EXPECT_EQ(v.object[0].second.string, utf8);
}

TEST(JsonRoundTripTest, NestedArraysAndObjects) {
  const std::string text =
      R"({"a":[[1,[2,{"b":[true,null,"x"]}]],{}],"c":{"d":{"e":[]}}})";
  // parse -> to_json is the canonical form; a second cycle must be stable.
  const std::string once = to_json(parse_json(text));
  EXPECT_EQ(to_json(parse_json(once)), once);
  EXPECT_EQ(once, text);
}

TEST(JsonRoundTripTest, NumberPrecisionSurvives) {
  const double values[] = {0.7, 1.0 / 3.0, 2e6, -1.25e-17, 5.0,
                           123456789012345.0};
  JsonWriter w;
  w.begin_array();
  for (const double d : values) w.value(d);
  w.end_array();
  const JsonValue v = parse_json(w.str());
  ASSERT_EQ(v.array.size(), std::size(values));
  for (std::size_t i = 0; i < std::size(values); ++i) {
    EXPECT_EQ(v.array[i].number, values[i]) << "index " << i;  // bit-exact
  }
}

TEST(InternTest, SameContentSamePointer) {
  const std::string_view a = intern("aodv-rreq");
  const std::string heap = "aodv-" + std::string("rreq");  // distinct storage
  const std::string_view b = intern(heap);
  EXPECT_EQ(a.data(), b.data());  // identical backing storage
  EXPECT_EQ(a, "aodv-rreq");
  const std::string_view c = intern("aodv-rrep");
  EXPECT_NE(a.data(), c.data());
}

// Untrusted-input limits (JsonParseLimits): the HTTP job API feeds
// client bytes straight into this parser, so nesting depth and input
// size must be bounded with precise diagnostics.

std::string nested_arrays(std::size_t depth) {
  return std::string(depth, '[') + "1" + std::string(depth, ']');
}

TEST(JsonParseLimitsTest, DepthAtTheLimitParses) {
  JsonParseLimits limits;
  limits.max_depth = 4;
  const JsonValue v = parse_json(nested_arrays(4), "json", limits);
  EXPECT_TRUE(v.is_array());
}

TEST(JsonParseLimitsTest, DepthBeyondTheLimitIsRejectedPrecisely) {
  JsonParseLimits limits;
  limits.max_depth = 4;
  try {
    parse_json(nested_arrays(5), "deep.json", limits);
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& error) {
    EXPECT_NE(std::string(error.what())
                  .find("deep.json:1:5: nesting exceeds the maximum depth "
                        "of 4 levels"),
              std::string::npos)
        << error.what();
    EXPECT_EQ(error.line(), 1u);
    EXPECT_EQ(error.column(), 5u);
  }
}

TEST(JsonParseLimitsTest, ObjectsCountTowardDepthToo) {
  JsonParseLimits limits;
  limits.max_depth = 2;
  EXPECT_NO_THROW(parse_json(R"({"a": [1]})", "json", limits));
  EXPECT_THROW(parse_json(R"({"a": [[1]]})", "json", limits),
               JsonParseError);
}

TEST(JsonParseLimitsTest, DefaultDepthGuardsAgainstHostileNesting) {
  // The default must accept realistic spec nesting and reject a
  // stack-overflow-depth bomb.
  EXPECT_NO_THROW(parse_json(nested_arrays(64)));
  EXPECT_THROW(parse_json(nested_arrays(100000)), JsonParseError);
}

TEST(JsonParseLimitsTest, InputSizeBeyondTheLimitIsRejected) {
  JsonParseLimits limits;
  limits.max_bytes = 16;
  EXPECT_NO_THROW(parse_json(R"({"ok": 123456})", "json", limits));
  const std::string big = R"({"padding": "0123456789"})";
  try {
    parse_json(big, "big.json", limits);
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& error) {
    EXPECT_NE(std::string(error.what())
                  .find("big.json:1:1: input is " + std::to_string(big.size()) +
                        " bytes, exceeds the maximum of 16 bytes"),
              std::string::npos)
        << error.what();
  }
}

TEST(JsonParseLimitsTest, ZeroMaxBytesMeansUnlimited) {
  JsonParseLimits limits;
  limits.max_bytes = 0;
  const std::string big(64 * 1024, ' ');
  EXPECT_NO_THROW(parse_json(big + "true", "json", limits));
}

}  // namespace
}  // namespace cavenet::obs
