#include "obs/json.h"

#include <gtest/gtest.h>

#include "obs/intern.h"

namespace cavenet::obs {
namespace {

TEST(JsonWriterTest, ObjectsArraysAndCommas) {
  JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value("x");
  w.key("list");
  w.begin_array();
  w.value(std::uint64_t{1});
  w.value(std::uint64_t{2});
  w.end_array();
  w.key("nested");
  w.begin_object();
  w.key("ok");
  w.value(true);
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"name":"x","list":[1,2],"nested":{"ok":true}})");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.begin_array();
  w.value("a\"b\\c\n\t");
  w.end_array();
  EXPECT_EQ(w.str(), "[\"a\\\"b\\\\c\\n\\t\"]");
}

TEST(JsonWriterTest, RawSplicesSubDocument) {
  JsonWriter w;
  w.begin_object();
  w.key("stats");
  w.raw(R"({"counters":{}})");
  w.key("after");
  w.value(std::int64_t{-1});
  w.end_object();
  EXPECT_EQ(w.str(), R"({"stats":{"counters":{}},"after":-1})");
}

TEST(JsonParseTest, RoundTripsTypes) {
  const JsonValue v = parse_json(
      R"({"s":"hi","n":-2.5,"b":true,"z":null,"a":[1,"x"],"o":{"k":2}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("s")->string, "hi");
  EXPECT_DOUBLE_EQ(v.find("n")->number, -2.5);
  EXPECT_TRUE(v.find("b")->boolean);
  EXPECT_EQ(v.find("z")->kind, JsonValue::Kind::kNull);
  ASSERT_EQ(v.find("a")->array.size(), 2u);
  EXPECT_DOUBLE_EQ(v.find("o")->find("k")->number, 2.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParseTest, UnescapesStrings) {
  const JsonValue v = parse_json(R"(["a\"b\\c\nA"])");
  ASSERT_EQ(v.array.size(), 1u);
  EXPECT_EQ(v.array[0].string, "a\"b\\c\nA");
}

TEST(JsonParseTest, ThrowsOnMalformedInput) {
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(parse_json("{} trailing"), std::runtime_error);
  EXPECT_THROW(parse_json(""), std::runtime_error);
}

TEST(InternTest, SameContentSamePointer) {
  const std::string_view a = intern("aodv-rreq");
  const std::string heap = "aodv-" + std::string("rreq");  // distinct storage
  const std::string_view b = intern(heap);
  EXPECT_EQ(a.data(), b.data());  // identical backing storage
  EXPECT_EQ(a, "aodv-rreq");
  const std::string_view c = intern("aodv-rrep");
  EXPECT_NE(a.data(), c.data());
}

}  // namespace
}  // namespace cavenet::obs
