#include "obs/stats_registry.h"

#include <gtest/gtest.h>

#include <sstream>

namespace cavenet::obs {
namespace {

TEST(StatsRegistryTest, UnboundHandlesDiscard) {
  Counter c;
  Gauge g;
  Histogram h;
  EXPECT_FALSE(c.bound());
  EXPECT_FALSE(g.bound());
  EXPECT_FALSE(h.bound());
  c.inc(5);
  g.set(1.5);
  h.observe(3.0);
  // Discarded, and a fresh unbound handle reads zero regardless of what
  // earlier unbound handles wrote.
  EXPECT_EQ(c.value(), Counter().value());
}

TEST(StatsRegistryTest, CounterIncrements) {
  StatsRegistry registry;
  Counter c = registry.counter("mac.tx.data");
  EXPECT_TRUE(c.bound());
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name -> same cell.
  Counter again = registry.counter("mac.tx.data");
  again.inc();
  EXPECT_EQ(c.value(), 43u);
}

TEST(StatsRegistryTest, GaugeSetAndAdd) {
  StatsRegistry registry;
  Gauge g = registry.gauge("chan.utilization");
  g.set(0.25);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
}

TEST(StatsRegistryTest, HistogramSummaries) {
  StatsRegistry registry;
  Histogram h = registry.histogram("delay_ms");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const StatsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& s = snap.histograms.front();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  // Power-of-2 bucket bounds: the quantile is an upper bound, within 2x.
  EXPECT_GE(s.p50, 50.0);
  EXPECT_LE(s.p50, 128.0);
}

TEST(StatsRegistryTest, SnapshotSortedAndQueryable) {
  StatsRegistry registry;
  registry.counter("b.second").inc(2);
  registry.counter("a.first").inc(1);
  registry.gauge("z.gauge").set(9.0);
  const StatsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.first");
  EXPECT_EQ(snap.counters[1].first, "b.second");
  EXPECT_EQ(snap.counter("b.second"), 2u);
  EXPECT_EQ(snap.counter("absent"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge("z.gauge"), 9.0);
}

TEST(StatsRegistryTest, SnapshotJsonRoundTrip) {
  StatsRegistry registry;
  registry.counter("mac.tx.data").inc(123);
  registry.gauge("chan.utilization").set(0.5);
  registry.histogram("hist").observe(4.0);
  const StatsSnapshot snap = registry.snapshot();
  const StatsSnapshot parsed = StatsSnapshot::from_json(snap.to_json());
  EXPECT_EQ(parsed.counter("mac.tx.data"), 123u);
  EXPECT_DOUBLE_EQ(parsed.gauge("chan.utilization"), 0.5);
  ASSERT_EQ(parsed.histograms.size(), 1u);
  EXPECT_EQ(parsed.histograms.front().count, 1u);
}

TEST(StatsRegistryTest, WriteTableContainsNames) {
  StatsRegistry registry;
  registry.counter("aodv.rreq.sent").inc(7);
  std::ostringstream out;
  registry.write_table(out);
  EXPECT_NE(out.str().find("aodv.rreq.sent"), std::string::npos);
  EXPECT_NE(out.str().find("7"), std::string::npos);
}

TEST(StatsRegistryTest, HandlesStayValidAcrossManyRegistrations) {
  // The registry must not invalidate earlier handles as it grows (node-
  // based storage): bind one counter, then register many more.
  StatsRegistry registry;
  Counter first = registry.counter("first");
  for (int i = 0; i < 1000; ++i) {
    registry.counter("c." + std::to_string(i)).inc();
  }
  first.inc(5);
  EXPECT_EQ(registry.snapshot().counter("first"), 5u);
}

}  // namespace
}  // namespace cavenet::obs
