#include "runner/progress.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace cavenet::runner {
namespace {

ProgressOptions memory_only() {
  ProgressOptions options;
  options.heartbeat_period_s = 0.0;  // no watchdog thread in unit tests
  options.stall_after_s = 0.0;
  return options;
}

std::vector<std::string> lines(const std::string& jsonl) {
  std::vector<std::string> out;
  std::istringstream in(jsonl);
  for (std::string line; std::getline(in, line);) out.push_back(line);
  return out;
}

TEST(ProgressStreamTest, CampaignLifecycleEvents) {
  ProgressStream stream(3, 2, memory_only());
  stream.point_started(0, "fig8[0]");
  stream.point_finished(0, "fig8[0]", 1000);
  stream.point_started(1, "fig8[1]");
  stream.point_finished(1, "fig8[1]", 2000);
  stream.point_resumed(2, "fig8[2]");
  stream.campaign_finished();

  const auto ls = lines(stream.jsonl());
  ASSERT_EQ(ls.size(), 7u);  // started + 2x(start,finish) + resumed + done
  EXPECT_NE(ls[0].find("\"event\":\"campaign_started\""), std::string::npos);
  EXPECT_NE(ls[0].find("\"points\":3"), std::string::npos);
  EXPECT_NE(ls[0].find("\"jobs\":2"), std::string::npos);

  EXPECT_NE(ls[1].find("\"event\":\"point_started\""), std::string::npos);
  EXPECT_NE(ls[1].find("\"point\":0"), std::string::npos);
  EXPECT_NE(ls[1].find("\"name\":\"fig8[0]\""), std::string::npos);

  EXPECT_NE(ls[2].find("\"event\":\"point_finished\""), std::string::npos);
  EXPECT_NE(ls[2].find("\"events\":1000"), std::string::npos);
  EXPECT_NE(ls[2].find("\"events_per_wall_s\""), std::string::npos);
  EXPECT_NE(ls[2].find("\"eta_s\""), std::string::npos);
  EXPECT_NE(ls[2].find("\"finished\":1"), std::string::npos);

  EXPECT_NE(ls[5].find("\"event\":\"point_resumed\""), std::string::npos);
  EXPECT_NE(ls[6].find("\"event\":\"campaign_finished\""), std::string::npos);
  EXPECT_NE(ls[6].find("\"events\":3000"), std::string::npos);
  EXPECT_EQ(stream.finished(), 3u);  // resumed points count as finished
}

TEST(ProgressStreamTest, HeartbeatReportsRunningAndFinished) {
  ProgressStream stream(4, 1, memory_only());
  stream.point_started(0, "a");
  stream.point_finished(0, "a", 10);
  stream.point_started(1, "b");
  stream.emit_heartbeat();

  const auto ls = lines(stream.jsonl());
  const std::string& hb = ls.back();
  EXPECT_NE(hb.find("\"event\":\"heartbeat\""), std::string::npos);
  EXPECT_NE(hb.find("\"finished\":1"), std::string::npos);
  EXPECT_NE(hb.find("\"running\":1"), std::string::npos);
  EXPECT_NE(hb.find("\"points\":4"), std::string::npos);
  EXPECT_NE(hb.find("\"wall_s\""), std::string::npos);
}

TEST(ProgressStreamTest, WritesJsonlFile) {
  const std::string path = "progress_test.tmp.jsonl";
  {
    ProgressOptions options = memory_only();
    options.path = path;
    ProgressStream stream(1, 1, options);
    stream.point_started(0, "only");
    stream.point_finished(0, "only", 42);
    stream.campaign_finished();
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream read_back;
  read_back << in.rdbuf();
  const auto ls = lines(read_back.str());
  ASSERT_EQ(ls.size(), 4u);
  EXPECT_NE(ls.back().find("\"event\":\"campaign_finished\""),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(ProgressStreamTest, EveryLineIsValidSingleObjectJson) {
  ProgressStream stream(2, 1, memory_only());
  stream.point_started(0, "x");
  stream.point_finished(0, "x", 1);
  stream.emit_heartbeat();
  stream.campaign_finished();

  for (const std::string& line : lines(stream.jsonl())) {
    SCOPED_TRACE(line);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    // No raw newlines inside an event (JSONL framing).
    EXPECT_EQ(line.find('\n'), std::string::npos);
  }
}

TEST(ProgressStreamTest, FinishedCountsAreMonotone) {
  ProgressStream stream(3, 1, memory_only());
  EXPECT_EQ(stream.finished(), 0u);
  stream.point_started(0, "a");
  EXPECT_EQ(stream.finished(), 0u);
  stream.point_finished(0, "a", 5);
  EXPECT_EQ(stream.finished(), 1u);
  stream.point_resumed(1, "b");
  EXPECT_EQ(stream.finished(), 2u);
}

}  // namespace
}  // namespace cavenet::runner
