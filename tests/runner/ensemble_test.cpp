#include "runner/ensemble.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/stats_registry.h"

namespace cavenet::runner {
namespace {

TEST(ResolveJobsTest, PositiveValuesPassThrough) {
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(7), 7);
}

TEST(ResolveJobsTest, NonPositiveMeansHardwareThreadsNeverLessThanOne) {
  EXPECT_GE(resolve_jobs(0), 1);
  EXPECT_GE(resolve_jobs(-3), 1);
}

TEST(ParseJobsFlagTest, DefaultsToSerial) {
  const char* argv[] = {"bench"};
  EXPECT_EQ(parse_jobs_flag(1, argv), 1);
}

TEST(ParseJobsFlagTest, ParsesExplicitCount) {
  const char* argv[] = {"bench", "--jobs", "4"};
  EXPECT_EQ(parse_jobs_flag(3, argv), 4);
}

TEST(ParseJobsFlagTest, ZeroResolvesToHardwareThreads) {
  const char* argv[] = {"bench", "--jobs", "0"};
  EXPECT_GE(parse_jobs_flag(3, argv), 1);
}

TEST(ParseJobsFlagTest, UnknownFlagThrows) {
  const char* argv[] = {"bench", "--jbos", "4"};
  EXPECT_THROW(parse_jobs_flag(3, argv), std::invalid_argument);
}

TEST(EnsembleRunnerTest, MapReturnsResultsInReplicationOrder) {
  for (const int jobs : {1, 4}) {
    EnsembleOptions options;
    options.jobs = jobs;
    EnsembleRunner pool(options);
    const auto out = pool.map<std::size_t>(
        100, [](ReplicationContext& ctx) { return ctx.index * 10; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * 10);
  }
}

TEST(EnsembleRunnerTest, EveryReplicationRunsExactlyOnce) {
  EnsembleOptions options;
  options.jobs = 4;
  EnsembleRunner pool(options);
  std::atomic<int> calls{0};
  std::vector<std::atomic<int>> per_index(57);
  pool.for_each(57, [&](ReplicationContext& ctx) {
    ++calls;
    ++per_index[ctx.index];
    EXPECT_EQ(ctx.total, 57u);
    EXPECT_NE(ctx.stats, nullptr);
  });
  EXPECT_EQ(calls.load(), 57);
  for (const auto& c : per_index) EXPECT_EQ(c.load(), 1);
}

TEST(EnsembleRunnerTest, ZeroReplicationsIsANoOp) {
  EnsembleRunner pool;
  bool called = false;
  pool.for_each(0, [&](ReplicationContext&) { called = true; });
  EXPECT_FALSE(called);
}

// The heart of the determinism guarantee: the random draws a replication
// sees depend only on (master_seed, rng_stream, index), never on the
// worker count or schedule.
TEST(EnsembleRunnerTest, ReplicationStreamsAreIndependentOfJobs) {
  const auto draws_at = [](int jobs) {
    EnsembleOptions options;
    options.jobs = jobs;
    options.master_seed = 99;
    EnsembleRunner pool(options);
    return pool.map<std::uint64_t>(
        32, [](ReplicationContext& ctx) { return ctx.rng.next_u64(); });
  };
  const auto serial = draws_at(1);
  EXPECT_EQ(serial, draws_at(3));
  EXPECT_EQ(serial, draws_at(8));

  // ... and the 32 streams are mutually distinct.
  auto sorted = serial;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(EnsembleRunnerTest, MasterSeedSelectsTheEnsemble) {
  const auto first_draw = [](std::uint64_t seed) {
    EnsembleOptions options;
    options.master_seed = seed;
    EnsembleRunner pool(options);
    return pool.map<std::uint64_t>(
        1, [](ReplicationContext& ctx) { return ctx.rng.next_u64(); })[0];
  };
  EXPECT_NE(first_draw(1), first_draw(2));
}

TEST(EnsembleRunnerTest, MergedStatsAreIdenticalForAnyJobsCount) {
  const auto stats_json_at = [](int jobs) {
    EnsembleOptions options;
    options.jobs = jobs;
    EnsembleRunner pool(options);
    obs::StatsRegistry merged;
    pool.for_each(
        20,
        [](ReplicationContext& ctx) {
          ctx.stats->counter("runs").inc();
          ctx.stats->counter("work.items").inc(ctx.index);
          ctx.stats->gauge("last.index").set(static_cast<double>(ctx.index));
          ctx.stats->histogram("index.hist").observe(
              static_cast<double>(ctx.index));
        },
        &merged);
    return merged.snapshot().to_json();
  };
  const auto serial = stats_json_at(1);
  EXPECT_EQ(serial, stats_json_at(4));
  EXPECT_EQ(serial, stats_json_at(16));
}

TEST(EnsembleRunnerTest, MergeReproducesSequentialSharedRegistrySemantics) {
  EnsembleOptions options;
  options.jobs = 4;
  EnsembleRunner pool(options);
  obs::StatsRegistry merged;
  pool.for_each(
      10,
      [](ReplicationContext& ctx) {
        ctx.stats->counter("total").inc(ctx.index);
        ctx.stats->gauge("last").set(static_cast<double>(ctx.index));
      },
      &merged);
  // Counters accumulate across replications: 0 + 1 + ... + 9.
  EXPECT_EQ(merged.snapshot().counter("total"), 45u);
  // Gauges keep the value of the LAST replication in index order, exactly
  // as sequential reuse of one shared registry would.
  EXPECT_EQ(merged.snapshot().gauge("last"), 9.0);
}

TEST(EnsembleRunnerTest, LowestIndexExceptionWinsDeterministically) {
  for (const int jobs : {1, 4}) {
    EnsembleOptions options;
    options.jobs = jobs;
    EnsembleRunner pool(options);
    try {
      pool.for_each(16, [](ReplicationContext& ctx) {
        if (ctx.index == 3 || ctx.index == 7 || ctx.index == 11) {
          throw std::runtime_error("failed at " + std::to_string(ctx.index));
        }
      });
      FAIL() << "expected for_each to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "failed at 3") << "jobs=" << jobs;
    }
  }
}

TEST(EnsembleRunnerTest, AllReplicationsFinishEvenWhenSomeThrow) {
  EnsembleOptions options;
  options.jobs = 4;
  EnsembleRunner pool(options);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.for_each(20,
                             [&](ReplicationContext& ctx) {
                               if (ctx.index % 5 == 0) {
                                 throw std::runtime_error("boom");
                               }
                               ++completed;
                             }),
               std::runtime_error);
  EXPECT_EQ(completed.load(), 16);
}

TEST(EnsembleRunnerTest, MoreJobsThanReplicationsIsFine) {
  EnsembleOptions options;
  options.jobs = 16;
  EnsembleRunner pool(options);
  const auto out = pool.map<std::size_t>(
      3, [](ReplicationContext& ctx) { return ctx.index; });
  EXPECT_EQ(out, (std::vector<std::size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace cavenet::runner
