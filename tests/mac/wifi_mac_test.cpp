#include "mac/wifi_mac.h"

#include <gtest/gtest.h>

#include "phy/channel.h"

namespace cavenet::mac {
namespace {

using namespace cavenet::literals;
using netsim::kBroadcast;
using netsim::NodeId;
using netsim::Packet;

struct MacFixture {
  netsim::Simulator sim{7};
  phy::Channel channel{sim, std::make_unique<phy::TwoRayGroundModel>()};
  std::vector<std::unique_ptr<netsim::StaticMobility>> mobilities;
  std::vector<std::unique_ptr<phy::WifiPhy>> phys;
  std::vector<phy::Channel::Attachment> links;  // after phys: detaches first
  std::vector<std::unique_ptr<WifiMac>> macs;

  WifiMac& add_node(Vec2 position, MacParams params = {}) {
    const auto id = static_cast<NodeId>(macs.size());
    mobilities.push_back(std::make_unique<netsim::StaticMobility>(position));
    phys.push_back(
        std::make_unique<phy::WifiPhy>(sim, id, mobilities.back().get()));
    links.push_back(channel.attach(phys.back().get()));
    macs.push_back(std::make_unique<WifiMac>(sim, *phys.back(), params, id));
    return *macs.back();
  }
};

TEST(MacHeaderTest, WireSizes) {
  MacHeader h;
  h.type = MacHeader::Type::kData;
  EXPECT_EQ(h.size_bytes(), 28u);
  h.type = MacHeader::Type::kAck;
  EXPECT_EQ(h.size_bytes(), 14u);
  h.type = MacHeader::Type::kRts;
  EXPECT_EQ(h.size_bytes(), 20u);
  h.type = MacHeader::Type::kCts;
  EXPECT_EQ(h.size_bytes(), 14u);
}

TEST(MacParamsTest, DifsIsSifsPlusTwoSlots) {
  MacParams p;
  EXPECT_EQ(p.difs(), 50_us);
}

TEST(WifiMacTest, UnicastDeliveredExactlyOnce) {
  MacFixture f;
  WifiMac& a = f.add_node({0, 0});
  WifiMac& b = f.add_node({150, 0});
  int delivered = 0;
  NodeId from = 99;
  b.set_receive_callback([&](Packet, NodeId src) {
    ++delivered;
    from = src;
  });
  a.send(Packet(512), 1);
  f.sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(from, 0u);
  EXPECT_EQ(a.stats().data_tx_success, 1u);
  EXPECT_EQ(b.stats().acks_sent, 1u);
}

TEST(WifiMacTest, TransmissionWaitsAtLeastDifs) {
  MacFixture f;
  WifiMac& a = f.add_node({0, 0});
  WifiMac& b = f.add_node({150, 0});
  SimTime arrival = SimTime::zero();
  b.set_receive_callback(
      [&](Packet, NodeId) { arrival = f.sim.now(); });
  a.send(Packet(512), 1);
  f.sim.run();
  // DIFS (50us) + PLCP (192us) + (512+20+8ish payload)/2Mbps: at minimum
  // DIFS plus the frame airtime.
  EXPECT_GE(arrival, 50_us + 192_us);
}

TEST(WifiMacTest, BroadcastHasNoAckAndReachesAll) {
  MacFixture f;
  WifiMac& a = f.add_node({0, 0});
  WifiMac& b = f.add_node({150, 0});
  WifiMac& c = f.add_node({-150, 0});
  int delivered = 0;
  b.set_receive_callback([&](Packet, NodeId) { ++delivered; });
  c.set_receive_callback([&](Packet, NodeId) { ++delivered; });
  a.send(Packet(64), kBroadcast);
  f.sim.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(b.stats().acks_sent, 0u);
  EXPECT_EQ(c.stats().acks_sent, 0u);
  EXPECT_EQ(a.stats().data_tx_success, 1u);
}

TEST(WifiMacTest, TxFailedAfterRetryLimitWhenPeerUnreachable) {
  MacFixture f;
  WifiMac& a = f.add_node({0, 0});
  f.add_node({400, 0});  // carrier-sense range but undecodable
  int failed = 0;
  NodeId failed_dest = 0;
  a.set_tx_failed_callback([&](const Packet&, NodeId dest) {
    ++failed;
    failed_dest = dest;
  });
  a.send(Packet(512), 1);
  f.sim.run();
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(failed_dest, 1u);
  EXPECT_EQ(a.stats().data_tx_failed, 1u);
  EXPECT_EQ(a.stats().retries, a.params().retry_limit + 1);
}

TEST(WifiMacTest, QueueDropsWhenFull) {
  MacParams params;
  params.queue_limit = 3;
  MacFixture f;
  WifiMac& a = f.add_node({0, 0}, params);
  f.add_node({150, 0}, params);
  for (int i = 0; i < 10; ++i) a.send(Packet(512), 1);
  EXPECT_GT(a.stats().dropped_queue_full, 0u);
  EXPECT_LE(a.queue_depth(), 4u);  // 3 queued + 1 in service
  f.sim.run();
}

TEST(WifiMacTest, BackToBackPacketsAllArrive) {
  MacFixture f;
  WifiMac& a = f.add_node({0, 0});
  WifiMac& b = f.add_node({150, 0});
  int delivered = 0;
  b.set_receive_callback([&](Packet, NodeId) { ++delivered; });
  for (int i = 0; i < 20; ++i) a.send(Packet(256), 1);
  f.sim.run();
  EXPECT_EQ(delivered, 20);
}

TEST(WifiMacTest, TwoContendingSendersBothSucceed) {
  MacFixture f;
  WifiMac& a = f.add_node({0, 0});
  WifiMac& b = f.add_node({100, 0});
  WifiMac& c = f.add_node({50, 50});
  int delivered = 0;
  c.set_receive_callback([&](Packet, NodeId) { ++delivered; });
  for (int i = 0; i < 10; ++i) {
    a.send(Packet(512), 2);
    b.send(Packet(512), 2);
  }
  f.sim.run();
  EXPECT_EQ(delivered, 20);  // DCF resolves contention, ACKs recover losses
}

TEST(WifiMacTest, SimultaneousBroadcastsCollide) {
  // Eight stations with frames arriving at the exact same instant all see
  // an idle-for-DIFS medium and transmit together — the classic DCF
  // simultaneous-arrival collision, unrecoverable for broadcast (no ACK).
  MacFixture f;
  std::vector<WifiMac*> nodes;
  for (int i = 0; i < 8; ++i) {
    nodes.push_back(&f.add_node({static_cast<double>(i * 30), 0}));
  }
  int delivered = 0;
  for (WifiMac* n : nodes) {
    n->set_receive_callback([&](Packet, NodeId) { ++delivered; });
  }
  for (WifiMac* n : nodes) n->send(Packet(100), kBroadcast);
  f.sim.run();
  EXPECT_EQ(delivered, 0);
}

TEST(WifiMacTest, StaggeredBroadcastsAllDelivered) {
  MacFixture f;
  std::vector<WifiMac*> nodes;
  for (int i = 0; i < 8; ++i) {
    nodes.push_back(&f.add_node({static_cast<double>(i * 30), 0}));
  }
  int delivered = 0;
  for (WifiMac* n : nodes) {
    n->set_receive_callback([&](Packet, NodeId) { ++delivered; });
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    f.sim.schedule(SimTime::milliseconds(static_cast<std::int64_t>(10 * i)),
                   [&f, i] { f.macs[i]->send(Packet(100), kBroadcast); });
  }
  f.sim.run();
  // With arrivals 10 ms apart the medium is free each time: every
  // broadcast reaches all 7 peers.
  EXPECT_EQ(delivered, 8 * 7);
}

TEST(WifiMacTest, RtsCtsExchangeDeliversData) {
  MacParams params;
  params.use_rts_cts = true;
  params.rts_threshold_bytes = 0;
  MacFixture f;
  WifiMac& a = f.add_node({0, 0}, params);
  WifiMac& b = f.add_node({150, 0}, params);
  int delivered = 0;
  b.set_receive_callback([&](Packet, NodeId) { ++delivered; });
  a.send(Packet(512), 1);
  f.sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(a.stats().rts_sent, 1u);
  EXPECT_EQ(b.stats().cts_sent, 1u);
  EXPECT_EQ(a.stats().data_tx_success, 1u);
}

TEST(WifiMacTest, RtsBelowThresholdSkipsHandshake) {
  MacParams params;
  params.use_rts_cts = true;
  params.rts_threshold_bytes = 1000;
  MacFixture f;
  WifiMac& a = f.add_node({0, 0}, params);
  WifiMac& b = f.add_node({150, 0}, params);
  int delivered = 0;
  b.set_receive_callback([&](Packet, NodeId) { ++delivered; });
  a.send(Packet(100), 1);  // below threshold
  f.sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(a.stats().rts_sent, 0u);
}

TEST(WifiMacTest, HiddenTerminalsLoseWithoutRtsRecoverWithRetries) {
  // a and c are ~500 m apart (cannot carrier-sense each other's data
  // frames at 400m+ they actually can sense via CS range 550m... place at
  // 1000 m so they are fully hidden), both sending to b in the middle.
  MacFixture f;
  WifiMac& a = f.add_node({0, 0});
  WifiMac& b = f.add_node({240, 0});
  WifiMac& c = f.add_node({480, 0});
  (void)c;
  int delivered = 0;
  b.set_receive_callback([&](Packet, NodeId) { ++delivered; });
  for (int i = 0; i < 5; ++i) {
    a.send(Packet(512), 1);
    f.macs[2]->send(Packet(512), 1);
  }
  f.sim.run();
  // ACK-driven retries recover most frames despite hidden-node collisions.
  EXPECT_GE(delivered, 7);
}

TEST(WifiMacTest, DuplicateSuppressionOnRetransmittedFrames) {
  // Force an ACK loss scenario indirectly: this is hard to stage
  // deterministically at this level, so verify the dedup structure instead:
  // the same (src, seq) delivered twice is filtered.
  MacFixture f;
  WifiMac& a = f.add_node({0, 0});
  WifiMac& b = f.add_node({150, 0});
  int delivered = 0;
  b.set_receive_callback([&](Packet, NodeId) { ++delivered; });
  // 30 distinct frames: all delivered, none duplicated.
  for (int i = 0; i < 30; ++i) a.send(Packet(64), 1);
  f.sim.run();
  EXPECT_EQ(delivered, 30);
  EXPECT_EQ(b.stats().delivered_up, 30u);
}

TEST(WifiMacTest, PriorityFramesJumpTheQueue) {
  MacFixture f;
  WifiMac& a = f.add_node({0, 0});
  WifiMac& b = f.add_node({150, 0});
  std::vector<std::uint64_t> arrival_order;
  b.set_receive_callback(
      [&](Packet p, NodeId) { arrival_order.push_back(p.uid()); });
  // Fill the queue with data, then inject a priority frame.
  std::vector<std::uint64_t> data_uids;
  for (int i = 0; i < 5; ++i) {
    Packet p(512);
    data_uids.push_back(p.uid());
    a.send(std::move(p), 1);
  }
  Packet urgent(64);
  const std::uint64_t urgent_uid = urgent.uid();
  a.send_priority(std::move(urgent), 1);
  f.sim.run();
  ASSERT_EQ(arrival_order.size(), 6u);
  // The head-of-line data frame was already in service; the urgent frame
  // must arrive right after it, ahead of the remaining four data frames.
  EXPECT_EQ(arrival_order[0], data_uids[0]);
  EXPECT_EQ(arrival_order[1], urgent_uid);
}

TEST(WifiMacTest, NavDefersOverhearingStations) {
  // b transmits a long unicast to c; bystander d overhears the data frame
  // and must honour its NAV (SIFS + ACK) before its own frame, so d's
  // packet arrives after c's ACK completes.
  MacFixture f;
  WifiMac& b = f.add_node({0, 0});
  f.add_node({150, 0});  // c
  WifiMac& d = f.add_node({-100, 0});
  WifiMac& sink = f.add_node({-200, 50});
  SimTime arrival = SimTime::zero();
  sink.set_receive_callback([&](Packet, NodeId) { arrival = f.sim.now(); });

  b.send(Packet(1500), 1);
  // d's frame arrives while b's data frame is on the air.
  f.sim.schedule(2_ms, [&] { d.send(Packet(100), 3); });
  f.sim.run();

  // b's frame: starts at 50us, air 192 + (1500+28)*8/2 = 6304us, ends at
  // 6354us; NAV covers SIFS(10) + ACK(248); d may then contend (DIFS)
  // and transmit 192 + 128*8/2 = 704us.
  ASSERT_GT(arrival, SimTime::zero());
  EXPECT_GE(arrival, 6354_us + 258_us + 50_us + 704_us);
}

TEST(WifiMacTest, EifsDefersAfterErroneousReception) {
  // Two synchronized senders collide at node D; D then has a frame to
  // send. With EIFS, D's transmission must wait SIFS + ACK + DIFS after
  // the corrupted reception instead of just DIFS.
  MacFixture f;
  WifiMac& a = f.add_node({-100, 0});
  WifiMac& b = f.add_node({100, 0});
  WifiMac& d = f.add_node({0, 50});
  WifiMac& sink = f.add_node({0, 200});
  (void)a;
  (void)b;
  SimTime arrival = SimTime::zero();
  sink.set_receive_callback([&](Packet, NodeId) { arrival = f.sim.now(); });

  // Broadcasts from a and b collide at d (same instant, no backoff).
  f.macs[0]->send(Packet(512), kBroadcast);
  f.macs[1]->send(Packet(512), kBroadcast);
  // d's own frame becomes ready while the collision is on the air.
  f.sim.schedule(1_ms, [&] { d.send(Packet(100), 3); });
  f.sim.run();

  ASSERT_GT(arrival, SimTime::zero());
  // Collision ends at DIFS + PLCP + (512+28)*8/2Mbps = 50+192+2160 us =
  // 2402 us. EIFS adds SIFS(10) + ACK(248) + DIFS(50) = 308 us before d's
  // frame may start; without EIFS only DIFS(50) would apply.
  const SimTime collision_end = 2402_us;
  // d's frame: 100 B payload + 28 B MAC header at 2 Mbps after the PLCP.
  const SimTime frame_air = 192_us + SimTime::from_seconds(128.0 * 8 / 2e6);
  EXPECT_GE(arrival, collision_end + 308_us + frame_air);
}

TEST(WifiMacTest, AddressReportsPhyId) {
  MacFixture f;
  WifiMac& a = f.add_node({0, 0});
  WifiMac& b = f.add_node({10, 0});
  EXPECT_EQ(a.address(), 0u);
  EXPECT_EQ(b.address(), 1u);
}

}  // namespace
}  // namespace cavenet::mac
