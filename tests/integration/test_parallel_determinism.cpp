// Seed-invariance of the parallel ensemble runner, end to end: a
// bench_fig8-style Table-I ensemble (all 8 senders, shared stats
// registry, run manifest, CSV) executed at --jobs 1 and --jobs 4 must be
// BYTE-IDENTICAL — same per-sender results, same merged stats snapshot,
// same manifest JSON, same CSV text. This is the guarantee that lets the
// figure benches fan out across cores without changing a single output
// byte.
//
// The scenario is shortened (20 s instead of 100 s) to keep the tier-1
// suite fast; determinism does not depend on duration.
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/run_manifest.h"
#include "obs/stats_registry.h"
#include "scenario/experiment.h"
#include "scenario/run_record.h"
#include "scenario/table1.h"
#include "util/table_writer.h"

namespace cavenet::scenario {
namespace {

TableIConfig short_config() {
  TableIConfig config;
  config.protocol = Protocol::kAodv;
  config.seed = 3;
  config.traffic_start_s = 2.0;
  config.duration_s = 20.0;
  return config;
}

/// Everything a goodput bench emits, captured as strings.
struct EnsembleArtifacts {
  std::vector<SenderRunResult> results;
  std::string stats_json;
  std::string manifest_json;
  std::string csv;
};

EnsembleArtifacts run_ensemble(int jobs) {
  TableIConfig config = short_config();
  obs::StatsRegistry stats;
  config.obs.stats = &stats;

  EnsembleArtifacts a;
  a.results = run_all_senders(config, 1, 8, jobs);
  a.stats_json = stats.snapshot().to_json();

  obs::RunManifest manifest =
      make_run_manifest("determinism_test", config, a.results, 1.23);
  manifest.strip_volatile();
  a.manifest_json = manifest.to_json();

  TableWriter csv({"sender", "second", "goodput_bps"});
  for (const auto& r : a.results) {
    for (std::size_t s = 0; s < r.goodput_bps.size(); ++s) {
      csv.add_row({static_cast<std::int64_t>(r.sender),
                   static_cast<std::int64_t>(s), r.goodput_bps[s]});
    }
  }
  std::ostringstream out;
  csv.write_csv(out);
  a.csv = out.str();
  return a;
}

TEST(ParallelDeterminismTest, JobsOneAndJobsFourAreByteIdentical) {
  const EnsembleArtifacts serial = run_ensemble(1);
  const EnsembleArtifacts parallel = run_ensemble(4);

  ASSERT_EQ(serial.results.size(), parallel.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "sender " << i + 1);
    const SenderRunResult& a = serial.results[i];
    const SenderRunResult& b = parallel.results[i];
    EXPECT_EQ(a.sender, b.sender);
    EXPECT_EQ(a.tx_packets, b.tx_packets);
    EXPECT_EQ(a.rx_packets, b.rx_packets);
    EXPECT_EQ(a.pdr, b.pdr);                    // exact, not approximate
    EXPECT_EQ(a.mean_delay_s, b.mean_delay_s);  // bitwise double equality
    EXPECT_EQ(a.goodput_bps, b.goodput_bps);
    EXPECT_EQ(a.control_packets, b.control_packets);
    EXPECT_EQ(a.control_bytes, b.control_bytes);
    EXPECT_EQ(a.events_dispatched, b.events_dispatched);
    EXPECT_EQ(a.channel_utilization, b.channel_utilization);
  }
  EXPECT_EQ(serial.stats_json, parallel.stats_json);
  EXPECT_EQ(serial.manifest_json, parallel.manifest_json);
  EXPECT_EQ(serial.csv, parallel.csv);
}

TEST(ParallelDeterminismTest, RepeatedParallelRunsAreByteIdentical) {
  const EnsembleArtifacts first = run_ensemble(4);
  const EnsembleArtifacts second = run_ensemble(4);
  EXPECT_EQ(first.stats_json, second.stats_json);
  EXPECT_EQ(first.manifest_json, second.manifest_json);
  EXPECT_EQ(first.csv, second.csv);
}

TEST(ParallelDeterminismTest, SeedSweepIsIndependentOfJobs) {
  TableIConfig config = short_config();
  config.sender = 5;
  const auto seeds = default_seeds(4);

  const SeedSweepResult serial = run_seed_sweep(config, seeds, 1);
  const SeedSweepResult parallel = run_seed_sweep(config, seeds, 4);

  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    EXPECT_EQ(serial.runs[i].pdr, parallel.runs[i].pdr);
    EXPECT_EQ(serial.runs[i].rx_packets, parallel.runs[i].rx_packets);
  }
  EXPECT_EQ(serial.pdr.mean, parallel.pdr.mean);
  EXPECT_EQ(serial.pdr.ci95, parallel.pdr.ci95);
  EXPECT_EQ(serial.control_bytes.mean, parallel.control_bytes.mean);
}

}  // namespace
}  // namespace cavenet::scenario
