// Integration: the paper's two-block architecture. The Behavioural
// Analyzer (CA) produces a trace; the trace goes through the ns-2 text
// format; the Communication Protocol Simulator replays it. Positions seen
// by the network stack must match the CA at every step.
#include <sstream>

#include <gtest/gtest.h>

#include "core/geometry.h"
#include "core/nas_lane.h"
#include "core/road.h"
#include "netsim/mobility.h"
#include "trace/mobility_trace.h"
#include "trace/ns2_format.h"
#include "trace/trace_generator.h"

namespace cavenet {
namespace {

TEST(TwoBlockTest, FileInterfaceMatchesInMemoryPath) {
  ca::NasParams params;
  params.lane_length = 400;
  params.slowdown_p = 0.3;

  auto build_road = [&] {
    ca::Road road;
    road.add_lane(
        ca::NasLane(params, 30, ca::InitialPlacement::kRandom, Rng(21)),
        ca::make_circuit(params.lane_length_m()));
    return road;
  };

  // In-memory trace.
  ca::Road road_a = build_road();
  trace::TraceGeneratorOptions options;
  options.steps = 50;
  const trace::MobilityTrace in_memory = trace::generate_trace(road_a, options);

  // File-serialized trace.
  ca::Road road_b = build_road();
  const trace::MobilityTrace regenerated = trace::generate_trace(road_b, options);
  std::stringstream file;
  trace::write_ns2(regenerated, file);
  const trace::MobilityTrace from_file = trace::read_ns2(file);

  const auto paths_memory = trace::compile_paths(in_memory);
  const auto paths_file = trace::compile_paths(from_file);
  ASSERT_EQ(paths_memory.size(), paths_file.size());

  for (std::size_t node = 0; node < paths_memory.size(); ++node) {
    for (double t = 0.0; t <= 50.0; t += 0.25) {
      const Vec2 a = paths_memory[node].position(t);
      const Vec2 b = paths_file[node].position(t);
      ASSERT_NEAR(a.x, b.x, 1e-5) << "node " << node << " t=" << t;
      ASSERT_NEAR(a.y, b.y, 1e-5) << "node " << node << " t=" << t;
    }
  }
}

TEST(TwoBlockTest, MobilityAdapterTracksCompiledPath) {
  ca::NasParams params;
  params.lane_length = 100;
  ca::Road road;
  road.add_lane(ca::NasLane(params, 5, ca::InitialPlacement::kEven),
                ca::make_circuit(params.lane_length_m()));
  trace::TraceGeneratorOptions options;
  options.steps = 20;
  const trace::MobilityTrace trace = trace::generate_trace(road, options);
  const auto paths = trace::compile_paths(trace);

  const trace::NodePath* path = &paths[0];
  netsim::FunctionMobility mobility(
      [path](double t) { return path->position(t); },
      [path](double t) { return path->velocity(t); });

  for (double t = 0.0; t <= 20.0; t += 0.5) {
    const SimTime at = SimTime::from_seconds(t);
    EXPECT_EQ(mobility.position(at), path->position(t));
    EXPECT_EQ(mobility.velocity(at), path->velocity(t));
  }
}

TEST(TwoBlockTest, VehicleSpeedsInTraceRespectVmax) {
  ca::NasParams params;
  params.lane_length = 200;
  params.slowdown_p = 0.5;
  ca::Road road;
  road.add_lane(ca::NasLane(params, 40, ca::InitialPlacement::kRandom, Rng(3)),
                ca::make_circuit(params.lane_length_m()));
  trace::TraceGeneratorOptions options;
  options.steps = 100;
  const trace::MobilityTrace trace = trace::generate_trace(road, options);
  const double vmax_ms = 5.0 * 7.5;  // 37.5 m/s
  for (const auto& ev : trace.events) {
    if (ev.kind == trace::TraceEvent::Kind::kSetDest) {
      // Chord length <= arc length, so trace speeds never exceed v_max.
      EXPECT_LE(ev.speed_ms, vmax_ms + 1e-9);
      EXPECT_GT(ev.speed_ms, 0.0);
    }
  }
}

}  // namespace
}  // namespace cavenet
