// Live-telemetry determinism and quantile reconciliation, end to end.
//
// 1. A fig8-style Table-I ensemble with telemetry enabled must emit
//    BYTE-IDENTICAL snapshot JSONL at --jobs 1 and --jobs 4 (full and
//    delta mode): samples are keyed on sim time and contain only
//    registry state, never wall clock.
// 2. The agt.delay.e2e quantile histogram must reconcile with the ground
//    truth: per-packet delays recomputed from the PacketLog (AGT send →
//    AGT receive, matched by uid) sorted exactly. Every reported
//    percentile must sit within ONE histogram bucket of the exact order
//    statistic.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "netsim/packet_log.h"
#include "obs/quantile_histogram.h"
#include "obs/stats_registry.h"
#include "scenario/table1.h"

namespace cavenet::scenario {
namespace {

TableIConfig short_config() {
  TableIConfig config;
  config.protocol = Protocol::kAodv;
  config.seed = 3;
  config.traffic_start_s = 2.0;
  config.duration_s = 20.0;
  return config;
}

struct TelemetryArtifacts {
  std::vector<std::string> streams;  // per-sender telemetry JSONL
  std::string stats_json;
};

TelemetryArtifacts run_ensemble(int jobs, bool delta) {
  TableIConfig config = short_config();
  config.telemetry.period_s = 5.0;
  config.telemetry.delta = delta;
  obs::StatsRegistry stats;
  config.obs.stats = &stats;

  TelemetryArtifacts a;
  for (const SenderRunResult& r : run_all_senders(config, 1, 4, jobs)) {
    a.streams.push_back(r.telemetry_jsonl);
  }
  a.stats_json = stats.snapshot().to_json();
  return a;
}

TEST(TelemetryDeterminismTest, JsonlByteIdenticalAcrossJobsFullMode) {
  const TelemetryArtifacts serial = run_ensemble(1, /*delta=*/false);
  const TelemetryArtifacts parallel = run_ensemble(4, /*delta=*/false);

  ASSERT_EQ(serial.streams.size(), parallel.streams.size());
  for (std::size_t i = 0; i < serial.streams.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "sender " << i + 1);
    EXPECT_FALSE(serial.streams[i].empty());
    EXPECT_EQ(serial.streams[i], parallel.streams[i]);
  }
  EXPECT_EQ(serial.stats_json, parallel.stats_json);
}

TEST(TelemetryDeterminismTest, JsonlByteIdenticalAcrossJobsDeltaMode) {
  const TelemetryArtifacts serial = run_ensemble(1, /*delta=*/true);
  const TelemetryArtifacts parallel = run_ensemble(4, /*delta=*/true);

  ASSERT_EQ(serial.streams.size(), parallel.streams.size());
  for (std::size_t i = 0; i < serial.streams.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "sender " << i + 1);
    EXPECT_EQ(serial.streams[i], parallel.streams[i]);
  }
  EXPECT_EQ(serial.stats_json, parallel.stats_json);
}

TEST(TelemetryDeterminismTest, SnapshotsCoverTheRun) {
  TableIConfig config = short_config();
  config.telemetry.period_s = 5.0;
  obs::StatsRegistry stats;
  config.obs.stats = &stats;

  const SenderRunResult result = run_table1(config);
  ASSERT_FALSE(result.telemetry_jsonl.empty());
  // Periodic samples at t = 5, 10, 15, 20 plus the final end-of-run
  // sample; the first line is seq 0 at the first period.
  const auto newlines = static_cast<std::size_t>(std::count(
      result.telemetry_jsonl.begin(), result.telemetry_jsonl.end(), '\n'));
  EXPECT_GE(newlines, 4u);
  EXPECT_NE(result.telemetry_jsonl.find("\"seq\":0"), std::string::npos);
  EXPECT_NE(result.telemetry_jsonl.find("\"t_s\":5"), std::string::npos);
  EXPECT_NE(result.telemetry_jsonl.find("agt.delay.e2e"), std::string::npos);
}

TEST(TelemetryDeterminismTest, QuantilesReconcileWithPacketLog) {
  TableIConfig config = short_config();
  config.duration_s = 40.0;  // enough deliveries for a meaningful p99
  netsim::PacketLog log;
  obs::StatsRegistry stats;
  config.obs.packet_log = &log;
  config.obs.stats = &stats;

  run_table1(config);

  // Ground truth: AGT send/receive pairs matched by packet uid.
  std::map<std::uint64_t, SimTime> sent_at;
  std::vector<double> delays;
  for (const netsim::PacketLog::Entry& e : log.entries()) {
    if (e.layer != netsim::PacketLog::Layer::kAgent) continue;
    if (e.event == netsim::PacketLog::Event::kSend) {
      sent_at.emplace(e.uid, e.time);
    } else if (e.event == netsim::PacketLog::Event::kReceive) {
      const auto it = sent_at.find(e.uid);
      ASSERT_NE(it, sent_at.end()) << "receive without send, uid " << e.uid;
      delays.push_back((e.time - it->second).sec());
    }
  }
  ASSERT_GE(delays.size(), 20u) << "scenario delivered too little traffic";
  std::sort(delays.begin(), delays.end());

  const obs::StatsSnapshot snap = stats.snapshot();
  const auto* summary = snap.quantile("agt.delay.e2e");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->count, delays.size());
  EXPECT_EQ(summary->min, delays.front());
  EXPECT_EQ(summary->max, delays.back());

  const auto exact_of = [&](double q) {
    const std::size_t rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(q * delays.size())));
    return delays[rank - 1];
  };
  const auto check = [&](double q, double reported) {
    const double exact = exact_of(q);
    // The histogram reports the (clamped) upper bound of the bucket
    // holding the exact order statistic: never below it, never beyond
    // that bucket's edge.
    const int bucket = obs::QuantileHistogramData::bucket_index(exact);
    SCOPED_TRACE(::testing::Message()
                 << "q=" << q << " exact=" << exact << " bucket=" << bucket);
    EXPECT_GE(reported, exact);
    EXPECT_LE(reported,
              obs::QuantileHistogramData::bucket_upper_bound(bucket));
  };
  check(0.50, summary->p50);
  check(0.95, summary->p95);
  check(0.99, summary->p99);
}

TEST(TelemetryDeterminismTest, PerFlowQuantilesSumToAggregate) {
  TableIConfig config = short_config();
  obs::StatsRegistry stats;
  config.obs.stats = &stats;
  const std::vector<netsim::NodeId> senders{1, 2};
  run_table1_concurrent(config, senders);

  const obs::StatsSnapshot snap = stats.snapshot();
  const auto* aggregate = snap.quantile("agt.delay.e2e");
  ASSERT_NE(aggregate, nullptr);
  std::uint64_t per_flow = 0;
  for (netsim::NodeId s : senders) {
    if (const auto* flow =
            snap.quantile("agt.delay.e2e.s" + std::to_string(s))) {
      per_flow += flow->count;
    }
  }
  EXPECT_EQ(per_flow, aggregate->count);
}

}  // namespace
}  // namespace cavenet::scenario
