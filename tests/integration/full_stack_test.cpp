// Full-stack integration: CA mobility under a moving VANET with each
// routing protocol; checks the paper's qualitative findings hold on a
// shortened Table-I scenario.
#include <gtest/gtest.h>

#include "scenario/table1.h"

namespace cavenet::scenario {
namespace {

TableIConfig base_config() {
  TableIConfig config;
  config.duration_s = 40.0;
  config.traffic_start_s = 8.0;
  config.traffic_stop_s = 35.0;
  config.sender = 3;
  config.seed = 5;
  return config;
}

TEST(FullStackTest, ReactiveProtocolsBeatProactiveOnPdr) {
  auto config = base_config();
  config.protocol = Protocol::kAodv;
  const auto aodv = run_table1(config);
  config.protocol = Protocol::kOlsr;
  const auto olsr = run_table1(config);
  config.protocol = Protocol::kDymo;
  const auto dymo = run_table1(config);

  // Paper Section IV-C: AODV and DYMO outperform OLSR.
  EXPECT_GT(aodv.pdr, olsr.pdr);
  EXPECT_GT(dymo.pdr, olsr.pdr);
}

TEST(FullStackTest, OlsrHasHighestControlOverhead) {
  auto config = base_config();
  config.protocol = Protocol::kAodv;
  const auto aodv = run_table1(config);
  config.protocol = Protocol::kOlsr;
  const auto olsr = run_table1(config);
  config.protocol = Protocol::kDymo;
  const auto dymo = run_table1(config);

  EXPECT_GT(olsr.control_bytes, aodv.control_bytes);
  EXPECT_GT(olsr.control_bytes, dymo.control_bytes);
}

TEST(FullStackTest, DymoAcquiresRoutesNoSlowerThanAodv) {
  // Paper: "the route searching time of DYMO is almost the same with OLSR
  // ... the delay of AODV is higher than DYMO". DYMO floods directly while
  // AODV walks an expanding ring, so DYMO's first delivery is not later.
  auto config = base_config();
  config.sender = 6;  // multi-hop: route acquisition is visible
  config.protocol = Protocol::kAodv;
  const auto aodv = run_table1(config);
  config.protocol = Protocol::kDymo;
  const auto dymo = run_table1(config);
  ASSERT_GE(aodv.first_delivery_delay_s, 0.0);
  ASSERT_GE(dymo.first_delivery_delay_s, 0.0);
  EXPECT_LE(dymo.first_delivery_delay_s, aodv.first_delivery_delay_s + 0.05);
}

TEST(FullStackTest, EveryProtocolSurvivesAllSenders) {
  // Jam-regime mobility (the Table-I default) partitions the ring; the
  // proactive protocol needs several TC rounds before any route exists,
  // so give the run the paper's full traffic window shape (scaled down).
  auto config = base_config();
  for (const Protocol protocol :
       {Protocol::kAodv, Protocol::kOlsr, Protocol::kDymo}) {
    config.protocol = protocol;
    const auto results = run_all_senders(config, 1, 8);
    ASSERT_EQ(results.size(), 8u);
    int with_delivery = 0;
    for (const auto& r : results) {
      EXPECT_EQ(r.tx_packets, 135u);  // 5 pkt/s x 27 s
      if (r.rx_packets > 0) ++with_delivery;
    }
    // Most senders reach node 0 despite the jam-induced partitions.
    EXPECT_GE(with_delivery, 4) << to_string(protocol);
  }
}

TEST(FullStackTest, MacRetriesOccurUnderMobility) {
  auto config = base_config();
  config.protocol = Protocol::kAodv;
  config.sender = 7;
  const auto result = run_table1(config);
  // A moving multi-hop path cannot be loss-free at the MAC layer.
  EXPECT_GT(result.mac_retries, 0u);
}

}  // namespace
}  // namespace cavenet::scenario
