// Full-stack integration: CA mobility under a moving VANET with each
// routing protocol; checks the paper's qualitative findings hold on a
// shortened Table-I scenario.
#include <gtest/gtest.h>

#include "netsim/packet_log.h"
#include "obs/kernel_profiler.h"
#include "obs/stats_registry.h"
#include "obs/trace_sink.h"
#include "scenario/run_record.h"
#include "scenario/table1.h"

namespace cavenet::scenario {
namespace {

TableIConfig base_config() {
  TableIConfig config;
  config.duration_s = 40.0;
  config.traffic_start_s = 8.0;
  config.traffic_stop_s = 35.0;
  config.sender = 3;
  config.seed = 5;
  return config;
}

TEST(FullStackTest, ReactiveProtocolsBeatProactiveOnPdr) {
  auto config = base_config();
  config.protocol = Protocol::kAodv;
  const auto aodv = run_table1(config);
  config.protocol = Protocol::kOlsr;
  const auto olsr = run_table1(config);
  config.protocol = Protocol::kDymo;
  const auto dymo = run_table1(config);

  // Paper Section IV-C: AODV and DYMO outperform OLSR.
  EXPECT_GT(aodv.pdr, olsr.pdr);
  EXPECT_GT(dymo.pdr, olsr.pdr);
}

TEST(FullStackTest, OlsrHasHighestControlOverhead) {
  auto config = base_config();
  config.protocol = Protocol::kAodv;
  const auto aodv = run_table1(config);
  config.protocol = Protocol::kOlsr;
  const auto olsr = run_table1(config);
  config.protocol = Protocol::kDymo;
  const auto dymo = run_table1(config);

  EXPECT_GT(olsr.control_bytes, aodv.control_bytes);
  EXPECT_GT(olsr.control_bytes, dymo.control_bytes);
}

TEST(FullStackTest, DymoAcquiresRoutesNoSlowerThanAodv) {
  // Paper: "the route searching time of DYMO is almost the same with OLSR
  // ... the delay of AODV is higher than DYMO". DYMO floods directly while
  // AODV walks an expanding ring, so DYMO's first delivery is not later.
  auto config = base_config();
  config.sender = 6;  // multi-hop: route acquisition is visible
  config.protocol = Protocol::kAodv;
  const auto aodv = run_table1(config);
  config.protocol = Protocol::kDymo;
  const auto dymo = run_table1(config);
  ASSERT_GE(aodv.first_delivery_delay_s, 0.0);
  ASSERT_GE(dymo.first_delivery_delay_s, 0.0);
  EXPECT_LE(dymo.first_delivery_delay_s, aodv.first_delivery_delay_s + 0.05);
}

TEST(FullStackTest, EveryProtocolSurvivesAllSenders) {
  // Jam-regime mobility (the Table-I default) partitions the ring; the
  // proactive protocol needs several TC rounds before any route exists,
  // so give the run the paper's full traffic window shape (scaled down).
  auto config = base_config();
  for (const Protocol protocol :
       {Protocol::kAodv, Protocol::kOlsr, Protocol::kDymo}) {
    config.protocol = protocol;
    const auto results = run_all_senders(config, 1, 8);
    ASSERT_EQ(results.size(), 8u);
    int with_delivery = 0;
    for (const auto& r : results) {
      EXPECT_EQ(r.tx_packets, 135u);  // 5 pkt/s x 27 s
      if (r.rx_packets > 0) ++with_delivery;
    }
    // Most senders reach node 0 despite the jam-induced partitions.
    EXPECT_GE(with_delivery, 4) << to_string(protocol);
  }
}

TEST(FullStackTest, MacRetriesOccurUnderMobility) {
  auto config = base_config();
  config.protocol = Protocol::kAodv;
  config.sender = 7;
  const auto result = run_table1(config);
  // A moving multi-hop path cannot be loss-free at the MAC layer.
  EXPECT_GT(result.mac_retries, 0u);
}

TEST(FullStackTest, StatsRegistryReconcilesWithPacketLog) {
  // Registry counters and PacketLog records are fed at the same call
  // sites, so the two independent observation paths must agree exactly.
  auto config = base_config();
  config.protocol = Protocol::kAodv;
  netsim::PacketLog log;
  obs::StatsRegistry stats;
  config.obs.packet_log = &log;
  config.obs.stats = &stats;
  const auto result = run_table1(config);
  ASSERT_GT(result.rx_packets, 0u);
  ASSERT_EQ(log.dropped(), 0u);  // under the default cap

  using Ev = netsim::PacketLog::Event;
  using Ly = netsim::PacketLog::Layer;
  EXPECT_EQ(stats.counter("mac.tx.data").value(),
            log.count(Ev::kSend, Ly::kMac));
  EXPECT_EQ(stats.counter("mac.rx.up").value(),
            log.count(Ev::kReceive, Ly::kMac));
  EXPECT_EQ(stats.counter("mac.drop.ifq_full").value() +
                stats.counter("mac.drop.retry_limit").value(),
            log.count(Ev::kDrop, Ly::kMac));
  EXPECT_EQ(stats.counter("rtr.tx.control").value(),
            log.count(Ev::kSend, Ly::kRouter));
  EXPECT_EQ(stats.counter("rtr.fwd.data").value(),
            log.count(Ev::kForward, Ly::kRouter));
  EXPECT_EQ(stats.counter("agt.rx.delivered").value(),
            log.count(Ev::kReceive, Ly::kAgent));

  // The app layer agrees with the flow metrics...
  EXPECT_EQ(stats.counter("agt.tx.cbr").value(), result.tx_packets);
  EXPECT_EQ(stats.counter("agt.rx.sink").value(), result.rx_packets);
  // ...and per-message-type counters partition the control total.
  EXPECT_EQ(stats.counter("aodv.hello.sent").value() +
                stats.counter("aodv.rreq.sent").value() +
                stats.counter("aodv.rrep.sent").value() +
                stats.counter("aodv.rerr.sent").value(),
            stats.counter("rtr.tx.control").value());
  // The run-level aggregates published post-run match the result struct.
  EXPECT_EQ(stats.counter("log.entries").value(), log.size());
  EXPECT_DOUBLE_EQ(stats.gauge("sim.events.dispatched").value(),
                   static_cast<double>(result.events_dispatched));
}

TEST(FullStackTest, ObservabilityRunProducesManifestAndTrace) {
  auto config = base_config();
  config.protocol = Protocol::kDymo;
  netsim::PacketLog log;
  obs::StatsRegistry stats;
  obs::ChromeTraceWriter trace;
  obs::KernelProfiler profiler;
  config.obs.packet_log = &log;
  config.obs.stats = &stats;
  config.obs.trace_sink = &trace;
  config.obs.profiler = &profiler;
  config.heartbeat_s = 10.0;
  const auto result = run_table1(config);

  // Profiler saw every dispatched event, attributed to real components.
  EXPECT_EQ(profiler.total_dispatches(), result.events_dispatched);
  EXPECT_GT(profiler.components().count("mac"), 0u);
  EXPECT_GT(profiler.components().count("phy"), 0u);
  EXPECT_GT(profiler.components().count("dymo"), 0u);
  EXPECT_GT(profiler.components().count("app.cbr"), 0u);

  // Trace mirrors the packet log (instants) plus heartbeat counters.
  EXPECT_GE(trace.size(), log.size());

  // The manifest embeds config, results and the stats snapshot.
  const obs::RunManifest manifest =
      make_run_manifest("full_stack", config, {result}, 0.5);
  EXPECT_EQ(manifest.param("protocol"), "DYMO");
  EXPECT_DOUBLE_EQ(manifest.metric("pdr"), result.pdr);
  EXPECT_EQ(manifest.stats.counter("mac.tx.data"),
            stats.counter("mac.tx.data").value());
  // And round-trips through JSON.
  const auto parsed = obs::RunManifest::from_json(manifest.to_json());
  EXPECT_EQ(parsed.stats.counter("mac.tx.data"),
            stats.counter("mac.tx.data").value());
}

}  // namespace
}  // namespace cavenet::scenario
