// Randomized stress / failure-injection tests: many random topologies,
// protocols and traffic patterns hammered through the full stack. The
// assertions are invariants, not exact values: conservation (delivered <=
// originated), stat consistency, determinism, and "no crash, no deadlock".
#include <gtest/gtest.h>

#include "routing/testbed.h"
#include "scenario/table1.h"

namespace cavenet {
namespace {

using namespace cavenet::literals;
using routing::test::Testbed;
using scenario::Protocol;

Testbed::ProtocolFactory factory_for(int kind) {
  switch (kind % 4) {
    case 0:
      return [](netsim::Simulator& sim, netsim::LinkLayer& link) {
        return std::make_unique<routing::aodv::AodvProtocol>(sim, link);
      };
    case 1:
      return [](netsim::Simulator& sim, netsim::LinkLayer& link) {
        return std::make_unique<routing::olsr::OlsrProtocol>(sim, link);
      };
    case 2:
      return [](netsim::Simulator& sim, netsim::LinkLayer& link) {
        return std::make_unique<routing::dymo::DymoProtocol>(sim, link);
      };
    default:
      return [](netsim::Simulator& sim, netsim::LinkLayer& link) {
        return std::make_unique<routing::dsdv::DsdvProtocol>(sim, link);
      };
  }
}

class RandomTopologyStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTopologyStress, InvariantsHoldUnderRandomTrafficAndMotion) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed, 0x5354);
  const auto protocol_kind = static_cast<int>(rng.uniform_int(4));
  const auto n = static_cast<std::size_t>(6 + rng.uniform_int(10));

  Testbed bed(seed);
  for (std::size_t i = 0; i < n; ++i) {
    bed.add_node({rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)},
                 factory_for(protocol_kind));
  }
  bed.start_all();

  // Random traffic: 30 packets between random pairs over 20 s.
  std::uint64_t originated = 0;
  for (int i = 0; i < 30; ++i) {
    const auto src = static_cast<netsim::NodeId>(rng.uniform_int(n));
    auto dst = static_cast<netsim::NodeId>(rng.uniform_int(n));
    if (dst == src) dst = (dst + 1) % n;
    const double at = rng.uniform(1.0, 20.0);
    bed.sim.schedule(SimTime::from_seconds(at), [&bed, src, dst] {
      bed.send_data(src, dst);
    });
    ++originated;
  }
  // Failure injection: teleport two random nodes mid-run (link breaks).
  for (int i = 0; i < 2; ++i) {
    const auto victim = static_cast<netsim::NodeId>(rng.uniform_int(n));
    const double at = rng.uniform(5.0, 15.0);
    const Vec2 target{rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)};
    bed.sim.schedule(SimTime::from_seconds(at), [&bed, victim, target] {
      bed.mobility(victim).move_to(target);
    });
  }

  bed.sim.run_until(40_s);

  // Conservation: nothing delivered that was never sent.
  EXPECT_LE(bed.delivered().size(), originated);
  // Stats consistency on every node.
  std::uint64_t total_originated = 0, total_delivered = 0;
  for (netsim::NodeId i = 0; i < n; ++i) {
    const routing::RoutingStats& s = bed.router(i).stats();
    total_originated += s.data_originated;
    total_delivered += s.data_delivered;
    EXPECT_LE(s.delivered_hops_sum, s.data_delivered * 32);
    const mac::MacStats& m = bed.mac(i).stats();
    EXPECT_LE(m.data_tx_success + m.data_tx_failed, m.data_tx_attempts + 1);
  }
  EXPECT_EQ(total_originated, originated);
  EXPECT_EQ(total_delivered, bed.delivered().size());
  // The event loop drained (no livelock): hello timers keep the queue
  // non-empty, but the clock reached the horizon.
  EXPECT_EQ(bed.sim.now(), 40_s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologyStress,
                         ::testing::Range<std::uint64_t>(1, 13));

class ScenarioDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScenarioDeterminism, IdenticalSeedsBitwiseIdenticalResults) {
  scenario::TableIConfig config;
  config.protocol = static_cast<Protocol>(GetParam() % 4);
  config.sender = static_cast<netsim::NodeId>(1 + GetParam() % 8);
  config.seed = GetParam();
  config.duration_s = 25.0;
  config.traffic_start_s = 5.0;
  config.traffic_stop_s = 20.0;
  const auto a = scenario::run_table1(config);
  const auto b = scenario::run_table1(config);
  EXPECT_EQ(a.rx_packets, b.rx_packets);
  EXPECT_EQ(a.goodput_bps, b.goodput_bps);
  EXPECT_EQ(a.control_packets, b.control_packets);
  EXPECT_EQ(a.mac_retries, b.mac_retries);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_DOUBLE_EQ(a.mean_delay_s, b.mean_delay_s);
  EXPECT_DOUBLE_EQ(a.mean_hop_count, b.mean_hop_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioDeterminism,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(SchedulerStress, TenThousandInterleavedTimersDrainInOrder) {
  netsim::Simulator sim(1);
  Rng rng(2);
  SimTime last = SimTime::zero();
  int fired = 0;
  std::vector<netsim::EventId> cancellable;
  for (int i = 0; i < 10000; ++i) {
    const auto at = SimTime::microseconds(
        static_cast<std::int64_t>(rng.uniform_int(1'000'000)));
    auto id = sim.schedule_at(at, [&sim, &last, &fired] {
      EXPECT_GE(sim.now(), last);
      last = sim.now();
      ++fired;
    });
    if (i % 7 == 0) cancellable.push_back(id);
  }
  for (auto& id : cancellable) id.cancel();
  sim.run();
  EXPECT_EQ(fired, 10000 - static_cast<int>(cancellable.size()));
}

}  // namespace
}  // namespace cavenet
