#include "core/grid_road.h"

#include <set>

#include <gtest/gtest.h>

#include "trace/connectivity.h"
#include "trace/trace_generator.h"

namespace cavenet::ca {
namespace {

GridRoadConfig small_grid() {
  GridRoadConfig config;
  config.horizontal_lanes = 2;
  config.vertical_lanes = 2;
  config.block_cells = 20;  // 150 m blocks
  config.vehicles_per_lane = 5;
  config.seed = 3;
  return config;
}

TEST(GridRoadTest, RejectsBadDimensions) {
  GridRoadConfig config = small_grid();
  config.horizontal_lanes = 0;
  EXPECT_THROW(GridRoad{config}, std::invalid_argument);
  config = small_grid();
  config.green_period_steps = 0;
  EXPECT_THROW(GridRoad{config}, std::invalid_argument);
}

TEST(GridRoadTest, BuildsAllLanesAndVehicles) {
  GridRoad grid(small_grid());
  EXPECT_EQ(grid.road().lane_count(), 4u);
  EXPECT_EQ(grid.vehicle_count(), 20u);
  EXPECT_DOUBLE_EQ(grid.width_m(), 2 * 20 * 7.5);
  EXPECT_DOUBLE_EQ(grid.height_m(), 2 * 20 * 7.5);
}

TEST(GridRoadTest, LanesLieOnTheGridGeometry) {
  GridRoad grid(small_grid());
  const auto states = grid.road().states();
  const double block_m = 150.0;
  for (const auto& s : states) {
    if (s.lane < 2) {
      // Horizontal lanes: y is an exact block line.
      EXPECT_TRUE(s.position.y == 0.0 || s.position.y == block_m)
          << "lane " << s.lane << " y=" << s.position.y;
    } else {
      EXPECT_TRUE(s.position.x == 0.0 || s.position.x == block_m)
          << "lane " << s.lane << " x=" << s.position.x;
    }
  }
}

TEST(GridRoadTest, SignalsAlternatePhases) {
  GridRoadConfig config = small_grid();
  config.green_period_steps = 5;
  GridRoad grid(config);
  std::set<bool> phases;
  int flips = 0;
  bool last = grid.horizontal_green();
  for (int i = 0; i < 30; ++i) {
    grid.step();
    phases.insert(grid.horizontal_green());
    if (grid.horizontal_green() != last) {
      last = grid.horizontal_green();
      ++flips;
    }
  }
  EXPECT_EQ(phases.size(), 2u);
  EXPECT_GE(flips, 5);
}

TEST(GridRoadTest, RedLanesQueueAtCrossings) {
  // Freeze the signal on horizontal-green long enough and the vertical
  // lanes must stop completely while horizontal traffic flows.
  GridRoadConfig config = small_grid();
  config.green_period_steps = 1000;  // never flips within the test
  config.slowdown_p = 0.0;
  GridRoad grid(config);
  for (int i = 0; i < 60; ++i) grid.step();
  const double h_velocity =
      (grid.road().lane(0).average_velocity() +
       grid.road().lane(1).average_velocity()) / 2.0;
  const double v_velocity =
      (grid.road().lane(2).average_velocity() +
       grid.road().lane(3).average_velocity()) / 2.0;
  EXPECT_GT(h_velocity, 2.0);
  EXPECT_LT(v_velocity, 0.5);  // queued behind red crossings
}

TEST(GridRoadTest, VehicleCountConservedUnderSignals) {
  GridRoad grid(small_grid());
  for (int i = 0; i < 200; ++i) {
    grid.step();
    ASSERT_EQ(grid.vehicle_count(), 20u);
    for (std::size_t k = 0; k < 4; ++k) {
      std::int64_t prev = -1;
      for (const Vehicle& v : grid.road().lane(k).vehicles()) {
        ASSERT_GT(v.cell, prev);  // exclusion holds with blocked cells
        prev = v.cell;
      }
    }
  }
}

TEST(GridRoadTest, TraceGenerationViaPreStepHook) {
  GridRoad grid(small_grid());
  trace::TraceGeneratorOptions options;
  options.steps = 40;
  options.pre_step = [&grid](Road& road) { grid.apply_signals(road); };
  const auto mobility = trace::generate_trace(grid.road(), options);
  EXPECT_EQ(mobility.node_count(), 20u);
  EXPECT_FALSE(mobility.events.empty());
  // Node positions stay inside the grid bounding box (plus delta offset).
  const auto paths = trace::compile_paths(mobility);
  for (const auto& path : paths) {
    for (double t = 0.0; t <= 40.0; t += 1.0) {
      const Vec2 p = path.position(t);
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, grid.width_m() + 2.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, grid.height_m() + 2.0);
    }
  }
}

}  // namespace
}  // namespace cavenet::ca
