#include "core/space_time.h"

#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/velocity_series.h"

namespace cavenet::ca {
namespace {

NasParams params(std::int64_t cells, double p) {
  NasParams out;
  out.lane_length = cells;
  out.slowdown_p = p;
  return out;
}

TEST(SpaceTimeRasterTest, RejectsBadLaneLength) {
  EXPECT_THROW(SpaceTimeRaster(0), std::invalid_argument);
}

TEST(SpaceTimeRasterTest, RejectsMismatchedLane) {
  SpaceTimeRaster raster(50);
  NasLane lane(params(60, 0.0), 5);
  EXPECT_THROW(raster.record(lane), std::invalid_argument);
}

TEST(SpaceTimeRasterTest, RecordsRowsWithOccupancy) {
  NasLane lane(params(40, 0.0), 8, InitialPlacement::kEven);
  const auto raster = record_space_time(lane, 10);
  EXPECT_EQ(raster.rows(), 10);
  EXPECT_EQ(raster.lane_length(), 40);
  for (std::int64_t row = 0; row < raster.rows(); ++row) {
    int occupied = 0;
    for (std::int64_t site = 0; site < 40; ++site) {
      if (raster.at(row, site) >= 0) ++occupied;
    }
    EXPECT_EQ(occupied, 8);
  }
}

TEST(SpaceTimeRasterTest, JammedFractionExtremes) {
  // Full jam: everything stopped.
  NasLane jammed(params(10, 0.0), 10, InitialPlacement::kJam);
  SpaceTimeRaster raster(10);
  raster.record(jammed);
  EXPECT_DOUBLE_EQ(raster.jammed_fraction(0), 1.0);

  // Free flow after warm-up: nobody stopped.
  NasLane free(params(100, 0.0), 5, InitialPlacement::kEven);
  free.run(30);
  SpaceTimeRaster raster2(100);
  raster2.record(free);
  EXPECT_DOUBLE_EQ(raster2.jammed_fraction(0), 0.0);
}

TEST(SpaceTimeRasterTest, AsciiRenderHasOneLinePerStep) {
  NasLane lane(params(50, 0.3), 10, InitialPlacement::kRandom, Rng(1));
  const auto raster = record_space_time(lane, 5);
  std::ostringstream out;
  raster.render_ascii(out, 50);
  int lines = 0;
  for (const char c : out.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5);
}

TEST(SpaceTimeRasterTest, AsciiDownsamplesWideLanes) {
  NasLane lane(params(400, 0.0), 10, InitialPlacement::kEven);
  SpaceTimeRaster raster(400);
  raster.record(lane);
  std::ostringstream out;
  raster.render_ascii(out, 100);
  const std::string s = out.str();
  const std::size_t first_line = s.find('\n');
  EXPECT_LE(first_line, 100u);
}

TEST(SpaceTimeRasterTest, CsvListsOccupiedSitesOnly) {
  NasLane lane(params(20, 0.0), 2, InitialPlacement::kEven);
  SpaceTimeRaster raster(20);
  raster.record(lane);
  std::ostringstream out;
  raster.write_csv(out);
  int lines = 0;
  for (const char c : out.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3);  // header + 2 vehicles
}

TEST(SpaceTimeRasterTest, JamWavesMoveBackward) {
  // Start from a dense jam; the stopped region's left edge (upstream front)
  // moves to smaller site indices over time — the classic backward wave.
  NasLane lane(params(100, 0.0), 50, InitialPlacement::kJam);
  const auto raster = record_space_time(lane, 8);
  auto first_stopped_site = [&](std::int64_t row) {
    for (std::int64_t site = 0; site < 100; ++site) {
      if (raster.at(row, site) == 0) return site;
    }
    return std::int64_t{100};
  };
  // The jam head (first moving vehicle boundary) erodes from the front:
  // count of stopped vehicles decreases monotonically as the jam drains.
  auto stopped_count = [&](std::int64_t row) {
    int count = 0;
    for (std::int64_t site = 0; site < 100; ++site) {
      if (raster.at(row, site) == 0) ++count;
    }
    return count;
  };
  EXPECT_GT(stopped_count(0), stopped_count(7));
  (void)first_stopped_site;
}

TEST(VelocitySeriesTest, LengthAndDeterminism) {
  NasParams p = params(100, 0.3);
  const auto a = velocity_series(p, 0.2, 50, 42);
  const auto b = velocity_series(p, 0.2, 50, 42);
  ASSERT_EQ(a.size(), 50u);
  EXPECT_EQ(a, b);
  const auto c = velocity_series(p, 0.2, 50, 43);
  EXPECT_NE(a, c);
}

TEST(VelocitySeriesTest, ValuesWithinVmax) {
  NasParams p = params(100, 0.5);
  const auto series = velocity_series(p, 0.4, 100, 7);
  for (const double v : series) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 5.0);
  }
}

}  // namespace
}  // namespace cavenet::ca
