// Randomized SoA-vs-reference equivalence harness (PR 9 tentpole gate).
//
// step() runs the NaS update as vectorizable passes over the SoA
// LaneState; step_reference() is the seed's scalar kernel kept verbatim.
// Both consume the same RNG stream, so from identical seeds every step
// of every trajectory must match byte-for-byte: full Vehicle state in
// site order, the RNG-driven fields included. The matrix sweeps
// placements x boundaries x blocked cells x densities; any divergence
// prints the first mismatching step and vehicle.
#include "core/nas_lane.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/lane_simd.h"
#include "util/rng.h"

namespace cavenet::ca {
namespace {

struct Case {
  std::string name;
  std::int64_t lane_length;
  std::int64_t vehicles;
  double slowdown_p;
  Boundary boundary;
  InitialPlacement placement;
  std::vector<std::int64_t> blocked;
};

std::vector<Case> equivalence_cases() {
  std::vector<Case> cases;
  const auto add = [&](std::string name, std::int64_t length,
                       std::int64_t vehicles, double p, Boundary boundary,
                       InitialPlacement placement,
                       std::vector<std::int64_t> blocked = {}) {
    cases.push_back({std::move(name), length, vehicles, p, boundary, placement,
                     std::move(blocked)});
  };
  // Densities 0.05 / 0.3 / 0.8 on both boundaries, random placement.
  for (const auto boundary : {Boundary::kClosed, Boundary::kOpenShift}) {
    const char* b = boundary == Boundary::kClosed ? "closed" : "open";
    add(std::string("sparse_") + b, 400, 20, 0.3, boundary,
        InitialPlacement::kRandom);
    add(std::string("mid_") + b, 400, 120, 0.3, boundary,
        InitialPlacement::kRandom);
    add(std::string("dense_") + b, 400, 320, 0.3, boundary,
        InitialPlacement::kRandom);
    // Deterministic placements and the p = 0 / p = 1 slowdown ends.
    add(std::string("even_") + b, 100, 25, 0.0, boundary,
        InitialPlacement::kEven);
    add(std::string("jam_") + b, 100, 40, 1.0, boundary,
        InitialPlacement::kJam);
    // Blocked cells, including site 0 and a cell just past the midpoint.
    add(std::string("blocked_") + b, 200, 60, 0.25, boundary,
        InitialPlacement::kRandom, {0, 101, 199});
  }
  // Odd length + near-full ring: exercises the head rotation with
  // non-multiple-of-SIMD-width tails and constant wrapping.
  add("odd_full_closed", 97, 90, 0.5, Boundary::kClosed,
      InitialPlacement::kRandom);
  // Tiny lanes: n = 1 and n = 2 hit the lone-vehicle / seam-only paths.
  add("lone_closed", 50, 1, 0.4, Boundary::kClosed, InitialPlacement::kRandom);
  add("lone_open", 50, 1, 0.4, Boundary::kOpenShift, InitialPlacement::kRandom);
  add("pair_closed", 50, 2, 0.4, Boundary::kClosed, InitialPlacement::kRandom);
  add("pair_open_blocked", 50, 2, 0.4, Boundary::kOpenShift,
      InitialPlacement::kRandom, {0, 25});
  return cases;
}

void expect_identical(const NasLane& soa, const NasLane& ref,
                      const Case& c, std::uint64_t seed, int step) {
  ASSERT_EQ(soa.vehicle_count(), ref.vehicle_count());
  const auto a = soa.vehicles();
  const auto b = ref.vehicles();
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << c.name << " seed " << seed << " step " << step
                          << " site " << i << ": soa {id " << a[i].id
                          << " cell " << a[i].cell << " v " << a[i].velocity
                          << " gap " << a[i].gap << " wraps " << a[i].wraps
                          << "} ref {id " << b[i].id << " cell " << b[i].cell
                          << " v " << b[i].velocity << " gap " << b[i].gap
                          << " wraps " << b[i].wraps << "}";
  }
  // Derived observers must match to the bit, not just approximately.
  ASSERT_EQ(soa.average_velocity(), ref.average_velocity());
  ASSERT_EQ(soa.occupancy(), ref.occupancy());
}

TEST(NasSoaEquivalence, MatchesReferenceAcrossMatrix) {
  for (const Case& c : equivalence_cases()) {
    for (const std::uint64_t seed : {7ULL, 1234ULL, 987654321ULL}) {
      NasParams params;
      params.lane_length = c.lane_length;
      params.slowdown_p = c.slowdown_p;
      params.boundary = c.boundary;
      NasLane soa(params, c.vehicles, c.placement, Rng(seed));
      NasLane ref(params, c.vehicles, c.placement, Rng(seed));
      for (const std::int64_t cell : c.blocked) {
        soa.block_cell(cell);
        ref.block_cell(cell);
      }
      expect_identical(soa, ref, c, seed, -1);
      for (int step = 0; step < 120; ++step) {
        soa.step();
        ref.step_reference();
        expect_identical(soa, ref, c, seed, step);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

// Blocked cells toggling mid-run (a traffic light): both kernels must
// track the sorted blocked set identically through inserts and erases.
TEST(NasSoaEquivalence, MatchesReferenceWithTogglingBlocks) {
  NasParams params;
  params.lane_length = 150;
  params.slowdown_p = 0.3;
  params.boundary = Boundary::kClosed;
  NasLane soa(params, 50, InitialPlacement::kRandom, Rng(42));
  NasLane ref(params, 50, InitialPlacement::kRandom, Rng(42));
  for (int step = 0; step < 200; ++step) {
    const std::int64_t cell = (step * 37) % params.lane_length;
    if (step % 3 == 0) {
      soa.block_cell(cell);
      ref.block_cell(cell);
    } else if (step % 3 == 1) {
      soa.unblock_cell(cell);
      ref.unblock_cell(cell);
    }
    ASSERT_EQ(soa.is_blocked(cell), ref.is_blocked(cell));
    soa.step();
    ref.step_reference();
    const auto a = soa.vehicles();
    const auto b = ref.vehicles();
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "step " << step << " site " << i;
    }
  }
}

// Interleaving the two kernels on ONE lane must also be seamless: the
// SoA passes and the scalar kernel leave bit-identical state AND RNG
// cursor behind, so handing a lane back and forth cannot diverge from a
// lane stepped by either kernel alone.
TEST(NasSoaEquivalence, KernelsInterleaveOnOneLane) {
  NasParams params;
  params.lane_length = 200;
  params.slowdown_p = 0.4;
  params.boundary = Boundary::kClosed;
  NasLane mixed(params, 80, InitialPlacement::kRandom, Rng(99));
  NasLane pure(params, 80, InitialPlacement::kRandom, Rng(99));
  for (int step = 0; step < 100; ++step) {
    if (step % 2 == 0) {
      mixed.step();
    } else {
      mixed.step_reference();
    }
    pure.step();
    const auto a = mixed.vehicles();
    const auto b = pure.vehicles();
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "step " << step << " site " << i;
    }
  }
}

// The SIMD primitives themselves against straight scalar loops, over
// lengths that cover every tail-remainder class of the vector width.
TEST(NasSoaEquivalence, SimdPrimitivesMatchScalar) {
  Rng rng(2024);
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 64u,
                        100u, 1000u}) {
    std::vector<std::int64_t> cell(n);
    std::vector<std::int32_t> velocity(n);
    std::int64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += 1 + static_cast<std::int64_t>(rng.uniform_int(5));
      cell[i] = acc;
      velocity[i] = static_cast<std::int32_t>(rng.uniform_int(6));
    }

    std::vector<std::int64_t> gap(n, -777), gap_ref(n, -777);
    simd::gap_shifted_diff(cell.data(), gap.data(), n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      gap_ref[i] = cell[i + 1] - cell[i] - 1;
    }
    EXPECT_EQ(gap, gap_ref) << "gap n=" << n;

    std::vector<std::int32_t> vel = velocity, vel_ref = velocity;
    gap[n - 1] = 3;  // give the tail a real gap before the velocity pass
    simd::velocity_min_clamp(vel.data(), gap.data(), 5, n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::int32_t accel = std::min(vel_ref[i] + 1, 5);
      vel_ref[i] = static_cast<std::int32_t>(
          std::min<std::int64_t>(accel, gap[i]));
    }
    EXPECT_EQ(vel, vel_ref) << "velocity n=" << n;

    // The fused pass must equal the two separate passes on the interior
    // and leave the tail entry (the caller's patch site) untouched.
    std::vector<std::int64_t> gap_fused(n, -777);
    std::vector<std::int32_t> vel_fused = velocity;
    simd::gap_clamp(cell.data(), gap_fused.data(), vel_fused.data(), 5, n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      EXPECT_EQ(gap_fused[i], gap_ref[i]) << "fused gap n=" << n << " i=" << i;
      EXPECT_EQ(vel_fused[i], vel_ref[i]) << "fused vel n=" << n << " i=" << i;
    }
    EXPECT_EQ(gap_fused[n - 1], -777) << "fused tail gap n=" << n;
    EXPECT_EQ(vel_fused[n - 1], velocity[n - 1]) << "fused tail vel n=" << n;

    std::vector<std::int64_t> moved = cell, moved_ref = cell;
    simd::advance_cells(moved.data(), vel.data(), n);
    for (std::size_t i = 0; i < n; ++i) moved_ref[i] += vel[i];
    EXPECT_EQ(moved, moved_ref) << "advance n=" << n;

    std::int64_t sum_ref = 0;
    std::size_t moving_ref = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sum_ref += vel[i];
      moving_ref += vel[i] > 0;
    }
    EXPECT_EQ(simd::sum_velocity(vel.data(), n), sum_ref) << "sum n=" << n;
    EXPECT_EQ(simd::count_moving(vel.data(), n), moving_ref)
        << "count n=" << n;

    // compress_moving: ascending moving indices, split at an arbitrary
    // point the way the slowdown pass splits at the ring head. The
    // scratch needs room for the full range (8-wide store slack).
    for (const std::size_t split : {std::size_t{0}, n / 2, n}) {
      std::vector<std::uint32_t> packed(n, 9999);
      std::size_t m = simd::compress_moving(vel.data(), split, n,
                                            packed.data());
      m += simd::compress_moving(vel.data(), 0, split, packed.data() + m);
      std::vector<std::uint32_t> packed_ref;
      for (std::size_t i = split; i < n; ++i) {
        if (vel[i] > 0) packed_ref.push_back(static_cast<std::uint32_t>(i));
      }
      for (std::size_t i = 0; i < split; ++i) {
        if (vel[i] > 0) packed_ref.push_back(static_cast<std::uint32_t>(i));
      }
      ASSERT_EQ(m, packed_ref.size()) << "compress n=" << n << " split="
                                      << split;
      packed.resize(m);
      EXPECT_EQ(packed, packed_ref) << "compress n=" << n << " split="
                                    << split;
    }
  }
}

// Saturation edge: gaps beyond int32 range clamp instead of wrapping.
TEST(NasSoaEquivalence, VelocityClampSaturatesHugeGaps) {
  std::vector<std::int64_t> gap = {std::int64_t{1} << 40,
                                   std::int64_t{1} << 33,
                                   2147483647LL,
                                   2147483648LL,
                                   0,
                                   1,
                                   std::int64_t{1} << 50,
                                   3};
  std::vector<std::int32_t> vel = {0, 1, 2, 3, 4, 5, 0, 1};
  simd::velocity_min_clamp(vel.data(), gap.data(), 5, gap.size());
  EXPECT_EQ(vel, (std::vector<std::int32_t>{1, 2, 3, 4, 0, 1, 1, 2}));
}

}  // namespace
}  // namespace cavenet::ca
