#include "core/lane_transform.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

namespace cavenet::ca {
namespace {

void expect_vec_near(Vec2 actual, Vec2 expected, double tolerance = 1e-12) {
  EXPECT_NEAR(actual.x, expected.x, tolerance);
  EXPECT_NEAR(actual.y, expected.y, tolerance);
}

TEST(LaneTransformTest, IdentityLeavesPointsAlone) {
  const LaneTransform id;
  expect_vec_near(id.apply({3.0, -2.0}), {3.0, -2.0});
  EXPECT_EQ(id, LaneTransform::identity());
}

TEST(LaneTransformTest, Translation) {
  const auto t = LaneTransform::translation(10.0, -5.0);
  expect_vec_near(t.apply({1.0, 2.0}), {11.0, -3.0});
}

TEST(LaneTransformTest, Scaling) {
  const auto s = LaneTransform::scaling(2.0, 3.0);
  expect_vec_near(s.apply({1.0, 1.0}), {2.0, 3.0});
}

TEST(LaneTransformTest, RotationQuarterTurn) {
  const auto r = LaneTransform::rotation(std::numbers::pi / 2.0);
  expect_vec_near(r.apply({1.0, 0.0}), {0.0, 1.0});
  expect_vec_near(r.apply({0.0, 1.0}), {-1.0, 0.0});
}

TEST(LaneTransformTest, MirrorX) {
  expect_vec_near(LaneTransform::mirror_x().apply({2.0, 3.0}), {2.0, -3.0});
}

TEST(LaneTransformTest, SwapAxesMatchesPaperExample) {
  // Paper Section III-D: lane 3's matrix [[0 1 XS/2], [1 0 Delta], [0 0 1]]
  // maps (X_i, 0, 1) to (XS/2, X_i + Delta).
  const double xs = 1000.0;
  const double delta = 1.0;
  const LaneTransform lane3 =
      LaneTransform(0, 1, xs / 2, 1, 0, delta);
  expect_vec_near(lane3.apply({100.0, 0.0}), {xs / 2, 100.0 + delta});
  // The same matrix built compositionally.
  const LaneTransform composed =
      LaneTransform::translation(xs / 2, delta) * LaneTransform::swap_axes();
  expect_vec_near(composed.apply({100.0, 0.0}), {xs / 2, 100.0 + delta});
}

TEST(LaneTransformTest, CompositionOrderMatters) {
  const auto t = LaneTransform::translation(1.0, 0.0);
  const auto r = LaneTransform::rotation(std::numbers::pi / 2.0);
  // (r * t): translate first, then rotate.
  expect_vec_near((r * t).apply({0.0, 0.0}), {0.0, 1.0});
  // (t * r): rotate first, then translate.
  expect_vec_near((t * r).apply({0.0, 0.0}), {1.0, 0.0});
}

TEST(LaneTransformTest, CompositionIsAssociative) {
  const auto a = LaneTransform::rotation(0.3);
  const auto b = LaneTransform::translation(2.0, -1.0);
  const auto c = LaneTransform::scaling(0.5, 4.0);
  const Vec2 p{1.5, -2.5};
  expect_vec_near(((a * b) * c).apply(p), (a * (b * c)).apply(p), 1e-9);
}

TEST(LaneTransformTest, ComposedEqualsSequentialApplication) {
  const auto a = LaneTransform::rotation(1.1);
  const auto b = LaneTransform::translation(3.0, 4.0);
  const Vec2 p{2.0, 5.0};
  expect_vec_near((a * b).apply(p), a.apply(b.apply(p)), 1e-9);
}

TEST(LaneTransformTest, DirectionIgnoresTranslation) {
  const auto t = LaneTransform::translation(100.0, 200.0) *
                 LaneTransform::rotation(std::numbers::pi);
  expect_vec_near(t.apply_direction({1.0, 0.0}), {-1.0, 0.0}, 1e-12);
}

TEST(LaneTransformTest, MatrixAccessor) {
  const auto t = LaneTransform::translation(7.0, 8.0);
  const auto& m = t.matrix();
  EXPECT_DOUBLE_EQ(m[2], 7.0);
  EXPECT_DOUBLE_EQ(m[5], 8.0);
  EXPECT_DOUBLE_EQ(m[8], 1.0);
}

}  // namespace
}  // namespace cavenet::ca
