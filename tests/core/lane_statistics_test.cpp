#include "core/lane_statistics.h"

#include <gtest/gtest.h>

namespace cavenet::ca {
namespace {

NasParams params(std::int64_t cells, double p = 0.0) {
  NasParams out;
  out.lane_length = cells;
  out.slowdown_p = p;
  return out;
}

TEST(SnapshotStatsTest, EmptyLane) {
  NasLane lane(params(50), 0);
  const auto stats = snapshot_stats(lane);
  EXPECT_EQ(stats.mean_velocity, 0.0);
  EXPECT_EQ(stats.jam_clusters, 0u);
}

TEST(SnapshotStatsTest, EvenPlacementGaps) {
  NasLane lane(params(100), 10, InitialPlacement::kEven);
  const auto stats = snapshot_stats(lane);
  // 10 vehicles every 10 cells: every gap is 9.
  EXPECT_DOUBLE_EQ(stats.mean_gap, 9.0);
  EXPECT_DOUBLE_EQ(stats.max_gap, 9.0);
  EXPECT_EQ(stats.stopped, 10u);
  // All stopped but separated: each is its own "cluster start" by the
  // adjacency rule, so clusters == stopped count.
  EXPECT_EQ(stats.jam_clusters, 10u);
}

TEST(SnapshotStatsTest, SingleJamBlockIsOneCluster) {
  NasLane lane(params(100), 8, InitialPlacement::kJam);
  const auto stats = snapshot_stats(lane);
  EXPECT_EQ(stats.stopped, 8u);
  EXPECT_EQ(stats.jam_clusters, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_gap, (100.0 - 8.0) / 8.0);
  EXPECT_DOUBLE_EQ(stats.max_gap, 92.0);
}

TEST(SnapshotStatsTest, FullRingIsOneCluster) {
  NasLane lane(params(10), 10, InitialPlacement::kJam);
  const auto stats = snapshot_stats(lane);
  EXPECT_EQ(stats.stopped, 10u);
  EXPECT_EQ(stats.jam_clusters, 1u);
}

TEST(SnapshotStatsTest, FreeFlowHasNoClusters) {
  NasLane lane(params(100), 5, InitialPlacement::kEven);
  lane.run(30);
  const auto stats = snapshot_stats(lane);
  EXPECT_EQ(stats.stopped, 0u);
  EXPECT_EQ(stats.jam_clusters, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_velocity, 5.0);
  EXPECT_DOUBLE_EQ(stats.velocity_stddev, 0.0);
}

TEST(LaneStatisticsTest, GapExceedanceIsMonotone) {
  NasLane lane(params(200, 0.5), 40, InitialPlacement::kRandom, Rng(3));
  LaneStatistics stats(lane.params());
  for (int i = 0; i < 100; ++i) {
    lane.step();
    stats.record(lane);
  }
  EXPECT_EQ(stats.samples(), 100u);
  EXPECT_DOUBLE_EQ(stats.gap_exceedance(0), 1.0);
  double prev = 1.0;
  for (std::int64_t g = 1; g <= 50; g += 7) {
    const double p = stats.gap_exceedance(g);
    EXPECT_LE(p, prev);
    prev = p;
  }
}

TEST(LaneStatisticsTest, VelocityProbabilitiesSumToOne) {
  NasLane lane(params(150, 0.3), 30, InitialPlacement::kRandom, Rng(4));
  LaneStatistics stats(lane.params());
  for (int i = 0; i < 50; ++i) {
    lane.step();
    stats.record(lane);
  }
  double sum = 0.0;
  for (std::int32_t v = 0; v <= 5; ++v) sum += stats.velocity_probability(v);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_EQ(stats.velocity_probability(-1), 0.0);
  EXPECT_EQ(stats.velocity_probability(6), 0.0);
}

TEST(LaneStatisticsTest, MultiGapFractionDetectsPartitions) {
  // Even spacing of 30 vehicles on 400 cells: every gap ~12 cells, so no
  // gap ever reaches 34 cells (250 m) without jamming.
  NasLane calm(params(400, 0.1), 30, InitialPlacement::kEven, Rng(5));
  LaneStatistics calm_stats(calm.params());
  for (int i = 0; i < 200; ++i) {
    calm.step();
    calm_stats.record(calm);
  }
  // Jam-regime traffic clusters vehicles, opening multiple radio-range
  // gaps simultaneously — the ring-partition condition.
  NasLane jammy(params(400, 0.7), 30, InitialPlacement::kRandom, Rng(5));
  LaneStatistics jammy_stats(jammy.params());
  for (int i = 0; i < 200; ++i) {
    jammy.step();
    jammy_stats.record(jammy);
  }
  const std::int64_t range_cells = 34;  // 250 m / 7.5 m
  EXPECT_LT(calm_stats.multi_gap_fraction(range_cells, 2),
            jammy_stats.multi_gap_fraction(range_cells, 2));
  EXPECT_GT(jammy_stats.multi_gap_fraction(range_cells, 2), 0.2);
}

TEST(LaneStatisticsTest, JamClustersGrowWithP) {
  NasLane calm(params(300, 0.1), 60, InitialPlacement::kRandom, Rng(6));
  NasLane noisy(params(300, 0.7), 60, InitialPlacement::kRandom, Rng(6));
  LaneStatistics calm_stats(calm.params());
  LaneStatistics noisy_stats(noisy.params());
  for (int i = 0; i < 100; ++i) {
    calm.step();
    noisy.step();
    calm_stats.record(calm);
    noisy_stats.record(noisy);
  }
  EXPECT_LT(calm_stats.mean_jam_clusters(), noisy_stats.mean_jam_clusters());
}

}  // namespace
}  // namespace cavenet::ca
