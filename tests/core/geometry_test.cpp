#include "core/geometry.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include <gtest/gtest.h>

namespace cavenet::ca {
namespace {

TEST(LineGeometryTest, RejectsNonPositiveLength) {
  EXPECT_THROW(LineGeometry(0.0), std::invalid_argument);
  EXPECT_THROW(LineGeometry(-5.0), std::invalid_argument);
}

TEST(LineGeometryTest, MapsArcToXAxis) {
  const LineGeometry line(100.0);
  EXPECT_DOUBLE_EQ(line.position(0.0).x, 0.0);
  EXPECT_DOUBLE_EQ(line.position(42.0).x, 42.0);
  EXPECT_DOUBLE_EQ(line.position(42.0).y, 0.0);
  EXPECT_FALSE(line.wrap_continuous());
}

TEST(LineGeometryTest, HeadingIsUnitX) {
  const LineGeometry line(100.0);
  EXPECT_DOUBLE_EQ(line.heading(50.0).x, 1.0);
  EXPECT_DOUBLE_EQ(line.heading(50.0).y, 0.0);
}

TEST(LineGeometryTest, TransformAppliesToPositionsAndHeadings) {
  const auto transform = LaneTransform::translation(0.0, 10.0) *
                         LaneTransform::rotation(std::numbers::pi / 2.0);
  const LineGeometry line(100.0, transform);
  const Vec2 p = line.position(5.0);
  EXPECT_NEAR(p.x, 0.0, 1e-12);
  EXPECT_NEAR(p.y, 15.0, 1e-12);
  const Vec2 h = line.heading(5.0);
  EXPECT_NEAR(h.x, 0.0, 1e-12);
  EXPECT_NEAR(h.y, 1.0, 1e-12);
}

TEST(LineGeometryTest, WrapIsSpatiallyDiscontinuous) {
  const LineGeometry line(100.0);
  // Start and end of the lane are 100 m apart: the first CAVENET's flaw.
  EXPECT_NEAR(distance(line.position(0.0), line.position(100.0)), 100.0, 1e-12);
}

TEST(CircuitGeometryTest, RejectsNonPositiveLength) {
  EXPECT_THROW(CircuitGeometry(0.0), std::invalid_argument);
}

TEST(CircuitGeometryTest, RadiusFromCircumference) {
  const CircuitGeometry circuit(3000.0);
  EXPECT_NEAR(circuit.radius(), 3000.0 / (2.0 * std::numbers::pi), 1e-9);
}

TEST(CircuitGeometryTest, PointsLieOnTheCircle) {
  const CircuitGeometry circuit(3000.0, {50.0, -20.0});
  for (const double arc : {0.0, 300.0, 1500.0, 2999.0}) {
    const Vec2 p = circuit.position(arc);
    EXPECT_NEAR(distance(p, {50.0, -20.0}), circuit.radius(), 1e-9);
  }
}

TEST(CircuitGeometryTest, WrapIsSpatiallyContinuous) {
  const CircuitGeometry circuit(3000.0);
  EXPECT_TRUE(circuit.wrap_continuous());
  // position(L) == position(0): the paper's improvement in one assertion.
  EXPECT_NEAR(distance(circuit.position(0.0), circuit.position(3000.0)), 0.0,
              1e-9);
}

TEST(CircuitGeometryTest, ArcLengthIsPreserved) {
  const CircuitGeometry circuit(1000.0);
  // Chord between two nearby arc points ~ arc difference.
  const Vec2 a = circuit.position(100.0);
  const Vec2 b = circuit.position(101.0);
  EXPECT_NEAR(distance(a, b), 1.0, 1e-3);
}

TEST(CircuitGeometryTest, HeadingIsTangentAndUnit) {
  const CircuitGeometry circuit(1000.0);
  for (const double arc : {0.0, 123.0, 456.0, 999.0}) {
    const Vec2 h = circuit.heading(arc);
    EXPECT_NEAR(h.norm(), 1.0, 1e-12);
    // Tangent is orthogonal to the radius vector.
    const Vec2 r = circuit.position(arc);
    EXPECT_NEAR(h.dot(r), 0.0, 1e-9);
  }
}

TEST(GeometryFactoryTest, FactoriesProduceCorrectTypes) {
  const auto line = make_line(10.0);
  const auto circuit = make_circuit(10.0);
  EXPECT_FALSE(line->wrap_continuous());
  EXPECT_TRUE(circuit->wrap_continuous());
  EXPECT_DOUBLE_EQ(line->length_m(), 10.0);
  EXPECT_DOUBLE_EQ(circuit->length_m(), 10.0);
}

}  // namespace
}  // namespace cavenet::ca
