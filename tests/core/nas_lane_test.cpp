#include "core/nas_lane.h"

#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

namespace cavenet::ca {
namespace {

NasParams default_params(std::int64_t length = 100, double p = 0.0) {
  NasParams params;
  params.lane_length = length;
  params.slowdown_p = p;
  return params;
}

TEST(NasParamsTest, ValidationRejectsBadValues) {
  NasParams p;
  p.lane_length = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = NasParams{};
  p.v_max = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = NasParams{};
  p.slowdown_p = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = NasParams{};
  p.cell_length_m = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = NasParams{};
  p.dt_s = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(NasParamsTest, PaperUnits) {
  // v_max = 5 cells/step, 7.5 m cells, 1 s steps -> 135 km/h (paper Sec. III-A).
  const NasParams p;
  EXPECT_DOUBLE_EQ(p.v_max_kmh(), 135.0);
  EXPECT_DOUBLE_EQ(p.lane_length_m(), 3000.0);
}

TEST(NasLaneTest, RejectsTooManyVehicles) {
  EXPECT_THROW(NasLane(default_params(10), 11), std::invalid_argument);
  EXPECT_THROW(NasLane(default_params(10), -1), std::invalid_argument);
}

TEST(NasLaneTest, RandomPlacementGivesDistinctSortedCells) {
  NasLane lane(default_params(50), 30, InitialPlacement::kRandom, Rng(1));
  std::set<std::int64_t> cells;
  std::int64_t prev = -1;
  for (const Vehicle& v : lane.vehicles()) {
    EXPECT_GT(v.cell, prev);
    prev = v.cell;
    cells.insert(v.cell);
    EXPECT_GE(v.velocity, 0);
    EXPECT_LE(v.velocity, lane.params().v_max);
  }
  EXPECT_EQ(cells.size(), 30u);
}

TEST(NasLaneTest, EvenPlacementSpacing) {
  NasLane lane(default_params(100), 10, InitialPlacement::kEven);
  const auto vehicles = lane.vehicles();
  for (std::size_t i = 0; i < vehicles.size(); ++i) {
    EXPECT_EQ(vehicles[i].cell, static_cast<std::int64_t>(i) * 10);
    EXPECT_EQ(vehicles[i].velocity, 0);
  }
}

TEST(NasLaneTest, JamPlacementPacksFromZero) {
  NasLane lane(default_params(100), 5, InitialPlacement::kJam);
  const auto vehicles = lane.vehicles();
  for (std::size_t i = 0; i < vehicles.size(); ++i) {
    EXPECT_EQ(vehicles[i].cell, static_cast<std::int64_t>(i));
  }
}

TEST(NasLaneTest, DensityIsNOverL) {
  NasLane lane(default_params(200), 50, InitialPlacement::kEven);
  EXPECT_DOUBLE_EQ(lane.density(), 0.25);
}

TEST(NasLaneTest, LoneVehicleReachesAndHoldsVmax) {
  NasLane lane(default_params(100), 1, InitialPlacement::kEven);
  lane.run(10);
  EXPECT_EQ(lane.vehicles()[0].velocity, lane.params().v_max);
  EXPECT_DOUBLE_EQ(lane.average_velocity(), 5.0);
  EXPECT_DOUBLE_EQ(lane.average_velocity_ms(), 37.5);
}

TEST(NasLaneTest, DeterministicFreeFlowVelocity) {
  // At low density with p = 0 every vehicle eventually cruises at v_max.
  NasLane lane(default_params(100, 0.0), 10, InitialPlacement::kEven);
  lane.run(50);
  for (const Vehicle& v : lane.vehicles()) {
    EXPECT_EQ(v.velocity, lane.params().v_max);
  }
}

TEST(NasLaneTest, FullJamNeverMoves) {
  // Density 1: every site occupied, gaps are all zero.
  NasLane lane(default_params(20, 0.0), 20, InitialPlacement::kJam);
  lane.run(30);
  for (const Vehicle& v : lane.vehicles()) {
    EXPECT_EQ(v.velocity, 0);
  }
  EXPECT_DOUBLE_EQ(lane.flow(), 0.0);
}

TEST(NasLaneTest, JamDissolvesFromTheFront) {
  NasLane lane(default_params(100, 0.0), 10, InitialPlacement::kJam);
  lane.step();
  // After one step only the lead vehicle (largest cell) can have moved.
  int moved = 0;
  for (const Vehicle& v : lane.vehicles()) {
    if (v.velocity > 0) ++moved;
  }
  EXPECT_EQ(moved, 1);
}

TEST(NasLaneTest, OccupancyMatchesVehicles) {
  NasLane lane(default_params(30), 7, InitialPlacement::kRandom, Rng(2));
  const auto occ = lane.occupancy();
  std::size_t occupied = 0;
  for (const auto v : occ) {
    if (v >= 0) ++occupied;
  }
  EXPECT_EQ(occupied, 7u);
  for (const Vehicle& v : lane.vehicles()) {
    EXPECT_EQ(occ[static_cast<std::size_t>(v.cell)], v.velocity);
  }
}

TEST(NasLaneTest, VehicleByIdFindsAll) {
  NasLane lane(default_params(40), 8, InitialPlacement::kRandom, Rng(3));
  lane.run(20);
  for (std::uint32_t id = 0; id < 8; ++id) {
    EXPECT_EQ(lane.vehicle_by_id(id).id, id);
  }
  EXPECT_THROW(lane.vehicle_by_id(8), std::out_of_range);
}

TEST(NasLaneTest, WrapsAccumulateOnClosedLane) {
  NasLane lane(default_params(20, 0.0), 1, InitialPlacement::kEven);
  lane.run(100);  // a lone car at v=5 laps a 20-cell ring many times
  const Vehicle& v = lane.vehicles()[0];
  EXPECT_GT(v.wraps, 20);
  // Cumulative position is monotone: ~5 cells per step after warm-up.
  EXPECT_NEAR(lane.cumulative_position_m(v), 100 * 5 * 7.5, 5 * 7.5 * 5);
}

TEST(NasLaneTest, TimeStepCounts) {
  NasLane lane(default_params(), 5, InitialPlacement::kEven);
  EXPECT_EQ(lane.time_step(), 0);
  lane.run(13);
  EXPECT_EQ(lane.time_step(), 13);
}

TEST(NasLaneTest, SameSeedReproducesExactly) {
  NasLane a(default_params(100, 0.4), 30, InitialPlacement::kRandom, Rng(7));
  NasLane b(default_params(100, 0.4), 30, InitialPlacement::kRandom, Rng(7));
  for (int i = 0; i < 200; ++i) {
    a.step();
    b.step();
  }
  const auto va = a.vehicles();
  const auto vb = b.vehicles();
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) EXPECT_EQ(va[i], vb[i]);
}

TEST(NasLaneTest, SequentialUpdateDiffersFromParallel) {
  NasLane parallel(default_params(60, 0.0), 30, InitialPlacement::kJam);
  NasLane sequential(default_params(60, 0.0), 30, InitialPlacement::kJam);
  for (int i = 0; i < 5; ++i) {
    parallel.step();
    sequential.step_sequential();
  }
  // Sequential update lets followers react within the same step, so the
  // jam dissolves faster — average velocity is strictly higher.
  EXPECT_GT(sequential.average_velocity(), parallel.average_velocity());
}

TEST(NasLaneTest, OpenShiftReseatsAtHeadOfLane) {
  NasParams params = default_params(20, 0.0);
  params.boundary = Boundary::kOpenShift;
  NasLane lane(params, 3, InitialPlacement::kEven);
  // Run long enough for the lead vehicle to exit several times.
  std::int64_t total_wraps = 0;
  for (int i = 0; i < 50; ++i) {
    lane.step();
    std::set<std::int64_t> cells;
    for (const Vehicle& v : lane.vehicles()) {
      // No overlaps ever, and positions stay on the lane.
      EXPECT_TRUE(cells.insert(v.cell).second);
      EXPECT_GE(v.cell, 0);
      EXPECT_LT(v.cell, params.lane_length);
    }
  }
  for (const Vehicle& v : lane.vehicles()) total_wraps += v.wraps;
  EXPECT_GT(total_wraps, 0);
}

TEST(NasLaneTest, StochasticSlowdownReducesMeanVelocity) {
  NasLane calm(default_params(200, 0.0), 20, InitialPlacement::kEven, Rng(1));
  NasLane noisy(default_params(200, 0.5), 20, InitialPlacement::kEven, Rng(1));
  double calm_sum = 0.0, noisy_sum = 0.0;
  for (int i = 0; i < 300; ++i) {
    calm.step();
    noisy.step();
    calm_sum += calm.average_velocity();
    noisy_sum += noisy.average_velocity();
  }
  EXPECT_GT(calm_sum, noisy_sum * 1.1);
}

// Regression: step_sequential used to apply the closed-boundary wrap
// (cell -= L in place) on open lanes too, teleporting the leader mid-lane
// — potentially onto an occupied cell. Open lanes must use the kOpenShift
// re-seat semantics: first free site from the head, standstill.
TEST(NasLaneTest, SequentialOpenBoundaryReseatsInsteadOfWrapping) {
  NasParams params = default_params(20, 0.0);
  params.boundary = Boundary::kOpenShift;
  // Jam at the head: sites 0..4 occupied, leader at 4.
  NasLane lane(params, 5, InitialPlacement::kJam, Rng(3));
  for (int step = 0; step < 30; ++step) {
    lane.step_sequential();
    std::set<std::int64_t> cells;
    for (const Vehicle& v : lane.vehicles()) {
      // Every cell stays on the lane...
      ASSERT_GE(v.cell, 0) << "step " << step;
      ASSERT_LT(v.cell, params.lane_length) << "step " << step;
      // ...and no two vehicles ever share one (the old in-place wrap
      // could collide a wrapped leader with a vehicle near site 0).
      ASSERT_TRUE(cells.insert(v.cell).second)
          << "step " << step << ": duplicate cell " << v.cell;
    }
  }
  // The leaders did drive past the end (wraps accumulated) and were
  // re-seated at standstill rather than carried across with velocity.
  std::int64_t total_wraps = 0;
  for (const Vehicle& v : lane.vehicles()) total_wraps += v.wraps;
  EXPECT_GT(total_wraps, 0);
}

TEST(NasLaneTest, SequentialLoneOpenVehicleSeesOpenRoad) {
  NasParams params = default_params(10, 0.0);
  params.boundary = Boundary::kOpenShift;
  NasLane lane(params, 1, InitialPlacement::kJam, Rng(1));
  // gap = L on an open lane (not L-1): the vehicle accelerates every
  // step until v_max even while wrapping through re-seats.
  for (int i = 0; i < 5; ++i) lane.step_sequential();
  EXPECT_EQ(lane.vehicles()[0].gap, params.lane_length);
}

// kOpenShift landing-site collision: rule 2 ignores vehicles near site 0,
// so a fast leader can "land" on an occupied cell — it must be re-seated
// on the first FREE site instead, at velocity 0.
TEST(NasLaneTest, OpenShiftLandingOnOccupiedSiteForcesReseat) {
  NasParams params = default_params(10, 0.0);
  params.v_max = 5;
  params.boundary = Boundary::kOpenShift;
  // Sites 0 and 1 occupied by a standing pair (they accelerate slowly);
  // leader at site 8 with open road ahead drives past the end.
  NasLane lane(params, 3, InitialPlacement::kJam, Rng(1));
  // Jam places vehicles at 0, 1, 2. Step until a leader wraps; on the
  // step a vehicle's wrap count rises it was re-seated: on-lane, on a
  // free site, at standstill.
  std::vector<std::int64_t> last_wraps(3, 0);
  int reseats = 0;
  for (int step = 0; step < 30; ++step) {
    lane.step();
    std::set<std::int64_t> cells;
    for (const Vehicle& v : lane.vehicles()) {
      ASSERT_TRUE(cells.insert(v.cell).second)
          << "step " << step << ": two vehicles on cell " << v.cell;
      ASSERT_GE(v.cell, 0);
      ASSERT_LT(v.cell, params.lane_length);
      if (v.wraps > last_wraps[v.id]) {
        ++reseats;
        EXPECT_EQ(v.velocity, 0)
            << "step " << step << ": re-seated vehicle kept velocity";
      }
      last_wraps[v.id] = v.wraps;
    }
  }
  EXPECT_GT(reseats, 0);
}

TEST(NasLaneTest, BlockedCellAtSiteZeroOnClosedRing) {
  NasParams params = default_params(30, 0.0);
  params.boundary = Boundary::kClosed;
  NasLane lane(params, 3, InitialPlacement::kEven, Rng(1));
  lane.block_cell(0);
  EXPECT_TRUE(lane.is_blocked(0));
  for (int step = 0; step < 100; ++step) {
    lane.step();
    for (const Vehicle& v : lane.vehicles()) {
      // Nobody may ever sit on the blocked site; the ring wrap of
      // gap_to_block (blocked.front() + L - cell - 1) must stop the
      // vehicle approaching site 0 from the high end of the ring.
      ASSERT_NE(v.cell, 0) << "step " << step;
    }
  }
  // Traffic piles up behind the obstacle: the lane ends jammed.
  EXPECT_EQ(lane.average_velocity(), 0.0);
  const auto& vehicles = lane.vehicles();
  EXPECT_EQ(vehicles[vehicles.size() - 1].cell, params.lane_length - 1);
}

TEST(NasLaneTest, LoneVehicleWithBlockedCellBehindIt) {
  NasParams params = default_params(40, 0.0);
  params.boundary = Boundary::kClosed;
  NasLane lane(params, 1, InitialPlacement::kJam, Rng(1));  // at site 0
  lane.block_cell(39);  // behind the vehicle (ahead only across the wrap)
  for (int step = 0; step < 60; ++step) {
    lane.step();
    const Vehicle& v = lane.vehicles()[0];
    // The lone-vehicle gap (L - 1 on a ring) must still be capped by the
    // circular gap_to_block: the obstacle is "ahead" across the wrap.
    ASSERT_NE(v.cell, 39) << "step " << step;
    ASSERT_GE(v.cell, 0);
    ASSERT_LT(v.cell, params.lane_length);
  }
  // An obstacle is impassable for a lone vehicle: it drives up to the
  // site before it and parks there — it never wraps.
  EXPECT_EQ(lane.vehicles()[0].cell, 38);
  EXPECT_EQ(lane.vehicles()[0].velocity, 0);
  EXPECT_EQ(lane.vehicles()[0].wraps, 0);
}

TEST(NasLaneTest, VehicleByIdRejectsUnknownId) {
  NasLane lane(default_params(), 4, InitialPlacement::kEven, Rng(1));
  EXPECT_THROW(lane.vehicle_by_id(4), std::out_of_range);
  EXPECT_EQ(lane.vehicle_by_id(3).id, 3u);
}

TEST(NasLaneTest, ExportCumulativePositionsMatchesScalarObserver) {
  NasLane lane(default_params(120, 0.3), 45, InitialPlacement::kRandom,
               Rng(77));
  lane.run(50);
  std::vector<double> out(static_cast<std::size_t>(lane.vehicle_count()));
  lane.export_cumulative_positions_m({out.data(), out.size()});
  for (const Vehicle& v : lane.vehicles()) {
    EXPECT_EQ(out[v.id], lane.cumulative_position_m(v)) << "id " << v.id;
  }
}

TEST(NasLaneTest, StatsCountersTrackStepping) {
  obs::StatsRegistry registry;
  NasLane lane(default_params(100, 0.5), 30, InitialPlacement::kRandom,
               Rng(5));
  lane.bind_stats(registry);
  lane.run(20);
  EXPECT_EQ(registry.counter("ca.step.steps").value(), 20u);
  EXPECT_EQ(registry.counter("ca.step.vehicles").value(), 600u);
  // With p in (0,1) every moving vehicle draws; 20 steps of 30 vehicles
  // bounds the draw count, and a closed ring at this density certainly
  // kept someone moving.
  EXPECT_GT(registry.counter("ca.step.draws").value(), 0u);
  EXPECT_LE(registry.counter("ca.step.draws").value(), 600u);
}

}  // namespace
}  // namespace cavenet::ca
