// Property-based sweeps of the NaS automaton invariants over a grid of
// (density, slowdown probability, boundary, placement) configurations.
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "core/nas_lane.h"

namespace cavenet::ca {
namespace {

struct NasCase {
  double density;
  double p;
  Boundary boundary;
  InitialPlacement placement;
};

class NasInvariantTest : public ::testing::TestWithParam<NasCase> {};

TEST_P(NasInvariantTest, InvariantsHoldOverTime) {
  const NasCase c = GetParam();
  NasParams params;
  params.lane_length = 120;
  params.slowdown_p = c.p;
  params.boundary = c.boundary;
  const auto n = static_cast<std::int64_t>(c.density * 120.0);
  NasLane lane(params, n, c.placement, Rng(99));

  for (int step = 0; step < 150; ++step) {
    lane.step();
    // Vehicle count conserved.
    ASSERT_EQ(lane.vehicle_count(), n);
    std::set<std::uint32_t> ids;
    std::int64_t prev_cell = -1;
    for (const Vehicle& v : lane.vehicles()) {
      // Exclusion: strictly increasing cells => one vehicle per site.
      ASSERT_GT(v.cell, prev_cell);
      prev_cell = v.cell;
      // Positions on the lane.
      ASSERT_GE(v.cell, 0);
      ASSERT_LT(v.cell, params.lane_length);
      // Velocity bounds.
      ASSERT_GE(v.velocity, 0);
      ASSERT_LE(v.velocity, params.v_max);
      // Ids unique and stable.
      ASSERT_TRUE(ids.insert(v.id).second);
      ASSERT_LT(v.id, static_cast<std::uint32_t>(n));
      // Wraps only ever grow.
      ASSERT_GE(v.wraps, 0);
    }
    // Average velocity bounded by v_max.
    ASSERT_LE(lane.average_velocity(), static_cast<double>(params.v_max));
    ASSERT_GE(lane.average_velocity(), 0.0);
    // Flow = rho * v by definition.
    ASSERT_NEAR(lane.flow(), lane.density() * lane.average_velocity(), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DensityProbabilityGrid, NasInvariantTest,
    ::testing::Values(
        NasCase{0.05, 0.0, Boundary::kClosed, InitialPlacement::kRandom},
        NasCase{0.05, 0.3, Boundary::kClosed, InitialPlacement::kRandom},
        NasCase{0.05, 1.0, Boundary::kClosed, InitialPlacement::kRandom},
        NasCase{0.25, 0.0, Boundary::kClosed, InitialPlacement::kEven},
        NasCase{0.25, 0.5, Boundary::kClosed, InitialPlacement::kRandom},
        NasCase{0.5, 0.0, Boundary::kClosed, InitialPlacement::kJam},
        NasCase{0.5, 0.3, Boundary::kClosed, InitialPlacement::kRandom},
        NasCase{0.9, 0.5, Boundary::kClosed, InitialPlacement::kRandom},
        NasCase{1.0, 0.3, Boundary::kClosed, InitialPlacement::kJam},
        NasCase{0.05, 0.3, Boundary::kOpenShift, InitialPlacement::kRandom},
        NasCase{0.25, 0.0, Boundary::kOpenShift, InitialPlacement::kEven},
        NasCase{0.5, 0.5, Boundary::kOpenShift, InitialPlacement::kRandom},
        NasCase{0.9, 0.3, Boundary::kOpenShift, InitialPlacement::kJam}));

/// On a closed deterministic lane, relative vehicle order never changes:
/// follow each vehicle's cumulative position and check monotone gaps.
class NasOrderTest : public ::testing::TestWithParam<double> {};

TEST_P(NasOrderTest, ClosedLanePreservesCyclicOrder) {
  NasParams params;
  params.lane_length = 100;
  params.slowdown_p = GetParam();
  NasLane lane(params, 20, InitialPlacement::kRandom, Rng(5));
  for (int step = 0; step < 100; ++step) {
    lane.step();
    // Cumulative positions of consecutive-id vehicles never cross.
    // (Ids were assigned in initial site order.)
    for (std::uint32_t id = 0; id + 1 < 20; ++id) {
      const double a = lane.cumulative_position_m(lane.vehicle_by_id(id));
      const double b = lane.cumulative_position_m(lane.vehicle_by_id(id + 1));
      ASSERT_LT(a, b) << "vehicles " << id << " and " << id + 1
                      << " crossed at step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SlowdownSweep, NasOrderTest,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.9));

/// The deterministic steady-state flow is min(v_max*rho, 1-rho); simulated
/// long-run flow must approach it for any density.
class NasFlowTest : public ::testing::TestWithParam<double> {};

TEST_P(NasFlowTest, DeterministicFlowMatchesTheory) {
  const double rho = GetParam();
  NasParams params;
  params.lane_length = 200;
  params.slowdown_p = 0.0;
  const auto n = static_cast<std::int64_t>(rho * 200.0);
  NasLane lane(params, n, InitialPlacement::kRandom, Rng(11));
  lane.run(400);  // transient
  double flow_sum = 0.0;
  const int window = 200;
  for (int i = 0; i < window; ++i) {
    lane.step();
    flow_sum += lane.flow();
  }
  const double simulated = flow_sum / window;
  const double rho_actual = lane.density();
  const double expected =
      std::min(5.0 * rho_actual, 1.0 - rho_actual);
  EXPECT_NEAR(simulated, expected, 0.03) << "rho = " << rho;
}

INSTANTIATE_TEST_SUITE_P(DensitySweep, NasFlowTest,
                         ::testing::Values(0.05, 0.1, 1.0 / 6.0, 0.25, 0.4,
                                           0.6, 0.8, 0.95));

}  // namespace
}  // namespace cavenet::ca
