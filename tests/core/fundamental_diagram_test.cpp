#include "core/fundamental_diagram.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace cavenet::ca {
namespace {

TEST(DeterministicFlowTest, ClosedForm) {
  EXPECT_DOUBLE_EQ(deterministic_flow(0.1, 5), 0.5);
  EXPECT_DOUBLE_EQ(deterministic_flow(0.5, 5), 0.5);
  EXPECT_DOUBLE_EQ(deterministic_flow(0.9, 5), 0.1);
  // Peak at rho* = 1/(v_max+1).
  EXPECT_DOUBLE_EQ(deterministic_flow(1.0 / 6.0, 5), 5.0 / 6.0);
}

TEST(DensityLadderTest, SpansRequestedRange) {
  const auto ladder = density_ladder(400, 0.5, 10);
  ASSERT_EQ(ladder.size(), 10u);
  EXPECT_DOUBLE_EQ(ladder.front(), 1.0 / 400.0);
  EXPECT_DOUBLE_EQ(ladder.back(), 0.5);
  EXPECT_TRUE(std::is_sorted(ladder.begin(), ladder.end()));
}

TEST(FundamentalDiagramTest, DeterministicMatchesTheoryAcrossDensities) {
  FundamentalDiagramOptions options;
  options.params.lane_length = 400;
  options.params.slowdown_p = 0.0;
  options.densities = {0.05, 1.0 / 6.0, 0.3, 0.5};
  options.iterations = 300;
  options.trials = 3;
  options.warmup = 400;
  const auto points = fundamental_diagram(options);
  ASSERT_EQ(points.size(), 4u);
  for (const auto& p : points) {
    EXPECT_NEAR(p.flow, deterministic_flow(p.density, 5), 0.03)
        << "rho = " << p.density;
  }
}

TEST(FundamentalDiagramTest, StochasticFlowIsBelowDeterministic) {
  FundamentalDiagramOptions options;
  options.params.lane_length = 200;
  options.densities = {0.1, 0.3, 0.5};
  options.iterations = 200;
  options.trials = 5;
  options.warmup = 100;

  options.params.slowdown_p = 0.0;
  const auto det = fundamental_diagram(options);
  options.params.slowdown_p = 0.5;
  const auto sto = fundamental_diagram(options);

  for (std::size_t i = 0; i < det.size(); ++i) {
    EXPECT_LT(sto[i].flow, det[i].flow) << "rho = " << det[i].density;
  }
}

TEST(FundamentalDiagramTest, ReproducibleForSameSeed) {
  FundamentalDiagramOptions options;
  options.params.lane_length = 100;
  options.params.slowdown_p = 0.4;
  options.densities = {0.2, 0.4};
  options.iterations = 100;
  options.trials = 4;
  options.seed = 77;
  const auto a = fundamental_diagram(options);
  const auto b = fundamental_diagram(options);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].flow, b[i].flow);
    EXPECT_DOUBLE_EQ(a[i].flow_stddev, b[i].flow_stddev);
  }
}

TEST(FundamentalDiagramTest, TrialSpreadIsReported) {
  FundamentalDiagramOptions options;
  options.params.lane_length = 100;
  options.params.slowdown_p = 0.5;
  options.densities = {0.3};
  options.iterations = 50;
  options.trials = 10;
  const auto points = fundamental_diagram(options);
  EXPECT_GT(points[0].flow_stddev, 0.0);
}

TEST(FundamentalDiagramTest, MeanVelocityConsistentWithFlow) {
  FundamentalDiagramOptions options;
  options.params.lane_length = 200;
  options.params.slowdown_p = 0.0;
  options.densities = {0.25};
  options.iterations = 200;
  options.trials = 2;
  options.warmup = 200;
  const auto points = fundamental_diagram(options);
  // J = rho * v_bar: densities are realized exactly at multiples of 1/L.
  EXPECT_NEAR(points[0].flow, points[0].density * points[0].mean_velocity,
              1e-9);
}

}  // namespace
}  // namespace cavenet::ca
