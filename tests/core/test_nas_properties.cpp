// Property-based NaS invariants over 100 randomly drawn scenarios
// (seed, density, slowdown p, lane length, v_max, placement). The grid
// tests in nas_properties_test.cpp pin specific parameter corners; this
// file samples the space the ensemble runner actually explores and
// asserts the physics that must hold for EVERY draw:
//
//   * vehicle count is conserved on the closed ring (paper's improvement);
//   * no two vehicles ever share a site, and site order stays strict;
//   * every velocity stays within [0, v_max];
//   * every cell index stays within [0, L);
//   * cumulative position (cell + wraps * L) never decreases and advances
//     by exactly the vehicle's velocity each step.
#include "core/nas_lane.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cavenet::ca {
namespace {

struct RandomScenario {
  std::uint64_t seed = 0;
  std::int64_t lane_length = 0;
  std::int64_t n_vehicles = 0;
  std::int32_t v_max = 0;
  double slowdown_p = 0.0;
  InitialPlacement placement = InitialPlacement::kRandom;
};

RandomScenario draw_scenario(Rng& meta, int index) {
  RandomScenario s;
  s.seed = static_cast<std::uint64_t>(index) * 1000003u + meta.next_u64() % 997;
  s.lane_length = meta.uniform_int(std::int64_t{10}, std::int64_t{500});
  // Densities from near-empty to completely full.
  s.n_vehicles = meta.uniform_int(std::int64_t{1}, s.lane_length);
  s.v_max = static_cast<std::int32_t>(
      meta.uniform_int(std::int64_t{1}, std::int64_t{7}));
  s.slowdown_p = meta.uniform();
  const InitialPlacement placements[] = {
      InitialPlacement::kRandom, InitialPlacement::kEven,
      InitialPlacement::kJam};
  s.placement = placements[meta.uniform_int(3)];
  return s;
}

TEST(NasPropertyTest, InvariantsHoldForHundredRandomScenarios) {
  Rng meta(20260806);  // drives the scenario draws only
  constexpr int kScenarios = 100;
  constexpr int kSteps = 60;

  for (int i = 0; i < kScenarios; ++i) {
    const RandomScenario s = draw_scenario(meta, i);
    SCOPED_TRACE(::testing::Message()
                 << "scenario " << i << ": L=" << s.lane_length
                 << " N=" << s.n_vehicles << " v_max=" << s.v_max
                 << " p=" << s.slowdown_p << " seed=" << s.seed);

    NasParams params;
    params.lane_length = s.lane_length;
    params.v_max = s.v_max;
    params.slowdown_p = s.slowdown_p;
    NasLane lane(params, s.n_vehicles, s.placement, Rng(s.seed));

    // Cumulative ring position per vehicle id, to check monotone motion.
    std::map<std::uint32_t, std::int64_t> last_position;
    for (const Vehicle& v : lane.vehicles()) {
      last_position[v.id] = v.cell + v.wraps * s.lane_length;
    }

    for (int step = 0; step < kSteps; ++step) {
      lane.step();
      const auto vehicles = lane.vehicles();

      // Conservation on the closed ring.
      ASSERT_EQ(lane.vehicle_count(), s.n_vehicles);
      ASSERT_EQ(vehicles.size(), static_cast<std::size_t>(s.n_vehicles));

      std::int64_t previous_cell = -1;
      for (const Vehicle& v : vehicles) {
        // Bounds: cell in [0, L), velocity in [0, v_max].
        ASSERT_GE(v.cell, 0);
        ASSERT_LT(v.cell, s.lane_length);
        ASSERT_GE(v.velocity, 0);
        ASSERT_LE(v.velocity, s.v_max);

        // No collisions: the site-ordered list is strictly increasing,
        // so no two vehicles share a cell.
        ASSERT_GT(v.cell, previous_cell);
        previous_cell = v.cell;

        // Motion: the cumulative position advances by exactly the
        // velocity chosen this step — wrap-around must not teleport.
        const std::int64_t position = v.cell + v.wraps * s.lane_length;
        ASSERT_EQ(position - last_position.at(v.id), v.velocity);
        last_position[v.id] = position;
      }
    }
  }
}

// The open-shift boundary (the first CAVENET version) re-injects instead
// of wrapping, but conservation and bounds still must hold.
TEST(NasPropertyTest, OpenShiftBoundaryConservesVehiclesForRandomScenarios) {
  Rng meta(77);
  for (int i = 0; i < 25; ++i) {
    const RandomScenario s = draw_scenario(meta, i);
    SCOPED_TRACE(::testing::Message() << "scenario " << i);

    NasParams params;
    params.lane_length = s.lane_length;
    params.v_max = s.v_max;
    params.slowdown_p = s.slowdown_p;
    params.boundary = Boundary::kOpenShift;
    NasLane lane(params, s.n_vehicles, s.placement, Rng(s.seed));

    for (int step = 0; step < 40; ++step) {
      lane.step();
      ASSERT_EQ(lane.vehicle_count(), s.n_vehicles);
      std::int64_t previous_cell = -1;
      for (const Vehicle& v : lane.vehicles()) {
        ASSERT_GE(v.cell, 0);
        ASSERT_LT(v.cell, s.lane_length);
        ASSERT_GE(v.velocity, 0);
        ASSERT_LE(v.velocity, s.v_max);
        ASSERT_GT(v.cell, previous_cell);
        previous_cell = v.cell;
      }
    }
  }
}

// The same scenario replayed from the same seed is bit-for-bit identical
// — the anchor the parallel ensemble's determinism rests on.
TEST(NasPropertyTest, RandomScenariosReplayIdentically) {
  Rng meta(5150);
  for (int i = 0; i < 10; ++i) {
    const RandomScenario s = draw_scenario(meta, i);
    NasParams params;
    params.lane_length = s.lane_length;
    params.v_max = s.v_max;
    params.slowdown_p = s.slowdown_p;
    NasLane a(params, s.n_vehicles, s.placement, Rng(s.seed));
    NasLane b(params, s.n_vehicles, s.placement, Rng(s.seed));
    a.run(50);
    b.run(50);
    const auto va = a.vehicles();
    const auto vb = b.vehicles();
    ASSERT_EQ(va.size(), vb.size());
    EXPECT_TRUE(std::equal(va.begin(), va.end(), vb.begin()));
  }
}

}  // namespace
}  // namespace cavenet::ca
