#include "core/intersection.h"

#include <gtest/gtest.h>

namespace cavenet::ca {
namespace {

NasParams params(std::int64_t cells, double p = 0.0) {
  NasParams out;
  out.lane_length = cells;
  out.slowdown_p = p;
  return out;
}

TEST(BlockedCellTest, RejectsOutOfRange) {
  NasLane lane(params(50), 3);
  EXPECT_THROW(lane.block_cell(-1), std::out_of_range);
  EXPECT_THROW(lane.block_cell(50), std::out_of_range);
}

TEST(BlockedCellTest, VehiclesStopBeforeObstacle) {
  NasLane lane(params(100), 1, InitialPlacement::kEven);  // car at cell 0
  lane.block_cell(20);
  lane.run(30);
  const Vehicle& v = lane.vehicles()[0];
  // The car queued up right behind the obstacle and stopped.
  EXPECT_EQ(v.cell, 19);
  EXPECT_EQ(v.velocity, 0);
  EXPECT_EQ(v.wraps, 0);
}

TEST(BlockedCellTest, UnblockReleasesTheQueue) {
  NasLane lane(params(100), 1, InitialPlacement::kEven);
  lane.block_cell(20);
  lane.run(30);
  lane.unblock_cell(20);
  lane.run(5);
  EXPECT_GT(lane.vehicles()[0].cell, 20);
  EXPECT_GT(lane.vehicles()[0].velocity, 0);
}

TEST(BlockedCellTest, IsBlockedReflectsState) {
  NasLane lane(params(50), 0);
  EXPECT_FALSE(lane.is_blocked(10));
  lane.block_cell(10);
  EXPECT_TRUE(lane.is_blocked(10));
  lane.unblock_cell(10);
  EXPECT_FALSE(lane.is_blocked(10));
}

TEST(BlockedCellTest, BlockWrapsOnClosedLane) {
  // Vehicle near the end of the ring must see a block just past the seam.
  NasLane lane(params(50), 1, InitialPlacement::kEven);
  lane.block_cell(2);
  lane.run(60);
  const Vehicle& v = lane.vehicles()[0];
  EXPECT_EQ(v.cell, 1);  // queued behind cell 2, across the wrap
  EXPECT_EQ(v.velocity, 0);
}

TEST(IntersectionTest, RejectsBadConfig) {
  NasLane a(params(100), 5);
  NasLane b(params(100), 5);
  IntersectionConfig config;
  config.cell_a = 100;
  EXPECT_THROW(Intersection(a, b, config), std::invalid_argument);
  config = {};
  config.clearance_cells = -1;
  EXPECT_THROW(Intersection(a, b, config), std::invalid_argument);
  config = {};
  config.green_period_steps = 0;
  EXPECT_THROW(Intersection(a, b, config), std::invalid_argument);
}

TEST(IntersectionTest, PriorityPolicyNeverConflicts) {
  NasLane a(params(120, 0.3), 30, InitialPlacement::kRandom, Rng(1));
  NasLane b(params(120, 0.3), 30, InitialPlacement::kRandom, Rng(2));
  IntersectionConfig config;
  config.cell_a = 60;
  config.cell_b = 60;
  Intersection intersection(a, b, config);
  for (int step = 0; step < 300; ++step) {
    intersection.step();
    ASSERT_FALSE(intersection.conflict()) << "conflict at step " << step;
  }
}

TEST(IntersectionTest, TrafficLightAlternates) {
  NasLane a(params(100, 0.0), 10, InitialPlacement::kEven);
  NasLane b(params(100, 0.0), 10, InitialPlacement::kEven);
  IntersectionConfig config;
  config.policy = IntersectionPolicy::kTrafficLight;
  config.green_period_steps = 10;
  config.cell_a = 50;
  config.cell_b = 50;
  Intersection intersection(a, b, config);
  int flips = 0;
  bool last = true;
  for (int step = 0; step < 60; ++step) {
    intersection.step();
    if (intersection.lane_a_has_right_of_way() != last) {
      last = intersection.lane_a_has_right_of_way();
      ++flips;
    }
    ASSERT_FALSE(intersection.conflict());
  }
  EXPECT_GE(flips, 4);
}

TEST(IntersectionTest, CrosspointIsABottleneck) {
  // Paper Section III: "the crosspoint is the bottleneck for the lane".
  // Lane B's long-run flow with a priority intersection is below its
  // free-running flow at the same density.
  auto run_flow = [](bool with_intersection) {
    NasLane a(params(200, 0.0), 66, InitialPlacement::kRandom, Rng(3));
    NasLane b(params(200, 0.0), 66, InitialPlacement::kRandom, Rng(4));
    IntersectionConfig config;
    config.cell_a = 100;
    config.cell_b = 100;
    Intersection intersection(a, b, config);
    double flow = 0.0;
    for (int step = 0; step < 400; ++step) {
      if (with_intersection) {
        intersection.step();
      } else {
        a.step();
        b.step();
      }
      if (step >= 200) flow += b.flow();
    }
    return flow / 200.0;
  };
  EXPECT_LT(run_flow(true), run_flow(false) * 0.95);
}

TEST(IntersectionTest, YieldingLaneQueuesUpstream) {
  // Saturate lane A so its clearance window is always occupied: lane B
  // must form a standing queue behind the crosspoint.
  NasLane a(params(60, 0.0), 55, InitialPlacement::kRandom, Rng(5));
  NasLane b(params(60, 0.0), 10, InitialPlacement::kEven, Rng(6));
  IntersectionConfig config;
  config.cell_a = 30;
  config.cell_b = 30;
  Intersection intersection(a, b, config);
  for (int step = 0; step < 120; ++step) intersection.step();
  // Lane A at density 0.92 keeps a car near the crossing essentially
  // always; lane B's flow collapses.
  EXPECT_LT(b.average_velocity(), 1.0);
}

}  // namespace
}  // namespace cavenet::ca
