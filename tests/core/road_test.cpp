#include "core/road.h"

#include <numbers>
#include <stdexcept>

#include <gtest/gtest.h>

namespace cavenet::ca {
namespace {

NasParams small_params(std::int64_t cells = 100) {
  NasParams p;
  p.lane_length = cells;
  return p;
}

TEST(RoadTest, RejectsNullGeometry) {
  Road road;
  EXPECT_THROW(road.add_lane(NasLane(small_params(), 5), nullptr),
               std::invalid_argument);
}

TEST(RoadTest, RejectsLengthMismatch) {
  Road road;
  EXPECT_THROW(
      road.add_lane(NasLane(small_params(100), 5), make_line(100.0)),
      std::invalid_argument);  // 100 cells = 750 m, not 100 m
}

TEST(RoadTest, AssignsGlobalNodeIdsAcrossLanes) {
  Road road;
  road.add_lane(NasLane(small_params(), 3, InitialPlacement::kEven),
                make_line(750.0));
  road.add_lane(NasLane(small_params(), 2, InitialPlacement::kEven),
                make_line(750.0, LaneTransform::translation(0.0, 10.0)));
  EXPECT_EQ(road.vehicle_count(), 5u);
  const auto states = road.states();
  ASSERT_EQ(states.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(states[i].node_id, i);
  }
  EXPECT_EQ(states[3].lane, 1u);
  EXPECT_EQ(states[3].vehicle_id, 0u);
}

TEST(RoadTest, StatesLieOnTheLaneGeometry) {
  Road road;
  road.add_lane(NasLane(small_params(), 4, InitialPlacement::kEven),
                make_circuit(750.0));
  for (int step = 0; step < 20; ++step) {
    road.step();
    for (const auto& s : road.states()) {
      const double r = 750.0 / (2.0 * std::numbers::pi);
      EXPECT_NEAR(s.position.norm(), r, 1e-9);
    }
  }
}

TEST(RoadTest, VelocityDirectionFollowsHeading) {
  Road road;
  road.add_lane(NasLane(small_params(), 1, InitialPlacement::kEven),
                make_line(750.0));
  road.step();  // the lone vehicle accelerates
  const auto states = road.states();
  EXPECT_GT(states[0].velocity.x, 0.0);
  EXPECT_DOUBLE_EQ(states[0].velocity.y, 0.0);
  // Speed = velocity (cells/step) * 7.5 m.
  EXPECT_NEAR(states[0].velocity.x, 7.5, 1e-9);  // v=1 after first step
}

TEST(RoadTest, WrappedThisStepFlag) {
  NasParams params = small_params(10);  // tiny ring: wraps quickly
  Road road;
  road.add_lane(NasLane(params, 1, InitialPlacement::kEven),
                make_circuit(75.0));
  int wrap_events = 0;
  for (int i = 0; i < 30; ++i) {
    road.step();
    for (const auto& s : road.states()) {
      if (s.wrapped_this_step) ++wrap_events;
    }
  }
  // A lone vehicle at v_max=5 on a 10-cell ring wraps roughly every 2 steps.
  EXPECT_GT(wrap_events, 8);
}

TEST(RoadTest, StepAdvancesAllLanes) {
  Road road;
  road.add_lane(NasLane(small_params(), 2, InitialPlacement::kEven),
                make_line(750.0));
  road.add_lane(NasLane(small_params(), 2, InitialPlacement::kEven),
                make_line(750.0));
  road.step();
  road.step();
  EXPECT_EQ(road.time_step(), 2);
  EXPECT_EQ(road.lane(0).time_step(), 2);
  EXPECT_EQ(road.lane(1).time_step(), 2);
}

}  // namespace
}  // namespace cavenet::ca
