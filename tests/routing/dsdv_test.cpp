#include "routing/dsdv.h"

#include <gtest/gtest.h>

#include "routing/testbed.h"

namespace cavenet::routing::dsdv {
namespace {

using namespace cavenet::literals;
using test::Testbed;

Testbed::ProtocolFactory dsdv_factory(DsdvParams params = {}) {
  return [params](netsim::Simulator& sim, netsim::LinkLayer& link) {
    return std::make_unique<DsdvProtocol>(sim, link, params);
  };
}

TEST(DsdvHeadersTest, SizeScalesWithEntries) {
  UpdateHeader update;
  EXPECT_EQ(update.size_bytes(), 8u);
  update.entries.push_back({1, 0, 2});
  update.entries.push_back({2, 1, 4});
  EXPECT_EQ(update.size_bytes(), 32u);
}

TEST(DsdvTest, NeighborRouteFromFirstUpdate) {
  Testbed bed;
  bed.add_chain(2, 150.0, dsdv_factory());
  bed.start_all();
  bed.sim.run_until(3_s);
  const RouteEntry* route = bed.router(0).table().lookup(1, bed.sim.now());
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->next_hop, 1u);
  EXPECT_EQ(route->hop_count, 1u);
}

TEST(DsdvTest, MultiHopRoutesPropagateThroughDumps) {
  Testbed bed;
  bed.add_chain(5, 200.0, dsdv_factory());
  bed.start_all();
  bed.sim.run_until(12_s);  // several dump rounds for 4-hop propagation
  const RouteEntry* route = bed.router(0).table().lookup(4, bed.sim.now());
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->next_hop, 1u);
  EXPECT_EQ(route->hop_count, 4u);
}

TEST(DsdvTest, DataDeliveryAcrossFourHops) {
  Testbed bed;
  bed.add_chain(5, 200.0, dsdv_factory());
  bed.start_all();
  bed.sim.schedule(12_s, [&] { bed.send_data(0, 4); });
  bed.sim.run_until(15_s);
  EXPECT_EQ(bed.delivered_to(4), 1u);
}

TEST(DsdvTest, SendBeforeConvergenceDrops) {
  Testbed bed;
  bed.add_chain(4, 200.0, dsdv_factory());
  bed.start_all();
  bed.send_data(0, 3);  // t = 0: tables empty
  bed.sim.run_until(10_s);
  EXPECT_EQ(bed.delivered_to(3), 0u);
  EXPECT_EQ(bed.router(0).stats().drops_no_route, 1u);
}

TEST(DsdvTest, SequenceNumbersStayEven) {
  Testbed bed;
  bed.add_chain(2, 150.0, dsdv_factory());
  auto& d0 = dynamic_cast<DsdvProtocol&>(bed.router(0));
  bed.start_all();
  bed.sim.run_until(10_s);
  EXPECT_GT(d0.seqno(), 0u);
  EXPECT_EQ(d0.seqno() % 2, 0u);
}

TEST(DsdvTest, BrokenRouteGetsOddSeqnoAndHeals) {
  Testbed bed;
  bed.add_chain(3, 180.0, dsdv_factory());
  bed.start_all();
  bed.sim.run_until(8_s);
  ASSERT_NE(bed.router(0).table().lookup(2, bed.sim.now()), nullptr);

  // Node 2 disappears; node 1 detects the silence and advertises the break.
  bed.mobility(2).move_to({360.0, 9000.0});
  bed.sim.run_until(25_s);
  const RouteEntry* stale = bed.router(0).table().find(2);
  ASSERT_NE(stale, nullptr);
  EXPECT_FALSE(stale->valid);

  // Node 2 returns: a newer even seqno must resurrect the route.
  bed.mobility(2).move_to({360.0, 0.0});
  bed.sim.run_until(40_s);
  EXPECT_NE(bed.router(0).table().lookup(2, bed.sim.now()), nullptr);
}

TEST(DsdvTest, TriggeredUpdatesAreDamped) {
  DsdvParams params;
  params.update_interval = 10_s;  // periodic dumps are rare
  Testbed bed;
  bed.add_chain(3, 180.0, dsdv_factory(params));
  bed.start_all();
  bed.sim.run_until(5_s);
  const std::uint64_t before = bed.router(1).stats().control_packets_sent;
  bed.sim.run_until(6_s);
  const std::uint64_t after = bed.router(1).stats().control_packets_sent;
  // Within one second without topology change: at most a couple of
  // (damped) triggered updates, not a flood.
  EXPECT_LE(after - before, 4u);
}

TEST(DsdvTest, ControlOverheadGrowsWithTableSize) {
  Testbed bed;
  bed.add_chain(6, 200.0, dsdv_factory());
  bed.start_all();
  bed.sim.run_until(20_s);
  // Full dumps grow with known destinations: bytes/packet rises over time.
  const RoutingStats& stats = bed.router(0).stats();
  EXPECT_GT(stats.control_bytes_sent / stats.control_packets_sent, 20u);
}

}  // namespace
}  // namespace cavenet::routing::dsdv
