#include "routing/testbed.h"

namespace cavenet::routing::test {

Testbed::Testbed(std::uint64_t seed)
    : sim(seed),
      channel(sim, std::make_unique<phy::TwoRayGroundModel>()) {}

netsim::NodeId Testbed::add_node(Vec2 position,
                                 const ProtocolFactory& factory) {
  const auto id = static_cast<netsim::NodeId>(routers_.size());
  mobilities_.push_back(std::make_unique<MovableMobility>(position));
  mobilities_.back()->set_on_move([this] { channel.invalidate_positions(); });
  phys_.push_back(
      std::make_unique<phy::WifiPhy>(sim, id, mobilities_.back().get()));
  links_.push_back(channel.attach(phys_.back().get()));
  macs_.push_back(
      std::make_unique<mac::WifiMac>(sim, *phys_.back(), mac::MacParams{}, id));
  routers_.push_back(factory(sim, *macs_.back()));
  routers_.back()->set_deliver_callback(
      [this, id](netsim::Packet packet, netsim::NodeId from) {
        delivered_.push_back({id, from, packet.uid()});
      });
  return id;
}

void Testbed::add_chain(std::size_t n, double spacing_m,
                        const ProtocolFactory& factory) {
  for (std::size_t i = 0; i < n; ++i) {
    add_node({static_cast<double>(i) * spacing_m, 0.0}, factory);
  }
}

void Testbed::start_all() {
  for (auto& router : routers_) router->start();
}

std::uint64_t Testbed::send_data(netsim::NodeId src, netsim::NodeId dst,
                                 std::size_t payload) {
  netsim::Packet packet(payload);
  const std::uint64_t uid = packet.uid();
  routers_.at(src)->send(std::move(packet), dst);
  return uid;
}

std::size_t Testbed::delivered_to(netsim::NodeId node) const {
  std::size_t count = 0;
  for (const auto& d : delivered_) {
    if (d.at == node) ++count;
  }
  return count;
}

}  // namespace cavenet::routing::test
