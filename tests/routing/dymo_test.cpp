#include "routing/dymo.h"

#include <gtest/gtest.h>

#include "routing/testbed.h"

namespace cavenet::routing::dymo {
namespace {

using namespace cavenet::literals;
using test::Testbed;

Testbed::ProtocolFactory dymo_factory(DymoParams params = {}) {
  return [params](netsim::Simulator& sim, netsim::LinkLayer& link) {
    return std::make_unique<DymoProtocol>(sim, link, params);
  };
}

TEST(DymoHeadersTest, SizeGrowsWithPathAccumulation) {
  RreqHeader rreq;
  EXPECT_EQ(rreq.size_bytes(), 16u);
  rreq.path.push_back({1, 1, 0});
  rreq.path.push_back({2, 1, 1});
  EXPECT_EQ(rreq.size_bytes(), 32u);
}

TEST(DymoTest, SingleHopDelivery) {
  Testbed bed;
  bed.add_chain(2, 150.0, dymo_factory());
  bed.start_all();
  bed.sim.schedule(1_s, [&] { bed.send_data(0, 1); });
  bed.sim.run_until(5_s);
  EXPECT_EQ(bed.delivered_to(1), 1u);
}

TEST(DymoTest, MultiHopDelivery) {
  Testbed bed;
  bed.add_chain(5, 200.0, dymo_factory());
  bed.start_all();
  bed.sim.schedule(1_s, [&] { bed.send_data(0, 4); });
  bed.sim.run_until(10_s);
  EXPECT_EQ(bed.delivered_to(4), 1u);
}

TEST(DymoTest, PathAccumulationLearnsIntermediateRoutes) {
  // The paper's key AODV/DYMO distinction: after one discovery 0 -> 4,
  // node 0 must also hold routes to the intermediate hops 1, 2, 3 —
  // and intermediates hold routes to both endpoints.
  Testbed bed;
  bed.add_chain(5, 200.0, dymo_factory());
  bed.start_all();
  bed.sim.schedule(1_s, [&] { bed.send_data(0, 4); });
  bed.sim.run_until(4_s);  // within the accumulated routes' lifetime
  for (netsim::NodeId hop = 1; hop <= 4; ++hop) {
    const RouteEntry* route = bed.router(0).table().lookup(hop, bed.sim.now());
    ASSERT_NE(route, nullptr) << "origin lacks route to hop " << hop;
    EXPECT_EQ(route->next_hop, 1u);
    EXPECT_EQ(route->hop_count, hop);
  }
  // Middle node knows both ends.
  EXPECT_NE(bed.router(2).table().lookup(0, bed.sim.now()), nullptr);
  EXPECT_NE(bed.router(2).table().lookup(4, bed.sim.now()), nullptr);
}

TEST(DymoTest, AccumulatedRoutesAvoidLaterDiscoveries) {
  Testbed bed;
  bed.add_chain(5, 200.0, dymo_factory());
  bed.start_all();
  bed.sim.schedule(1_s, [&] { bed.send_data(0, 4); });
  // Sending to an intermediate hop afterwards needs NO new discovery.
  bed.sim.schedule(5_s, [&] { bed.send_data(0, 2); });
  bed.sim.run_until(10_s);
  EXPECT_EQ(bed.delivered_to(2), 1u);
  EXPECT_EQ(bed.router(0).stats().route_discoveries, 1u);
}

TEST(DymoTest, BufferedBurstFlushedAfterDiscovery) {
  Testbed bed;
  bed.add_chain(4, 200.0, dymo_factory());
  bed.start_all();
  bed.sim.schedule(1_s, [&] {
    for (int i = 0; i < 8; ++i) bed.send_data(0, 3);
  });
  bed.sim.run_until(10_s);
  EXPECT_EQ(bed.delivered_to(3), 8u);
}

TEST(DymoTest, UnreachableDestinationGivesUpAfterTries) {
  DymoParams params;
  Testbed bed;
  bed.add_node({0, 0}, dymo_factory(params));
  bed.add_node({5000, 0}, dymo_factory(params));
  bed.start_all();
  bed.sim.schedule(1_s, [&] { bed.send_data(0, 1); });
  bed.sim.run_until(30_s);
  EXPECT_EQ(bed.delivered_to(1), 0u);
  EXPECT_EQ(bed.router(0).stats().drops_no_route, 1u);
  EXPECT_EQ(bed.router(0).stats().route_discoveries, 1u);
}

TEST(DymoTest, RerrFloodInvalidatesStaleRoutes) {
  Testbed bed;
  bed.add_chain(4, 180.0, dymo_factory());
  bed.start_all();
  bed.sim.schedule(1_s, [&] { bed.send_data(0, 3); });
  bed.sim.run_until(4_s);
  ASSERT_EQ(bed.delivered_to(3), 1u);
  // Destination vanishes; the next data packet hits a broken last hop,
  // whose RERR flood must invalidate the origin's route.
  bed.sim.schedule(4_s + 1_ms, [&] { bed.mobility(3).move_to({540.0, 9000.0}); });
  bed.sim.schedule(6_s, [&] { bed.send_data(0, 3); });
  bed.sim.run_until(20_s);
  EXPECT_EQ(bed.router(0).table().lookup(3, bed.sim.now()), nullptr);
}

TEST(DymoTest, IntermediateRrepAnswersFromCache) {
  DymoParams with_cache;
  with_cache.intermediate_rrep = true;
  Testbed bed;
  bed.add_chain(4, 200.0, dymo_factory(with_cache));
  bed.start_all();
  // Discovery 0 -> 3 seeds every node's cache with routes to 0 and 3.
  bed.sim.schedule(1_s, [&] { bed.send_data(0, 3); });
  // Later discovery 1 -> 3: node 1 already has a fresh route (learned via
  // path accumulation), so traffic flows without flooding to node 3.
  bed.sim.schedule(5_s, [&] { bed.send_data(1, 3); });
  bed.sim.run_until(10_s);
  EXPECT_EQ(bed.delivered_to(3), 2u);
}

TEST(DymoTest, SeqnoAdvancesWithActivity) {
  // A 2-hop destination forces a discovery; originating an RREQ bumps the
  // node's own sequence number.
  Testbed bed;
  bed.add_chain(3, 200.0, dymo_factory());
  auto& d0 = dynamic_cast<DymoProtocol&>(bed.router(0));
  bed.start_all();
  bed.sim.schedule(1_s, [&] { bed.send_data(0, 2); });
  bed.sim.run_until(5_s);
  EXPECT_GT(d0.seqno(), 0u);
}

TEST(DymoTest, ControlOverheadLowerThanOlsrEquivalent) {
  // Reactive with a single flow on a short chain: only a handful of
  // control packets (RREQ/RREP + hellos), far fewer than proactive
  // protocols emit in the same window. Sanity-check the absolute count.
  Testbed bed;
  bed.add_chain(3, 200.0, dymo_factory());
  bed.start_all();
  bed.sim.schedule(1_s, [&] { bed.send_data(0, 2); });
  bed.sim.run_until(5_s);
  std::uint64_t total = 0;
  for (netsim::NodeId i = 0; i < 3; ++i) {
    total += bed.router(i).stats().control_packets_sent;
  }
  // 3 nodes x ~4 hello rounds + 1 discovery: well under 30 packets.
  EXPECT_LT(total, 30u);
  EXPECT_GT(total, 5u);
}

}  // namespace
}  // namespace cavenet::routing::dymo
