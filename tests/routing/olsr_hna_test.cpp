// OLSR HNA (Host and Network Association) tests — the gateway mechanism
// the paper describes in Section III-B1.
#include <gtest/gtest.h>

#include "routing/olsr.h"
#include "routing/testbed.h"

namespace cavenet::routing::olsr {
namespace {

using namespace cavenet::literals;
using test::Testbed;

constexpr netsim::NodeId kInternet = 1000;  // non-MANET pseudo-address

Testbed::ProtocolFactory olsr_factory() {
  return [](netsim::Simulator& sim, netsim::LinkLayer& link) {
    return std::make_unique<OlsrProtocol>(sim, link);
  };
}

TEST(OlsrHnaTest, HeaderSizeScalesWithNetworks) {
  HnaHeader hna;
  EXPECT_EQ(hna.size_bytes(), 12u);
  hna.networks.push_back(kInternet);
  EXPECT_EQ(hna.size_bytes(), 20u);
}

TEST(OlsrHnaTest, AssociationFloodsThroughTheManet) {
  Testbed bed;
  bed.add_chain(4, 200.0, olsr_factory());
  auto& gateway = dynamic_cast<OlsrProtocol&>(bed.router(3));
  gateway.add_local_network(kInternet);
  bed.start_all();
  bed.sim.run_until(15_s);  // hello sym + TC routes + HNA floods
  for (netsim::NodeId node = 0; node < 3; ++node) {
    auto& router = dynamic_cast<OlsrProtocol&>(bed.router(node));
    const auto gw = router.gateway_for(kInternet);
    ASSERT_TRUE(gw.has_value()) << "node " << node;
    EXPECT_EQ(*gw, 3u);
  }
}

TEST(OlsrHnaTest, DataToExternalAddressRoutedViaGateway) {
  Testbed bed;
  bed.add_chain(4, 200.0, olsr_factory());
  auto& gateway = dynamic_cast<OlsrProtocol&>(bed.router(3));
  gateway.add_local_network(kInternet);
  bed.start_all();
  bed.sim.run_until(15_s);
  // Node 0 sends to the Internet pseudo-address; without HNA this would be
  // drops_no_route. With HNA the packet travels hop by hop to the gateway
  // (and is counted as forwarded by the intermediate routers).
  const auto before = bed.router(1).stats().data_forwarded;
  bed.sim.schedule(SimTime::zero(), [&] { bed.send_data(0, kInternet); });
  bed.sim.run_until(16_s);
  EXPECT_EQ(bed.router(0).stats().drops_no_route, 0u);
  EXPECT_GT(bed.router(1).stats().data_forwarded, before);
}

TEST(OlsrHnaTest, NearestGatewayWins) {
  Testbed bed;
  bed.add_chain(5, 200.0, olsr_factory());
  // Gateways at both ends; node 1 must prefer the near one (node 0).
  dynamic_cast<OlsrProtocol&>(bed.router(0)).add_local_network(kInternet);
  dynamic_cast<OlsrProtocol&>(bed.router(4)).add_local_network(kInternet);
  bed.start_all();
  bed.sim.run_until(20_s);
  auto& router1 = dynamic_cast<OlsrProtocol&>(bed.router(1));
  const auto gw = router1.gateway_for(kInternet);
  ASSERT_TRUE(gw.has_value());
  EXPECT_EQ(*gw, 0u);
  auto& router3 = dynamic_cast<OlsrProtocol&>(bed.router(3));
  const auto gw3 = router3.gateway_for(kInternet);
  ASSERT_TRUE(gw3.has_value());
  EXPECT_EQ(*gw3, 4u);
}

TEST(OlsrHnaTest, AssociationExpiresWhenGatewayLeaves) {
  Testbed bed;
  bed.add_chain(3, 200.0, olsr_factory());
  dynamic_cast<OlsrProtocol&>(bed.router(2)).add_local_network(kInternet);
  bed.start_all();
  bed.sim.run_until(12_s);
  auto& router0 = dynamic_cast<OlsrProtocol&>(bed.router(0));
  ASSERT_TRUE(router0.gateway_for(kInternet).has_value());

  bed.mobility(2).move_to({400.0, 9000.0});
  bed.sim.run_until(40_s);
  // Either the association expired or the gateway route vanished; both
  // make the lookup fail.
  EXPECT_FALSE(router0.gateway_for(kInternet).has_value());
}

TEST(OlsrHnaTest, NoAssociationWithoutGateway) {
  Testbed bed;
  bed.add_chain(2, 150.0, olsr_factory());
  bed.start_all();
  bed.sim.run_until(10_s);
  auto& router0 = dynamic_cast<OlsrProtocol&>(bed.router(0));
  EXPECT_FALSE(router0.gateway_for(kInternet).has_value());
  // Sending to the unknown address drops cleanly.
  bed.send_data(0, kInternet);
  bed.sim.run_until(11_s);
  EXPECT_EQ(bed.router(0).stats().drops_no_route, 1u);
}

}  // namespace
}  // namespace cavenet::routing::olsr
