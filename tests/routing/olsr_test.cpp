#include "routing/olsr.h"

#include <gtest/gtest.h>

#include "routing/testbed.h"

namespace cavenet::routing::olsr {
namespace {

using namespace cavenet::literals;
using test::Testbed;

Testbed::ProtocolFactory olsr_factory(OlsrParams params = {}) {
  return [params](netsim::Simulator& sim, netsim::LinkLayer& link) {
    return std::make_unique<OlsrProtocol>(sim, link, params);
  };
}

TEST(OlsrHeadersTest, SizesScaleWithContent) {
  HelloHeader hello;
  EXPECT_EQ(hello.size_bytes(), 16u);
  hello.neighbors.push_back({1, LinkCode::kSym, 0});
  hello.neighbors.push_back({2, LinkCode::kMpr, 0});
  EXPECT_EQ(hello.size_bytes(), 32u);
  TcHeader tc;
  EXPECT_EQ(tc.size_bytes(), 16u);
  tc.advertised.push_back({1, 0});
  EXPECT_EQ(tc.size_bytes(), 24u);
}

TEST(OlsrTest, SymmetricLinkHandshake) {
  Testbed bed;
  bed.add_chain(2, 150.0, olsr_factory());
  bed.start_all();
  bed.sim.run_until(3_s);
  auto& a = dynamic_cast<OlsrProtocol&>(bed.router(0));
  auto& b = dynamic_cast<OlsrProtocol&>(bed.router(1));
  EXPECT_EQ(a.symmetric_neighbors(), std::vector<netsim::NodeId>{1});
  EXPECT_EQ(b.symmetric_neighbors(), std::vector<netsim::NodeId>{0});
}

TEST(OlsrTest, OneHopRouteFromHellosAlone) {
  Testbed bed;
  bed.add_chain(2, 150.0, olsr_factory());
  bed.start_all();
  bed.sim.run_until(3_s);
  const RouteEntry* route = bed.router(0).table().lookup(1, bed.sim.now());
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->next_hop, 1u);
  EXPECT_EQ(route->hop_count, 1u);
}

TEST(OlsrTest, TwoHopRouteViaHelloNeighborLists) {
  Testbed bed;
  bed.add_chain(3, 200.0, olsr_factory());
  bed.start_all();
  bed.sim.run_until(4_s);
  const RouteEntry* route = bed.router(0).table().lookup(2, bed.sim.now());
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->next_hop, 1u);
  EXPECT_EQ(route->hop_count, 2u);
}

TEST(OlsrTest, MiddleNodeBecomesMpr) {
  Testbed bed;
  bed.add_chain(3, 200.0, olsr_factory());
  bed.start_all();
  bed.sim.run_until(5_s);
  auto& a = dynamic_cast<OlsrProtocol&>(bed.router(0));
  // Node 1 is node 0's only path to node 2: it must be selected as MPR.
  EXPECT_TRUE(a.mpr_set().contains(1));
}

TEST(OlsrTest, MultiHopRoutesViaTcFlooding) {
  Testbed bed;
  bed.add_chain(5, 200.0, olsr_factory());
  bed.start_all();
  bed.sim.run_until(10_s);  // several TC rounds
  const RouteEntry* route = bed.router(0).table().lookup(4, bed.sim.now());
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->next_hop, 1u);
  EXPECT_EQ(route->hop_count, 4u);
}

TEST(OlsrTest, DataDeliveryOverFourHops) {
  Testbed bed;
  bed.add_chain(5, 200.0, olsr_factory());
  bed.start_all();
  bed.sim.schedule(8_s, [&] { bed.send_data(0, 4); });
  bed.sim.run_until(12_s);
  EXPECT_EQ(bed.delivered_to(4), 1u);
}

TEST(OlsrTest, SendBeforeConvergenceIsDropped) {
  Testbed bed;
  bed.add_chain(4, 200.0, olsr_factory());
  bed.start_all();
  // Immediately: no routes yet -> proactive drop, no buffering.
  bed.send_data(0, 3);
  bed.sim.run_until(10_s);
  EXPECT_EQ(bed.delivered_to(3), 0u);
  EXPECT_EQ(bed.router(0).stats().drops_no_route, 1u);
}

TEST(OlsrTest, RoutesExpireWhenNodeDisappears) {
  Testbed bed;
  bed.add_chain(3, 200.0, olsr_factory());
  bed.start_all();
  bed.sim.run_until(6_s);
  ASSERT_NE(bed.router(0).table().lookup(2, bed.sim.now()), nullptr);
  // Node 2 vanishes.
  bed.mobility(2).move_to({0.0, 9000.0});
  bed.sim.run_until(20_s);
  EXPECT_EQ(bed.router(0).table().lookup(2, bed.sim.now()), nullptr);
}

TEST(OlsrTest, StarTopologySelectsHubAsMpr) {
  Testbed bed;
  // Hub at origin, 4 spokes 200 m out; spokes only reach each other via hub.
  bed.add_node({0, 0}, olsr_factory());
  bed.add_node({200, 0}, olsr_factory());
  bed.add_node({-200, 0}, olsr_factory());
  bed.add_node({0, 200}, olsr_factory());
  bed.add_node({0, -200}, olsr_factory());
  bed.start_all();
  bed.sim.run_until(6_s);
  for (netsim::NodeId spoke = 1; spoke <= 4; ++spoke) {
    auto& router = dynamic_cast<OlsrProtocol&>(bed.router(spoke));
    EXPECT_TRUE(router.mpr_set().contains(0)) << "spoke " << spoke;
    EXPECT_EQ(router.mpr_set().size(), 1u) << "spoke " << spoke;
  }
  // Spoke-to-spoke delivery through the hub (1 s from now).
  bed.sim.schedule(1_s, [&] { bed.send_data(1, 2); });
  bed.sim.run_until(9_s);
  EXPECT_EQ(bed.delivered_to(2), 1u);
}

TEST(OlsrTest, ControlOverheadGrowsWithTime) {
  Testbed bed;
  bed.add_chain(3, 200.0, olsr_factory());
  bed.start_all();
  bed.sim.run_until(5_s);
  const std::uint64_t at5 = bed.router(0).stats().control_packets_sent;
  bed.sim.run_until(10_s);
  const std::uint64_t at10 = bed.router(0).stats().control_packets_sent;
  EXPECT_GT(at5, 3u);
  EXPECT_GT(at10, at5);
}

TEST(OlsrTest, EtxModeComputesLinkQuality) {
  OlsrParams params;
  params.use_etx = true;
  params.etx_window = 4;
  Testbed bed;
  bed.add_chain(2, 150.0, olsr_factory(params));
  bed.start_all();
  bed.sim.run_until(15_s);  // several ETX windows
  auto& a = dynamic_cast<OlsrProtocol&>(bed.router(0));
  const double etx = a.link_etx(1);
  // Clean channel: ETX ~ 1.
  EXPECT_GE(etx, 1.0);
  EXPECT_LT(etx, 1.6);
  // And routes still work.
  ASSERT_NE(a.table().lookup(1, bed.sim.now()), nullptr);
}

TEST(OlsrTest, EtxUnknownLinkIsInfinite) {
  Testbed bed;
  bed.add_node({0, 0}, olsr_factory());
  auto& a = dynamic_cast<OlsrProtocol&>(bed.router(0));
  EXPECT_TRUE(std::isinf(a.link_etx(42)));
}

}  // namespace
}  // namespace cavenet::routing::olsr
