#include "routing/common.h"

#include <gtest/gtest.h>

namespace cavenet::routing {
namespace {

using namespace cavenet::literals;

TEST(DataHeaderTest, SizeIsIpv4Like) {
  DataHeader h;
  EXPECT_EQ(h.size_bytes(), 20u);
  EXPECT_EQ(h.name(), "data");
}

TEST(RoutingTableTest, LookupMissingReturnsNull) {
  RoutingTable t;
  EXPECT_EQ(t.lookup(5, 0_s), nullptr);
  EXPECT_EQ(t.find(5), nullptr);
}

TEST(RoutingTableTest, UpsertAndLookupValid) {
  RoutingTable t;
  RouteEntry& e = t.upsert(3);
  e.next_hop = 7;
  e.hop_count = 2;
  e.valid = true;
  e.expires = 10_s;
  const RouteEntry* found = t.lookup(3, 5_s);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->next_hop, 7u);
}

TEST(RoutingTableTest, ExpiredRoutesAreInvisible) {
  RoutingTable t;
  RouteEntry& e = t.upsert(3);
  e.valid = true;
  e.expires = 10_s;
  EXPECT_EQ(t.lookup(3, 10_s), nullptr);  // expiry boundary exclusive
  EXPECT_EQ(t.lookup(3, 20_s), nullptr);
  EXPECT_NE(t.find(3), nullptr);  // find ignores validity
}

TEST(RoutingTableTest, InvalidateKeepsEntry) {
  RoutingTable t;
  RouteEntry& e = t.upsert(3);
  e.valid = true;
  e.expires = 10_s;
  e.seqno = 42;
  t.invalidate(3);
  EXPECT_EQ(t.lookup(3, 1_s), nullptr);
  ASSERT_NE(t.find(3), nullptr);
  EXPECT_EQ(t.find(3)->seqno, 42u);
  t.invalidate(99);  // no-op for unknown
}

TEST(RoutingTableTest, EraseAndClear) {
  RoutingTable t;
  t.upsert(1);
  t.upsert(2);
  t.erase(1);
  EXPECT_EQ(t.find(1), nullptr);
  EXPECT_NE(t.find(2), nullptr);
  t.clear();
  EXPECT_TRUE(t.entries().empty());
}

TEST(PacketBufferTest, EnqueueAndTake) {
  PacketBuffer buffer(4);
  EXPECT_FALSE(buffer.has(1));
  EXPECT_TRUE(buffer.enqueue(1, netsim::Packet(10)));
  EXPECT_TRUE(buffer.enqueue(1, netsim::Packet(20)));
  EXPECT_TRUE(buffer.has(1));
  EXPECT_EQ(buffer.size(1), 2u);
  auto out = buffer.take(1);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_FALSE(buffer.has(1));
  EXPECT_EQ(buffer.size(1), 0u);
}

TEST(PacketBufferTest, PerDestinationLimit) {
  PacketBuffer buffer(2);
  EXPECT_TRUE(buffer.enqueue(1, netsim::Packet(0)));
  EXPECT_TRUE(buffer.enqueue(1, netsim::Packet(0)));
  EXPECT_FALSE(buffer.enqueue(1, netsim::Packet(0)));  // full
  EXPECT_TRUE(buffer.enqueue(2, netsim::Packet(0)));   // other dst unaffected
}

TEST(PacketBufferTest, TakeUnknownDestinationIsEmpty) {
  PacketBuffer buffer;
  EXPECT_TRUE(buffer.take(9).empty());
}

}  // namespace
}  // namespace cavenet::routing
