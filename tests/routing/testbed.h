// Shared routing-test fixture: static or movable nodes with a full
// PHY + 802.11 MAC stack under the routing protocol being tested.
#ifndef CAVENET_TESTS_ROUTING_TESTBED_H
#define CAVENET_TESTS_ROUTING_TESTBED_H

#include <functional>
#include <memory>
#include <vector>

#include "mac/wifi_mac.h"
#include "netsim/mobility.h"
#include "netsim/simulator.h"
#include "phy/channel.h"
#include "routing/common.h"

namespace cavenet::routing::test {

/// Mobility whose position tests can change mid-run (to break links).
/// Because moves happen outside the mobility model's time-indexed view,
/// the testbed wires on_move to Channel::invalidate_positions() so the
/// channel's per-tick position snapshot never serves a stale location.
class MovableMobility final : public netsim::MobilityModel {
 public:
  explicit MovableMobility(Vec2 position) : position_(position) {}
  Vec2 position(SimTime) const override { return position_; }
  Vec2 velocity(SimTime) const override { return {}; }
  void move_to(Vec2 position) {
    position_ = position;
    if (on_move_) on_move_();
  }
  void set_on_move(std::function<void()> on_move) {
    on_move_ = std::move(on_move);
  }

 private:
  Vec2 position_;
  std::function<void()> on_move_;
};

struct Delivered {
  netsim::NodeId at;
  netsim::NodeId from;
  std::uint64_t uid;
};

class Testbed {
 public:
  using ProtocolFactory = std::function<std::unique_ptr<RoutingProtocol>(
      netsim::Simulator&, netsim::LinkLayer&)>;

  explicit Testbed(std::uint64_t seed = 1);

  /// Adds a node at `position`; returns its id.
  netsim::NodeId add_node(Vec2 position, const ProtocolFactory& factory);

  /// Adds `n` nodes in a line with the given spacing.
  void add_chain(std::size_t n, double spacing_m,
                 const ProtocolFactory& factory);

  /// Calls start() on every protocol (hello/TC timers begin).
  void start_all();

  RoutingProtocol& router(netsim::NodeId id) { return *routers_.at(id); }
  MovableMobility& mobility(netsim::NodeId id) { return *mobilities_.at(id); }
  mac::WifiMac& mac(netsim::NodeId id) { return *macs_.at(id); }

  /// Sends a data packet from `src`'s routing layer toward `dst`.
  std::uint64_t send_data(netsim::NodeId src, netsim::NodeId dst,
                          std::size_t payload = 512);

  /// Packets delivered to any node's application layer, in order.
  const std::vector<Delivered>& delivered() const { return delivered_; }
  std::size_t delivered_to(netsim::NodeId node) const;

  netsim::Simulator sim;
  phy::Channel channel;

 private:
  std::vector<std::unique_ptr<MovableMobility>> mobilities_;
  std::vector<std::unique_ptr<phy::WifiPhy>> phys_;
  std::vector<phy::Channel::Attachment> links_;  // after phys_: detach first
  std::vector<std::unique_ptr<mac::WifiMac>> macs_;
  std::vector<std::unique_ptr<RoutingProtocol>> routers_;
  std::vector<Delivered> delivered_;
};

}  // namespace cavenet::routing::test

#endif  // CAVENET_TESTS_ROUTING_TESTBED_H
