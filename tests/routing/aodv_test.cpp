#include "routing/aodv.h"

#include <gtest/gtest.h>

#include "routing/testbed.h"

namespace cavenet::routing::aodv {
namespace {

using namespace cavenet::literals;
using test::Testbed;

Testbed::ProtocolFactory aodv_factory(AodvParams params = {}) {
  return [params](netsim::Simulator& sim, netsim::LinkLayer& link) {
    return std::make_unique<AodvProtocol>(sim, link, params);
  };
}

TEST(AodvHeadersTest, WireSizes) {
  EXPECT_EQ(RreqHeader{}.size_bytes(), 24u);
  EXPECT_EQ(RrepHeader{}.size_bytes(), 20u);
  EXPECT_EQ(HelloHeader{}.size_bytes(), 20u);
  RerrHeader rerr;
  rerr.unreachable.push_back({1, 2});
  rerr.unreachable.push_back({3, 4});
  EXPECT_EQ(rerr.size_bytes(), 20u);
}

TEST(AodvTest, SingleHopDelivery) {
  Testbed bed;
  bed.add_chain(2, 150.0, aodv_factory());
  bed.start_all();
  bed.sim.schedule(1_s, [&] { bed.send_data(0, 1); });
  bed.sim.run_until(5_s);
  EXPECT_EQ(bed.delivered_to(1), 1u);
}

TEST(AodvTest, MultiHopDiscoveryAndDelivery) {
  Testbed bed;
  bed.add_chain(5, 200.0, aodv_factory());  // 0-1-2-3-4, 200 m spacing
  bed.start_all();
  bed.sim.schedule(1_s, [&] { bed.send_data(0, 4); });
  // Check while the discovered route is still within its lifetime.
  bed.sim.run_until(3_s);
  EXPECT_EQ(bed.delivered_to(4), 1u);
  // Forward route present at the origin, pointing at its chain neighbour.
  const RouteEntry* route = bed.router(0).table().lookup(4, bed.sim.now());
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->next_hop, 1u);
  EXPECT_EQ(route->hop_count, 4u);
}

TEST(AodvTest, ReverseRouteEstablishedAtDestination) {
  Testbed bed;
  bed.add_chain(4, 200.0, aodv_factory());
  bed.start_all();
  bed.sim.schedule(1_s, [&] { bed.send_data(0, 3); });
  bed.sim.run_until(4_s);  // within the reverse route's lifetime
  const RouteEntry* reverse = bed.router(3).table().lookup(0, bed.sim.now());
  ASSERT_NE(reverse, nullptr);
  EXPECT_EQ(reverse->next_hop, 2u);
}

TEST(AodvTest, PacketsBufferedDuringDiscoveryAllArrive) {
  Testbed bed;
  bed.add_chain(4, 200.0, aodv_factory());
  bed.start_all();
  // A burst before any route exists: all must be buffered, then flushed.
  bed.sim.schedule(1_s, [&] {
    for (int i = 0; i < 10; ++i) bed.send_data(0, 3);
  });
  bed.sim.run_until(10_s);
  EXPECT_EQ(bed.delivered_to(3), 10u);
  EXPECT_EQ(bed.router(0).stats().route_discoveries, 1u);
}

TEST(AodvTest, NoRouteToIsolatedNodeDropsAfterRetries) {
  Testbed bed;
  bed.add_node({0, 0}, aodv_factory());
  bed.add_node({5000, 0}, aodv_factory());  // unreachable
  bed.start_all();
  bed.sim.schedule(1_s, [&] { bed.send_data(0, 1); });
  bed.sim.run_until(60_s);
  EXPECT_EQ(bed.delivered_to(1), 0u);
  EXPECT_EQ(bed.router(0).stats().drops_no_route, 1u);
}

TEST(AodvTest, SecondFlowReusesDiscoveredRoute) {
  Testbed bed;
  bed.add_chain(3, 200.0, aodv_factory());
  bed.start_all();
  bed.sim.schedule(1_s, [&] { bed.send_data(0, 2); });
  bed.sim.schedule(2_s, [&] { bed.send_data(0, 2); });
  bed.sim.run_until(6_s);
  EXPECT_EQ(bed.delivered_to(2), 2u);
  EXPECT_EQ(bed.router(0).stats().route_discoveries, 1u);
}

TEST(AodvTest, LinkBreakTriggersRediscoveryAndRecovery) {
  Testbed bed;
  bed.add_chain(4, 180.0, aodv_factory());
  bed.start_all();
  bed.sim.schedule(1_s, [&] { bed.send_data(0, 3); });
  // Break the 1-2 link by moving node 1 away, then send again.
  bed.sim.schedule(3_s, [&] { bed.mobility(1).move_to({180.0, 5000.0}); });
  bed.sim.schedule(10_s, [&] { bed.send_data(0, 3); });
  bed.sim.run_until(30_s);
  // First packet via 1, second must be re-routed... the chain is broken
  // (node 1 was the only bridge), but 0-2 are 360 m apart: unreachable.
  // Rebuild: move node 1 back instead.
  EXPECT_EQ(bed.delivered_to(3), 1u);
}

TEST(AodvTest, ReroutesAroundBrokenLinkWhenAlternativeExists) {
  Testbed bed;
  bed.add_chain(4, 180.0, aodv_factory());
  // A redundant bridge parallel to node 1.
  const auto bridge = bed.add_node({180.0, 100.0}, aodv_factory());
  bed.start_all();
  bed.sim.schedule(1_s, [&] { bed.send_data(0, 3); });
  bed.sim.schedule(5_s, [&] { bed.mobility(1).move_to({180.0, 9000.0}); });
  // Re-send periodically after the break; AODV must fail over via `bridge`.
  for (int i = 0; i < 10; ++i) {
    bed.sim.schedule(8_s + SimTime::seconds(i), [&] { bed.send_data(0, 3); });
  }
  bed.sim.run_until(30_s);
  EXPECT_GE(bed.delivered_to(3), 8u);
  (void)bridge;
}

TEST(AodvTest, HelloMaintainsNeighborRoutes) {
  Testbed bed;
  bed.add_chain(2, 150.0, aodv_factory());
  bed.start_all();
  bed.sim.run_until(3_s);
  // Hellos alone (no data) create 1-hop routes.
  const RouteEntry* route = bed.router(0).table().lookup(1, bed.sim.now());
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->hop_count, 1u);
}

TEST(AodvTest, ExpandingRingEventuallyFloodsFullTtl) {
  AodvParams params;
  params.ttl_start = 1;
  params.ttl_increment = 1;
  params.ttl_threshold = 2;
  Testbed bed;
  bed.add_chain(6, 200.0, aodv_factory(params));  // 5 hops away
  bed.start_all();
  bed.sim.schedule(1_s, [&] { bed.send_data(0, 5); });
  bed.sim.run_until(30_s);
  // TTL 1 and 2 rings fail; the full-diameter flood succeeds.
  EXPECT_EQ(bed.delivered_to(5), 1u);
}

TEST(AodvTest, ControlOverheadIsCounted) {
  Testbed bed;
  bed.add_chain(3, 200.0, aodv_factory());
  bed.start_all();
  bed.sim.schedule(1_s, [&] { bed.send_data(0, 2); });
  bed.sim.run_until(5_s);
  const RoutingStats& stats = bed.router(0).stats();
  EXPECT_GT(stats.control_packets_sent, 0u);
  EXPECT_GT(stats.control_bytes_sent, stats.control_packets_sent);
  EXPECT_EQ(stats.data_originated, 1u);
}

TEST(AodvTest, SequenceNumberMonotonicallyIncreases) {
  // A 2-hop destination forces a real discovery (hellos only cover 1 hop),
  // and RFC 6.1 requires the originator to bump its seqno per RREQ.
  Testbed bed;
  bed.add_chain(3, 200.0, aodv_factory());
  auto& aodv0 = dynamic_cast<AodvProtocol&>(bed.router(0));
  const std::uint32_t before = aodv0.seqno();
  bed.start_all();
  bed.sim.schedule(1_s, [&] { bed.send_data(0, 2); });
  bed.sim.run_until(5_s);
  EXPECT_GT(aodv0.seqno(), before);
}

TEST(AodvTest, TtlExpiredPacketsAreDropped) {
  // Force a tiny data TTL by sending through many hops: the default TTL of
  // 32 exceeds any test chain, so instead verify drops_ttl stays 0 on a
  // normal path (guard) — the TTL decrement itself is covered by delivery
  // through 5 hops in MultiHopDiscoveryAndDelivery.
  Testbed bed;
  bed.add_chain(5, 200.0, aodv_factory());
  bed.start_all();
  bed.sim.schedule(1_s, [&] { bed.send_data(0, 4); });
  bed.sim.run_until(10_s);
  std::uint64_t ttl_drops = 0;
  for (netsim::NodeId i = 0; i < 5; ++i) {
    ttl_drops += bed.router(i).stats().drops_ttl;
  }
  EXPECT_EQ(ttl_drops, 0u);
}

}  // namespace
}  // namespace cavenet::routing::aodv
