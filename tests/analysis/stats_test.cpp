#include "analysis/stats.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cavenet::analysis {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, MatchesBatchFormulas) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats s;
  for (const double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), mean(xs));
  EXPECT_NEAR(s.variance(), variance(xs), 1e-12);
  EXPECT_NEAR(s.stddev(), stddev(xs), 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 16.0);
}

TEST(RunningStatsTest, MergeEqualsSinglePass) {
  Rng rng(1);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty lhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(BatchStatsTest, EmptyAndDegenerateInputs) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(variance({}), 0.0);
  const std::vector<double> one = {7.0};
  EXPECT_EQ(variance(one), 0.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
}

TEST(QuantileTest, InterpolatesBetweenSamples) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(QuantileTest, ThrowsOnEmpty) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(HistogramTest, BinsAndCenters) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(HistogramTest, CountsAndClampsOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-5.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, DensityIntegratesToOne) {
  Histogram h(0.0, 1.0, 10);
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform());
  double integral = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) integral += h.density(b) * 0.1;
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

}  // namespace
}  // namespace cavenet::analysis
