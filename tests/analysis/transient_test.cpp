#include "analysis/transient.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cavenet::analysis {
namespace {

/// Exponential decay toward `level` plus small noise — the velocity-decay
/// shape the paper discusses for RW-like models.
std::vector<double> decaying(std::size_t n, double start, double level,
                             double tau, double noise, Rng rng) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = level + (start - level) * std::exp(-static_cast<double>(i) / tau) +
           rng.normal(0.0, noise);
  }
  return x;
}

TEST(TransientEndTest, RejectsShortSignal) {
  const std::vector<double> x(4, 0.0);
  EXPECT_THROW(transient_end(x), std::invalid_argument);
}

TEST(TransientEndTest, ConstantSignalHasNoTransient) {
  const std::vector<double> x(256, 2.5);
  const auto end = transient_end(x);
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(*end, 0u);
}

TEST(TransientEndTest, FindsDecayKnee) {
  const auto x = decaying(2000, 10.0, 2.0, 100.0, 0.05, Rng(1));
  const auto end = transient_end(x);
  ASSERT_TRUE(end.has_value());
  // The decay has effectively ended within a few time constants.
  EXPECT_GT(*end, 50u);
  EXPECT_LT(*end, 900u);
}

TEST(TransientEndTest, LongerTransientYieldsLargerTau) {
  const auto fast = decaying(4000, 10.0, 2.0, 50.0, 0.05, Rng(2));
  const auto slow = decaying(4000, 10.0, 2.0, 400.0, 0.05, Rng(2));
  const auto fast_end = transient_end(fast);
  const auto slow_end = transient_end(slow);
  ASSERT_TRUE(fast_end.has_value());
  ASSERT_TRUE(slow_end.has_value());
  EXPECT_LT(*fast_end, *slow_end);
}

TEST(TransientEndTest, NeverSettlingSignalReturnsNullopt) {
  // A ramp keeps drifting: there is no stationary tail to settle into.
  std::vector<double> x(512);
  Rng rng(3);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i) + rng.normal(0.0, 0.01);
  }
  EXPECT_FALSE(transient_end(x).has_value());
}

TEST(TransientEndTest, HoldParameterRejectsBriefTouches) {
  // Signal touches the tail level briefly mid-transient, then leaves again.
  std::vector<double> x(400, 10.0);
  for (std::size_t i = 0; i < 100; ++i) x[i] = 10.0;
  x[50] = 2.0;  // brief touch
  for (std::size_t i = 100; i < 200; ++i) x[i] = 6.0;
  for (std::size_t i = 200; i < 400; ++i) x[i] = 2.0;
  TransientOptions options;
  options.hold = 32;
  const auto end = transient_end(x, options);
  ASSERT_TRUE(end.has_value());
  EXPECT_GE(*end, 200u);
}

TEST(MserTest, RejectsDegenerateInput) {
  const std::vector<double> x(6, 1.0);
  EXPECT_THROW(mser_truncation(x, 0), std::invalid_argument);
  EXPECT_THROW(mser_truncation(x, 5), std::invalid_argument);
}

TEST(MserTest, CleanSignalNeedsNoTruncation) {
  Rng rng(4);
  std::vector<double> x(1000);
  for (double& v : x) v = rng.normal(5.0, 0.1);
  EXPECT_LE(mser_truncation(x), 50u);
}

TEST(MserTest, RemovesInitialBias) {
  Rng rng(5);
  std::vector<double> x(2000);
  for (std::size_t i = 0; i < 400; ++i) x[i] = 50.0 + rng.normal(0.0, 0.1);
  for (std::size_t i = 400; i < x.size(); ++i) x[i] = rng.normal(0.0, 0.1);
  const std::size_t d = mser_truncation(x);
  EXPECT_GE(d, 350u);
  EXPECT_LE(d, 550u);
}

}  // namespace
}  // namespace cavenet::analysis
