#include "analysis/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cavenet::analysis {
namespace {

TEST(FftHelpersTest, PowerOfTwoPredicates) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(5), 8u);
  EXPECT_EQ(next_power_of_two(8), 8u);
}

TEST(FftTest, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(3);
  EXPECT_THROW(fft_in_place(data), std::invalid_argument);
}

TEST(FftTest, ImpulseGivesFlatSpectrum) {
  std::vector<std::complex<double>> data(8);
  data[0] = 1.0;
  fft_in_place(data);
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, ConstantGivesDcOnly) {
  std::vector<std::complex<double>> data(16, 1.0);
  fft_in_place(data);
  EXPECT_NEAR(data[0].real(), 16.0, 1e-12);
  for (std::size_t k = 1; k < 16; ++k) {
    EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-12);
  }
}

TEST(FftTest, SinePeaksAtItsFrequencyBin) {
  const std::size_t n = 256;
  const std::size_t k0 = 17;
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(k0 * i) /
                       static_cast<double>(n));
  }
  fft_in_place(data);
  // |X[k0]| = n/2 for a unit sine; everything else ~0.
  EXPECT_NEAR(std::abs(data[k0]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[n - k0]), n / 2.0, 1e-9);
  for (std::size_t k = 1; k < n / 2; ++k) {
    if (k != k0) {
      EXPECT_LT(std::abs(data[k]), 1e-9);
    }
  }
}

TEST(FftTest, InverseRoundTrips) {
  Rng rng(1);
  std::vector<std::complex<double>> data(64);
  std::vector<std::complex<double>> original(64);
  for (std::size_t i = 0; i < 64; ++i) {
    data[i] = {rng.normal(), rng.normal()};
    original[i] = data[i];
  }
  fft_in_place(data);
  ifft_in_place(data);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(FftTest, Linearity) {
  Rng rng(2);
  const std::size_t n = 32;
  std::vector<std::complex<double>> a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.normal();
    b[i] = rng.normal();
    sum[i] = a[i] + 2.0 * b[i];
  }
  fft_in_place(a);
  fft_in_place(b);
  fft_in_place(sum);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(sum[i] - (a[i] + 2.0 * b[i])), 0.0, 1e-9);
  }
}

TEST(FftTest, ParsevalHolds) {
  Rng rng(3);
  const std::size_t n = 128;
  std::vector<std::complex<double>> data(n);
  double time_energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = rng.normal();
    time_energy += std::norm(data[i]);
  }
  fft_in_place(data);
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-8);
}

TEST(FftRealTest, PadsToPowerOfTwo) {
  const std::vector<double> signal(5, 1.0);
  const auto spectrum = fft_real(signal);
  EXPECT_EQ(spectrum.size(), 8u);
  EXPECT_NEAR(spectrum[0].real(), 5.0, 1e-12);
}

TEST(FftRealTest, HermitianSymmetry) {
  Rng rng(4);
  std::vector<double> signal(64);
  for (double& x : signal) x = rng.normal();
  const auto spectrum = fft_real(signal);
  for (std::size_t k = 1; k < 32; ++k) {
    EXPECT_NEAR(spectrum[k].real(), spectrum[64 - k].real(), 1e-10);
    EXPECT_NEAR(spectrum[k].imag(), -spectrum[64 - k].imag(), 1e-10);
  }
}

}  // namespace
}  // namespace cavenet::analysis
