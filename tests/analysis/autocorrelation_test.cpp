#include "analysis/autocorrelation.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cavenet::analysis {
namespace {

std::vector<double> ar1(std::size_t n, double phi, Rng rng) {
  std::vector<double> x(n);
  x[0] = rng.normal();
  for (std::size_t i = 1; i < n; ++i) {
    x[i] = phi * x[i - 1] + rng.normal();
  }
  return x;
}

TEST(AutocorrelationTest, RejectsShortSignal) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(autocorrelation(one, 4), std::invalid_argument);
}

TEST(AutocorrelationTest, LagZeroIsOne) {
  Rng rng(1);
  std::vector<double> x(256);
  for (double& v : x) v = rng.normal();
  const auto acf = autocorrelation(x, 10);
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
}

TEST(AutocorrelationTest, ConstantSignalConvention) {
  const std::vector<double> x(64, 3.0);
  const auto acf = autocorrelation(x, 5);
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
  for (std::size_t k = 1; k < acf.size(); ++k) EXPECT_EQ(acf[k], 0.0);
}

TEST(AutocorrelationTest, MaxLagClampsToSignalLength) {
  const std::vector<double> x = {1.0, -1.0, 1.0, -1.0};
  const auto acf = autocorrelation(x, 100);
  EXPECT_EQ(acf.size(), 4u);  // lags 0..3
}

TEST(AutocorrelationTest, WhiteNoiseDecorrelates) {
  Rng rng(2);
  std::vector<double> x(8192);
  for (double& v : x) v = rng.normal();
  const auto acf = autocorrelation(x, 50);
  for (std::size_t k = 1; k <= 50; ++k) {
    EXPECT_NEAR(acf[k], 0.0, 0.05);
  }
}

TEST(AutocorrelationTest, Ar1MatchesPhiPowers) {
  const double phi = 0.8;
  const auto x = ar1(65536, phi, Rng(3));
  const auto acf = autocorrelation(x, 10);
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(acf[k], std::pow(phi, static_cast<double>(k)), 0.05);
  }
}

TEST(AutocorrelationTest, AlternatingSignalHasNegativeLagOne) {
  std::vector<double> x(512);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = (i % 2 == 0) ? 1.0 : -1.0;
  const auto acf = autocorrelation(x, 2);
  EXPECT_NEAR(acf[1], -1.0, 0.01);
  EXPECT_NEAR(acf[2], 1.0, 0.02);
}

TEST(PartialSumsTest, WhiteNoiseSumsStayBounded) {
  Rng rng(4);
  std::vector<double> x(16384);
  for (double& v : x) v = rng.normal();
  const auto sums = autocorrelation_partial_sums(x, 200);
  for (const double s : sums) EXPECT_LT(std::abs(s), 1.0);
}

TEST(PartialSumsTest, Ar1SumsConvergeToTheory) {
  // For AR(1), sum_{k>=1} phi^k = phi / (1 - phi).
  const double phi = 0.5;
  const auto x = ar1(131072, phi, Rng(5));
  const auto sums = autocorrelation_partial_sums(x, 100);
  EXPECT_NEAR(sums.back(), phi / (1.0 - phi), 0.15);
}

TEST(HurstTest, RejectsShortSignal) {
  const std::vector<double> x(8, 0.0);
  EXPECT_THROW(hurst_rs(x), std::invalid_argument);
}

TEST(HurstTest, WhiteNoiseIsAboutHalf) {
  Rng rng(6);
  std::vector<double> x(16384);
  for (double& v : x) v = rng.normal();
  EXPECT_NEAR(hurst_rs(x), 0.5, 0.12);
}

TEST(HurstTest, PersistentSignalExceedsHalf) {
  // Strongly persistent AR(1) looks LRD at these scales.
  const auto x = ar1(16384, 0.95, Rng(7));
  EXPECT_GT(hurst_rs(x), 0.65);
}

}  // namespace
}  // namespace cavenet::analysis
