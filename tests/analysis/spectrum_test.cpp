#include "analysis/spectrum.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cavenet::analysis {
namespace {

std::vector<double> sine(std::size_t n, double cycles_per_sample,
                         double amplitude = 1.0) {
  std::vector<double> signal(n);
  for (std::size_t i = 0; i < n; ++i) {
    signal[i] = amplitude * std::sin(2.0 * std::numbers::pi *
                                     cycles_per_sample * static_cast<double>(i));
  }
  return signal;
}

TEST(PeriodogramTest, RejectsTooShortSignal) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(periodogram(one), std::invalid_argument);
}

TEST(PeriodogramTest, PeakAtSineFrequency) {
  const double f0 = 0.125;  // cycles per sample
  const auto spec = periodogram(sine(1024, f0));
  std::size_t argmax = 0;
  for (std::size_t k = 1; k < spec.power.size(); ++k) {
    if (spec.power[k] > spec.power[argmax]) argmax = k;
  }
  EXPECT_NEAR(spec.frequency[argmax], f0, 1e-3);
}

TEST(PeriodogramTest, SampleRateScalesFrequencyAxis) {
  const auto spec = periodogram(sine(512, 0.25), 100.0);
  std::size_t argmax = 0;
  for (std::size_t k = 1; k < spec.power.size(); ++k) {
    if (spec.power[k] > spec.power[argmax]) argmax = k;
  }
  EXPECT_NEAR(spec.frequency[argmax], 25.0, 0.5);
}

TEST(PeriodogramTest, MeanRemovalKillsDcLeakage) {
  std::vector<double> signal = sine(512, 0.1);
  for (double& x : signal) x += 100.0;  // large DC offset
  const auto spec = periodogram(signal);
  // Lowest returned frequency should not dominate the sine peak.
  double peak = 0.0;
  for (const double p : spec.power) peak = std::max(peak, p);
  EXPECT_LT(spec.power.front(), peak * 0.01);
}

TEST(PeriodogramTest, ParsevalForWhiteNoise) {
  Rng rng(1);
  std::vector<double> signal(1024);
  for (double& x : signal) x = rng.normal();
  const auto spec = periodogram(signal);
  // Integrated one-sided PSD ~ signal variance.
  double integral = 0.0;
  const double df = spec.frequency[1] - spec.frequency[0];
  for (const double p : spec.power) integral += p * df;
  EXPECT_NEAR(integral, 1.0, 0.15);
}

TEST(WelchTest, RejectsBadSegment) {
  const std::vector<double> signal(64, 0.0);
  EXPECT_THROW(welch_psd(signal, 1), std::invalid_argument);
  EXPECT_THROW(welch_psd(signal, 128), std::invalid_argument);
}

TEST(WelchTest, ReducesVarianceVsRawPeriodogram) {
  Rng rng(2);
  std::vector<double> signal(8192);
  for (double& x : signal) x = rng.normal();
  const auto raw = periodogram(signal);
  const auto welch = welch_psd(signal, 256);

  auto rel_spread = [](const Spectrum& s) {
    double mean = 0.0;
    for (const double p : s.power) mean += p;
    mean /= static_cast<double>(s.power.size());
    double var = 0.0;
    for (const double p : s.power) var += (p - mean) * (p - mean);
    var /= static_cast<double>(s.power.size());
    return std::sqrt(var) / mean;
  };
  EXPECT_LT(rel_spread(welch), rel_spread(raw) * 0.5);
}

TEST(WelchTest, WhiteNoiseSpectrumIsFlat) {
  Rng rng(3);
  std::vector<double> signal(16384);
  for (double& x : signal) x = rng.normal();
  const auto spec = welch_psd(signal, 512);
  const double slope = low_frequency_slope(spec, 0.5);
  EXPECT_NEAR(slope, 0.0, 0.3);
}

TEST(LowFrequencySlopeTest, DetectsOneOverFNoise) {
  // Synthesize 1/f-ish noise by summing random-phase sinusoids with
  // amplitude ~ 1/sqrt(f).
  Rng rng(4);
  const std::size_t n = 8192;
  std::vector<double> signal(n, 0.0);
  for (int k = 1; k <= 400; ++k) {
    const double f = static_cast<double>(k) / static_cast<double>(n);
    const double amp = 1.0 / std::sqrt(f);
    const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
    for (std::size_t i = 0; i < n; ++i) {
      signal[i] +=
          amp * std::sin(2.0 * std::numbers::pi * f * static_cast<double>(i) +
                         phase);
    }
  }
  const auto spec = periodogram(signal);
  const double slope = low_frequency_slope(spec, 0.05);
  EXPECT_LT(slope, -0.5);  // diverges toward f -> 0
}

TEST(WindowTest, HannWindowStillFindsPeak) {
  const auto spec = periodogram(sine(1024, 0.2), 1.0, Window::kHann);
  std::size_t argmax = 0;
  for (std::size_t k = 1; k < spec.power.size(); ++k) {
    if (spec.power[k] > spec.power[argmax]) argmax = k;
  }
  EXPECT_NEAR(spec.frequency[argmax], 0.2, 1e-3);
}

TEST(WindowTest, HammingWindowStillFindsPeak) {
  const auto spec = periodogram(sine(1024, 0.3), 1.0, Window::kHamming);
  std::size_t argmax = 0;
  for (std::size_t k = 1; k < spec.power.size(); ++k) {
    if (spec.power[k] > spec.power[argmax]) argmax = k;
  }
  EXPECT_NEAR(spec.frequency[argmax], 0.3, 1e-3);
}

}  // namespace
}  // namespace cavenet::analysis
