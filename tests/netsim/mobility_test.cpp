#include "netsim/mobility.h"

#include <gtest/gtest.h>

#include "netsim/layers.h"
#include "netsim/packet.h"

namespace cavenet::netsim {
namespace {

using namespace cavenet::literals;

TEST(StaticMobilityTest, PositionConstantVelocityZero) {
  StaticMobility m({3.0, -4.0});
  EXPECT_EQ(m.position(0_s), (Vec2{3.0, -4.0}));
  EXPECT_EQ(m.position(100_s), (Vec2{3.0, -4.0}));
  EXPECT_EQ(m.velocity(50_s), (Vec2{0.0, 0.0}));
}

TEST(FunctionMobilityTest, DelegatesToFunctions) {
  FunctionMobility m([](double t) { return Vec2{t * 2.0, 0.0}; },
                     [](double) { return Vec2{2.0, 0.0}; });
  EXPECT_EQ(m.position(5_s), (Vec2{10.0, 0.0}));
  EXPECT_EQ(m.velocity(5_s), (Vec2{2.0, 0.0}));
}

TEST(FunctionMobilityTest, MissingVelocityIsZero) {
  FunctionMobility m([](double) { return Vec2{1.0, 1.0}; }, nullptr);
  EXPECT_EQ(m.velocity(1_s), (Vec2{0.0, 0.0}));
}

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{3.0, 4.0};
  const Vec2 b{1.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 3.0}));
  EXPECT_EQ(a - b, (Vec2{2.0, 5.0}));
  EXPECT_EQ(a * 2.0, (Vec2{6.0, 8.0}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(a.dot(b), -1.0);
  EXPECT_DOUBLE_EQ(distance(a, b), std::hypot(2.0, 5.0));
}

TEST(AddressTest, BroadcastPredicate) {
  EXPECT_TRUE(is_broadcast(kBroadcast));
  EXPECT_FALSE(is_broadcast(0));
  EXPECT_FALSE(is_broadcast(12345));
}

/// The default LinkLayer::send_priority falls back to send().
class RecordingLink final : public LinkLayer {
 public:
  void send(Packet packet, NodeId dest) override {
    (void)packet;
    last_dest = dest;
    ++sends;
  }
  void set_receive_callback(ReceiveCallback) override {}
  void set_tx_failed_callback(TxFailedCallback) override {}
  NodeId address() const override { return 7; }
  int sends = 0;
  NodeId last_dest = 0;
};

TEST(LinkLayerTest, DefaultPriorityFallsBackToSend) {
  RecordingLink link;
  link.send_priority(Packet(10), 3);
  EXPECT_EQ(link.sends, 1);
  EXPECT_EQ(link.last_dest, 3u);
}

}  // namespace
}  // namespace cavenet::netsim
