#include "netsim/packet.h"

#include <stdexcept>
#include <utility>

#include <gtest/gtest.h>

namespace cavenet::netsim {
namespace {

struct TestHeaderA final : HeaderBase<TestHeaderA> {
  int value = 0;
  std::size_t size_bytes() const override { return 10; }
  std::string_view name() const override { return "test-a"; }
};

struct TestHeaderB final : HeaderBase<TestHeaderB> {
  double payload = 0.0;
  std::size_t size_bytes() const override { return 4; }
  std::string_view name() const override { return "test-b"; }
};

TEST(PacketTest, PayloadSizeOnly) {
  Packet p(512);
  EXPECT_EQ(p.payload_bytes(), 512u);
  EXPECT_EQ(p.size_bytes(), 512u);
  EXPECT_EQ(p.header_count(), 0u);
}

TEST(PacketTest, UidsAreUniqueAcrossPackets) {
  Packet a(0), b(0);
  EXPECT_NE(a.uid(), b.uid());
}

TEST(PacketTest, PushAddsHeaderSize) {
  Packet p(100);
  TestHeaderA a;
  a.value = 7;
  p.push(a);
  EXPECT_EQ(p.size_bytes(), 110u);
  TestHeaderB b;
  p.push(b);
  EXPECT_EQ(p.size_bytes(), 114u);
  EXPECT_EQ(p.header_count(), 2u);
}

TEST(PacketTest, PeekSeesTopHeaderOnly) {
  Packet p(0);
  TestHeaderA a;
  a.value = 42;
  p.push(a);
  TestHeaderB b;
  b.payload = 2.5;
  p.push(b);
  EXPECT_EQ(p.peek<TestHeaderA>(), nullptr);
  ASSERT_NE(p.peek<TestHeaderB>(), nullptr);
  EXPECT_DOUBLE_EQ(p.peek<TestHeaderB>()->payload, 2.5);
}

TEST(PacketTest, PopReturnsAndRemoves) {
  Packet p(0);
  TestHeaderA a;
  a.value = 9;
  p.push(a);
  const TestHeaderA popped = p.pop<TestHeaderA>();
  EXPECT_EQ(popped.value, 9);
  EXPECT_EQ(p.header_count(), 0u);
  EXPECT_EQ(p.size_bytes(), 0u);
}

TEST(PacketTest, PopWrongTypeThrows) {
  Packet p(0);
  p.push(TestHeaderA{});
  EXPECT_THROW(p.pop<TestHeaderB>(), std::logic_error);
  Packet empty(0);
  EXPECT_THROW(empty.pop<TestHeaderA>(), std::logic_error);
}

TEST(PacketTest, FindSearchesWholeStack) {
  Packet p(0);
  TestHeaderA a;
  a.value = 13;
  p.push(a);
  p.push(TestHeaderB{});
  ASSERT_NE(p.find<TestHeaderA>(), nullptr);
  EXPECT_EQ(p.find<TestHeaderA>()->value, 13);
}

TEST(PacketTest, CopyIsDeepButKeepsUid) {
  Packet p(64);
  TestHeaderA a;
  a.value = 1;
  p.push(a);
  Packet copy = p;
  EXPECT_EQ(copy.uid(), p.uid());
  EXPECT_EQ(copy.size_bytes(), p.size_bytes());
  // Mutating the copy's header must not affect the original.
  copy.peek<TestHeaderA>()->value = 99;
  EXPECT_EQ(p.peek<TestHeaderA>()->value, 1);
}

TEST(PacketTest, CopyAssignmentReplacesContents) {
  Packet p(10);
  p.push(TestHeaderA{});
  Packet q(20);
  q.push(TestHeaderB{});
  q = p;
  EXPECT_EQ(q.payload_bytes(), 10u);
  EXPECT_NE(q.peek<TestHeaderA>(), nullptr);
  EXPECT_EQ(q.uid(), p.uid());
}

TEST(PacketTest, SelfAssignmentIsSafe) {
  Packet p(10);
  p.push(TestHeaderA{});
  Packet& alias = p;
  p = alias;
  EXPECT_EQ(p.payload_bytes(), 10u);
  EXPECT_EQ(p.header_count(), 1u);
  // The header must still be reachable: self-assignment must not drop
  // (or leak) the shared stack through the alias.
  EXPECT_NE(std::as_const(p).peek<TestHeaderA>(), nullptr);
}

TEST(PacketTest, MovePreservesEverything) {
  Packet p(33);
  TestHeaderA a;
  a.value = 5;
  p.push(a);
  const std::uint64_t uid = p.uid();
  Packet moved = std::move(p);
  EXPECT_EQ(moved.uid(), uid);
  EXPECT_EQ(moved.payload_bytes(), 33u);
  EXPECT_EQ(moved.peek<TestHeaderA>()->value, 5);
}

TEST(PacketTest, CopiesShareStorageUntilMutation) {
  Packet p(10);
  TestHeaderA a;
  a.value = 7;
  p.push(a);
  Packet copy = p;
  // Shared: const peeks on both resolve to the same header object.
  EXPECT_EQ(std::as_const(p).peek<TestHeaderA>(),
            std::as_const(copy).peek<TestHeaderA>());

  // A mutable peek detaches the copy; the original keeps its storage.
  const TestHeaderA* original_header = std::as_const(p).peek<TestHeaderA>();
  TestHeaderA* writable = copy.peek<TestHeaderA>();
  EXPECT_NE(writable, original_header);
  writable->value = 99;
  EXPECT_EQ(std::as_const(p).peek<TestHeaderA>()->value, 7);
  EXPECT_EQ(std::as_const(p).peek<TestHeaderA>(), original_header);
}

TEST(PacketTest, PopFromSharedCopyLeavesOriginalIntact) {
  Packet p(10);
  p.push(TestHeaderA{});
  TestHeaderB b;
  b.payload = 2.5;
  p.push(b);

  Packet copy = p;
  const TestHeaderB popped = copy.pop<TestHeaderB>();
  EXPECT_EQ(popped.payload, 2.5);
  EXPECT_EQ(copy.header_count(), 1u);
  EXPECT_EQ(copy.top_name(), "test-a");
  // The original still sees both headers: the pop only shrank the
  // copy's view of the shared stack.
  EXPECT_EQ(p.header_count(), 2u);
  EXPECT_EQ(p.top_name(), "test-b");
  EXPECT_EQ(std::as_const(p).peek<TestHeaderB>()->payload, 2.5);
}

TEST(PacketTest, PushAfterSharedPopDoesNotResurrectHiddenHeaders) {
  Packet p(10);
  p.push(TestHeaderA{});
  p.push(TestHeaderB{});
  Packet copy = p;
  (void)copy.pop<TestHeaderB>();

  // Pushing onto the truncated view must build on [TestHeaderA] only.
  TestHeaderA replacement;
  replacement.value = 3;
  copy.push(replacement);
  EXPECT_EQ(copy.header_count(), 2u);
  EXPECT_EQ(copy.top_name(), "test-a");
  EXPECT_EQ(std::as_const(copy).peek<TestHeaderA>()->value, 3);
  // Original unaffected.
  EXPECT_EQ(p.header_count(), 2u);
  EXPECT_EQ(p.top_name(), "test-b");
}

TEST(PacketTest, UniqueOwnerPopsDestructively) {
  // When nothing shares the stack, pop must not copy-detach: after the
  // last copy dies, the survivor mutates its storage in place again.
  Packet p(10);
  p.push(TestHeaderA{});
  p.push(TestHeaderB{});
  {
    Packet transient = p;
    (void)transient;
  }
  const std::uint64_t detaches_before = Packet::cow_detach_count();
  (void)p.pop<TestHeaderB>();
  p.peek<TestHeaderA>()->value = 11;
  EXPECT_EQ(Packet::cow_detach_count(), detaches_before)
      << "sole owner must never pay a copy-on-write detach";
  EXPECT_EQ(p.header_count(), 1u);
}

TEST(PacketTest, SizeBytesFollowsTheVisibleView) {
  Packet p(100);
  p.push(TestHeaderA{});  // 10 bytes
  p.push(TestHeaderB{});  // 4 bytes
  Packet copy = p;
  (void)copy.pop<TestHeaderB>();
  EXPECT_EQ(copy.size_bytes(), 110u);
  EXPECT_EQ(p.size_bytes(), 114u);
}

TEST(PacketTest, FindSearchesOnlyTheVisibleView) {
  Packet p(10);
  TestHeaderB hidden;
  hidden.payload = 1.0;
  p.push(TestHeaderA{});
  p.push(hidden);
  Packet copy = p;
  (void)copy.pop<TestHeaderB>();
  EXPECT_EQ(copy.find<TestHeaderB>(), nullptr)
      << "a popped header must be invisible to find()";
  EXPECT_NE(p.find<TestHeaderB>(), nullptr);
}

TEST(PacketTest, CowDetachCountTracksDetaches) {
  Packet p(10);
  p.push(TestHeaderA{});
  const std::uint64_t before = Packet::cow_detach_count();
  p.peek<TestHeaderA>()->value = 1;  // unique: no detach
  EXPECT_EQ(Packet::cow_detach_count(), before);
  Packet copy = p;
  copy.peek<TestHeaderA>()->value = 2;  // shared: detach
  EXPECT_EQ(Packet::cow_detach_count(), before + 1);
}

}  // namespace
}  // namespace cavenet::netsim
