#include "netsim/packet.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace cavenet::netsim {
namespace {

struct TestHeaderA final : HeaderBase<TestHeaderA> {
  int value = 0;
  std::size_t size_bytes() const override { return 10; }
  std::string_view name() const override { return "test-a"; }
};

struct TestHeaderB final : HeaderBase<TestHeaderB> {
  double payload = 0.0;
  std::size_t size_bytes() const override { return 4; }
  std::string_view name() const override { return "test-b"; }
};

TEST(PacketTest, PayloadSizeOnly) {
  Packet p(512);
  EXPECT_EQ(p.payload_bytes(), 512u);
  EXPECT_EQ(p.size_bytes(), 512u);
  EXPECT_EQ(p.header_count(), 0u);
}

TEST(PacketTest, UidsAreUniqueAcrossPackets) {
  Packet a(0), b(0);
  EXPECT_NE(a.uid(), b.uid());
}

TEST(PacketTest, PushAddsHeaderSize) {
  Packet p(100);
  TestHeaderA a;
  a.value = 7;
  p.push(a);
  EXPECT_EQ(p.size_bytes(), 110u);
  TestHeaderB b;
  p.push(b);
  EXPECT_EQ(p.size_bytes(), 114u);
  EXPECT_EQ(p.header_count(), 2u);
}

TEST(PacketTest, PeekSeesTopHeaderOnly) {
  Packet p(0);
  TestHeaderA a;
  a.value = 42;
  p.push(a);
  TestHeaderB b;
  b.payload = 2.5;
  p.push(b);
  EXPECT_EQ(p.peek<TestHeaderA>(), nullptr);
  ASSERT_NE(p.peek<TestHeaderB>(), nullptr);
  EXPECT_DOUBLE_EQ(p.peek<TestHeaderB>()->payload, 2.5);
}

TEST(PacketTest, PopReturnsAndRemoves) {
  Packet p(0);
  TestHeaderA a;
  a.value = 9;
  p.push(a);
  const TestHeaderA popped = p.pop<TestHeaderA>();
  EXPECT_EQ(popped.value, 9);
  EXPECT_EQ(p.header_count(), 0u);
  EXPECT_EQ(p.size_bytes(), 0u);
}

TEST(PacketTest, PopWrongTypeThrows) {
  Packet p(0);
  p.push(TestHeaderA{});
  EXPECT_THROW(p.pop<TestHeaderB>(), std::logic_error);
  Packet empty(0);
  EXPECT_THROW(empty.pop<TestHeaderA>(), std::logic_error);
}

TEST(PacketTest, FindSearchesWholeStack) {
  Packet p(0);
  TestHeaderA a;
  a.value = 13;
  p.push(a);
  p.push(TestHeaderB{});
  ASSERT_NE(p.find<TestHeaderA>(), nullptr);
  EXPECT_EQ(p.find<TestHeaderA>()->value, 13);
}

TEST(PacketTest, CopyIsDeepButKeepsUid) {
  Packet p(64);
  TestHeaderA a;
  a.value = 1;
  p.push(a);
  Packet copy = p;
  EXPECT_EQ(copy.uid(), p.uid());
  EXPECT_EQ(copy.size_bytes(), p.size_bytes());
  // Mutating the copy's header must not affect the original.
  copy.peek<TestHeaderA>()->value = 99;
  EXPECT_EQ(p.peek<TestHeaderA>()->value, 1);
}

TEST(PacketTest, CopyAssignmentReplacesContents) {
  Packet p(10);
  p.push(TestHeaderA{});
  Packet q(20);
  q.push(TestHeaderB{});
  q = p;
  EXPECT_EQ(q.payload_bytes(), 10u);
  EXPECT_NE(q.peek<TestHeaderA>(), nullptr);
  EXPECT_EQ(q.uid(), p.uid());
}

TEST(PacketTest, SelfAssignmentIsSafe) {
  Packet p(10);
  p.push(TestHeaderA{});
  Packet& alias = p;
  p = alias;
  EXPECT_EQ(p.payload_bytes(), 10u);
  EXPECT_EQ(p.header_count(), 1u);
}

TEST(PacketTest, MovePreservesEverything) {
  Packet p(33);
  TestHeaderA a;
  a.value = 5;
  p.push(a);
  const std::uint64_t uid = p.uid();
  Packet moved = std::move(p);
  EXPECT_EQ(moved.uid(), uid);
  EXPECT_EQ(moved.payload_bytes(), 33u);
  EXPECT_EQ(moved.peek<TestHeaderA>()->value, 5);
}

}  // namespace
}  // namespace cavenet::netsim
