#include "netsim/packet_log.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cavenet::netsim {
namespace {

using namespace cavenet::literals;

TEST(PacketLogTest, RecordsEntriesInOrder) {
  PacketLog log;
  log.record(1_s, PacketLog::Event::kSend, PacketLog::Layer::kAgent, 4, 17,
             "cbr", 512);
  log.record(2_s, PacketLog::Event::kReceive, PacketLog::Layer::kMac, 0, 17,
             "cbr", 512);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.entries()[0].node, 4u);
  EXPECT_EQ(log.entries()[1].event, PacketLog::Event::kReceive);
}

TEST(PacketLogTest, CountsByEventAndLayer) {
  PacketLog log;
  log.record(1_s, PacketLog::Event::kDrop, PacketLog::Layer::kMac, 1, 1, "x", 1);
  log.record(2_s, PacketLog::Event::kDrop, PacketLog::Layer::kMac, 2, 2, "x", 1);
  log.record(3_s, PacketLog::Event::kDrop, PacketLog::Layer::kRouter, 3, 3, "x", 1);
  EXPECT_EQ(log.count(PacketLog::Event::kDrop, PacketLog::Layer::kMac), 2u);
  EXPECT_EQ(log.count(PacketLog::Event::kDrop, PacketLog::Layer::kRouter), 1u);
  EXPECT_EQ(log.count(PacketLog::Event::kSend, PacketLog::Layer::kMac), 0u);
}

TEST(PacketLogTest, Ns2LineFormat) {
  PacketLog log;
  log.record(SimTime::milliseconds(10500), PacketLog::Event::kSend,
             PacketLog::Layer::kAgent, 4, 17, "cbr", 512);
  std::ostringstream out;
  log.write_ns2(out);
  EXPECT_EQ(out.str(), "s 10.500000000 _4_ AGT --- 17 cbr 512\n");
}

TEST(PacketLogTest, EventCodesAndLayerNames) {
  EXPECT_EQ(PacketLog::event_code(PacketLog::Event::kSend), 's');
  EXPECT_EQ(PacketLog::event_code(PacketLog::Event::kReceive), 'r');
  EXPECT_EQ(PacketLog::event_code(PacketLog::Event::kForward), 'f');
  EXPECT_EQ(PacketLog::event_code(PacketLog::Event::kDrop), 'D');
  EXPECT_STREQ(PacketLog::layer_name(PacketLog::Layer::kAgent), "AGT");
  EXPECT_STREQ(PacketLog::layer_name(PacketLog::Layer::kRouter), "RTR");
  EXPECT_STREQ(PacketLog::layer_name(PacketLog::Layer::kMac), "MAC");
}

TEST(PacketLogTest, ClearEmpties) {
  PacketLog log;
  log.record(1_s, PacketLog::Event::kSend, PacketLog::Layer::kMac, 0, 0, "x", 0);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

}  // namespace
}  // namespace cavenet::netsim
