#include "netsim/packet_log.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/trace_sink.h"

namespace cavenet::netsim {
namespace {

using namespace cavenet::literals;

TEST(PacketLogTest, RecordsEntriesInOrder) {
  PacketLog log;
  log.record(1_s, PacketLog::Event::kSend, PacketLog::Layer::kAgent, 4, 17,
             "cbr", 512);
  log.record(2_s, PacketLog::Event::kReceive, PacketLog::Layer::kMac, 0, 17,
             "cbr", 512);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.entries()[0].node, 4u);
  EXPECT_EQ(log.entries()[1].event, PacketLog::Event::kReceive);
}

TEST(PacketLogTest, CountsByEventAndLayer) {
  PacketLog log;
  log.record(1_s, PacketLog::Event::kDrop, PacketLog::Layer::kMac, 1, 1, "x", 1);
  log.record(2_s, PacketLog::Event::kDrop, PacketLog::Layer::kMac, 2, 2, "x", 1);
  log.record(3_s, PacketLog::Event::kDrop, PacketLog::Layer::kRouter, 3, 3, "x", 1);
  EXPECT_EQ(log.count(PacketLog::Event::kDrop, PacketLog::Layer::kMac), 2u);
  EXPECT_EQ(log.count(PacketLog::Event::kDrop, PacketLog::Layer::kRouter), 1u);
  EXPECT_EQ(log.count(PacketLog::Event::kSend, PacketLog::Layer::kMac), 0u);
}

TEST(PacketLogTest, Ns2LineFormat) {
  PacketLog log;
  log.record(SimTime::milliseconds(10500), PacketLog::Event::kSend,
             PacketLog::Layer::kAgent, 4, 17, "cbr", 512);
  std::ostringstream out;
  log.write_ns2(out);
  EXPECT_EQ(out.str(), "s 10.500000000 _4_ AGT --- 17 cbr 512\n");
}

TEST(PacketLogTest, EventCodesAndLayerNames) {
  EXPECT_EQ(PacketLog::event_code(PacketLog::Event::kSend), 's');
  EXPECT_EQ(PacketLog::event_code(PacketLog::Event::kReceive), 'r');
  EXPECT_EQ(PacketLog::event_code(PacketLog::Event::kForward), 'f');
  EXPECT_EQ(PacketLog::event_code(PacketLog::Event::kDrop), 'D');
  EXPECT_STREQ(PacketLog::layer_name(PacketLog::Layer::kAgent), "AGT");
  EXPECT_STREQ(PacketLog::layer_name(PacketLog::Layer::kRouter), "RTR");
  EXPECT_STREQ(PacketLog::layer_name(PacketLog::Layer::kMac), "MAC");
}

TEST(PacketLogTest, ClearEmpties) {
  PacketLog log;
  log.record(1_s, PacketLog::Event::kSend, PacketLog::Layer::kMac, 0, 0, "x", 0);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(PacketLogTest, CapsEntriesAndCountsDropped) {
  PacketLog log;
  log.set_max_entries(3);
  for (int i = 0; i < 5; ++i) {
    log.record(1_s, PacketLog::Event::kSend, PacketLog::Layer::kMac, 0,
               static_cast<std::uint64_t>(i), "cbr", 512);
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 2u);
  // The first three records survive.
  EXPECT_EQ(log.entries().back().uid, 2u);
}

TEST(PacketLogTest, InternsTypeNames) {
  PacketLog log;
  // Two records with equal content but distinct storage must share the
  // interned backing string.
  const std::string first = "aodv-" + std::string("rreq");
  const std::string second = "aodv-" + std::string("rreq");
  log.record(1_s, PacketLog::Event::kSend, PacketLog::Layer::kRouter, 0, 1,
             first, 64);
  log.record(2_s, PacketLog::Event::kSend, PacketLog::Layer::kRouter, 0, 2,
             second, 64);
  EXPECT_EQ(log.entries()[0].type.data(), log.entries()[1].type.data());
  EXPECT_EQ(log.entries()[0].type, "aodv-rreq");
}

TEST(PacketLogTest, MirrorsIntoTraceSink) {
  PacketLog log;
  obs::ChromeTraceWriter trace;
  log.set_trace_sink(&trace);
  log.set_max_entries(1);
  log.record(1_s, PacketLog::Event::kSend, PacketLog::Layer::kMac, 4, 1,
             "cbr", 512);
  // Beyond the cap: dropped from entries() but still traced.
  log.record(2_s, PacketLog::Event::kSend, PacketLog::Layer::kMac, 4, 2,
             "cbr", 512);
  EXPECT_EQ(log.size(), 1u);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.events()[0].name, "cbr");
  EXPECT_EQ(trace.events()[0].category, "MAC");
  EXPECT_EQ(trace.events()[0].tid, 4u);
}

}  // namespace
}  // namespace cavenet::netsim
