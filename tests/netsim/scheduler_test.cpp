#include "netsim/scheduler.h"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace cavenet::netsim {
namespace {

using namespace cavenet::literals;

TEST(SchedulerTest, EmptyInitially) {
  Scheduler s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.next_time(), SimTime::max());
  EXPECT_FALSE(s.run_one());
}

TEST(SchedulerTest, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(3_s, [&] { order.push_back(3); });
  s.schedule_at(1_s, [&] { order.push_back(1); });
  s.schedule_at(2_s, [&] { order.push_back(2); });
  while (s.run_one()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5_s, [&order, i] { order.push_back(i); });
  }
  while (s.run_one()) {
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  EventId id = s.schedule_at(1_s, [&] { fired = true; });
  EXPECT_TRUE(id.pending());
  id.cancel();
  EXPECT_FALSE(id.pending());
  while (s.run_one()) {
  }
  EXPECT_FALSE(fired);
}

TEST(SchedulerTest, CancelIsIdempotentAndSafeAfterExpiry) {
  Scheduler s;
  EventId id = s.schedule_at(1_s, [] {});
  s.run_one();
  EXPECT_FALSE(id.pending());
  id.cancel();  // no crash
  EventId defaulted;
  defaulted.cancel();  // no crash
  EXPECT_FALSE(defaulted.pending());
}

TEST(SchedulerTest, RejectsSchedulingIntoThePast) {
  Scheduler s;
  s.schedule_at(10_s, [] {});
  s.run_one();
  EXPECT_THROW(s.schedule_at(5_s, [] {}), std::logic_error);
  // Scheduling at exactly the current time is allowed.
  EXPECT_NO_THROW(s.schedule_at(10_s, [] {}));
}

TEST(SchedulerTest, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int count = 0;
  std::function<void()> reschedule = [&]() {
    ++count;
    if (count < 5) {
      s.schedule_at(s.last_dispatched() + 1_s, reschedule);
    }
  };
  s.schedule_at(0_s, reschedule);
  while (s.run_one()) {
  }
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.last_dispatched(), 4_s);
}

TEST(SchedulerTest, DispatchedCountTracksExecutedOnly) {
  Scheduler s;
  s.schedule_at(1_s, [] {});
  EventId cancelled = s.schedule_at(2_s, [] {});
  cancelled.cancel();
  s.schedule_at(3_s, [] {});
  while (s.run_one()) {
  }
  EXPECT_EQ(s.dispatched_count(), 2u);
}

TEST(SchedulerTest, NextTimeSkipsCancelled) {
  Scheduler s;
  EventId first = s.schedule_at(1_s, [] {});
  s.schedule_at(2_s, [] {});
  first.cancel();
  EXPECT_EQ(s.next_time(), 2_s);
}

}  // namespace
}  // namespace cavenet::netsim
