#include "netsim/scheduler.h"

#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace cavenet::netsim {
namespace {

using namespace cavenet::literals;

TEST(SchedulerTest, EmptyInitially) {
  Scheduler s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.next_time(), SimTime::max());
  EXPECT_FALSE(s.run_one());
}

TEST(SchedulerTest, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(3_s, [&] { order.push_back(3); });
  s.schedule_at(1_s, [&] { order.push_back(1); });
  s.schedule_at(2_s, [&] { order.push_back(2); });
  while (s.run_one()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5_s, [&order, i] { order.push_back(i); });
  }
  while (s.run_one()) {
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  EventId id = s.schedule_at(1_s, [&] { fired = true; });
  EXPECT_TRUE(id.pending());
  id.cancel();
  EXPECT_FALSE(id.pending());
  while (s.run_one()) {
  }
  EXPECT_FALSE(fired);
}

TEST(SchedulerTest, CancelIsIdempotentAndSafeAfterExpiry) {
  Scheduler s;
  EventId id = s.schedule_at(1_s, [] {});
  s.run_one();
  EXPECT_FALSE(id.pending());
  id.cancel();  // no crash
  EventId defaulted;
  defaulted.cancel();  // no crash
  EXPECT_FALSE(defaulted.pending());
}

TEST(SchedulerTest, RejectsSchedulingIntoThePast) {
  Scheduler s;
  s.schedule_at(10_s, [] {});
  s.run_one();
  EXPECT_THROW(s.schedule_at(5_s, [] {}), std::logic_error);
  // Scheduling at exactly the current time is allowed.
  EXPECT_NO_THROW(s.schedule_at(10_s, [] {}));
}

TEST(SchedulerTest, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int count = 0;
  std::function<void()> reschedule = [&]() {
    ++count;
    if (count < 5) {
      s.schedule_at(s.last_dispatched() + 1_s, reschedule);
    }
  };
  s.schedule_at(0_s, reschedule);
  while (s.run_one()) {
  }
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.last_dispatched(), 4_s);
}

TEST(SchedulerTest, DispatchedCountTracksExecutedOnly) {
  Scheduler s;
  s.schedule_at(1_s, [] {});
  EventId cancelled = s.schedule_at(2_s, [] {});
  cancelled.cancel();
  s.schedule_at(3_s, [] {});
  while (s.run_one()) {
  }
  EXPECT_EQ(s.dispatched_count(), 2u);
}

TEST(SchedulerTest, NextTimeSkipsCancelled) {
  Scheduler s;
  EventId first = s.schedule_at(1_s, [] {});
  s.schedule_at(2_s, [] {});
  first.cancel();
  EXPECT_EQ(s.next_time(), 2_s);
}

TEST(SchedulerTest, CancelReleasesCapturedResourcesEagerly) {
  Scheduler s;
  auto resource = std::make_shared<int>(42);
  EventId id = s.schedule_at(1_s, [resource] { (void)*resource; });
  EXPECT_EQ(resource.use_count(), 2);
  // The tombstone stays queued, but the capture must die at cancel()
  // time — pinned packets/buffers must not wait for the heap top.
  id.cancel();
  EXPECT_EQ(resource.use_count(), 1);
  EXPECT_EQ(s.size(), 1u) << "lazy heap entry remains until dropped";
  EXPECT_TRUE(s.empty()) << "but no live event is pending";
}

TEST(SchedulerTest, StaleHandleToRecycledSlotStaysInert) {
  // ABA gate: a handle must reference exactly one incarnation of its
  // pool slot. Cancelling once frees the slot; the next schedule reuses
  // it under a new generation, and the old handle must not touch it.
  Scheduler s;
  EventId old_id = s.schedule_at(1_s, [] {});
  old_id.cancel();

  bool fired = false;
  EventId fresh = s.schedule_at(2_s, [&fired] { fired = true; });
  EXPECT_FALSE(old_id.pending()) << "stale handle must not see the reuse";
  EXPECT_TRUE(fresh.pending());

  old_id.cancel();  // must be a no-op on the recycled slot
  EXPECT_TRUE(fresh.pending());
  while (s.run_one()) {
  }
  EXPECT_TRUE(fired) << "stale cancel must not kill the recycled event";
}

TEST(SchedulerTest, StaleHandleSurvivesManyRecycles) {
  Scheduler s;
  EventId stale = s.schedule_at(1_s, [] {});
  stale.cancel();
  // Drive the slot through many schedule/dispatch reuses, checking the
  // stale handle never resurrects.
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    s.schedule_at(SimTime::from_seconds(2.0 + i), [&fired] { ++fired; });
    stale.cancel();
    EXPECT_FALSE(stale.pending());
    while (s.run_one()) {
    }
  }
  EXPECT_EQ(fired, 100);
}

TEST(SchedulerTest, SelfCancelDuringDispatchIsSafe) {
  Scheduler s;
  EventId self;
  bool pending_during_dispatch = false;
  self = s.schedule_at(1_s, [&] {
    pending_during_dispatch = self.pending();
    self.cancel();
    EXPECT_FALSE(self.pending());
  });
  while (s.run_one()) {
  }
  // Matches the old shared_ptr kernel: the running event is pending
  // until its handler returns.
  EXPECT_TRUE(pending_during_dispatch);
  // The slot must be recyclable afterwards.
  bool fired = false;
  s.schedule_at(2_s, [&fired] { fired = true; });
  while (s.run_one()) {
  }
  EXPECT_TRUE(fired);
}

TEST(SchedulerTest, MassCancellationCompactsTombstones) {
  Scheduler s;
  std::vector<EventId> ids;
  for (int i = 0; i < 1024; ++i) {
    ids.push_back(s.schedule_at(SimTime::from_seconds(1.0 + i), [] {}));
  }
  s.schedule_at(2000_s, [] {});
  for (EventId& id : ids) id.cancel();
  // >50 % of the queue is tombstones, so compaction must have rebuilt
  // the heap instead of carrying 1024 dead entries.
  EXPECT_LT(s.size(), 64u);
  EXPECT_EQ(s.next_time(), 2000_s);
  int fired = 0;
  while (s.run_one()) {
    ++fired;
  }
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace cavenet::netsim
