// Sharded-kernel units: the shared sequence counter, the peekable
// scheduler heads the merged dispatcher relies on, and the Simulator's
// shard plumbing (enable_sharding lifecycle, schedule_on routing, and
// merged dispatch order == single-queue order).
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "netsim/scheduler.h"
#include "netsim/simulator.h"

namespace cavenet::netsim {
namespace {

using namespace cavenet::literals;

TEST(SchedulerShardTest, PeekNextOnEmptyIsFalse) {
  Scheduler s;
  SimTime at = SimTime::zero();
  std::uint64_t seq = 0;
  EXPECT_FALSE(s.peek_next(at, seq));
}

TEST(SchedulerShardTest, PeekNextReportsHeadWithoutPopping) {
  Scheduler s;
  s.schedule_at(3_s, [] {});
  s.schedule_at(1_s, [] {});
  SimTime at = SimTime::zero();
  std::uint64_t seq = 0;
  ASSERT_TRUE(s.peek_next(at, seq));
  EXPECT_EQ(at, 1_s);
  ASSERT_TRUE(s.peek_next(at, seq));  // still there
  EXPECT_EQ(at, 1_s);
  EXPECT_EQ(s.size(), 2u);
}

TEST(SchedulerShardTest, PeekNextSkipsCancelledHead) {
  Scheduler s;
  EventId early = s.schedule_at(1_s, [] {});
  s.schedule_at(2_s, [] {});
  early.cancel();
  SimTime at = SimTime::zero();
  std::uint64_t seq = 0;
  ASSERT_TRUE(s.peek_next(at, seq));
  EXPECT_EQ(at, 2_s);
}

TEST(SchedulerShardTest, SharedSequenceOrdersAcrossSchedulers) {
  // Two schedulers drawing from one counter: simultaneous events dispatch
  // in global insertion order regardless of which queue holds them.
  std::uint64_t shared = 0;
  Scheduler a;
  Scheduler b;
  a.share_sequence(&shared);
  b.share_sequence(&shared);

  std::vector<int> order;
  a.schedule_at(1_s, [&] { order.push_back(0); });
  b.schedule_at(1_s, [&] { order.push_back(1); });
  a.schedule_at(1_s, [&] { order.push_back(2); });
  b.schedule_at(1_s, [&] { order.push_back(3); });
  EXPECT_EQ(shared, 4u);

  // Merge manually the way the sharded Simulator does.
  for (int i = 0; i < 4; ++i) {
    SimTime ta = SimTime::max(), tb = SimTime::max();
    std::uint64_t sa = 0, sb = 0;
    const bool ha = a.peek_next(ta, sa);
    const bool hb = b.peek_next(tb, sb);
    ASSERT_TRUE(ha || hb);
    if (!hb || (ha && (ta < tb || (ta == tb && sa < sb)))) {
      a.run_one();
    } else {
      b.run_one();
    }
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SchedulerShardTest, ShareSequenceNullRestoresPrivateCounter) {
  std::uint64_t shared = 100;
  Scheduler s;
  s.share_sequence(&shared);
  s.schedule_at(1_s, [] {});
  EXPECT_EQ(shared, 101u);
  s.share_sequence(nullptr);
  s.schedule_at(1_s, [] {});
  EXPECT_EQ(shared, 101u);  // private counter again
}

TEST(SimulatorShardTest, EnableShardingValidatesCount) {
  Simulator sim;
  EXPECT_THROW(sim.enable_sharding(0), std::invalid_argument);
  EXPECT_EQ(sim.shard_count(), 1u);
}

TEST(SimulatorShardTest, EnableShardingOnceOnly) {
  Simulator sim;
  sim.enable_sharding(4);
  EXPECT_EQ(sim.shard_count(), 4u);
  EXPECT_THROW(sim.enable_sharding(2), std::logic_error);
}

TEST(SimulatorShardTest, ShardingOfOneIsANoOp) {
  Simulator sim;
  sim.enable_sharding(1);
  EXPECT_EQ(sim.shard_count(), 1u);
  // Not "already enabled": 1 shard leaves the kernel untouched.
  sim.enable_sharding(3);
  EXPECT_EQ(sim.shard_count(), 3u);
}

TEST(SimulatorShardTest, EnableShardingRejectedAfterFirstEvent) {
  Simulator sim;
  sim.schedule(1_s, [] {});
  EXPECT_THROW(sim.enable_sharding(2), std::logic_error);
}

TEST(SimulatorShardTest, ScheduleOnValidatesShardIndex) {
  Simulator sim;
  sim.enable_sharding(2);
  EXPECT_THROW(sim.schedule_on(2, 1_s, "t", [] {}), std::out_of_range);
  sim.schedule_on(1, 1_s, "t", [] {});
  EXPECT_EQ(sim.queue_depth(), 1u);
}

TEST(SimulatorShardTest, MergedDispatchMatchesSingleQueueOrder) {
  // The same interleaved schedule executed unsharded and at several shard
  // counts (events round-robined onto explicit shards) must dispatch in
  // the identical global order: the shared sequence counter keys ties.
  const auto run_plan = [](std::uint32_t shards) {
    Simulator sim;
    if (shards > 1) sim.enable_sharding(shards);
    std::vector<int> order;
    int id = 0;
    for (const double t : {3.0, 1.0, 2.0, 1.0, 3.0, 2.0, 1.0, 2.0}) {
      const int tag = id++;
      const auto action = [&order, tag] { order.push_back(tag); };
      if (shards > 1) {
        sim.schedule_on(static_cast<std::uint32_t>(tag) % shards,
                        SimTime::from_seconds(t), "t", action);
      } else {
        sim.schedule(SimTime::from_seconds(t), "t", action);
      }
    }
    // Handlers spawn follow-ups (inheriting the dispatching shard), so
    // the merge also covers events scheduled mid-run.
    sim.schedule(SimTime::from_seconds(0.5), "t", [&sim, &order] {
      order.push_back(100);
      sim.schedule(1_s, "t", [&order] { order.push_back(101); });
    });
    sim.run();
    return order;
  };

  const std::vector<int> reference = run_plan(1);
  ASSERT_EQ(reference.size(), 10u);
  for (const std::uint32_t shards : {2u, 3u, 5u}) {
    EXPECT_EQ(run_plan(shards), reference) << "shards=" << shards;
  }
}

TEST(SimulatorShardTest, EventCountsAggregateAcrossShards) {
  Simulator sim;
  sim.enable_sharding(3);
  for (std::uint32_t s = 0; s < 3; ++s) {
    sim.schedule_on(s, 1_s, "t", [] {});
    sim.schedule_on(s, 2_s, "t", [] {});
  }
  EXPECT_EQ(sim.queue_depth(), 6u);
  sim.run_until(1_s);
  EXPECT_EQ(sim.events_dispatched(), 3u);
  EXPECT_EQ(sim.queue_depth(), 3u);
  sim.run();
  EXPECT_EQ(sim.events_dispatched(), 6u);
}

TEST(SimulatorShardTest, RunUntilAdvancesClockWithShards) {
  Simulator sim;
  sim.enable_sharding(2);
  bool fired = false;
  sim.schedule_on(1, 1_s, "t", [&] { fired = true; });
  sim.run_until(5_s);
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 5_s);
}

}  // namespace
}  // namespace cavenet::netsim
