#include "netsim/simulator.h"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace cavenet::netsim {
namespace {

using namespace cavenet::literals;

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
}

TEST(SimulatorTest, ScheduleAdvancesClockToEventTime) {
  Simulator sim;
  SimTime seen = SimTime::zero();
  sim.schedule(5_s, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 5_s);
  EXPECT_EQ(sim.now(), 5_s);
}

TEST(SimulatorTest, RelativeDelaysCompose) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(1_s, [&] {
    times.push_back(sim.now().sec());
    sim.schedule(2_s, [&] { times.push_back(sim.now().sec()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(SimulatorTest, RejectsNegativeDelayAndPastAbsolute) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(SimTime::zero() - 1_s, [] {}),
               std::invalid_argument);
  sim.schedule(2_s, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1_s, [] {}), std::invalid_argument);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1_s, [&] { ++fired; });
  sim.schedule(10_s, [&] { ++fired; });
  sim.run_until(5_s);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 5_s);
  sim.run_until(20_s);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20_s);
}

TEST(SimulatorTest, RunUntilIncludesEventsAtBoundary) {
  Simulator sim;
  bool fired = false;
  sim.schedule(5_s, [&] { fired = true; });
  sim.run_until(5_s);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, StopAbortsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1_s, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule(2_s, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  // A second run resumes with the remaining events.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, MakeRngIsDeterministicPerStream) {
  Simulator sim(42);
  Rng a = sim.make_rng(1);
  Rng b = sim.make_rng(1);
  Rng c = sim.make_rng(2);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng a2 = sim.make_rng(1);
  EXPECT_NE(a2.next_u64(), c.next_u64());
  EXPECT_EQ(sim.seed(), 42u);
}

TEST(SimulatorTest, EventsDispatchedCount) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(SimTime::seconds(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_dispatched(), 7u);
}

}  // namespace
}  // namespace cavenet::netsim
