// Simulator::enable_parallel units (docs/SCALING.md "Threading"):
// ParallelConfig validation, pool provisioning, epoch-barrier cadence
// and ordering against event dispatch, and the opt-in
// shard.epoch_barriers / exec.* stats publication.
#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "netsim/parallel.h"
#include "netsim/simulator.h"
#include "obs/stats_registry.h"
#include "util/sim_time.h"

namespace cavenet::netsim {
namespace {

std::uint64_t counter_value(const obs::StatsSnapshot& snap,
                            const std::string& name) {
  for (const auto& [key, value] : snap.counters) {
    if (key == name) return value;
  }
  ADD_FAILURE() << "counter " << name << " not published";
  return 0;
}

bool has_gauge(const obs::StatsSnapshot& snap, const std::string& name) {
  for (const auto& [key, value] : snap.gauges) {
    if (key == name) return true;
  }
  return false;
}

TEST(ParallelConfigTest, ValidateRejectsOutOfRangeValues) {
  EXPECT_THROW(ParallelConfig{.shards = 0}.validate(), std::invalid_argument);
  EXPECT_THROW((ParallelConfig{.shards = 1, .threads = 1, .epoch_s = 0.0}
                    .validate()),
               std::invalid_argument);
  EXPECT_NO_THROW((ParallelConfig{.shards = 4, .threads = 0, .epoch_s = 0.5}
                       .validate()));
  EXPECT_FALSE(ParallelConfig{}.enabled());
  EXPECT_TRUE((ParallelConfig{.shards = 2}.enabled()));
  EXPECT_TRUE((ParallelConfig{.shards = 1, .threads = 4}.enabled()));
  EXPECT_TRUE((ParallelConfig{.shards = 1, .threads = 0}.enabled()));
}

TEST(ParallelKernelTest, EnableParallelProvisionsShardsAndPool) {
  Simulator sim;
  EXPECT_EQ(sim.threads(), 1);
  sim.enable_parallel({.shards = 2, .threads = 3, .epoch_s = 0.5});
  EXPECT_EQ(sim.shard_count(), 2u);
  EXPECT_EQ(sim.threads(), 3);
  EXPECT_EQ(sim.executor().workers(), 3);
}

TEST(ParallelKernelTest, EnableParallelRejectsReentryAndLateCalls) {
  Simulator sim;
  sim.enable_parallel({.shards = 2, .threads = 1, .epoch_s = 1.0});
  EXPECT_THROW(sim.enable_parallel({.shards = 2}), std::logic_error);

  Simulator late;
  late.schedule(SimTime::from_seconds(1.0), [] {});
  EXPECT_THROW(late.enable_parallel({.shards = 2}), std::logic_error);
}

TEST(ParallelKernelTest, EpochTasksFireAtCadenceBeforeTheGatingEvent) {
  Simulator sim;
  sim.enable_parallel({.shards = 2, .threads = 1, .epoch_s = 1.0});
  std::vector<std::pair<char, double>> order;  // ('B', t) / ('E', t)
  sim.register_epoch_task([&](SimTime at) {
    order.emplace_back('B', at.sec());
  });
  for (const double t : {0.7, 1.0, 1.4, 2.1, 2.8, 3.5}) {
    sim.schedule_at(SimTime::from_seconds(t), [&order, t] {
      order.emplace_back('E', t);
    });
  }
  sim.run();

  // A barrier at t runs before the first event with time >= t; quiet
  // epochs (no event past them) never fire.
  const std::vector<std::pair<char, double>> expected = {
      {'E', 0.7}, {'B', 1.0}, {'E', 1.0}, {'E', 1.4}, {'B', 2.0},
      {'E', 2.1}, {'E', 2.8}, {'B', 3.0}, {'E', 3.5},
  };
  EXPECT_EQ(order, expected);
  EXPECT_EQ(sim.epoch_barriers(), 3u);
}

TEST(ParallelKernelTest, LegacyEnableShardingHasNoEpochBarriers) {
  Simulator sim;
  sim.enable_sharding(4);
  EXPECT_EQ(sim.shard_count(), 4u);
  EXPECT_EQ(sim.threads(), 1);
  bool fired = false;
  sim.register_epoch_task([&](SimTime) { fired = true; });
  sim.schedule_at(SimTime::from_seconds(5.0), [] {});
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.epoch_barriers(), 0u);
}

TEST(ParallelKernelTest, BindParallelStatsPublishesBarrierCounter) {
  Simulator sim;
  sim.enable_parallel({.shards = 2, .threads = 1, .epoch_s = 1.0});
  sim.register_epoch_task([](SimTime) {});
  // Cross two barriers before binding: the counter re-publishes them.
  sim.schedule_at(SimTime::from_seconds(2.5), [] {});
  sim.run();
  ASSERT_EQ(sim.epoch_barriers(), 2u);

  obs::StatsRegistry registry;
  sim.bind_parallel_stats(registry);
  sim.schedule_at(SimTime::from_seconds(3.5), [] {});
  sim.run();
  EXPECT_EQ(counter_value(registry.snapshot(), "shard.epoch_barriers"),
            sim.epoch_barriers());
}

TEST(ParallelKernelTest, PublishExecStatsExportsKernelPoolActivity) {
  // Serial kernel: no pool, publish is a no-op.
  Simulator serial;
  obs::StatsRegistry empty;
  serial.publish_exec_stats(empty);
  EXPECT_EQ(empty.snapshot().counters.size(), 0u);

  Simulator sim;
  sim.enable_parallel({.shards = 1, .threads = 2, .epoch_s = 1.0});
  std::atomic<std::size_t> covered{0};
  sim.executor().parallel_for(100, 1, [&](std::size_t) {
    covered.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(covered.load(), 100u);

  obs::StatsRegistry registry;
  sim.publish_exec_stats(registry);
  const obs::StatsSnapshot snap = registry.snapshot();
  EXPECT_GE(counter_value(snap, "exec.batches"), 1u);
  EXPECT_GE(counter_value(snap, "exec.tasks"), 100u);
  EXPECT_GE(counter_value(snap, "exec.chunks"), 1u);
  EXPECT_TRUE(has_gauge(snap, "exec.worker0.wall_ms"));
  EXPECT_TRUE(has_gauge(snap, "exec.worker1.wall_ms"));
}

}  // namespace
}  // namespace cavenet::netsim
