// Pins the spec-engine migration: running the checked-in figure specs
// must write byte-identical CSV + stripped-manifest artifacts to the
// hardcoded drivers the benches used before the migration (replicated
// inline here), at --jobs 1 and --jobs 4 alike.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fundamental_diagram.h"
#include "obs/run_manifest.h"
#include "obs/stats_registry.h"
#include "scenario/run_record.h"
#include "scenario/table1.h"
#include "spec/engine.h"
#include "spec/spec.h"
#include "util/table_writer.h"

#include <gtest/gtest.h>

// Same GCC 12 -Wmaybe-uninitialized false positive inside
// std::variant<std::string,...> row construction that src/spec/figures.cpp
// documents; the string alternative is never the active member here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace cavenet::spec {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing artifact " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void run_spec_into(const CampaignSpec& spec, int jobs, const fs::path& dir) {
  RunOptions options;
  options.jobs = jobs;
  options.output_dir = dir.string();
  ASSERT_EQ(run_spec(spec, options), 0);
}

// The pre-migration bench_fig8_aodv_goodput driver, verbatim: seeds,
// sweep, CSV schema, and manifest assembly (wall timing stripped).
struct GoodputGolden {
  std::string csv;
  std::string manifest;
};

GoodputGolden hardcoded_fig8_aodv() {
  using namespace cavenet::scenario;
  TableIConfig config;
  config.seed = 3;
  config.protocol = Protocol::kAodv;
  obs::StatsRegistry stats;
  config.obs.stats = &stats;
  const auto results = run_all_senders(config, 1, 8, /*jobs=*/1);

  TableWriter csv({"sender", "second", "goodput_bps"});
  double max_goodput = 0.0;
  for (const auto& r : results) {
    for (std::size_t s = 0; s < r.goodput_bps.size(); ++s) {
      csv.add_row({static_cast<std::int64_t>(r.sender),
                   static_cast<std::int64_t>(s), r.goodput_bps[s]});
      max_goodput = std::max(max_goodput, r.goodput_bps[s]);
    }
  }
  std::ostringstream csv_text;
  csv.write_csv(csv_text);

  obs::RunManifest manifest =
      make_run_manifest("goodput_AODV", config, results, 0.0);
  manifest.set_param("senders", "1..8");
  manifest.set_metric("peak_goodput_bps", max_goodput);
  manifest.strip_volatile();
  return {csv_text.str(), manifest.to_json() + "\n"};
}

// The pre-migration bench_fig4_fundamental_diagram driver, verbatim.
GoodputGolden hardcoded_fig4() {
  ca::FundamentalDiagramOptions options;
  options.params.lane_length = 400;
  options.params.v_max = 5;
  options.densities = ca::density_ladder(400, 0.5, 21);
  options.iterations = 500;
  options.trials = 20;
  options.warmup = 200;
  options.seed = 4;
  options.jobs = 1;

  const std::vector<double> ps{0.0, 0.5};
  std::vector<std::vector<ca::FundamentalDiagramPoint>> curves;
  for (const double p : ps) {
    options.params.slowdown_p = p;
    curves.push_back(ca::fundamental_diagram(options));
  }

  TableWriter table(
      {"rho", "J (p=0)", "sd", "J (p=0.5)", "sd", "J theory (p=0)"});
  for (std::size_t i = 0; i < curves.front().size(); ++i) {
    std::vector<TableCell> row;
    row.push_back(curves.front()[i].density);
    for (const auto& curve : curves) {
      row.push_back(curve[i].flow);
      row.push_back(curve[i].flow_stddev);
    }
    row.push_back(ca::deterministic_flow(curves.front()[i].density, 5));
    table.add_row(std::move(row));
  }
  std::ostringstream csv_text;
  table.write_csv(csv_text);

  obs::RunManifest manifest;
  manifest.name = "fig4_fundamental_diagram";
  manifest.seed = 4;
  manifest.set_param("lane_cells", 400);
  manifest.set_param("v_max", static_cast<std::int64_t>(5));
  manifest.set_param("max_density", 0.5);
  manifest.set_param("points", 21);
  manifest.set_param("iterations", 500);
  manifest.set_param("trials", 20);
  manifest.set_param("warmup", 200);
  manifest.set_param("slowdown_p", "0,0.5");
  for (std::size_t c = 0; c < curves.size(); ++c) {
    double peak = 0.0, peak_rho = 0.0;
    for (const auto& point : curves[c]) {
      if (point.flow > peak) {
        peak = point.flow;
        peak_rho = point.density;
      }
    }
    const std::string suffix = c == 0 ? "(p=0)" : "(p=0.5)";
    manifest.set_metric("peak_flow" + suffix, peak);
    manifest.set_metric("peak_density" + suffix, peak_rho);
  }
  manifest.strip_volatile();
  return {csv_text.str(), manifest.to_json() + "\n"};
}

TEST(GoldenEquivalenceTest, Fig8SpecMatchesHardcodedDriverAtAnyJobs) {
  const CampaignSpec spec =
      load_campaign_file(CAVENET_SPEC_DIR "/fig8_aodv.json");
  ASSERT_EQ(spec.kind, SpecKind::kGoodputSurface);

  const GoodputGolden golden = hardcoded_fig8_aodv();
  for (const int jobs : {1, 4}) {
    const fs::path dir =
        fresh_dir("golden_fig8_jobs" + std::to_string(jobs));
    run_spec_into(spec, jobs, dir);
    EXPECT_EQ(slurp(dir / "goodput_AODV.csv"), golden.csv)
        << "CSV diverged from the hardcoded driver at --jobs " << jobs;
    EXPECT_EQ(slurp(dir / "goodput_AODV.manifest.json"), golden.manifest)
        << "manifest diverged from the hardcoded driver at --jobs " << jobs;
  }
}

TEST(GoldenEquivalenceTest, Fig8ShardedMatchesHardcodedDriverAtAnyJobs) {
  // The sharded kernel rides the same gate: every --jobs x --shards
  // combination must write byte-identical artifacts to the unsharded
  // hardcoded driver. Shards are injected into the parsed spec exactly
  // where `engine.parallel.shards` lands.
  CampaignSpec spec = load_campaign_file(CAVENET_SPEC_DIR "/fig8_aodv.json");
  ASSERT_EQ(spec.kind, SpecKind::kGoodputSurface);

  const GoodputGolden golden = hardcoded_fig8_aodv();
  for (const int jobs : {1, 4}) {
    for (const int shards : {1, 4}) {
      spec.scenario.config.parallel.shards = shards;
      const fs::path dir =
          fresh_dir("golden_fig8_jobs" + std::to_string(jobs) + "_shards" +
                    std::to_string(shards));
      run_spec_into(spec, jobs, dir);
      EXPECT_EQ(slurp(dir / "goodput_AODV.csv"), golden.csv)
          << "CSV diverged at --jobs " << jobs << " --shards " << shards;
      EXPECT_EQ(slurp(dir / "goodput_AODV.manifest.json"), golden.manifest)
          << "manifest diverged at --jobs " << jobs << " --shards "
          << shards;
    }
  }
}

TEST(GoldenEquivalenceTest, Fig8ShardedExampleSpecMatchesGoldenCsv) {
  // The checked-in fig8_sharded.json (legacy engine.shards = 4, kept as
  // the alias-path exerciser) must produce the exact CSV of the
  // unsharded Fig. 8 run — the sharded spec differs only in output
  // names.
  const CampaignSpec spec =
      load_campaign_file(CAVENET_SPEC_DIR "/fig8_sharded.json");
  ASSERT_EQ(spec.kind, SpecKind::kGoodputSurface);
  ASSERT_EQ(spec.scenario.config.parallel.shards, 4);

  const fs::path dir = fresh_dir("golden_fig8_sharded_example");
  run_spec_into(spec, /*jobs=*/1, dir);
  EXPECT_EQ(slurp(dir / "goodput_AODV_sharded.csv"),
            hardcoded_fig8_aodv().csv);
}

TEST(GoldenEquivalenceTest, Fig8ParallelExampleSpecMatchesGoldenCsv) {
  // The modern engine.parallel block (shards + executor lanes) rides the
  // same gate: fig8_parallel.json must reproduce the unsharded Fig. 8
  // CSV byte-for-byte with the thread pool live.
  const CampaignSpec spec =
      load_campaign_file(CAVENET_SPEC_DIR "/fig8_parallel.json");
  ASSERT_EQ(spec.kind, SpecKind::kGoodputSurface);
  ASSERT_EQ(spec.scenario.config.parallel.shards, 4);
  ASSERT_EQ(spec.scenario.config.parallel.threads, 4);

  const fs::path dir = fresh_dir("golden_fig8_parallel_example");
  run_spec_into(spec, /*jobs=*/1, dir);
  EXPECT_EQ(slurp(dir / "goodput_AODV_parallel.csv"),
            hardcoded_fig8_aodv().csv);
}

TEST(GoldenEquivalenceTest, Fig4SpecMatchesHardcodedDriverAtAnyJobs) {
  const CampaignSpec spec =
      load_campaign_file(CAVENET_SPEC_DIR "/fig4_fundamental_diagram.json");
  ASSERT_EQ(spec.kind, SpecKind::kFundamentalDiagram);

  const GoodputGolden golden = hardcoded_fig4();
  for (const int jobs : {1, 4}) {
    const fs::path dir =
        fresh_dir("golden_fig4_jobs" + std::to_string(jobs));
    run_spec_into(spec, jobs, dir);
    EXPECT_EQ(slurp(dir / "fig4_fundamental_diagram.csv"), golden.csv)
        << "CSV diverged from the hardcoded driver at --jobs " << jobs;
    EXPECT_EQ(slurp(dir / "fig4_fundamental_diagram.manifest.json"),
              golden.manifest)
        << "manifest diverged from the hardcoded driver at --jobs " << jobs;
  }
}

}  // namespace
}  // namespace cavenet::spec

#pragma GCC diagnostic pop
