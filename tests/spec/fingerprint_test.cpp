#include "spec/fingerprint.h"

#include <string>

#include "obs/json.h"
#include "spec/spec.h"

#include <gtest/gtest.h>

namespace cavenet::spec {
namespace {

TEST(FingerprintTest, Fnv1a64KnownVectors) {
  // Reference vectors for 64-bit FNV-1a.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(FingerprintTest, HexIs16LowercaseDigits) {
  const obs::JsonValue doc = obs::parse_json(R"({"a": 1})");
  const std::string hex = fingerprint_hex(doc);
  ASSERT_EQ(hex.size(), 16u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  }
}

TEST(FingerprintTest, WhitespaceAndFormattingDoNotChangeIt) {
  const std::string compact = R"({"name":"t","kind":"campaign","seed":3})";
  const std::string spaced =
      "{\n  \"name\": \"t\",\n  \"kind\": \"campaign\",\n  \"seed\": 3\n}\n";
  EXPECT_EQ(fingerprint_hex(obs::parse_json(compact)),
            fingerprint_hex(obs::parse_json(spaced)));
}

TEST(FingerprintTest, ValueChangesChangeIt) {
  const auto base = obs::parse_json(R"({"seed": 3})");
  const auto other = obs::parse_json(R"({"seed": 4})");
  EXPECT_NE(fingerprint_hex(base), fingerprint_hex(other));
}

TEST(FingerprintTest, KeyOrderIsSignificant) {
  // Canonical form preserves author key order, so reordering is a
  // different document (and a different checkpoint lineage).
  const auto ab = obs::parse_json(R"({"a": 1, "b": 2})");
  const auto ba = obs::parse_json(R"({"b": 2, "a": 1})");
  EXPECT_NE(fingerprint_hex(ab), fingerprint_hex(ba));
}

TEST(FingerprintTest, ParseCampaignStampsTheDocumentFingerprint) {
  const std::string text =
      R"({"name": "t", "kind": "campaign", "scenario": {"seed": 5}})";
  const CampaignSpec spec = parse_campaign(text, "test.json");
  EXPECT_EQ(spec.fingerprint, fingerprint_hex(obs::parse_json(text)));

  const CampaignSpec reformatted = parse_campaign(
      "{\"name\":\"t\",\"kind\":\"campaign\",\"scenario\":{\"seed\":5}}",
      "test.json");
  EXPECT_EQ(spec.fingerprint, reformatted.fingerprint);

  const CampaignSpec edited = parse_campaign(
      R"({"name": "t", "kind": "campaign", "scenario": {"seed": 6}})",
      "test.json");
  EXPECT_NE(spec.fingerprint, edited.fingerprint);
}

TEST(FingerprintTest, EngineSchemaVersionIsMixedIn) {
  // The default fingerprint is the current-version fingerprint...
  const auto doc = obs::parse_json(R"({"seed": 3})");
  EXPECT_EQ(fingerprint_hex(doc), fingerprint_hex(doc, kEngineSchemaVersion));
  // ...and a version bump changes every document's fingerprint, which is
  // what invalidates old checkpoints and cached results wholesale when
  // the engine's semantics change.
  EXPECT_NE(fingerprint_hex(doc, kEngineSchemaVersion),
            fingerprint_hex(doc, kEngineSchemaVersion + 1));
  EXPECT_NE(fingerprint_hex(doc, 1), fingerprint_hex(doc, 2));
}

TEST(FingerprintTest, ChainedFnvMatchesConcatenation) {
  // fnv1a64(b, fnv1a64(a)) must equal hashing a+b in one pass — the
  // version tag prefix relies on this.
  EXPECT_EQ(fnv1a64("bar", fnv1a64("foo")), fnv1a64("foobar"));
}

}  // namespace
}  // namespace cavenet::spec
