// Campaign progress stream + per-point telemetry artifacts: a multi-point
// campaign reports every point's lifecycle through ProgressStream, and a
// telemetry-enabled spec writes one snapshot JSONL per point that is
// byte-identical whatever the worker count.
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "runner/progress.h"
#include "spec/campaign.h"
#include "spec/spec.h"

#include <gtest/gtest.h>

namespace cavenet::spec {
namespace {

namespace fs = std::filesystem;

// 2 cells x 2 replications = 4 points; telemetry every 5 sim seconds.
const char kCampaignJson[] = R"({
  "name": "progress_probe", "kind": "campaign",
  "scenario": {
    "seed": 11, "duration_s": 20,
    "mobility": {"lane_cells": 150, "vehicles": 12},
    "traffic": {"start_s": 5, "stop_s": 15, "sender": 3},
    "obs": {"telemetry": {"period_s": 5, "mode": "full"}}
  },
  "sweep": {
    "replications": 2,
    "axes": [{"param": "mobility.slowdown_p", "values": [0.3, 0.7]}]
  }
})";

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing artifact " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

runner::ProgressOptions quiet_progress() {
  runner::ProgressOptions options;
  options.heartbeat_period_s = 0.0;  // no watchdog thread: deterministic
  options.stall_after_s = 0.0;
  return options;
}

TEST(CampaignProgressTest, EveryPointReportsLifecycle) {
  const CampaignSpec spec = parse_campaign(kCampaignJson, "progress.json");
  const std::size_t total = expand_points(spec).size();
  ASSERT_EQ(total, 4u);

  const fs::path dir = fresh_dir("campaign_progress");
  runner::ProgressStream progress(total, 2, quiet_progress());
  CampaignOptions options;
  options.jobs = 2;
  options.output_dir = dir.string();
  options.progress = &progress;

  // run_campaign emits campaign_finished itself before returning.
  const CampaignOutcome outcome = run_campaign(spec, options);
  EXPECT_EQ(outcome.points_run, total);
  EXPECT_EQ(progress.finished(), total);

  const std::string stream = progress.jsonl();
  EXPECT_EQ(count_occurrences(stream, "\"event\":\"campaign_started\""), 1u);
  EXPECT_EQ(count_occurrences(stream, "\"event\":\"point_started\""), total);
  EXPECT_EQ(count_occurrences(stream, "\"event\":\"point_finished\""), total);
  EXPECT_EQ(count_occurrences(stream, "\"event\":\"campaign_finished\""), 1u);
  // Throughput fields ride every finish event.
  EXPECT_EQ(count_occurrences(stream, "\"events_per_wall_s\""), total);
  EXPECT_EQ(count_occurrences(stream, "\"eta_s\""), total);
  // Point names carry the campaign's axis-indexed labels.
  EXPECT_NE(stream.find("progress_probe["), std::string::npos);
}

TEST(CampaignProgressTest, ResumedPointsReportAsResumed) {
  const CampaignSpec spec = parse_campaign(kCampaignJson, "progress.json");
  const std::size_t total = expand_points(spec).size();
  const fs::path dir = fresh_dir("campaign_progress_resume");

  CampaignOptions options;
  options.jobs = 2;
  options.output_dir = dir.string();
  ASSERT_EQ(run_campaign(spec, options).points_run, total);

  runner::ProgressStream progress(total, 2, quiet_progress());
  options.resume = true;
  options.progress = &progress;
  const CampaignOutcome outcome = run_campaign(spec, options);
  EXPECT_EQ(outcome.points_resumed, total);
  EXPECT_EQ(progress.finished(), total);
  EXPECT_EQ(count_occurrences(progress.jsonl(), "\"event\":\"point_resumed\""),
            total);
  EXPECT_EQ(count_occurrences(progress.jsonl(), "\"event\":\"point_started\""),
            0u);
}

TEST(CampaignProgressTest, PointTelemetryFilesAreJobInvariant) {
  const CampaignSpec spec = parse_campaign(kCampaignJson, "progress.json");
  const std::size_t total = expand_points(spec).size();

  const fs::path serial_dir = fresh_dir("campaign_telemetry_j1");
  CampaignOptions serial;
  serial.jobs = 1;
  serial.output_dir = serial_dir.string();
  ASSERT_EQ(run_campaign(spec, serial).points_run, total);

  const fs::path parallel_dir = fresh_dir("campaign_telemetry_j4");
  CampaignOptions parallel;
  parallel.jobs = 4;
  parallel.output_dir = parallel_dir.string();
  ASSERT_EQ(run_campaign(spec, parallel).points_run, total);

  for (std::size_t i = 0; i < total; ++i) {
    const std::string name = point_telemetry_path(spec, i);
    const std::string serial_stream = slurp(serial_dir / name);
    EXPECT_FALSE(serial_stream.empty()) << name;
    EXPECT_EQ(serial_stream, slurp(parallel_dir / name)) << name;
    EXPECT_NE(serial_stream.find("\"seq\":0"), std::string::npos);
  }
}

}  // namespace
}  // namespace cavenet::spec
