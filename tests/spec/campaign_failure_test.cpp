// Mid-sweep point failure semantics: the rest of the sweep still runs
// (checkpoints land), then run_campaign throws a CampaignError naming
// every offending point id — which is exactly what cavenet-run prints
// before exiting non-zero — and a --resume re-runs only the failures.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "runner/progress.h"
#include "spec/campaign.h"
#include "spec/spec.h"

#include <gtest/gtest.h>

namespace cavenet::spec {
namespace {

namespace fs = std::filesystem;

// Same cheap 3x2 sweep as the resume test (6 points, 20 s scenario).
const char kCampaignJson[] = R"({
  "name": "failure_probe", "kind": "campaign",
  "scenario": {
    "seed": 11, "duration_s": 20,
    "mobility": {"lane_cells": 150, "vehicles": 12},
    "traffic": {"start_s": 5, "stop_s": 15, "sender": 3}
  },
  "sweep": {
    "replications": 2,
    "axes": [{"param": "mobility.slowdown_p", "values": [0.3, 0.5, 0.7]}]
  }
})";

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing artifact " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(CampaignFailureTest, FailedPointIsNamedAndTheRestStillRuns) {
  const CampaignSpec spec = parse_campaign(kCampaignJson, "failure.json");
  const std::size_t total = expand_points(spec).size();
  ASSERT_EQ(total, 6u);

  // Force exactly point 1 to fail at checkpoint time: plant a DIRECTORY
  // where its manifest file must be written.
  const fs::path dir = fresh_dir("campaign_failure");
  fs::create_directories(dir / point_manifest_path(spec, 1));

  CampaignOptions options;
  options.jobs = 2;
  options.output_dir = dir.string();
  runner::ProgressOptions progress_options;
  progress_options.heartbeat_period_s = 0;
  progress_options.stall_after_s = 0;
  runner::ProgressStream progress(total, options.jobs, progress_options);
  options.progress = &progress;

  try {
    run_campaign(spec, options);
    FAIL() << "expected CampaignError";
  } catch (const CampaignError& error) {
    // The message (what cavenet-run prints on stderr before exiting
    // non-zero) names the campaign and the offending point id.
    const std::string what = error.what();
    EXPECT_NE(what.find("failure_probe"), std::string::npos) << what;
    EXPECT_NE(what.find("1 of 6 points failed"), std::string::npos) << what;
    EXPECT_NE(what.find("point 1:"), std::string::npos) << what;
    ASSERT_EQ(error.failures().size(), 1u);
    EXPECT_EQ(error.failures()[0].index, 1u);
    EXPECT_FALSE(error.failures()[0].error.empty());
  }

  // Every other point still checkpointed; the campaign outputs were NOT
  // rebuilt from the partial sweep.
  for (std::size_t i = 0; i < total; ++i) {
    if (i == 1) continue;
    EXPECT_TRUE(fs::is_regular_file(dir / point_manifest_path(spec, i)))
        << "point " << i << " checkpoint missing";
  }
  EXPECT_FALSE(fs::exists(dir / spec.outputs.csv));

  // The failure is visible on the progress stream.
  const std::string events = progress.jsonl();
  EXPECT_NE(events.find("\"event\":\"point_failed\",\"point\":1"),
            std::string::npos)
      << events;

  // Unblock the path and resume: only the failed point re-runs, and the
  // result is byte-identical to an uninterrupted campaign.
  fs::remove_all(dir / point_manifest_path(spec, 1));
  CampaignOptions resume_options;
  resume_options.jobs = 2;
  resume_options.resume = true;
  resume_options.output_dir = dir.string();
  const CampaignOutcome resumed = run_campaign(spec, resume_options);
  EXPECT_EQ(resumed.points_run, 1u);
  EXPECT_EQ(resumed.points_resumed, total - 1);

  const fs::path clean_dir = fresh_dir("campaign_failure_clean");
  CampaignOptions clean_options;
  clean_options.jobs = 1;
  clean_options.output_dir = clean_dir.string();
  run_campaign(spec, clean_options);
  EXPECT_EQ(slurp(dir / spec.outputs.csv), slurp(clean_dir / spec.outputs.csv));
  EXPECT_EQ(slurp(dir / spec.outputs.manifest),
            slurp(clean_dir / spec.outputs.manifest));
}

}  // namespace
}  // namespace cavenet::spec
