// Resume correctness: an interrupted campaign that is resumed must write
// byte-identical artifacts to an uninterrupted run, and checkpoints from
// an edited spec (different fingerprint) must be discarded as stale.
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "spec/campaign.h"
#include "spec/spec.h"

#include <gtest/gtest.h>

namespace cavenet::spec {
namespace {

namespace fs = std::filesystem;

// Small-but-real campaign: 3 cells x 2 replications = 6 points over a
// shortened Table-I scenario so the 12 total simulation runs stay cheap.
const char kCampaignJson[] = R"({
  "name": "resume_probe", "kind": "campaign",
  "scenario": {
    "seed": 11, "duration_s": 20,
    "mobility": {"lane_cells": 150, "vehicles": 12},
    "traffic": {"start_s": 5, "stop_s": 15, "sender": 3}
  },
  "sweep": {
    "replications": 2,
    "axes": [{"param": "mobility.slowdown_p", "values": [0.3, 0.5, 0.7]}]
  }
})";

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing artifact " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<std::string> artifact_names(const CampaignSpec& spec,
                                        std::size_t points) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < points; ++i) {
    names.push_back(point_manifest_path(spec, i));
  }
  names.push_back(spec.outputs.csv);
  names.push_back(spec.outputs.manifest);
  return names;
}

TEST(CampaignResumeTest, InterruptedPlusResumedIsByteIdentical) {
  const CampaignSpec spec = parse_campaign(kCampaignJson, "resume.json");
  const std::size_t total = expand_points(spec).size();
  ASSERT_EQ(total, 6u);

  // Reference: one uninterrupted run.
  const fs::path full_dir = fresh_dir("campaign_full");
  CampaignOptions full_options;
  full_options.jobs = 2;
  full_options.output_dir = full_dir.string();
  const CampaignOutcome full = run_campaign(spec, full_options);
  EXPECT_EQ(full.points_total, total);
  EXPECT_EQ(full.points_run, total);
  EXPECT_EQ(full.points_resumed, 0u);

  // "Interrupt after 3": seed a fresh directory with only the first three
  // point checkpoints, exactly what a killed run leaves behind.
  const fs::path resumed_dir = fresh_dir("campaign_resumed");
  for (std::size_t i = 0; i < 3; ++i) {
    fs::copy_file(full_dir / point_manifest_path(spec, i),
                  resumed_dir / point_manifest_path(spec, i));
  }

  CampaignOptions resume_options;
  resume_options.jobs = 4;  // different worker count than the full run
  resume_options.resume = true;
  resume_options.output_dir = resumed_dir.string();
  const CampaignOutcome resumed = run_campaign(spec, resume_options);
  EXPECT_EQ(resumed.points_total, total);
  EXPECT_EQ(resumed.points_resumed, 3u);
  EXPECT_EQ(resumed.points_run, 3u);

  for (const std::string& name : artifact_names(spec, total)) {
    EXPECT_EQ(slurp(resumed_dir / name), slurp(full_dir / name))
        << name << " differs between interrupted+resumed and uninterrupted";
  }

  // The CSV seed column must carry the exact 64-bit substream seed (a
  // round-trip through the manifest's JSON double would truncate it).
  const std::string csv = slurp(full_dir / spec.outputs.csv);
  for (const CampaignPoint& point : expand_points(spec)) {
    EXPECT_NE(csv.find(std::to_string(point.scenario.config.seed)),
              std::string::npos)
        << "exact seed of point " << point.index << " missing from CSV";
  }
}

TEST(CampaignResumeTest, WithoutResumeFlagCheckpointsAreIgnored) {
  const CampaignSpec spec = parse_campaign(kCampaignJson, "resume.json");
  const fs::path dir = fresh_dir("campaign_noresume");
  CampaignOptions options;
  options.jobs = 2;
  options.output_dir = dir.string();
  ASSERT_EQ(run_campaign(spec, options).points_run, 6u);

  // Same directory, still no --resume: everything re-runs.
  const CampaignOutcome again = run_campaign(spec, options);
  EXPECT_EQ(again.points_resumed, 0u);
  EXPECT_EQ(again.points_run, 6u);
}

TEST(CampaignResumeTest, StaleFingerprintCheckpointsAreRerun) {
  const CampaignSpec spec = parse_campaign(kCampaignJson, "resume.json");
  const fs::path dir = fresh_dir("campaign_stale");
  CampaignOptions options;
  options.jobs = 2;
  options.resume = true;
  options.output_dir = dir.string();
  ASSERT_EQ(run_campaign(spec, options).points_run, 6u);

  // Edit the spec (base seed 11 -> 12): same shape, new fingerprint, so
  // every existing checkpoint is stale and must be re-executed.
  std::string edited_json = kCampaignJson;
  const std::size_t at = edited_json.find("\"seed\": 11");
  ASSERT_NE(at, std::string::npos);
  edited_json.replace(at, 10, "\"seed\": 12");
  const CampaignSpec edited = parse_campaign(edited_json, "resume.json");
  ASSERT_NE(edited.fingerprint, spec.fingerprint);

  const CampaignOutcome outcome = run_campaign(edited, options);
  EXPECT_EQ(outcome.points_resumed, 0u);
  EXPECT_EQ(outcome.points_run, 6u);

  // And a repeat resume of the *edited* spec now trusts its own
  // checkpoints wholesale.
  const CampaignOutcome trusted = run_campaign(edited, options);
  EXPECT_EQ(trusted.points_resumed, 6u);
  EXPECT_EQ(trusted.points_run, 0u);
}

TEST(CampaignResumeTest, FullyCheckpointedResumeRunsNothing) {
  const CampaignSpec spec = parse_campaign(kCampaignJson, "resume.json");
  const fs::path dir = fresh_dir("campaign_complete");
  CampaignOptions options;
  options.jobs = 2;
  options.resume = true;
  options.output_dir = dir.string();
  ASSERT_EQ(run_campaign(spec, options).points_run, 6u);

  const std::string csv_before = slurp(dir / spec.outputs.csv);
  const CampaignOutcome outcome = run_campaign(spec, options);
  EXPECT_EQ(outcome.points_resumed, 6u);
  EXPECT_EQ(outcome.points_run, 0u);
  EXPECT_EQ(slurp(dir / spec.outputs.csv), csv_before);
}

}  // namespace
}  // namespace cavenet::spec
