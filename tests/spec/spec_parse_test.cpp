#include "spec/spec.h"

#include <string>

#include "obs/json.h"
#include "scenario/table1.h"

#include <gtest/gtest.h>

namespace cavenet::spec {
namespace {

std::string error_of(const std::string& json) {
  try {
    parse_campaign(json, "test.json");
  } catch (const SpecError& e) {
    return e.what();
  }
  return "";
}

TEST(SpecParseTest, MinimalCampaignGetsTableIDefaults) {
  const CampaignSpec spec = parse_campaign(
      R"({"name": "t", "kind": "campaign", "scenario": {}})", "test.json");
  EXPECT_EQ(spec.name, "t");
  EXPECT_EQ(spec.title, "t");
  EXPECT_EQ(spec.kind, SpecKind::kCampaign);
  const scenario::TableIConfig defaults;
  const scenario::TableIConfig& config = spec.scenario.config;
  EXPECT_EQ(config.vehicles, defaults.vehicles);
  EXPECT_EQ(config.lane_cells, defaults.lane_cells);
  EXPECT_DOUBLE_EQ(config.slowdown_p, defaults.slowdown_p);
  EXPECT_EQ(config.seed, defaults.seed);
  EXPECT_DOUBLE_EQ(config.mac_rate_bps, defaults.mac_rate_bps);
  EXPECT_EQ(config.protocol, defaults.protocol);
  EXPECT_EQ(spec.outputs.csv, "t.csv");
  EXPECT_EQ(spec.outputs.manifest, "t.manifest.json");
  EXPECT_EQ(spec.fingerprint.size(), 16u);
}

TEST(SpecParseTest, FullScenarioRoundTrip) {
  const CampaignSpec spec = parse_campaign(R"({
    "name": "full", "title": "Full", "kind": "campaign",
    "scenario": {
      "seed": 9, "duration_s": 50,
      "mobility": {"model": "nas", "lane_cells": 200, "vehicles": 12,
                   "slowdown_p": 0.25, "boundary": "open"},
      "phy": {"propagation": "shadowing", "shadowing_exponent": 3.0,
              "shadowing_sigma_db": 6.0, "index": "linear"},
      "mac": {"rate_bps": 11e6, "rts_cts": true},
      "routing": {"protocol": "dsdv"},
      "traffic": {"packets_per_second": 2, "payload_bytes": 256,
                  "start_s": 5, "stop_s": 45, "receiver": 0, "sender": 3},
      "obs": {"stats": false, "heartbeat_s": 10}
    }
  })", "test.json");
  const scenario::TableIConfig& config = spec.scenario.config;
  EXPECT_EQ(config.seed, 9u);
  EXPECT_DOUBLE_EQ(config.duration_s, 50.0);
  EXPECT_EQ(config.lane_cells, 200);
  EXPECT_EQ(config.vehicles, 12);
  EXPECT_DOUBLE_EQ(config.slowdown_p, 0.25);
  EXPECT_FALSE(config.circular_layout);
  EXPECT_EQ(config.propagation, scenario::Propagation::kShadowing);
  EXPECT_EQ(config.channel_index, phy::ChannelIndex::kLinear);
  EXPECT_DOUBLE_EQ(config.mac_rate_bps, 11e6);
  EXPECT_TRUE(config.use_rts_cts);
  EXPECT_EQ(config.protocol, scenario::Protocol::kDsdv);
  EXPECT_DOUBLE_EQ(config.packets_per_second, 2.0);
  EXPECT_EQ(config.payload_bytes, 256u);
  EXPECT_EQ(config.sender, 3u);
  EXPECT_FALSE(spec.scenario.collect_stats);
  EXPECT_DOUBLE_EQ(config.heartbeat_s, 10.0);
}

TEST(SpecParseTest, EngineParallelParsesAndDefaults) {
  const CampaignSpec plain = parse_campaign(
      R"({"name": "t", "kind": "campaign", "scenario": {}})", "test.json");
  EXPECT_EQ(plain.scenario.config.parallel.shards, 1);
  EXPECT_EQ(plain.scenario.config.parallel.threads, 1);
  EXPECT_DOUBLE_EQ(plain.scenario.config.parallel.epoch_s, 1.0);

  const CampaignSpec parallel = parse_campaign(R"({
    "name": "t", "kind": "campaign",
    "scenario": {"engine": {"parallel":
        {"shards": 4, "threads": 2, "epoch_s": 0.5}}}
  })", "test.json");
  EXPECT_EQ(parallel.scenario.config.parallel.shards, 4);
  EXPECT_EQ(parallel.scenario.config.parallel.threads, 2);
  EXPECT_DOUBLE_EQ(parallel.scenario.config.parallel.epoch_s, 0.5);
}

TEST(SpecParseTest, EngineLegacyShardKeysAliasTheParallelBlock) {
  // Pre-ParallelConfig specs spelled the knobs flat on `engine`; they
  // keep parsing (with a deprecation warning) as validated aliases.
  const CampaignSpec legacy = parse_campaign(R"({
    "name": "t", "kind": "campaign",
    "scenario": {"engine": {"shards": 4, "shard_epoch_s": 0.5,
                            "threads": 2}}
  })", "test.json");
  EXPECT_EQ(legacy.scenario.config.parallel.shards, 4);
  EXPECT_EQ(legacy.scenario.config.parallel.threads, 2);
  EXPECT_DOUBLE_EQ(legacy.scenario.config.parallel.epoch_s, 0.5);
}

TEST(SpecParseTest, EngineLegacyKeyMixedWithParallelBlockIsRejected) {
  const std::string what = error_of(R"({
    "name": "t", "kind": "campaign",
    "scenario": {"engine": {"parallel": {"shards": 2}, "shards": 4}}
  })");
  EXPECT_NE(what.find("$.scenario.engine.shards"), std::string::npos) << what;
  EXPECT_NE(what.find("deprecated alias"), std::string::npos) << what;
  EXPECT_NE(what.find("$.scenario.engine.parallel.shards"),
            std::string::npos)
      << what;
}

TEST(SpecParseTest, EngineParallelIsRangeChecked) {
  const std::string zero = error_of(R"({
    "name": "t", "kind": "campaign",
    "scenario": {"engine": {"parallel": {"shards": 0}}}
  })");
  EXPECT_NE(zero.find("$.scenario.engine.parallel.shards"),
            std::string::npos)
      << zero;

  const std::string bad_epoch = error_of(R"({
    "name": "t", "kind": "campaign",
    "scenario": {"engine": {"shard_epoch_s": 0}}
  })");
  EXPECT_NE(bad_epoch.find("$.scenario.engine.shard_epoch_s"),
            std::string::npos)
      << bad_epoch;

  const std::string unknown = error_of(R"({
    "name": "t", "kind": "campaign",
    "scenario": {"engine": {"parallel": {"shard": 4}}}
  })");
  EXPECT_NE(unknown.find("$.scenario.engine.parallel.shard"),
            std::string::npos)
      << unknown;
  EXPECT_NE(unknown.find("did you mean \"shards\"?"), std::string::npos)
      << unknown;
}

TEST(SpecParseTest, UnknownKeyIsRejectedWithSuggestion) {
  const std::string what = error_of(R"({
    "name": "t", "kind": "campaign",
    "scenario": {"mobility": {"vehicels": 10}}
  })");
  EXPECT_NE(what.find("$.scenario.mobility.vehicels"), std::string::npos)
      << what;
  EXPECT_NE(what.find("did you mean \"vehicles\"?"), std::string::npos)
      << what;
}

TEST(SpecParseTest, EnumErrorListsChoicesAndSuggests) {
  const std::string what = error_of(R"({
    "name": "t", "kind": "campaign",
    "scenario": {"routing": {"protocol": "adov"}}
  })");
  EXPECT_NE(what.find("$.scenario.routing.protocol"), std::string::npos)
      << what;
  EXPECT_NE(what.find("\"aodv\""), std::string::npos) << what;
  EXPECT_NE(what.find("did you mean \"aodv\"?"), std::string::npos) << what;
}

TEST(SpecParseTest, RangeAndTypeErrorsNameTheSpecPath) {
  EXPECT_NE(error_of(R"({"name": "t", "kind": "campaign",
                         "scenario": {"mobility": {"slowdown_p": 1.5}}})")
                .find("$.scenario.mobility.slowdown_p"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"name": "t", "kind": "campaign",
                         "scenario": {"mobility": {"vehicles": 2.5}}})")
                .find("expected an integer"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"name": "t", "kind": "campaign",
                         "scenario": {"traffic": {"sender": true}}})")
                .find("$.scenario.traffic.sender"),
            std::string::npos);
}

TEST(SpecParseTest, SyntaxErrorsCarryLineAndColumn) {
  try {
    parse_campaign("{\n  \"name\": oops\n}", "bad.json");
    FAIL() << "expected obs::JsonParseError";
  } catch (const obs::JsonParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("bad.json:2:"), std::string::npos);
  }
}

TEST(SpecParseTest, TrafficWindowMustFitTheRun) {
  EXPECT_NE(error_of(R"({"name": "t", "kind": "campaign",
                         "scenario": {"duration_s": 20}})")
                .find("traffic stops after"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"name": "t", "kind": "campaign",
                         "scenario": {"traffic": {"start_s": 50,
                                                  "stop_s": 40}}})")
                .find("precedes start_s"),
            std::string::npos);
}

TEST(SpecParseTest, SenderMustBeWithinTheFleet) {
  EXPECT_NE(error_of(R"({"name": "t", "kind": "campaign",
                         "scenario": {"mobility": {"vehicles": 5},
                                      "traffic": {"sender": 7}}})")
                .find("sender 7 is out of range for 5 nodes"),
            std::string::npos);
}

TEST(SpecParseTest, CampaignRejectsSenderRange) {
  EXPECT_NE(
      error_of(R"({"name": "t", "kind": "campaign",
                   "scenario": {"traffic": {"senders": {"first": 1,
                                                        "last": 4}}}})")
          .find("campaign points run one flow"),
      std::string::npos);
}

TEST(SpecParseTest, GoodputSurfaceAcceptsSenderRange) {
  const CampaignSpec spec = parse_campaign(
      R"({"name": "g", "kind": "goodput_surface",
          "scenario": {"traffic": {"senders": {"first": 2, "last": 6}}}})",
      "test.json");
  EXPECT_EQ(spec.scenario.first_sender, 2u);
  EXPECT_EQ(spec.scenario.last_sender, 6u);
}

TEST(SpecParseTest, SweepingTheSeedIsRejected) {
  EXPECT_NE(error_of(R"({"name": "t", "kind": "campaign", "scenario": {},
                         "sweep": {"axes": [{"param": "seed",
                                             "values": [1, 2]}]}})")
                .find("sweeping \"seed\" is not allowed"),
            std::string::npos);
}

TEST(SpecParseTest, KindGatesTheSections) {
  EXPECT_NE(error_of(R"({"name": "t", "kind": "fundamental_diagram",
                         "scenario": {}})")
                .find("takes no scenario/sweep"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"name": "t", "kind": "goodput_surface",
                         "scenario": {},
                         "sweep": {"replications": 2}})")
                .find("only valid with"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"name": "t", "kind": "campaign"})")
                .find("\"scenario\" is required"),
            std::string::npos);
}

TEST(SpecParseTest, FundamentalDiagramSection) {
  const CampaignSpec spec = parse_campaign(R"({
    "name": "fd", "kind": "fundamental_diagram",
    "fundamental_diagram": {"lane_cells": 100, "points": 5, "trials": 2,
                            "iterations": 50, "warmup": 10, "seed": 2,
                            "slowdown_p": [0.1, 0.2, 0.3]}
  })", "test.json");
  EXPECT_EQ(spec.kind, SpecKind::kFundamentalDiagram);
  EXPECT_EQ(spec.fd.lane_cells, 100);
  EXPECT_EQ(spec.fd.points, 5);
  EXPECT_EQ(spec.fd.slowdown_ps.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.fd.slowdown_ps[1], 0.2);
}

TEST(SpecParseTest, GridMobilityAndTransformRules) {
  const CampaignSpec grid = parse_campaign(R"({
    "name": "g", "kind": "campaign",
    "scenario": {"mobility": {"model": "grid",
                              "grid": {"horizontal_lanes": 2,
                                       "vertical_lanes": 2,
                                       "vehicles_per_lane": 4},
                              "trace_steps": 50},
                 "traffic": {"sender": 3}}
  })", "test.json");
  EXPECT_EQ(grid.scenario.mobility_model, MobilityModel::kGrid);
  EXPECT_EQ(grid.scenario.grid.horizontal_lanes, 2);
  EXPECT_EQ(grid.scenario.grid_trace_steps, 50);

  const CampaignSpec ring = parse_campaign(R"({
    "name": "r", "kind": "campaign",
    "scenario": {"mobility": {"transform": {"rotate_deg": 45,
                                            "translate_x": 10,
                                            "mirror_x": true}}}
  })", "test.json");
  ASSERT_TRUE(ring.scenario.transform.has_value());
  EXPECT_DOUBLE_EQ(ring.scenario.transform->rotate_deg, 45.0);
  EXPECT_TRUE(ring.scenario.transform->mirror_x);
}

TEST(SpecParseTest, SenderAndSendersAreMutuallyExclusive) {
  EXPECT_NE(error_of(R"({"name": "t", "kind": "goodput_surface",
                         "scenario": {"traffic": {"sender": 1,
                                                  "senders": {"first": 1,
                                                              "last": 2}}}})")
                .find("not both"),
            std::string::npos);
}

}  // namespace
}  // namespace cavenet::spec
