#include "spec/campaign.h"

#include <set>
#include <string>

#include "util/rng.h"
#include "spec/spec.h"

#include <gtest/gtest.h>

namespace cavenet::spec {
namespace {

const char kSweepSpec[] = R"({
  "name": "sweep", "kind": "campaign",
  "scenario": {"seed": 7, "traffic": {"sender": 4}},
  "sweep": {
    "replications": 2,
    "axes": [
      {"param": "mobility.vehicles", "values": [20, 30, 40]},
      {"param": "routing.protocol", "values": ["aodv", "olsr"]}
    ]
  }
})";

TEST(CampaignExpandTest, CartesianGridTimesReplications) {
  const CampaignSpec spec = parse_campaign(kSweepSpec, "test.json");
  const auto points = expand_points(spec);
  ASSERT_EQ(points.size(), 12u);  // 3 * 2 cells * 2 replications

  // First axis slowest: cells walk vehicles {20,20,30,30,40,40} over
  // protocol {aodv,olsr}, and replications are innermost.
  EXPECT_EQ(points[0].cell, 0u);
  EXPECT_EQ(points[0].replication, 0u);
  EXPECT_EQ(points[1].cell, 0u);
  EXPECT_EQ(points[1].replication, 1u);
  EXPECT_EQ(points[2].cell, 1u);
  EXPECT_EQ(points[2].replication, 0u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
  }

  ASSERT_EQ(points[0].axis_values.size(), 2u);
  EXPECT_EQ(points[0].axis_values[0].first, "mobility.vehicles");
  EXPECT_EQ(points[0].axis_values[0].second, "20");
  EXPECT_EQ(points[0].axis_values[1].second, "aodv");
  EXPECT_EQ(points[2].axis_values[1].second, "olsr");
  EXPECT_EQ(points[4].axis_values[0].second, "30");
  EXPECT_EQ(points[10].axis_values[0].second, "40");
  EXPECT_EQ(points[10].axis_values[1].second, "olsr");
}

TEST(CampaignExpandTest, PointsCarryThePatchedScenario) {
  const CampaignSpec spec = parse_campaign(kSweepSpec, "test.json");
  const auto points = expand_points(spec);
  EXPECT_EQ(points[0].scenario.config.vehicles, 20);
  EXPECT_EQ(points[0].scenario.config.protocol, scenario::Protocol::kAodv);
  EXPECT_EQ(points[2].scenario.config.protocol, scenario::Protocol::kOlsr);
  EXPECT_EQ(points[11].scenario.config.vehicles, 40);
  // Base fields survive the patch.
  EXPECT_EQ(points[11].scenario.config.sender, 4u);
}

TEST(CampaignExpandTest, SeedsAreSubstreamDerivedNotOrderDerived) {
  const CampaignSpec spec = parse_campaign(kSweepSpec, "test.json");
  const auto points = expand_points(spec);

  std::set<std::uint64_t> seeds;
  for (const CampaignPoint& point : points) {
    // Keyed on (cell, replication) from the campaign master stream.
    const Rng master(spec.scenario.config.seed, 0x63616d70);
    const std::uint64_t expected =
        master.substream(point.cell).substream(point.replication).next_u64();
    EXPECT_EQ(point.scenario.config.seed, expected) << "point " << point.index;
    seeds.insert(point.scenario.config.seed);
  }
  EXPECT_EQ(seeds.size(), points.size()) << "per-point seeds must be distinct";

  // Expansion is a pure function of the spec.
  const auto again = expand_points(parse_campaign(kSweepSpec, "test.json"));
  ASSERT_EQ(again.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(again[i].scenario.config.seed, points[i].scenario.config.seed);
  }
}

TEST(CampaignExpandTest, PatchedPointsAreRevalidated) {
  // vehicles=2 puts sender 4 out of range; the error names the point.
  const CampaignSpec spec = parse_campaign(R"({
    "name": "bad", "kind": "campaign",
    "scenario": {"traffic": {"sender": 4}},
    "sweep": {"axes": [{"param": "mobility.vehicles", "values": [30, 2]}]}
  })", "test.json");
  try {
    expand_points(spec);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cell 1"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
}

TEST(CampaignExpandTest, PatchCannotDescendIntoScalars) {
  const CampaignSpec spec = parse_campaign(R"({
    "name": "bad", "kind": "campaign",
    "scenario": {"seed": 1},
    "sweep": {"axes": [{"param": "seed.nested", "values": [1]}]}
  })", "test.json");
  EXPECT_THROW(expand_points(spec), SpecError);
}

TEST(CampaignExpandTest, NoSweepMeansReplicationsPoints) {
  const CampaignSpec spec = parse_campaign(R"({
    "name": "plain", "kind": "campaign",
    "scenario": {"seed": 3},
    "sweep": {"replications": 4}
  })", "test.json");
  const auto points = expand_points(spec);
  ASSERT_EQ(points.size(), 4u);
  for (const CampaignPoint& point : points) {
    EXPECT_EQ(point.cell, 0u);
    EXPECT_TRUE(point.axis_values.empty());
  }
}

TEST(CampaignExpandTest, ManifestPathsAreZeroPadded) {
  const CampaignSpec spec = parse_campaign(kSweepSpec, "test.json");
  EXPECT_EQ(point_manifest_path(spec, 0), "sweep.point_0000.manifest.json");
  EXPECT_EQ(point_manifest_path(spec, 11), "sweep.point_0011.manifest.json");
}

}  // namespace
}  // namespace cavenet::spec
