#include "trace/ns2_format.h"

#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/geometry.h"
#include "core/nas_lane.h"
#include "core/road.h"
#include "trace/trace_generator.h"

namespace cavenet::trace {
namespace {

MobilityTrace sample_trace() {
  MobilityTrace trace;
  trace.initial_positions = {{1.5, 2.5}, {10.0, 20.0}};
  trace.events.push_back({1.0, 0, TraceEvent::Kind::kSetDest, {5.0, 2.5}, 3.5});
  trace.events.push_back(
      {2.0, 1, TraceEvent::Kind::kSetPosition, {0.25, 0.75}, 0.0});
  trace.normalize();
  return trace;
}

TEST(Ns2FormatTest, WriteProducesExpectedSyntax) {
  std::ostringstream out;
  write_ns2(sample_trace(), out);
  const std::string s = out.str();
  EXPECT_NE(s.find("$node_(0) set X_ 1.5"), std::string::npos);
  EXPECT_NE(s.find("$node_(1) set Y_ 20"), std::string::npos);
  EXPECT_NE(s.find("$ns_ at 1 \"$node_(0) setdest 5 2.5 3.5\""),
            std::string::npos);
  EXPECT_NE(s.find("$ns_ at 2 \"$node_(1) set X_ 0.25\""), std::string::npos);
}

TEST(Ns2FormatTest, RoundTripPreservesTrace) {
  const MobilityTrace original = sample_trace();
  std::stringstream buffer;
  write_ns2(original, buffer);
  const MobilityTrace parsed = read_ns2(buffer);

  ASSERT_EQ(parsed.node_count(), original.node_count());
  for (std::uint32_t i = 0; i < original.node_count(); ++i) {
    EXPECT_NEAR(parsed.initial_positions[i].x, original.initial_positions[i].x,
                1e-9);
    EXPECT_NEAR(parsed.initial_positions[i].y, original.initial_positions[i].y,
                1e-9);
  }
  ASSERT_EQ(parsed.events.size(), original.events.size());
  for (std::size_t i = 0; i < original.events.size(); ++i) {
    EXPECT_EQ(parsed.events[i].kind, original.events[i].kind);
    EXPECT_EQ(parsed.events[i].node, original.events[i].node);
    EXPECT_NEAR(parsed.events[i].time_s, original.events[i].time_s, 1e-9);
    EXPECT_NEAR(parsed.events[i].target.x, original.events[i].target.x, 1e-9);
    EXPECT_NEAR(parsed.events[i].target.y, original.events[i].target.y, 1e-9);
    EXPECT_NEAR(parsed.events[i].speed_ms, original.events[i].speed_ms, 1e-9);
  }
}

TEST(Ns2FormatTest, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "# comment line\n"
      "\n"
      "$node_(0) set X_ 4\n"
      "$node_(0) set Y_ 5\n"
      "$node_(0) set Z_ 0\n");
  const MobilityTrace trace = read_ns2(in);
  ASSERT_EQ(trace.node_count(), 1u);
  EXPECT_DOUBLE_EQ(trace.initial_positions[0].x, 4.0);
  EXPECT_DOUBLE_EQ(trace.initial_positions[0].y, 5.0);
}

TEST(Ns2FormatTest, MergesTeleportAxisPairs) {
  std::istringstream in(
      "$node_(0) set X_ 0\n"
      "$node_(0) set Y_ 0\n"
      "$ns_ at 3 \"$node_(0) set X_ 7\"\n"
      "$ns_ at 3 \"$node_(0) set Y_ 8\"\n");
  const MobilityTrace trace = read_ns2(in);
  ASSERT_EQ(trace.events.size(), 1u);
  EXPECT_EQ(trace.events[0].kind, TraceEvent::Kind::kSetPosition);
  EXPECT_DOUBLE_EQ(trace.events[0].target.x, 7.0);
  EXPECT_DOUBLE_EQ(trace.events[0].target.y, 8.0);
}

TEST(Ns2FormatTest, ThrowsOnGarbageWithLineNumber) {
  std::istringstream in("$node_(0) set X_ 1\nthis is not ns-2\n");
  try {
    read_ns2(in);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Ns2FormatTest, EmptyInputGivesEmptyTrace) {
  std::istringstream in("");
  const MobilityTrace trace = read_ns2(in);
  EXPECT_EQ(trace.node_count(), 0u);
  EXPECT_TRUE(trace.events.empty());
}

TEST(Ns2FormatTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ns2_format_test.tr";
  ASSERT_TRUE(write_ns2_file(sample_trace(), path));
  const MobilityTrace parsed = read_ns2_file(path);
  EXPECT_EQ(parsed.node_count(), 2u);
  EXPECT_EQ(parsed.events.size(), 2u);
}

TEST(Ns2FormatTest, MissingFileThrows) {
  EXPECT_THROW(read_ns2_file("/nonexistent/path/to/trace.tr"),
               std::runtime_error);
}

TEST(Ns2FormatTest, GeneratedCaTraceRoundTripsThroughText) {
  // End-to-end: CA -> trace -> ns-2 text -> trace -> identical replay.
  ca::NasParams params;
  params.lane_length = 50;
  params.slowdown_p = 0.2;
  ca::Road road;
  road.add_lane(ca::NasLane(params, 8, ca::InitialPlacement::kRandom, Rng(9)),
                ca::make_circuit(375.0));
  TraceGeneratorOptions options;
  options.steps = 20;
  const MobilityTrace original = generate_trace(road, options);

  std::stringstream buffer;
  write_ns2(original, buffer);
  const MobilityTrace parsed = read_ns2(buffer);

  const auto paths_a = compile_paths(original);
  const auto paths_b = compile_paths(parsed);
  ASSERT_EQ(paths_a.size(), paths_b.size());
  for (std::size_t node = 0; node < paths_a.size(); ++node) {
    for (double t = 0.0; t <= 20.0; t += 0.5) {
      const Vec2 a = paths_a[node].position(t);
      const Vec2 b = paths_b[node].position(t);
      ASSERT_NEAR(a.x, b.x, 1e-5);
      ASSERT_NEAR(a.y, b.y, 1e-5);
    }
  }
}

}  // namespace
}  // namespace cavenet::trace
