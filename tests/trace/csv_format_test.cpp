#include "trace/csv_format.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

namespace cavenet::trace {
namespace {

MobilityTrace moving_trace() {
  MobilityTrace trace;
  trace.initial_positions = {{0.0, 0.0}, {10.0, 5.0}};
  trace.events.push_back({0.0, 0, TraceEvent::Kind::kSetDest, {8.0, 0.0}, 2.0});
  return trace;
}

TEST(CsvFormatTest, RejectsBadOptions) {
  std::ostringstream out;
  CsvExportOptions options;
  options.dt_s = 0.0;
  EXPECT_THROW(write_positions_csv(moving_trace(), out, options),
               std::invalid_argument);
  options = {};
  options.t_end_s = -1.0;
  EXPECT_THROW(write_positions_csv(moving_trace(), out, options),
               std::invalid_argument);
}

TEST(CsvFormatTest, HeaderAndRowCount) {
  std::ostringstream out;
  CsvExportOptions options;
  options.t_end_s = 4.0;
  write_positions_csv(moving_trace(), out, options);
  const std::string s = out.str();
  EXPECT_EQ(s.rfind("t,node,x,y,speed\n", 0), 0u);
  int lines = 0;
  for (const char c : s) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 1 + 5 * 2);  // header + 5 samples x 2 nodes
}

TEST(CsvFormatTest, SamplesInterpolatedPositions) {
  std::ostringstream out;
  CsvExportOptions options;
  options.t_end_s = 2.0;
  write_positions_csv(moving_trace(), out, options);
  // Node 0 moves at 2 m/s toward x=8: at t=2 it is at x=4 with speed 2.
  EXPECT_NE(out.str().find("2,0,4.000000,0.000000,2.000000"),
            std::string::npos);
  // Node 1 never moves.
  EXPECT_NE(out.str().find("2,1,10.000000,5.000000,0.000000"),
            std::string::npos);
}

TEST(CsvFormatTest, FileVariantWrites) {
  const std::string path = ::testing::TempDir() + "/csv_format_test.csv";
  ASSERT_TRUE(write_positions_csv_file(moving_trace(), path));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "t,node,x,y,speed");
}

}  // namespace
}  // namespace cavenet::trace
