#include "trace/connectivity.h"

#include <stdexcept>

#include <gtest/gtest.h>

#include "core/geometry.h"
#include "core/nas_lane.h"
#include "core/road.h"
#include "trace/trace_generator.h"

namespace cavenet::trace {
namespace {

TEST(ConnectivityGraphTest, RejectsBadRange) {
  const std::vector<Vec2> p = {{0, 0}};
  EXPECT_THROW(ConnectivityGraph(p, 0.0), std::invalid_argument);
}

TEST(ConnectivityGraphTest, EmptyAndSingleton) {
  const std::vector<Vec2> none;
  const ConnectivityGraph empty(none, 100.0);
  EXPECT_EQ(empty.component_count(), 0u);
  EXPECT_EQ(empty.pair_connectivity(), 0.0);

  const std::vector<Vec2> one = {{5, 5}};
  const ConnectivityGraph singleton(one, 100.0);
  EXPECT_EQ(singleton.component_count(), 1u);
  EXPECT_EQ(singleton.largest_component(), 1u);
  EXPECT_EQ(singleton.pair_connectivity(), 1.0);
}

TEST(ConnectivityGraphTest, ChainIsOneComponent) {
  std::vector<Vec2> p;
  for (int i = 0; i < 5; ++i) p.push_back({i * 200.0, 0.0});
  const ConnectivityGraph g(p, 250.0);
  EXPECT_EQ(g.component_count(), 1u);
  EXPECT_EQ(g.largest_component(), 5u);
  EXPECT_TRUE(g.connected(0, 4));
  EXPECT_DOUBLE_EQ(g.pair_connectivity(), 1.0);
}

TEST(ConnectivityGraphTest, GapSplitsComponents) {
  const std::vector<Vec2> p = {{0, 0}, {200, 0}, {600, 0}, {800, 0}};
  const ConnectivityGraph g(p, 250.0);
  EXPECT_EQ(g.component_count(), 2u);
  EXPECT_EQ(g.largest_component(), 2u);
  EXPECT_TRUE(g.connected(0, 1));
  EXPECT_FALSE(g.connected(1, 2));
  // 2 connected pairs out of 6.
  EXPECT_NEAR(g.pair_connectivity(), 2.0 / 6.0, 1e-12);
}

TEST(ConnectivityGraphTest, NeighborsAreSymmetricAndRangeLimited) {
  const std::vector<Vec2> p = {{0, 0}, {100, 0}, {240, 0}, {600, 0}};
  const ConnectivityGraph g(p, 250.0);
  EXPECT_EQ(g.neighbors(0), (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(g.neighbors(3), (std::vector<std::uint32_t>{}));
  for (std::uint32_t a = 0; a < 4; ++a) {
    for (const std::uint32_t b : g.neighbors(a)) {
      const auto back = g.neighbors(b);
      EXPECT_NE(std::find(back.begin(), back.end(), a), back.end());
    }
  }
}

TEST(ConnectivityGraphTest, HopDistance) {
  std::vector<Vec2> p;
  for (int i = 0; i < 6; ++i) p.push_back({i * 200.0, 0.0});
  p.push_back({10000.0, 0.0});
  const ConnectivityGraph g(p, 250.0);
  EXPECT_EQ(g.hop_distance(0, 0), 0);
  EXPECT_EQ(g.hop_distance(0, 1), 1);
  EXPECT_EQ(g.hop_distance(0, 5), 5);
  EXPECT_EQ(g.hop_distance(0, 6), -1);
}

TEST(ConnectivityGraphTest, RelayLaneBridgesGap) {
  // Paper Fig. 1-a: a gap on lane 1 is bridged by a relay on lane 2.
  const std::vector<Vec2> lane1 = {{0, 0}, {480, 0}};  // 480 m gap: cut
  const ConnectivityGraph without(lane1, 250.0);
  EXPECT_FALSE(without.connected(0, 1));

  const std::vector<Vec2> with_relay = {{0, 0}, {480, 0}, {240, 7.5}};
  const ConnectivityGraph bridged(with_relay, 250.0);
  EXPECT_TRUE(bridged.connected(0, 1));
  EXPECT_EQ(bridged.hop_distance(0, 1), 2);
}

TEST(ConnectivityOverTimeTest, TracksPairOfInterest) {
  // Two nodes drifting apart: connected early, partitioned later.
  MobilityTrace trace;
  trace.initial_positions = {{0, 0}, {100, 0}};
  trace.events.push_back(
      {0.0, 1, TraceEvent::Kind::kSetDest, {1000.0, 0.0}, 30.0});
  const auto paths = compile_paths(trace);

  ConnectivitySweepOptions options;
  options.range_m = 250.0;
  options.t_end_s = 30.0;
  options.node_a = 0;
  options.node_b = 1;
  const auto samples = connectivity_over_time(paths, options);
  ASSERT_EQ(samples.size(), 31u);
  EXPECT_TRUE(samples.front().pair_of_interest_connected);
  EXPECT_FALSE(samples.back().pair_of_interest_connected);
  const double uptime = pair_uptime(samples);
  EXPECT_GT(uptime, 0.0);
  EXPECT_LT(uptime, 1.0);
}

TEST(ConnectivityOverTimeTest, RejectsBadDt) {
  MobilityTrace trace;
  trace.initial_positions = {{0, 0}};
  const auto paths = compile_paths(trace);
  ConnectivitySweepOptions options;
  options.dt_s = 0.0;
  EXPECT_THROW(connectivity_over_time(paths, options), std::invalid_argument);
}

TEST(LinkChangeRateTest, StaticNodesHaveZeroChurn) {
  MobilityTrace trace;
  trace.initial_positions = {{0, 0}, {100, 0}, {200, 0}};
  const auto paths = compile_paths(trace);
  ConnectivitySweepOptions options;
  options.t_end_s = 10.0;
  EXPECT_EQ(link_change_rate(paths, options), 0.0);
}

TEST(LinkChangeRateTest, CountsLinkFlips) {
  // One node crosses another's range once: exactly one link-up and one
  // link-down event over the sweep.
  MobilityTrace trace;
  trace.initial_positions = {{0, 0}, {600, 0}};
  trace.events.push_back(
      {0.0, 1, TraceEvent::Kind::kSetDest, {-600.0, 0.0}, 50.0});
  const auto paths = compile_paths(trace);
  ConnectivitySweepOptions options;
  options.t_end_s = 24.0;
  options.dt_s = 1.0;
  // Mean changes per interval * number of intervals == total changes == 2.
  EXPECT_NEAR(link_change_rate(paths, options) * 24.0, 2.0, 1e-9);
}

TEST(LinkChangeRateTest, JamRegimeChurnsMoreThanFreeFlow) {
  auto churn_for = [](double p) {
    ca::NasParams params;
    params.lane_length = 400;
    params.slowdown_p = p;
    ca::Road road;
    road.add_lane(ca::NasLane(params, 30, ca::InitialPlacement::kRandom, Rng(4)),
                  ca::make_circuit(3000.0));
    TraceGeneratorOptions trace_options;
    trace_options.steps = 60;
    const auto trace = generate_trace(road, trace_options);
    const auto paths = compile_paths(trace);
    ConnectivitySweepOptions options;
    options.t_end_s = 60.0;
    return link_change_rate(paths, options);
  };
  EXPECT_GT(churn_for(0.7), churn_for(0.1));
}

TEST(ConnectivityOverTimeTest, CaCircuitStaysWellConnectedAtLowP) {
  ca::NasParams params;
  params.lane_length = 400;
  params.slowdown_p = 0.1;
  ca::Road road;
  road.add_lane(ca::NasLane(params, 30, ca::InitialPlacement::kEven, Rng(3)),
                ca::make_circuit(3000.0));
  TraceGeneratorOptions trace_options;
  trace_options.steps = 50;
  const auto trace = generate_trace(road, trace_options);
  const auto paths = compile_paths(trace);

  ConnectivitySweepOptions options;
  options.t_end_s = 50.0;
  const auto samples = connectivity_over_time(paths, options);
  double mean_pc = 0.0;
  for (const auto& s : samples) mean_pc += s.pair_connectivity;
  mean_pc /= static_cast<double>(samples.size());
  // Even spacing at 100 m with 250 m range: essentially always connected.
  EXPECT_GT(mean_pc, 0.95);
}

}  // namespace
}  // namespace cavenet::trace
