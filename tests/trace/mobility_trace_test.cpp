#include "trace/mobility_trace.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace cavenet::trace {
namespace {

TEST(MobilityTraceTest, NormalizeSortsByTimeThenNode) {
  MobilityTrace trace;
  trace.initial_positions = {{0, 0}, {1, 1}, {2, 2}};
  trace.events.push_back({2.0, 1, TraceEvent::Kind::kSetDest, {5, 5}, 1.0});
  trace.events.push_back({1.0, 2, TraceEvent::Kind::kSetDest, {6, 6}, 1.0});
  trace.events.push_back({1.0, 0, TraceEvent::Kind::kSetDest, {7, 7}, 1.0});
  trace.normalize();
  EXPECT_EQ(trace.events[0].node, 0u);
  EXPECT_EQ(trace.events[1].node, 2u);
  EXPECT_EQ(trace.events[2].node, 1u);
}

TEST(CompilePathsTest, StaticNodeStaysPut) {
  MobilityTrace trace;
  trace.initial_positions = {{3.0, 4.0}};
  const auto paths = compile_paths(trace);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].position(0.0), (Vec2{3.0, 4.0}));
  EXPECT_EQ(paths[0].position(100.0), (Vec2{3.0, 4.0}));
  EXPECT_EQ(paths[0].velocity(50.0), (Vec2{0.0, 0.0}));
}

TEST(CompilePathsTest, SetDestInterpolatesLinearly) {
  MobilityTrace trace;
  trace.initial_positions = {{0.0, 0.0}};
  trace.events.push_back({1.0, 0, TraceEvent::Kind::kSetDest, {10.0, 0.0}, 2.0});
  const auto paths = compile_paths(trace);
  // Departs at t=1, arrives at t=6 (10 m at 2 m/s).
  EXPECT_EQ(paths[0].position(0.5), (Vec2{0.0, 0.0}));
  EXPECT_NEAR(paths[0].position(3.5).x, 5.0, 1e-9);
  EXPECT_EQ(paths[0].position(6.0), (Vec2{10.0, 0.0}));
  EXPECT_EQ(paths[0].position(10.0), (Vec2{10.0, 0.0}));
  EXPECT_NEAR(paths[0].end_time(), 6.0, 1e-9);
}

TEST(CompilePathsTest, VelocityDuringAndAfterMotion) {
  MobilityTrace trace;
  trace.initial_positions = {{0.0, 0.0}};
  trace.events.push_back({0.0, 0, TraceEvent::Kind::kSetDest, {0.0, 8.0}, 4.0});
  const auto paths = compile_paths(trace);
  EXPECT_NEAR(paths[0].velocity(1.0).y, 4.0, 1e-9);
  EXPECT_EQ(paths[0].velocity(3.0), (Vec2{0.0, 0.0}));  // arrived at t=2
}

TEST(CompilePathsTest, TeleportJumpsInstantly) {
  MobilityTrace trace;
  trace.initial_positions = {{0.0, 0.0}};
  trace.events.push_back(
      {5.0, 0, TraceEvent::Kind::kSetPosition, {100.0, 100.0}, 0.0});
  const auto paths = compile_paths(trace);
  EXPECT_EQ(paths[0].position(4.999999), (Vec2{0.0, 0.0}));
  EXPECT_EQ(paths[0].position(5.0), (Vec2{100.0, 100.0}));
}

TEST(CompilePathsTest, NewWaypointPreemptsInFlightMotion) {
  MobilityTrace trace;
  trace.initial_positions = {{0.0, 0.0}};
  // Move right at 1 m/s toward x=10 (would arrive at t=10)...
  trace.events.push_back({0.0, 0, TraceEvent::Kind::kSetDest, {10.0, 0.0}, 1.0});
  // ...but at t=4 turn around toward the origin at 2 m/s.
  trace.events.push_back({4.0, 0, TraceEvent::Kind::kSetDest, {0.0, 0.0}, 2.0});
  const auto paths = compile_paths(trace);
  EXPECT_NEAR(paths[0].position(4.0).x, 4.0, 1e-9);
  EXPECT_NEAR(paths[0].position(5.0).x, 2.0, 1e-9);
  EXPECT_NEAR(paths[0].position(6.0).x, 0.0, 1e-9);
}

TEST(CompilePathsTest, SequentialWaypointsChain) {
  MobilityTrace trace;
  trace.initial_positions = {{0.0, 0.0}};
  trace.events.push_back({0.0, 0, TraceEvent::Kind::kSetDest, {5.0, 0.0}, 5.0});
  trace.events.push_back({1.0, 0, TraceEvent::Kind::kSetDest, {5.0, 3.0}, 3.0});
  const auto paths = compile_paths(trace);
  EXPECT_NEAR(paths[0].position(1.0).x, 5.0, 1e-9);
  EXPECT_NEAR(paths[0].position(2.0).y, 3.0, 1e-9);
}

TEST(CompilePathsTest, ZeroSpeedSetDestActsAsTeleport) {
  MobilityTrace trace;
  trace.initial_positions = {{0.0, 0.0}};
  trace.events.push_back({1.0, 0, TraceEvent::Kind::kSetDest, {9.0, 0.0}, 0.0});
  const auto paths = compile_paths(trace);
  EXPECT_EQ(paths[0].position(1.0), (Vec2{9.0, 0.0}));
}

TEST(CompilePathsTest, RejectsUnknownNode) {
  MobilityTrace trace;
  trace.initial_positions = {{0.0, 0.0}};
  trace.events.push_back({1.0, 5, TraceEvent::Kind::kSetDest, {1.0, 1.0}, 1.0});
  EXPECT_THROW(compile_paths(trace), std::out_of_range);
}

TEST(CompilePathsTest, MultipleNodesAreIndependent) {
  MobilityTrace trace;
  trace.initial_positions = {{0.0, 0.0}, {100.0, 0.0}};
  trace.events.push_back({0.0, 0, TraceEvent::Kind::kSetDest, {10.0, 0.0}, 1.0});
  const auto paths = compile_paths(trace);
  EXPECT_NEAR(paths[0].position(5.0).x, 5.0, 1e-9);
  EXPECT_EQ(paths[1].position(5.0), (Vec2{100.0, 0.0}));
}

}  // namespace
}  // namespace cavenet::trace
