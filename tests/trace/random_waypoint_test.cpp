#include "trace/random_waypoint.h"

#include <stdexcept>

#include <gtest/gtest.h>

#include "analysis/stats.h"

namespace cavenet::trace {
namespace {

TEST(RandomWaypointTest, RejectsBadOptions) {
  RandomWaypointOptions options;
  options.v_min_ms = 0.0;
  EXPECT_THROW(generate_random_waypoint(options), std::invalid_argument);
  options = {};
  options.v_max_ms = options.v_min_ms / 2;
  EXPECT_THROW(generate_random_waypoint(options), std::invalid_argument);
  options = {};
  options.area_x_m = -1.0;
  EXPECT_THROW(generate_random_waypoint(options), std::invalid_argument);
  options = {};
  options.pause_s = -1.0;
  EXPECT_THROW(generate_random_waypoint(options), std::invalid_argument);
}

TEST(RandomWaypointTest, NodesStayInsideArea) {
  RandomWaypointOptions options;
  options.nodes = 10;
  options.duration_s = 60.0;
  options.seed = 4;
  const auto trace = generate_random_waypoint(options);
  const auto paths = compile_paths(trace);
  for (const auto& path : paths) {
    for (double t = 0.0; t <= 60.0; t += 0.5) {
      const Vec2 p = path.position(t);
      EXPECT_GE(p.x, -1e-9);
      EXPECT_LE(p.x, options.area_x_m + 1e-9);
      EXPECT_GE(p.y, -1e-9);
      EXPECT_LE(p.y, options.area_y_m + 1e-9);
    }
  }
}

TEST(RandomWaypointTest, DeterministicForSeed) {
  RandomWaypointOptions options;
  options.nodes = 5;
  options.seed = 9;
  const auto a = generate_random_waypoint(options);
  const auto b = generate_random_waypoint(options);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time_s, b.events[i].time_s);
    EXPECT_EQ(a.events[i].target.x, b.events[i].target.x);
  }
  options.seed = 10;
  const auto c = generate_random_waypoint(options);
  EXPECT_NE(a.events.size(), c.events.size());
}

TEST(RandomWaypointTest, SpeedsWithinBounds) {
  RandomWaypointOptions options;
  options.nodes = 8;
  options.v_min_ms = 5.0;
  options.v_max_ms = 10.0;
  const auto trace = generate_random_waypoint(options);
  for (const auto& ev : trace.events) {
    EXPECT_GE(ev.speed_ms, 5.0);
    EXPECT_LE(ev.speed_ms, 10.0);
  }
}

TEST(RandomWaypointTest, EventsCoverTheWholeDuration) {
  RandomWaypointOptions options;
  options.nodes = 3;
  options.duration_s = 120.0;
  const auto trace = generate_random_waypoint(options);
  const auto paths = compile_paths(trace);
  for (const auto& path : paths) {
    EXPECT_GE(path.end_time(), 120.0);
  }
}

TEST(MeanSpeedSeriesTest, RejectsBadDt) {
  const std::vector<NodePath> none;
  EXPECT_THROW(mean_speed_series(none, 0.0, 1.0, 0.0), std::invalid_argument);
}

TEST(MeanSpeedSeriesTest, VelocityDecayWithSmallVmin) {
  // The classic RW pathology (paper Sections I/IV-B): with v_min ~ 0 the
  // mean instantaneous speed decays over time because slow legs last
  // arbitrarily long.
  RandomWaypointOptions options;
  options.nodes = 60;
  options.v_min_ms = 0.05;
  options.v_max_ms = 37.5;
  options.duration_s = 2000.0;
  options.seed = 13;
  const auto trace = generate_random_waypoint(options);
  const auto paths = compile_paths(trace);
  const auto speeds = mean_speed_series(paths, 0.0, 2000.0, 10.0);
  const std::span<const double> s(speeds);
  const double early = analysis::mean(s.subspan(0, 20));
  const double late = analysis::mean(s.subspan(s.size() - 20));
  EXPECT_LT(late, early * 0.8);
}

TEST(MeanSpeedSeriesTest, NoDecayWithLargeVmin) {
  RandomWaypointOptions options;
  options.nodes = 60;
  options.v_min_ms = 20.0;
  options.v_max_ms = 37.5;
  options.duration_s = 2000.0;
  options.seed = 13;
  const auto trace = generate_random_waypoint(options);
  const auto paths = compile_paths(trace);
  const auto speeds = mean_speed_series(paths, 0.0, 2000.0, 10.0);
  const std::span<const double> s(speeds);
  const double early = analysis::mean(s.subspan(0, 20));
  const double late = analysis::mean(s.subspan(s.size() - 20));
  EXPECT_GT(late, early * 0.9);
}

}  // namespace
}  // namespace cavenet::trace
