#include "trace/trace_generator.h"

#include <gtest/gtest.h>

#include "core/geometry.h"

namespace cavenet::trace {
namespace {

ca::NasParams params(std::int64_t cells, double p = 0.0) {
  ca::NasParams out;
  out.lane_length = cells;
  out.slowdown_p = p;
  return out;
}

TEST(TraceGeneratorTest, InitialPositionsIncludeDeltaOffset) {
  ca::Road road;
  road.add_lane(ca::NasLane(params(100), 3, ca::InitialPlacement::kEven),
                ca::make_line(750.0));
  TraceGeneratorOptions options;
  options.steps = 0;
  options.delta_offset = 2.5;
  const MobilityTrace trace = generate_trace(road, options);
  ASSERT_EQ(trace.node_count(), 3u);
  EXPECT_DOUBLE_EQ(trace.initial_positions[0].x, 2.5);  // cell 0 + delta
  EXPECT_DOUBLE_EQ(trace.initial_positions[0].y, 2.5);
}

TEST(TraceGeneratorTest, ReplayMatchesCaPositionsAtIntegerTimes) {
  // The compiled path must land exactly on the CA's absolute positions at
  // every step boundary — the trace is a faithful serialization.
  ca::Road reference;
  reference.add_lane(
      ca::NasLane(params(100, 0.3), 10, ca::InitialPlacement::kRandom, Rng(5)),
      ca::make_circuit(750.0));
  ca::Road traced;
  traced.add_lane(
      ca::NasLane(params(100, 0.3), 10, ca::InitialPlacement::kRandom, Rng(5)),
      ca::make_circuit(750.0));

  TraceGeneratorOptions options;
  options.steps = 30;
  options.delta_offset = 0.0;
  const MobilityTrace trace = generate_trace(traced, options);
  const auto paths = compile_paths(trace);

  for (int step = 0; step <= 30; ++step) {
    const auto states = reference.states();
    for (const auto& s : states) {
      const Vec2 replayed = paths[s.node_id].position(static_cast<double>(step));
      EXPECT_NEAR(replayed.x, s.position.x, 1e-6)
          << "node " << s.node_id << " step " << step;
      EXPECT_NEAR(replayed.y, s.position.y, 1e-6);
    }
    if (step < 30) reference.step();
  }
}

TEST(TraceGeneratorTest, CircularLaneEmitsNoTeleports) {
  ca::Road road;
  road.add_lane(ca::NasLane(params(20), 3, ca::InitialPlacement::kEven),
                ca::make_circuit(150.0));
  TraceGeneratorOptions options;
  options.steps = 50;  // small ring: many wraps
  const MobilityTrace trace = generate_trace(road, options);
  for (const auto& ev : trace.events) {
    EXPECT_EQ(ev.kind, TraceEvent::Kind::kSetDest);
  }
}

TEST(TraceGeneratorTest, StraightLaneEmitsTeleportsOnWrap) {
  ca::Road road;
  road.add_lane(ca::NasLane(params(20), 3, ca::InitialPlacement::kEven),
                ca::make_line(150.0));
  TraceGeneratorOptions options;
  options.steps = 50;
  const MobilityTrace trace = generate_trace(road, options);
  int teleports = 0;
  for (const auto& ev : trace.events) {
    if (ev.kind == TraceEvent::Kind::kSetPosition) ++teleports;
  }
  EXPECT_GT(teleports, 0);
}

TEST(TraceGeneratorTest, SkipIdleOmitsParkedVehicles) {
  // Full jam on a closed lane: nobody can move, so no events at all.
  ca::Road road;
  road.add_lane(ca::NasLane(params(10), 10, ca::InitialPlacement::kJam),
                ca::make_circuit(75.0));
  TraceGeneratorOptions options;
  options.steps = 10;
  options.skip_idle = true;
  const MobilityTrace trace = generate_trace(road, options);
  EXPECT_TRUE(trace.events.empty());
}

TEST(TraceGeneratorTest, SetDestSpeedMatchesDisplacement) {
  ca::Road road;
  road.add_lane(ca::NasLane(params(100), 1, ca::InitialPlacement::kEven),
                ca::make_line(750.0));
  TraceGeneratorOptions options;
  options.steps = 3;
  options.delta_offset = 0.0;
  const MobilityTrace trace = generate_trace(road, options);
  // Lone vehicle accelerates 1, 2, 3 cells/step = 7.5, 15, 22.5 m/s.
  ASSERT_EQ(trace.events.size(), 3u);
  EXPECT_NEAR(trace.events[0].speed_ms, 7.5, 1e-9);
  EXPECT_NEAR(trace.events[1].speed_ms, 15.0, 1e-9);
  EXPECT_NEAR(trace.events[2].speed_ms, 22.5, 1e-9);
}

TEST(TraceGeneratorTest, RejectsNegativeSteps) {
  ca::Road road;
  TraceGeneratorOptions options;
  options.steps = -1;
  EXPECT_THROW(generate_trace(road, options), std::invalid_argument);
}

}  // namespace
}  // namespace cavenet::trace
