// Heap-counting proof of the allocation-free hot path.
//
// Global operator new/delete are overridden to count every heap
// allocation made by this binary; the tests then assert an exact zero
// delta across the kernel's steady-state paths: a warmed-up
// schedule_at+dispatch cycle (slab slots recycled, actions inline, heap
// vector at capacity) and a broadcast receiver's packet copy (refcount
// bump + view-pop). A regression that sneaks a std::function box, a
// shared_ptr control block or a header clone back into either path fails
// here with a nonzero count, not as a silent perf cliff.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>

#include <gtest/gtest.h>

#include "core/nas_lane.h"
#include "mac/wifi_mac.h"
#include "netsim/packet.h"
#include "netsim/scheduler.h"
#include "routing/common.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocation_count() noexcept {
  return g_allocations.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace cavenet {
namespace {

using netsim::Packet;
using netsim::Scheduler;

/// Builds the packet shape every data transmission carries on the air:
/// payload + routing data header + 802.11 MAC header.
Packet make_frame() {
  Packet frame(512);
  routing::DataHeader data;
  data.src = 1;
  data.dst = 2;
  frame.push(data);
  mac::MacHeader header;
  header.src = 1;
  header.dst = netsim::kBroadcast;
  frame.push(header);
  return frame;
}

TEST(AllocTest, SteadyStateScheduleDispatchIsAllocationFree) {
  Scheduler scheduler;
  std::uint64_t fired = 0;
  std::int64_t t = 0;
  const auto churn = [&](int rounds) {
    for (int round = 0; round < rounds; ++round) {
      for (int i = 0; i < 64; ++i) {
        scheduler.schedule_at(SimTime::nanoseconds(t + i),
                              [&fired] { ++fired; });
      }
      while (scheduler.run_one()) {
      }
      t += 1000;
    }
  };

  // Warm-up grows the slab, the free list and the heap vector once.
  churn(4);

  const std::uint64_t before = allocation_count();
  churn(10);
  EXPECT_EQ(allocation_count() - before, 0u)
      << "steady-state schedule_at+dispatch must not touch the heap";
  EXPECT_EQ(fired, 14u * 64u);
}

TEST(AllocTest, CancelAndRecycleStayAllocationFree) {
  Scheduler scheduler;
  std::uint64_t fired = 0;
  // Warm-up, including the cancel path.
  for (int i = 0; i < 64; ++i) {
    auto id = scheduler.schedule_at(SimTime::nanoseconds(i), [&] { ++fired; });
    if (i % 2 == 0) id.cancel();
  }
  while (scheduler.run_one()) {
  }

  const std::uint64_t before = allocation_count();
  for (int round = 0; round < 10; ++round) {
    const std::int64_t t = 1000 + round;
    auto id = scheduler.schedule_at(SimTime::nanoseconds(t), [&] { ++fired; });
    id.cancel();
    EXPECT_FALSE(id.pending());
  }
  while (scheduler.run_one()) {
  }
  EXPECT_EQ(allocation_count() - before, 0u)
      << "cancelling and recycling a pooled slot must not touch the heap";
}

TEST(AllocTest, OversizedActionFallsBackToExactlyOneBox) {
  Scheduler scheduler;
  struct Big {
    std::byte bytes[netsim::detail::InlineAction::kCapacity + 8];
  };
  Big big{};
  // Warm the slab/heap so only the capture box can allocate.
  scheduler.schedule_at(SimTime::nanoseconds(0), [] {});
  while (scheduler.run_one()) {
  }

  const std::uint64_t before = allocation_count();
  scheduler.schedule_at(SimTime::nanoseconds(1), [big] { (void)big; });
  EXPECT_EQ(allocation_count() - before, 1u)
      << "an oversized capture should cost exactly its heap box";
  while (scheduler.run_one()) {
  }
}

TEST(AllocTest, BroadcastReceiverCopyIsAllocationFree) {
  const Packet frame = make_frame();

  const std::uint64_t before = allocation_count();
  for (int receiver = 0; receiver < 100; ++receiver) {
    // What Channel::transmit does per receiver: copy, hand to the MAC,
    // which classifies (const peek) and pops its header.
    Packet copy = frame;
    const mac::MacHeader* peek = std::as_const(copy).peek<mac::MacHeader>();
    ASSERT_NE(peek, nullptr);
    const mac::MacHeader header = copy.pop<mac::MacHeader>();
    EXPECT_EQ(header.dst, netsim::kBroadcast);
    // The routing layer reads the data header without detaching.
    const routing::DataHeader* data =
        std::as_const(copy).peek<routing::DataHeader>();
    ASSERT_NE(data, nullptr);
    EXPECT_EQ(data->dst, 2u);
    EXPECT_EQ(copy.header_count(), 1u);
  }
  EXPECT_EQ(allocation_count() - before, 0u)
      << "a broadcast receiver copy must share the header stack";
  EXPECT_EQ(frame.header_count(), 2u);
}

TEST(AllocTest, DeliveryClosureThroughSchedulerIsAllocationFree) {
  Scheduler scheduler;
  const Packet frame = make_frame();
  // Warm-up with the exact closure shape used below.
  std::uint64_t delivered = 0;
  auto deliver_once = [&](std::int64_t t) {
    Packet copy = frame;
    const double power = 1e-9;
    const double duration = 1e-3;
    auto deliver = [&delivered, copy = std::move(copy), power,
                    duration]() mutable {
      Packet received = std::move(copy);
      delivered += received.header_count();
      (void)power;
      (void)duration;
    };
    static_assert(sizeof(deliver) <= netsim::detail::InlineAction::kCapacity);
    scheduler.schedule_at(SimTime::nanoseconds(t), std::move(deliver));
  };
  // Queue as many as the measured loop will, so the heap vector reaches
  // its steady-state capacity during warm-up.
  for (int receiver = 0; receiver < 50; ++receiver) {
    deliver_once(receiver);
  }
  while (scheduler.run_one()) {
  }

  const std::uint64_t before = allocation_count();
  for (int receiver = 0; receiver < 50; ++receiver) {
    deliver_once(100 + receiver);
  }
  while (scheduler.run_one()) {
  }
  EXPECT_EQ(allocation_count() - before, 0u)
      << "per-receiver delivery (copy + schedule + dispatch) must be free "
         "of allocations";
  EXPECT_EQ(delivered, 100u * 2u);
}

TEST(AllocTest, NasLaneStepIsAllocationFreeSteadyState) {
  // The SoA stepping kernel: gap/velocity/slowdown/motion passes work in
  // the five pre-sized LaneState arrays and the closed-boundary wrap is
  // an O(1) head rotation — after construction, step() must never touch
  // the heap, at any density and with blocked cells present.
  ca::NasParams params;
  params.lane_length = 1000;
  params.slowdown_p = 0.3;
  params.boundary = ca::Boundary::kClosed;
  ca::NasLane lane(params, 400, ca::InitialPlacement::kRandom, Rng(7));
  lane.block_cell(500);
  lane.step();  // warm-up (first step touches nothing, but be safe)

  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 200; ++i) lane.step();
  EXPECT_EQ(allocation_count() - before, 0u)
      << "SoA step() must not allocate on a closed lane";
  EXPECT_GT(lane.average_velocity(), 0.0);
}

TEST(AllocTest, NasLaneOpenBoundaryStepIsAllocationFreeAfterWarmup) {
  // kOpenShift re-seats wrap vehicles through reusable scratch
  // (occupied_ / reseat_perm_ / reseat_scratch_): the first wrap sizes
  // them, every later step recycles them.
  ca::NasParams params;
  params.lane_length = 200;
  params.slowdown_p = 0.2;
  params.boundary = ca::Boundary::kOpenShift;
  ca::NasLane lane(params, 60, ca::InitialPlacement::kRandom, Rng(11));
  // Warm until several re-seat cycles have sized every scratch buffer.
  for (int i = 0; i < 100; ++i) lane.step();

  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 200; ++i) lane.step();
  EXPECT_EQ(allocation_count() - before, 0u)
      << "open-boundary step() must recycle its re-seat scratch";
}

TEST(AllocTest, MutatingASharedStackDetachesWithAllocations) {
  // The inverse gate: writing through a shared packet must detach (and
  // therefore allocate) instead of aliasing the other receivers' view.
  Packet frame = make_frame();
  Packet copy = frame;
  const std::uint64_t detaches_before = Packet::cow_detach_count();
  const std::uint64_t before = allocation_count();
  mac::MacHeader* header = copy.peek<mac::MacHeader>();
  ASSERT_NE(header, nullptr);
  header->retry = true;
  EXPECT_GT(allocation_count() - before, 0u);
  EXPECT_EQ(Packet::cow_detach_count() - detaches_before, 1u);
  EXPECT_FALSE(std::as_const(frame).peek<mac::MacHeader>()->retry);
}

}  // namespace
}  // namespace cavenet
