#include "app/flow_metrics.h"

#include <gtest/gtest.h>

namespace cavenet::app {
namespace {

using namespace cavenet::literals;

TEST(FlowMetricsTest, FreshMetricsAreZero) {
  FlowMetrics m;
  EXPECT_EQ(m.tx_packets(), 0u);
  EXPECT_EQ(m.rx_packets(), 0u);
  EXPECT_EQ(m.pdr(), 0.0);
  EXPECT_EQ(m.mean_delay_s(), 0.0);
  EXPECT_EQ(m.first_delivery_delay_s(), -1.0);
}

TEST(FlowMetricsTest, PdrIsRxOverTx) {
  FlowMetrics m;
  for (int i = 0; i < 10; ++i) m.on_sent(SimTime::seconds(i), 512);
  for (int i = 0; i < 7; ++i) {
    m.on_received(SimTime::seconds(i) + 100_ms, SimTime::seconds(i), 512);
  }
  EXPECT_DOUBLE_EQ(m.pdr(), 0.7);
  EXPECT_EQ(m.rx_bytes(), 7u * 512u);
}

TEST(FlowMetricsTest, DelayStatistics) {
  FlowMetrics m;
  m.on_sent(0_s, 100);
  m.on_received(SimTime::milliseconds(50), 0_s, 100);
  m.on_sent(1_s, 100);
  m.on_received(1_s + 150_ms, 1_s, 100);
  EXPECT_NEAR(m.mean_delay_s(), 0.1, 1e-9);
  EXPECT_NEAR(m.max_delay_s(), 0.15, 1e-9);
}

TEST(FlowMetricsTest, FirstDeliveryDelay) {
  FlowMetrics m;
  m.on_sent(10_s, 100);
  m.on_sent(11_s, 100);
  m.on_received(12_s, 11_s, 100);
  // First delivery at 12 s, first send at 10 s.
  EXPECT_NEAR(m.first_delivery_delay_s(), 2.0, 1e-9);
}

TEST(FlowMetricsTest, GoodputBinsBySecond) {
  FlowMetrics m;
  // 512 bytes at t = 0.5 and two at t = 2.x.
  m.on_received(500_ms, 0_s, 512);
  m.on_received(2_s + 100_ms, 2_s, 512);
  m.on_received(2_s + 600_ms, 2_s, 512);
  const auto series = m.goodput_bps(4_s);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_DOUBLE_EQ(series[0], 512.0 * 8.0);
  EXPECT_DOUBLE_EQ(series[1], 0.0);
  EXPECT_DOUBLE_EQ(series[2], 2.0 * 512.0 * 8.0);
  EXPECT_DOUBLE_EQ(series[3], 0.0);
}

TEST(FlowMetricsTest, GoodputHorizonTruncates) {
  FlowMetrics m;
  m.on_received(10_s, 9_s, 512);
  const auto series = m.goodput_bps(5_s);
  EXPECT_EQ(series.size(), 5u);
  for (const double v : series) EXPECT_EQ(v, 0.0);
}

TEST(FlowMetricsTest, CustomBinWidth) {
  FlowMetrics m(500_ms);
  m.on_received(250_ms, 0_s, 100);
  m.on_received(750_ms, 0_s, 100);
  const auto series = m.goodput_bps(1_s);
  ASSERT_EQ(series.size(), 2u);
  // 100 bytes per 0.5 s bin = 1600 bps.
  EXPECT_DOUBLE_EQ(series[0], 1600.0);
  EXPECT_DOUBLE_EQ(series[1], 1600.0);
}

TEST(FlowMetricsTest, FractionalHorizonRoundsUp) {
  FlowMetrics m;
  const auto series = m.goodput_bps(SimTime::milliseconds(2500));
  EXPECT_EQ(series.size(), 3u);
}

}  // namespace
}  // namespace cavenet::app
