#include "app/cbr.h"

#include <gtest/gtest.h>

#include "netsim/layers.h"

namespace cavenet::app {
namespace {

using namespace cavenet::literals;
using netsim::NodeId;
using netsim::Packet;

/// Loopback network layer: delivers every sent packet straight to a peer's
/// deliver callback after a fixed delay.
class LoopbackNetwork final : public netsim::NetworkLayer {
 public:
  LoopbackNetwork(netsim::Simulator& sim, NodeId address, SimTime delay)
      : sim_(&sim), address_(address), delay_(delay) {}

  void connect(LoopbackNetwork& peer) { peer_ = &peer; }

  void send(Packet packet, NodeId destination) override {
    ++sent_;
    if (peer_ != nullptr && peer_->address() == destination) {
      sim_->schedule(delay_, [peer = peer_, p = std::move(packet),
                              src = address_]() mutable {
        if (peer->deliver_cb_) peer->deliver_cb_(std::move(p), src);
      });
    }
  }
  void set_deliver_callback(DeliverCallback cb) override {
    deliver_cb_ = std::move(cb);
  }
  NodeId address() const override { return address_; }

  int sent_ = 0;

 private:
  netsim::Simulator* sim_;
  NodeId address_;
  SimTime delay_;
  LoopbackNetwork* peer_ = nullptr;
  DeliverCallback deliver_cb_;
};

TEST(CbrSourceTest, RejectsBadParams) {
  netsim::Simulator sim;
  LoopbackNetwork net(sim, 0, 1_ms);
  CbrParams params;
  params.packets_per_second = 0.0;
  EXPECT_THROW(CbrSource(sim, net, params), std::invalid_argument);
  params = CbrParams{};
  params.start = 5_s;
  params.stop = 4_s;
  EXPECT_THROW(CbrSource(sim, net, params), std::invalid_argument);
}

TEST(CbrSourceTest, SendsAtConfiguredRateWithinWindow) {
  netsim::Simulator sim;
  LoopbackNetwork net(sim, 0, 1_ms);
  CbrParams params;
  params.destination = 1;
  params.packets_per_second = 5.0;
  params.start = 10_s;
  params.stop = 90_s;
  CbrSource source(sim, net, params);
  source.start();
  sim.run_until(100_s);
  // Table-I maths: 5 pkt/s over 80 s = 400 packets.
  EXPECT_EQ(source.packets_sent(), 400u);
  EXPECT_EQ(net.sent_, 400);
}

TEST(CbrSourceTest, NothingBeforeStart) {
  netsim::Simulator sim;
  LoopbackNetwork net(sim, 0, 1_ms);
  CbrParams params;
  params.start = 10_s;
  CbrSource source(sim, net, params);
  source.start();
  sim.run_until(9_s);
  EXPECT_EQ(source.packets_sent(), 0u);
}

TEST(CbrSourceTest, MetricsCountSends) {
  netsim::Simulator sim;
  LoopbackNetwork net(sim, 0, 1_ms);
  FlowMetrics metrics;
  CbrParams params;
  params.start = 0_s;
  params.stop = 2_s;
  params.packets_per_second = 10.0;
  CbrSource source(sim, net, params, &metrics);
  source.start();
  sim.run_until(5_s);
  EXPECT_EQ(metrics.tx_packets(), 20u);
}

TEST(PacketSinkTest, EndToEndOverLoopback) {
  netsim::Simulator sim;
  LoopbackNetwork tx(sim, 0, 20_ms);
  LoopbackNetwork rx(sim, 1, 20_ms);
  tx.connect(rx);

  FlowMetrics metrics;
  CbrParams params;
  params.destination = 1;
  params.start = 0_s;
  params.stop = 1_s;
  params.packets_per_second = 4.0;
  params.payload_bytes = 256;
  CbrSource source(sim, tx, params, &metrics);
  PacketSink sink(sim, rx, params.dst_port);
  sink.track_source(0, &metrics);
  source.start();
  sim.run_until(5_s);

  EXPECT_EQ(metrics.tx_packets(), 4u);
  EXPECT_EQ(metrics.rx_packets(), 4u);
  EXPECT_DOUBLE_EQ(metrics.pdr(), 1.0);
  EXPECT_NEAR(metrics.mean_delay_s(), 0.02, 1e-9);
  EXPECT_EQ(sink.packets_received(), 4u);
}

TEST(PacketSinkTest, FiltersOnDestinationPort) {
  netsim::Simulator sim;
  LoopbackNetwork tx(sim, 0, 1_ms);
  LoopbackNetwork rx(sim, 1, 1_ms);
  tx.connect(rx);
  PacketSink sink(sim, rx, 9);

  // Hand-craft a packet to the wrong port.
  Packet p(64);
  UdpHeader udp;
  udp.dst_port = 1234;
  p.push(udp);
  tx.send(std::move(p), 1);
  sim.run();
  EXPECT_EQ(sink.packets_received(), 0u);
}

TEST(PacketSinkTest, HookSeesHeaderAndPayload) {
  netsim::Simulator sim;
  LoopbackNetwork tx(sim, 0, 1_ms);
  LoopbackNetwork rx(sim, 1, 1_ms);
  tx.connect(rx);
  PacketSink sink(sim, rx, 9);
  std::uint32_t hook_seq = 999;
  std::size_t hook_payload = 0;
  sink.set_packet_hook(
      [&](NodeId, const UdpHeader& udp, std::size_t payload) {
        hook_seq = udp.seq;
        hook_payload = payload;
      });
  Packet p(128);
  UdpHeader udp;
  udp.dst_port = 9;
  udp.seq = 5;
  p.push(udp);
  tx.send(std::move(p), 1);
  sim.run();
  EXPECT_EQ(hook_seq, 5u);
  EXPECT_EQ(hook_payload, 128u);
}

TEST(PacketSinkTest, IgnoresPacketsWithoutUdpHeader) {
  netsim::Simulator sim;
  LoopbackNetwork tx(sim, 0, 1_ms);
  LoopbackNetwork rx(sim, 1, 1_ms);
  tx.connect(rx);
  PacketSink sink(sim, rx, 9);
  tx.send(Packet(64), 1);  // bare payload, no header
  sim.run();
  EXPECT_EQ(sink.packets_received(), 0u);
}

}  // namespace
}  // namespace cavenet::app
