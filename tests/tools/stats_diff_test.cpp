// Golden-manifest regression gate: runs tools/stats_diff.py (the CI
// gating script) against a committed fixture manifest and a freshly
// produced run of the same shortened Table-I ensemble.
//
//   * fresh run vs golden fixture  -> exit 0 (no counter regressions)
//   * fresh run with an injected drop-counter spike -> exit 1
//
// The fixture is tests/tools/golden_fig8_short.manifest.json. If a PR
// intentionally changes simulation behaviour enough to move a watched
// counter (drops, retries, deliveries) by more than 5%, regenerate it by
// running tools_tests once and copying the "fresh" manifest the test
// leaves in its temp directory over the fixture.
#include <cstdlib>
#include <fstream>
#include <string>

#if __has_include(<sys/wait.h>)
#include <sys/wait.h>
#endif

#include <gtest/gtest.h>

#include "obs/run_manifest.h"
#include "obs/stats_registry.h"
#include "scenario/run_record.h"
#include "scenario/table1.h"

#ifndef CAVENET_SOURCE_DIR
#error "CAVENET_SOURCE_DIR must be defined by the build"
#endif

namespace cavenet::scenario {
namespace {

const std::string kSourceDir = CAVENET_SOURCE_DIR;
const std::string kDiffScript = kSourceDir + "/tools/stats_diff.py";
const std::string kGolden =
    kSourceDir + "/tests/tools/golden_fig8_short.manifest.json";

/// Runs `cmd` silenced and returns its exit status (-1 if it could not
/// run at all).
int run_silenced(const std::string& cmd) {
  const int raw = std::system((cmd + " >/dev/null 2>&1").c_str());
  if (raw == -1) return -1;
#if defined(WIFEXITED)
  if (WIFEXITED(raw)) return WEXITSTATUS(raw);
  return -1;
#else
  return raw;
#endif
}

bool python3_available() { return run_silenced("python3 --version") == 0; }

/// The same shortened ensemble the fixture was generated from. Any
/// change here must be mirrored by regenerating the fixture.
obs::RunManifest fresh_manifest(obs::StatsRegistry& stats) {
  TableIConfig config;
  config.protocol = Protocol::kAodv;
  config.seed = 3;
  config.traffic_start_s = 2.0;
  config.duration_s = 20.0;
  config.obs.stats = &stats;
  const auto results = run_all_senders(config, 1, 8, /*jobs=*/1);
  obs::RunManifest manifest =
      make_run_manifest("golden_fig8_short", config, results);
  manifest.strip_volatile();
  return manifest;
}

TEST(StatsDiffGoldenTest, FreshRunMatchesGoldenManifest) {
  if (!python3_available()) GTEST_SKIP() << "python3 not on PATH";
  ASSERT_TRUE(std::ifstream(kGolden).good())
      << "missing fixture " << kGolden;

  obs::StatsRegistry stats;
  const obs::RunManifest manifest = fresh_manifest(stats);
  const std::string fresh = ::testing::TempDir() + "fresh.manifest.json";
  ASSERT_TRUE(manifest.write_file(fresh));

  EXPECT_EQ(run_silenced("python3 " + kDiffScript + " " + kGolden + " " +
                         fresh),
            0)
      << "stats_diff.py flagged a counter regression against the golden "
         "manifest; if the change is intentional, regenerate the fixture "
         "(see file header)";
}

TEST(StatsDiffGoldenTest, InjectedDropRegressionExitsNonZero) {
  if (!python3_available()) GTEST_SKIP() << "python3 not on PATH";

  obs::StatsRegistry stats;
  obs::RunManifest good = fresh_manifest(stats);
  const std::string baseline = ::testing::TempDir() + "baseline.manifest.json";
  ASSERT_TRUE(good.write_file(baseline));

  // Re-build the candidate from the same registry with a drop-counter
  // spike injected: stats_diff must flag it and gate (exit 1).
  stats.counter("mac.drop.injected_regression").inc(1000);
  TableIConfig config;  // params only label the report; stats drive the gate
  config.obs.stats = &stats;
  obs::RunManifest bad =
      make_run_manifest("golden_fig8_short", config, {});
  bad.strip_volatile();
  const std::string tampered = ::testing::TempDir() + "tampered.manifest.json";
  ASSERT_TRUE(bad.write_file(tampered));

  EXPECT_EQ(run_silenced("python3 " + kDiffScript + " " + baseline + " " +
                         tampered),
            1);
}

}  // namespace
}  // namespace cavenet::scenario
