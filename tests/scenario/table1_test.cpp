#include "scenario/table1.h"

#include "trace/random_waypoint.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cavenet::scenario {
namespace {

TableIConfig quick_config(Protocol protocol) {
  TableIConfig config;
  config.protocol = protocol;
  config.duration_s = 30.0;
  config.traffic_start_s = 5.0;
  config.traffic_stop_s = 25.0;
  config.sender = 2;
  config.seed = 11;
  return config;
}

TEST(Table1Test, RejectsBadSenderReceiver) {
  TableIConfig config;
  config.sender = config.receiver;
  EXPECT_THROW(run_table1(config), std::invalid_argument);
  config = TableIConfig{};
  config.sender = 30;
  EXPECT_THROW(run_table1(config), std::invalid_argument);
}

TEST(Table1Test, TraceHasThirtyNodesOnCircuit) {
  const TableIConfig config;
  const auto trace = make_table1_trace(config);
  EXPECT_EQ(trace.node_count(), 30u);
  // Every initial position lies on the 3000 m circumference circle
  // (radius ~477.5 m) offset by delta = (1, 1).
  const double radius = 3000.0 / (2.0 * 3.14159265358979);
  for (const auto& p : trace.initial_positions) {
    EXPECT_NEAR(distance(p, {1.0, 1.0}), radius, 1e-6);
  }
}

class ProtocolRunTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(ProtocolRunTest, DeliversTraffic) {
  const auto result = run_table1(quick_config(GetParam()));
  EXPECT_EQ(result.tx_packets, 100u);  // 5 pkt/s x 20 s
  EXPECT_GT(result.rx_packets, 20u) << to_string(GetParam());
  EXPECT_GT(result.pdr, 0.2);
  EXPECT_LE(result.pdr, 1.0);
  EXPECT_GT(result.control_packets, 0u);
  EXPECT_FALSE(result.goodput_bps.empty());
}

TEST_P(ProtocolRunTest, DeterministicForSameSeed) {
  const auto a = run_table1(quick_config(GetParam()));
  const auto b = run_table1(quick_config(GetParam()));
  EXPECT_EQ(a.rx_packets, b.rx_packets);
  EXPECT_EQ(a.control_packets, b.control_packets);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.goodput_bps, b.goodput_bps);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolRunTest,
                         ::testing::Values(Protocol::kAodv, Protocol::kOlsr,
                                           Protocol::kDymo),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Table1Test, GoodputConcentratedInTrafficWindow) {
  const auto result = run_table1(quick_config(Protocol::kAodv));
  double before = 0.0, during = 0.0;
  for (std::size_t s = 0; s < result.goodput_bps.size(); ++s) {
    if (s < 5) before += result.goodput_bps[s];
    else if (s < 25) during += result.goodput_bps[s];
  }
  EXPECT_EQ(before, 0.0);
  EXPECT_GT(during, 0.0);
}

TEST(Table1Test, DifferentSeedsChangeOutcome) {
  auto config = quick_config(Protocol::kAodv);
  const auto a = run_table1(config);
  config.seed = 12;
  const auto b = run_table1(config);
  EXPECT_NE(a.events_dispatched, b.events_dispatched);
}

TEST(Table1Test, RunAllSendersCoversRange) {
  auto config = quick_config(Protocol::kDymo);
  config.duration_s = 15.0;
  config.traffic_start_s = 5.0;
  config.traffic_stop_s = 12.0;
  const auto results = run_all_senders(config, 1, 3);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(results[i].sender, i + 1);
  }
}

TEST(Table1Test, StraightLineLayoutDegradesConnectivity) {
  // The paper's motivation for the circular improvement: with the same
  // wrap-around dynamics laid out on a straight line, head/tail vehicles
  // are thousands of metres apart, so delivery suffers for a far sender.
  auto circular = quick_config(Protocol::kAodv);
  circular.sender = 8;
  circular.duration_s = 40.0;
  circular.traffic_stop_s = 35.0;
  auto line = circular;
  line.circular_layout = false;
  const auto on_circle = run_table1(circular);
  const auto on_line = run_table1(line);
  EXPECT_GT(on_circle.pdr, on_line.pdr);
}

TEST(Table1Test, Ns2RoundTripTraceGivesSameResult) {
  auto config = quick_config(Protocol::kDymo);
  const auto direct = run_table1(config);
  config.round_trip_trace_through_ns2_format = true;
  const auto round_trip = run_table1(config);
  // Serializing coordinates at %.9g keeps the replayed motion identical
  // within double precision, so the packet-level outcome matches.
  EXPECT_EQ(direct.rx_packets, round_trip.rx_packets);
  EXPECT_EQ(direct.tx_packets, round_trip.tx_packets);
}

TEST(Table1Test, PacketLogCapturesAllLayers) {
  netsim::PacketLog log;
  auto config = quick_config(Protocol::kAodv);
  config.obs.packet_log = &log;
  const auto result = run_table1(config);
  ASSERT_GT(result.rx_packets, 0u);
  using E = netsim::PacketLog::Event;
  using L = netsim::PacketLog::Layer;
  // Data was delivered at the agent layer and carried by MAC and router.
  EXPECT_GE(log.count(E::kReceive, L::kAgent), result.rx_packets);
  EXPECT_GT(log.count(E::kForward, L::kRouter), 0u);
  EXPECT_GT(log.count(E::kSend, L::kRouter), 0u);  // control traffic
  EXPECT_GT(log.count(E::kSend, L::kMac), 0u);
  // The ns-2 serialization emits one line per entry.
  std::ostringstream out;
  log.write_ns2(out);
  std::size_t lines = 0;
  for (const char c : out.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, log.size());
}

TEST(Table1Test, ChannelUtilizationIsPositiveAndSane) {
  const auto result = run_table1(quick_config(Protocol::kOlsr));
  EXPECT_GT(result.channel_utilization, 0.0);
  EXPECT_LT(result.channel_utilization, 2.0);  // 30 nodes, light load
}

TEST(Table1Test, MeanHopCountReflectsPathLength) {
  // Sender 1 starts adjacent to the receiver on the ring; its packets
  // travel few hops. A mid-ring sender needs multi-hop paths.
  auto near = quick_config(Protocol::kAodv);
  near.sender = 1;
  const auto near_result = run_table1(near);
  auto far = quick_config(Protocol::kAodv);
  far.sender = 8;
  const auto far_result = run_table1(far);
  ASSERT_GT(near_result.rx_packets, 0u);
  ASSERT_GT(far_result.rx_packets, 0u);
  EXPECT_GE(near_result.mean_hop_count, 1.0);
  EXPECT_GT(far_result.mean_hop_count, near_result.mean_hop_count);
}

TEST(Table1Test, ConcurrentSendersShareOneSimulation) {
  auto config = quick_config(Protocol::kAodv);
  const auto results = run_table1_concurrent(config, {1, 2, 3});
  ASSERT_EQ(results.size(), 3u);
  // Same run: network-wide aggregates identical across entries.
  EXPECT_EQ(results[0].events_dispatched, results[1].events_dispatched);
  EXPECT_EQ(results[0].control_bytes, results[2].control_bytes);
  // Per-flow metrics are per sender.
  for (const auto& r : results) {
    EXPECT_EQ(r.tx_packets, 100u);
  }
  std::uint64_t delivered = 0;
  for (const auto& r : results) delivered += r.rx_packets;
  EXPECT_GT(delivered, 0u);
}

TEST(Table1Test, ConcurrentRejectsEmptyAndBadSenders) {
  const TableIConfig config;
  EXPECT_THROW(run_table1_concurrent(config, {}), std::invalid_argument);
  EXPECT_THROW(run_table1_concurrent(config, {0}), std::invalid_argument);
  EXPECT_THROW(run_table1_concurrent(config, {1, 99}), std::invalid_argument);
}

TEST(Table1Test, ShadowingPropagationRuns) {
  auto config = quick_config(Protocol::kAodv);
  config.propagation = Propagation::kShadowing;
  const auto result = run_table1(config);
  EXPECT_EQ(result.tx_packets, 100u);
}

TEST(Table1Test, RayleighFadingDegradesDelivery) {
  auto config = quick_config(Protocol::kAodv);
  const auto clean = run_table1(config);
  config.propagation = Propagation::kRayleigh;
  const auto faded = run_table1(config);
  EXPECT_EQ(faded.tx_packets, 100u);
  // Deep fades corrupt frames the deterministic channel would deliver.
  EXPECT_LT(faded.pdr, clean.pdr + 0.01);
  EXPECT_GT(faded.mac_retries, clean.mac_retries);
}

TEST(Table1Test, RunWithTraceAcceptsRandomWaypointMobility) {
  trace::RandomWaypointOptions rw;
  rw.nodes = 12;
  rw.area_x_m = 600.0;
  rw.area_y_m = 600.0;
  rw.duration_s = 30.0;
  rw.seed = 5;
  const auto mobility = trace::generate_random_waypoint(rw);

  TableIConfig config;
  config.protocol = Protocol::kDymo;
  config.duration_s = 30.0;
  config.traffic_start_s = 5.0;
  config.traffic_stop_s = 25.0;
  const auto result = run_with_trace(mobility, config, {3}).front();
  EXPECT_EQ(result.tx_packets, 100u);
  // A 600 m arena with 12 nodes and 250 m range is densely connected.
  EXPECT_GT(result.pdr, 0.8);
}

TEST(Table1Test, RunWithTraceRejectsEmptyTrace) {
  const trace::MobilityTrace empty;
  const TableIConfig config;
  EXPECT_THROW(run_with_trace(empty, config, {1}), std::invalid_argument);
}

TEST(Table1Test, MacRateChangesAirtimeNotDelivery) {
  auto config = quick_config(Protocol::kDymo);
  const auto at_2mbps = run_table1(config);
  config.mac_rate_bps = 11e6;
  const auto at_11mbps = run_table1(config);
  EXPECT_EQ(at_2mbps.tx_packets, at_11mbps.tx_packets);
  EXPECT_LT(at_11mbps.channel_utilization, at_2mbps.channel_utilization);
}

TEST(Table1Test, RtsCtsVariantRuns) {
  auto config = quick_config(Protocol::kAodv);
  config.use_rts_cts = true;
  const auto result = run_table1(config);
  EXPECT_GT(result.rx_packets, 10u);
}

}  // namespace
}  // namespace cavenet::scenario
