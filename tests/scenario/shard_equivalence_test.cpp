// Parallel-equivalence property gate: sharding and threading the kernel
// are pure locality/throughput optimizations, so a run's complete
// observable output — every SenderRunResult field, the full
// stats-registry JSON and the (uid-canonicalized) ns-2 packet log —
// must be byte-identical at every (shards, threads) pair. Randomized
// Table-I scenarios cover both layouts (circular shards; straight-line
// falls back on its lane-wrap teleports) plus a seeded trace that
// oscillates nodes across strip boundaries every epoch, the worst case
// for stale-membership lookahead.
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "netsim/packet_log.h"
#include "obs/stats_registry.h"
#include "scenario/table1.h"
#include "trace/mobility_trace.h"
#include "util/rng.h"

namespace cavenet::scenario {
namespace {

/// Packet uids come from a process-global counter; remap them to
/// first-appearance order so logs compare across runs in one process
/// (same canonicalization as PoolEquivalenceTest).
std::string canonicalize_uids(const std::string& log) {
  std::istringstream in(log);
  std::ostringstream out;
  std::map<std::string, std::uint64_t> remap;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::vector<std::string> tok{std::istream_iterator<std::string>(fields),
                                 std::istream_iterator<std::string>()};
    // ns-2 line: <ev> <time> <node> <layer> --- <uid> <type> <size>
    if (tok.size() >= 6) {
      const auto [it, inserted] = remap.try_emplace(tok[5], remap.size() + 1);
      tok[5] = std::to_string(it->second);
    }
    for (std::size_t i = 0; i < tok.size(); ++i) {
      if (i > 0) out << ' ';
      out << tok[i];
    }
    out << '\n';
  }
  return out.str();
}

std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

void dump_result(std::ostringstream& out, const SenderRunResult& r) {
  out << "tx " << r.tx_packets << " rx " << r.rx_packets << " pdr "
      << hex_double(r.pdr) << '\n'
      << "delay " << hex_double(r.mean_delay_s) << ' '
      << hex_double(r.max_delay_s) << ' '
      << hex_double(r.first_delivery_delay_s) << ' '
      << hex_double(r.mean_hop_count) << '\n'
      << "control " << r.control_packets << ' ' << r.control_bytes << ' '
      << r.route_discoveries << '\n'
      << "mac " << r.mac_collisions << ' ' << r.mac_retries << ' '
      << r.mac_tx_failed << '\n'
      << "events " << r.events_dispatched << " util "
      << hex_double(r.channel_utilization) << '\n'
      << "goodput ";
  for (const double g : r.goodput_bps) out << hex_double(g) << ' ';
  out << '\n';
}

/// Complete observable outcome of one Table-I run at (shards, threads).
std::string dump_table1(TableIConfig config, int shards, int threads) {
  config.parallel.shards = shards;
  config.parallel.threads = threads;
  netsim::PacketLog log;
  obs::StatsRegistry stats;
  config.obs.packet_log = &log;
  config.obs.stats = &stats;
  const SenderRunResult r = run_table1(config);

  std::ostringstream ns2;
  log.write_ns2(ns2);

  std::ostringstream out;
  dump_result(out, r);
  out << "stats " << stats.snapshot().to_json() << '\n'
      << "log\n"
      << canonicalize_uids(ns2.str());
  return out.str();
}

/// Same, over an explicit mobility trace.
std::string dump_trace_run(const trace::MobilityTrace& mobility,
                           TableIConfig config, int shards, int threads) {
  config.parallel.shards = shards;
  config.parallel.threads = threads;
  netsim::PacketLog log;
  obs::StatsRegistry stats;
  config.obs.packet_log = &log;
  config.obs.stats = &stats;
  const auto results = run_with_trace(mobility, config, {config.sender});

  std::ostringstream ns2;
  log.write_ns2(ns2);

  std::ostringstream out;
  for (const SenderRunResult& r : results) dump_result(out, r);
  out << "stats " << stats.snapshot().to_json() << '\n'
      << "log\n"
      << canonicalize_uids(ns2.str());
  return out.str();
}

TEST(ShardEquivalenceTest, RandomizedScenariosByteIdenticalAtAnyShardCount) {
  // ~50 randomized scenario shapes, each compared across shard counts
  // chosen to hit even/odd partitions and counts above what the world
  // supports (the resolve-time min() clamp), with a randomized executor
  // lane count per trial plus a threads-only (shards=1) run — the full
  // (shards, threads) matrix spread across trials.
  Rng meta(20260809);
  const Protocol protocols[] = {Protocol::kAodv, Protocol::kOlsr,
                                Protocol::kDymo, Protocol::kDsdv};
  for (int trial = 0; trial < 50; ++trial) {
    TableIConfig config;
    config.protocol = protocols[meta.uniform_int(std::int64_t{0}, 3)];
    config.vehicles = static_cast<std::int32_t>(
        meta.uniform_int(std::int64_t{8}, std::int64_t{24}));
    config.lane_cells = config.vehicles * 13;
    // Mix in the straight-line layout: its lane-wrap teleports force the
    // unsharded fallback, which must be equally byte-stable.
    config.circular_layout = meta.uniform_int(std::int64_t{0}, 3) != 0;
    config.sender = static_cast<netsim::NodeId>(
        meta.uniform_int(std::int64_t{1}, config.vehicles - 1));
    config.seed = meta.uniform_int(std::uint64_t{1000});
    config.slowdown_p = meta.uniform(0.2, 0.8);
    config.duration_s = 8.0;
    config.traffic_start_s = 1.0;
    config.traffic_stop_s = 7.0;

    const int thread_choices[] = {1, 2, 4};
    const int threads =
        thread_choices[meta.uniform_int(std::int64_t{0}, 2)];

    const std::string reference = dump_table1(config, 1, 1);
    for (const int shards : {2, 4, 7}) {
      const std::string sharded = dump_table1(config, shards, threads);
      ASSERT_EQ(sharded, reference)
          << "trial " << trial << " protocol "
          << to_string(config.protocol) << " vehicles " << config.vehicles
          << " layout "
          << (config.circular_layout ? "circular" : "straight")
          << " seed " << config.seed << " diverged at shards=" << shards
          << " threads=" << threads;
    }
    // Threads without shards: the pool alone must be inert too.
    ASSERT_EQ(dump_table1(config, 1, 4), reference)
        << "trial " << trial << " seed " << config.seed
        << " diverged at shards=1 threads=4";
  }
}

TEST(ShardEquivalenceTest, BoundaryChurnTraceByteIdentical) {
  // Nodes parked just beside a strip boundary oscillate across it every
  // second — membership goes stale the instant it is bucketed, so every
  // delivery near the boundary leans on the drift margin. A relay chain
  // keeps the flow crossing strips.
  trace::MobilityTrace mobility;
  Rng rng(7);
  const double speed = 12.0;
  for (int node = 0; node < 12; ++node) {
    const double x = 60.0 + 130.0 * node;  // chain spanning 0..1500 m
    mobility.initial_positions.push_back({x, 0.0});
    // Oscillate each node around its home; nodes near multiples of the
    // strip width cross boundaries at every leg.
    double t = rng.uniform(0.0, 0.5);
    bool out = true;
    while (t < 10.0) {
      const double target = out ? x + 25.0 : x - 25.0;
      mobility.events.push_back(
          {t, static_cast<std::uint32_t>(node),
           trace::TraceEvent::Kind::kSetDest, {target, 0.0}, speed});
      t += rng.uniform(0.8, 1.4);
      out = !out;
    }
  }
  mobility.normalize();

  TableIConfig config;
  config.protocol = Protocol::kAodv;
  config.receiver = 0;
  config.sender = 11;  // far end: packets must relay across every strip
  config.duration_s = 10.0;
  config.traffic_start_s = 1.0;
  config.traffic_stop_s = 9.0;
  config.parallel.epoch_s = 0.5;  // force frequent rebuckets

  const std::string reference = dump_trace_run(mobility, config, 1, 1);
  for (const int shards : {2, 4, 7}) {
    for (const int threads : {1, 4}) {
      EXPECT_EQ(dump_trace_run(mobility, config, shards, threads), reference)
          << "boundary-churn trace diverged at shards=" << shards
          << " threads=" << threads;
    }
  }
}

TEST(ShardEquivalenceTest, MidRunTeleportTraceFallsBackUnsharded) {
  // A trace with a t > 0 teleport cannot certify a max speed, so the
  // scenario layer must refuse to shard it (rather than let the drift
  // check blow up mid-run) — and the fallback output is still identical.
  trace::MobilityTrace mobility;
  for (int node = 0; node < 6; ++node) {
    mobility.initial_positions.push_back({100.0 + 200.0 * node, 0.0});
    mobility.events.push_back({0.5 + 0.3 * node,
                               static_cast<std::uint32_t>(node),
                               trace::TraceEvent::Kind::kSetDest,
                               {150.0 + 200.0 * node, 0.0},
                               8.0});
  }
  // The teleport that poisons the certificate.
  mobility.events.push_back({3.0, 2, trace::TraceEvent::Kind::kSetPosition,
                             {900.0, 0.0}, 0.0});
  mobility.normalize();

  TableIConfig config;
  config.protocol = Protocol::kAodv;
  config.sender = 5;
  config.duration_s = 6.0;
  config.traffic_start_s = 1.0;
  config.traffic_stop_s = 5.0;

  const std::string reference = dump_trace_run(mobility, config, 1, 1);
  // Threads stay live through the unsharded fallback — byte-inert too.
  EXPECT_EQ(dump_trace_run(mobility, config, 4, 4), reference);
}

}  // namespace
}  // namespace cavenet::scenario
