// Kernel-allocation equivalence gate: the pooled event records and
// copy-on-write packet headers must be pure allocation optimizations.
// Randomized Table-I scenarios are run and their complete observable
// output — every SenderRunResult field, the full stats-registry JSON and
// the (uid-canonicalized) ns-2 packet log — is compared against a golden
// fixture captured from the pre-pool kernel. Any behavioural drift in the
// scheduler or packet layer fails the gate byte-for-byte.
//
// Regenerate the fixture (only when a PR *intentionally* changes
// simulation behaviour) with:
//   CAVENET_REGEN_GOLDEN=1 ./scenario_equivalence_tests \
//       --gtest_filter='PoolEquivalenceTest.*'
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "netsim/packet_log.h"
#include "obs/stats_registry.h"
#include "scenario/table1.h"
#include "util/rng.h"

#ifndef CAVENET_SOURCE_DIR
#error "CAVENET_SOURCE_DIR must be defined by the build"
#endif

namespace cavenet::scenario {
namespace {

const std::string kGoldenPath =
    std::string(CAVENET_SOURCE_DIR) + "/tests/scenario/golden_kernel_runs.txt";

/// Packet uids come from a process-global counter, so runs in different
/// processes (or after other tests) shift every uid by a constant.
/// Remapping uids to first-appearance order makes the log comparable
/// across processes while staying strict about everything else.
std::string canonicalize_uids(const std::string& log) {
  std::istringstream in(log);
  std::ostringstream out;
  std::map<std::string, std::uint64_t> remap;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::vector<std::string> tok{std::istream_iterator<std::string>(fields),
                                 std::istream_iterator<std::string>()};
    // ns-2 line: <ev> <time> <node> <layer> --- <uid> <type> <size>
    if (tok.size() >= 6) {
      const auto [it, inserted] = remap.try_emplace(tok[5], remap.size() + 1);
      tok[5] = std::to_string(it->second);
    }
    for (std::size_t i = 0; i < tok.size(); ++i) {
      if (i > 0) out << ' ';
      out << tok[i];
    }
    out << '\n';
  }
  return out.str();
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// One trial's complete observable outcome, rendered to a canonical,
/// process-independent text block. Doubles are serialized as hexfloats
/// (exact — no rounding slack), the packet log as an FNV-1a hash of its
/// canonicalized text (full logs would bloat the fixture; the hash is
/// still sensitive to any single changed byte).
std::string dump_trial(int trial, const TableIConfig& config) {
  netsim::PacketLog log;
  obs::StatsRegistry stats;
  TableIConfig run_config = config;
  run_config.obs.packet_log = &log;
  run_config.obs.stats = &stats;
  const SenderRunResult r = run_table1(run_config);

  std::ostringstream ns2;
  log.write_ns2(ns2);
  const std::string canonical_log = canonicalize_uids(ns2.str());

  std::ostringstream goodput;
  for (const double v : r.goodput_bps) goodput << hex_double(v) << ' ';

  std::ostringstream out;
  out << "trial " << trial << " protocol " << to_string(config.protocol)
      << " vehicles " << config.vehicles << " sender " << config.sender
      << " seed " << config.seed << '\n'
      << "tx_packets " << r.tx_packets << '\n'
      << "rx_packets " << r.rx_packets << '\n'
      << "pdr " << hex_double(r.pdr) << '\n'
      << "mean_delay_s " << hex_double(r.mean_delay_s) << '\n'
      << "max_delay_s " << hex_double(r.max_delay_s) << '\n'
      << "first_delivery_delay_s " << hex_double(r.first_delivery_delay_s)
      << '\n'
      << "mean_hop_count " << hex_double(r.mean_hop_count) << '\n'
      << "goodput_hash " << fnv1a(goodput.str()) << '\n'
      << "control_packets " << r.control_packets << '\n'
      << "control_bytes " << r.control_bytes << '\n'
      << "route_discoveries " << r.route_discoveries << '\n'
      << "mac_collisions " << r.mac_collisions << '\n'
      << "mac_retries " << r.mac_retries << '\n'
      << "mac_tx_failed " << r.mac_tx_failed << '\n'
      << "events_dispatched " << r.events_dispatched << '\n'
      << "channel_utilization " << hex_double(r.channel_utilization) << '\n'
      << "stats_json " << stats.snapshot().to_json() << '\n'
      << "packet_log_lines " << std::count(canonical_log.begin(),
                                           canonical_log.end(), '\n')
      << '\n'
      << "packet_log_hash " << fnv1a(canonical_log) << '\n';
  return out.str();
}

/// The randomized scenario shapes under the gate. Drawn from a fixed
/// meta-seed so the fixture and the checked run always agree on the
/// sweep; same spirit (and similar cost) as ChannelEquivalenceTest.
/// `shards` > 1 replays the identical sweep on the sharded kernel, which
/// must reproduce the same fixture byte for byte (docs/SCALING.md
/// "Sharding").
std::string dump_all_trials(int shards = 1) {
  Rng meta(20260807);
  const Protocol protocols[] = {Protocol::kAodv, Protocol::kOlsr,
                                Protocol::kDymo, Protocol::kDsdv};
  std::string dump;
  for (int trial = 0; trial < 4; ++trial) {
    TableIConfig config;
    config.protocol = protocols[meta.uniform_int(std::int64_t{0}, 3)];
    config.vehicles = static_cast<std::int32_t>(
        meta.uniform_int(std::int64_t{10}, std::int64_t{40}));
    config.lane_cells = config.vehicles * 13;
    config.sender = static_cast<netsim::NodeId>(
        meta.uniform_int(std::int64_t{1}, config.vehicles - 1));
    config.seed = meta.uniform_int(std::uint64_t{1000});
    config.slowdown_p = meta.uniform(0.2, 0.8);
    config.duration_s = 12.0;
    config.traffic_start_s = 2.0;
    config.traffic_stop_s = 10.0;
    config.parallel.shards = shards;
    dump += dump_trial(trial, config);
  }
  return dump;
}

TEST(PoolEquivalenceTest, RandomizedRunsMatchGoldenFixture) {
  const std::string fresh = dump_all_trials();

  if (std::getenv("CAVENET_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << "cannot write " << kGoldenPath;
    out << fresh;
    GTEST_SKIP() << "fixture regenerated at " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath);
  ASSERT_TRUE(in.is_open())
      << "missing fixture " << kGoldenPath
      << " — run once with CAVENET_REGEN_GOLDEN=1 to create it";
  std::stringstream golden;
  golden << in.rdbuf();

  // Compare per line so a mismatch names the first drifted field rather
  // than dumping two multi-kilobyte blobs.
  std::istringstream fresh_lines(fresh);
  std::istringstream golden_lines(golden.str());
  std::string fresh_line, golden_line;
  std::size_t line_no = 0;
  while (std::getline(golden_lines, golden_line)) {
    ++line_no;
    ASSERT_TRUE(std::getline(fresh_lines, fresh_line))
        << "fresh dump ends early at fixture line " << line_no;
    EXPECT_EQ(fresh_line, golden_line) << "first divergence at fixture line "
                                       << line_no;
    if (fresh_line != golden_line) return;  // one divergence is enough
  }
  EXPECT_FALSE(std::getline(fresh_lines, fresh_line))
      << "fresh dump has extra lines beyond the fixture";
}

TEST(PoolEquivalenceTest, ShardedRunsMatchTheSameGoldenFixture) {
  // The sharded kernel must reproduce the fixture captured from the
  // single-queue kernel — same golden file, never a regenerated one: a
  // sharded-only fixture could hide a divergence between the two paths.
  if (std::getenv("CAVENET_REGEN_GOLDEN") != nullptr) {
    GTEST_SKIP() << "fixture regeneration is driven by the unsharded run";
  }
  std::ifstream in(kGoldenPath);
  ASSERT_TRUE(in.is_open())
      << "missing fixture " << kGoldenPath
      << " — run once with CAVENET_REGEN_GOLDEN=1 to create it";
  std::stringstream golden;
  golden << in.rdbuf();

  const std::string fresh = dump_all_trials(/*shards=*/5);
  std::istringstream fresh_lines(fresh);
  std::istringstream golden_lines(golden.str());
  std::string fresh_line, golden_line;
  std::size_t line_no = 0;
  while (std::getline(golden_lines, golden_line)) {
    ++line_no;
    ASSERT_TRUE(std::getline(fresh_lines, fresh_line))
        << "sharded dump ends early at fixture line " << line_no;
    EXPECT_EQ(fresh_line, golden_line)
        << "sharded kernel diverged at fixture line " << line_no;
    if (fresh_line != golden_line) return;  // one divergence is enough
  }
  EXPECT_FALSE(std::getline(fresh_lines, fresh_line))
      << "sharded dump has extra lines beyond the fixture";
}

}  // namespace
}  // namespace cavenet::scenario
