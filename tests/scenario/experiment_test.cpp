#include "scenario/experiment.h"

#include <gtest/gtest.h>

namespace cavenet::scenario {
namespace {

TEST(EstimateTest, EmptySamples) {
  const Estimate e = estimate({});
  EXPECT_EQ(e.n, 0u);
  EXPECT_EQ(e.mean, 0.0);
  EXPECT_EQ(e.ci95, 0.0);
}

TEST(EstimateTest, SingleSampleHasNoInterval) {
  const std::vector<double> xs = {3.0};
  const Estimate e = estimate(xs);
  EXPECT_EQ(e.n, 1u);
  EXPECT_DOUBLE_EQ(e.mean, 3.0);
  EXPECT_EQ(e.ci95, 0.0);
}

TEST(EstimateTest, KnownValues) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const Estimate e = estimate(xs);
  EXPECT_DOUBLE_EQ(e.mean, 2.5);
  EXPECT_NEAR(e.stddev, 1.29099, 1e-4);
  EXPECT_NEAR(e.ci95, 1.96 * 1.29099 / 2.0, 1e-4);
}

TEST(DefaultSeedsTest, OneBasedSequence) {
  const auto seeds = default_seeds(3);
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(JainFairnessTest, KnownValues) {
  EXPECT_EQ(jain_fairness({}), 0.0);
  const std::vector<double> equal = {5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jain_fairness(equal), 1.0);
  const std::vector<double> starved = {10.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(starved), 0.25);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_EQ(jain_fairness(zeros), 0.0);
  const std::vector<double> mixed = {4.0, 2.0};
  EXPECT_NEAR(jain_fairness(mixed), 36.0 / (2.0 * 20.0), 1e-12);
}

TEST(SeedSweepTest, AggregatesAcrossSeeds) {
  TableIConfig config;
  config.protocol = Protocol::kDymo;
  config.sender = 2;
  config.duration_s = 20.0;
  config.traffic_start_s = 5.0;
  config.traffic_stop_s = 15.0;
  const auto seeds = default_seeds(3);
  const auto sweep = run_seed_sweep(config, seeds);
  EXPECT_EQ(sweep.runs.size(), 3u);
  EXPECT_EQ(sweep.pdr.n, 3u);
  EXPECT_GT(sweep.pdr.mean, 0.0);
  EXPECT_LE(sweep.pdr.mean, 1.0);
  // Different seeds give different event counts: the sweep is not
  // degenerate.
  EXPECT_NE(sweep.runs[0].events_dispatched, sweep.runs[1].events_dispatched);
}

TEST(SeedSweepTest, DeterministicGivenSeeds) {
  TableIConfig config;
  config.protocol = Protocol::kAodv;
  config.sender = 1;
  config.duration_s = 15.0;
  config.traffic_start_s = 5.0;
  config.traffic_stop_s = 12.0;
  const std::vector<std::uint64_t> seeds = {7, 8};
  const auto a = run_seed_sweep(config, seeds);
  const auto b = run_seed_sweep(config, seeds);
  EXPECT_DOUBLE_EQ(a.pdr.mean, b.pdr.mean);
  EXPECT_DOUBLE_EQ(a.control_bytes.mean, b.control_bytes.mean);
}

}  // namespace
}  // namespace cavenet::scenario
