// The spatial channel index must be a pure candidate-finding optimization:
// for randomized Table-I scenarios, a kGrid run and a kLinear (brute-force
// reference) run must be byte-identical — same flow result, same stats
// registry dump, same ns-2 packet log.
#include <iterator>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "netsim/packet_log.h"
#include "obs/stats_registry.h"
#include "scenario/table1.h"
#include "util/rng.h"

namespace cavenet::scenario {
namespace {

/// Packet uids come from a process-global counter, so two sequential runs
/// shift every uid by a constant. Remapping uids to first-appearance order
/// makes the comparison run-offset-free while staying strict: any
/// difference in event kind, time, node, layer, type, size, or in which
/// packet appears where, still fails.
std::string canonicalize_uids(const std::string& log) {
  std::istringstream in(log);
  std::ostringstream out;
  std::map<std::string, std::uint64_t> remap;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::vector<std::string> tok{std::istream_iterator<std::string>(fields),
                                 std::istream_iterator<std::string>()};
    // ns-2 line: <ev> <time> <node> <layer> --- <uid> <type> <size>
    if (tok.size() >= 6) {
      const auto [it, inserted] =
          remap.try_emplace(tok[5], remap.size() + 1);
      tok[5] = std::to_string(it->second);
    }
    for (std::size_t i = 0; i < tok.size(); ++i) {
      if (i > 0) out << ' ';
      out << tok[i];
    }
    out << '\n';
  }
  return out.str();
}

struct RunDump {
  SenderRunResult result;
  std::string stats_json;
  std::string packet_log;
};

RunDump run(TableIConfig config, phy::ChannelIndex index) {
  config.channel_index = index;
  netsim::PacketLog log;
  obs::StatsRegistry stats;
  config.obs.packet_log = &log;
  config.obs.stats = &stats;
  RunDump dump;
  dump.result = run_table1(config);
  dump.stats_json = stats.snapshot().to_json();
  std::ostringstream ns2;
  log.write_ns2(ns2);
  dump.packet_log = canonicalize_uids(ns2.str());
  return dump;
}

void expect_identical(const RunDump& grid, const RunDump& linear) {
  // Bitwise field equality — EXPECT_EQ on double is exact, not approximate.
  EXPECT_EQ(grid.result.tx_packets, linear.result.tx_packets);
  EXPECT_EQ(grid.result.rx_packets, linear.result.rx_packets);
  EXPECT_EQ(grid.result.pdr, linear.result.pdr);
  EXPECT_EQ(grid.result.mean_delay_s, linear.result.mean_delay_s);
  EXPECT_EQ(grid.result.max_delay_s, linear.result.max_delay_s);
  EXPECT_EQ(grid.result.first_delivery_delay_s,
            linear.result.first_delivery_delay_s);
  EXPECT_EQ(grid.result.mean_hop_count, linear.result.mean_hop_count);
  EXPECT_EQ(grid.result.goodput_bps, linear.result.goodput_bps);
  EXPECT_EQ(grid.result.control_packets, linear.result.control_packets);
  EXPECT_EQ(grid.result.control_bytes, linear.result.control_bytes);
  EXPECT_EQ(grid.result.route_discoveries, linear.result.route_discoveries);
  EXPECT_EQ(grid.result.mac_collisions, linear.result.mac_collisions);
  EXPECT_EQ(grid.result.mac_retries, linear.result.mac_retries);
  EXPECT_EQ(grid.result.mac_tx_failed, linear.result.mac_tx_failed);
  EXPECT_EQ(grid.result.events_dispatched, linear.result.events_dispatched);
  EXPECT_EQ(grid.result.channel_utilization,
            linear.result.channel_utilization);
  // The registry dump covers every counter in the run, including the
  // chan.* cull counters — which are defined to be index-independent.
  EXPECT_EQ(grid.stats_json, linear.stats_json);
  EXPECT_EQ(grid.packet_log, linear.packet_log);
}

TEST(ChannelEquivalenceTest, RandomizedScenariosAreByteIdentical) {
  // A handful of randomized scenario shapes: protocol, fleet size,
  // circuit length, sender, seed all drawn from a fixed meta-seed.
  Rng meta(20260806);
  const Protocol protocols[] = {Protocol::kAodv, Protocol::kOlsr,
                                Protocol::kDymo, Protocol::kDsdv};
  for (int trial = 0; trial < 4; ++trial) {
    TableIConfig config;
    config.protocol = protocols[meta.uniform_int(std::int64_t{0}, 3)];
    config.vehicles = static_cast<std::int32_t>(
        meta.uniform_int(std::int64_t{10}, std::int64_t{40}));
    config.lane_cells = config.vehicles * 13;
    config.sender = static_cast<netsim::NodeId>(
        meta.uniform_int(std::int64_t{1}, config.vehicles - 1));
    config.seed = meta.uniform_int(std::uint64_t{1000});
    config.slowdown_p = meta.uniform(0.2, 0.8);
    config.duration_s = 12.0;
    config.traffic_start_s = 2.0;
    config.traffic_stop_s = 10.0;
    SCOPED_TRACE("trial " + std::to_string(trial) + " protocol " +
                 std::string(to_string(config.protocol)) + " vehicles " +
                 std::to_string(config.vehicles) + " seed " +
                 std::to_string(config.seed));
    expect_identical(run(config, phy::ChannelIndex::kGrid),
                     run(config, phy::ChannelIndex::kLinear));
  }
}

TEST(ChannelEquivalenceTest, StochasticPropagationFallsBackIdentically) {
  // Shadowing can't bound its range, so both modes take the full-scan
  // path — and the RNG draw sequence (one per receiver per transmission)
  // must survive untouched.
  TableIConfig config;
  config.propagation = Propagation::kShadowing;
  config.vehicles = 15;
  config.lane_cells = 200;
  config.duration_s = 8.0;
  config.traffic_start_s = 1.0;
  config.traffic_stop_s = 7.0;
  config.seed = 77;
  expect_identical(run(config, phy::ChannelIndex::kGrid),
                   run(config, phy::ChannelIndex::kLinear));
}

}  // namespace
}  // namespace cavenet::scenario
