#include "core/space_time.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace cavenet::ca {

SpaceTimeRaster::SpaceTimeRaster(std::int64_t lane_length)
    : lane_length_(lane_length) {
  if (lane_length <= 0) throw std::invalid_argument("lane_length must be > 0");
}

void SpaceTimeRaster::record(const NasLane& lane) {
  if (lane.params().lane_length != lane_length_) {
    throw std::invalid_argument("lane length mismatch");
  }
  grid_.push_back(lane.occupancy());
}

std::int32_t SpaceTimeRaster::at(std::int64_t step, std::int64_t site) const {
  return grid_.at(static_cast<std::size_t>(step))
      .at(static_cast<std::size_t>(site));
}

double SpaceTimeRaster::jammed_fraction(std::int64_t step) const {
  const auto& row = grid_.at(static_cast<std::size_t>(step));
  std::int64_t occupied = 0;
  std::int64_t stopped = 0;
  for (const std::int32_t v : row) {
    if (v >= 0) {
      ++occupied;
      if (v == 0) ++stopped;
    }
  }
  return occupied > 0
             ? static_cast<double>(stopped) / static_cast<double>(occupied)
             : 0.0;
}

void SpaceTimeRaster::render_ascii(std::ostream& out,
                                   std::int64_t max_cols) const {
  // Downsample columns if the lane is wider than max_cols: a column shows
  // the minimum velocity in its range (jams dominate), or '.' if empty.
  const std::int64_t stride =
      std::max<std::int64_t>(1, (lane_length_ + max_cols - 1) / max_cols);
  for (const auto& row : grid_) {
    for (std::int64_t c = 0; c < lane_length_; c += stride) {
      std::int32_t min_v = -1;
      for (std::int64_t s = c; s < std::min(c + stride, lane_length_); ++s) {
        const std::int32_t v = row[static_cast<std::size_t>(s)];
        if (v >= 0 && (min_v < 0 || v < min_v)) min_v = v;
      }
      if (min_v < 0) out << '.';
      else if (min_v > 9) out << '+';
      else out << static_cast<char>('0' + min_v);
    }
    out << '\n';
  }
}

void SpaceTimeRaster::write_csv(std::ostream& out) const {
  out << "step,site,velocity\n";
  for (std::size_t step = 0; step < grid_.size(); ++step) {
    const auto& row = grid_[step];
    for (std::size_t site = 0; site < row.size(); ++site) {
      if (row[site] >= 0) {
        out << step << ',' << site << ',' << row[site] << '\n';
      }
    }
  }
}

SpaceTimeRaster record_space_time(NasLane& lane, std::int64_t steps) {
  SpaceTimeRaster raster(lane.params().lane_length);
  raster.record(lane);
  for (std::int64_t i = 1; i < steps; ++i) {
    lane.step();
    raster.record(lane);
  }
  return raster;
}

}  // namespace cavenet::ca
