// Affine lane transformations (paper Section III-D).
//
// Instead of a textual road-description language, CAVENET places each lane
// in the plane with a 3x3 affine matrix A(k): the absolute coordinates of
// vehicle i on lane k are X~ = A(k) * (X_i, Y_i, 1)^T.
#ifndef CAVENET_CORE_LANE_TRANSFORM_H
#define CAVENET_CORE_LANE_TRANSFORM_H

#include <array>

#include "util/vec2.h"

namespace cavenet::ca {

/// Row-major 3x3 affine transform acting on homogeneous 2-D points.
class LaneTransform {
 public:
  /// Identity transform.
  constexpr LaneTransform() noexcept
      : m_{{1, 0, 0, 0, 1, 0, 0, 0, 1}} {}

  /// From the 6 meaningful affine entries
  /// [ a b tx ]
  /// [ c d ty ]
  /// [ 0 0 1  ].
  constexpr LaneTransform(double a, double b, double tx, double c, double d,
                          double ty) noexcept
      : m_{{a, b, tx, c, d, ty, 0, 0, 1}} {}

  static constexpr LaneTransform identity() noexcept { return {}; }
  static constexpr LaneTransform translation(double dx, double dy) noexcept {
    return {1, 0, dx, 0, 1, dy};
  }
  static constexpr LaneTransform scaling(double sx, double sy) noexcept {
    return {sx, 0, 0, 0, sy, 0};
  }
  /// Counter-clockwise rotation by `radians`.
  static LaneTransform rotation(double radians) noexcept;
  /// Reflection across the x axis (used for opposite-direction lanes).
  static constexpr LaneTransform mirror_x() noexcept {
    return {1, 0, 0, 0, -1, 0};
  }
  /// The paper's example for lane 3: swaps axes and offsets — builds a
  /// vertical lane at x = XS/2 from a horizontal relative lane.
  static constexpr LaneTransform swap_axes() noexcept {
    return {0, 1, 0, 1, 0, 0};
  }

  /// Applies the transform to a point.
  constexpr Vec2 apply(Vec2 p) const noexcept {
    return {m_[0] * p.x + m_[1] * p.y + m_[2],
            m_[3] * p.x + m_[4] * p.y + m_[5]};
  }

  /// Applies only the linear part (for velocity vectors — translation must
  /// not affect directions).
  constexpr Vec2 apply_direction(Vec2 d) const noexcept {
    return {m_[0] * d.x + m_[1] * d.y, m_[3] * d.x + m_[4] * d.y};
  }

  /// Composition: (a * b).apply(p) == a.apply(b.apply(p)).
  friend constexpr LaneTransform operator*(const LaneTransform& a,
                                           const LaneTransform& b) noexcept {
    LaneTransform r(0, 0, 0, 0, 0, 0);
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        double acc = 0.0;
        for (int k = 0; k < 3; ++k) acc += a.m_[i * 3 + k] * b.m_[k * 3 + j];
        r.m_[i * 3 + j] = acc;
      }
    }
    return r;
  }

  friend constexpr bool operator==(const LaneTransform&,
                                   const LaneTransform&) noexcept = default;

  constexpr const std::array<double, 9>& matrix() const noexcept { return m_; }

 private:
  std::array<double, 9> m_;
};

}  // namespace cavenet::ca

#endif  // CAVENET_CORE_LANE_TRANSFORM_H
