// The vehicle record of the CAVENET Behavioural Analyzer.
//
// Mirrors the paper's Section III-C: each vehicle VE_i stores its gap,
// velocity and current lane position; the relative position X_i is the
// unique identifier used for trace generation, and for closed boundaries
// we track whether a wrap-around shift has taken place (needed to emit
// continuous ns-2 traces).
#ifndef CAVENET_CORE_VEHICLE_H
#define CAVENET_CORE_VEHICLE_H

#include <cstdint>

namespace cavenet::ca {

struct Vehicle {
  /// Stable identifier, assigned at lane construction, 0-based.
  std::uint32_t id = 0;
  /// Current site index on the lane, in [0, lane_length).
  std::int64_t cell = 0;
  /// Current velocity in cells per time step, in [0, v_max].
  std::int32_t velocity = 0;
  /// Free sites to the vehicle ahead (updated every step).
  std::int64_t gap = 0;
  /// Number of times this vehicle wrapped past the end of a closed lane.
  /// cell + wraps * lane_length is the monotone cumulative distance.
  std::int64_t wraps = 0;

  friend bool operator==(const Vehicle&, const Vehicle&) = default;
};

}  // namespace cavenet::ca

#endif  // CAVENET_CORE_VEHICLE_H
