#include "core/lane_transform.h"

#include <cmath>

namespace cavenet::ca {

LaneTransform LaneTransform::rotation(double radians) noexcept {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  return {c, -s, 0, s, c, 0};
}

}  // namespace cavenet::ca
