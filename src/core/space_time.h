// Space-time rasters (paper Fig. 5): the evolution of lane occupancy over
// time, showing laminar flow and backward-travelling jam waves.
#ifndef CAVENET_CORE_SPACE_TIME_H
#define CAVENET_CORE_SPACE_TIME_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/nas_lane.h"

namespace cavenet::ca {

/// A (steps x lane_length) raster; cell value is the vehicle velocity at
/// that site and step, or -1 for an empty site.
class SpaceTimeRaster {
 public:
  explicit SpaceTimeRaster(std::int64_t lane_length);

  /// Appends the lane's current occupancy as the next row.
  void record(const NasLane& lane);

  std::int64_t rows() const noexcept {
    return static_cast<std::int64_t>(grid_.size());
  }
  std::int64_t lane_length() const noexcept { return lane_length_; }
  /// Velocity at (step, site), or -1 if empty.
  std::int32_t at(std::int64_t step, std::int64_t site) const;

  /// Fraction of occupied sites whose vehicle is stopped (v == 0) in the
  /// given row — a jam indicator.
  double jammed_fraction(std::int64_t step) const;

  /// Renders as ASCII art: '.' empty, digits = velocity. Rows are time
  /// (downwards), columns are space, matching the paper's plots.
  void render_ascii(std::ostream& out, std::int64_t max_cols = 120) const;

  /// CSV rows: step,site,velocity for occupied sites only.
  void write_csv(std::ostream& out) const;

 private:
  std::int64_t lane_length_;
  std::vector<std::vector<std::int32_t>> grid_;
};

/// Runs `steps` steps of `lane` and records each configuration.
SpaceTimeRaster record_space_time(NasLane& lane, std::int64_t steps);

}  // namespace cavenet::ca

#endif  // CAVENET_CORE_SPACE_TIME_H
