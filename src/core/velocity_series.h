// Average-velocity time series v(t) — the paper's simulation variable of
// interest for Figs. 6 and 7 and the transient analysis of Section IV-B.
#ifndef CAVENET_CORE_VELOCITY_SERIES_H
#define CAVENET_CORE_VELOCITY_SERIES_H

#include <cstdint>
#include <vector>

#include "core/nas_lane.h"

namespace cavenet::ca {

/// Runs `steps` steps and returns v(t) (cells/step), one sample per step.
std::vector<double> velocity_series(NasLane& lane, std::int64_t steps);

/// Convenience: builds a lane from params/density/seed and records v(t).
/// `density` is rounded to a whole number of vehicles.
std::vector<double> velocity_series(const NasParams& params, double density,
                                    std::int64_t steps, std::uint64_t seed,
                                    InitialPlacement placement =
                                        InitialPlacement::kRandom);

}  // namespace cavenet::ca

#endif  // CAVENET_CORE_VELOCITY_SERIES_H
