#include "core/lane_statistics.h"

#include <algorithm>
#include <cmath>

namespace cavenet::ca {

LaneSnapshotStats snapshot_stats(const NasLane& lane) {
  LaneSnapshotStats stats;
  const auto vehicles = lane.vehicles();
  if (vehicles.empty()) return stats;
  const auto n = vehicles.size();

  double v_sum = 0.0, v_sq = 0.0, gap_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Vehicle& v = vehicles[i];
    v_sum += v.velocity;
    v_sq += static_cast<double>(v.velocity) * v.velocity;
    if (v.velocity == 0) ++stats.stopped;
    // Gap to the vehicle ahead (circular).
    const std::int64_t next_cell =
        i + 1 < n ? vehicles[i + 1].cell
                  : vehicles[0].cell + lane.params().lane_length;
    const auto gap = static_cast<double>(next_cell - v.cell - 1);
    gap_sum += gap;
    stats.max_gap = std::max(stats.max_gap, gap);
  }
  const auto dn = static_cast<double>(n);
  stats.mean_velocity = v_sum / dn;
  stats.velocity_stddev =
      n > 1 ? std::sqrt(std::max(0.0, v_sq / dn - stats.mean_velocity *
                                                      stats.mean_velocity))
            : 0.0;
  stats.mean_gap = gap_sum / dn;

  // Jam clusters: maximal runs of stopped vehicles with gap 0 between
  // consecutive members (circular).
  std::size_t clusters = 0;
  auto stopped_and_adjacent = [&](std::size_t i) {
    const Vehicle& me = vehicles[i];
    const std::size_t prev = (i + n - 1) % n;
    const std::int64_t prev_next_cell =
        prev + 1 < n ? vehicles[prev + 1].cell
                     : vehicles[0].cell + lane.params().lane_length;
    const std::int64_t prev_gap = prev_next_cell - vehicles[prev].cell - 1;
    return me.velocity == 0 && vehicles[prev].velocity == 0 && prev_gap == 0;
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (vehicles[i].velocity == 0 && !stopped_and_adjacent(i)) ++clusters;
  }
  // Full ring of stopped vehicles: the loop finds 0 cluster starts.
  if (clusters == 0 && stats.stopped == n && n > 0) clusters = 1;
  stats.jam_clusters = clusters;
  return stats;
}

LaneStatistics::LaneStatistics(const NasParams& params) : params_(params) {
  gap_counts_.assign(static_cast<std::size_t>(params.lane_length) + 1, 0);
  velocity_counts_.assign(static_cast<std::size_t>(params.v_max) + 1, 0);
}

void LaneStatistics::record(const NasLane& lane) {
  const auto vehicles = lane.vehicles();
  const auto n = vehicles.size();
  std::vector<std::int64_t> gaps;
  gaps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t next_cell =
        i + 1 < n ? vehicles[i + 1].cell
                  : vehicles[0].cell + params_.lane_length;
    const std::int64_t gap = next_cell - vehicles[i].cell - 1;
    gaps.push_back(gap);
    ++gap_counts_[static_cast<std::size_t>(
        std::clamp<std::int64_t>(gap, 0, params_.lane_length))];
    ++total_gaps_;
    ++velocity_counts_[static_cast<std::size_t>(
        std::clamp<std::int32_t>(vehicles[i].velocity, 0, params_.v_max))];
    ++total_vehicles_;
  }
  sample_gaps_.push_back(std::move(gaps));
  jam_cluster_sum_ += snapshot_stats(lane).jam_clusters;
  ++samples_;
}

double LaneStatistics::gap_exceedance(std::int64_t g_cells) const {
  if (total_gaps_ == 0) return 0.0;
  std::uint64_t count = 0;
  for (std::size_t g = static_cast<std::size_t>(std::max<std::int64_t>(g_cells, 0));
       g < gap_counts_.size(); ++g) {
    count += gap_counts_[g];
  }
  return static_cast<double>(count) / static_cast<double>(total_gaps_);
}

double LaneStatistics::multi_gap_fraction(std::int64_t g_cells,
                                          std::size_t k) const {
  if (sample_gaps_.empty()) return 0.0;
  std::size_t hits = 0;
  for (const auto& gaps : sample_gaps_) {
    const auto big = static_cast<std::size_t>(
        std::count_if(gaps.begin(), gaps.end(),
                      [&](std::int64_t g) { return g >= g_cells; }));
    if (big >= k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(sample_gaps_.size());
}

double LaneStatistics::velocity_probability(std::int32_t v) const {
  if (total_vehicles_ == 0 || v < 0 || v > params_.v_max) return 0.0;
  return static_cast<double>(velocity_counts_[static_cast<std::size_t>(v)]) /
         static_cast<double>(total_vehicles_);
}

double LaneStatistics::mean_jam_clusters() const {
  return samples_ > 0
             ? static_cast<double>(jam_cluster_sum_) / static_cast<double>(samples_)
             : 0.0;
}

}  // namespace cavenet::ca
