// Lane intersections — the second lane parameter of paper Section III
// ("The intersection of lanes ... affects the traffic behaviour on the
// whole lane, because the crosspoint is the bottleneck for the lane"),
// which the paper explicitly leaves out of scope. Implemented here as an
// extension via the CA's virtual-obstacle mechanism.
//
// Two lanes share a physical conflict point at (cell_a on lane A,
// cell_b on lane B). A controller decides which lane may cross:
//  * kPriorityToFirst — lane B yields (a stop sign): B's crossing cell is
//    blocked whenever a lane-A vehicle is within the clearance window of
//    the crosspoint;
//  * kTrafficLight — the right-of-way alternates with a fixed period,
//    blocking the red lane's crossing cell.
#ifndef CAVENET_CORE_INTERSECTION_H
#define CAVENET_CORE_INTERSECTION_H

#include <cstdint>

#include "core/nas_lane.h"

namespace cavenet::ca {

enum class IntersectionPolicy {
  kPriorityToFirst,
  kTrafficLight,
};

struct IntersectionConfig {
  std::int64_t cell_a = 0;  ///< crossing site on lane A
  std::int64_t cell_b = 0;  ///< crossing site on lane B
  IntersectionPolicy policy = IntersectionPolicy::kPriorityToFirst;
  /// kPriorityToFirst: lane B yields while a lane-A vehicle is within this
  /// many cells upstream of (or on) the crosspoint.
  std::int64_t clearance_cells = 6;
  /// kTrafficLight: steps of green per lane before switching.
  std::int64_t green_period_steps = 20;
};

/// Couples two lanes at a crosspoint and advances them under the chosen
/// right-of-way policy. The lanes are owned elsewhere; the intersection
/// only toggles their blocked cells before each step.
class Intersection {
 public:
  /// Throws if a crossing cell lies outside its lane.
  Intersection(NasLane& lane_a, NasLane& lane_b, IntersectionConfig config);

  /// Applies the policy, then steps both lanes once.
  void step();

  std::int64_t time_step() const noexcept { return time_step_; }
  /// True when lane A currently holds the right of way.
  bool lane_a_has_right_of_way() const noexcept { return a_green_; }
  /// Conflict check: both crossing cells occupied at once (never true
  /// under a correct policy; exposed for tests).
  bool conflict() const;

 private:
  void apply_policy();
  bool lane_a_vehicle_near_crossing() const;

  NasLane* lane_a_;
  NasLane* lane_b_;
  IntersectionConfig config_;
  bool a_green_ = true;
  std::int64_t time_step_ = 0;
};

}  // namespace cavenet::ca

#endif  // CAVENET_CORE_INTERSECTION_H
