#include "core/lane_simd.h"

#include <limits>

// The explicit-intrinsics path compiles only when the build opts in
// (CAVENET_SIMD, see the top-level CMakeLists option) on an x86-64
// GCC/Clang toolchain. Functions carry a target("avx2") attribute, so
// the rest of the TU — and the library — is still built for the base
// ISA; the runtime cpuid check picks the path once.
#if defined(CAVENET_SIMD) && CAVENET_SIMD && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define CAVENET_LANE_SIMD_AVX2 1
#include <immintrin.h>
#else
#define CAVENET_LANE_SIMD_AVX2 0
#endif

namespace cavenet::ca::simd {
namespace {

constexpr std::int64_t kI32Max = std::numeric_limits<std::int32_t>::max();

bool detect_avx2() noexcept {
#if CAVENET_LANE_SIMD_AVX2
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool avx2() noexcept {
  static const bool supported = detect_avx2();
  return supported;
}

#if CAVENET_LANE_SIMD_AVX2

__attribute__((target("avx2"))) void gap_shifted_diff_avx2(
    const std::int64_t* cell, std::int64_t* gap, std::size_t n) noexcept {
  const __m256i ones = _mm256_set1_epi64x(1);
  std::size_t i = 0;
  for (; i + 4 <= n - 1; i += 4) {
    const __m256i lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cell + i));
    const __m256i hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cell + i + 1));
    const __m256i g = _mm256_sub_epi64(_mm256_sub_epi64(hi, lo), ones);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(gap + i), g);
  }
  for (; i + 1 < n; ++i) gap[i] = cell[i + 1] - cell[i] - 1;
}

/// Saturates 4 non-negative int64 gaps into the low half of a __m128i.
__attribute__((target("avx2"))) inline __m128i clamp_pack_4(
    const std::int64_t* gap) noexcept {
  const __m256i cap = _mm256_set1_epi64x(kI32Max);
  __m256i g = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(gap));
  const __m256i over = _mm256_cmpgt_epi64(g, cap);
  g = _mm256_blendv_epi8(g, cap, over);
  // Keep the low 32 bits of each 64-bit lane: indices 0,2,4,6.
  const __m256i perm = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  return _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(g, perm));
}

__attribute__((target("avx2"))) void velocity_min_clamp_avx2(
    std::int32_t* velocity, const std::int64_t* gap, std::int32_t v_max,
    std::size_t n) noexcept {
  const __m256i vmax = _mm256_set1_epi32(v_max);
  const __m256i one = _mm256_set1_epi32(1);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(velocity + i));
    v = _mm256_min_epi32(_mm256_add_epi32(v, one), vmax);
    const __m128i g_lo = clamp_pack_4(gap + i);
    const __m128i g_hi = clamp_pack_4(gap + i + 4);
    const __m256i g = _mm256_set_m128i(g_hi, g_lo);
    v = _mm256_min_epi32(v, g);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(velocity + i), v);
  }
  for (; i < n; ++i) {
    const std::int32_t accel =
        velocity[i] + 1 < v_max ? velocity[i] + 1 : v_max;
    const std::int64_t g = gap[i] < kI32Max ? gap[i] : kI32Max;
    velocity[i] =
        accel < static_cast<std::int32_t>(g) ? accel
                                             : static_cast<std::int32_t>(g);
  }
}

/// Register variant of clamp_pack_4 for gaps already in a vector.
__attribute__((target("avx2"))) inline __m128i clamp_pack_reg(
    __m256i g) noexcept {
  const __m256i cap = _mm256_set1_epi64x(kI32Max);
  const __m256i over = _mm256_cmpgt_epi64(g, cap);
  g = _mm256_blendv_epi8(g, cap, over);
  const __m256i perm = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  return _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(g, perm));
}

__attribute__((target("avx2"))) void gap_clamp_avx2(
    const std::int64_t* cell, std::int64_t* gap, std::int32_t* velocity,
    std::int32_t v_max, std::size_t n) noexcept {
  const __m256i ones64 = _mm256_set1_epi64x(1);
  const __m256i vmax = _mm256_set1_epi32(v_max);
  const __m256i one32 = _mm256_set1_epi32(1);
  std::size_t i = 0;
  // 8 vehicles per round; gap[i+7] reads cell[i+8], so the bulk loop
  // stops while i + 8 <= n - 1.
  for (; i + 9 <= n; i += 8) {
    const __m256i lo0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cell + i));
    const __m256i hi0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cell + i + 1));
    const __m256i g0 = _mm256_sub_epi64(_mm256_sub_epi64(hi0, lo0), ones64);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(gap + i), g0);
    const __m256i lo1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cell + i + 4));
    const __m256i hi1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cell + i + 5));
    const __m256i g1 = _mm256_sub_epi64(_mm256_sub_epi64(hi1, lo1), ones64);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(gap + i + 4), g1);
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(velocity + i));
    v = _mm256_min_epi32(_mm256_add_epi32(v, one32), vmax);
    const __m256i g =
        _mm256_set_m128i(clamp_pack_reg(g1), clamp_pack_reg(g0));
    v = _mm256_min_epi32(v, g);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(velocity + i), v);
  }
  for (; i + 1 < n; ++i) {
    const std::int64_t g64 = cell[i + 1] - cell[i] - 1;
    gap[i] = g64;
    const std::int32_t accel =
        velocity[i] + 1 < v_max ? velocity[i] + 1 : v_max;
    const std::int64_t g = g64 < kI32Max ? g64 : kI32Max;
    velocity[i] = accel < static_cast<std::int32_t>(g)
                      ? accel
                      : static_cast<std::int32_t>(g);
  }
}

__attribute__((target("avx2"))) void advance_cells_avx2(
    std::int64_t* cell, const std::int32_t* velocity,
    std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i v32 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(velocity + i));
    const __m256i v64 = _mm256_cvtepi32_epi64(v32);
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cell + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cell + i),
                        _mm256_add_epi64(c, v64));
  }
  for (; i < n; ++i) cell[i] += velocity[i];
}

__attribute__((target("avx2"))) std::int64_t sum_velocity_avx2(
    const std::int32_t* velocity, std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i lo =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(velocity + i));
    const __m128i hi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(velocity + i + 4));
    acc = _mm256_add_epi64(acc, _mm256_cvtepi32_epi64(lo));
    acc = _mm256_add_epi64(acc, _mm256_cvtepi32_epi64(hi));
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) sum += velocity[i];
  return sum;
}

__attribute__((target("avx2"))) std::size_t count_moving_avx2(
    const std::int32_t* velocity, std::size_t n) noexcept {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(velocity + i));
    const __m256i gt = _mm256_cmpgt_epi32(v, zero);
    count += static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_ps(
            _mm256_castsi256_ps(gt)))));
  }
  for (; i < n; ++i) count += velocity[i] > 0;
  return count;
}

/// vpermd left-pack table: entry m lists the set-bit positions of the
/// 8-bit mask m in ascending order (unused lanes are don't-care zeros).
struct CompressTable {
  alignas(32) std::uint32_t perm[256][8];
};

constexpr CompressTable make_compress_table() {
  CompressTable table{};
  for (int mask = 0; mask < 256; ++mask) {
    int k = 0;
    for (int bit = 0; bit < 8; ++bit) {
      if (mask >> bit & 1) {
        table.perm[mask][k++] = static_cast<std::uint32_t>(bit);
      }
    }
  }
  return table;
}

constexpr CompressTable kCompress = make_compress_table();

__attribute__((target("avx2"))) std::size_t compress_moving_avx2(
    const std::int32_t* velocity, std::size_t begin, std::size_t end,
    std::uint32_t* out) noexcept {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i eight = _mm256_set1_epi32(8);
  __m256i idx =
      _mm256_add_epi32(_mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
                       _mm256_set1_epi32(static_cast<int>(begin)));
  std::size_t c = 0;
  std::size_t i = begin;
  for (; i + 8 <= end; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(velocity + i));
    const auto mask = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(v, zero))));
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kCompress.perm[mask]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c),
                        _mm256_permutevar8x32_epi32(idx, perm));
    c += static_cast<std::size_t>(__builtin_popcount(mask));
    idx = _mm256_add_epi32(idx, eight);
  }
  for (; i < end; ++i) {
    out[c] = static_cast<std::uint32_t>(i);
    c += velocity[i] > 0;
  }
  return c;
}

#endif  // CAVENET_LANE_SIMD_AVX2

}  // namespace

bool active() noexcept { return avx2(); }

void gap_shifted_diff(const std::int64_t* cell, std::int64_t* gap,
                      std::size_t n) noexcept {
  if (n < 2) return;
#if CAVENET_LANE_SIMD_AVX2
  if (avx2()) {
    gap_shifted_diff_avx2(cell, gap, n);
    return;
  }
#endif
  for (std::size_t i = 0; i + 1 < n; ++i) gap[i] = cell[i + 1] - cell[i] - 1;
}

void velocity_min_clamp(std::int32_t* velocity, const std::int64_t* gap,
                        std::int32_t v_max, std::size_t n) noexcept {
#if CAVENET_LANE_SIMD_AVX2
  if (avx2()) {
    velocity_min_clamp_avx2(velocity, gap, v_max, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t accel =
        velocity[i] + 1 < v_max ? velocity[i] + 1 : v_max;
    const std::int64_t g = gap[i] < kI32Max ? gap[i] : kI32Max;
    velocity[i] = accel < static_cast<std::int32_t>(g)
                      ? accel
                      : static_cast<std::int32_t>(g);
  }
}

void gap_clamp(const std::int64_t* cell, std::int64_t* gap,
               std::int32_t* velocity, std::int32_t v_max,
               std::size_t n) noexcept {
  if (n < 2) return;
#if CAVENET_LANE_SIMD_AVX2
  if (avx2()) {
    gap_clamp_avx2(cell, gap, velocity, v_max, n);
    return;
  }
#endif
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::int64_t g64 = cell[i + 1] - cell[i] - 1;
    gap[i] = g64;
    const std::int32_t accel =
        velocity[i] + 1 < v_max ? velocity[i] + 1 : v_max;
    const std::int64_t g = g64 < kI32Max ? g64 : kI32Max;
    velocity[i] = accel < static_cast<std::int32_t>(g)
                      ? accel
                      : static_cast<std::int32_t>(g);
  }
}

void advance_cells(std::int64_t* cell, const std::int32_t* velocity,
                   std::size_t n) noexcept {
#if CAVENET_LANE_SIMD_AVX2
  if (avx2()) {
    advance_cells_avx2(cell, velocity, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) cell[i] += velocity[i];
}

std::int64_t sum_velocity(const std::int32_t* velocity,
                          std::size_t n) noexcept {
#if CAVENET_LANE_SIMD_AVX2
  if (avx2()) return sum_velocity_avx2(velocity, n);
#endif
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) sum += velocity[i];
  return sum;
}

std::size_t count_moving(const std::int32_t* velocity,
                         std::size_t n) noexcept {
#if CAVENET_LANE_SIMD_AVX2
  if (avx2()) return count_moving_avx2(velocity, n);
#endif
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += velocity[i] > 0;
  return count;
}

std::size_t compress_moving(const std::int32_t* velocity, std::size_t begin,
                            std::size_t end, std::uint32_t* out) noexcept {
#if CAVENET_LANE_SIMD_AVX2
  if (avx2()) return compress_moving_avx2(velocity, begin, end, out);
#endif
  std::size_t c = 0;
  for (std::size_t i = begin; i < end; ++i) {
    out[c] = static_cast<std::uint32_t>(i);
    c += velocity[i] > 0;
  }
  return c;
}

}  // namespace cavenet::ca::simd
