// Fundamental-diagram sweeps (paper Fig. 4): flow J = rho * v_bar as a
// function of density rho, ensemble-averaged over Monte-Carlo trials.
#ifndef CAVENET_CORE_FUNDAMENTAL_DIAGRAM_H
#define CAVENET_CORE_FUNDAMENTAL_DIAGRAM_H

#include <cstdint>
#include <vector>

#include "core/params.h"

namespace cavenet::ca {

struct FundamentalDiagramOptions {
  NasParams params;                 ///< lane_length, v_max, slowdown_p, ...
  std::vector<double> densities;    ///< rho values to sweep
  std::int64_t iterations = 500;    ///< steps per trial (paper: 500)
  std::int64_t trials = 20;         ///< Monte-Carlo trials per point (paper: 20)
  std::int64_t warmup = 0;          ///< steps discarded before averaging
  std::uint64_t seed = 1;
  /// Worker threads for the (density x trial) ensemble; <= 0 means one
  /// per hardware thread. Results are identical for every jobs value:
  /// each trial's RNG stream is keyed on (seed, density index, trial)
  /// and trial means are folded in trial order.
  int jobs = 1;
};

struct FundamentalDiagramPoint {
  double density = 0.0;         ///< rho
  double flow = 0.0;            ///< ensemble/time-averaged J
  double flow_stddev = 0.0;     ///< across trials
  double mean_velocity = 0.0;   ///< cells/step
};

/// Runs the sweep. Each (density, trial) pair gets an independent seeded
/// RNG stream, so results are reproducible and trial-order independent.
std::vector<FundamentalDiagramPoint> fundamental_diagram(
    const FundamentalDiagramOptions& options);

/// Densities 1/L, ..., up to `max_density` in `points` even steps —
/// convenience for the Fig. 4 sweep.
std::vector<double> density_ladder(std::int64_t lane_length, double max_density,
                                   std::size_t points);

/// Closed-form flow of the *deterministic* (p = 0) NaS model in steady
/// state: J(rho) = min(v_max * rho, 1 - rho). Used by tests as ground truth.
double deterministic_flow(double density, std::int32_t v_max) noexcept;

}  // namespace cavenet::ca

#endif  // CAVENET_CORE_FUNDAMENTAL_DIAGRAM_H
