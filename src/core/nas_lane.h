// The 1-dimensional Nagel-Schreckenberg cellular automaton — the core of
// the CAVENET Behavioural Analyzer (paper Section III-A).
//
// Update rules, applied in parallel to every vehicle at each step:
//   1. Acceleration:     v <- min(v + 1, v_max)
//   2. Gap constraint:   v <- min(v, gap)        (gap = free sites ahead)
//   2'. Random slowdown: v <- max(0, v - 1) with probability p
//   3. Motion:           x <- x + v
//
// step() runs the rules as four passes over a structure-of-arrays
// LaneState (docs/SCALING.md "Mobility SIMD"): a shifted-difference gap
// pass, a branch-free min/clamp velocity pass, a Bernoulli slowdown
// pass, and a wrap/rotate motion pass. The first, second and fourth
// vectorize (core/lane_simd.h); the slowdown pass consumes RNG draws in
// exactly the seed kernel's order — one uniform() per vehicle with
// post-clamp velocity > 0, in site order — which is what keeps every
// trajectory byte-identical to step_reference(), the retained scalar
// kernel the randomized equivalence harness compares against.
#ifndef CAVENET_CORE_NAS_LANE_H
#define CAVENET_CORE_NAS_LANE_H

#include <cstdint>
#include <span>
#include <vector>

#include "core/lane_state.h"
#include "core/params.h"
#include "core/vehicle.h"
#include "obs/stats_registry.h"
#include "util/rng.h"

namespace cavenet::ca {

/// How vehicles are placed at t = 0.
enum class InitialPlacement {
  /// N distinct uniformly random sites, random velocities in [0, v_max].
  kRandom,
  /// Evenly spaced sites, all velocities 0 (deterministic start).
  kEven,
  /// All vehicles packed at the head of the lane (a standing jam).
  kJam,
};

/// One lane of NaS traffic. Vehicles are kept sorted by site index.
class NasLane {
 public:
  /// Places `n_vehicles` on the lane. Throws if n_vehicles > lane_length
  /// or params are invalid.
  NasLane(NasParams params, std::int64_t n_vehicles,
          InitialPlacement placement = InitialPlacement::kRandom,
          Rng rng = Rng{});

  /// Advances the automaton one time step (parallel update).
  void step();
  /// Advances `n` steps.
  void run(std::int64_t n);

  /// The seed's scalar kernel, kept verbatim as the reference step():
  /// per-vehicle gap/velocity/slowdown in one loop, motion with
  /// std::rotate / re-seat. Bit-identical to step() (same RNG draw
  /// order, same arithmetic) — the randomized SoA-vs-reference harness
  /// asserts this; prefer step() everywhere else.
  void step_reference();

  const NasParams& params() const noexcept { return params_; }
  std::int64_t time_step() const noexcept { return time_step_; }
  std::int64_t vehicle_count() const noexcept {
    return static_cast<std::int64_t>(state_.size());
  }
  /// Density rho = N / L.
  double density() const noexcept;

  /// The raw structure-of-arrays state (see LaneState for the site-order
  /// / ring-head layout). Valid until the next step().
  const LaneState& state() const noexcept { return state_; }

  /// The vehicles in site order. Valid until the next step(). Backed by
  /// a per-step cache materialized from the SoA state on first use.
  std::span<const Vehicle> vehicles() const;
  /// Vehicle by stable id (not site order). O(1) via an id -> site-index
  /// map maintained lazily across rotates and re-sorts.
  const Vehicle& vehicle_by_id(std::uint32_t id) const;

  /// Average velocity over vehicles, in cells/step (the paper's v(t)).
  double average_velocity() const noexcept;
  /// Average velocity in m/s.
  double average_velocity_ms() const noexcept;
  /// Flow J = rho * v_bar at this instant (vehicles per site per step).
  double flow() const noexcept;

  /// Site occupancy as the paper's lane vector L_n: velocity of the
  /// vehicle at each occupied site, -1 for empty sites. Returns a
  /// reusable member buffer (overwritten by the next call).
  const std::vector<std::int32_t>& occupancy() const;

  /// Distance in metres from the lane origin along the lane, including
  /// accumulated wraps (monotone). Used by trace generation.
  double cumulative_position_m(const Vehicle& v) const noexcept;

  /// Batched SoA export: out[id] = cumulative position (metres) of the
  /// vehicle with that id, for every vehicle. One pass over the
  /// contiguous arrays — the bulk form of cumulative_position_m for
  /// per-timestamp position refreshes. out.size() must be >= size().
  void export_cumulative_positions_m(std::span<double> out) const;

  /// Sequential (non-parallel) update, for the ablation bench only: rules
  /// are applied vehicle-by-vehicle in site order, so a leader's move in
  /// this step already widens the follower's gap. Distorts the fundamental
  /// diagram; the paper's footnote 1 mandates the parallel variant.
  void step_sequential();

  /// Marks a site as a virtual obstacle: vehicles treat it as occupied and
  /// stop before it. Used by intersections (a conflicting crossing) and
  /// traffic lights. Throws if the cell is outside the lane.
  void block_cell(std::int64_t cell);
  /// Removes a virtual obstacle. No-op if not blocked.
  void unblock_cell(std::int64_t cell);
  bool is_blocked(std::int64_t cell) const noexcept;

  /// Binds the lane's stepping counters into a registry: "ca.step.steps"
  /// kernel steps, "ca.step.vehicles" vehicle-updates performed,
  /// "ca.step.draws" slowdown RNG draws, "ca.step.wraps" boundary
  /// crossings. Opt-in — unbound lanes (every scenario runner today)
  /// publish nothing, so run outputs are unchanged.
  void bind_stats(obs::StatsRegistry& registry);

 private:
  /// Free sites until the nearest blocked cell ahead of `from_cell`
  /// (circular on closed lanes); lane_length when none.
  std::int64_t gap_to_block(std::int64_t from_cell) const noexcept;
  /// Gap pass: shifted difference + boundary tails + blocked-cell min.
  void compute_gaps();
  /// Fused gap + acceleration/clamp pass: one traversal on unblocked
  /// lanes (simd::gap_clamp), falling back to compute_gaps +
  /// velocity_min_clamp when blocked cells must min into the gaps first.
  void compute_gaps_and_clamp();
  /// Slowdown + motion pass: one draw per moving vehicle in site order
  /// (an exact integer-threshold form of uniform() < p), advancing each
  /// mover's cell in the same traversal.
  void apply_slowdown_and_advance();
  /// Wrap fix after motion: O(1) head rotation on closed lanes,
  /// re-seat + re-sort on open ones.
  void apply_wrap();
  /// Open-boundary re-seat: vehicles past the end restart from the first
  /// free site at the head of the lane (velocity 0), then re-sort.
  void reseat_open_boundary(std::size_t first_wrapped);
  /// Writes a site-ordered AoS snapshot back into the SoA arrays
  /// (head = 0). Used by the reference/sequential paths.
  void commit_site_order(const std::vector<Vehicle>& vehicles);
  void invalidate_views() noexcept {
    aos_valid_ = false;
    id_index_valid_ = false;
  }
  void materialize_aos() const;

  NasParams params_;
  LaneState state_;
  std::vector<std::int64_t> blocked_cells_;  // sorted, unique
  Rng rng_;
  std::int64_t time_step_ = 0;

  // Per-step observer caches, rebuilt lazily after a step invalidates
  // them; reused storage so steady-state stepping never allocates.
  mutable std::vector<Vehicle> aos_;             // site order
  mutable bool aos_valid_ = false;
  mutable std::vector<std::uint32_t> id_index_;  // id -> site index
  mutable bool id_index_valid_ = false;
  mutable std::vector<std::int32_t> occupancy_;

  // kOpenShift re-seat scratch (reused across steps).
  std::vector<std::uint8_t> occupied_;
  std::vector<std::uint32_t> reseat_perm_;
  LaneState reseat_scratch_;
  // Slowdown-pass scratch: site-order indices of the moving vehicles
  // (simd::compress_moving). Sized once at construction.
  std::vector<std::uint32_t> moving_scratch_;

  obs::Counter obs_steps_;     ///< ca.step.steps
  obs::Counter obs_vehicles_;  ///< ca.step.vehicles
  obs::Counter obs_draws_;     ///< ca.step.draws
  obs::Counter obs_wraps_;     ///< ca.step.wraps
};

}  // namespace cavenet::ca

#endif  // CAVENET_CORE_NAS_LANE_H
