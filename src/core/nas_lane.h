// The 1-dimensional Nagel-Schreckenberg cellular automaton — the core of
// the CAVENET Behavioural Analyzer (paper Section III-A).
//
// Update rules, applied in parallel to every vehicle at each step:
//   1. Acceleration:     v <- min(v + 1, v_max)
//   2. Gap constraint:   v <- min(v, gap)        (gap = free sites ahead)
//   2'. Random slowdown: v <- max(0, v - 1) with probability p
//   3. Motion:           x <- x + v
#ifndef CAVENET_CORE_NAS_LANE_H
#define CAVENET_CORE_NAS_LANE_H

#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "core/params.h"
#include "core/vehicle.h"
#include "util/rng.h"

namespace cavenet::ca {

/// How vehicles are placed at t = 0.
enum class InitialPlacement {
  /// N distinct uniformly random sites, random velocities in [0, v_max].
  kRandom,
  /// Evenly spaced sites, all velocities 0 (deterministic start).
  kEven,
  /// All vehicles packed at the head of the lane (a standing jam).
  kJam,
};

/// One lane of NaS traffic. Vehicles are kept sorted by site index.
class NasLane {
 public:
  /// Places `n_vehicles` on the lane. Throws if n_vehicles > lane_length
  /// or params are invalid.
  NasLane(NasParams params, std::int64_t n_vehicles,
          InitialPlacement placement = InitialPlacement::kRandom,
          Rng rng = Rng{});

  /// Advances the automaton one time step (parallel update).
  void step();
  /// Advances `n` steps.
  void run(std::int64_t n);

  const NasParams& params() const noexcept { return params_; }
  std::int64_t time_step() const noexcept { return time_step_; }
  std::int64_t vehicle_count() const noexcept {
    return static_cast<std::int64_t>(vehicles_.size());
  }
  /// Density rho = N / L.
  double density() const noexcept;

  /// The vehicles in site order. Valid until the next step().
  std::span<const Vehicle> vehicles() const noexcept { return vehicles_; }
  /// Vehicle by stable id (not site order).
  const Vehicle& vehicle_by_id(std::uint32_t id) const;

  /// Average velocity over vehicles, in cells/step (the paper's v(t)).
  double average_velocity() const noexcept;
  /// Average velocity in m/s.
  double average_velocity_ms() const noexcept;
  /// Flow J = rho * v_bar at this instant (vehicles per site per step).
  double flow() const noexcept;

  /// Site occupancy as the paper's lane vector L_n: velocity of the vehicle
  /// at each occupied site, -1 for empty sites.
  std::vector<std::int32_t> occupancy() const;

  /// Distance in metres from the lane origin along the lane, including
  /// accumulated wraps (monotone). Used by trace generation.
  double cumulative_position_m(const Vehicle& v) const noexcept;

  /// Sequential (non-parallel) update, for the ablation bench only: rules
  /// are applied vehicle-by-vehicle in site order, so a leader's move in
  /// this step already widens the follower's gap. Distorts the fundamental
  /// diagram; the paper's footnote 1 mandates the parallel variant.
  void step_sequential();

  /// Marks a site as a virtual obstacle: vehicles treat it as occupied and
  /// stop before it. Used by intersections (a conflicting crossing) and
  /// traffic lights. Throws if the cell is outside the lane.
  void block_cell(std::int64_t cell);
  /// Removes a virtual obstacle. No-op if not blocked.
  void unblock_cell(std::int64_t cell);
  bool is_blocked(std::int64_t cell) const noexcept;

 private:
  std::int64_t gap_ahead(std::size_t idx) const noexcept;
  /// Free sites until the nearest blocked cell ahead of `from_cell`
  /// (circular on closed lanes); lane_length when none.
  std::int64_t gap_to_block(std::int64_t from_cell) const noexcept;
  void apply_motion();

  NasParams params_;
  std::vector<Vehicle> vehicles_;  // sorted by cell
  std::set<std::int64_t> blocked_cells_;
  Rng rng_;
  std::int64_t time_step_ = 0;
};

}  // namespace cavenet::ca

#endif  // CAVENET_CORE_NAS_LANE_H
