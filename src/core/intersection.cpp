#include "core/intersection.h"

#include <stdexcept>

namespace cavenet::ca {

Intersection::Intersection(NasLane& lane_a, NasLane& lane_b,
                           IntersectionConfig config)
    : lane_a_(&lane_a), lane_b_(&lane_b), config_(config) {
  if (config.cell_a < 0 || config.cell_a >= lane_a.params().lane_length ||
      config.cell_b < 0 || config.cell_b >= lane_b.params().lane_length) {
    throw std::invalid_argument("crossing cell outside lane");
  }
  if (config.clearance_cells < 0 || config.green_period_steps <= 0) {
    throw std::invalid_argument("bad intersection timing parameters");
  }
}

bool Intersection::lane_a_vehicle_near_crossing() const {
  const std::int64_t length = lane_a_->params().lane_length;
  for (const Vehicle& v : lane_a_->vehicles()) {
    // Upstream distance from the vehicle to the crossing (circular).
    std::int64_t ahead = config_.cell_a - v.cell;
    if (ahead < 0) ahead += length;
    if (ahead <= config_.clearance_cells) return true;
  }
  return false;
}

void Intersection::apply_policy() {
  switch (config_.policy) {
    case IntersectionPolicy::kPriorityToFirst: {
      a_green_ = true;
      const bool hold_b = lane_a_vehicle_near_crossing();
      if (hold_b) {
        lane_b_->block_cell(config_.cell_b);
      } else {
        lane_b_->unblock_cell(config_.cell_b);
      }
      lane_a_->unblock_cell(config_.cell_a);
      break;
    }
    case IntersectionPolicy::kTrafficLight: {
      a_green_ = (time_step_ / config_.green_period_steps) % 2 == 0;
      if (a_green_) {
        lane_a_->unblock_cell(config_.cell_a);
        lane_b_->block_cell(config_.cell_b);
      } else {
        lane_a_->block_cell(config_.cell_a);
        lane_b_->unblock_cell(config_.cell_b);
      }
      break;
    }
  }
}

void Intersection::step() {
  apply_policy();
  lane_a_->step();
  lane_b_->step();
  ++time_step_;
}

bool Intersection::conflict() const {
  bool a_on = false, b_on = false;
  for (const Vehicle& v : lane_a_->vehicles()) {
    if (v.cell == config_.cell_a) a_on = true;
  }
  for (const Vehicle& v : lane_b_->vehicles()) {
    if (v.cell == config_.cell_b) b_on = true;
  }
  return a_on && b_on;
}

}  // namespace cavenet::ca
