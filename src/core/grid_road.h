// Manhattan-grid urban road network — the "environments" extension from
// the paper's future work, composed from the building blocks the paper
// defines: straight lanes placed by affine transformations (Section III-D)
// and crosspoints as lane bottlenecks (Section III).
//
// n_h horizontal (west-east) and n_v vertical (south-north) lanes cross at
// every (i, j) block corner. A two-phase signal plan alternates the right
// of way: all horizontal lanes green, then all vertical lanes, blocking
// the red lanes' crossing cells via the CA's virtual obstacles.
#ifndef CAVENET_CORE_GRID_ROAD_H
#define CAVENET_CORE_GRID_ROAD_H

#include <cstdint>

#include "core/road.h"

namespace cavenet::ca {

struct GridRoadConfig {
  std::int32_t horizontal_lanes = 3;
  std::int32_t vertical_lanes = 3;
  /// Cells between adjacent crossings (40 cells x 7.5 m = 300 m blocks).
  std::int64_t block_cells = 40;
  std::int64_t vehicles_per_lane = 10;
  double slowdown_p = 0.3;
  /// Steps of green per phase.
  std::int64_t green_period_steps = 20;
  std::uint64_t seed = 1;
};

class GridRoad {
 public:
  /// Throws on non-positive dimensions or an overfull lane.
  explicit GridRoad(const GridRoadConfig& config);

  /// Updates the signal phase, then advances every lane one step.
  void step();
  /// Signal update only — pass as TraceGeneratorOptions::pre_step when the
  /// trace generator drives the stepping.
  void apply_signals(Road& road);

  Road& road() noexcept { return road_; }
  const Road& road() const noexcept { return road_; }
  std::int64_t time_step() const noexcept { return time_step_; }
  /// True while the horizontal lanes hold the right of way.
  bool horizontal_green() const noexcept;
  std::size_t vehicle_count() const noexcept { return road_.vehicle_count(); }

  /// Total grid extent in metres (horizontal lanes run this long).
  double width_m() const noexcept;
  double height_m() const noexcept;

 private:
  GridRoadConfig config_;
  Road road_;
  std::int64_t time_step_ = 0;
};

}  // namespace cavenet::ca

#endif  // CAVENET_CORE_GRID_ROAD_H
