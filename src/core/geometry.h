// Lane geometries: how the 1-D cell coordinate maps into the plane.
//
// The paper's "improvement" is exactly this mapping: the first CAVENET laid
// the lane out as a straight line, so the head and tail vehicles were far
// apart in space and could not communicate across the wrap-around; the
// improved version maps the closed lane onto a circle (Table I:
// "Simulation Area: 3000 m Circuit"), making the wrap spatially continuous.
#ifndef CAVENET_CORE_GEOMETRY_H
#define CAVENET_CORE_GEOMETRY_H

#include <memory>

#include "core/lane_transform.h"
#include "util/vec2.h"

namespace cavenet::ca {

/// Maps arc length along a lane (metres, in [0, length_m)) to the plane.
class LaneGeometry {
 public:
  virtual ~LaneGeometry() = default;

  /// Plane position of the point `arc_m` metres along the lane.
  virtual Vec2 position(double arc_m) const = 0;
  /// Unit heading (direction of travel) at `arc_m`.
  virtual Vec2 heading(double arc_m) const = 0;
  /// Total lane length in metres.
  virtual double length_m() const = 0;
  /// Whether position(length_m()) coincides with position(0): circular
  /// geometries are continuous across the wrap, straight lines are not.
  virtual bool wrap_continuous() const = 0;
};

/// Straight horizontal lane from (0,0) to (length, 0), then an affine
/// lane transformation (paper Section III-D).
class LineGeometry final : public LaneGeometry {
 public:
  LineGeometry(double length_m, LaneTransform transform = {});

  Vec2 position(double arc_m) const override;
  Vec2 heading(double arc_m) const override;
  double length_m() const override { return length_m_; }
  bool wrap_continuous() const override { return false; }

 private:
  double length_m_;
  LaneTransform transform_;
};

/// Lane bent onto a circle of circumference length_m, centred at `center`,
/// traversed counter-clockwise starting at angle 0 (east).
class CircuitGeometry final : public LaneGeometry {
 public:
  CircuitGeometry(double length_m, Vec2 center = {});

  Vec2 position(double arc_m) const override;
  Vec2 heading(double arc_m) const override;
  double length_m() const override { return length_m_; }
  bool wrap_continuous() const override { return true; }

  double radius() const noexcept { return radius_; }

 private:
  double length_m_;
  double radius_;
  Vec2 center_;
};

/// Convenience factories.
std::unique_ptr<LaneGeometry> make_line(double length_m,
                                        LaneTransform transform = {});
std::unique_ptr<LaneGeometry> make_circuit(double length_m, Vec2 center = {});

}  // namespace cavenet::ca

#endif  // CAVENET_CORE_GEOMETRY_H
