// Vectorized primitives for the SoA NaS stepping kernel.
//
// Each primitive is a pure array transformation with a well-defined
// scalar meaning; the .cpp provides a portable scalar implementation
// (written so the autovectorizer can fold it) and, when the build
// enables CAVENET_SIMD on x86-64, an explicit AVX2 path selected once at
// startup via cpuid — never by compiling the whole library for a wider
// ISA, so the binary still runs on machines without AVX2.
//
// Every primitive is exact integer arithmetic: the SIMD and scalar
// paths produce bit-identical outputs, which the SoA-vs-reference
// equivalence harness (tests/core/nas_soa_equivalence_test.cpp) and the
// fig4-fig7 golden CSVs rely on.
#ifndef CAVENET_CORE_LANE_SIMD_H
#define CAVENET_CORE_LANE_SIMD_H

#include <cstddef>
#include <cstdint>

namespace cavenet::ca::simd {

/// True when the AVX2 paths are compiled in AND the running CPU
/// supports them (always false for non-x86 or CAVENET_SIMD=OFF builds).
bool active() noexcept;

/// Shifted-difference gap pass: gap[i] = cell[i+1] - cell[i] - 1 for
/// i in [0, n-1). gap[n-1] is left untouched (the caller patches the
/// boundary tails). No-op for n < 2.
void gap_shifted_diff(const std::int64_t* cell, std::int64_t* gap,
                      std::size_t n) noexcept;

/// Branch-free velocity pass over [0, n):
///   v[i] = min(min(v[i] + 1, v_max), clamp32(gap[i]))
/// where clamp32 saturates the int64 gap into int32 range (gaps are
/// >= 0 after the gap pass; a gap beyond v_max never binds).
void velocity_min_clamp(std::int32_t* velocity, const std::int64_t* gap,
                        std::int32_t v_max, std::size_t n) noexcept;

/// Fused gap + velocity pass over the interior [0, n-1): computes
/// gap[i] = cell[i+1] - cell[i] - 1 and immediately applies
/// velocity[i] = min(min(velocity[i] + 1, v_max), clamp32(gap[i])) —
/// one traversal instead of gap_shifted_diff + velocity_min_clamp re-
/// reading the gap array. Entry n-1 (and any boundary-patch site, whose
/// raw diff is wrong) is left for the caller to patch and re-clamp.
/// No-op for n < 2.
void gap_clamp(const std::int64_t* cell, std::int64_t* gap,
               std::int32_t* velocity, std::int32_t v_max,
               std::size_t n) noexcept;

/// Motion pass over [0, n): cell[i] += velocity[i]. Wrap handling stays
/// with the caller (wrapped vehicles form a contiguous site-order
/// suffix, fixed up in O(wrapped)).
void advance_cells(std::int64_t* cell, const std::int32_t* velocity,
                   std::size_t n) noexcept;

/// Sum of velocity[0..n) as a 64-bit integer (exact; feeds
/// average_velocity, whose double result is bit-identical to the
/// sequential double accumulation because every partial sum of small
/// ints is exactly representable).
std::int64_t sum_velocity(const std::int32_t* velocity,
                          std::size_t n) noexcept;

/// Count of strictly positive entries in velocity[0..n) — the number of
/// Bernoulli draws the slowdown pass will consume.
std::size_t count_moving(const std::int32_t* velocity,
                         std::size_t n) noexcept;

/// Left-packs the indices i in [begin, end) with velocity[i] > 0 into
/// `out`, in ascending order; returns how many were written. The AVX2
/// path stores 8-wide at the write cursor, so `out` must have room for
/// end - begin entries even when fewer movers exist — the slack is
/// scratch that the next 8-wide store overwrites. Separating the movers
/// first lets the slowdown pass draw unconditionally: the serial RNG
/// dependency chain then runs without the branch mispredictions a
/// jammed lane's random stopped vehicles otherwise cause.
std::size_t compress_moving(const std::int32_t* velocity, std::size_t begin,
                            std::size_t end, std::uint32_t* out) noexcept;

}  // namespace cavenet::ca::simd

#endif  // CAVENET_CORE_LANE_SIMD_H
