#include "core/velocity_series.h"

#include <cmath>

namespace cavenet::ca {

std::vector<double> velocity_series(NasLane& lane, std::int64_t steps) {
  std::vector<double> series;
  series.reserve(static_cast<std::size_t>(steps));
  for (std::int64_t i = 0; i < steps; ++i) {
    lane.step();
    series.push_back(lane.average_velocity());
  }
  return series;
}

std::vector<double> velocity_series(const NasParams& params, double density,
                                    std::int64_t steps, std::uint64_t seed,
                                    InitialPlacement placement) {
  const auto n = static_cast<std::int64_t>(
      std::llround(density * static_cast<double>(params.lane_length)));
  NasLane lane(params, n, placement, Rng(seed));
  return velocity_series(lane, steps);
}

}  // namespace cavenet::ca
