#include "core/geometry.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cavenet::ca {

LineGeometry::LineGeometry(double length_m, LaneTransform transform)
    : length_m_(length_m), transform_(transform) {
  if (length_m <= 0.0) throw std::invalid_argument("lane length must be > 0");
}

Vec2 LineGeometry::position(double arc_m) const {
  return transform_.apply({arc_m, 0.0});
}

Vec2 LineGeometry::heading(double arc_m) const {
  (void)arc_m;
  const Vec2 d = transform_.apply_direction({1.0, 0.0});
  const double n = d.norm();
  return n > 0.0 ? d * (1.0 / n) : Vec2{1.0, 0.0};
}

CircuitGeometry::CircuitGeometry(double length_m, Vec2 center)
    : length_m_(length_m),
      radius_(length_m / (2.0 * std::numbers::pi)),
      center_(center) {
  if (length_m <= 0.0) throw std::invalid_argument("lane length must be > 0");
}

Vec2 CircuitGeometry::position(double arc_m) const {
  const double theta = arc_m / radius_;
  return {center_.x + radius_ * std::cos(theta),
          center_.y + radius_ * std::sin(theta)};
}

Vec2 CircuitGeometry::heading(double arc_m) const {
  const double theta = arc_m / radius_;
  return {-std::sin(theta), std::cos(theta)};
}

std::unique_ptr<LaneGeometry> make_line(double length_m,
                                        LaneTransform transform) {
  return std::make_unique<LineGeometry>(length_m, transform);
}

std::unique_ptr<LaneGeometry> make_circuit(double length_m, Vec2 center) {
  return std::make_unique<CircuitGeometry>(length_m, center);
}

}  // namespace cavenet::ca
