#include "core/road.h"

#include <cmath>
#include <stdexcept>

namespace cavenet::ca {

std::uint32_t Road::add_lane(NasLane lane,
                             std::unique_ptr<LaneGeometry> geometry) {
  if (!geometry) throw std::invalid_argument("geometry must not be null");
  const double expected = lane.params().lane_length_m();
  if (std::abs(geometry->length_m() - expected) > 1e-6) {
    throw std::invalid_argument("geometry length does not match lane length");
  }
  LaneEntry entry{std::move(lane), std::move(geometry), 0, {}};
  entry.first_node_id = 0;
  for (const auto& existing : lanes_) {
    entry.first_node_id +=
        static_cast<std::uint32_t>(existing.sim.vehicle_count());
  }
  entry.last_wraps.assign(
      static_cast<std::size_t>(entry.sim.vehicle_count()), 0);
  const LaneState& state = entry.sim.state();
  for (std::size_t p = 0; p < state.size(); ++p) {
    entry.last_wraps[state.id[p]] = state.wraps[p];
  }
  lanes_.push_back(std::move(entry));
  return static_cast<std::uint32_t>(lanes_.size() - 1);
}

std::size_t Road::vehicle_count() const noexcept {
  std::size_t n = 0;
  for (const auto& entry : lanes_) {
    n += static_cast<std::size_t>(entry.sim.vehicle_count());
  }
  return n;
}

void Road::step() {
  // Lanes are disjoint state with independent Rngs, so fanning them
  // across executor lanes is deterministic — same trajectories at any
  // thread count.
  const auto step_lane = [this](std::size_t k) {
    LaneEntry& entry = lanes_[k];
    const LaneState& state = entry.sim.state();
    for (std::size_t p = 0; p < state.size(); ++p) {
      entry.last_wraps[state.id[p]] = state.wraps[p];
    }
    entry.sim.step();
  };
  if (executor_ != nullptr) {
    executor_->parallel_for(lanes_.size(), 1, step_lane);
  } else {
    for (std::size_t k = 0; k < lanes_.size(); ++k) step_lane(k);
  }
  ++time_step_;
}

std::vector<VehicleState> Road::states() const {
  std::vector<VehicleState> out(vehicle_count());
  for (std::size_t k = 0; k < lanes_.size(); ++k) {
    const auto& entry = lanes_[k];
    const auto& params = entry.sim.params();
    // Straight off the SoA arrays — no per-vehicle AoS materialization.
    const LaneState& state = entry.sim.state();
    for (std::size_t p = 0; p < state.size(); ++p) {
      VehicleState s;
      s.lane = static_cast<std::uint32_t>(k);
      s.vehicle_id = state.id[p];
      s.node_id = entry.first_node_id + state.id[p];
      const double arc =
          static_cast<double>(state.cell[p]) * params.cell_length_m;
      s.position = entry.geometry->position(arc);
      const double speed_ms = static_cast<double>(state.velocity[p]) *
                              params.cell_length_m / params.dt_s;
      s.velocity = entry.geometry->heading(arc) * speed_ms;
      s.wrapped_this_step = state.wraps[p] != entry.last_wraps[state.id[p]];
      out[s.node_id] = s;
    }
  }
  return out;
}

}  // namespace cavenet::ca
