#include "core/road.h"

#include <cmath>
#include <stdexcept>

namespace cavenet::ca {

std::uint32_t Road::add_lane(NasLane lane,
                             std::unique_ptr<LaneGeometry> geometry) {
  if (!geometry) throw std::invalid_argument("geometry must not be null");
  const double expected = lane.params().lane_length_m();
  if (std::abs(geometry->length_m() - expected) > 1e-6) {
    throw std::invalid_argument("geometry length does not match lane length");
  }
  LaneEntry entry{std::move(lane), std::move(geometry), 0, {}};
  entry.first_node_id = 0;
  for (const auto& existing : lanes_) {
    entry.first_node_id +=
        static_cast<std::uint32_t>(existing.sim.vehicle_count());
  }
  entry.last_wraps.assign(
      static_cast<std::size_t>(entry.sim.vehicle_count()), 0);
  for (const auto& v : entry.sim.vehicles()) {
    entry.last_wraps[v.id] = v.wraps;
  }
  lanes_.push_back(std::move(entry));
  return static_cast<std::uint32_t>(lanes_.size() - 1);
}

std::size_t Road::vehicle_count() const noexcept {
  std::size_t n = 0;
  for (const auto& entry : lanes_) {
    n += static_cast<std::size_t>(entry.sim.vehicle_count());
  }
  return n;
}

void Road::step() {
  for (auto& entry : lanes_) {
    for (const auto& v : entry.sim.vehicles()) {
      entry.last_wraps[v.id] = v.wraps;
    }
    entry.sim.step();
  }
  ++time_step_;
}

std::vector<VehicleState> Road::states() const {
  std::vector<VehicleState> out(vehicle_count());
  for (std::size_t k = 0; k < lanes_.size(); ++k) {
    const auto& entry = lanes_[k];
    const auto& params = entry.sim.params();
    for (const auto& v : entry.sim.vehicles()) {
      VehicleState s;
      s.lane = static_cast<std::uint32_t>(k);
      s.vehicle_id = v.id;
      s.node_id = entry.first_node_id + v.id;
      const double arc = static_cast<double>(v.cell) * params.cell_length_m;
      s.position = entry.geometry->position(arc);
      const double speed_ms =
          static_cast<double>(v.velocity) * params.cell_length_m / params.dt_s;
      s.velocity = entry.geometry->heading(arc) * speed_ms;
      s.wrapped_this_step = v.wraps != entry.last_wraps[v.id];
      out[s.node_id] = s;
    }
  }
  return out;
}

}  // namespace cavenet::ca
