#include "core/grid_road.h"

#include <stdexcept>

#include "core/geometry.h"

namespace cavenet::ca {

GridRoad::GridRoad(const GridRoadConfig& config) : config_(config) {
  if (config.horizontal_lanes <= 0 || config.vertical_lanes <= 0 ||
      config.block_cells <= 0 || config.green_period_steps <= 0) {
    throw std::invalid_argument("grid dimensions must be positive");
  }

  // Horizontal lane length spans all vertical crossings; vice versa.
  NasParams h_params;
  h_params.lane_length = config.vertical_lanes * config.block_cells;
  h_params.slowdown_p = config.slowdown_p;
  NasParams v_params;
  v_params.lane_length = config.horizontal_lanes * config.block_cells;
  v_params.slowdown_p = config.slowdown_p;

  const double block_m = static_cast<double>(config.block_cells) * 7.5;
  std::uint64_t stream = 1;
  for (std::int32_t i = 0; i < config.horizontal_lanes; ++i) {
    // West->east at y = i * block.
    road_.add_lane(
        NasLane(h_params, config.vehicles_per_lane, InitialPlacement::kRandom,
                Rng(config.seed, stream++)),
        make_line(h_params.lane_length_m(),
                  LaneTransform::translation(0.0, static_cast<double>(i) *
                                                      block_m)));
  }
  for (std::int32_t j = 0; j < config.vertical_lanes; ++j) {
    // South->north at x = j * block (the paper's swap-axes transform).
    road_.add_lane(
        NasLane(v_params, config.vehicles_per_lane, InitialPlacement::kRandom,
                Rng(config.seed, stream++)),
        make_line(v_params.lane_length_m(),
                  LaneTransform::translation(
                      static_cast<double>(j) * block_m, 0.0) *
                      LaneTransform::swap_axes()));
  }
  apply_signals(road_);
  time_step_ = 0;  // the constructor's signal setup is not a step
}

bool GridRoad::horizontal_green() const noexcept {
  return (time_step_ / config_.green_period_steps) % 2 == 0;
}

double GridRoad::width_m() const noexcept {
  return static_cast<double>(config_.vertical_lanes * config_.block_cells) * 7.5;
}

double GridRoad::height_m() const noexcept {
  return static_cast<double>(config_.horizontal_lanes * config_.block_cells) *
         7.5;
}

void GridRoad::apply_signals(Road& road) {
  const bool h_green = horizontal_green();
  // Horizontal lane i crosses vertical lane j at cell j*block on lane i,
  // and at cell i*block on lane j.
  for (std::int32_t i = 0; i < config_.horizontal_lanes; ++i) {
    NasLane& lane = road.lane(static_cast<std::size_t>(i));
    for (std::int32_t j = 0; j < config_.vertical_lanes; ++j) {
      const std::int64_t cell = static_cast<std::int64_t>(j) * config_.block_cells;
      if (h_green) lane.unblock_cell(cell);
      else lane.block_cell(cell);
    }
  }
  for (std::int32_t j = 0; j < config_.vertical_lanes; ++j) {
    NasLane& lane = road.lane(
        static_cast<std::size_t>(config_.horizontal_lanes + j));
    for (std::int32_t i = 0; i < config_.horizontal_lanes; ++i) {
      const std::int64_t cell = static_cast<std::int64_t>(i) * config_.block_cells;
      if (h_green) lane.block_cell(cell);
      else lane.unblock_cell(cell);
    }
  }
  ++time_step_;
}

void GridRoad::step() {
  // apply_signals advances the phase clock; Road::step moves the vehicles.
  // (When the trace generator drives stepping, it calls apply_signals via
  // pre_step and Road::step itself.)
  apply_signals(road_);
  road_.step();
}

}  // namespace cavenet::ca
