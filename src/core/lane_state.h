// Structure-of-arrays vehicle state for the NaS stepping kernel.
//
// The stepping passes (core/nas_lane.cpp) want each per-vehicle field
// contiguous so they vectorize: the gap pass is a shifted difference
// over `cell`, the velocity pass a min/clamp over `velocity` against
// `gap`, the motion pass an add of `velocity` into `cell`. Splitting
// the seed's array-of-Vehicle into five parallel arrays makes every
// pass a straight-line loop over one or two streams.
//
// Site order and the ring head: vehicles are kept sorted by site index,
// but on a closed lane the sort is maintained as a *rotation*, not by
// moving elements. Physical index p holds the vehicle at site-order
// position (p - head) mod size: the arrays read in increasing cell
// order starting at `head`, wrapping from size-1 to 0. When k vehicles
// wrap past the lane end in one step they are exactly the k largest
// cells — a site-order suffix, physically the k slots just before
// `head` — so restoring site order is `head = (head + size - k) % size`
// in O(1) where the seed paid an O(N) std::rotate. Open (kOpenShift)
// lanes re-seat and re-sort on wrap instead, which resets head to 0.
#ifndef CAVENET_CORE_LANE_STATE_H
#define CAVENET_CORE_LANE_STATE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cavenet::ca {

struct LaneState {
  /// Site index on the lane, in [0, lane_length).
  std::vector<std::int64_t> cell;
  /// Velocity in cells per step, in [0, v_max].
  std::vector<std::int32_t> velocity;
  /// Free sites to the vehicle ahead, as of the start of the last step.
  std::vector<std::int64_t> gap;
  /// Wrap count (cell + wraps * lane_length = cumulative distance).
  std::vector<std::int64_t> wraps;
  /// Stable vehicle id, assigned at construction.
  std::vector<std::uint32_t> id;

  /// Physical index of the site-order-first (smallest cell) vehicle.
  std::size_t head = 0;

  std::size_t size() const noexcept { return cell.size(); }

  /// Physical index of site-order position s.
  std::size_t phys(std::size_t s) const noexcept {
    const std::size_t p = head + s;
    return p < size() ? p : p - size();
  }

  void resize(std::size_t n) {
    cell.resize(n);
    velocity.resize(n);
    gap.resize(n);
    wraps.resize(n);
    id.resize(n);
    head = 0;
  }
};

}  // namespace cavenet::ca

#endif  // CAVENET_CORE_LANE_STATE_H
