// Parameters of the Nagel-Schreckenberg cellular automaton.
#ifndef CAVENET_CORE_PARAMS_H
#define CAVENET_CORE_PARAMS_H

#include <cstdint>
#include <stdexcept>

namespace cavenet::ca {

/// How the lane ends are treated by the dynamics.
enum class Boundary {
  /// Periodic: site L-1 is adjacent to site 0 (the paper's improved,
  /// circular CAVENET). Vehicle count is conserved.
  kClosed,
  /// Open with re-injection: a vehicle driving past the end is shifted back
  /// to the first free site at the head of the lane (the *first* CAVENET
  /// version that the paper improves on). Dynamics see an infinite gap at
  /// the end of the lane, so the tail vehicle never blocks the head.
  kOpenShift,
};

struct NasParams {
  /// Number of sites L in the lane.
  std::int64_t lane_length = 400;
  /// Maximum velocity in cells per step. With cell_length = 7.5 m and
  /// dt = 1 s, v_max = 5 corresponds to 135 km/h as in the paper.
  std::int32_t v_max = 5;
  /// Random slowdown probability p; p = 0 gives the deterministic model.
  double slowdown_p = 0.0;
  /// Physical length of one site, metres.
  double cell_length_m = 7.5;
  /// Physical duration of one step, seconds.
  double dt_s = 1.0;
  Boundary boundary = Boundary::kClosed;

  void validate() const {
    if (lane_length <= 0) throw std::invalid_argument("lane_length must be > 0");
    if (v_max <= 0) throw std::invalid_argument("v_max must be > 0");
    if (slowdown_p < 0.0 || slowdown_p > 1.0) {
      throw std::invalid_argument("slowdown_p must be in [0, 1]");
    }
    if (cell_length_m <= 0.0) throw std::invalid_argument("cell_length_m must be > 0");
    if (dt_s <= 0.0) throw std::invalid_argument("dt_s must be > 0");
  }

  /// v_max expressed in km/h.
  double v_max_kmh() const noexcept {
    return static_cast<double>(v_max) * cell_length_m / dt_s * 3.6;
  }
  /// Physical lane length in metres.
  double lane_length_m() const noexcept {
    return static_cast<double>(lane_length) * cell_length_m;
  }
};

}  // namespace cavenet::ca

#endif  // CAVENET_CORE_PARAMS_H
