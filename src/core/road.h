// Multi-lane road: several NaS lanes placed in the plane.
//
// The paper motivates multiple lanes via connectivity (relay nodes on a
// parallel lane can bridge gaps, Fig. 1-a) and interference (traffic on the
// opposite lane interferes, Fig. 1-b). Lanes evolve independently — the NaS
// model has no lane changing — but share the simulation clock and are
// mapped into one absolute coordinate system for trace generation.
#ifndef CAVENET_CORE_ROAD_H
#define CAVENET_CORE_ROAD_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/geometry.h"
#include "core/nas_lane.h"
#include "util/executor.h"

namespace cavenet::ca {

/// Snapshot of one vehicle in absolute plane coordinates.
struct VehicleState {
  std::uint32_t lane = 0;
  std::uint32_t vehicle_id = 0;  ///< id within the lane
  std::uint32_t node_id = 0;     ///< globally unique across lanes
  Vec2 position;                 ///< absolute plane position
  Vec2 velocity;                 ///< absolute plane velocity, m/s
  bool wrapped_this_step = false;
};

class Road {
 public:
  /// Adds a lane with its geometry; returns the lane index. The geometry
  /// length must match the physical lane length of `lane`.
  std::uint32_t add_lane(NasLane lane, std::unique_ptr<LaneGeometry> geometry);

  std::size_t lane_count() const noexcept { return lanes_.size(); }
  NasLane& lane(std::size_t k) { return lanes_.at(k).sim; }
  const NasLane& lane(std::size_t k) const { return lanes_.at(k).sim; }
  const LaneGeometry& geometry(std::size_t k) const {
    return *lanes_.at(k).geometry;
  }

  /// Total vehicle count across all lanes.
  std::size_t vehicle_count() const noexcept;

  /// Steps every lane once. Lanes are independent automata (no lane
  /// changing, each with its own Rng), so with an executor installed the
  /// per-lane steps run concurrently — trajectories are identical at any
  /// lane/thread count (the executor only decides WHERE work runs).
  void step();
  std::int64_t time_step() const noexcept { return time_step_; }

  /// Installs the executor step() fans lanes across (nullptr = inline).
  /// Not owned; must outlive the road or be reset first.
  void set_executor(exec::Executor* executor) noexcept {
    executor_ = executor;
  }

  /// Current absolute state of every vehicle, ordered by node id.
  /// Node ids number vehicles lane by lane (lane 0 first).
  std::vector<VehicleState> states() const;

 private:
  struct LaneEntry {
    NasLane sim;
    std::unique_ptr<LaneGeometry> geometry;
    std::uint32_t first_node_id = 0;
    std::vector<std::int64_t> last_wraps;  // per vehicle id
  };
  std::vector<LaneEntry> lanes_;
  std::int64_t time_step_ = 0;
  exec::Executor* executor_ = nullptr;
};

}  // namespace cavenet::ca

#endif  // CAVENET_CORE_ROAD_H
