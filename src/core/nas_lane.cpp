#include "core/nas_lane.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace cavenet::ca {

NasLane::NasLane(NasParams params, std::int64_t n_vehicles,
                 InitialPlacement placement, Rng rng)
    : params_(params), rng_(std::move(rng)) {
  params_.validate();
  if (n_vehicles < 0 || n_vehicles > params_.lane_length) {
    throw std::invalid_argument("vehicle count must be in [0, lane_length]");
  }
  vehicles_.reserve(static_cast<std::size_t>(n_vehicles));

  switch (placement) {
    case InitialPlacement::kRandom: {
      // Sample n distinct sites via partial Fisher-Yates over site indices.
      std::vector<std::int64_t> sites(static_cast<std::size_t>(params_.lane_length));
      for (std::size_t i = 0; i < sites.size(); ++i) {
        sites[i] = static_cast<std::int64_t>(i);
      }
      for (std::int64_t i = 0; i < n_vehicles; ++i) {
        const auto j = static_cast<std::size_t>(
            i + static_cast<std::int64_t>(
                    rng_.uniform_int(static_cast<std::uint64_t>(
                        params_.lane_length - i))));
        std::swap(sites[static_cast<std::size_t>(i)], sites[j]);
      }
      sites.resize(static_cast<std::size_t>(n_vehicles));
      std::sort(sites.begin(), sites.end());
      for (std::size_t i = 0; i < sites.size(); ++i) {
        Vehicle v;
        v.cell = sites[i];
        v.velocity = static_cast<std::int32_t>(
            rng_.uniform_int(static_cast<std::uint64_t>(params_.v_max) + 1));
        vehicles_.push_back(v);
      }
      break;
    }
    case InitialPlacement::kEven: {
      for (std::int64_t i = 0; i < n_vehicles; ++i) {
        Vehicle v;
        v.cell = i * params_.lane_length / n_vehicles;
        v.velocity = 0;
        vehicles_.push_back(v);
      }
      break;
    }
    case InitialPlacement::kJam: {
      for (std::int64_t i = 0; i < n_vehicles; ++i) {
        Vehicle v;
        v.cell = i;
        v.velocity = 0;
        vehicles_.push_back(v);
      }
      break;
    }
  }
  // Ids follow initial site order so vehicle 0 is the rearmost.
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    vehicles_[i].id = static_cast<std::uint32_t>(i);
  }
  // Prime the gap fields so observers see consistent state before step().
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    vehicles_[i].gap = gap_ahead(i);
  }
}

double NasLane::density() const noexcept {
  return static_cast<double>(vehicles_.size()) /
         static_cast<double>(params_.lane_length);
}

const Vehicle& NasLane::vehicle_by_id(std::uint32_t id) const {
  for (const auto& v : vehicles_) {
    if (v.id == id) return v;
  }
  throw std::out_of_range("no vehicle with that id");
}

double NasLane::average_velocity() const noexcept {
  if (vehicles_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& v : vehicles_) sum += v.velocity;
  return sum / static_cast<double>(vehicles_.size());
}

double NasLane::average_velocity_ms() const noexcept {
  return average_velocity() * params_.cell_length_m / params_.dt_s;
}

double NasLane::flow() const noexcept { return density() * average_velocity(); }

std::vector<std::int32_t> NasLane::occupancy() const {
  std::vector<std::int32_t> lane(static_cast<std::size_t>(params_.lane_length), -1);
  for (const auto& v : vehicles_) {
    lane[static_cast<std::size_t>(v.cell)] = v.velocity;
  }
  return lane;
}

double NasLane::cumulative_position_m(const Vehicle& v) const noexcept {
  return (static_cast<double>(v.cell) +
          static_cast<double>(v.wraps) * static_cast<double>(params_.lane_length)) *
         params_.cell_length_m;
}

void NasLane::block_cell(std::int64_t cell) {
  if (cell < 0 || cell >= params_.lane_length) {
    throw std::out_of_range("blocked cell outside lane");
  }
  blocked_cells_.insert(cell);
}

void NasLane::unblock_cell(std::int64_t cell) { blocked_cells_.erase(cell); }

bool NasLane::is_blocked(std::int64_t cell) const noexcept {
  return blocked_cells_.contains(cell);
}

std::int64_t NasLane::gap_to_block(std::int64_t from_cell) const noexcept {
  if (blocked_cells_.empty()) return params_.lane_length;
  // Nearest blocked cell strictly ahead of from_cell.
  const auto ahead = blocked_cells_.upper_bound(from_cell);
  if (ahead != blocked_cells_.end()) return *ahead - from_cell - 1;
  if (params_.boundary == Boundary::kClosed) {
    return *blocked_cells_.begin() + params_.lane_length - from_cell - 1;
  }
  return params_.lane_length;
}

std::int64_t NasLane::gap_ahead(std::size_t idx) const noexcept {
  const std::size_t n = vehicles_.size();
  const Vehicle& me = vehicles_[idx];
  std::int64_t gap;
  if (n == 1) {
    // A lone vehicle never catches anyone.
    gap = params_.boundary == Boundary::kClosed ? params_.lane_length - 1
                                                : params_.lane_length;
  } else if (idx + 1 < n) {
    gap = vehicles_[idx + 1].cell - me.cell - 1;
  } else if (params_.boundary == Boundary::kClosed) {
    // Lead vehicle on a ring.
    gap = vehicles_[0].cell + params_.lane_length - me.cell - 1;
  } else {
    // Open lane: unobstructed road ahead.
    gap = params_.lane_length;
  }
  return std::min(gap, gap_to_block(me.cell));
}

void NasLane::step() {
  // Parallel update: compute every new velocity from the *current*
  // configuration before anyone moves (paper footnote 1).
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    vehicles_[i].gap = gap_ahead(i);
  }
  for (auto& v : vehicles_) {
    v.velocity = std::min(v.velocity + 1, params_.v_max);        // rule 1
    v.velocity = static_cast<std::int32_t>(
        std::min<std::int64_t>(v.velocity, v.gap));              // rule 2
    if (params_.slowdown_p > 0.0 && v.velocity > 0 &&
        rng_.bernoulli(params_.slowdown_p)) {
      --v.velocity;                                              // rule 2'
    }
  }
  apply_motion();
  ++time_step_;
}

void NasLane::step_sequential() {
  // Leaders update first (reverse site order), so a follower's gap already
  // reflects its leader's move within the same step — the in-step reaction
  // the parallel rule forbids.
  const std::size_t n = vehicles_.size();
  for (std::size_t i = n; i-- > 0;) {
    Vehicle& v = vehicles_[i];
    std::int64_t gap;
    if (i + 1 < n) {
      gap = vehicles_[i + 1].cell - v.cell - 1;
      if (gap < 0) gap += params_.lane_length;  // leader already wrapped
    } else if (n == 1) {
      gap = params_.lane_length - 1;
    } else if (params_.boundary == Boundary::kClosed) {
      gap = vehicles_[0].cell + params_.lane_length - v.cell - 1;
    } else {
      gap = params_.lane_length;
    }
    gap = std::min(gap, gap_to_block(v.cell));
    v.gap = gap;
    v.velocity = std::min(v.velocity + 1, params_.v_max);
    v.velocity =
        static_cast<std::int32_t>(std::min<std::int64_t>(v.velocity, v.gap));
    if (params_.slowdown_p > 0.0 && v.velocity > 0 &&
        rng_.bernoulli(params_.slowdown_p)) {
      --v.velocity;
    }
    v.cell += v.velocity;
    if (v.cell >= params_.lane_length) {
      v.cell -= params_.lane_length;
      ++v.wraps;
    }
  }
  std::sort(vehicles_.begin(), vehicles_.end(),
            [](const Vehicle& a, const Vehicle& b) { return a.cell < b.cell; });
  ++time_step_;
}

void NasLane::apply_motion() {
  if (params_.boundary == Boundary::kClosed) {
    bool wrapped = false;
    for (auto& v : vehicles_) {
      v.cell += v.velocity;
      if (v.cell >= params_.lane_length) {
        v.cell -= params_.lane_length;
        ++v.wraps;
        wrapped = true;
      }
    }
    if (wrapped) {
      // Wrapped vehicles moved from the tail of the vector to small site
      // indices; a rotate restores site order (cheaper than a sort, and the
      // relative order of vehicles never changes — NaS is collision-free
      // under periodic boundaries).
      std::rotate(vehicles_.begin(),
                  std::min_element(vehicles_.begin(), vehicles_.end(),
                                   [](const Vehicle& a, const Vehicle& b) {
                                     return a.cell < b.cell;
                                   }),
                  vehicles_.end());
    }
    return;
  }

  // kOpenShift (the first CAVENET version): the lead vehicle sees open road,
  // so it may drive past the lane end; it is then shifted back to the
  // beginning of the lane. Because rule 2 did not account for vehicles near
  // site 0, the landing site may be occupied — the shifted vehicle is placed
  // on the first free site from the head of the lane (this forced re-seating
  // is the "delay" the paper attributes to the unimproved version).
  std::vector<bool> occupied(static_cast<std::size_t>(params_.lane_length), false);
  std::vector<Vehicle*> shifted;
  for (auto& v : vehicles_) {
    v.cell += v.velocity;
    if (v.cell >= params_.lane_length) {
      ++v.wraps;
      shifted.push_back(&v);
    } else {
      occupied[static_cast<std::size_t>(v.cell)] = true;
    }
  }
  std::int64_t cursor = 0;
  for (Vehicle* v : shifted) {
    while (cursor < params_.lane_length &&
           occupied[static_cast<std::size_t>(cursor)]) {
      ++cursor;
    }
    v->cell = cursor;
    occupied[static_cast<std::size_t>(cursor)] = true;
    v->velocity = 0;  // re-seated vehicles restart from standstill
  }
  if (!shifted.empty()) {
    std::sort(vehicles_.begin(), vehicles_.end(),
              [](const Vehicle& a, const Vehicle& b) { return a.cell < b.cell; });
  }
}

void NasLane::run(std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) step();
}

}  // namespace cavenet::ca
