#include "core/nas_lane.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/lane_simd.h"

namespace cavenet::ca {

NasLane::NasLane(NasParams params, std::int64_t n_vehicles,
                 InitialPlacement placement, Rng rng)
    : params_(params), rng_(std::move(rng)) {
  params_.validate();
  if (n_vehicles < 0 || n_vehicles > params_.lane_length) {
    throw std::invalid_argument("vehicle count must be in [0, lane_length]");
  }
  state_.resize(static_cast<std::size_t>(n_vehicles));
  const std::size_t n = state_.size();

  switch (placement) {
    case InitialPlacement::kRandom: {
      // Sample n distinct sites via partial Fisher-Yates over site indices.
      std::vector<std::int64_t> sites(
          static_cast<std::size_t>(params_.lane_length));
      for (std::size_t i = 0; i < sites.size(); ++i) {
        sites[i] = static_cast<std::int64_t>(i);
      }
      for (std::int64_t i = 0; i < n_vehicles; ++i) {
        const auto j = static_cast<std::size_t>(
            i + static_cast<std::int64_t>(rng_.uniform_int(
                    static_cast<std::uint64_t>(params_.lane_length - i))));
        std::swap(sites[static_cast<std::size_t>(i)], sites[j]);
      }
      sites.resize(n);
      std::sort(sites.begin(), sites.end());
      for (std::size_t i = 0; i < n; ++i) {
        state_.cell[i] = sites[i];
        state_.velocity[i] = static_cast<std::int32_t>(
            rng_.uniform_int(static_cast<std::uint64_t>(params_.v_max) + 1));
      }
      break;
    }
    case InitialPlacement::kEven: {
      for (std::size_t i = 0; i < n; ++i) {
        state_.cell[i] =
            static_cast<std::int64_t>(i) * params_.lane_length / n_vehicles;
        state_.velocity[i] = 0;
      }
      break;
    }
    case InitialPlacement::kJam: {
      for (std::size_t i = 0; i < n; ++i) {
        state_.cell[i] = static_cast<std::int64_t>(i);
        state_.velocity[i] = 0;
      }
      break;
    }
  }
  // Ids follow initial site order so vehicle 0 is the rearmost.
  for (std::size_t i = 0; i < n; ++i) {
    state_.id[i] = static_cast<std::uint32_t>(i);
    state_.wraps[i] = 0;
  }
  moving_scratch_.resize(n);
  // Prime the gap fields so observers see consistent state before step().
  compute_gaps();
}

double NasLane::density() const noexcept {
  return static_cast<double>(state_.size()) /
         static_cast<double>(params_.lane_length);
}

std::span<const Vehicle> NasLane::vehicles() const {
  materialize_aos();
  return {aos_.data(), aos_.size()};
}

void NasLane::materialize_aos() const {
  if (aos_valid_) return;
  const std::size_t n = state_.size();
  aos_.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t p = state_.phys(s);
    Vehicle& v = aos_[s];
    v.id = state_.id[p];
    v.cell = state_.cell[p];
    v.velocity = state_.velocity[p];
    v.gap = state_.gap[p];
    v.wraps = state_.wraps[p];
  }
  aos_valid_ = true;
}

const Vehicle& NasLane::vehicle_by_id(std::uint32_t id) const {
  const std::size_t n = state_.size();
  if (id >= n) throw std::out_of_range("no vehicle with that id");
  materialize_aos();
  if (!id_index_valid_) {
    id_index_.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
      id_index_[aos_[s].id] = static_cast<std::uint32_t>(s);
    }
    id_index_valid_ = true;
  }
  return aos_[id_index_[id]];
}

double NasLane::average_velocity() const noexcept {
  const std::size_t n = state_.size();
  if (n == 0) return 0.0;
  // Exact: every partial sum of velocities fits a double mantissa, so the
  // integer sum divided once matches the seed's sequential double chain.
  const std::int64_t sum = simd::sum_velocity(state_.velocity.data(), n);
  return static_cast<double>(sum) / static_cast<double>(n);
}

double NasLane::average_velocity_ms() const noexcept {
  return average_velocity() * params_.cell_length_m / params_.dt_s;
}

double NasLane::flow() const noexcept { return density() * average_velocity(); }

const std::vector<std::int32_t>& NasLane::occupancy() const {
  occupancy_.assign(static_cast<std::size_t>(params_.lane_length), -1);
  const std::size_t n = state_.size();
  for (std::size_t p = 0; p < n; ++p) {
    occupancy_[static_cast<std::size_t>(state_.cell[p])] = state_.velocity[p];
  }
  return occupancy_;
}

double NasLane::cumulative_position_m(const Vehicle& v) const noexcept {
  return (static_cast<double>(v.cell) +
          static_cast<double>(v.wraps) *
              static_cast<double>(params_.lane_length)) *
         params_.cell_length_m;
}

void NasLane::export_cumulative_positions_m(std::span<double> out) const {
  const std::size_t n = state_.size();
  const auto L = static_cast<double>(params_.lane_length);
  const double cell_m = params_.cell_length_m;
  const auto* cell = state_.cell.data();
  const auto* wraps = state_.wraps.data();
  const auto* id = state_.id.data();
  for (std::size_t p = 0; p < n; ++p) {
    out[id[p]] =
        (static_cast<double>(cell[p]) + static_cast<double>(wraps[p]) * L) *
        cell_m;
  }
}

void NasLane::block_cell(std::int64_t cell) {
  if (cell < 0 || cell >= params_.lane_length) {
    throw std::out_of_range("blocked cell outside lane");
  }
  const auto it =
      std::lower_bound(blocked_cells_.begin(), blocked_cells_.end(), cell);
  if (it == blocked_cells_.end() || *it != cell) {
    blocked_cells_.insert(it, cell);
  }
}

void NasLane::unblock_cell(std::int64_t cell) {
  const auto it =
      std::lower_bound(blocked_cells_.begin(), blocked_cells_.end(), cell);
  if (it != blocked_cells_.end() && *it == cell) blocked_cells_.erase(it);
}

bool NasLane::is_blocked(std::int64_t cell) const noexcept {
  return std::binary_search(blocked_cells_.begin(), blocked_cells_.end(), cell);
}

void NasLane::bind_stats(obs::StatsRegistry& registry) {
  obs_steps_ = registry.counter("ca.step.steps");
  obs_vehicles_ = registry.counter("ca.step.vehicles");
  obs_draws_ = registry.counter("ca.step.draws");
  obs_wraps_ = registry.counter("ca.step.wraps");
}

std::int64_t NasLane::gap_to_block(std::int64_t from_cell) const noexcept {
  if (blocked_cells_.empty()) return params_.lane_length;
  // Nearest blocked cell strictly ahead of from_cell.
  const auto ahead =
      std::upper_bound(blocked_cells_.begin(), blocked_cells_.end(), from_cell);
  if (ahead != blocked_cells_.end()) return *ahead - from_cell - 1;
  if (params_.boundary == Boundary::kClosed) {
    return blocked_cells_.front() + params_.lane_length - from_cell - 1;
  }
  return params_.lane_length;
}

void NasLane::compute_gaps() {
  const std::size_t n = state_.size();
  if (n == 0) return;
  auto* cell = state_.cell.data();
  auto* gap = state_.gap.data();
  const std::int64_t L = params_.lane_length;
  const bool closed = params_.boundary == Boundary::kClosed;
  if (n == 1) {
    // A lone vehicle never catches anyone.
    gap[0] = closed ? L - 1 : L;
  } else {
    simd::gap_shifted_diff(cell, gap, n);
    // Two patches finish the ring. Physical adjacency equals site
    // adjacency except where the arrays wrap: physical n-1 -> 0 is
    // site-adjacent when head != 0 (the diff pass stops at n-1), and
    // physical head-1 holds the site-order LAST vehicle, whose gap closes
    // the ring (the raw diff there came out short by exactly L).
    const std::size_t head = state_.head;
    if (head == 0) {
      gap[n - 1] = closed ? cell[0] + L - cell[n - 1] - 1 : L;
    } else {
      gap[n - 1] = cell[0] - cell[n - 1] - 1;
      gap[head - 1] = closed ? cell[head] + L - cell[head - 1] - 1 : L;
    }
  }
  if (!blocked_cells_.empty()) {
    for (std::size_t p = 0; p < n; ++p) {
      const std::int64_t b = gap_to_block(cell[p]);
      if (b < gap[p]) gap[p] = b;
    }
  }
}

void NasLane::compute_gaps_and_clamp() {
  const std::size_t n = state_.size();
  if (n == 0) return;
  const std::int32_t v_max = params_.v_max;
  auto* gap = state_.gap.data();
  auto* vel = state_.velocity.data();
  if (n == 1 || !blocked_cells_.empty()) {
    // Blocked cells must min into the gaps before the clamp sees them,
    // so the passes cannot fuse; lone vehicles have no interior at all.
    compute_gaps();
    simd::velocity_min_clamp(vel, gap, v_max, n);
    return;
  }
  auto* cell = state_.cell.data();
  const std::int64_t L = params_.lane_length;
  const bool closed = params_.boundary == Boundary::kClosed;
  const std::size_t head = state_.head;
  // The fused pass works off raw shifted diffs, which are wrong at the
  // two ring-patch sites (physical n-1 when head != 0, and the
  // site-order last vehicle at head-1 resp. n-1). Stash their pre-clamp
  // velocities, run the bulk pass, then patch gap and redo the clamp
  // scalar at those sites.
  const std::size_t seam = head == 0 ? n - 1 : head - 1;
  const std::int32_t v_seam = vel[seam];
  const std::int32_t v_last = vel[n - 1];
  simd::gap_clamp(cell, gap, vel, v_max, n);
  const auto clamp_site = [&](std::size_t i, std::int32_t v) {
    const std::int32_t accel = v + 1 < v_max ? v + 1 : v_max;
    vel[i] = accel < gap[i] ? accel : static_cast<std::int32_t>(gap[i]);
  };
  if (head == 0) {
    gap[n - 1] = closed ? cell[0] + L - cell[n - 1] - 1 : L;
  } else {
    gap[n - 1] = cell[0] - cell[n - 1] - 1;
    gap[seam] = closed ? cell[head] + L - cell[seam] - 1 : L;
    clamp_site(seam, v_seam);
  }
  clamp_site(n - 1, v_last);
}

void NasLane::apply_slowdown_and_advance() {
  const std::size_t n = state_.size();
  auto* vel = state_.velocity.data();
  auto* cell = state_.cell.data();
  const double p = params_.slowdown_p;
  if (p <= 0.0) {
    // bernoulli(p <= 0) draws nothing; everyone advances as clamped.
    simd::advance_cells(cell, vel, n);
    return;
  }
  if (p >= 1.0) {
    // bernoulli(p >= 1) is true without consuming a draw.
    for (std::size_t i = 0; i < n; ++i) {
      const std::int32_t v = vel[i] - static_cast<std::int32_t>(vel[i] > 0);
      vel[i] = v;
      cell[i] += v;
    }
    return;
  }
  // Draw-order contract: one draw per vehicle with post-clamp velocity
  // > 0, in SITE order — physically the run [head, n) then [0, head).
  // This is the only order-sensitive pass. Left-packing the movers'
  // indices first (vectorized) makes every loop iteration below consume
  // a draw unconditionally: a jammed lane's randomly stopped vehicles
  // would otherwise stall the serial RNG dependency chain with a branch
  // misprediction per jam edge. `uniform() < p` is evaluated as an
  // exact integer compare: with m = draw >> 11, uniform() is m * 2^-53
  // with both factors exact, so uniform() < p iff m < ceil(p * 2^53)
  // (scaling a double by 2^53 is exact too) — no int->double convert on
  // the chain. Movers advance their cell in the same traversal; stopped
  // vehicles need no write at all.
  auto* moving = moving_scratch_.data();
  std::size_t count = simd::compress_moving(vel, state_.head, n, moving);
  count += simd::compress_moving(vel, 0, state_.head, moving + count);
  obs_draws_.inc(count);
  const std::uint64_t threshold =
      static_cast<std::uint64_t>(std::ceil(p * 9007199254740992.0));
  // Draw through a local generator: the member's state would have to be
  // re-loaded around every store the compiler cannot prove disjoint.
  Rng rng = std::move(rng_);
  for (std::size_t j = 0; j < count; ++j) {
    const std::size_t i = moving[j];
    const std::int32_t v =
        vel[i] - static_cast<std::int32_t>((rng.next_u64() >> 11) < threshold);
    vel[i] = v;
    cell[i] += v;
  }
  rng_ = std::move(rng);
}

void NasLane::apply_wrap() {
  const std::size_t n = state_.size();
  if (n == 0) return;
  auto* cell = state_.cell.data();
  const std::int64_t L = params_.lane_length;

  if (params_.boundary == Boundary::kClosed) {
    // Wrapped vehicles are the k largest new cells — a site-order suffix
    // (collision-freedom keeps site order strictly increasing), which is
    // physically the k slots walking backwards from head. Fix them up and
    // rotate the head in O(k) where the seed paid an O(N) std::rotate.
    std::size_t k = 0;
    while (k < n) {
      const std::size_t p = (state_.head + n - 1 - k) % n;
      if (cell[p] < L) break;
      cell[p] -= L;
      ++state_.wraps[p];
      ++k;
    }
    if (k > 0) {
      state_.head = (state_.head + n - k) % n;
      obs_wraps_.inc(k);
    }
    return;
  }

  // kOpenShift: head is pinned to 0 (re-seating re-sorts), so site order
  // is physical order and vehicles past the end are the physical suffix.
  std::size_t first = n;
  while (first > 0 && cell[first - 1] >= L) --first;
  if (first == n) return;
  obs_wraps_.inc(n - first);
  reseat_open_boundary(first);
}

void NasLane::reseat_open_boundary(std::size_t first_wrapped) {
  // kOpenShift (the first CAVENET version): the lead vehicle sees open
  // road, so it may drive past the lane end; it is then shifted back to
  // the first free site from the head of the lane and restarts from
  // standstill (this forced re-seating is the "delay" the paper
  // attributes to the unimproved version).
  const std::size_t n = state_.size();
  auto* cell = state_.cell.data();
  occupied_.assign(static_cast<std::size_t>(params_.lane_length), 0);
  for (std::size_t i = 0; i < first_wrapped; ++i) {
    occupied_[static_cast<std::size_t>(cell[i])] = 1;
  }
  std::int64_t cursor = 0;
  for (std::size_t i = first_wrapped; i < n; ++i) {
    while (cursor < params_.lane_length &&
           occupied_[static_cast<std::size_t>(cursor)]) {
      ++cursor;
    }
    cell[i] = cursor;
    occupied_[static_cast<std::size_t>(cursor)] = 1;
    state_.velocity[i] = 0;  // re-seated vehicles restart from standstill
    ++state_.wraps[i];
  }
  // Restore site order: sort a permutation of slots by cell (cells are
  // distinct, so the order is unique), gather into the scratch arrays and
  // swap them in. All storage is reused across steps.
  reseat_perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    reseat_perm_[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(
      reseat_perm_.begin(), reseat_perm_.end(),
      [cell](std::uint32_t a, std::uint32_t b) { return cell[a] < cell[b]; });
  reseat_scratch_.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    const std::uint32_t p = reseat_perm_[s];
    reseat_scratch_.cell[s] = state_.cell[p];
    reseat_scratch_.velocity[s] = state_.velocity[p];
    reseat_scratch_.gap[s] = state_.gap[p];
    reseat_scratch_.wraps[s] = state_.wraps[p];
    reseat_scratch_.id[s] = state_.id[p];
  }
  state_.cell.swap(reseat_scratch_.cell);
  state_.velocity.swap(reseat_scratch_.velocity);
  state_.gap.swap(reseat_scratch_.gap);
  state_.wraps.swap(reseat_scratch_.wraps);
  state_.id.swap(reseat_scratch_.id);
  state_.head = 0;
}

void NasLane::step() {
  // Parallel update: compute every new velocity from the *current*
  // configuration before anyone moves (paper footnote 1), as fused
  // passes over the SoA arrays. Only the slowdown pass is
  // order-sensitive.
  const std::size_t n = state_.size();
  compute_gaps_and_clamp();
  apply_slowdown_and_advance();
  apply_wrap();
  ++time_step_;
  invalidate_views();
  obs_steps_.inc();
  obs_vehicles_.inc(n);
}

void NasLane::step_reference() {
  // The seed's scalar kernel, verbatim, run on a materialized AoS copy
  // and committed back. Kept as the oracle for the SoA equivalence
  // harness — do not "optimize" this function.
  materialize_aos();
  std::vector<Vehicle> vehicles = aos_;
  const std::size_t n = vehicles.size();
  const std::int64_t L = params_.lane_length;

  const auto gap_ahead = [&](std::size_t idx) -> std::int64_t {
    const Vehicle& me = vehicles[idx];
    std::int64_t gap;
    if (n == 1) {
      gap = params_.boundary == Boundary::kClosed ? L - 1 : L;
    } else if (idx + 1 < n) {
      gap = vehicles[idx + 1].cell - me.cell - 1;
    } else if (params_.boundary == Boundary::kClosed) {
      gap = vehicles[0].cell + L - me.cell - 1;
    } else {
      gap = L;
    }
    return std::min(gap, gap_to_block(me.cell));
  };

  for (std::size_t i = 0; i < n; ++i) vehicles[i].gap = gap_ahead(i);
  std::uint64_t draws = 0;
  for (auto& v : vehicles) {
    v.velocity = std::min(v.velocity + 1, params_.v_max);  // rule 1
    v.velocity = static_cast<std::int32_t>(
        std::min<std::int64_t>(v.velocity, v.gap));  // rule 2
    if (params_.slowdown_p > 0.0 && v.velocity > 0) {
      draws += static_cast<std::uint64_t>(params_.slowdown_p < 1.0);
      if (rng_.bernoulli(params_.slowdown_p)) {
        --v.velocity;  // rule 2'
      }
    }
  }

  std::uint64_t wrapped = 0;
  if (params_.boundary == Boundary::kClosed) {
    for (auto& v : vehicles) {
      v.cell += v.velocity;
      if (v.cell >= L) {
        v.cell -= L;
        ++v.wraps;
        ++wrapped;
      }
    }
    if (wrapped > 0) {
      std::rotate(vehicles.begin(),
                  std::min_element(vehicles.begin(), vehicles.end(),
                                   [](const Vehicle& a, const Vehicle& b) {
                                     return a.cell < b.cell;
                                   }),
                  vehicles.end());
    }
  } else {
    std::vector<bool> occupied(static_cast<std::size_t>(L), false);
    std::vector<Vehicle*> shifted;
    for (auto& v : vehicles) {
      v.cell += v.velocity;
      if (v.cell >= L) {
        ++v.wraps;
        ++wrapped;
        shifted.push_back(&v);
      } else {
        occupied[static_cast<std::size_t>(v.cell)] = true;
      }
    }
    std::int64_t cursor = 0;
    for (Vehicle* v : shifted) {
      while (cursor < L && occupied[static_cast<std::size_t>(cursor)]) {
        ++cursor;
      }
      v->cell = cursor;
      occupied[static_cast<std::size_t>(cursor)] = true;
      v->velocity = 0;
    }
    if (!shifted.empty()) {
      std::sort(
          vehicles.begin(), vehicles.end(),
          [](const Vehicle& a, const Vehicle& b) { return a.cell < b.cell; });
    }
  }

  commit_site_order(vehicles);
  ++time_step_;
  invalidate_views();
  obs_steps_.inc();
  obs_vehicles_.inc(n);
  obs_draws_.inc(draws);
  obs_wraps_.inc(wrapped);
}

void NasLane::step_sequential() {
  // Leaders update first (reverse site order), so a follower's gap already
  // reflects its leader's move within the same step — the in-step reaction
  // the parallel rule forbids.
  materialize_aos();
  std::vector<Vehicle> vehicles = aos_;
  const std::size_t n = vehicles.size();
  const std::int64_t L = params_.lane_length;
  const bool closed = params_.boundary == Boundary::kClosed;
  std::vector<std::size_t> overflowed;  // kOpenShift: drove past the end
  for (std::size_t i = n; i-- > 0;) {
    Vehicle& v = vehicles[i];
    std::int64_t gap;
    if (i + 1 < n) {
      gap = vehicles[i + 1].cell - v.cell - 1;
      // Leader already wrapped the ring this step. Open-lane leaders past
      // the end keep their unwrapped cell until re-seating below, so
      // their followers always see a true (non-negative) gap.
      if (gap < 0) gap += L;
    } else if (n == 1) {
      gap = closed ? L - 1 : L;
    } else if (closed) {
      gap = vehicles[0].cell + L - v.cell - 1;
    } else {
      gap = L;
    }
    gap = std::min(gap, gap_to_block(v.cell));
    v.gap = gap;
    v.velocity = std::min(v.velocity + 1, params_.v_max);
    v.velocity =
        static_cast<std::int32_t>(std::min<std::int64_t>(v.velocity, v.gap));
    if (params_.slowdown_p > 0.0 && v.velocity > 0 &&
        rng_.bernoulli(params_.slowdown_p)) {
      --v.velocity;
    }
    v.cell += v.velocity;
    if (v.cell >= L) {
      if (closed) {
        v.cell -= L;
        ++v.wraps;
      } else {
        // kOpenShift: re-seat after the sweep (same semantics as the
        // parallel step) — wrapping in place here would teleport the
        // vehicle mid-lane, possibly onto an occupied site.
        ++v.wraps;
        overflowed.push_back(i);
      }
    }
  }
  if (!overflowed.empty()) {
    std::vector<bool> occupied(static_cast<std::size_t>(L), false);
    for (std::size_t i = 0; i < n; ++i) {
      if (vehicles[i].cell < L) {
        occupied[static_cast<std::size_t>(vehicles[i].cell)] = true;
      }
    }
    std::int64_t cursor = 0;
    // overflowed was collected leaders-first; re-seat in site order.
    for (auto it = overflowed.rbegin(); it != overflowed.rend(); ++it) {
      Vehicle& v = vehicles[*it];
      while (cursor < L && occupied[static_cast<std::size_t>(cursor)]) {
        ++cursor;
      }
      v.cell = cursor;
      occupied[static_cast<std::size_t>(cursor)] = true;
      v.velocity = 0;
    }
  }
  std::sort(vehicles.begin(), vehicles.end(),
            [](const Vehicle& a, const Vehicle& b) { return a.cell < b.cell; });
  commit_site_order(vehicles);
  ++time_step_;
  invalidate_views();
}

void NasLane::commit_site_order(const std::vector<Vehicle>& vehicles) {
  const std::size_t n = vehicles.size();
  for (std::size_t s = 0; s < n; ++s) {
    const Vehicle& v = vehicles[s];
    state_.cell[s] = v.cell;
    state_.velocity[s] = v.velocity;
    state_.gap[s] = v.gap;
    state_.wraps[s] = v.wraps;
    state_.id[s] = v.id;
  }
  state_.head = 0;
}

void NasLane::run(std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) step();
}

}  // namespace cavenet::ca
