#include "core/fundamental_diagram.h"

#include <algorithm>
#include <cmath>

#include "analysis/stats.h"
#include "core/nas_lane.h"
#include "runner/ensemble.h"

namespace cavenet::ca {

std::vector<FundamentalDiagramPoint> fundamental_diagram(
    const FundamentalDiagramOptions& options) {
  options.params.validate();
  const std::size_t densities = options.densities.size();
  const auto trials = static_cast<std::size_t>(options.trials);

  // One replication per (density, trial) pair, fanned out over the
  // ensemble pool. The per-trial RNG stream is keyed on (seed, density
  // index, trial) exactly as the serial loop always was, so the sweep is
  // reproducible and independent of worker count and schedule.
  struct TrialMeans {
    double flow = 0.0;
    double velocity = 0.0;
  };
  runner::EnsembleOptions pool_options;
  pool_options.jobs = options.jobs;
  pool_options.master_seed = options.seed;
  runner::EnsembleRunner pool(pool_options);
  const std::vector<TrialMeans> means = pool.map<TrialMeans>(
      densities * trials, [&options, trials](runner::ReplicationContext& ctx) {
        const std::size_t d = ctx.index / trials;
        const std::size_t trial = ctx.index % trials;
        const double rho = options.densities[d];
        const auto n = static_cast<std::int64_t>(std::llround(
            rho * static_cast<double>(options.params.lane_length)));
        Rng rng(options.seed, (static_cast<std::uint64_t>(d) << 32) |
                                  static_cast<std::uint64_t>(trial));
        NasLane lane(options.params, std::max<std::int64_t>(n, 0),
                     InitialPlacement::kRandom, std::move(rng));
        lane.run(options.warmup);
        analysis::RunningStats flow_over_time;
        analysis::RunningStats velocity_over_time;
        for (std::int64_t it = 0; it < options.iterations; ++it) {
          lane.step();
          flow_over_time.add(lane.flow());
          velocity_over_time.add(lane.average_velocity());
        }
        return TrialMeans{flow_over_time.mean(), velocity_over_time.mean()};
      });

  std::vector<FundamentalDiagramPoint> out;
  out.reserve(densities);
  for (std::size_t d = 0; d < densities; ++d) {
    analysis::RunningStats flow_over_trials;
    analysis::RunningStats velocity_over_trials;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      flow_over_trials.add(means[d * trials + trial].flow);
      velocity_over_trials.add(means[d * trials + trial].velocity);
    }
    FundamentalDiagramPoint point;
    point.density = options.densities[d];
    point.flow = flow_over_trials.mean();
    point.flow_stddev = flow_over_trials.stddev();
    point.mean_velocity = velocity_over_trials.mean();
    out.push_back(point);
  }
  return out;
}

std::vector<double> density_ladder(std::int64_t lane_length, double max_density,
                                   std::size_t points) {
  std::vector<double> out;
  out.reserve(points);
  const double min_density = 1.0 / static_cast<double>(lane_length);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = points > 1
                         ? static_cast<double>(i) / static_cast<double>(points - 1)
                         : 0.0;
    out.push_back(min_density + t * (max_density - min_density));
  }
  return out;
}

double deterministic_flow(double density, std::int32_t v_max) noexcept {
  return std::min(static_cast<double>(v_max) * density, 1.0 - density);
}

}  // namespace cavenet::ca
