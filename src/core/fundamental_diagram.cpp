#include "core/fundamental_diagram.h"

#include <algorithm>
#include <cmath>

#include "analysis/stats.h"
#include "core/nas_lane.h"

namespace cavenet::ca {

std::vector<FundamentalDiagramPoint> fundamental_diagram(
    const FundamentalDiagramOptions& options) {
  options.params.validate();
  std::vector<FundamentalDiagramPoint> out;
  out.reserve(options.densities.size());

  for (std::size_t d = 0; d < options.densities.size(); ++d) {
    const double rho = options.densities[d];
    const auto n = static_cast<std::int64_t>(std::llround(
        rho * static_cast<double>(options.params.lane_length)));
    analysis::RunningStats flow_over_trials;
    analysis::RunningStats velocity_over_trials;
    for (std::int64_t trial = 0; trial < options.trials; ++trial) {
      Rng rng(options.seed, (static_cast<std::uint64_t>(d) << 32) |
                                static_cast<std::uint64_t>(trial));
      NasLane lane(options.params, std::max<std::int64_t>(n, 0),
                   InitialPlacement::kRandom, rng);
      lane.run(options.warmup);
      analysis::RunningStats flow_over_time;
      analysis::RunningStats velocity_over_time;
      for (std::int64_t it = 0; it < options.iterations; ++it) {
        lane.step();
        flow_over_time.add(lane.flow());
        velocity_over_time.add(lane.average_velocity());
      }
      flow_over_trials.add(flow_over_time.mean());
      velocity_over_trials.add(velocity_over_time.mean());
    }
    FundamentalDiagramPoint point;
    point.density = rho;
    point.flow = flow_over_trials.mean();
    point.flow_stddev = flow_over_trials.stddev();
    point.mean_velocity = velocity_over_trials.mean();
    out.push_back(point);
  }
  return out;
}

std::vector<double> density_ladder(std::int64_t lane_length, double max_density,
                                   std::size_t points) {
  std::vector<double> out;
  out.reserve(points);
  const double min_density = 1.0 / static_cast<double>(lane_length);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = points > 1
                         ? static_cast<double>(i) / static_cast<double>(points - 1)
                         : 0.0;
    out.push_back(min_density + t * (max_density - min_density));
  }
  return out;
}

double deterministic_flow(double density, std::int32_t v_max) noexcept {
  return std::min(static_cast<double>(v_max) * density, 1.0 - density);
}

}  // namespace cavenet::ca
