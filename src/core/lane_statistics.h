// Behavioural-Analyzer statistics beyond the average velocity: headway
// (gap) and velocity distributions, jam cluster counts.
//
// The gap distribution is the link between the mobility model and network
// connectivity: a gap longer than the radio range is a broken link, and a
// ring is partitioned once two such gaps coexist (paper Fig. 1 / our
// Table-I parameter discussion).
#ifndef CAVENET_CORE_LANE_STATISTICS_H
#define CAVENET_CORE_LANE_STATISTICS_H

#include <cstdint>
#include <vector>

#include "core/nas_lane.h"

namespace cavenet::ca {

/// Snapshot statistics of one lane configuration.
struct LaneSnapshotStats {
  double mean_velocity = 0.0;     ///< cells/step
  double velocity_stddev = 0.0;
  double mean_gap = 0.0;          ///< cells
  double max_gap = 0.0;           ///< cells
  /// Number of jam clusters: maximal runs of stopped (v = 0) vehicles
  /// with bumper-to-bumper spacing.
  std::size_t jam_clusters = 0;
  /// Vehicles currently stopped.
  std::size_t stopped = 0;
};

/// Computes snapshot statistics from the lane's current configuration.
LaneSnapshotStats snapshot_stats(const NasLane& lane);

/// Accumulates distributions over many steps of a lane's evolution.
class LaneStatistics {
 public:
  /// `gap_bins`/`velocity_bins`: histogram resolution.
  explicit LaneStatistics(const NasParams& params);

  /// Records the lane's current configuration.
  void record(const NasLane& lane);

  std::size_t samples() const noexcept { return samples_; }

  /// P(gap >= g cells) over all recorded vehicle gaps.
  double gap_exceedance(std::int64_t g_cells) const;
  /// Fraction of recorded samples in which at least `k` gaps were >= g.
  /// k = 2 with g = range/cell is the ring-partition probability.
  double multi_gap_fraction(std::int64_t g_cells, std::size_t k) const;
  /// Velocity distribution: P(v == value).
  double velocity_probability(std::int32_t v) const;
  /// Mean number of jam clusters per sample.
  double mean_jam_clusters() const;

 private:
  NasParams params_;
  std::vector<std::uint64_t> gap_counts_;       // by gap value (cells)
  std::vector<std::uint64_t> velocity_counts_;  // by velocity value
  std::vector<std::vector<std::int64_t>> sample_gaps_;
  std::uint64_t total_gaps_ = 0;
  std::uint64_t total_vehicles_ = 0;
  std::uint64_t jam_cluster_sum_ = 0;
  std::size_t samples_ = 0;
};

}  // namespace cavenet::ca

#endif  // CAVENET_CORE_LANE_STATISTICS_H
