// CSV mobility export — the paper notes that "extending the BA block in
// order to export to other formats is straightforward"; this is the second
// format, a flat position sample table any plotting tool ingests.
#ifndef CAVENET_TRACE_CSV_FORMAT_H
#define CAVENET_TRACE_CSV_FORMAT_H

#include <iosfwd>
#include <string>

#include "trace/mobility_trace.h"

namespace cavenet::trace {

struct CsvExportOptions {
  double t_start_s = 0.0;
  double t_end_s = 100.0;
  double dt_s = 1.0;
};

/// Writes "t,node,x,y,speed" rows sampled every dt over [t_start, t_end].
/// Throws std::invalid_argument on a non-positive dt or inverted range.
void write_positions_csv(const MobilityTrace& trace, std::ostream& out,
                         const CsvExportOptions& options = {});
bool write_positions_csv_file(const MobilityTrace& trace,
                              const std::string& path,
                              const CsvExportOptions& options = {});

}  // namespace cavenet::trace

#endif  // CAVENET_TRACE_CSV_FORMAT_H
