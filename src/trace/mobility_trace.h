// In-memory mobility traces — the interface between CAVENET's Behavioural
// Analyzer (the CA) and the Communication Protocol Simulator.
//
// A trace is an initial position per node plus a time-ordered list of
// ns-2-style commands: "setdest x y speed" (move in a straight line toward
// a waypoint at constant speed) and "set position" (instantaneous teleport,
// used when a straight-line lane wraps — the discontinuity the paper's
// improved circular layout eliminates).
#ifndef CAVENET_TRACE_MOBILITY_TRACE_H
#define CAVENET_TRACE_MOBILITY_TRACE_H

#include <cstdint>
#include <vector>

#include "util/vec2.h"

namespace cavenet::trace {

struct TraceEvent {
  enum class Kind {
    kSetDest,      ///< move toward `target` at `speed_ms`
    kSetPosition,  ///< teleport to `target`
  };
  double time_s = 0.0;
  std::uint32_t node = 0;
  Kind kind = Kind::kSetDest;
  Vec2 target;
  double speed_ms = 0.0;
};

struct MobilityTrace {
  std::vector<Vec2> initial_positions;  ///< index = node id
  std::vector<TraceEvent> events;       ///< sorted by (time, node)

  std::uint32_t node_count() const noexcept {
    return static_cast<std::uint32_t>(initial_positions.size());
  }

  /// Sorts events by (time, node); writers call this before serializing.
  void normalize();
};

/// A compiled, per-node piecewise-linear path: position is O(log segments)
/// per query and the network simulator samples it every movement update.
class NodePath {
 public:
  /// Position at absolute time t (seconds). Clamps before the first and
  /// after the last segment.
  Vec2 position(double t_s) const;
  /// Velocity vector at time t (zero when idle).
  Vec2 velocity(double t_s) const;
  /// Time after which the node no longer moves.
  double end_time() const noexcept;

 private:
  friend std::vector<NodePath> compile_paths(const MobilityTrace& trace);
  struct Segment {
    double t0 = 0.0;  ///< departure time
    double t1 = 0.0;  ///< arrival time (>= t0; == t0 for teleports)
    Vec2 from;
    Vec2 to;
  };
  std::vector<Segment> segments_;  // sorted by t0
};

/// Compiles a trace into one path per node.
std::vector<NodePath> compile_paths(const MobilityTrace& trace);

}  // namespace cavenet::trace

#endif  // CAVENET_TRACE_MOBILITY_TRACE_H
