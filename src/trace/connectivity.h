// Connectivity analysis of mobility traces (paper Section III, Fig. 1).
//
// The paper motivates multi-lane modelling with two radio effects:
// (a) connectivity gaps on one lane can be bridged by relay vehicles on a
// parallel lane, and (b) interferers on the opposite lane. This module
// quantifies (a): unit-disk connectivity graphs over node positions and
// their evolution along a trace.
#ifndef CAVENET_TRACE_CONNECTIVITY_H
#define CAVENET_TRACE_CONNECTIVITY_H

#include <cstdint>
#include <span>
#include <vector>

#include "trace/mobility_trace.h"
#include "util/vec2.h"

namespace cavenet::trace {

/// Unit-disk graph over a set of positions: nodes are adjacent when their
/// distance is at most `range_m`. Components are computed eagerly.
class ConnectivityGraph {
 public:
  ConnectivityGraph(std::span<const Vec2> positions, double range_m);

  std::size_t node_count() const noexcept { return component_.size(); }
  /// Nodes in the same connected component can reach each other via
  /// multi-hop relaying.
  bool connected(std::uint32_t a, std::uint32_t b) const;
  std::size_t component_count() const noexcept { return component_count_; }
  std::size_t largest_component() const noexcept { return largest_; }
  /// Fraction of unordered node pairs that are connected, in [0, 1];
  /// 1 when the graph has a single component.
  double pair_connectivity() const noexcept;
  /// Direct (1-hop) neighbours of `node`.
  std::vector<std::uint32_t> neighbors(std::uint32_t node) const;
  /// Minimum hop count between two nodes (BFS), or -1 if disconnected.
  int hop_distance(std::uint32_t a, std::uint32_t b) const;

 private:
  double range_m_;
  std::vector<Vec2> positions_;
  std::vector<std::uint32_t> component_;
  std::vector<std::size_t> component_sizes_;
  std::size_t component_count_ = 0;
  std::size_t largest_ = 0;
};

/// Time series of connectivity statistics sampled along compiled paths.
struct ConnectivitySample {
  double time_s = 0.0;
  std::size_t components = 0;
  std::size_t largest_component = 0;
  double pair_connectivity = 0.0;
  bool pair_of_interest_connected = false;
};

struct ConnectivitySweepOptions {
  double range_m = 250.0;
  double t_start_s = 0.0;
  double t_end_s = 100.0;
  double dt_s = 1.0;
  /// Optional pair tracked by `pair_of_interest_connected` (e.g. the
  /// Table-I sender/receiver).
  std::uint32_t node_a = 0;
  std::uint32_t node_b = 0;
};

std::vector<ConnectivitySample> connectivity_over_time(
    std::span<const NodePath> paths, const ConnectivitySweepOptions& options);

/// Fraction of samples in which the tracked pair was connected.
double pair_uptime(std::span<const ConnectivitySample> samples);

/// Topology-change rate (a paper future-work metric): mean number of link
/// appearances + disappearances per sampling interval, measured by
/// diffing the unit-disk adjacency between consecutive samples.
double link_change_rate(std::span<const NodePath> paths,
                        const ConnectivitySweepOptions& options);

}  // namespace cavenet::trace

#endif  // CAVENET_TRACE_CONNECTIVITY_H
