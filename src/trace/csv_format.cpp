#include "trace/csv_format.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace cavenet::trace {

void write_positions_csv(const MobilityTrace& trace, std::ostream& out,
                         const CsvExportOptions& options) {
  if (options.dt_s <= 0.0) throw std::invalid_argument("dt must be > 0");
  if (options.t_end_s < options.t_start_s) {
    throw std::invalid_argument("t_end must be >= t_start");
  }
  const auto paths = compile_paths(trace);
  out << "t,node,x,y,speed\n";
  char buf[160];
  for (double t = options.t_start_s; t <= options.t_end_s + 1e-9;
       t += options.dt_s) {
    for (std::size_t node = 0; node < paths.size(); ++node) {
      const Vec2 p = paths[node].position(t);
      const double speed = paths[node].velocity(t).norm();
      std::snprintf(buf, sizeof buf, "%.6g,%zu,%.6f,%.6f,%.6f\n", t, node,
                    p.x, p.y, speed);
      out << buf;
    }
  }
}

bool write_positions_csv_file(const MobilityTrace& trace,
                              const std::string& path,
                              const CsvExportOptions& options) {
  std::ofstream out(path);
  if (!out) return false;
  write_positions_csv(trace, out, options);
  return static_cast<bool>(out);
}

}  // namespace cavenet::trace
