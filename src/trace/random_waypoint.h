// Random Waypoint (RW) mobility — the baseline the paper contrasts CAVENET
// against (Sections I and IV-B).
//
// Every node repeatedly picks a uniform destination in a rectangle and a
// uniform speed in [v_min, v_max], travels there, pauses, and repeats.
// With v_min near 0 the model exhibits the classic velocity-decay problem:
// the average instantaneous speed keeps falling because slow legs take
// arbitrarily long — exactly the transient pathology (Yoon/Le Boudec) that
// motivates CAVENET's finite-state CA mobility.
#ifndef CAVENET_TRACE_RANDOM_WAYPOINT_H
#define CAVENET_TRACE_RANDOM_WAYPOINT_H

#include <cstdint>
#include <span>
#include <vector>

#include "trace/mobility_trace.h"
#include "util/rng.h"

namespace cavenet::trace {

struct RandomWaypointOptions {
  std::uint32_t nodes = 30;
  double area_x_m = 1000.0;
  double area_y_m = 1000.0;
  double v_min_ms = 0.1;   ///< small but nonzero: 0 would strand nodes
  double v_max_ms = 37.5;  ///< matches the CA's 135 km/h
  double pause_s = 0.0;
  double duration_s = 100.0;
  std::uint64_t seed = 1;
};

/// Generates an RW mobility trace in the ns-2-compatible waypoint format
/// (so it can drive the same Communication Protocol Simulator the CA
/// traces drive — the two-block separation at work).
MobilityTrace generate_random_waypoint(const RandomWaypointOptions& options);

/// Average instantaneous node speed sampled over [t0, t1] every dt —
/// the velocity-decay observable.
std::vector<double> mean_speed_series(std::span<const NodePath> paths,
                                      double t0_s, double t1_s, double dt_s);

}  // namespace cavenet::trace

#endif  // CAVENET_TRACE_RANDOM_WAYPOINT_H
