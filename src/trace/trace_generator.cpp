#include "trace/trace_generator.h"

#include <stdexcept>

namespace cavenet::trace {

MobilityTrace generate_trace(ca::Road& road,
                             const TraceGeneratorOptions& options) {
  if (options.steps < 0) throw std::invalid_argument("steps must be >= 0");
  MobilityTrace trace;
  road.set_executor(options.executor);

  const Vec2 delta{options.delta_offset, options.delta_offset};
  auto prev = road.states();
  trace.initial_positions.reserve(prev.size());
  for (const auto& s : prev) trace.initial_positions.push_back(s.position + delta);

  // All lanes share dt by construction of the scenario; take lane 0's.
  const double dt = road.lane_count() > 0 ? road.lane(0).params().dt_s : 1.0;

  for (std::int64_t n = 0; n < options.steps; ++n) {
    if (options.pre_step) options.pre_step(road);
    road.step();
    const auto next = road.states();
    const double depart_s = static_cast<double>(n) * dt;
    for (std::size_t i = 0; i < next.size(); ++i) {
      const Vec2 from = prev[i].position + delta;
      const Vec2 to = next[i].position + delta;
      const double dist = distance(from, to);
      if (options.skip_idle && dist == 0.0) continue;

      TraceEvent ev;
      ev.node = next[i].node_id;
      ev.target = to;
      const bool discontinuous = next[i].wrapped_this_step &&
                                 !road.geometry(next[i].lane).wrap_continuous();
      if (discontinuous) {
        // A straight-line lane wrapped: the node teleports at arrival time.
        ev.kind = TraceEvent::Kind::kSetPosition;
        ev.time_s = depart_s + dt;
        ev.speed_ms = 0.0;
      } else {
        ev.kind = TraceEvent::Kind::kSetDest;
        ev.time_s = depart_s;
        ev.speed_ms = dist / dt;
      }
      trace.events.push_back(ev);
    }
    prev = next;
  }
  road.set_executor(nullptr);
  trace.normalize();
  return trace;
}

}  // namespace cavenet::trace
