#include "trace/ns2_format.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cavenet::trace {
namespace {

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

[[noreturn]] void parse_error(std::size_t line_no, const std::string& line,
                              const char* what) {
  std::ostringstream msg;
  msg << "ns-2 trace parse error at line " << line_no << " (" << what
      << "): " << line;
  throw std::runtime_error(msg.str());
}

}  // namespace

void write_ns2(const MobilityTrace& trace, std::ostream& out) {
  out << "# CAVENET++ ns-2 mobility trace, " << trace.node_count()
      << " nodes\n";
  for (std::uint32_t i = 0; i < trace.node_count(); ++i) {
    const Vec2 p = trace.initial_positions[i];
    out << "$node_(" << i << ") set X_ " << fmt(p.x) << "\n";
    out << "$node_(" << i << ") set Y_ " << fmt(p.y) << "\n";
    out << "$node_(" << i << ") set Z_ 0\n";
  }
  for (const TraceEvent& ev : trace.events) {
    if (ev.kind == TraceEvent::Kind::kSetDest) {
      out << "$ns_ at " << fmt(ev.time_s) << " \"$node_(" << ev.node
          << ") setdest " << fmt(ev.target.x) << " " << fmt(ev.target.y) << " "
          << fmt(ev.speed_ms) << "\"\n";
    } else {
      out << "$ns_ at " << fmt(ev.time_s) << " \"$node_(" << ev.node
          << ") set X_ " << fmt(ev.target.x) << "\"\n";
      out << "$ns_ at " << fmt(ev.time_s) << " \"$node_(" << ev.node
          << ") set Y_ " << fmt(ev.target.y) << "\"\n";
    }
  }
}

bool write_ns2_file(const MobilityTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_ns2(trace, out);
  return static_cast<bool>(out);
}

MobilityTrace read_ns2(std::istream& in) {
  MobilityTrace trace;
  std::map<std::uint32_t, Vec2> initial;
  // Timed "set X_ / set Y_" pairs are merged into one teleport event keyed
  // by (time, node).
  std::map<std::pair<double, std::uint32_t>, TraceEvent> teleports;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;

    unsigned node = 0;
    double value = 0.0;
    char axis = 0;
    // Initial position: $node_(3) set X_ 1.25
    if (std::sscanf(line.c_str(), "$node_(%u) set %c_ %lf", &node, &axis,
                    &value) == 3) {
      Vec2& p = initial[node];
      if (axis == 'X') p.x = value;
      else if (axis == 'Y') p.y = value;
      else if (axis != 'Z') parse_error(line_no, line, "unknown axis");
      continue;
    }
    double t = 0.0;
    double x = 0.0, y = 0.0, speed = 0.0;
    // Waypoint: $ns_ at 2 "$node_(3) setdest 130.9 7.5 7.5"
    if (std::sscanf(line.c_str(), "$ns_ at %lf \"$node_(%u) setdest %lf %lf %lf\"",
                    &t, &node, &x, &y, &speed) == 5) {
      TraceEvent ev;
      ev.time_s = t;
      ev.node = node;
      ev.kind = TraceEvent::Kind::kSetDest;
      ev.target = {x, y};
      ev.speed_ms = speed;
      trace.events.push_back(ev);
      continue;
    }
    // Teleport half: $ns_ at 3 "$node_(3) set X_ 1.0"
    if (std::sscanf(line.c_str(), "$ns_ at %lf \"$node_(%u) set %c_ %lf\"", &t,
                    &node, &axis, &value) == 4) {
      auto& ev = teleports[{t, node}];
      ev.time_s = t;
      ev.node = node;
      ev.kind = TraceEvent::Kind::kSetPosition;
      if (axis == 'X') ev.target.x = value;
      else if (axis == 'Y') ev.target.y = value;
      else if (axis != 'Z') parse_error(line_no, line, "unknown axis");
      continue;
    }
    parse_error(line_no, line, "unrecognized line");
  }

  std::uint32_t max_node = 0;
  for (const auto& [node, pos] : initial) max_node = std::max(max_node, node);
  for (const auto& ev : trace.events) max_node = std::max(max_node, ev.node);
  for (const auto& [key, ev] : teleports) max_node = std::max(max_node, ev.node);
  if (!initial.empty() || !trace.events.empty() || !teleports.empty()) {
    trace.initial_positions.assign(max_node + 1, Vec2{});
    for (const auto& [node, pos] : initial) trace.initial_positions[node] = pos;
  }
  for (const auto& [key, ev] : teleports) trace.events.push_back(ev);
  trace.normalize();
  return trace;
}

MobilityTrace read_ns2_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_ns2(in);
}

}  // namespace cavenet::trace
