#include "trace/mobility_trace.h"

#include <algorithm>
#include <stdexcept>

namespace cavenet::trace {

void MobilityTrace::normalize() {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.time_s != b.time_s) return a.time_s < b.time_s;
                     return a.node < b.node;
                   });
}

Vec2 NodePath::position(double t_s) const {
  if (segments_.empty()) return {};
  if (t_s <= segments_.front().t0) return segments_.front().from;
  // Last segment with t0 <= t.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t_s,
      [](double t, const Segment& s) { return t < s.t0; });
  const Segment& seg = *(it - 1);
  if (t_s >= seg.t1 || seg.t1 <= seg.t0) return seg.to;
  const double frac = (t_s - seg.t0) / (seg.t1 - seg.t0);
  return seg.from + (seg.to - seg.from) * frac;
}

Vec2 NodePath::velocity(double t_s) const {
  if (segments_.empty()) return {};
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t_s,
      [](double t, const Segment& s) { return t < s.t0; });
  if (it == segments_.begin()) return {};
  const Segment& seg = *(it - 1);
  if (t_s >= seg.t1 || seg.t1 <= seg.t0) return {};
  return (seg.to - seg.from) * (1.0 / (seg.t1 - seg.t0));
}

double NodePath::end_time() const noexcept {
  return segments_.empty() ? 0.0 : segments_.back().t1;
}

std::vector<NodePath> compile_paths(const MobilityTrace& trace) {
  std::vector<NodePath> paths(trace.node_count());
  // Current position and pending motion per node while scanning events.
  struct Cursor {
    Vec2 pos;
  };
  std::vector<Cursor> cursors(trace.node_count());
  for (std::uint32_t i = 0; i < trace.node_count(); ++i) {
    cursors[i].pos = trace.initial_positions[i];
    NodePath::Segment rest;
    rest.t0 = 0.0;
    rest.t1 = 0.0;
    rest.from = rest.to = cursors[i].pos;
    paths[i].segments_.push_back(rest);
  }

  MobilityTrace sorted = trace;
  sorted.normalize();
  for (const TraceEvent& ev : sorted.events) {
    if (ev.node >= trace.node_count()) {
      throw std::out_of_range("trace event for unknown node");
    }
    auto& path = paths[ev.node];
    auto& cur = cursors[ev.node];
    // Where the node actually is when the event fires (it may still be
    // travelling toward the previous waypoint).
    const Vec2 at = path.position(ev.time_s);
    // Truncate any in-flight segment at the event time.
    auto& last = path.segments_.back();
    if (last.t1 > ev.time_s) {
      last.t1 = ev.time_s;
      last.to = at;
    }
    NodePath::Segment seg;
    seg.t0 = ev.time_s;
    seg.from = at;
    seg.to = ev.target;
    if (ev.kind == TraceEvent::Kind::kSetPosition || ev.speed_ms <= 0.0) {
      seg.t1 = ev.time_s;  // teleport (or zero-speed: treated as teleport-in-place)
    } else {
      seg.t1 = ev.time_s + distance(at, ev.target) / ev.speed_ms;
    }
    path.segments_.push_back(seg);
    cur.pos = seg.to;
  }
  return paths;
}

}  // namespace cavenet::trace
