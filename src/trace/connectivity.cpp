#include "trace/connectivity.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace cavenet::trace {

ConnectivityGraph::ConnectivityGraph(std::span<const Vec2> positions,
                                     double range_m)
    : range_m_(range_m), positions_(positions.begin(), positions.end()) {
  if (range_m <= 0.0) throw std::invalid_argument("range must be > 0");
  const std::size_t n = positions_.size();
  component_.assign(n, UINT32_MAX);

  // BFS labelling; O(n^2) adjacency checks are fine at VANET sizes.
  const double range_sq = range_m * range_m;
  std::uint32_t label = 0;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (component_[seed] != UINT32_MAX) continue;
    std::size_t size = 0;
    std::queue<std::size_t> frontier;
    frontier.push(seed);
    component_[seed] = label;
    while (!frontier.empty()) {
      const std::size_t u = frontier.front();
      frontier.pop();
      ++size;
      for (std::size_t v = 0; v < n; ++v) {
        if (component_[v] != UINT32_MAX) continue;
        if ((positions_[u] - positions_[v]).norm_sq() <= range_sq) {
          component_[v] = label;
          frontier.push(v);
        }
      }
    }
    component_sizes_.push_back(size);
    ++label;
  }
  component_count_ = label;
  largest_ = component_sizes_.empty()
                 ? 0
                 : *std::max_element(component_sizes_.begin(),
                                     component_sizes_.end());
}

bool ConnectivityGraph::connected(std::uint32_t a, std::uint32_t b) const {
  return component_.at(a) == component_.at(b);
}

double ConnectivityGraph::pair_connectivity() const noexcept {
  const std::size_t n = component_.size();
  if (n < 2) return n == 1 ? 1.0 : 0.0;
  std::size_t connected_pairs = 0;
  for (const std::size_t size : component_sizes_) {
    connected_pairs += size * (size - 1) / 2;
  }
  return static_cast<double>(connected_pairs) /
         (static_cast<double>(n) * static_cast<double>(n - 1) / 2.0);
}

std::vector<std::uint32_t> ConnectivityGraph::neighbors(
    std::uint32_t node) const {
  std::vector<std::uint32_t> out;
  const Vec2 p = positions_.at(node);
  const double range_sq = range_m_ * range_m_;
  for (std::size_t v = 0; v < positions_.size(); ++v) {
    if (v == node) continue;
    if ((positions_[v] - p).norm_sq() <= range_sq) {
      out.push_back(static_cast<std::uint32_t>(v));
    }
  }
  return out;
}

int ConnectivityGraph::hop_distance(std::uint32_t a, std::uint32_t b) const {
  if (a == b) return 0;
  if (!connected(a, b)) return -1;
  std::vector<int> dist(positions_.size(), -1);
  std::queue<std::uint32_t> frontier;
  dist[a] = 0;
  frontier.push(a);
  while (!frontier.empty()) {
    const std::uint32_t u = frontier.front();
    frontier.pop();
    for (const std::uint32_t v : neighbors(u)) {
      if (dist[v] != -1) continue;
      dist[v] = dist[u] + 1;
      if (v == b) return dist[v];
      frontier.push(v);
    }
  }
  return -1;  // unreachable; connected() said otherwise only for a==b
}

std::vector<ConnectivitySample> connectivity_over_time(
    std::span<const NodePath> paths, const ConnectivitySweepOptions& options) {
  if (options.dt_s <= 0.0) throw std::invalid_argument("dt must be > 0");
  std::vector<ConnectivitySample> out;
  for (double t = options.t_start_s; t <= options.t_end_s + 1e-9;
       t += options.dt_s) {
    std::vector<Vec2> positions;
    positions.reserve(paths.size());
    for (const NodePath& path : paths) positions.push_back(path.position(t));
    const ConnectivityGraph graph(positions, options.range_m);
    ConnectivitySample sample;
    sample.time_s = t;
    sample.components = graph.component_count();
    sample.largest_component = graph.largest_component();
    sample.pair_connectivity = graph.pair_connectivity();
    sample.pair_of_interest_connected =
        options.node_a < paths.size() && options.node_b < paths.size() &&
        graph.connected(options.node_a, options.node_b);
    out.push_back(sample);
  }
  return out;
}

double link_change_rate(std::span<const NodePath> paths,
                        const ConnectivitySweepOptions& options) {
  if (options.dt_s <= 0.0) throw std::invalid_argument("dt must be > 0");
  const std::size_t n = paths.size();
  auto adjacency_at = [&](double t) {
    std::vector<Vec2> positions;
    positions.reserve(n);
    for (const NodePath& path : paths) positions.push_back(path.position(t));
    const double range_sq = options.range_m * options.range_m;
    std::vector<bool> adj(n * n, false);
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if ((positions[a] - positions[b]).norm_sq() <= range_sq) {
          adj[a * n + b] = true;
        }
      }
    }
    return adj;
  };

  std::vector<bool> prev = adjacency_at(options.t_start_s);
  std::size_t changes = 0;
  std::size_t intervals = 0;
  for (double t = options.t_start_s + options.dt_s;
       t <= options.t_end_s + 1e-9; t += options.dt_s) {
    const std::vector<bool> cur = adjacency_at(t);
    for (std::size_t i = 0; i < cur.size(); ++i) {
      if (cur[i] != prev[i]) ++changes;
    }
    prev = cur;
    ++intervals;
  }
  return intervals > 0
             ? static_cast<double>(changes) / static_cast<double>(intervals)
             : 0.0;
}

double pair_uptime(std::span<const ConnectivitySample> samples) {
  if (samples.empty()) return 0.0;
  std::size_t up = 0;
  for (const auto& s : samples) {
    if (s.pair_of_interest_connected) ++up;
  }
  return static_cast<double>(up) / static_cast<double>(samples.size());
}

}  // namespace cavenet::trace
