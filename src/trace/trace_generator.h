// Generates a mobility trace by stepping a CA road (BA -> trace stage).
#ifndef CAVENET_TRACE_TRACE_GENERATOR_H
#define CAVENET_TRACE_TRACE_GENERATOR_H

#include <cstdint>
#include <functional>

#include "core/road.h"
#include "trace/mobility_trace.h"
#include "util/executor.h"

namespace cavenet::trace {

struct TraceGeneratorOptions {
  /// Simulated duration in CA steps.
  std::int64_t steps = 100;
  /// Coordinate offset Delta added to every absolute position. The paper
  /// (footnote 3) uses it to dodge an ns-2 bug triggered by coordinate 0.
  double delta_offset = 1.0;
  /// Emit no event for a node whose position does not change this step.
  bool skip_idle = true;
  /// Invoked before every road step — controllers (traffic signals, grid
  /// coordinators) update their blocked cells here.
  std::function<void(ca::Road&)> pre_step;
  /// Executor the road fans independent lane steps across during the
  /// stepping loop (nullptr = inline). Lanes are disjoint automata with
  /// their own Rng, so the generated trace is byte-identical at any
  /// thread count. Must outlive the generate_trace call.
  exec::Executor* executor = nullptr;
};

/// Steps `road` options.steps times and records one waypoint per moving
/// vehicle per step. Wrap-around on a geometry that is not wrap-continuous
/// (straight line) is emitted as an instantaneous set-position event; on a
/// circular geometry the chord across the wrap is an ordinary setdest.
MobilityTrace generate_trace(ca::Road& road, const TraceGeneratorOptions& options);

}  // namespace cavenet::trace

#endif  // CAVENET_TRACE_TRACE_GENERATOR_H
