// ns-2 mobility-trace serialization (paper Fig. 3-b).
//
// Format written (and parsed back):
//   $node_(3) set X_ 123.456789
//   $node_(3) set Y_ 7.500000
//   $node_(3) set Z_ 0.000000
//   $ns_ at 2.0 "$node_(3) setdest 130.9 7.5 7.5"
//   $ns_ at 3.0 "$node_(3) set X_ 1.0"        (teleport, on lane wrap)
#ifndef CAVENET_TRACE_NS2_FORMAT_H
#define CAVENET_TRACE_NS2_FORMAT_H

#include <iosfwd>
#include <string>

#include "trace/mobility_trace.h"

namespace cavenet::trace {

/// Writes the trace in ns-2 syntax.
void write_ns2(const MobilityTrace& trace, std::ostream& out);
/// Convenience: writes to a file; returns false on I/O failure.
bool write_ns2_file(const MobilityTrace& trace, const std::string& path);

/// Parses ns-2 syntax back into a trace. Throws std::runtime_error with a
/// line number on malformed input. Unknown lines (comments, blank) are
/// skipped. Node count is inferred from the highest node index seen.
MobilityTrace read_ns2(std::istream& in);
MobilityTrace read_ns2_file(const std::string& path);

}  // namespace cavenet::trace

#endif  // CAVENET_TRACE_NS2_FORMAT_H
