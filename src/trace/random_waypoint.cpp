#include "trace/random_waypoint.h"

#include <stdexcept>

namespace cavenet::trace {

MobilityTrace generate_random_waypoint(const RandomWaypointOptions& options) {
  if (options.v_min_ms <= 0.0 || options.v_max_ms < options.v_min_ms) {
    throw std::invalid_argument("need 0 < v_min <= v_max");
  }
  if (options.area_x_m <= 0.0 || options.area_y_m <= 0.0) {
    throw std::invalid_argument("area must be positive");
  }
  if (options.pause_s < 0.0 || options.duration_s < 0.0) {
    throw std::invalid_argument("pause/duration must be >= 0");
  }

  MobilityTrace trace;
  trace.initial_positions.reserve(options.nodes);

  Rng master(options.seed, 0x7277);
  for (std::uint32_t node = 0; node < options.nodes; ++node) {
    Rng rng(options.seed, 0x72770000ULL + node);
    Vec2 position{rng.uniform(0.0, options.area_x_m),
                  rng.uniform(0.0, options.area_y_m)};
    trace.initial_positions.push_back(position);

    double t = 0.0;
    while (t < options.duration_s) {
      const Vec2 destination{rng.uniform(0.0, options.area_x_m),
                             rng.uniform(0.0, options.area_y_m)};
      const double speed = rng.uniform(options.v_min_ms, options.v_max_ms);
      TraceEvent ev;
      ev.time_s = t;
      ev.node = node;
      ev.kind = TraceEvent::Kind::kSetDest;
      ev.target = destination;
      ev.speed_ms = speed;
      trace.events.push_back(ev);
      t += distance(position, destination) / speed + options.pause_s;
      position = destination;
    }
  }
  trace.normalize();
  return trace;
}

std::vector<double> mean_speed_series(std::span<const NodePath> paths,
                                      double t0_s, double t1_s, double dt_s) {
  if (dt_s <= 0.0) throw std::invalid_argument("dt must be > 0");
  std::vector<double> out;
  for (double t = t0_s; t <= t1_s + 1e-9; t += dt_s) {
    double sum = 0.0;
    for (const NodePath& path : paths) sum += path.velocity(t).norm();
    out.push_back(paths.empty() ? 0.0
                                : sum / static_cast<double>(paths.size()));
  }
  return out;
}

}  // namespace cavenet::trace
