// Half-duplex radio with carrier sensing, capture and collision modelling
// (the ns-2 WirelessPhy equivalent used by the paper's CPS block).
#ifndef CAVENET_PHY_WIFI_PHY_H
#define CAVENET_PHY_WIFI_PHY_H

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "netsim/address.h"
#include "netsim/mobility.h"
#include "netsim/packet.h"
#include "netsim/simulator.h"
#include "obs/stats_registry.h"
#include "phy/propagation.h"
#include "util/sim_time.h"

namespace cavenet::phy {

class Channel;

struct PhyParams {
  /// Payload transmission rate (Table I: 2 Mbps).
  double data_rate_bps = 2e6;
  /// PLCP preamble + header airtime (802.11 DSSS long preamble at 1 Mbps).
  SimTime plcp_overhead = SimTime::microseconds(192);
  WaveLanProfile profile;
};

struct PhyStats {
  std::uint64_t frames_sent = 0;
  /// Cumulative time this radio spent transmitting.
  SimTime tx_airtime = SimTime::zero();
  std::uint64_t frames_received = 0;
  std::uint64_t collisions = 0;       ///< receptions corrupted by overlap
  std::uint64_t captures = 0;         ///< overlaps survived via capture
  std::uint64_t below_rx_threshold = 0;
  std::uint64_t missed_while_busy = 0;  ///< decodable frames while TX/locked
};

class WifiPhy {
 public:
  WifiPhy(netsim::Simulator& sim, netsim::NodeId id,
          const netsim::MobilityModel* mobility, PhyParams params = {});

  WifiPhy(const WifiPhy&) = delete;
  WifiPhy& operator=(const WifiPhy&) = delete;

  netsim::NodeId id() const noexcept { return id_; }
  Vec2 position() const { return mobility_->position(sim_->now()); }
  /// Position at an explicit simulation time. The channel's epoch-barrier
  /// prefetch evaluates this before the clock reaches the barrier, and
  /// from every executor lane — mobility models must answer it
  /// concurrently (they are const; see netsim::MobilityModel).
  Vec2 position_at(SimTime at) const { return mobility_->position(at); }
  /// The mobility model answering position queries. The channel inspects
  /// it at attach time for a BatchMobilityProvider so snapshot refreshes
  /// can be served in bulk.
  const netsim::MobilityModel* mobility() const noexcept { return mobility_; }
  const PhyParams& params() const noexcept { return params_; }

  /// Airtime of a frame of `bytes` total size (PLCP + payload).
  SimTime frame_duration(std::size_t bytes) const noexcept;

  /// True while this radio transmits.
  bool transmitting() const noexcept;
  /// True while locked onto an incoming frame.
  bool receiving() const noexcept { return current_rx_.has_value(); }
  /// Clear-channel assessment: medium busy by TX, RX or sensed energy.
  bool cca_busy() const noexcept;

  /// MAC downcall: start transmitting. Aborts any in-progress reception
  /// (the frame under reception is corrupted — half-duplex radio).
  void transmit(netsim::Packet packet);

  /// Upcall with the decoded frame and its receive power.
  using ReceiveCallback = std::function<void(netsim::Packet, double rx_power_w)>;
  void set_receive_callback(ReceiveCallback cb) { receive_cb_ = std::move(cb); }

  /// Upcall when a locked frame finished in error (collision / aborted):
  /// 802.11 stations defer EIFS instead of DIFS after this.
  using RxErrorCallback = std::function<void()>;
  void set_rx_error_callback(RxErrorCallback cb) {
    rx_error_cb_ = std::move(cb);
  }

  /// Fired whenever the CCA indication flips.
  using CcaCallback = std::function<void(bool busy)>;
  void set_cca_callback(CcaCallback cb) { cca_cb_ = std::move(cb); }

  /// Channel-facing: a signal starts arriving at this radio.
  void begin_receive(netsim::Packet packet, double rx_power_w,
                     SimTime duration);

  const PhyStats& stats() const noexcept { return stats_; }

  /// Binds this PHY's counters into a stats registry under "phy.*".
  void bind_stats(obs::StatsRegistry& registry);

 private:
  friend class Channel;
  /// Channel-maintained: the medium this radio is attached to and its
  /// slot index there (the channel's position snapshot is slot-addressed).
  void set_channel(Channel* channel, std::uint32_t slot) noexcept {
    channel_ = channel;
    channel_slot_ = slot;
  }

  void end_receive();
  void prune_energy();
  double energy_sum() const noexcept;
  void update_cca();

  struct Reception {
    netsim::Packet packet;
    double power_w;
    SimTime end;
    bool corrupted = false;
  };
  struct Signal {
    double power_w;
    SimTime end;
  };

  netsim::Simulator* sim_;
  netsim::NodeId id_;
  const netsim::MobilityModel* mobility_;
  PhyParams params_;
  Channel* channel_ = nullptr;
  std::uint32_t channel_slot_ = 0;

  SimTime tx_until_ = SimTime::zero();
  std::optional<Reception> current_rx_;
  std::vector<Signal> signals_;
  bool last_cca_busy_ = false;

  ReceiveCallback receive_cb_;
  RxErrorCallback rx_error_cb_;
  CcaCallback cca_cb_;
  PhyStats stats_;

  obs::Counter obs_tx_frames_;       ///< phy.tx.frames
  obs::Counter obs_rx_frames_;       ///< phy.rx.frames
  obs::Counter obs_collisions_;      ///< phy.drop.collision
  obs::Counter obs_captures_;        ///< phy.capture
  obs::Counter obs_below_thresh_;    ///< phy.drop.below_threshold
  obs::Counter obs_missed_busy_;     ///< phy.drop.busy
};

}  // namespace cavenet::phy

#endif  // CAVENET_PHY_WIFI_PHY_H
