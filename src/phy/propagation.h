// Radio propagation models.
//
// Table I of the paper uses Two-Ray Ground; the free-space and log-normal
// shadowing models cover the paper's future-work references [18, 19] and
// the propagation-model ablation bench.
//
// Default radio constants reproduce the ns-2 Lucent WaveLAN profile the
// paper's setup relies on: 914 MHz, 281.8 mW transmit power, 1.5 m antenna
// height, RX threshold placed exactly at 250 m and carrier-sense threshold
// at 550 m under two-ray ground.
#ifndef CAVENET_PHY_PROPAGATION_H
#define CAVENET_PHY_PROPAGATION_H

#include <memory>
#include <optional>

#include "util/rng.h"
#include "util/vec2.h"

namespace cavenet::phy {

/// Antenna/system constants shared by the models.
struct RadioConstants {
  double frequency_hz = 914e6;
  double antenna_gain_tx = 1.0;
  double antenna_gain_rx = 1.0;
  double antenna_height_m = 1.5;
  double system_loss = 1.0;

  double wavelength_m() const noexcept;
};

class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  /// Received power in Watts for a transmission of `tx_power_w` from `tx`
  /// to `rx`. Stochastic models draw from their own RNG stream.
  virtual double rx_power_w(double tx_power_w, Vec2 tx, Vec2 rx) = 0;

  /// Conservative upper bound on the distance at which a transmission of
  /// `tx_power_w` can still arrive with at least `min_power_w`: beyond the
  /// returned distance, rx_power_w() is guaranteed below `min_power_w`.
  /// The bound is deliberately padded (a fraction of a percent) so that a
  /// caller culling receivers by distance never disagrees with the exact
  /// power comparison at the boundary. Returns nullopt when the model
  /// cannot bound its range (stochastic models: a lucky shadowing or
  /// fading draw can carry any distance) — callers must then fall back to
  /// evaluating every receiver.
  virtual std::optional<double> max_range_m(double tx_power_w,
                                            double min_power_w) const {
    (void)tx_power_w;
    (void)min_power_w;
    return std::nullopt;
  }

  /// True when rx_power_w is a pure function of its arguments — no RNG
  /// draw, no mutable state — so the channel may evaluate receive power
  /// for many candidate receivers concurrently (docs/SCALING.md
  /// "Threading"). Stochastic models must return false: their per-query
  /// RNG draws have to happen serially, in candidate order, to keep the
  /// stream deterministic.
  virtual bool pure() const noexcept { return false; }
};

/// Friis free-space: Pr = Pt Gt Gr lambda^2 / ((4 pi d)^2 L).
class FreeSpaceModel final : public PropagationModel {
 public:
  explicit FreeSpaceModel(RadioConstants constants = {});
  double rx_power_w(double tx_power_w, Vec2 tx, Vec2 rx) override;
  std::optional<double> max_range_m(double tx_power_w,
                                    double min_power_w) const override;
  bool pure() const noexcept override { return true; }

 private:
  RadioConstants constants_;
};

/// ns-2 style two-ray ground: free-space below the crossover distance
/// dc = 4 pi ht hr / lambda, and Pr = Pt Gt Gr ht^2 hr^2 / (d^4 L) above.
class TwoRayGroundModel final : public PropagationModel {
 public:
  explicit TwoRayGroundModel(RadioConstants constants = {});
  double rx_power_w(double tx_power_w, Vec2 tx, Vec2 rx) override;
  std::optional<double> max_range_m(double tx_power_w,
                                    double min_power_w) const override;
  bool pure() const noexcept override { return true; }

  double crossover_distance_m() const noexcept { return crossover_m_; }

 private:
  RadioConstants constants_;
  double crossover_m_;
};

/// Log-normal shadowing: mean path loss with exponent `beta` relative to a
/// reference distance, plus a zero-mean Gaussian (sigma dB) per query.
class ShadowingModel final : public PropagationModel {
 public:
  ShadowingModel(double path_loss_exponent, double sigma_db, Rng rng,
                 double reference_distance_m = 1.0,
                 RadioConstants constants = {});
  double rx_power_w(double tx_power_w, Vec2 tx, Vec2 rx) override;

 private:
  RadioConstants constants_;
  double beta_;
  double sigma_db_;
  double d0_m_;
  double pr0_factor_;  ///< free-space gain at d0 for unit Pt
  Rng rng_;
};

/// Rayleigh fast fading stacked on a base path-loss model: the received
/// power is multiplied by an exponentially distributed unit-mean factor
/// per reception (non-line-of-sight multipath; paper future-work ref [19]
/// studies exactly this class of propagation effects in VANETs).
class RayleighFadingModel final : public PropagationModel {
 public:
  RayleighFadingModel(std::unique_ptr<PropagationModel> base, Rng rng);
  double rx_power_w(double tx_power_w, Vec2 tx, Vec2 rx) override;

 private:
  std::unique_ptr<PropagationModel> base_;
  Rng rng_;
};

/// The ns-2 WaveLAN defaults used throughout the Table-I experiments.
struct WaveLanProfile {
  double tx_power_w = 0.28183815;
  /// Receive threshold: frames below this power are undecodable.
  /// 3.652e-10 W = two-ray ground power at exactly 250 m.
  double rx_threshold_w = 3.652e-10;
  /// Carrier-sense threshold: energy above this makes the medium busy.
  /// 1.559e-11 W = two-ray ground power at ~550 m.
  double cs_threshold_w = 1.559e-11;
  /// Capture threshold (ratio): 10 dB.
  double capture_ratio = 10.0;
};

}  // namespace cavenet::phy

#endif  // CAVENET_PHY_PROPAGATION_H
