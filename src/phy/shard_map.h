// Strip partition of the world for the sharded channel.
//
// The world's x-extent is split into `strips` equal-width strips; every
// attached radio belongs to the strip containing its position at the
// last rebucket epoch. Between epochs membership is allowed to go stale:
// a radio certified to move at most `max_speed_mps` can have drifted at
// most max_speed * elapsed from its bucketed position, so a query that
// pads its x-range by that margin (see margin_at) still reaches every
// radio that could currently be inside it — conservative synchronization
// with the max-interaction radius plus drift as the lookahead bound,
// evaluated lazily instead of with explicit null messages.
//
// The speed bound is certified by the caller (the scenario layer derives
// it from the mobility trace and refuses to shard traces with mid-run
// teleports); rebucket() re-verifies it against the observed per-epoch
// displacement and throws on violation rather than silently diverging.
#ifndef CAVENET_PHY_SHARD_MAP_H
#define CAVENET_PHY_SHARD_MAP_H

#include <cstdint>
#include <span>
#include <vector>

#include "util/sim_time.h"
#include "util/vec2.h"

namespace cavenet::phy {

class ShardMap {
 public:
  static constexpr std::uint32_t kNoStrip = 0xFFFFFFFFu;

  /// Fixes the partition: `strips` >= 1 equal strips over [x_min, x_max],
  /// rebucketed every `epoch_s` of simulation time, with `max_speed_mps`
  /// as the certified drift bound.
  void configure(std::uint32_t strips, double x_min, double x_max,
                 double epoch_s, double max_speed_mps);

  std::uint32_t strips() const noexcept { return strips_; }
  bool configured() const noexcept { return strips_ > 0; }

  /// Strip containing x, clamped to [0, strips).
  std::uint32_t strip_of_x(double x) const noexcept;

  /// Strip the slot was bucketed into at the last epoch (kNoStrip for
  /// slots that were dead then).
  std::uint32_t strip_of_slot(std::uint32_t slot) const noexcept {
    return slot < strip_of_slot_.size() ? strip_of_slot_[slot] : kNoStrip;
  }

  const std::vector<std::uint32_t>& members(std::uint32_t strip) const {
    return members_[strip];
  }

  /// True when membership must be rebuilt before use: never bucketed,
  /// invalidated by churn, or the epoch has elapsed.
  bool needs_rebucket(SimTime now) const noexcept {
    return !valid_ || (now - last_rebucket_).sec() >= epoch_s_;
  }

  /// How far any radio may have strayed from its bucketed position by
  /// `now`; queries pad their strip range by this.
  double margin_at(SimTime now) const noexcept {
    return valid_ ? max_speed_mps_ * (now - last_rebucket_).sec() : 0.0;
  }

  /// Drops the current bucketing (attach/detach churn, out-of-band
  /// position edits). The next rebucket skips drift verification — there
  /// is no trusted anchor to verify against.
  void invalidate() noexcept { valid_ = false; }

  /// Rebuckets every slot with live[slot] != 0 at positions[slot],
  /// verifying the certified speed bound against the displacement since
  /// the previous epoch (throws std::logic_error on violation). Member
  /// lists come out in ascending slot order.
  void rebucket(SimTime now, std::span<const Vec2> positions,
                std::span<const std::uint8_t> live);

  std::uint64_t epochs() const noexcept { return epochs_; }

 private:
  std::uint32_t strips_ = 0;
  double x_min_ = 0.0;
  double strip_width_ = 0.0;
  double epoch_s_ = 1.0;
  double max_speed_mps_ = 0.0;

  bool valid_ = false;
  SimTime last_rebucket_ = SimTime::zero();
  std::vector<std::vector<std::uint32_t>> members_;
  std::vector<std::uint32_t> strip_of_slot_;
  /// Bucketed position per slot — the anchor the drift bound is verified
  /// against at the next epoch.
  std::vector<Vec2> anchors_;
  std::uint64_t epochs_ = 0;
};

}  // namespace cavenet::phy

#endif  // CAVENET_PHY_SHARD_MAP_H
