#include "phy/spatial_grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cavenet::phy {

namespace {

/// Packs two cell coordinates into one key. Coordinates are truncated to
/// 32 bits; scenarios large enough to wrap (cell span beyond ±2^31) only
/// alias distant cells together, which keeps queries a conservative
/// superset — never a miss.
std::uint64_t pack_cell(std::int64_t cx, std::int64_t cy) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint32_t>(cy);
}

}  // namespace

std::int64_t SpatialGrid::cell_coord(double v) const noexcept {
  return static_cast<std::int64_t>(std::floor(v / cell_size_));
}

void SpatialGrid::rebuild(std::span<const Vec2> positions,
                          std::span<const std::uint8_t> present,
                          double cell_size) {
  if (!(cell_size > 0.0)) {
    throw std::invalid_argument("spatial grid cell size must be > 0");
  }
  if (positions.size() != present.size()) {
    throw std::invalid_argument("positions/present size mismatch");
  }
  cell_size_ = cell_size;
  entries_.clear();
  entries_.reserve(positions.size());
  for (std::uint32_t i = 0; i < positions.size(); ++i) {
    if (!present[i]) continue;
    entries_.emplace_back(
        pack_cell(cell_coord(positions[i].x), cell_coord(positions[i].y)), i);
  }
  std::sort(entries_.begin(), entries_.end());
}

void SpatialGrid::rebuild_members(std::span<const Vec2> positions,
                                  std::span<const std::uint32_t> members,
                                  double cell_size) {
  if (!(cell_size > 0.0)) {
    throw std::invalid_argument("spatial grid cell size must be > 0");
  }
  cell_size_ = cell_size;
  entries_.clear();
  entries_.reserve(members.size());
  for (const std::uint32_t i : members) {
    entries_.emplace_back(
        pack_cell(cell_coord(positions[i].x), cell_coord(positions[i].y)), i);
  }
  std::sort(entries_.begin(), entries_.end());
}

void SpatialGrid::query(Vec2 center, double radius,
                        std::vector<std::uint32_t>& out) const {
  if (entries_.empty()) return;
  const std::size_t first_out = out.size();
  const std::int64_t x0 = cell_coord(center.x - radius);
  const std::int64_t x1 = cell_coord(center.x + radius);
  const std::int64_t y0 = cell_coord(center.y - radius);
  const std::int64_t y1 = cell_coord(center.y + radius);
  for (std::int64_t cx = x0; cx <= x1; ++cx) {
    for (std::int64_t cy = y0; cy <= y1; ++cy) {
      const std::uint64_t key = pack_cell(cx, cy);
      auto it = std::lower_bound(
          entries_.begin(), entries_.end(), key,
          [](const auto& entry, std::uint64_t k) { return entry.first < k; });
      for (; it != entries_.end() && it->first == key; ++it) {
        out.push_back(it->second);
      }
    }
  }
  // Each cell run is ascending, but cells are visited in coordinate
  // order; restore global index order for the caller.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first_out), out.end());
}

}  // namespace cavenet::phy
