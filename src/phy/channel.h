// The shared wireless medium: delivers each transmission to the attached
// radios that can interact with it, with per-link propagation loss and
// speed-of-light delay.
//
// Scaling design (docs/SCALING.md): when the propagation model can bound
// its interaction range (PropagationModel::max_range_m), the channel
// keeps a per-timestamp snapshot of every radio's position and a uniform
// grid over that snapshot, and a transmission only evaluates receive
// power for radios within the max-interaction radius. Receivers beyond
// it are provably below every radio's carrier-sense threshold, so the
// grid path is bitwise-identical to a full scan — only cheaper. Models
// that cannot bound range (shadowing, fading) fall back to evaluating
// every attached radio, exactly as before.
#ifndef CAVENET_PHY_CHANNEL_H
#define CAVENET_PHY_CHANNEL_H

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "netsim/simulator.h"
#include "obs/stats_registry.h"
#include "phy/propagation.h"
#include "phy/shard_map.h"
#include "phy/spatial_grid.h"
#include "phy/wifi_phy.h"

namespace cavenet::phy {

/// How the channel finds candidate receivers for a transmission. kGrid is
/// the default; kLinear is the brute-force reference (same range cull,
/// same results, same counters — it only walks every radio to apply it)
/// kept for equivalence testing and for measuring the index's win.
enum class ChannelIndex { kGrid, kLinear };

/// Spatial sharding plan for the channel (docs/SCALING.md "Sharding").
/// The world's x-extent is partitioned into up to `shards` strips; each
/// transmission only refreshes the position snapshot and spatial grid of
/// the strips its interaction radius (plus drift margin) can reach, so
/// the per-transmit snapshot cost drops from O(radios) to
/// O(radios/shards). `max_speed_mps` must be a true bound on every
/// radio's speed for the whole run — the scenario layer certifies it
/// from the mobility trace and refuses to shard traces with mid-run
/// teleports; ShardMap re-verifies it every epoch and throws on
/// violation. Results are bitwise-identical to the unsharded kernel: the
/// candidate superset changes, the evaluated set and event order never
/// do.
struct ShardPlan {
  std::uint32_t shards = 1;
  double x_min = 0.0;
  double x_max = 0.0;
  /// Membership rebucket period in simulation seconds (the LBTS epoch).
  double epoch_s = 1.0;
  double max_speed_mps = 0.0;
};

class Channel {
 public:
  /// RAII handle for one radio's membership on the medium: detaches on
  /// destruction (node teardown / churn). Obtained from Channel::attach;
  /// must not outlive the channel it came from.
  class [[nodiscard]] Attachment {
   public:
    Attachment() noexcept = default;
    Attachment(Attachment&& other) noexcept;
    Attachment& operator=(Attachment&& other) noexcept;
    Attachment(const Attachment&) = delete;
    Attachment& operator=(const Attachment&) = delete;
    ~Attachment() { detach(); }

    /// Unregisters the radio from the channel (idempotent). The radio
    /// stops receiving immediately; frames already in flight to it are
    /// still delivered (they left the medium while it was attached).
    void detach() noexcept;
    bool attached() const noexcept { return channel_ != nullptr; }

   private:
    friend class Channel;
    Attachment(Channel* channel, std::uint32_t slot) noexcept
        : channel_(channel), slot_(slot) {}

    Channel* channel_ = nullptr;
    std::uint32_t slot_ = 0;
  };

  Channel(netsim::Simulator& sim, std::unique_ptr<PropagationModel> model,
          ChannelIndex index = ChannelIndex::kGrid);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Registers a radio on this medium and hands back its lifecycle
  /// handle. The radio and the handle must not outlive the channel;
  /// dropping the handle detaches the radio.
  Attachment attach(WifiPhy* phy);

  /// Radios currently attached (detached slots excluded).
  std::size_t radio_count() const noexcept { return live_count_; }

  /// Called by a transmitting radio; delivers the frame to every other
  /// attached radio that can interact with it (each gets an independent
  /// copy).
  ///
  /// Cost per call: with a range-bounded model, O(radios) position
  /// evaluations once per distinct simulation timestamp (the snapshot)
  /// plus O(neighbours within the max-interaction radius) receive-power
  /// evaluations and events; the kLinear fallback and unbounded models
  /// pay O(radios) per call (every radio distance- or power-evaluated),
  /// though events stay O(neighbours) either way.
  void transmit(const WifiPhy& sender, const netsim::Packet& packet,
                SimTime duration, double tx_power_w);

  /// Drops the cached per-timestamp position snapshot. Only needed by
  /// callers that mutate a mobility model's position out-of-band at the
  /// current timestamp (test harnesses teleporting nodes mid-event);
  /// positions that are pure functions of simulation time never need it.
  void invalidate_positions() noexcept {
    snapshot_valid_ = false;
    shards_.invalidate();
    for (auto& v : shard_snapshot_valid_) v = 0;
  }

  /// Installs a spatial sharding plan (see ShardPlan). Call before the
  /// run; plan.shards == 1 keeps the channel unsharded. The effective
  /// strip count is resolved lazily against the interaction radius —
  /// a world narrower than `shards` strips of one radius falls back to
  /// fewer strips (possibly one). Requires a grid-indexed channel; the
  /// kLinear reference and unbounded models simply never shard.
  ///
  /// Also registers the channel's epoch-barrier prefetch with the
  /// simulator: when the kernel runs under enable_parallel, shard
  /// membership rebuckets happen at the dispatcher's epoch barriers (on
  /// every executor lane) instead of inside the first transmit past the
  /// epoch — referentially transparent precompute, so outputs are
  /// unchanged at any thread count.
  void configure_shards(const ShardPlan& plan);

  /// Observed sharding state, for tests and the bench harness.
  struct ShardDiagnostics {
    /// Resolved strip count (1 = sharding dormant; 0 = not yet resolved).
    std::uint32_t strips = 0;
    std::uint64_t epochs = 0;       ///< membership rebuckets (LBTS epochs)
    std::uint64_t cross_msgs = 0;   ///< cross-shard deliveries
    std::uint64_t refreshed = 0;    ///< per-strip position refreshes (nodes)
  };
  ShardDiagnostics shard_diagnostics() const noexcept {
    return {strips_, shards_.epochs(), diag_cross_msgs_, diag_refreshed_};
  }

  PropagationModel& propagation() noexcept { return *model_; }
  ChannelIndex index_mode() const noexcept { return index_; }

  /// Binds the channel's culling counters into a registry:
  /// "chan.tx" transmissions carried, "chan.evaluated" receive-power
  /// evaluations performed, "chan.culled" receivers skipped without one
  /// (beyond the max-interaction radius). evaluated + culled counts every
  /// (transmission, other radio) pair, and both are identical for kGrid
  /// and kLinear — the index changes how candidates are found, never
  /// which ones are evaluated.
  void bind_stats(obs::StatsRegistry& registry);

  /// Binds the sharding counters: "shard.msgs" cross-shard deliveries,
  /// "shard.lbts_epochs" membership rebuckets, "shard.refresh.nodes"
  /// per-strip position refreshes. Opt-in and separate from bind_stats:
  /// the scenario runners do not bind these, so a sharded run's stats
  /// snapshot stays byte-identical to the unsharded kernel's.
  void bind_shard_stats(obs::StatsRegistry& registry);

 private:
  void detach_slot(std::uint32_t slot) noexcept;
  /// Max-interaction radius for this transmit power against the most
  /// sensitive attached radio; nullopt when the model can't bound range.
  std::optional<double> interaction_radius(double tx_power_w);
  /// Ensures positions_ holds every live radio's position at sim->now(),
  /// and (when `radius` is set and the grid is active) that the grid is
  /// built over that snapshot.
  void refresh_snapshot(const std::optional<double>& radius);
  /// Resolves the effective strip count against the first seen radius
  /// (how many radius-wide strips fit the extent) and sizes the
  /// per-strip state. Returns strips_; > 1 means sharding is active.
  std::uint32_t resolve_strips(double radius);
  /// Re-evaluates every live position (at `now`, across executor lanes)
  /// and rebuilds strip membership.
  void rebucket_shards(SimTime now);
  /// Evaluates every live radio's position at `now` into positions_.
  /// Slots whose mobility model exposes a BatchMobilityProvider are
  /// served in bulk (one virtual call per run of consecutive same-
  /// provider slots) instead of per-radio virtual dispatch.
  void eval_all_positions(SimTime now);
  /// Same, for an explicit slot list (a shard strip's members).
  void eval_member_positions(SimTime now,
                             std::span<const std::uint32_t> member_slots);
  /// Ensures strip `s`'s members have fresh positions at `now` and its
  /// grid is built over them.
  void refresh_strip(std::uint32_t s, SimTime now, double radius);
  /// Epoch-barrier task: rebuckets shard membership at the barrier time
  /// when due (registered with the simulator by configure_shards).
  void epoch_prefetch(SimTime at);

  netsim::Simulator* sim_;
  std::unique_ptr<PropagationModel> model_;
  ChannelIndex index_;

  // Slot-addressed radio table: slots keep their index for the lifetime
  // of the channel (Attachment handles store it), detach tombstones the
  // slot. Iteration order == attach order, which fixes the event
  // schedule order and therefore byte-level determinism.
  std::vector<WifiPhy*> slots_;
  std::vector<std::uint8_t> live_;
  std::vector<Vec2> positions_;  ///< snapshot, parallel to slots_
  std::size_t live_count_ = 0;

  /// Batch-dispatch table, parallel to slots_: the slot's mobility
  /// provider (nullptr = per-radio dispatch) and its member id there.
  /// Captured at attach time, cleared on detach.
  std::vector<const netsim::BatchMobilityProvider*> batch_provider_;
  std::vector<std::uint32_t> batch_member_;
  std::size_t batch_count_ = 0;  ///< live slots with a provider

  SimTime snapshot_time_ = SimTime::zero();
  bool snapshot_valid_ = false;
  bool grid_built_ = false;
  SpatialGrid grid_;
  std::vector<std::uint32_t> scratch_;  ///< query results, reused

  /// Phase-1 output of the two-phase parallel receive-power pass,
  /// parallel to scratch_. With a pure range-bounded model and an
  /// executor wider than one lane, the (distance, power) arithmetic for
  /// every candidate runs concurrently into this buffer; the serial
  /// commit pass then walks candidates in attach order reading the
  /// precomputed values — same functions, same inputs, so the delivered
  /// set and every counter stay bitwise-identical to the serial path.
  struct CandidateEval {
    double distance = 0.0;
    double power = 0.0;
    std::uint8_t in_range = 0;
  };
  std::vector<CandidateEval> eval_scratch_;

  /// Smallest carrier-sense threshold over attached radios — the radius
  /// bound must cover the most sensitive receiver.
  double min_cs_threshold_w_ = 0.0;
  bool min_cs_valid_ = false;
  /// Single-entry cache: tx power -> solved radius (tx power is uniform
  /// in practice, so the solve runs once per attach/detach epoch).
  std::optional<std::pair<double, std::optional<double>>> radius_cache_;

  obs::Counter obs_tx_;         ///< chan.tx
  obs::Counter obs_evaluated_;  ///< chan.evaluated
  obs::Counter obs_culled_;     ///< chan.culled

  // --- spatial sharding (configure_shards) ---
  std::optional<ShardPlan> plan_;
  bool epoch_task_registered_ = false;
  ShardMap shards_;
  /// Resolved strip count; 0 until the first radius-bounded transmit.
  std::uint32_t strips_ = 0;
  bool strips_resolved_ = false;
  /// Per-strip snapshot freshness and grids, parallel to strips.
  std::vector<SimTime> shard_snapshot_time_;
  std::vector<std::uint8_t> shard_snapshot_valid_;
  std::vector<std::uint8_t> shard_grid_built_;
  std::vector<SpatialGrid> shard_grids_;

  std::uint64_t diag_cross_msgs_ = 0;
  std::uint64_t diag_refreshed_ = 0;
  obs::Counter obs_shard_msgs_;     ///< shard.msgs
  obs::Counter obs_shard_epochs_;   ///< shard.lbts_epochs
  obs::Counter obs_shard_refresh_;  ///< shard.refresh.nodes
};

}  // namespace cavenet::phy

#endif  // CAVENET_PHY_CHANNEL_H
