// The shared wireless medium: fans every transmission out to all attached
// radios with per-link propagation loss and speed-of-light delay.
#ifndef CAVENET_PHY_CHANNEL_H
#define CAVENET_PHY_CHANNEL_H

#include <memory>
#include <vector>

#include "netsim/simulator.h"
#include "phy/propagation.h"
#include "phy/wifi_phy.h"

namespace cavenet::phy {

class Channel {
 public:
  Channel(netsim::Simulator& sim, std::unique_ptr<PropagationModel> model);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Registers a radio on this medium. The radio must outlive the channel's
  /// last event (in practice: the Scenario owns both).
  void attach(WifiPhy* phy);

  std::size_t radio_count() const noexcept { return radios_.size(); }

  /// Called by a transmitting radio; delivers the frame to every other
  /// attached radio (each gets an independent copy).
  void transmit(const WifiPhy& sender, const netsim::Packet& packet,
                SimTime duration, double tx_power_w);

  PropagationModel& propagation() noexcept { return *model_; }

 private:
  netsim::Simulator* sim_;
  std::unique_ptr<PropagationModel> model_;
  std::vector<WifiPhy*> radios_;
};

}  // namespace cavenet::phy

#endif  // CAVENET_PHY_CHANNEL_H
