// The shared wireless medium: delivers each transmission to the attached
// radios that can interact with it, with per-link propagation loss and
// speed-of-light delay.
//
// Scaling design (docs/SCALING.md): when the propagation model can bound
// its interaction range (PropagationModel::max_range_m), the channel
// keeps a per-timestamp snapshot of every radio's position and a uniform
// grid over that snapshot, and a transmission only evaluates receive
// power for radios within the max-interaction radius. Receivers beyond
// it are provably below every radio's carrier-sense threshold, so the
// grid path is bitwise-identical to a full scan — only cheaper. Models
// that cannot bound range (shadowing, fading) fall back to evaluating
// every attached radio, exactly as before.
#ifndef CAVENET_PHY_CHANNEL_H
#define CAVENET_PHY_CHANNEL_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "netsim/simulator.h"
#include "obs/stats_registry.h"
#include "phy/propagation.h"
#include "phy/spatial_grid.h"
#include "phy/wifi_phy.h"

namespace cavenet::phy {

/// How the channel finds candidate receivers for a transmission. kGrid is
/// the default; kLinear is the brute-force reference (same range cull,
/// same results, same counters — it only walks every radio to apply it)
/// kept for equivalence testing and for measuring the index's win.
enum class ChannelIndex { kGrid, kLinear };

class Channel {
 public:
  /// RAII handle for one radio's membership on the medium: detaches on
  /// destruction (node teardown / churn). Obtained from Channel::attach;
  /// must not outlive the channel it came from.
  class [[nodiscard]] Attachment {
   public:
    Attachment() noexcept = default;
    Attachment(Attachment&& other) noexcept;
    Attachment& operator=(Attachment&& other) noexcept;
    Attachment(const Attachment&) = delete;
    Attachment& operator=(const Attachment&) = delete;
    ~Attachment() { detach(); }

    /// Unregisters the radio from the channel (idempotent). The radio
    /// stops receiving immediately; frames already in flight to it are
    /// still delivered (they left the medium while it was attached).
    void detach() noexcept;
    bool attached() const noexcept { return channel_ != nullptr; }

   private:
    friend class Channel;
    Attachment(Channel* channel, std::uint32_t slot) noexcept
        : channel_(channel), slot_(slot) {}

    Channel* channel_ = nullptr;
    std::uint32_t slot_ = 0;
  };

  Channel(netsim::Simulator& sim, std::unique_ptr<PropagationModel> model,
          ChannelIndex index = ChannelIndex::kGrid);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Registers a radio on this medium and hands back its lifecycle
  /// handle. The radio and the handle must not outlive the channel;
  /// dropping the handle detaches the radio.
  Attachment attach(WifiPhy* phy);

  /// Radios currently attached (detached slots excluded).
  std::size_t radio_count() const noexcept { return live_count_; }

  /// Called by a transmitting radio; delivers the frame to every other
  /// attached radio that can interact with it (each gets an independent
  /// copy).
  ///
  /// Cost per call: with a range-bounded model, O(radios) position
  /// evaluations once per distinct simulation timestamp (the snapshot)
  /// plus O(neighbours within the max-interaction radius) receive-power
  /// evaluations and events; the kLinear fallback and unbounded models
  /// pay O(radios) per call (every radio distance- or power-evaluated),
  /// though events stay O(neighbours) either way.
  void transmit(const WifiPhy& sender, const netsim::Packet& packet,
                SimTime duration, double tx_power_w);

  /// Drops the cached per-timestamp position snapshot. Only needed by
  /// callers that mutate a mobility model's position out-of-band at the
  /// current timestamp (test harnesses teleporting nodes mid-event);
  /// positions that are pure functions of simulation time never need it.
  void invalidate_positions() noexcept { snapshot_valid_ = false; }

  PropagationModel& propagation() noexcept { return *model_; }
  ChannelIndex index_mode() const noexcept { return index_; }

  /// Binds the channel's culling counters into a registry:
  /// "chan.tx" transmissions carried, "chan.evaluated" receive-power
  /// evaluations performed, "chan.culled" receivers skipped without one
  /// (beyond the max-interaction radius). evaluated + culled counts every
  /// (transmission, other radio) pair, and both are identical for kGrid
  /// and kLinear — the index changes how candidates are found, never
  /// which ones are evaluated.
  void bind_stats(obs::StatsRegistry& registry);

 private:
  void detach_slot(std::uint32_t slot) noexcept;
  /// Max-interaction radius for this transmit power against the most
  /// sensitive attached radio; nullopt when the model can't bound range.
  std::optional<double> interaction_radius(double tx_power_w);
  /// Ensures positions_ holds every live radio's position at sim->now(),
  /// and (when `radius` is set and the grid is active) that the grid is
  /// built over that snapshot.
  void refresh_snapshot(const std::optional<double>& radius);

  netsim::Simulator* sim_;
  std::unique_ptr<PropagationModel> model_;
  ChannelIndex index_;

  // Slot-addressed radio table: slots keep their index for the lifetime
  // of the channel (Attachment handles store it), detach tombstones the
  // slot. Iteration order == attach order, which fixes the event
  // schedule order and therefore byte-level determinism.
  std::vector<WifiPhy*> slots_;
  std::vector<std::uint8_t> live_;
  std::vector<Vec2> positions_;  ///< snapshot, parallel to slots_
  std::size_t live_count_ = 0;

  SimTime snapshot_time_ = SimTime::zero();
  bool snapshot_valid_ = false;
  bool grid_built_ = false;
  SpatialGrid grid_;
  std::vector<std::uint32_t> scratch_;  ///< query results, reused

  /// Smallest carrier-sense threshold over attached radios — the radius
  /// bound must cover the most sensitive receiver.
  double min_cs_threshold_w_ = 0.0;
  bool min_cs_valid_ = false;
  /// Single-entry cache: tx power -> solved radius (tx power is uniform
  /// in practice, so the solve runs once per attach/detach epoch).
  std::optional<std::pair<double, std::optional<double>>> radius_cache_;

  obs::Counter obs_tx_;         ///< chan.tx
  obs::Counter obs_evaluated_;  ///< chan.evaluated
  obs::Counter obs_culled_;     ///< chan.culled
};

}  // namespace cavenet::phy

#endif  // CAVENET_PHY_CHANNEL_H
