#include "phy/wifi_phy.h"

#include <cmath>
#include <stdexcept>

#include "phy/channel.h"
#include "util/logging.h"

namespace cavenet::phy {

WifiPhy::WifiPhy(netsim::Simulator& sim, netsim::NodeId id,
                 const netsim::MobilityModel* mobility, PhyParams params)
    : sim_(&sim), id_(id), mobility_(mobility), params_(params) {
  if (mobility == nullptr) {
    throw std::invalid_argument("phy needs a mobility model");
  }
  if (params_.data_rate_bps <= 0.0) {
    throw std::invalid_argument("data rate must be > 0");
  }
}

void WifiPhy::bind_stats(obs::StatsRegistry& registry) {
  obs_tx_frames_ = registry.counter("phy.tx.frames");
  obs_rx_frames_ = registry.counter("phy.rx.frames");
  obs_collisions_ = registry.counter("phy.drop.collision");
  obs_captures_ = registry.counter("phy.capture");
  obs_below_thresh_ = registry.counter("phy.drop.below_threshold");
  obs_missed_busy_ = registry.counter("phy.drop.busy");
}

SimTime WifiPhy::frame_duration(std::size_t bytes) const noexcept {
  const double payload_s =
      static_cast<double>(bytes) * 8.0 / params_.data_rate_bps;
  return params_.plcp_overhead + SimTime::from_seconds(payload_s);
}

bool WifiPhy::transmitting() const noexcept { return sim_->now() < tx_until_; }

double WifiPhy::energy_sum() const noexcept {
  double sum = 0.0;
  for (const auto& s : signals_) {
    if (s.end > sim_->now()) sum += s.power_w;
  }
  return sum;
}

bool WifiPhy::cca_busy() const noexcept {
  return transmitting() || receiving() ||
         energy_sum() >= params_.profile.cs_threshold_w;
}

void WifiPhy::update_cca() {
  prune_energy();
  const bool busy = cca_busy();
  if (busy != last_cca_busy_) {
    last_cca_busy_ = busy;
    if (cca_cb_) cca_cb_(busy);
  }
}

void WifiPhy::prune_energy() {
  std::erase_if(signals_, [&](const Signal& s) { return s.end <= sim_->now(); });
}

void WifiPhy::transmit(netsim::Packet packet) {
  if (channel_ == nullptr) {
    throw std::logic_error("phy not attached to a channel");
  }
  if (transmitting()) {
    throw std::logic_error("MAC started a transmission while already transmitting");
  }
  if (current_rx_) {
    // Half-duplex: transmitting stomps the frame being received (this is
    // how an ACK sent during an overlapping arrival corrupts it).
    current_rx_->corrupted = true;
  }
  const SimTime duration = frame_duration(packet.size_bytes());
  tx_until_ = sim_->now() + duration;
  ++stats_.frames_sent;
  obs_tx_frames_.inc();
  stats_.tx_airtime += duration;
  channel_->transmit(*this, packet, duration, params_.profile.tx_power_w);
  sim_->schedule(duration, "phy", [this] { update_cca(); });
  update_cca();
}

void WifiPhy::begin_receive(netsim::Packet packet, double rx_power_w,
                            SimTime duration) {
  if (rx_power_w < params_.profile.cs_threshold_w) {
    return;  // below carrier sense: invisible to this radio
  }
  const SimTime end = sim_->now() + duration;
  signals_.push_back({rx_power_w, end});
  sim_->schedule(duration, "phy", [this] { update_cca(); });

  const bool decodable = rx_power_w >= params_.profile.rx_threshold_w;
  if (transmitting()) {
    if (decodable) {
      ++stats_.missed_while_busy;
      obs_missed_busy_.inc();
    }
  } else if (current_rx_) {
    // Overlap with the frame being received: capture or collision.
    if (current_rx_->power_w >=
        params_.profile.capture_ratio * rx_power_w) {
      ++stats_.captures;  // current frame survives, newcomer is noise
      obs_captures_.inc();
    } else {
      // Within the capture window (or newcomer stronger): the locked frame
      // is corrupted; the radio stays locked until its end (ns-2 semantics:
      // the newcomer is not received either).
      current_rx_->corrupted = true;
      ++stats_.collisions;
      obs_collisions_.inc();
    }
  } else if (decodable) {
    current_rx_ = Reception{std::move(packet), rx_power_w, end, false};
    sim_->schedule(duration, "phy", [this] { end_receive(); });
  } else {
    ++stats_.below_rx_threshold;
    obs_below_thresh_.inc();
  }
  update_cca();
}

void WifiPhy::end_receive() {
  if (!current_rx_ || current_rx_->end != sim_->now()) {
    return;  // stale event (reception was aborted by a transmit)
  }
  Reception rx = std::move(*current_rx_);
  current_rx_.reset();
  update_cca();
  if (rx.corrupted) {
    if (rx_error_cb_) rx_error_cb_();
    return;
  }
  ++stats_.frames_received;
  obs_rx_frames_.inc();
  if (receive_cb_) receive_cb_(std::move(rx.packet), rx.power_w);
}

}  // namespace cavenet::phy
