// Uniform-grid spatial index over radio positions.
//
// The channel rebuilds the grid from a per-timestamp position snapshot
// and range-queries it per transmission, turning the "which radios can
// this frame possibly reach" question from an O(radios) scan into a
// lookup over the handful of cells that intersect the propagation
// model's max-interaction radius.
//
// Queries are deliberately conservative at cell granularity: they return
// every bucketed point in any cell overlapping the query circle's
// bounding box (a superset of the points within `radius`), and the caller
// applies the exact distance test. That split keeps the index free of
// floating-point boundary decisions — correctness never depends on cell
// math, only on the caller's own distance comparison.
#ifndef CAVENET_PHY_SPATIAL_GRID_H
#define CAVENET_PHY_SPATIAL_GRID_H

#include <cstdint>
#include <span>
#include <vector>

#include "util/vec2.h"

namespace cavenet::phy {

class SpatialGrid {
 public:
  /// Rebuckets point i at positions[i] for every i with present[i] != 0.
  /// `cell_size` (> 0) is normally the max-interaction radius, making a
  /// radius query touch at most 3x3 cells.
  void rebuild(std::span<const Vec2> positions,
               std::span<const std::uint8_t> present, double cell_size);

  /// Rebuckets exactly the points named in `members` (indices into
  /// `positions`). The shard-partitioned channel keeps one grid per
  /// shard over that shard's member list, so a rebuild costs O(members)
  /// instead of O(all radios).
  void rebuild_members(std::span<const Vec2> positions,
                       std::span<const std::uint32_t> members,
                       double cell_size);

  /// Appends to `out` the indices of all bucketed points whose cell
  /// overlaps the axis-aligned bounding box of circle(center, radius) —
  /// a superset of the points within `radius` of `center`, in ascending
  /// index order (callers iterate receivers in attach order so results
  /// stay bitwise-identical to a linear scan).
  void query(Vec2 center, double radius, std::vector<std::uint32_t>& out) const;

  double cell_size() const noexcept { return cell_size_; }
  std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::int64_t cell_coord(double v) const noexcept;

  /// (packed cell key, point index), sorted — cells are contiguous runs
  /// found by binary search, so rebuilds are a sort instead of a hash-map
  /// churn and queries are allocation-free.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> entries_;
  double cell_size_ = 0.0;
};

}  // namespace cavenet::phy

#endif  // CAVENET_PHY_SPATIAL_GRID_H
