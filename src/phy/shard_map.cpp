#include "phy/shard_map.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace cavenet::phy {

void ShardMap::configure(std::uint32_t strips, double x_min, double x_max,
                         double epoch_s, double max_speed_mps) {
  if (strips == 0) {
    throw std::invalid_argument("shard map needs at least one strip");
  }
  if (!(x_max > x_min) && strips > 1) {
    throw std::invalid_argument("shard map extent must be positive");
  }
  if (!(epoch_s > 0.0)) {
    throw std::invalid_argument("shard epoch must be > 0");
  }
  if (max_speed_mps < 0.0) {
    throw std::invalid_argument("max speed must be >= 0");
  }
  strips_ = strips;
  x_min_ = x_min;
  strip_width_ = strips > 1 ? (x_max - x_min) / strips : 0.0;
  epoch_s_ = epoch_s;
  max_speed_mps_ = max_speed_mps;
  members_.assign(strips, {});
  strip_of_slot_.clear();
  anchors_.clear();
  valid_ = false;
  epochs_ = 0;
}

std::uint32_t ShardMap::strip_of_x(double x) const noexcept {
  if (strips_ <= 1 || !(strip_width_ > 0.0)) return 0;
  const double f = std::floor((x - x_min_) / strip_width_);
  if (f <= 0.0) return 0;
  if (f >= static_cast<double>(strips_ - 1)) return strips_ - 1;
  return static_cast<std::uint32_t>(f);
}

void ShardMap::rebucket(SimTime now, std::span<const Vec2> positions,
                        std::span<const std::uint8_t> live) {
  // Tolerance: the bound itself is exact for any trajectory respecting
  // the certified speed, the epsilon only absorbs the float rounding in
  // piecewise-linear position interpolation.
  const double bound =
      valid_ ? max_speed_mps_ * (now - last_rebucket_).sec() + 1e-6 : 0.0;
  const bool verify = valid_ && anchors_.size() == positions.size();
  for (auto& m : members_) m.clear();
  strip_of_slot_.assign(positions.size(), kNoStrip);
  for (std::uint32_t slot = 0; slot < positions.size(); ++slot) {
    if (!live[slot]) continue;
    if (verify && distance(positions[slot], anchors_[slot]) > bound) {
      throw std::logic_error(
          "shard map speed bound violated at slot " + std::to_string(slot) +
          ": displacement " +
          std::to_string(distance(positions[slot], anchors_[slot])) +
          " m > bound " + std::to_string(bound) +
          " m — mobility moved faster than the certified max speed "
          "(teleport?); the scenario layer must fall back to one shard");
    }
    const std::uint32_t strip = strip_of_x(positions[slot].x);
    strip_of_slot_[slot] = strip;
    members_[strip].push_back(slot);
  }
  anchors_.assign(positions.begin(), positions.end());
  last_rebucket_ = now;
  valid_ = true;
  ++epochs_;
}

}  // namespace cavenet::phy
