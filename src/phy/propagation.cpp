#include "phy/propagation.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "util/units.h"

namespace cavenet::phy {

double RadioConstants::wavelength_m() const noexcept {
  return kSpeedOfLight / frequency_hz;
}

namespace {

double friis(double tx_power_w, double d, const RadioConstants& c) {
  const double lambda = c.wavelength_m();
  const double denom = 4.0 * std::numbers::pi * d;
  return tx_power_w * c.antenna_gain_tx * c.antenna_gain_rx * lambda * lambda /
         (denom * denom * c.system_loss);
}

/// Distance at which friis() drops to exactly `min_power_w` (both models'
/// max-range solves reduce to inverting a monotone power law).
double friis_range(double tx_power_w, double min_power_w,
                   const RadioConstants& c) {
  const double lambda = c.wavelength_m();
  return lambda / (4.0 * std::numbers::pi) *
         std::sqrt(tx_power_w * c.antenna_gain_tx * c.antenna_gain_rx /
                   (c.system_loss * min_power_w));
}

/// Safety padding on analytically solved ranges: the cull-by-distance
/// decision must never disagree with the exact power comparison at the
/// boundary, so the bound is inflated well past any floating-point wobble
/// of the closed-form inverse (power at 1.001 d is ~0.4% below threshold
/// under the d^4 law — orders of magnitude beyond rounding error).
constexpr double kRangePad = 1.001;

}  // namespace

FreeSpaceModel::FreeSpaceModel(RadioConstants constants)
    : constants_(constants) {}

double FreeSpaceModel::rx_power_w(double tx_power_w, Vec2 tx, Vec2 rx) {
  const double d = distance(tx, rx);
  if (d <= 0.0) return tx_power_w;
  return friis(tx_power_w, d, constants_);
}

std::optional<double> FreeSpaceModel::max_range_m(double tx_power_w,
                                                  double min_power_w) const {
  if (min_power_w <= 0.0 || tx_power_w <= 0.0) return std::nullopt;
  return friis_range(tx_power_w, min_power_w, constants_) * kRangePad;
}

TwoRayGroundModel::TwoRayGroundModel(RadioConstants constants)
    : constants_(constants),
      crossover_m_(4.0 * std::numbers::pi * constants.antenna_height_m *
                   constants.antenna_height_m / constants.wavelength_m()) {}

double TwoRayGroundModel::rx_power_w(double tx_power_w, Vec2 tx, Vec2 rx) {
  const double d = distance(tx, rx);
  if (d <= 0.0) return tx_power_w;
  if (d < crossover_m_) return friis(tx_power_w, d, constants_);
  const double h = constants_.antenna_height_m;
  return tx_power_w * constants_.antenna_gain_tx * constants_.antenna_gain_rx *
         h * h * h * h / (d * d * d * d * constants_.system_loss);
}

std::optional<double> TwoRayGroundModel::max_range_m(
    double tx_power_w, double min_power_w) const {
  if (min_power_w <= 0.0 || tx_power_w <= 0.0) return std::nullopt;
  // Received power is continuous and monotonically decreasing across the
  // crossover (the two formulas agree exactly at dc), so invert whichever
  // law covers the solution.
  const double h = constants_.antenna_height_m;
  const double d4 = tx_power_w * constants_.antenna_gain_tx *
                    constants_.antenna_gain_rx * h * h * h * h /
                    (constants_.system_loss * min_power_w);
  const double two_ray_range = std::sqrt(std::sqrt(d4));
  if (two_ray_range >= crossover_m_) return two_ray_range * kRangePad;
  return friis_range(tx_power_w, min_power_w, constants_) * kRangePad;
}

ShadowingModel::ShadowingModel(double path_loss_exponent, double sigma_db,
                               Rng rng, double reference_distance_m,
                               RadioConstants constants)
    : constants_(constants),
      beta_(path_loss_exponent),
      sigma_db_(sigma_db),
      d0_m_(reference_distance_m),
      pr0_factor_(friis(1.0, reference_distance_m, constants)),
      rng_(std::move(rng)) {
  if (path_loss_exponent <= 0.0) {
    throw std::invalid_argument("path loss exponent must be > 0");
  }
  if (sigma_db < 0.0) throw std::invalid_argument("sigma must be >= 0");
  if (reference_distance_m <= 0.0) {
    throw std::invalid_argument("reference distance must be > 0");
  }
}

RayleighFadingModel::RayleighFadingModel(
    std::unique_ptr<PropagationModel> base, Rng rng)
    : base_(std::move(base)), rng_(std::move(rng)) {
  if (!base_) throw std::invalid_argument("fading needs a base model");
}

double RayleighFadingModel::rx_power_w(double tx_power_w, Vec2 tx, Vec2 rx) {
  // |h|^2 with h circularly-symmetric complex Gaussian: Exp(1), unit mean.
  const double fade = rng_.exponential(1.0);
  return base_->rx_power_w(tx_power_w, tx, rx) * fade;
}

double ShadowingModel::rx_power_w(double tx_power_w, Vec2 tx, Vec2 rx) {
  const double d = std::max(distance(tx, rx), d0_m_);
  const double mean_db = ratio_to_db(pr0_factor_ * tx_power_w) -
                         10.0 * beta_ * std::log10(d / d0_m_);
  const double shadow_db = sigma_db_ > 0.0 ? rng_.normal(0.0, sigma_db_) : 0.0;
  return db_to_ratio(mean_db + shadow_db);
}

}  // namespace cavenet::phy
