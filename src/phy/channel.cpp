#include "phy/channel.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <span>
#include <stdexcept>
#include <utility>

#include "util/units.h"

namespace cavenet::phy {

namespace {
/// Indices per chunk for the parallel position-refresh passes: a
/// position lookup is a binary search plus interpolation, so chunks
/// this size amortize the claim without starving lanes.
constexpr std::size_t kRefreshGrain = 256;
/// Indices per chunk for the receive-power evaluation pass (each index
/// is a distance + propagation-model evaluation, heavier than a
/// position lookup).
constexpr std::size_t kEvalGrain = 64;
/// Candidate counts below this are cheaper to evaluate serially than to
/// fan out as a fork-join batch.
constexpr std::size_t kParallelEvalMin = 128;
}  // namespace

Channel::Attachment::Attachment(Attachment&& other) noexcept
    : channel_(std::exchange(other.channel_, nullptr)), slot_(other.slot_) {}

Channel::Attachment& Channel::Attachment::operator=(
    Attachment&& other) noexcept {
  if (this != &other) {
    detach();
    channel_ = std::exchange(other.channel_, nullptr);
    slot_ = other.slot_;
  }
  return *this;
}

void Channel::Attachment::detach() noexcept {
  if (channel_ == nullptr) return;
  channel_->detach_slot(slot_);
  channel_ = nullptr;
}

Channel::Channel(netsim::Simulator& sim,
                 std::unique_ptr<PropagationModel> model, ChannelIndex index)
    : sim_(&sim), model_(std::move(model)), index_(index) {
  if (!model_) throw std::invalid_argument("channel needs a propagation model");
}

Channel::Attachment Channel::attach(WifiPhy* phy) {
  if (phy == nullptr) throw std::invalid_argument("null radio");
  if (phy->channel_ != nullptr) {
    throw std::logic_error("radio is already attached to a channel");
  }
  const auto slot = static_cast<std::uint32_t>(slots_.size());
  slots_.push_back(phy);
  live_.push_back(1);
  positions_.push_back({});
  const netsim::MobilityModel* mobility = phy->mobility();
  const netsim::BatchMobilityProvider* provider =
      mobility != nullptr ? mobility->batch_provider() : nullptr;
  batch_provider_.push_back(provider);
  batch_member_.push_back(mobility != nullptr ? mobility->batch_member() : 0);
  if (provider != nullptr) ++batch_count_;
  ++live_count_;
  phy->set_channel(this, slot);
  if (min_cs_valid_) {
    min_cs_threshold_w_ =
        std::min(min_cs_threshold_w_, phy->params().profile.cs_threshold_w);
  } else {
    min_cs_threshold_w_ = phy->params().profile.cs_threshold_w;
    min_cs_valid_ = true;
  }
  radius_cache_.reset();
  snapshot_valid_ = false;
  // Membership churn: strip assignment must be rebuilt before use.
  shards_.invalidate();
  return Attachment(this, slot);
}

void Channel::detach_slot(std::uint32_t slot) noexcept {
  if (slot >= slots_.size() || !live_[slot]) return;
  slots_[slot]->set_channel(nullptr, 0);
  slots_[slot] = nullptr;
  live_[slot] = 0;
  if (batch_provider_[slot] != nullptr) {
    batch_provider_[slot] = nullptr;
    --batch_count_;
  }
  --live_count_;
  // The detached radio may have been the most sensitive one; rescan.
  min_cs_valid_ = false;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!live_[i]) continue;
    const double thr = slots_[i]->params().profile.cs_threshold_w;
    min_cs_threshold_w_ = min_cs_valid_ ? std::min(min_cs_threshold_w_, thr)
                                        : thr;
    min_cs_valid_ = true;
  }
  radius_cache_.reset();
  snapshot_valid_ = false;
  shards_.invalidate();
}

void Channel::bind_stats(obs::StatsRegistry& registry) {
  obs_tx_ = registry.counter("chan.tx");
  obs_evaluated_ = registry.counter("chan.evaluated");
  obs_culled_ = registry.counter("chan.culled");
}

void Channel::bind_shard_stats(obs::StatsRegistry& registry) {
  obs_shard_msgs_ = registry.counter("shard.msgs");
  obs_shard_epochs_ = registry.counter("shard.lbts_epochs");
  obs_shard_refresh_ = registry.counter("shard.refresh.nodes");
  // Re-publish activity from before the registry was attached.
  obs_shard_msgs_.inc(diag_cross_msgs_);
  obs_shard_epochs_.inc(shards_.epochs());
  obs_shard_refresh_.inc(diag_refreshed_);
}

void Channel::configure_shards(const ShardPlan& plan) {
  if (plan.shards == 0) {
    throw std::invalid_argument("shard plan needs at least one shard");
  }
  if (!(plan.epoch_s > 0.0)) {
    throw std::invalid_argument("shard epoch must be > 0");
  }
  if (plan.max_speed_mps < 0.0) {
    throw std::invalid_argument("shard max speed must be >= 0");
  }
  if (plan.shards > 1 && !(plan.x_max > plan.x_min)) {
    throw std::invalid_argument("shard plan needs a positive x extent");
  }
  plan_.reset();
  strips_ = 0;
  strips_resolved_ = false;
  shards_.invalidate();
  // The kLinear reference deliberately never shards: it exists to be the
  // brute-force baseline the sharded/grid paths are compared against.
  if (plan.shards <= 1 || index_ != ChannelIndex::kGrid) return;
  plan_ = plan;
  if (!epoch_task_registered_) {
    sim_->register_epoch_task([this](SimTime at) { epoch_prefetch(at); });
    epoch_task_registered_ = true;
  }
}

void Channel::epoch_prefetch(SimTime at) {
  // Dormant until the first radius-bounded transmit resolves the strip
  // count; a world too narrow to shard leaves this a no-op forever.
  if (!plan_ || !strips_resolved_ || strips_ <= 1) return;
  if (shards_.needs_rebucket(at)) rebucket_shards(at);
}

std::uint32_t Channel::resolve_strips(double radius) {
  if (strips_resolved_) return strips_;
  strips_resolved_ = true;
  strips_ = 1;
  const double extent = plan_->x_max - plan_->x_min;
  if (!(extent > 0.0) || !(radius > 0.0)) return strips_;
  // A strip narrower than the interaction radius buys nothing — every
  // query would touch several strips. Scenarios whose extent holds fewer
  // than two radius-wide strips are too small to shard and fall back to
  // one (docs/SCALING.md "Sharding").
  const double cap = std::floor(extent / radius);
  const double want = std::min(static_cast<double>(plan_->shards), cap);
  if (want <= 1.0) return strips_;
  strips_ = static_cast<std::uint32_t>(want);
  shards_.configure(strips_, plan_->x_min, plan_->x_max, plan_->epoch_s,
                    plan_->max_speed_mps);
  shard_snapshot_time_.assign(strips_, SimTime::zero());
  shard_snapshot_valid_.assign(strips_, 0);
  shard_grid_built_.assign(strips_, 0);
  shard_grids_.assign(strips_, SpatialGrid{});
  return strips_;
}

void Channel::rebucket_shards(SimTime now) {
  // One full O(radios) position pass per epoch; between epochs the
  // per-transmit cost is the touched strips only.
  eval_all_positions(now);
  shards_.rebucket(now, positions_, live_);
  for (std::uint32_t s = 0; s < strips_; ++s) {
    shard_snapshot_time_[s] = now;
    shard_snapshot_valid_[s] = 1;
    shard_grid_built_[s] = 0;
  }
  // The global snapshot is fresh too (every live position was just
  // evaluated at `now`), so an interleaved unsharded transmit can reuse
  // it.
  snapshot_time_ = now;
  snapshot_valid_ = true;
  grid_built_ = false;
  obs_shard_epochs_.inc();
  obs_shard_refresh_.inc(live_count_);
  diag_refreshed_ += live_count_;
}

void Channel::refresh_strip(std::uint32_t s, SimTime now, double radius) {
  const std::vector<std::uint32_t>& members = shards_.members(s);
  if (!shard_snapshot_valid_[s] || shard_snapshot_time_[s] != now) {
    eval_member_positions(now, members);
    shard_snapshot_time_[s] = now;
    shard_snapshot_valid_[s] = 1;
    shard_grid_built_[s] = 0;
    obs_shard_refresh_.inc(members.size());
    diag_refreshed_ += members.size();
  }
  if (!shard_grid_built_[s]) {
    shard_grids_[s].rebuild_members(positions_, members, radius);
    shard_grid_built_[s] = 1;
  }
}

std::optional<double> Channel::interaction_radius(double tx_power_w) {
  if (!min_cs_valid_) return std::nullopt;
  if (radius_cache_ && radius_cache_->first == tx_power_w) {
    return radius_cache_->second;
  }
  std::optional<double> radius =
      model_->max_range_m(tx_power_w, min_cs_threshold_w_);
  radius_cache_ = {tx_power_w, radius};
  return radius;
}

void Channel::eval_all_positions(SimTime now) {
  if (batch_count_ == 0) {
    // Pure per-radio dispatch, fanned across the kernel's executor lanes
    // (disjoint writes, time-pure reads).
    sim_->executor().parallel_for(slots_.size(), kRefreshGrain,
                                  [&](std::size_t i) {
                                    if (live_[i]) {
                                      positions_[i] =
                                          slots_[i]->position_at(now);
                                    }
                                  });
    return;
  }
  // Batched dispatch: runs of consecutive live slots sharing a provider
  // (attach order == node order in the scenario runners, so this is one
  // run per provider in practice) are served with one positions_at call
  // straight into the snapshot, kRefreshGrain members at a time. The
  // values are the ones per-radio dispatch would have produced — only
  // the call count changes.
  const std::size_t n = slots_.size();
  std::array<std::uint32_t, kRefreshGrain> members;
  std::size_t i = 0;
  while (i < n) {
    if (!live_[i]) {
      ++i;
      continue;
    }
    const netsim::BatchMobilityProvider* provider = batch_provider_[i];
    if (provider == nullptr) {
      positions_[i] = slots_[i]->position_at(now);
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < n && j - i < kRefreshGrain && live_[j] &&
           batch_provider_[j] == provider) {
      ++j;
    }
    for (std::size_t k = i; k < j; ++k) members[k - i] = batch_member_[k];
    provider->positions_at(
        now, std::span<const std::uint32_t>(members.data(), j - i),
        std::span<Vec2>(positions_.data() + i, j - i));
    i = j;
  }
}

void Channel::eval_member_positions(
    SimTime now, std::span<const std::uint32_t> member_slots) {
  if (batch_count_ == 0) {
    sim_->executor().parallel_for(
        member_slots.size(), kRefreshGrain, [&](std::size_t i) {
          const std::uint32_t slot = member_slots[i];
          positions_[slot] = slots_[slot]->position_at(now);
        });
    return;
  }
  // Strip members are scattered slots, so gather member ids and scatter
  // results through stack buffers, one provider-run at a time.
  const std::size_t n = member_slots.size();
  std::array<std::uint32_t, kRefreshGrain> members;
  std::array<Vec2, kRefreshGrain> out;
  std::size_t i = 0;
  while (i < n) {
    const std::uint32_t slot = member_slots[i];
    const netsim::BatchMobilityProvider* provider = batch_provider_[slot];
    if (provider == nullptr) {
      positions_[slot] = slots_[slot]->position_at(now);
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < n && j - i < kRefreshGrain &&
           batch_provider_[member_slots[j]] == provider) {
      ++j;
    }
    for (std::size_t k = i; k < j; ++k) {
      members[k - i] = batch_member_[member_slots[k]];
    }
    provider->positions_at(
        now, std::span<const std::uint32_t>(members.data(), j - i),
        std::span<Vec2>(out.data(), j - i));
    for (std::size_t k = i; k < j; ++k) positions_[member_slots[k]] = out[k - i];
    i = j;
  }
}

void Channel::refresh_snapshot(const std::optional<double>& radius) {
  const SimTime now = sim_->now();
  if (!snapshot_valid_ || snapshot_time_ != now) {
    eval_all_positions(now);
    snapshot_time_ = now;
    snapshot_valid_ = true;
    grid_built_ = false;
  }
  if (radius && index_ == ChannelIndex::kGrid && !grid_built_) {
    grid_.rebuild(positions_, live_, *radius);
    grid_built_ = true;
  }
}

void Channel::transmit(const WifiPhy& sender, const netsim::Packet& packet,
                       SimTime duration, double tx_power_w) {
  obs_tx_.inc();
  const std::optional<double> radius = interaction_radius(tx_power_w);
  const std::uint32_t sender_slot = sender.channel_slot_;
  const SimTime now = sim_->now();

  // Sharded fast path: only the strips the interaction radius (plus the
  // drift margin) can reach get their positions refreshed, instead of
  // the whole snapshot. Resolved lazily because the strip width depends
  // on the radius.
  const bool sharded = plan_.has_value() && radius.has_value() &&
                       resolve_strips(*radius) > 1;

  Vec2 tx_pos{};
  std::uint32_t tx_strip = 0;
  if (sharded) {
    if (shards_.needs_rebucket(now)) rebucket_shards(now);
    // The sender's position is a pure function of `now`; evaluating it
    // directly is bit-identical to reading the snapshot the unsharded
    // path would have refreshed.
    tx_pos = sender.position();
    tx_strip = shards_.strip_of_slot(sender_slot);
  } else {
    refresh_snapshot(radius);
    tx_pos = positions_[sender_slot];
  }
  std::uint64_t evaluated = 0;

  // Shared per-candidate step: exact distance cull (only when the model
  // bounds range), then the receive-power evaluation and the receiver's
  // own carrier-sense cull, exactly as the full scan always did. The
  // index (linear / grid / sharded strips) only changes how candidates
  // are found — a conservative superset either way — never which ones
  // survive this exact test, so counters and deliveries are identical
  // across all three. When `pre` is set the distance and power come from
  // the parallel phase-1 pass (same arithmetic, same inputs — identical
  // doubles); the commit below still runs serially in attach order.
  const auto consider = [&](std::uint32_t slot, const CandidateEval* pre) {
    const Vec2 rx_pos = positions_[slot];
    const double d = pre != nullptr ? pre->distance : distance(tx_pos, rx_pos);
    if (radius && d > *radius) return;
    ++evaluated;
    WifiPhy* rx = slots_[slot];
    const double power = pre != nullptr
                             ? pre->power
                             : model_->rx_power_w(tx_power_w, tx_pos, rx_pos);
    if (power < rx->params().profile.cs_threshold_w) return;
    const double delay_s = d / kSpeedOfLight;
    // The per-receiver copy shares the header stack (COW), so this is a
    // refcount bump, and the whole delivery closure fits the scheduler's
    // inline action buffer: the hottest path in the kernel allocates
    // nothing per receiver.
    netsim::Packet copy = packet;
    auto deliver = [rx, copy = std::move(copy), power, duration]() mutable {
      rx->begin_receive(std::move(copy), power, duration);
    };
    static_assert(sizeof(deliver) <= netsim::detail::InlineAction::kCapacity,
                  "broadcast delivery must stay allocation-free");
    if (sharded) {
      // Deliveries land on the receiver's shard queue: a receiver in
      // another strip makes this a time-stamped inter-shard message.
      // Routing never changes dispatch order (the shared sequence
      // counter fixes it globally), only which slab pool holds the
      // event.
      const std::uint32_t rx_strip = shards_.strip_of_slot(slot);
      if (rx_strip != tx_strip) {
        obs_shard_msgs_.inc();
        ++diag_cross_msgs_;
      }
      const std::uint32_t rx_shard =
          rx_strip < sim_->shard_count() ? rx_strip : 0;
      sim_->schedule_on(rx_shard, SimTime::from_seconds(delay_s), "chan",
                        std::move(deliver));
    } else {
      sim_->schedule(SimTime::from_seconds(delay_s), "chan",
                     std::move(deliver));
    }
  };

  // Candidate collection: a conservative superset of the in-range
  // receivers, in ascending slot (attach) order.
  bool candidates_in_scratch = false;
  if (sharded) {
    const double reach = *radius + shards_.margin_at(now);
    const std::uint32_t s0 = shards_.strip_of_x(tx_pos.x - reach);
    const std::uint32_t s1 = shards_.strip_of_x(tx_pos.x + reach);
    scratch_.clear();
    for (std::uint32_t s = s0; s <= s1; ++s) {
      refresh_strip(s, now, *radius);
      shard_grids_[s].query(tx_pos, *radius, scratch_);
    }
    // Each strip's query results are ascending; restore the global
    // attach order across strips so delivery scheduling matches the
    // unsharded kernel byte for byte.
    if (s0 != s1) std::sort(scratch_.begin(), scratch_.end());
    candidates_in_scratch = true;
  } else if (radius && index_ == ChannelIndex::kGrid) {
    scratch_.clear();
    grid_.query(tx_pos, *radius, scratch_);
    candidates_in_scratch = true;
  }

  // Two-phase parallel receive-power evaluation (docs/SCALING.md
  // "Threading"): phase 1 computes every candidate's (distance, power)
  // concurrently — pure arithmetic, disjoint writes — and the serial
  // commit below reads the results in attach order. Only pure models
  // qualify (a stochastic model's RNG draws must stay serial, in
  // candidate order).
  const bool parallel_eval =
      radius.has_value() && sim_->threads() > 1 && model_->pure() &&
      (candidates_in_scratch ? scratch_.size() : live_count_) >=
          kParallelEvalMin;
  if (parallel_eval && !candidates_in_scratch) {
    // Linear scan: materialize the live slots so both phases walk the
    // exact candidate order the serial loop uses.
    scratch_.clear();
    for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
      if (live_[slot]) scratch_.push_back(slot);
    }
    candidates_in_scratch = true;
  }
  if (parallel_eval) {
    eval_scratch_.resize(scratch_.size());
    sim_->executor().parallel_for(
        scratch_.size(), kEvalGrain, [&](std::size_t i) {
          const std::uint32_t slot = scratch_[i];
          CandidateEval& e = eval_scratch_[i];
          if (slot == sender_slot) {
            e.in_range = 0;
            return;
          }
          const Vec2 rx_pos = positions_[slot];
          e.distance = distance(tx_pos, rx_pos);
          e.in_range = e.distance <= *radius ? 1 : 0;
          e.power = e.in_range != 0
                        ? model_->rx_power_w(tx_power_w, tx_pos, rx_pos)
                        : 0.0;
        });
  }

  if (candidates_in_scratch) {
    for (std::size_t i = 0; i < scratch_.size(); ++i) {
      const std::uint32_t slot = scratch_[i];
      if (slot == sender_slot) continue;
      consider(slot, parallel_eval ? &eval_scratch_[i] : nullptr);
    }
  } else {
    for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
      if (live_[slot] && slot != sender_slot) consider(slot, nullptr);
    }
  }

  obs_evaluated_.inc(evaluated);
  obs_culled_.inc(static_cast<std::uint64_t>(live_count_) - 1 - evaluated);
}

}  // namespace cavenet::phy
