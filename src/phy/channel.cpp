#include "phy/channel.h"

#include <stdexcept>
#include <utility>

#include "util/units.h"

namespace cavenet::phy {

Channel::Attachment::Attachment(Attachment&& other) noexcept
    : channel_(std::exchange(other.channel_, nullptr)), slot_(other.slot_) {}

Channel::Attachment& Channel::Attachment::operator=(
    Attachment&& other) noexcept {
  if (this != &other) {
    detach();
    channel_ = std::exchange(other.channel_, nullptr);
    slot_ = other.slot_;
  }
  return *this;
}

void Channel::Attachment::detach() noexcept {
  if (channel_ == nullptr) return;
  channel_->detach_slot(slot_);
  channel_ = nullptr;
}

Channel::Channel(netsim::Simulator& sim,
                 std::unique_ptr<PropagationModel> model, ChannelIndex index)
    : sim_(&sim), model_(std::move(model)), index_(index) {
  if (!model_) throw std::invalid_argument("channel needs a propagation model");
}

Channel::Attachment Channel::attach(WifiPhy* phy) {
  if (phy == nullptr) throw std::invalid_argument("null radio");
  if (phy->channel_ != nullptr) {
    throw std::logic_error("radio is already attached to a channel");
  }
  const auto slot = static_cast<std::uint32_t>(slots_.size());
  slots_.push_back(phy);
  live_.push_back(1);
  positions_.push_back({});
  ++live_count_;
  phy->set_channel(this, slot);
  if (min_cs_valid_) {
    min_cs_threshold_w_ =
        std::min(min_cs_threshold_w_, phy->params().profile.cs_threshold_w);
  } else {
    min_cs_threshold_w_ = phy->params().profile.cs_threshold_w;
    min_cs_valid_ = true;
  }
  radius_cache_.reset();
  snapshot_valid_ = false;
  return Attachment(this, slot);
}

void Channel::detach_slot(std::uint32_t slot) noexcept {
  if (slot >= slots_.size() || !live_[slot]) return;
  slots_[slot]->set_channel(nullptr, 0);
  slots_[slot] = nullptr;
  live_[slot] = 0;
  --live_count_;
  // The detached radio may have been the most sensitive one; rescan.
  min_cs_valid_ = false;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!live_[i]) continue;
    const double thr = slots_[i]->params().profile.cs_threshold_w;
    min_cs_threshold_w_ = min_cs_valid_ ? std::min(min_cs_threshold_w_, thr)
                                        : thr;
    min_cs_valid_ = true;
  }
  radius_cache_.reset();
  snapshot_valid_ = false;
}

void Channel::bind_stats(obs::StatsRegistry& registry) {
  obs_tx_ = registry.counter("chan.tx");
  obs_evaluated_ = registry.counter("chan.evaluated");
  obs_culled_ = registry.counter("chan.culled");
}

std::optional<double> Channel::interaction_radius(double tx_power_w) {
  if (!min_cs_valid_) return std::nullopt;
  if (radius_cache_ && radius_cache_->first == tx_power_w) {
    return radius_cache_->second;
  }
  std::optional<double> radius =
      model_->max_range_m(tx_power_w, min_cs_threshold_w_);
  radius_cache_ = {tx_power_w, radius};
  return radius;
}

void Channel::refresh_snapshot(const std::optional<double>& radius) {
  const SimTime now = sim_->now();
  if (!snapshot_valid_ || snapshot_time_ != now) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (live_[i]) positions_[i] = slots_[i]->position();
    }
    snapshot_time_ = now;
    snapshot_valid_ = true;
    grid_built_ = false;
  }
  if (radius && index_ == ChannelIndex::kGrid && !grid_built_) {
    grid_.rebuild(positions_, live_, *radius);
    grid_built_ = true;
  }
}

void Channel::transmit(const WifiPhy& sender, const netsim::Packet& packet,
                       SimTime duration, double tx_power_w) {
  obs_tx_.inc();
  const std::optional<double> radius = interaction_radius(tx_power_w);
  refresh_snapshot(radius);

  const std::uint32_t sender_slot = sender.channel_slot_;
  const Vec2 tx_pos = positions_[sender_slot];
  std::uint64_t evaluated = 0;

  // Shared per-candidate step: exact distance cull (only when the model
  // bounds range), then the receive-power evaluation and the receiver's
  // own carrier-sense cull, exactly as the full scan always did.
  const auto consider = [&](std::uint32_t slot) {
    const Vec2 rx_pos = positions_[slot];
    const double d = distance(tx_pos, rx_pos);
    if (radius && d > *radius) return;
    ++evaluated;
    WifiPhy* rx = slots_[slot];
    const double power = model_->rx_power_w(tx_power_w, tx_pos, rx_pos);
    if (power < rx->params().profile.cs_threshold_w) return;
    const double delay_s = d / kSpeedOfLight;
    // The per-receiver copy shares the header stack (COW), so this is a
    // refcount bump, and the whole delivery closure fits the scheduler's
    // inline action buffer: the hottest path in the kernel allocates
    // nothing per receiver.
    netsim::Packet copy = packet;
    auto deliver = [rx, copy = std::move(copy), power, duration]() mutable {
      rx->begin_receive(std::move(copy), power, duration);
    };
    static_assert(sizeof(deliver) <= netsim::detail::InlineAction::kCapacity,
                  "broadcast delivery must stay allocation-free");
    sim_->schedule(SimTime::from_seconds(delay_s), "chan",
                   std::move(deliver));
  };

  if (radius && index_ == ChannelIndex::kGrid) {
    scratch_.clear();
    grid_.query(tx_pos, *radius, scratch_);
    for (const std::uint32_t slot : scratch_) {
      if (slot != sender_slot) consider(slot);
    }
  } else {
    for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
      if (live_[slot] && slot != sender_slot) consider(slot);
    }
  }

  obs_evaluated_.inc(evaluated);
  obs_culled_.inc(static_cast<std::uint64_t>(live_count_) - 1 - evaluated);
}

}  // namespace cavenet::phy
