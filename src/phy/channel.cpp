#include "phy/channel.h"

#include <stdexcept>

#include "util/units.h"

namespace cavenet::phy {

Channel::Channel(netsim::Simulator& sim,
                 std::unique_ptr<PropagationModel> model)
    : sim_(&sim), model_(std::move(model)) {
  if (!model_) throw std::invalid_argument("channel needs a propagation model");
}

void Channel::attach(WifiPhy* phy) {
  if (phy == nullptr) throw std::invalid_argument("null radio");
  radios_.push_back(phy);
  phy->set_channel(this);
}

void Channel::transmit(const WifiPhy& sender, const netsim::Packet& packet,
                       SimTime duration, double tx_power_w) {
  const Vec2 tx_pos = sender.position();
  for (WifiPhy* rx : radios_) {
    if (rx == &sender) continue;
    const Vec2 rx_pos = rx->position();
    const double power = model_->rx_power_w(tx_power_w, tx_pos, rx_pos);
    // Skip links that cannot even move the receiver's carrier sense; this
    // keeps the event count O(neighbours) instead of O(radios).
    if (power < rx->params().profile.cs_threshold_w) continue;
    const double delay_s = distance(tx_pos, rx_pos) / kSpeedOfLight;
    netsim::Packet copy = packet;
    sim_->schedule(SimTime::from_seconds(delay_s), "chan",
                   [rx, copy = std::move(copy), power, duration]() mutable {
                     rx->begin_receive(std::move(copy), power, duration);
                   });
  }
}

}  // namespace cavenet::phy
