// Log-bucketed quantile histogram (HDR-histogram style).
//
// The coarse power-of-two HistogramData answers "roughly how big" but its
// quantiles carry up to 2x error — useless for the p95/p99 delay figures
// the robustness studies report. QuantileHistogramData subdivides every
// power-of-two decade into 2^kSubBucketBits linear sub-buckets, bounding
// the relative quantile error by 1/2^kSubBucketBits (3.125%) over the
// whole range while keeping observe() a branch-light array increment.
//
// The bucket layout is FIXED at compile time (no per-instance resizing or
// rescaling), so merging two histograms is a plain bucket-wise add: the
// merged result is independent of observation interleaving, which is what
// lets parallel ensemble runs reproduce a serial run's quantiles exactly.
#ifndef CAVENET_OBS_QUANTILE_HISTOGRAM_H
#define CAVENET_OBS_QUANTILE_HISTOGRAM_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cavenet::obs {

struct QuantileHistogramData {
  /// Sub-buckets per power-of-two decade; the relative quantile error
  /// bound is 1 / 2^kSubBucketBits.
  static constexpr int kSubBucketBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  /// Decade range: values in [2^kMinExp, 2^kMaxExp) land in linear
  /// sub-buckets; below is one underflow bucket (with zero and negatives),
  /// above one overflow bucket. With delays measured in seconds this spans
  /// ~1 ns .. ~272 years.
  static constexpr int kMinExp = -30;
  static constexpr int kMaxExp = 33;
  static constexpr int kDecades = kMaxExp - kMinExp;
  static constexpr int kBucketCount = kDecades * kSubBuckets + 2;

  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, static_cast<std::size_t>(kBucketCount)> buckets{};

  /// Bucket index of `v`. Values <= 0 (and NaN) go to the underflow
  /// bucket 0; values >= 2^kMaxExp to the overflow bucket.
  static int bucket_index(double v) noexcept;
  /// Inclusive lower bound of bucket `index` (0 for the underflow bucket).
  static double bucket_lower_bound(int index) noexcept;
  /// Exclusive upper bound of bucket `index`.
  static double bucket_upper_bound(int index) noexcept;

  void observe(double v) noexcept;
  double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Upper bound of the bucket holding the ceil(q * count)-th smallest
  /// observation, clamped to [min, max]; 0 when empty. The clamp makes
  /// single-valued distributions exact and quantile(1) == max.
  double quantile(double q) const noexcept;
  /// Folds `other` in bucket-wise. Deterministic: any merge order over
  /// the same observation multiset yields identical buckets.
  void merge(const QuantileHistogramData& other) noexcept;
  /// Cumulative distribution as (bucket upper bound clamped to max,
  /// observations <= bound) for every non-empty bucket, in value order.
  std::vector<std::pair<double, std::uint64_t>> cdf() const;
};

/// Registry handle mirroring Counter/Gauge/Histogram: unbound handles
/// observe into a thread-local discard cell, so instrumented hot paths
/// need no null checks and never allocate.
class Quantile {
 public:
  Quantile() noexcept = default;

  void observe(double v) noexcept { data_->observe(v); }
  const QuantileHistogramData& data() const noexcept { return *data_; }
  bool bound() const noexcept { return data_ != &discard_; }

 private:
  friend class StatsRegistry;
  explicit Quantile(QuantileHistogramData* data) noexcept : data_(data) {}

  static thread_local QuantileHistogramData discard_;
  QuantileHistogramData* data_ = &discard_;
};

}  // namespace cavenet::obs

#endif  // CAVENET_OBS_QUANTILE_HISTOGRAM_H
