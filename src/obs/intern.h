// Process-wide string interning.
//
// Hot paths (per-packet log records, trace events) tag data with a small
// fixed set of names ("80211-data", "aodv-rreq", ...). Interning turns
// those into std::string_views into stable storage: no per-event heap
// allocation, and equal names share one address, so later comparisons are
// pointer-cheap. Interned strings live for the process lifetime.
#ifndef CAVENET_OBS_INTERN_H
#define CAVENET_OBS_INTERN_H

#include <string_view>

namespace cavenet::obs {

/// Returns a view of `s` backed by the process-lifetime intern table.
/// The first call for a given content copies it; later calls return the
/// same view. The returned view's data() is NUL-terminated.
std::string_view intern(std::string_view s);

/// Number of distinct strings interned so far (for tests/diagnostics).
std::size_t intern_table_size() noexcept;

}  // namespace cavenet::obs

#endif  // CAVENET_OBS_INTERN_H
