#include "obs/stats_registry.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "obs/json.h"

namespace cavenet::obs {

thread_local std::uint64_t Counter::discard_ = 0;
thread_local double Gauge::discard_ = 0.0;
thread_local HistogramData Histogram::discard_{};

namespace {

int bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;
  const int exp = static_cast<int>(std::ceil(std::log2(v)));
  const int idx = exp + HistogramData::kZeroBucket;
  if (idx < 0) return 0;
  if (idx >= HistogramData::kBucketCount) return HistogramData::kBucketCount - 1;
  return idx;
}

double bucket_bound(int idx) noexcept {
  return std::ldexp(1.0, idx - HistogramData::kZeroBucket);
}

}  // namespace

void HistogramData::observe(double v) noexcept {
  if (count == 0) {
    min = v;
    max = v;
  } else {
    if (v < min) min = v;
    if (v > max) max = v;
  }
  ++count;
  sum += v;
  ++buckets[static_cast<std::size_t>(bucket_index(v))];
}

void HistogramData::merge(const HistogramData& other) noexcept {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
}

double HistogramData::quantile_bound(double q) const noexcept {
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets[static_cast<std::size_t>(i)];
    if (static_cast<double>(seen) >= target) return bucket_bound(i);
  }
  return max;
}

Counter StatsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return Counter(&it->second);
  return Counter(&counters_.emplace(std::string(name), 0).first->second);
}

Gauge StatsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return Gauge(&it->second);
  return Gauge(&gauges_.emplace(std::string(name), 0.0).first->second);
}

Histogram StatsRegistry::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return Histogram(&it->second);
  return Histogram(
      &histograms_.emplace(std::string(name), HistogramData{}).first->second);
}

Quantile StatsRegistry::quantile(std::string_view name) {
  const auto it = quantiles_.find(name);
  if (it != quantiles_.end()) return Quantile(&it->second);
  return Quantile(&quantiles_.emplace(std::string(name), QuantileHistogramData{})
                       .first->second);
}

void StatsRegistry::merge_from(const StatsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    counter(name).inc(value);
  }
  for (const auto& [name, value] : other.gauges_) {
    gauge(name).set(value);
  }
  for (const auto& [name, data] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) {
      it->second.merge(data);
    } else {
      histograms_.emplace(name, data);
    }
  }
  for (const auto& [name, data] : other.quantiles_) {
    const auto it = quantiles_.find(name);
    if (it != quantiles_.end()) {
      it->second.merge(data);
    } else {
      quantiles_.emplace(name, data);
    }
  }
}

StatsSnapshot StatsRegistry::snapshot() const {
  StatsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, value] : counters_) snap.counters.emplace_back(name, value);
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, value] : gauges_) snap.gauges.emplace_back(name, value);
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, data] : histograms_) {
    StatsSnapshot::HistogramSummary h;
    h.name = name;
    h.count = data.count;
    h.sum = data.sum;
    h.min = data.min;
    h.max = data.max;
    h.p50 = data.quantile_bound(0.50);
    h.p99 = data.quantile_bound(0.99);
    snap.histograms.push_back(std::move(h));
  }
  snap.quantiles.reserve(quantiles_.size());
  for (const auto& [name, data] : quantiles_) {
    StatsSnapshot::QuantileSummary q;
    q.name = name;
    q.count = data.count;
    q.sum = data.sum;
    q.min = data.min;
    q.max = data.max;
    q.p50 = data.quantile(0.50);
    q.p90 = data.quantile(0.90);
    q.p95 = data.quantile(0.95);
    q.p99 = data.quantile(0.99);
    q.cdf = data.cdf();
    snap.quantiles.push_back(std::move(q));
  }
  return snap;
}

std::uint64_t StatsSnapshot::counter(std::string_view name) const noexcept {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double StatsSnapshot::gauge(std::string_view name) const noexcept {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

const StatsSnapshot::QuantileSummary* StatsSnapshot::quantile(
    std::string_view name) const noexcept {
  for (const auto& q : quantiles) {
    if (q.name == name) return &q;
  }
  return nullptr;
}

namespace {

void write_histogram_summary(JsonWriter& w,
                             const StatsSnapshot::HistogramSummary& h) {
  w.begin_object();
  w.key("count");
  w.value(h.count);
  w.key("sum");
  w.value(h.sum);
  w.key("min");
  w.value(h.min);
  w.key("max");
  w.value(h.max);
  w.key("p50");
  w.value(h.p50);
  w.key("p99");
  w.value(h.p99);
  w.end_object();
}

void write_quantile_summary(JsonWriter& w,
                            const StatsSnapshot::QuantileSummary& q) {
  w.begin_object();
  w.key("count");
  w.value(q.count);
  w.key("sum");
  w.value(q.sum);
  w.key("min");
  w.value(q.min);
  w.key("max");
  w.value(q.max);
  w.key("p50");
  w.value(q.p50);
  w.key("p90");
  w.value(q.p90);
  w.key("p95");
  w.value(q.p95);
  w.key("p99");
  w.value(q.p99);
  w.key("cdf");
  w.begin_array();
  for (const auto& [bound, cumulative] : q.cdf) {
    w.begin_array();
    w.value(bound);
    w.value(cumulative);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

/// Previous value of `name` in a sorted (name, value) vector, advancing
/// `it` — both snapshots are sorted, so diffing is one merge walk.
template <typename Vector>
const typename Vector::value_type* find_sorted(
    const Vector& entries, typename Vector::const_iterator& it,
    const std::string& name) {
  while (it != entries.end() && it->first < name) ++it;
  if (it != entries.end() && it->first == name) return &*it;
  return nullptr;
}

template <typename Vector>
const typename Vector::value_type* find_sorted_named(
    const Vector& entries, typename Vector::const_iterator& it,
    const std::string& name) {
  while (it != entries.end() && it->name < name) ++it;
  if (it != entries.end() && it->name == name) return &*it;
  return nullptr;
}

}  // namespace

std::string StatsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : counters) {
    w.key(name);
    w.value(value);
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : gauges) {
    w.key(name);
    w.value(value);
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& h : histograms) {
    w.key(h.name);
    write_histogram_summary(w, h);
  }
  w.end_object();
  w.key("quantiles");
  w.begin_object();
  for (const auto& q : quantiles) {
    w.key(q.name);
    write_quantile_summary(w, q);
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string StatsSnapshot::to_json_delta(const StatsSnapshot& baseline) const {
  JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  {
    auto it = baseline.counters.begin();
    for (const auto& [name, value] : counters) {
      const auto* prev = find_sorted(baseline.counters, it, name);
      if (prev != nullptr && prev->second == value) continue;
      w.key(name);
      w.value(value);
    }
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  {
    auto it = baseline.gauges.begin();
    for (const auto& [name, value] : gauges) {
      const auto* prev = find_sorted(baseline.gauges, it, name);
      if (prev != nullptr && prev->second == value) continue;
      w.key(name);
      w.value(value);
    }
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  {
    auto it = baseline.histograms.begin();
    for (const auto& h : histograms) {
      // observe() always bumps count, so equal counts mean unchanged.
      const auto* prev = find_sorted_named(baseline.histograms, it, h.name);
      if (prev != nullptr && prev->count == h.count) continue;
      w.key(h.name);
      write_histogram_summary(w, h);
    }
  }
  w.end_object();
  w.key("quantiles");
  w.begin_object();
  {
    auto it = baseline.quantiles.begin();
    for (const auto& q : quantiles) {
      const auto* prev = find_sorted_named(baseline.quantiles, it, q.name);
      if (prev != nullptr && prev->count == q.count) continue;
      w.key(q.name);
      write_quantile_summary(w, q);
    }
  }
  w.end_object();
  w.end_object();
  return w.str();
}

StatsSnapshot StatsSnapshot::from_json(std::string_view json) {
  const JsonValue doc = parse_json(json);
  if (!doc.is_object()) throw std::runtime_error("stats snapshot: not an object");
  StatsSnapshot snap;
  if (const JsonValue* counters = doc.find("counters")) {
    for (const auto& [name, value] : counters->object) {
      snap.counters.emplace_back(name,
                                 static_cast<std::uint64_t>(value.number));
    }
  }
  if (const JsonValue* gauges = doc.find("gauges")) {
    for (const auto& [name, value] : gauges->object) {
      snap.gauges.emplace_back(name, value.number);
    }
  }
  if (const JsonValue* histograms = doc.find("histograms")) {
    for (const auto& [name, value] : histograms->object) {
      HistogramSummary h;
      h.name = name;
      if (const JsonValue* v = value.find("count")) {
        h.count = static_cast<std::uint64_t>(v->number);
      }
      if (const JsonValue* v = value.find("sum")) h.sum = v->number;
      if (const JsonValue* v = value.find("min")) h.min = v->number;
      if (const JsonValue* v = value.find("max")) h.max = v->number;
      if (const JsonValue* v = value.find("p50")) h.p50 = v->number;
      if (const JsonValue* v = value.find("p99")) h.p99 = v->number;
      snap.histograms.push_back(std::move(h));
    }
  }
  if (const JsonValue* quantiles = doc.find("quantiles")) {
    for (const auto& [name, value] : quantiles->object) {
      QuantileSummary q;
      q.name = name;
      if (const JsonValue* v = value.find("count")) {
        q.count = static_cast<std::uint64_t>(v->number);
      }
      if (const JsonValue* v = value.find("sum")) q.sum = v->number;
      if (const JsonValue* v = value.find("min")) q.min = v->number;
      if (const JsonValue* v = value.find("max")) q.max = v->number;
      if (const JsonValue* v = value.find("p50")) q.p50 = v->number;
      if (const JsonValue* v = value.find("p90")) q.p90 = v->number;
      if (const JsonValue* v = value.find("p95")) q.p95 = v->number;
      if (const JsonValue* v = value.find("p99")) q.p99 = v->number;
      if (const JsonValue* v = value.find("cdf")) {
        for (const auto& point : v->array) {
          if (point.array.size() != 2) {
            throw std::runtime_error("stats snapshot: malformed cdf point");
          }
          q.cdf.emplace_back(
              point.array[0].number,
              static_cast<std::uint64_t>(point.array[1].number));
        }
      }
      snap.quantiles.push_back(std::move(q));
    }
  }
  return snap;
}

void StatsSnapshot::write_table(std::ostream& out) const {
  std::size_t width = 0;
  for (const auto& [name, value] : counters) width = std::max(width, name.size());
  for (const auto& [name, value] : gauges) width = std::max(width, name.size());
  for (const auto& h : histograms) width = std::max(width, h.name.size());
  for (const auto& q : quantiles) width = std::max(width, q.name.size());

  const auto pad = [&](const std::string& name) {
    out << "  " << name << std::string(width - name.size() + 2, ' ');
  };
  if (!counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : counters) {
      pad(name);
      out << value << "\n";
    }
  }
  if (!gauges.empty()) {
    out << "gauges:\n";
    for (const auto& [name, value] : gauges) {
      pad(name);
      out << value << "\n";
    }
  }
  if (!histograms.empty()) {
    out << "histograms:\n";
    for (const auto& h : histograms) {
      pad(h.name);
      out << "count=" << h.count << " mean="
          << (h.count == 0 ? 0.0 : h.sum / static_cast<double>(h.count))
          << " min=" << h.min << " max=" << h.max << " p50<=" << h.p50
          << " p99<=" << h.p99 << "\n";
    }
  }
  if (!quantiles.empty()) {
    out << "quantiles:\n";
    for (const auto& q : quantiles) {
      pad(q.name);
      out << "count=" << q.count << " mean="
          << (q.count == 0 ? 0.0 : q.sum / static_cast<double>(q.count))
          << " min=" << q.min << " max=" << q.max << " p50<=" << q.p50
          << " p90<=" << q.p90 << " p95<=" << q.p95 << " p99<=" << q.p99
          << "\n";
    }
  }
}

void StatsRegistry::write_table(std::ostream& out) const {
  snapshot().write_table(out);
}

}  // namespace cavenet::obs
