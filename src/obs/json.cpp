#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cavenet::obs {

void json_escape(std::string_view text, std::string& out) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void JsonWriter::separate() {
  // The element right after a key belongs to that key: no comma.
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elements_.empty()) {
    if (has_elements_.back()) out_.push_back(',');
    has_elements_.back() = true;
  }
}

void JsonWriter::begin_object() {
  separate();
  out_.push_back('{');
  has_elements_.push_back(false);
}

void JsonWriter::end_object() {
  out_.push_back('}');
  has_elements_.pop_back();
}

void JsonWriter::begin_array() {
  separate();
  out_.push_back('[');
  has_elements_.push_back(false);
}

void JsonWriter::end_array() {
  out_.push_back(']');
  has_elements_.pop_back();
}

void JsonWriter::key(std::string_view name) {
  separate();
  json_escape(name, out_);
  out_.push_back(':');
  after_key_ = true;
}

void JsonWriter::value(std::string_view text) {
  separate();
  json_escape(text, out_);
}

void JsonWriter::value(double number) {
  separate();
  if (!std::isfinite(number)) {
    out_ += "null";  // JSON has no NaN/Inf
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", number);
    out_ += buf;
  }
}

void JsonWriter::value(std::uint64_t number) {
  separate();
  out_ += std::to_string(number);
}

void JsonWriter::value(std::int64_t number) {
  separate();
  out_ += std::to_string(number);
}

void JsonWriter::value(bool boolean) {
  separate();
  out_ += boolean ? "true" : "false";
}

void JsonWriter::null() {
  separate();
  out_ += "null";
}

void JsonWriter::raw(std::string_view json) {
  separate();
  out_ += json;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string_view source_name,
         const JsonParseLimits& limits)
      : text_(text), source_name_(source_name), limits_(limits) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    fail(what.c_str());
  }

  [[noreturn]] void fail(const char* what) const {
    // 1-based line/column of pos_, counting '\n' only (a '\r' before it
    // stays part of the preceding line's column count, which is what an
    // editor shows for CRLF files anyway).
    std::size_t line = 1, column = 1;
    const std::size_t stop = pos_ < text_.size() ? pos_ : text_.size();
    for (std::size_t i = 0; i < stop; ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    std::string message = std::string(source_name_) + ":" +
                          std::to_string(line) + ":" + std::to_string(column) +
                          ": " + what;
    throw JsonParseError(std::move(message), line, column);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't': {
        JsonValue v;
        if (!consume_literal("true")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        JsonValue v;
        if (!consume_literal("false")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        JsonValue v;
        if (!consume_literal("null")) fail("bad literal");
        return v;
      }
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Our own writer only emits \u for control characters; decode
            // BMP code points as UTF-8 and leave surrogates unpaired.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  /// Bounds container recursion: every '{' / '[' is one parse_value
  /// stack frame, so hostile deep nesting is a stack-overflow vector.
  void enter_container() {
    if (++depth_ > limits_.max_depth) {
      fail("nesting exceeds the maximum depth of " +
           std::to_string(limits_.max_depth) + " levels");
    }
  }

  JsonValue parse_object() {
    enter_container();
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    --depth_;
    return v;
  }

  JsonValue parse_array() {
    enter_container();
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    --depth_;
    return v;
  }

  std::string_view text_;
  std::string_view source_name_;
  JsonParseLimits limits_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue parse_json(std::string_view text, std::string_view source_name,
                     const JsonParseLimits& limits) {
  if (limits.max_bytes != 0 && text.size() > limits.max_bytes) {
    throw JsonParseError(std::string(source_name) + ":1:1: input is " +
                             std::to_string(text.size()) +
                             " bytes, exceeds the maximum of " +
                             std::to_string(limits.max_bytes) + " bytes",
                         1, 1);
  }
  return Parser(text, source_name, limits).parse_document();
}

void write_json(const JsonValue& value, JsonWriter& w) {
  switch (value.kind) {
    case JsonValue::Kind::kNull: w.null(); break;
    case JsonValue::Kind::kBool: w.value(value.boolean); break;
    case JsonValue::Kind::kNumber: w.value(value.number); break;
    case JsonValue::Kind::kString: w.value(value.string); break;
    case JsonValue::Kind::kArray:
      w.begin_array();
      for (const JsonValue& element : value.array) write_json(element, w);
      w.end_array();
      break;
    case JsonValue::Kind::kObject:
      w.begin_object();
      for (const auto& [key, member] : value.object) {
        w.key(key);
        write_json(member, w);
      }
      w.end_object();
      break;
  }
}

std::string to_json(const JsonValue& value) {
  JsonWriter w;
  write_json(value, w);
  return w.str();
}

}  // namespace cavenet::obs
