#include "obs/telemetry.h"

#include <fstream>
#include <utility>

#include "obs/json.h"

namespace cavenet::obs {

void TelemetryRecorder::sample(double t_s) {
  StatsSnapshot snap = registry_->snapshot();
  JsonWriter w;
  w.begin_object();
  w.key("seq");
  w.value(seq_);
  w.key("t_s");
  w.value(t_s);
  w.key("stats");
  if (options_.delta && seq_ > 0) {
    w.raw(snap.to_json_delta(last_));
  } else {
    w.raw(snap.to_json());
  }
  w.end_object();
  out_ += w.str();
  out_ += '\n';
  if (options_.delta) last_ = std::move(snap);
  ++seq_;
}

bool TelemetryRecorder::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << out_;
  return static_cast<bool>(out.flush());
}

}  // namespace cavenet::obs
