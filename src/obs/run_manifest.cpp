#include "obs/run_manifest.h"

#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"
#include "util/logging.h"

namespace cavenet::obs {

std::string_view build_version() noexcept {
#ifdef CAVENET_GIT_DESCRIBE
  return CAVENET_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string iso8601_utc_now() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buf;
}

void RunManifest::set_param(std::string key, std::string value) {
  for (auto& [k, v] : params) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  params.emplace_back(std::move(key), std::move(value));
}
void RunManifest::set_param(std::string key, std::string_view value) {
  set_param(std::move(key), std::string(value));
}
void RunManifest::set_param(std::string key, const char* value) {
  set_param(std::move(key), std::string(value));
}
void RunManifest::set_param(std::string key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  set_param(std::move(key), std::string(buf));
}
void RunManifest::set_param(std::string key, std::uint64_t value) {
  set_param(std::move(key), std::to_string(value));
}
void RunManifest::set_param(std::string key, std::int64_t value) {
  set_param(std::move(key), std::to_string(value));
}
void RunManifest::set_param(std::string key, std::int32_t value) {
  set_param(std::move(key), std::to_string(value));
}
void RunManifest::set_param(std::string key, bool value) {
  set_param(std::move(key), std::string(value ? "true" : "false"));
}

void RunManifest::set_metric(std::string key, double value) {
  for (auto& [k, v] : metrics) {
    if (k == key) {
      v = value;
      return;
    }
  }
  metrics.emplace_back(std::move(key), value);
}

std::string_view RunManifest::param(std::string_view key,
                                    std::string_view fallback) const noexcept {
  for (const auto& [k, v] : params) {
    if (k == key) return v;
  }
  return fallback;
}

double RunManifest::metric(std::string_view key,
                           double fallback) const noexcept {
  for (const auto& [k, v] : metrics) {
    if (k == key) return v;
  }
  return fallback;
}

void RunManifest::strip_volatile() {
  created_at.clear();
  wall_duration_s = 0.0;
  events_per_wall_second = 0.0;
  // The executor lane count is a pure performance setting (results are
  // byte-identical at any value); it is recorded for live manifests but
  // stripped so the determinism artifact compares equal across
  // --threads.
  std::erase_if(params,
                [](const auto& param) { return param.first == "threads"; });
  // Wall-clock and wall-throughput gauges are timing noise, not
  // simulation results: the kernel profiler's per-component ".wall_ms",
  // the per-lane "exec.worker<i>.wall_ms" pool gauges (covered by the
  // same suffix), plus any ".wall_s" / ".per_wall_s" gauges the
  // progress/telemetry layer publishes. Everything keyed on sim time
  // stays. (kernel.*.dispatches counters are deterministic and stay.)
  static constexpr std::string_view kVolatileSuffixes[] = {
      ".wall_ms", ".wall_s", ".per_wall_s"};
  std::erase_if(stats.gauges, [](const auto& gauge) {
    const std::string& name = gauge.first;
    for (const std::string_view suffix : kVolatileSuffixes) {
      if (name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        return true;
      }
    }
    return false;
  });
}

std::string RunManifest::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value(name);
  w.key("seed");
  w.value(seed);
  w.key("git_describe");
  w.value(git_describe);
  w.key("created_at");
  w.value(created_at);
  w.key("params");
  w.begin_object();
  for (const auto& [key, value] : params) {
    w.key(key);
    w.value(value);
  }
  w.end_object();
  w.key("metrics");
  w.begin_object();
  for (const auto& [key, value] : metrics) {
    w.key(key);
    w.value(value);
  }
  w.end_object();
  w.key("sim_duration_s");
  w.value(sim_duration_s);
  w.key("wall_duration_s");
  w.value(wall_duration_s);
  w.key("events_dispatched");
  w.value(events_dispatched);
  w.key("events_per_wall_second");
  w.value(events_per_wall_second);
  w.key("stats");
  w.raw(stats.to_json());
  w.end_object();
  return w.str();
}

RunManifest RunManifest::from_json(std::string_view json) {
  const JsonValue doc = parse_json(json);
  if (!doc.is_object()) throw std::runtime_error("run manifest: not an object");
  RunManifest m;
  m.git_describe.clear();
  m.created_at.clear();
  if (const JsonValue* v = doc.find("name")) m.name = v->string;
  if (const JsonValue* v = doc.find("seed")) {
    m.seed = static_cast<std::uint64_t>(v->number);
  }
  if (const JsonValue* v = doc.find("git_describe")) m.git_describe = v->string;
  if (const JsonValue* v = doc.find("created_at")) m.created_at = v->string;
  if (const JsonValue* v = doc.find("params")) {
    for (const auto& [key, value] : v->object) {
      m.params.emplace_back(key, value.string);
    }
  }
  if (const JsonValue* v = doc.find("metrics")) {
    for (const auto& [key, value] : v->object) {
      m.metrics.emplace_back(key, value.number);
    }
  }
  if (const JsonValue* v = doc.find("sim_duration_s")) m.sim_duration_s = v->number;
  if (const JsonValue* v = doc.find("wall_duration_s")) m.wall_duration_s = v->number;
  if (const JsonValue* v = doc.find("events_dispatched")) {
    m.events_dispatched = static_cast<std::uint64_t>(v->number);
  }
  if (const JsonValue* v = doc.find("events_per_wall_second")) {
    m.events_per_wall_second = v->number;
  }
  if (const JsonValue* v = doc.find("stats")) {
    // Re-serialize is wasteful but keeps one parsing path; manifests are
    // small and this runs off the hot path.
    StatsSnapshot snap;
    for (const auto& [section, entries] : v->object) {
      if (section == "counters") {
        for (const auto& [name, value] : entries.object) {
          snap.counters.emplace_back(name,
                                     static_cast<std::uint64_t>(value.number));
        }
      } else if (section == "gauges") {
        for (const auto& [name, value] : entries.object) {
          snap.gauges.emplace_back(name, value.number);
        }
      } else if (section == "histograms") {
        for (const auto& [name, value] : entries.object) {
          StatsSnapshot::HistogramSummary h;
          h.name = name;
          if (const JsonValue* f = value.find("count")) {
            h.count = static_cast<std::uint64_t>(f->number);
          }
          if (const JsonValue* f = value.find("sum")) h.sum = f->number;
          if (const JsonValue* f = value.find("min")) h.min = f->number;
          if (const JsonValue* f = value.find("max")) h.max = f->number;
          if (const JsonValue* f = value.find("p50")) h.p50 = f->number;
          if (const JsonValue* f = value.find("p99")) h.p99 = f->number;
          snap.histograms.push_back(std::move(h));
        }
      } else if (section == "quantiles") {
        for (const auto& [name, value] : entries.object) {
          StatsSnapshot::QuantileSummary q;
          q.name = name;
          if (const JsonValue* f = value.find("count")) {
            q.count = static_cast<std::uint64_t>(f->number);
          }
          if (const JsonValue* f = value.find("sum")) q.sum = f->number;
          if (const JsonValue* f = value.find("min")) q.min = f->number;
          if (const JsonValue* f = value.find("max")) q.max = f->number;
          if (const JsonValue* f = value.find("p50")) q.p50 = f->number;
          if (const JsonValue* f = value.find("p90")) q.p90 = f->number;
          if (const JsonValue* f = value.find("p95")) q.p95 = f->number;
          if (const JsonValue* f = value.find("p99")) q.p99 = f->number;
          if (const JsonValue* f = value.find("cdf")) {
            for (const auto& point : f->array) {
              if (point.array.size() != 2) continue;
              q.cdf.emplace_back(
                  point.array[0].number,
                  static_cast<std::uint64_t>(point.array[1].number));
            }
          }
          snap.quantiles.push_back(std::move(q));
        }
      }
    }
    m.stats = std::move(snap);
  }
  return m;
}

RunManifest RunManifest::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read manifest " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return from_json(buffer.str());
}

bool RunManifest::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    CAVENET_LOG(kError, "obs") << "cannot write manifest " << path;
    return false;
  }
  out << to_json() << "\n";
  return static_cast<bool>(out);
}

}  // namespace cavenet::obs
