// Structured event tracing.
//
// The simulation kernel and the packet log emit TraceEvents into a
// TraceSink. Two sinks ship with the library: ChromeTraceWriter renders
// the Chrome trace_event JSON format (load in chrome://tracing or
// https://ui.perfetto.dev), and RingBufferSink keeps the last N events in
// bounded memory so multi-hour runs can trace forever and dump the tail
// on demand.
//
// Event name/category fields are std::string_views and must outlive the
// sink: pass string literals or obs::intern()ed strings.
#ifndef CAVENET_OBS_TRACE_SINK_H
#define CAVENET_OBS_TRACE_SINK_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/sim_time.h"

namespace cavenet::obs {

struct TraceEvent {
  /// Chrome trace_event phases: instant, counter, complete (duration).
  enum class Phase : char { kInstant = 'i', kCounter = 'C', kComplete = 'X' };

  SimTime ts;                       ///< simulation time of the event
  SimTime dur = SimTime::zero();    ///< kComplete only
  Phase phase = Phase::kInstant;
  std::string_view name;            ///< e.g. "cbr", "sim.events_per_sec"
  std::string_view category;        ///< e.g. "MAC", "kernel"
  std::uint32_t tid = 0;            ///< rendered as the track id (node id)
  double value = 0.0;               ///< kCounter payload
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceEvent& event) = 0;
};

/// Collects events and serializes them as Chrome trace_event JSON:
/// {"traceEvents":[{"name":...,"ph":"i","ts":...,"pid":0,"tid":...},...]}
/// with ts/dur in microseconds of simulation time.
class ChromeTraceWriter final : public TraceSink {
 public:
  void emit(const TraceEvent& event) override { events_.push_back(event); }

  std::size_t size() const noexcept { return events_.size(); }
  const std::vector<TraceEvent>& events() const noexcept { return events_; }

  /// Serializes all collected events.
  std::string to_json() const;
  void write(std::ostream& out) const;
  /// Returns false (and logs) when the file cannot be written.
  bool write_file(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
};

/// Bounded-memory sink: keeps the most recent `capacity` events and
/// counts how many older ones were overwritten. replay() feeds the
/// surviving window (oldest first) into another sink, e.g. a
/// ChromeTraceWriter at the end of a long run.
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity);

  void emit(const TraceEvent& event) override;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept;
  /// Events that were overwritten because the buffer was full.
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Oldest-to-newest copy of the surviving window.
  std::vector<TraceEvent> window() const;
  void replay(TraceSink& sink) const;
  void clear();

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;      ///< write position once the ring is full
  bool wrapped_ = false;
  std::uint64_t dropped_ = 0;
};

}  // namespace cavenet::obs

#endif  // CAVENET_OBS_TRACE_SINK_H
