// StatsRegistry: named counters, gauges and histograms for the simulator.
//
// Components register once ("mac.tx.data", "aodv.rreq.sent", ...) and get
// back a lightweight handle; the hot-path increment is a single add
// through a pointer. Unbound handles point at a shared discard cell, so
// instrumented code needs no null checks and costs the same one add when
// observability is not wired up.
//
// Names are hierarchical dotted paths. A snapshot is deterministic
// (lexicographically sorted) and serializes to JSON and to an aligned
// text table. Single-threaded by design, like the simulator kernel.
#ifndef CAVENET_OBS_STATS_REGISTRY_H
#define CAVENET_OBS_STATS_REGISTRY_H

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/quantile_histogram.h"

namespace cavenet::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  Counter() noexcept = default;

  void inc(std::uint64_t n = 1) noexcept { *cell_ += n; }
  std::uint64_t value() const noexcept { return *cell_; }
  /// True when bound to a registry (an unbound counter discards).
  bool bound() const noexcept { return cell_ != &discard_; }

 private:
  friend class StatsRegistry;
  explicit Counter(std::uint64_t* cell) noexcept : cell_(cell) {}

  // thread_local: unbound handles on concurrent ensemble workers must not
  // race on a shared discard cell (each replication runs on one thread).
  static thread_local std::uint64_t discard_;
  std::uint64_t* cell_ = &discard_;
};

/// Last-written value (queue depths, utilizations, run aggregates).
class Gauge {
 public:
  Gauge() noexcept = default;

  void set(double v) noexcept { *cell_ = v; }
  void add(double v) noexcept { *cell_ += v; }
  double value() const noexcept { return *cell_; }
  bool bound() const noexcept { return cell_ != &discard_; }

 private:
  friend class StatsRegistry;
  explicit Gauge(double* cell) noexcept : cell_(cell) {}

  static thread_local double discard_;
  double* cell_ = &discard_;
};

/// Power-of-two-bucketed value distribution (delays, sizes, durations).
struct HistogramData {
  /// buckets[i] counts observations with value <= 2^(i - kZeroBucket);
  /// bucket 0 additionally holds everything below the smallest bound.
  static constexpr int kBucketCount = 64;
  static constexpr int kZeroBucket = 32;

  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, kBucketCount> buckets{};

  void observe(double v) noexcept;
  double mean() const noexcept { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  /// Upper bucket bound containing quantile `q` in [0,1]; 0 when empty.
  double quantile_bound(double q) const noexcept;
  /// Folds `other`'s observations into this distribution (bucket-wise).
  void merge(const HistogramData& other) noexcept;
};

class Histogram {
 public:
  Histogram() noexcept = default;

  void observe(double v) noexcept { data_->observe(v); }
  const HistogramData& data() const noexcept { return *data_; }
  bool bound() const noexcept { return data_ != &discard_; }

 private:
  friend class StatsRegistry;
  explicit Histogram(HistogramData* data) noexcept : data_(data) {}

  static thread_local HistogramData discard_;
  HistogramData* data_ = &discard_;
};

/// Point-in-time copy of a registry, detached from the live cells.
struct StatsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< sorted
  std::vector<std::pair<std::string, double>> gauges;           ///< sorted

  struct HistogramSummary {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;  ///< bucket-bound approximations
    double p99 = 0.0;
  };
  std::vector<HistogramSummary> histograms;  ///< sorted

  /// Fine-grained quantile histogram (see quantile_histogram.h): the
  /// standard percentiles plus the full CDF over non-empty buckets.
  struct QuantileSummary {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    /// (bucket upper bound, observations <= bound), in value order.
    std::vector<std::pair<double, std::uint64_t>> cdf;
  };
  std::vector<QuantileSummary> quantiles;  ///< sorted

  std::uint64_t counter(std::string_view name) const noexcept;
  double gauge(std::string_view name) const noexcept;
  /// Quantile summary by name, or nullptr when absent.
  const QuantileSummary* quantile(std::string_view name) const noexcept;

  std::string to_json() const;
  /// Same sectioned shape as to_json but holding only the entries that
  /// differ from `baseline` (values stay absolute, not differences). New
  /// entries count as changed; entries that vanished are not reported —
  /// registries only grow, so that never happens between two snapshots
  /// of one run.
  std::string to_json_delta(const StatsSnapshot& baseline) const;
  /// Inverse of to_json (histogram buckets are not restored, summaries
  /// are). Throws std::runtime_error on malformed input.
  static StatsSnapshot from_json(std::string_view json);

  /// Aligned "name value" table grouped by top-level prefix.
  void write_table(std::ostream& out) const;
};

class StatsRegistry {
 public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  /// Returns a handle to the named metric, creating it at zero on first
  /// use. Handles stay valid for the registry's lifetime; the same name
  /// always maps to the same cell, so components on different nodes
  /// naturally aggregate by sharing a name.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name);
  Quantile quantile(std::string_view name);

  std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size() +
           quantiles_.size();
  }

  StatsSnapshot snapshot() const;
  void write_table(std::ostream& out) const;

  /// Folds `other` into this registry, reproducing what sequential reuse
  /// of ONE shared registry would have recorded: counters and histogram
  /// observations accumulate; gauges present in `other` overwrite (the
  /// simulator only set()s gauges, so the later run wins, exactly as it
  /// would writing into a shared registry). The ensemble runner merges
  /// per-replication registries with this, in replication order, so the
  /// merged result is independent of worker count and scheduling.
  void merge_from(const StatsRegistry& other);

 private:
  // std::map: node-based, so cell addresses are stable across inserts.
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, HistogramData, std::less<>> histograms_;
  std::map<std::string, QuantileHistogramData, std::less<>> quantiles_;
};

}  // namespace cavenet::obs

#endif  // CAVENET_OBS_STATS_REGISTRY_H
