// Kernel profiling: where does simulation wall-time go?
//
// The scheduler labels events with the component that scheduled them
// ("mac", "phy", "aodv", ...). With a profiler attached, each dispatch is
// wall-clock timed and attributed to its label; with none attached the
// kernel pays a single branch per event. Results publish into a
// StatsRegistry or render as a table sorted by total wall time.
#ifndef CAVENET_OBS_KERNEL_PROFILER_H
#define CAVENET_OBS_KERNEL_PROFILER_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string_view>
#include <vector>

namespace cavenet::obs {

class StatsRegistry;

class KernelProfiler {
 public:
  struct Component {
    std::uint64_t dispatches = 0;
    std::uint64_t wall_ns = 0;
  };

  /// Attributes one dispatch of `wall_ns` to `component`. The label must
  /// outlive the profiler (the scheduler passes static strings).
  void record(std::string_view component, std::uint64_t wall_ns) {
    Component& c = components_[component.empty() ? kUnlabeled : component];
    ++c.dispatches;
    c.wall_ns += wall_ns;
  }

  const std::map<std::string_view, Component>& components() const noexcept {
    return components_;
  }
  std::uint64_t total_dispatches() const noexcept;
  std::uint64_t total_wall_ns() const noexcept;

  /// "kernel.<component>.dispatches" counters and
  /// "kernel.<component>.wall_ms" gauges.
  void publish(StatsRegistry& registry) const;

  /// Table sorted by wall time, with share-of-total percentages.
  void write_table(std::ostream& out) const;

  void reset() { components_.clear(); }

 private:
  static constexpr std::string_view kUnlabeled = "(unlabeled)";
  std::map<std::string_view, Component> components_;
};

}  // namespace cavenet::obs

#endif  // CAVENET_OBS_KERNEL_PROFILER_H
