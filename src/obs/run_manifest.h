// RunManifest: a machine-readable record of what a run actually did.
//
// Every scenario/bench run can emit one JSON document carrying the seed,
// the parameters, the build version, wall/sim durations, throughput, and
// a final stats snapshot. A bench CSV plus its manifest is a reproducible
// artifact: `tools/stats_diff.py` diffs two manifests and flags counter
// regressions.
#ifndef CAVENET_OBS_RUN_MANIFEST_H
#define CAVENET_OBS_RUN_MANIFEST_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/stats_registry.h"

namespace cavenet::obs {

/// `git describe` of the build, captured at configure time ("unknown"
/// outside a git checkout).
std::string_view build_version() noexcept;

/// Current wall-clock time as ISO-8601 UTC ("2026-08-06T12:34:56Z").
std::string iso8601_utc_now();

struct RunManifest {
  std::string name;                 ///< e.g. "fig11_pdr"
  std::uint64_t seed = 0;
  std::string git_describe{build_version()};
  std::string created_at{iso8601_utc_now()};

  /// Scenario parameters, insertion-ordered (values pre-rendered).
  std::vector<std::pair<std::string, std::string>> params;
  /// Scalar result metrics (PDR, goodput, ...), insertion-ordered.
  std::vector<std::pair<std::string, double>> metrics;

  double sim_duration_s = 0.0;
  double wall_duration_s = 0.0;
  std::uint64_t events_dispatched = 0;
  double events_per_wall_second = 0.0;

  StatsSnapshot stats;

  void set_param(std::string key, std::string value);
  void set_param(std::string key, std::string_view value);
  void set_param(std::string key, const char* value);
  void set_param(std::string key, double value);
  void set_param(std::string key, std::uint64_t value);
  void set_param(std::string key, std::int64_t value);
  void set_param(std::string key, std::int32_t value);
  void set_param(std::string key, bool value);

  void set_metric(std::string key, double value);

  /// Value of a param/metric, or fallback when absent.
  std::string_view param(std::string_view key,
                         std::string_view fallback = {}) const noexcept;
  double metric(std::string_view key, double fallback = 0.0) const noexcept;

  /// Clears the fields that legitimately vary between two runs of the
  /// same build and seed (created_at, wall_duration_s,
  /// events_per_wall_second, and any `*.wall_ms` profiler gauges in the
  /// stats snapshot), so the serialized manifest is byte-stable.
  /// Ensemble benches call this before write_file(): determinism checks
  /// then reduce to a plain file compare, and the measured wall time is
  /// reported on stdout instead.
  void strip_volatile();

  std::string to_json() const;
  /// Throws std::runtime_error on malformed input.
  static RunManifest from_json(std::string_view json);
  static RunManifest read_file(const std::string& path);

  /// Returns false (and logs) when the file cannot be written.
  bool write_file(const std::string& path) const;
};

}  // namespace cavenet::obs

#endif  // CAVENET_OBS_RUN_MANIFEST_H
