#include "obs/intern.h"

#include <set>
#include <string>

namespace cavenet::obs {
namespace {

// std::set gives node-stable storage: a std::string's buffer never moves
// once inserted, so handed-out views stay valid as the table grows.
// Heterogeneous lookup (std::less<>) avoids building a std::string on hits.
std::set<std::string, std::less<>>& table() {
  static auto* t = new std::set<std::string, std::less<>>();
  return *t;
}

}  // namespace

std::string_view intern(std::string_view s) {
  auto& t = table();
  const auto it = t.find(s);
  if (it != t.end()) return *it;
  return *t.emplace(s).first;
}

std::size_t intern_table_size() noexcept { return table().size(); }

}  // namespace cavenet::obs
