#include "obs/intern.h"

#include <mutex>
#include <set>
#include <string>

namespace cavenet::obs {
namespace {

// std::set gives node-stable storage: a std::string's buffer never moves
// once inserted, so handed-out views stay valid as the table grows.
// Heterogeneous lookup (std::less<>) avoids building a std::string on hits.
// The mutex makes interning safe from concurrent ensemble workers; the
// table is tiny and hit mostly at component construction, so contention
// never reaches a packet hot path.
std::mutex table_mutex;

std::set<std::string, std::less<>>& table() {
  static auto* t = new std::set<std::string, std::less<>>();
  return *t;
}

}  // namespace

std::string_view intern(std::string_view s) {
  const std::lock_guard<std::mutex> lock(table_mutex);
  auto& t = table();
  const auto it = t.find(s);
  if (it != t.end()) return *it;
  return *t.emplace(s).first;
}

std::size_t intern_table_size() noexcept {
  const std::lock_guard<std::mutex> lock(table_mutex);
  return table().size();
}

}  // namespace cavenet::obs
