#include "obs/quantile_histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cavenet::obs {

thread_local QuantileHistogramData Quantile::discard_{};

int QuantileHistogramData::bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;  // zero, negatives and NaN underflow
  if (std::isinf(v)) return kBucketCount - 1;  // frexp(inf) exp is garbage
  int exp = 0;
  const double mantissa = std::frexp(v, &exp);  // v = mantissa * 2^exp,
                                                // mantissa in [0.5, 1)
  const int decade = exp - 1 - kMinExp;         // v in [2^(exp-1), 2^exp)
  if (decade < 0) return 0;
  if (decade >= kDecades) return kBucketCount - 1;
  // 2 * mantissa - 1 in [0, 1): linear position inside the decade.
  const int sub = static_cast<int>((mantissa * 2.0 - 1.0) * kSubBuckets);
  return 1 + decade * kSubBuckets + std::min(sub, kSubBuckets - 1);
}

double QuantileHistogramData::bucket_lower_bound(int index) noexcept {
  if (index <= 0) return 0.0;
  if (index >= kBucketCount - 1) return std::ldexp(1.0, kMaxExp);
  const int decade = (index - 1) / kSubBuckets;
  const int sub = (index - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets,
                    kMinExp + decade);
}

double QuantileHistogramData::bucket_upper_bound(int index) noexcept {
  if (index <= 0) return std::ldexp(1.0, kMinExp);
  if (index >= kBucketCount - 1) {
    return std::numeric_limits<double>::max();
  }
  const int decade = (index - 1) / kSubBuckets;
  const int sub = (index - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets,
                    kMinExp + decade);
}

void QuantileHistogramData::observe(double v) noexcept {
  if (count == 0) {
    min = v;
    max = v;
  } else {
    if (v < min) min = v;
    if (v > max) max = v;
  }
  ++count;
  sum += v;
  ++buckets[static_cast<std::size_t>(bucket_index(v))];
}

double QuantileHistogramData::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets[static_cast<std::size_t>(i)];
    if (seen >= rank) {
      return std::clamp(bucket_upper_bound(i), min, max);
    }
  }
  return max;
}

void QuantileHistogramData::merge(const QuantileHistogramData& other) noexcept {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

std::vector<std::pair<double, std::uint64_t>> QuantileHistogramData::cdf()
    const {
  std::vector<std::pair<double, std::uint64_t>> points;
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = buckets[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    cumulative += n;
    points.emplace_back(std::clamp(bucket_upper_bound(i), min, max),
                        cumulative);
  }
  return points;
}

}  // namespace cavenet::obs
