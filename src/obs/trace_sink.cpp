#include "obs/trace_sink.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "obs/json.h"
#include "util/logging.h"

namespace cavenet::obs {

namespace {

void write_event(JsonWriter& w, const TraceEvent& e) {
  w.begin_object();
  w.key("name");
  w.value(e.name);
  w.key("cat");
  w.value(e.category.empty() ? std::string_view("sim") : e.category);
  w.key("ph");
  const char ph[2] = {static_cast<char>(e.phase), '\0'};
  w.value(std::string_view(ph, 1));
  // trace_event timestamps are microseconds; keep sub-us precision.
  w.key("ts");
  w.value(e.ts.us());
  if (e.phase == TraceEvent::Phase::kComplete) {
    w.key("dur");
    w.value(e.dur.us());
  }
  w.key("pid");
  w.value(std::uint64_t{0});
  w.key("tid");
  w.value(static_cast<std::uint64_t>(e.tid));
  if (e.phase == TraceEvent::Phase::kCounter) {
    w.key("args");
    w.begin_object();
    w.key("value");
    w.value(e.value);
    w.end_object();
  } else if (e.phase == TraceEvent::Phase::kInstant) {
    w.key("s");
    w.value("t");  // thread-scoped instant
  }
  w.end_object();
}

}  // namespace

std::string ChromeTraceWriter::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();
  for (const TraceEvent& e : events_) write_event(w, e);
  w.end_array();
  w.end_object();
  return w.str();
}

void ChromeTraceWriter::write(std::ostream& out) const { out << to_json(); }

bool ChromeTraceWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    CAVENET_LOG(kError, "obs") << "cannot write trace file " << path;
    return false;
  }
  write(out);
  return static_cast<bool>(out);
}

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("ring buffer capacity must be > 0");
  }
  ring_.reserve(capacity);
}

void RingBufferSink::emit(const TraceEvent& event) {
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  ring_[next_] = event;
  next_ = (next_ + 1) % capacity_;
  wrapped_ = true;
  ++dropped_;
}

std::size_t RingBufferSink::size() const noexcept { return ring_.size(); }

std::vector<TraceEvent> RingBufferSink::window() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  } else {
    out = ring_;
  }
  return out;
}

void RingBufferSink::replay(TraceSink& sink) const {
  for (const TraceEvent& e : window()) sink.emit(e);
}

void RingBufferSink::clear() {
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  dropped_ = 0;
}

}  // namespace cavenet::obs
