#include "obs/kernel_profiler.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <string>

#include "obs/stats_registry.h"

namespace cavenet::obs {

std::uint64_t KernelProfiler::total_dispatches() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [name, c] : components_) total += c.dispatches;
  return total;
}

std::uint64_t KernelProfiler::total_wall_ns() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [name, c] : components_) total += c.wall_ns;
  return total;
}

void KernelProfiler::publish(StatsRegistry& registry) const {
  for (const auto& [name, c] : components_) {
    const std::string prefix = "kernel." + std::string(name);
    registry.counter(prefix + ".dispatches").inc(c.dispatches);
    registry.gauge(prefix + ".wall_ms")
        .set(static_cast<double>(c.wall_ns) / 1e6);
  }
}

void KernelProfiler::write_table(std::ostream& out) const {
  std::vector<std::pair<std::string_view, Component>> rows(components_.begin(),
                                                           components_.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.wall_ns > b.second.wall_ns;
  });
  const double total_ns =
      std::max<double>(1.0, static_cast<double>(total_wall_ns()));
  out << "kernel profile (wall time per event handler):\n";
  char buf[160];
  for (const auto& [name, c] : rows) {
    const double share = 100.0 * static_cast<double>(c.wall_ns) / total_ns;
    const double per_event = c.dispatches == 0
                                 ? 0.0
                                 : static_cast<double>(c.wall_ns) /
                                       static_cast<double>(c.dispatches);
    std::snprintf(buf, sizeof buf,
                  "  %-16.*s %12llu dispatches %10.3f ms %6.1f%% %8.0f ns/ev\n",
                  static_cast<int>(name.size()), name.data(),
                  static_cast<unsigned long long>(c.dispatches),
                  static_cast<double>(c.wall_ns) / 1e6, share, per_event);
    out << buf;
  }
}

}  // namespace cavenet::obs
