// Minimal JSON support for the observability layer.
//
// The obs library serializes stats snapshots, run manifests and Chrome
// trace files, and tests/tools parse them back. This is a deliberately
// small implementation (objects, arrays, strings, numbers, bools, null)
// — enough for machine-generated documents, not a general-purpose parser
// for hostile input.
#ifndef CAVENET_OBS_JSON_H
#define CAVENET_OBS_JSON_H

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cavenet::obs {

/// Appends `text` to `out` as a quoted JSON string with escaping.
void json_escape(std::string_view text, std::string& out);

/// Streaming JSON writer with automatic comma placement.
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("seed"); w.value(std::uint64_t{42});
///   w.end_object();
///   w.str();  // {"seed":42}
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  void key(std::string_view name);
  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(double number);
  void value(std::uint64_t number);
  void value(std::int64_t number);
  void value(bool boolean);
  void null();
  /// Splices a pre-serialized JSON document in as one value.
  void raw(std::string_view json);

  /// The document built so far.
  const std::string& str() const noexcept { return out_; }

 private:
  void separate();

  std::string out_;
  /// One flag per open scope: true once the scope has a first element.
  std::vector<bool> has_elements_;
  /// Set by key(): the next value is the key's value, not a new element.
  bool after_key_ = false;
};

/// Parsed JSON document (object members keep their textual order).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member named `key`, or nullptr (objects only).
  const JsonValue* find(std::string_view key) const noexcept;

  bool is_object() const noexcept { return kind == Kind::kObject; }
  bool is_array() const noexcept { return kind == Kind::kArray; }
  bool is_number() const noexcept { return kind == Kind::kNumber; }
  bool is_string() const noexcept { return kind == Kind::kString; }
};

/// Syntax error thrown by parse_json(). The message pinpoints the fault
/// ("specs/fig8.json:3:17: expected ',' or '}'"); line and column are
/// 1-based and also carried as fields for programmatic use.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(std::string message, std::size_t line, std::size_t column)
      : std::runtime_error(std::move(message)), line_(line), column_(column) {}

  std::size_t line() const noexcept { return line_; }
  std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// Resource limits enforced by parse_json(). The HTTP job API feeds
/// client-supplied JSON straight into the parser, so both knobs exist to
/// bound what untrusted input can cost: recursion depth (a stack-overflow
/// vector — every '[' or '{' is one recursive parse_value frame) and
/// total input size. Violations throw JsonParseError with a diagnostic
/// naming the limit, so API callers can relay a precise 4xx message.
struct JsonParseLimits {
  /// Maximum container nesting depth (arrays + objects). The default is
  /// far above any machine-generated cavenet document (specs nest < 10)
  /// while keeping hostile deep-nesting inputs from exhausting the stack.
  std::size_t max_depth = 128;
  /// Maximum input size in bytes; 0 means unlimited (trusted files).
  std::size_t max_bytes = 0;
};

/// Parses a complete JSON document. Throws JsonParseError (a
/// std::runtime_error) on syntax errors, trailing garbage, or a limit
/// violation, reporting the 1-based line and column of the fault.
/// `source_name` prefixes the error message (a file name, or "json" by
/// default).
JsonValue parse_json(std::string_view text, std::string_view source_name = "json",
                     const JsonParseLimits& limits = {});

/// Serializes a parsed (or hand-built) JsonValue back to compact JSON.
/// Object members keep their stored order; numbers are rendered with
/// %.17g, so parse -> write -> parse round-trips values exactly. This is
/// also the canonical form the spec engine fingerprints.
std::string to_json(const JsonValue& value);
/// Appends `value` to an open writer (for splicing into larger documents).
void write_json(const JsonValue& value, JsonWriter& writer);

}  // namespace cavenet::obs

#endif  // CAVENET_OBS_JSON_H
