// TelemetryRecorder: in-run time series of StatsRegistry snapshots.
//
// End-of-run manifests answer "what happened"; telemetry answers "when".
// The recorder self-schedules on the simulator at a fixed sim-time period
// and appends one JSONL line per sample:
//
//   {"seq":0,"t_s":1.5,"stats":{"counters":{...},"gauges":{...},
//    "histograms":{...},"quantiles":{...}}}
//
// Samples are keyed on *simulation* time and contain only registry state,
// so the stream is a pure function of (build, seed, params): running the
// same scenario at --jobs 1 and --jobs 4 yields byte-identical JSONL.
// Delta mode shrinks lines by emitting only entries that changed since
// the previous sample (values stay absolute); the first sample is always
// full, so a delta stream replays into the same final state.
#ifndef CAVENET_OBS_TELEMETRY_H
#define CAVENET_OBS_TELEMETRY_H

#include <cstdint>
#include <string>

#include "obs/stats_registry.h"
#include "util/sim_time.h"

namespace cavenet::obs {

struct TelemetryOptions {
  /// Sampling period in simulation seconds; <= 0 disables telemetry.
  double period_s = 0.0;
  /// Emit only changed entries after the first (always full) sample.
  bool delta = false;

  bool enabled() const noexcept { return period_s > 0.0; }
};

class TelemetryRecorder {
 public:
  TelemetryRecorder(const StatsRegistry& registry, TelemetryOptions options)
      : registry_(&registry), options_(options) {}

  TelemetryRecorder(const TelemetryRecorder&) = delete;
  TelemetryRecorder& operator=(const TelemetryRecorder&) = delete;

  /// Snapshots the registry now and appends one JSONL line stamped with
  /// simulation time `t_s`. Normally driven by attach(); callable
  /// directly for tests and for a final end-of-run sample.
  void sample(double t_s);

  /// Lines recorded so far (also the next line's "seq").
  std::uint64_t samples() const noexcept { return seq_; }
  /// The JSONL stream accumulated so far (newline-terminated lines).
  const std::string& jsonl() const noexcept { return out_; }
  const TelemetryOptions& options() const noexcept { return options_; }

  /// Writes the stream to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

  /// Starts periodic sampling on `sim` (templated so obs does not depend
  /// on netsim; any type with schedule(SimTime, label, fn), now() and
  /// queue_depth() works). Copies the kernel heartbeat's self-stop rule:
  /// the recorder reschedules only while other events remain queued, so
  /// telemetry never keeps a drained simulation alive on its own. The
  /// recorder must outlive the simulation run.
  template <typename SimulatorT>
  void attach(SimulatorT& sim) {
    if (!options_.enabled()) return;
    schedule_next(sim);
  }

 private:
  template <typename SimulatorT>
  void schedule_next(SimulatorT& sim) {
    sim.schedule(SimTime::from_seconds(options_.period_s), "obs.telemetry",
                 [this, &sim] {
                   sample(sim.now().sec());
                   if (sim.queue_depth() > 0) schedule_next(sim);
                 });
  }

  const StatsRegistry* registry_;
  TelemetryOptions options_;
  StatsSnapshot last_;
  std::uint64_t seq_ = 0;
  std::string out_;
};

}  // namespace cavenet::obs

#endif  // CAVENET_OBS_TELEMETRY_H
