// Minimal UDP-like application header. The wire size is the real UDP
// header (8 bytes); sequence number and send timestamp model fields the
// application writes into its payload (ns-2's CBR/RTP does the same), so
// they do not add to the packet size.
#ifndef CAVENET_APP_UDP_H
#define CAVENET_APP_UDP_H

#include <cstdint>

#include "netsim/packet.h"
#include "util/sim_time.h"

namespace cavenet::app {

struct UdpHeader final : netsim::HeaderBase<UdpHeader> {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  SimTime sent_at = SimTime::zero();

  std::size_t size_bytes() const override { return 8; }
  std::string_view name() const override { return "udp"; }
};

}  // namespace cavenet::app

#endif  // CAVENET_APP_UDP_H
