#include "app/flow_metrics.h"

#include <algorithm>

namespace cavenet::app {

void FlowMetrics::on_sent(SimTime now, std::size_t payload_bytes) {
  (void)payload_bytes;
  ++tx_packets_;
  first_tx_ = std::min(first_tx_, now);
}

void FlowMetrics::on_received(SimTime now, SimTime sent_at,
                              std::size_t payload_bytes) {
  ++rx_packets_;
  rx_bytes_ += payload_bytes;
  first_rx_ = std::min(first_rx_, now);
  const double delay = (now - sent_at).sec();
  delay_sum_s_ += delay;
  max_delay_s_ = std::max(max_delay_s_, delay);
  const auto bin = static_cast<std::size_t>(now / bin_);
  if (bin_bytes_.size() <= bin) bin_bytes_.resize(bin + 1, 0);
  bin_bytes_[bin] += payload_bytes;
}

double FlowMetrics::pdr() const noexcept {
  return tx_packets_ > 0
             ? static_cast<double>(rx_packets_) / static_cast<double>(tx_packets_)
             : 0.0;
}

double FlowMetrics::mean_delay_s() const noexcept {
  return rx_packets_ > 0 ? delay_sum_s_ / static_cast<double>(rx_packets_)
                         : 0.0;
}

double FlowMetrics::first_delivery_delay_s() const noexcept {
  if (first_rx_ == SimTime::max() || first_tx_ == SimTime::max()) return -1.0;
  return (first_rx_ - first_tx_).sec();
}

std::vector<double> FlowMetrics::goodput_bps(SimTime horizon) const {
  const auto bins = static_cast<std::size_t>(horizon / bin_) +
                    ((horizon.ns() % bin_.ns()) != 0 ? 1 : 0);
  std::vector<double> out(bins, 0.0);
  const double bin_s = bin_.sec();
  for (std::size_t i = 0; i < std::min(bins, bin_bytes_.size()); ++i) {
    out[i] = static_cast<double>(bin_bytes_[i]) * 8.0 / bin_s;
  }
  return out;
}

}  // namespace cavenet::app
