#include "app/cbr.h"

#include <stdexcept>
#include <utility>

namespace cavenet::app {

CbrSource::CbrSource(netsim::Simulator& sim, netsim::NetworkLayer& network,
                     CbrParams params, FlowMetrics* metrics)
    : sim_(&sim), network_(&network), params_(params), metrics_(metrics) {
  if (params_.packets_per_second <= 0.0) {
    throw std::invalid_argument("CBR rate must be > 0");
  }
  if (params_.stop < params_.start) {
    throw std::invalid_argument("CBR stop precedes start");
  }
  interval_ = SimTime::from_seconds(1.0 / params_.packets_per_second);
}

void CbrSource::start() {
  const SimTime delay = params_.start > sim_->now()
                            ? params_.start - sim_->now()
                            : SimTime::zero();
  sim_->schedule(delay, "app.cbr", [this] { send_one(); });
}

void CbrSource::send_one() {
  if (sim_->now() >= params_.stop) return;
  netsim::Packet packet(params_.payload_bytes);
  UdpHeader header;
  header.src_port = params_.src_port;
  header.dst_port = params_.dst_port;
  header.seq = seq_++;
  header.sent_at = sim_->now();
  packet.push(header);
  if (metrics_ != nullptr) {
    metrics_->on_sent(sim_->now(), params_.payload_bytes);
  }
  obs_tx_.inc();
  if (log_ != nullptr) {
    log_->record(sim_->now(), netsim::PacketLog::Event::kSend,
                 netsim::PacketLog::Layer::kAgent, network_->address(),
                 packet.uid(), "cbr", packet.size_bytes());
  }
  network_->send(std::move(packet), params_.destination);
  sim_->schedule(interval_, "app.cbr", [this] { send_one(); });
}

PacketSink::PacketSink(netsim::Simulator& sim, netsim::NetworkLayer& network,
                       std::uint16_t port)
    : sim_(&sim), port_(port) {
  network.set_deliver_callback(
      [this](netsim::Packet packet, netsim::NodeId source) {
        on_deliver(std::move(packet), source);
      });
}

void PacketSink::track_source(netsim::NodeId source, FlowMetrics* metrics) {
  flows_[source] = metrics;
}

void PacketSink::on_deliver(netsim::Packet packet, netsim::NodeId source) {
  const UdpHeader* header = std::as_const(packet).peek<UdpHeader>();
  if (header == nullptr || header->dst_port != port_) return;
  ++received_;
  obs_rx_.inc();
  const UdpHeader udp = packet.pop<UdpHeader>();
  const double delay_s = (sim_->now() - udp.sent_at).sec();
  obs_delay_.observe(delay_s);
  if (registry_ != nullptr) {
    auto it = flow_delay_.find(source);
    if (it == flow_delay_.end()) {
      it = flow_delay_
               .emplace(source, registry_->quantile(
                                    "agt.delay.e2e.s" + std::to_string(source)))
               .first;
    }
    it->second.observe(delay_s);
  }
  if (const auto it = flows_.find(source);
      it != flows_.end() && it->second != nullptr) {
    it->second->on_received(sim_->now(), udp.sent_at, packet.payload_bytes());
  }
  if (hook_) hook_(source, udp, packet.payload_bytes());
}

}  // namespace cavenet::app
