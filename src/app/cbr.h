// Constant-bit-rate traffic source and packet sink (Table I: 5 packets/s,
// 512-byte payloads, deterministic source/destination).
#ifndef CAVENET_APP_CBR_H
#define CAVENET_APP_CBR_H

#include <cstdint>
#include <functional>
#include <map>

#include "app/flow_metrics.h"
#include "app/udp.h"
#include "netsim/layers.h"
#include "netsim/packet_log.h"
#include "netsim/simulator.h"
#include "obs/stats_registry.h"

namespace cavenet::app {

struct CbrParams {
  netsim::NodeId destination = 0;
  std::uint16_t dst_port = 9;
  std::uint16_t src_port = 49152;
  double packets_per_second = 5.0;
  std::size_t payload_bytes = 512;
  SimTime start = SimTime::seconds(10);
  SimTime stop = SimTime::seconds(90);
};

/// Sends fixed-size packets at a fixed rate through a network layer.
class CbrSource {
 public:
  CbrSource(netsim::Simulator& sim, netsim::NetworkLayer& network,
            CbrParams params, FlowMetrics* metrics = nullptr);

  CbrSource(const CbrSource&) = delete;
  CbrSource& operator=(const CbrSource&) = delete;

  /// Schedules the start/stop events. Call once after construction.
  void start();

  std::uint32_t packets_sent() const noexcept { return seq_; }
  const CbrParams& params() const noexcept { return params_; }

  /// Binds the source's send counter ("agt.tx.cbr") into a registry.
  void bind_stats(obs::StatsRegistry& registry) {
    obs_tx_ = registry.counter("agt.tx.cbr");
  }

  /// Records an AGT-layer send entry per packet (nullptr detaches). This
  /// is the reference the e2e delay quantiles reconcile against.
  void set_packet_log(netsim::PacketLog* log) noexcept { log_ = log; }

 private:
  void send_one();

  netsim::Simulator* sim_;
  netsim::NetworkLayer* network_;
  CbrParams params_;
  FlowMetrics* metrics_;
  netsim::PacketLog* log_ = nullptr;
  std::uint32_t seq_ = 0;
  SimTime interval_;
  obs::Counter obs_tx_;
};

/// Receives packets delivered by a network layer, filters on destination
/// port, and feeds per-source metrics.
class PacketSink {
 public:
  /// Registers itself as the network layer's deliver callback.
  PacketSink(netsim::Simulator& sim, netsim::NetworkLayer& network,
             std::uint16_t port);

  PacketSink(const PacketSink&) = delete;
  PacketSink& operator=(const PacketSink&) = delete;

  /// Routes metrics for packets from `source` to `metrics`.
  void track_source(netsim::NodeId source, FlowMetrics* metrics);

  /// Optional extra hook invoked per delivered packet.
  using PacketHook =
      std::function<void(netsim::NodeId source, const UdpHeader&, std::size_t)>;
  void set_packet_hook(PacketHook hook) { hook_ = std::move(hook); }

  std::uint64_t packets_received() const noexcept { return received_; }

  /// Binds the sink's receive counter ("agt.rx.sink") plus end-to-end
  /// delay quantile histograms: "agt.delay.e2e" aggregates across all
  /// tracked flows, and each delivering source gets a per-flow
  /// "agt.delay.e2e.s<id>" lazily on first delivery.
  void bind_stats(obs::StatsRegistry& registry) {
    registry_ = &registry;
    obs_rx_ = registry.counter("agt.rx.sink");
    obs_delay_ = registry.quantile("agt.delay.e2e");
  }

 private:
  void on_deliver(netsim::Packet packet, netsim::NodeId source);

  netsim::Simulator* sim_;
  std::uint16_t port_;
  std::map<netsim::NodeId, FlowMetrics*> flows_;
  PacketHook hook_;
  std::uint64_t received_ = 0;
  obs::StatsRegistry* registry_ = nullptr;
  obs::Counter obs_rx_;
  obs::Quantile obs_delay_;
  std::map<netsim::NodeId, obs::Quantile> flow_delay_;
};

}  // namespace cavenet::app

#endif  // CAVENET_APP_CBR_H
